package experiments

import (
	"encoding/csv"
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/perf"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/wl"
)

// PhasePoint is one measurement of the phase experiment's timeline.
type PhasePoint struct {
	Arm        string  // "drift" or "no_drift"
	Turn       int     // phase index (0 = initial hot tenant)
	Event      string  // "optimized", "stale", "reoptimized"
	SimSeconds float64 // service simulated time at the measurement
	Throughput float64 // req/s over the measurement window
	DriftScore float64 // detector's divergence at the measurement
	Reopts     int     // drift-triggered re-optimizations so far
}

// PhaseResult is the experiment outcome the test asserts on.
type PhaseResult struct {
	Points []PhasePoint
	// Optimized is the post-initial-wave throughput of each arm — the
	// level re-optimization is supposed to recover.
	Optimized map[string]float64
	// Recovered[turn] is the drift arm's throughput after re-optimizing
	// for that turn's hot tenant.
	Recovered map[int]float64
	// Stale[turn] is the no-drift arm's throughput in the same phase,
	// still serving on the initial layout.
	Stale map[int]float64
}

// phaseTimings are the micro simulation windows the experiment runs at;
// everything derives from the fleet timing block so the drift policy
// and the measurements stay consistent.
type phaseTimings struct {
	timing fleet.TimingConfig
	policy profile.ReoptPolicy
	dwell  float64 // simulated serving time per phase before scanning
}

func phaseTunings(quick bool) phaseTimings {
	t := phaseTimings{
		timing: fleet.TimingConfig{ProfileDur: 0.0012, Warm: 0.0004, Window: 0.0006},
		policy: profile.ReoptPolicy{
			MinDivergence: 0.35,
			MinDwell:      0.0005,
			Cooldown:      0.001,
		},
		dwell: 0.004,
	}
	if !quick {
		t.timing = fleet.TimingConfig{ProfileDur: 0.003, Warm: 0.001, Window: 0.0015}
		t.dwell = 0.01
	}
	return t
}

// RunPhase drives the phase-shifting workload under both arms and
// returns the timeline. The scenario: a multi-tenant cache is optimized
// while tenant 0 is hot; the hot tenant then swaps (a phase turn), the
// continuous profile diverges from the layout's build profile, and the
// drift arm re-optimizes back to the optimized level while the no-drift
// ablation keeps serving on the stale layout.
func RunPhase(quick bool, turns, tenants int) (*PhaseResult, error) {
	tun := phaseTunings(quick)
	res := &PhaseResult{
		Optimized: map[string]float64{},
		Recovered: map[int]float64{},
		Stale:     map[int]float64{},
	}

	for _, arm := range []string{"drift", "no_drift"} {
		w, err := kvcache.Build(kvcache.MultiTenant(tenants))
		if err != nil {
			return nil, err
		}
		cfg := fleet.Config{
			Workers:  1,
			SkipGate: true, // the small cache sits below the TopDown gate
			Timing:   tun.timing,
			Metrics:  telemetry.NewRegistry(),
		}
		if arm == "drift" {
			cfg.Drift = fleet.DriftConfig{
				Enabled: true,
				Policy:  tun.policy,
				// Sample densely: micro windows need enough streamed edges
				// for a stable divergence score.
				Stream: perf.RecorderOptions{PeriodCycles: 8_000, OverheadCycles: 400},
			}
		}
		m, err := fleet.NewManager(cfg)
		if err != nil {
			return nil, err
		}
		s, err := m.AddService(fleet.ServicePlan{
			Name: "mt-kv", Workload: w, Input: "hot0", Threads: 2,
			Core: core.Options{NoChargePause: true},
		})
		if err != nil {
			return nil, err
		}
		s.Proc.RunFor(tun.timing.Warm)
		if _, err := m.Run(); err != nil {
			return nil, err
		}
		if st := s.State(); st != fleet.Steady {
			return nil, fmt.Errorf("phase: %s arm ended initial wave in %s", arm, st)
		}
		opt := wl.Measure(s.Proc, s.Driver, tun.timing.Window)
		res.Optimized[arm] = opt
		res.Points = append(res.Points, PhasePoint{
			Arm: arm, Turn: 0, Event: "optimized",
			SimSeconds: s.Proc.Seconds(), Throughput: opt, Reopts: s.Reopts(),
		})

		for turn := 1; turn <= turns; turn++ {
			hot := turn % tenants
			gen, err := kvcache.TenantGenerator(fmt.Sprintf("hot%d", hot), tenants)
			if err != nil {
				return nil, err
			}
			s.Driver.SetGenerator(gen)
			// Serve the new phase on the old layout long enough for the
			// continuous sampler to see the turn (and for dwell to pass).
			s.Proc.RunFor(tun.dwell)
			stale := wl.Measure(s.Proc, s.Driver, tun.timing.Window)
			point := PhasePoint{
				Arm: arm, Turn: turn, Event: "stale",
				SimSeconds: s.Proc.Seconds(), Throughput: stale, Reopts: s.Reopts(),
			}

			if arm == "no_drift" {
				res.Points = append(res.Points, point)
				res.Stale[turn] = stale
				continue
			}

			scan := m.Scan(fleet.ScanOptions{Drift: true})
			if len(scan) > 0 {
				point.DriftScore = scan[0].DriftScore
			}
			res.Points = append(res.Points, point)
			if len(scan) == 0 || !scan[0].Optimize {
				reason := "no scan results"
				if len(scan) > 0 {
					reason = scan[0].DriftReason
				}
				return nil, fmt.Errorf("phase: turn %d did not trigger (%s, score %.3f)",
					turn, reason, point.DriftScore)
			}
			m.Optimize(scan, fleet.WaveOptions{})
			if st := s.State(); st != fleet.Steady {
				return nil, fmt.Errorf("phase: re-optimization wave for turn %d ended in %s", turn, st)
			}
			rec := wl.Measure(s.Proc, s.Driver, tun.timing.Window)
			res.Recovered[turn] = rec
			res.Points = append(res.Points, PhasePoint{
				Arm: arm, Turn: turn, Event: "reoptimized",
				SimSeconds: s.Proc.Seconds(), Throughput: rec,
				DriftScore: s.Status().DriftScore,
				Reopts:     s.Reopts(),
			})
		}
	}
	return res, nil
}

// Phase is the experiment runner: the §IV-C daily-pattern scenario made
// concrete. A multi-tenant cache's hot tenant swaps mid-run; the drift
// arm detects the divergence and re-optimizes back to the optimized
// level, the no-drift ablation decays to stale-layout throughput.
func Phase(cfg Config) error {
	cfg.defaults()
	turns, tenants := 2, 3
	res, err := RunPhase(cfg.Quick, turns, tenants)
	if err != nil {
		return err
	}

	cfg.printf("Phase-shifting workload (§IV-C's daily pattern): %d-tenant cache, %d hot-tenant turns\n\n", tenants, turns)
	cfg.printf("%-9s %5s %-12s %10s %12s %8s %7s\n",
		"arm", "turn", "event", "sim (ms)", "req/s", "score", "reopts")
	for _, pt := range res.Points {
		cfg.printf("%-9s %5d %-12s %10.3f %12.0f %8.3f %7d\n",
			pt.Arm, pt.Turn, pt.Event, pt.SimSeconds*1e3, pt.Throughput, pt.DriftScore, pt.Reopts)
	}

	opt := res.Optimized["drift"]
	cfg.printf("\noptimized level: %.0f req/s\n", opt)
	for turn := 1; turn <= turns; turn++ {
		cfg.printf("turn %d: drift arm recovered to %5.1f%% of optimized; no-drift ablation at %5.1f%%\n",
			turn, 100*res.Recovered[turn]/opt, 100*res.Stale[turn]/res.Optimized["no_drift"])
	}

	if cfg.CSVDir != "" {
		if err := WritePhaseCSV(res, cfg.CSVDir+"/phase.csv"); err != nil {
			return err
		}
		cfg.printf("wrote %s/phase.csv\n", cfg.CSVDir)
	}
	return nil
}

// WritePhaseCSV saves the phase timeline in a plot-ready form.
func WritePhaseCSV(res *PhaseResult, path string) error {
	return writeCSV(path, [][]string{{
		"arm", "turn", "event", "sim_s", "throughput", "drift_score", "reopts",
	}}, func(w *csv.Writer) error {
		for _, pt := range res.Points {
			if err := w.Write([]string{
				pt.Arm,
				fmt.Sprintf("%d", pt.Turn),
				pt.Event,
				fmt.Sprintf("%.6f", pt.SimSeconds),
				fmt.Sprintf("%.2f", pt.Throughput),
				fmt.Sprintf("%.4f", pt.DriftScore),
				fmt.Sprintf("%d", pt.Reopts),
			}); err != nil {
				return err
			}
		}
		return nil
	})
}
