package experiments

import (
	"repro/internal/bolt"
	"repro/internal/core"
	"repro/internal/perf"
)

// Fig3 reproduces Figure 3: the input sensitivity of offline BOLT. The
// sqldb workload always *runs* read_only, but BOLT's profile comes from
// each training input in turn (plus all inputs aggregated). OCOLOS, which
// always profiles the current input, should track the best bar.
func Fig3(cfg Config) error {
	cfg.defaults()
	w, err := Workload("sqldb", cfg.Quick)
	if err != nil {
		return err
	}
	const runInput = "read_only"

	orig, err := cfg.MeasureOriginal(w, runInput)
	if err != nil {
		return err
	}

	cfg.printf("Figure 3: sqldb throughput running %s, BOLTed with profiles from each training input\n", runInput)
	cfg.printf("%-22s %14s %9s\n", "training input", "tput (req/s)", "vs orig")
	cfg.printf("%-22s %14.0f %8.2fx\n", "original (no PGO)", orig, 1.0)

	best := 0.0
	var agg perf.RawProfile
	for _, train := range w.Inputs {
		raw, err := cfg.ProfileInput(w, train)
		if err != nil {
			return err
		}
		agg.Samples = append(agg.Samples, raw.Samples...)
		prof, err := bolt.ConvertProfile(raw, w.Binary)
		if err != nil {
			return err
		}
		res, err := bolt.Optimize(w.Binary, prof, bolt.Options{})
		if err != nil {
			return err
		}
		tput, err := cfg.MeasureBinary(w, res.Binary, runInput)
		if err != nil {
			return err
		}
		if tput > best {
			best = tput
		}
		cfg.printf("%-22s %14.0f %8.2fx\n", train, tput, tput/orig)
	}

	// Aggregated profile of all inputs.
	prof, err := bolt.ConvertProfile(&agg, w.Binary)
	if err != nil {
		return err
	}
	res, err := bolt.Optimize(w.Binary, prof, bolt.Options{})
	if err != nil {
		return err
	}
	allT, err := cfg.MeasureBinary(w, res.Binary, runInput)
	if err != nil {
		return err
	}
	cfg.printf("%-22s %14.0f %8.2fx\n", "all (aggregated)", allT, allT/orig)

	// OCOLOS profiles the running input online.
	ocoT, _, _, err := cfg.OCOLOSRun(w, runInput, core.Options{})
	if err != nil {
		return err
	}
	cfg.printf("%-22s %14.0f %8.2fx   <- online, always current input\n", "OCOLOS", ocoT, ocoT/orig)
	cfg.printf("best training input achieves %.2fx; OCOLOS at %.1f%% of best\n",
		best/orig, 100*ocoT/best)
	return nil
}
