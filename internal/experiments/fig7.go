package experiments

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/perf"
	"repro/internal/proc"
)

// Fig7 reproduces Figure 7: sqldb read_only throughput over time across
// the five regions of an OCOLOS deployment — (1) warm-up on the original
// binary, (2) perf LBR recording, (3) perf2bolt + BOLT running in the
// background and competing for CPU, (4) the stop-the-world code
// replacement, (5) optimized steady state. 95th-percentile request
// latency is reported per region.
//
// The background pipeline's CPU contention in region 3 is modeled as a
// fractional cycle tax on every core (perf2bolt uses 4 threads and BOLT
// one, on a 16-core machine; we charge 25%). Its duration is the
// simulated analog of the paper's Table II costs, scaled to our request
// length.
func Fig7(cfg Config) error {
	cfg.defaults()
	w, err := Workload("sqldb", cfg.Quick)
	if err != nil {
		return err
	}
	const input = "read_only"
	threads := cfg.threads(w.Threads)

	d, err := w.NewDriver(input, threads)
	if err != nil {
		return err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
	if err != nil {
		return err
	}
	ctl, err := core.New(p, w.Binary, core.Options{})
	if err != nil {
		return err
	}

	slice := cfg.window() / 8 // reporting granularity
	type sample struct {
		t, tput, p95, max float64
		region            int
	}
	var series []sample
	region := 1
	toMS := 1e3 / p.Cfg.ClockHz
	record := func(tput float64) {
		series = append(series, sample{
			t:      p.Seconds(),
			tput:   tput,
			p95:    d.LatencyPercentile(0.95) * toMS,
			max:    d.LatencyPercentile(1.0) * toMS,
			region: region,
		})
		d.ResetWindow()
	}
	runSlices := func(n int, tax float64) {
		for i := 0; i < n; i++ {
			before := d.Completed()
			t0 := p.Seconds()
			p.RunFor(slice)
			if tax > 0 {
				for _, th := range p.Threads {
					th.Core.AddStall(tax*slice*p.Cfg.ClockHz, cpu.BucketBackEnd)
				}
			}
			dt := p.Seconds() - t0
			record(float64(d.Completed()-before) / dt)
		}
	}

	// Region 1: warm-up.
	runSlices(8, 0)
	// Region 2: perf LBR recording (attached while serving continues).
	region = 2
	rec := perf.Attach(p, perf.RecorderOptions{})
	runSlices(8, 0)
	rawProf := rec.Stop()
	// Region 3: background perf2bolt + BOLT (CPU contention tax).
	region = 3
	bs, err := ctl.BuildOptimized(rawProf)
	if err != nil {
		return err
	}
	runSlices(6, 0.25)
	// Region 4: stop-the-world replacement.
	region = 4
	rs, err := ctl.Replace(bs.Result.Binary)
	if err != nil {
		return err
	}
	runSlices(2, 0)
	// Region 5: optimized steady state.
	region = 5
	runSlices(10, 0)
	if err := p.Fault(); err != nil {
		return err
	}

	cfg.printf("Figure 7: sqldb %s throughput timeline (pause %.1f ms simulated)\n", input, rs.PauseSeconds*1e3)
	cfg.printf("%10s %8s %14s %10s %10s\n", "t (ms)", "region", "tput (req/s)", "p95 (ms)", "max (ms)")
	names := []string{"", "warmup", "perf", "perf2bolt+bolt", "replace", "optimized"}
	var regTput [6]float64
	var regN [6]int
	for _, s := range series {
		cfg.printf("%10.3f %8d %14.0f %10.4f %10.4f\n", s.t*1e3, s.region, s.tput, s.p95, s.max)
		regTput[s.region] += s.tput
		regN[s.region]++
	}
	cfg.printf("region means:\n")
	for r := 1; r <= 5; r++ {
		if regN[r] > 0 {
			cfg.printf("  %-16s %12.0f req/s\n", names[r], regTput[r]/float64(regN[r]))
		}
	}
	cfg.printf("replacement: %d call sites, %d vtable slots, %d funcs on stack, pause %.2f ms\n",
		rs.CallSitesPatched, rs.VTableSlotsPatched, rs.FuncsOnStack, rs.PauseSeconds*1e3)
	return nil
}
