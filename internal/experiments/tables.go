package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/proc"
)

// Tab1 reproduces Table I: benchmark characterization — function and
// v-table counts, text size, functions reordered by BOLT, functions on
// the stack at replacement time, direct call sites patched, and max RSS
// under the original binary, offline BOLT, and OCOLOS. One representative
// input per workload, like the paper.
func Tab1(cfg Config) error {
	cfg.defaults()
	repInput := map[string]string{
		"sqldb":   "read_only",
		"docdb":   "read_update",
		"kvcache": "set10_get90",
		"rtlsim":  "dhrystone",
	}
	type col struct {
		funcs, vtables                   int
		textMiB                          float64
		reordered, onStack, sitesPatched float64 // averaged across inputs
		rssOrig, rssBolt, rssOco         float64
	}
	cols := map[string]*col{}
	order := ServerWorkloads()

	for _, name := range order {
		w, err := Workload(name, cfg.Quick)
		if err != nil {
			return err
		}
		input := repInput[name]
		st := w.Binary.Stats()
		c := &col{
			funcs:   st.Funcs,
			vtables: st.VTables,
			textMiB: float64(st.TextBytes) / (1 << 20),
		}
		cols[name] = c

		// RSS rows use the representative input, as in the paper's note.
		_, p, _, err := measureBinary(w, w.Binary, input, cfg.threads(w.Threads), cfg.warm(), cfg.window())
		if err != nil {
			return err
		}
		c.rssOrig = float64(p.MaxRSS()) / (1 << 20)

		boltBin, err := cfg.OracleBolt(w, input)
		if err != nil {
			return err
		}
		_, pb, _, err := measureBinary(w, boltBin, input, cfg.threads(w.Threads), cfg.warm(), cfg.window())
		if err != nil {
			return err
		}
		c.rssBolt = float64(pb.MaxRSS()) / (1 << 20)

		// Replacement counters are averaged across every input of the
		// workload, matching the paper's "avg (across inputs)" rows.
		inputs := w.Inputs
		if cfg.Quick && len(inputs) > 2 {
			inputs = inputs[:2]
		}
		for _, in := range inputs {
			_, ctl, po, err := cfg.OCOLOSRun(w, in, core.Options{})
			if err != nil {
				return err
			}
			rs := ctl.Reports[0]
			c.onStack += float64(rs.FuncsOnStack)
			c.sitesPatched += float64(rs.CallSitesPatched + rs.VTableSlotsPatched)
			if cb := ctl.CurrentBinary(); cb != nil {
				c.reordered += float64(len(cb.AddrMap))
			}
			if in == input { // RSS on the same representative input as above
				c.rssOco = float64(po.MaxRSS()) / (1 << 20)
			}
		}
		n := float64(len(inputs))
		c.onStack /= n
		c.sitesPatched /= n
		c.reordered /= n
	}

	cfg.printf("Table I: benchmark characterization\n")
	cfg.printf("%-24s", "")
	for _, n := range order {
		cfg.printf("%12s", n)
	}
	cfg.printf("\n")
	row := func(label string, f func(*col) string) {
		cfg.printf("%-24s", label)
		for _, n := range order {
			cfg.printf("%12s", f(cols[n]))
		}
		cfg.printf("\n")
	}
	row("functions", func(c *col) string { return itoa(c.funcs) })
	row("v-tables", func(c *col) string { return itoa(c.vtables) })
	row(".text (MiB)", func(c *col) string { return f2(c.textMiB) })
	row("avg funcs reordered", func(c *col) string { return f2(c.reordered) })
	row("avg funcs on stack", func(c *col) string { return f2(c.onStack) })
	row("avg pointers patched", func(c *col) string { return f2(c.sitesPatched) })
	row("max RSS orig (MiB)", func(c *col) string { return f2(c.rssOrig) })
	row("max RSS BOLT (MiB)", func(c *col) string { return f2(c.rssBolt) })
	row("max RSS OCOLOS (MiB)", func(c *col) string { return f2(c.rssOco) })
	return nil
}

// Tab2 reproduces Table II: the fixed costs of one OCOLOS optimization
// round per workload — perf2bolt (profile conversion) time, BOLT
// (optimizer) time, and the stop-the-world replacement time. Conversion
// and optimization are real host computations; replacement time is the
// modeled pause the target experiences.
func Tab2(cfg Config) error {
	cfg.defaults()
	repInput := map[string]string{
		"sqldb":   "read_only",
		"docdb":   "read_update",
		"kvcache": "set10_get90",
		"rtlsim":  "dhrystone",
	}
	cfg.printf("Table II: fixed costs of code replacement\n")
	cfg.printf("%-26s", "")
	for _, n := range ServerWorkloads() {
		cfg.printf("%12s", n)
	}
	cfg.printf("\n")

	type costs struct{ p2b, bolt, pause float64 }
	res := map[string]costs{}
	for _, name := range ServerWorkloads() {
		w, err := Workload(name, cfg.Quick)
		if err != nil {
			return err
		}
		threads := cfg.threads(w.Threads)
		d, err := w.NewDriver(repInput[name], threads)
		if err != nil {
			return err
		}
		p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
		if err != nil {
			return err
		}
		ctl, err := core.New(p, w.Binary, core.Options{})
		if err != nil {
			return err
		}
		p.RunFor(cfg.warm())
		raw := ctl.Profile(cfg.profileDur())
		bs, err := ctl.BuildOptimized(raw)
		if err != nil {
			return err
		}
		rs, err := ctl.Replace(bs.Result.Binary)
		if err != nil {
			return err
		}
		res[name] = costs{p2b: bs.Perf2BoltSeconds, bolt: bs.BoltSeconds, pause: rs.PauseSeconds}
	}
	row := func(label string, f func(costs) string) {
		cfg.printf("%-26s", label)
		for _, n := range ServerWorkloads() {
			cfg.printf("%12s", f(res[n]))
		}
		cfg.printf("\n")
	}
	row("perf2bolt (host ms)", func(c costs) string { return f2(c.p2b * 1e3) })
	row("bolt (host ms)", func(c costs) string { return f2(c.bolt * 1e3) })
	row("replacement (sim ms)", func(c costs) string { return f2(c.pause * 1e3) })
	return nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
