package experiments

import (
	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/proc"
	"repro/internal/workloads/wl"
)

// DBI quantifies the argument of §I: dynamic binary instrumentation
// frameworks (Pin, DynamoRIO) could in principle deliver an optimized
// code layout too, but their recurring cost — chaining on direct
// transfers and code-cache lookups on every indirect call/return — eats
// the layout gains, while OCOLOS pays a one-time replacement cost and
// then runs at native speed.
//
// Four configurations on sqldb read_only:
//
//	original              — native, original layout
//	DBI + original layout — what plain Pin execution costs
//	DBI + BOLT layout     — a hypothetical Pin-based online optimizer
//	OCOLOS                — one-time cost, native speed after
func DBI(cfg Config) error {
	cfg.defaults()
	w, err := Workload("sqldb", cfg.Quick)
	if err != nil {
		return err
	}
	const input = "read_only"
	threads := cfg.threads(w.Threads)

	measure := func(bin *obj.Binary, dbi bool) (float64, error) {
		d, err := w.NewDriver(input, threads)
		if err != nil {
			return 0, err
		}
		p, err := proc.Load(bin, proc.Options{Threads: threads, Handler: d, DBI: dbi})
		if err != nil {
			return 0, err
		}
		p.RunFor(cfg.warm())
		tput := wl.Measure(p, d, cfg.window())
		return tput, p.Fault()
	}

	orig, err := measure(w.Binary, false)
	if err != nil {
		return err
	}
	dbiOrig, err := measure(w.Binary, true)
	if err != nil {
		return err
	}
	boltBin, err := cfg.OracleBolt(w, input)
	if err != nil {
		return err
	}
	dbiBolt, err := measure(boltBin, true)
	if err != nil {
		return err
	}
	oco, _, _, err := cfg.OCOLOSRun(w, input, core.Options{})
	if err != nil {
		return err
	}

	cfg.printf("DBI comparison (sqldb %s), normalized to native original\n", input)
	cfg.printf("%-28s %9s\n", "configuration", "speedup")
	cfg.printf("%-28s %8.2fx\n", "original (native)", 1.0)
	cfg.printf("%-28s %8.2fx\n", "DBI, original layout", dbiOrig/orig)
	cfg.printf("%-28s %8.2fx\n", "DBI, BOLT layout", dbiBolt/orig)
	cfg.printf("%-28s %8.2fx\n", "OCOLOS (native, online)", oco/orig)
	cfg.printf("the DBI framework's recurring per-transfer cost offsets the layout win (§I)\n")
	return nil
}
