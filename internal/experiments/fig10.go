package experiments

import (
	"fmt"

	"repro/internal/bam"
	"repro/internal/bolt"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/workloads/wl"
)

// Fig10 reproduces Figure 10: a from-scratch compiler build under BAM.
// For each number of profiled compiler executions k, two series are
// reported: the *ideal* build time (the k-profile BOLTed compiler
// available from the very start, no overheads) and the *actual BAM* build
// time (profiled runs are slower, the optimized binary arrives only after
// the background pipeline finishes). The original build and the
// full-profile BOLT build bound the plot from above and below.
func Fig10(cfg Config) error {
	cfg.defaults()
	w, err := Workload("compilersim", cfg.Quick)
	if err != nil {
		return err
	}
	njobs, slots := 192, 16
	ks := []int{1, 2, 3, 5, 8, 16, 32, 64, 128, 192}
	if cfg.Quick {
		njobs, slots = 64, 8
		ks = []int{1, 2, 4, 8, 16, 32, 64}
	}

	run := makeJobRunner(w)
	orig, err := bam.RunBaseline(w.Binary, slots, njobs, run)
	if err != nil {
		return err
	}

	// Pipeline wall time: measured against one job's duration (the paper's
	// perf2bolt+BOLT takes a couple of compiler-execution times).
	oneJob, err := run(w.Binary, false)
	if err != nil {
		return err
	}
	pipeline := 1.5 * oneJob.Seconds

	// Lower bound: profile every TU, optimize, rebuild from scratch.
	lower, err := idealBuild(cfg, w, njobs, njobs, slots, run)
	if err != nil {
		return err
	}

	cfg.printf("Figure 10: compilersim build, %d TUs, -j%d (times in simulated ms)\n", njobs, slots)
	cfg.printf("original build:        %8.3f ms\n", orig.MakespanSeconds*1e3)
	cfg.printf("BOLT full profile:     %8.3f ms (lower bound, %.2fx)\n",
		lower*1e3, orig.MakespanSeconds/lower)
	cfg.printf("%8s %12s %12s %10s %10s\n", "k", "ideal (ms)", "BAM (ms)", "ideal spd", "BAM spd")

	for _, k := range ks {
		ideal, err := idealBuild(cfg, w, k, njobs, slots, run)
		if err != nil {
			return err
		}
		res, err := bam.Run(bam.Config{
			Target:          w.Binary,
			ProfileRuns:     k,
			Slots:           slots,
			PipelineSeconds: pipeline,
		}, njobs, run)
		if err != nil {
			return err
		}
		cfg.printf("%8d %12.3f %12.3f %9.2fx %9.2fx\n",
			k, ideal*1e3, res.MakespanSeconds*1e3,
			orig.MakespanSeconds/ideal, orig.MakespanSeconds/res.MakespanSeconds)
	}
	return nil
}

// makeJobRunner returns a RunJob that compiles one TU per invocation,
// cycling TU identities.
func makeJobRunner(w *wl.Workload) bam.RunJob {
	tu := 0
	return func(bin *obj.Binary, profile bool) (bam.JobResult, error) {
		input := fmt.Sprintf("tu:%d", tu)
		tu++
		d, err := w.NewDriver(input, 1)
		if err != nil {
			return bam.JobResult{}, err
		}
		p, err := proc.Load(bin, proc.Options{Threads: 1, Handler: d})
		if err != nil {
			return bam.JobResult{}, err
		}
		var rec *perf.Recorder
		if profile {
			rec = perf.Attach(p, perf.RecorderOptions{PeriodCycles: 3000, OverheadCycles: 600})
		}
		p.RunUntilHalt(0)
		if err := p.Fault(); err != nil {
			return bam.JobResult{}, err
		}
		jr := bam.JobResult{Seconds: p.Seconds()}
		if rec != nil {
			jr.Raw = rec.Stop()
		}
		return jr, nil
	}
}

// idealBuild measures the build time when a binary optimized from the
// first k TUs' profiles is available from the very start (no profiling
// overhead, no pipeline wait) — the green curve of Figure 10.
func idealBuild(cfg Config, w *wl.Workload, k, njobs, slots int, run bam.RunJob) (float64, error) {
	var agg perf.RawProfile
	for i := 0; i < k; i++ {
		d, err := w.NewDriver(fmt.Sprintf("tu:%d", i), 1)
		if err != nil {
			return 0, err
		}
		p, err := proc.Load(w.Binary, proc.Options{Threads: 1, Handler: d})
		if err != nil {
			return 0, err
		}
		rec := perf.Attach(p, perf.RecorderOptions{PeriodCycles: 3000, OverheadCycles: 600})
		p.RunUntilHalt(0)
		if err := p.Fault(); err != nil {
			return 0, err
		}
		raw := rec.Stop()
		agg.Samples = append(agg.Samples, raw.Samples...)
	}
	prof, err := bolt.ConvertProfile(&agg, w.Binary)
	if err != nil {
		return 0, err
	}
	res, err := bolt.Optimize(w.Binary, prof, bolt.Options{})
	if err != nil {
		return 0, err
	}
	out, err := bam.RunBaseline(res.Binary, slots, njobs, run)
	if err != nil {
		return 0, err
	}
	return out.MakespanSeconds, nil
}
