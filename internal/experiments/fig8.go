package experiments

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obj"
	"repro/internal/proc"
)

// MicroRow is one configuration's front-end counters for Figure 8.
type MicroRow struct {
	Input  string
	Config string // original / OCOLOS / BOLT
	cpu.Stats
}

// Fig8 reproduces Figure 8: front-end microarchitectural events per
// kilo-instruction (L1i MPKI, iTLB MPKI, taken branches, mispredicted
// branches) for every sqldb input under the original binary, OCOLOS, and
// offline BOLT.
func Fig8(cfg Config) error {
	cfg.defaults()
	w, err := Workload("sqldb", cfg.Quick)
	if err != nil {
		return err
	}
	inputs := w.Inputs
	if cfg.Quick {
		inputs = inputs[:3]
	}

	cfg.printf("Figure 8: front-end events per kilo-instruction, sqldb\n")
	cfg.printf("%-17s %-9s %9s %9s %9s %9s %7s\n",
		"input", "config", "L1i", "iTLB", "taken", "misp", "IPC")

	measureStats := func(bin *obj.Binary, input string) (cpu.Stats, error) {
		d, err := w.NewDriver(input, cfg.threads(w.Threads))
		if err != nil {
			return cpu.Stats{}, err
		}
		p, err := proc.Load(bin, proc.Options{Threads: cfg.threads(w.Threads), Handler: d})
		if err != nil {
			return cpu.Stats{}, err
		}
		p.RunFor(cfg.warm())
		before := p.Stats()
		p.RunFor(cfg.window())
		return p.Stats().Sub(before), p.Fault()
	}

	for _, input := range inputs {
		orig, err := measureStats(w.Binary, input)
		if err != nil {
			return err
		}
		printRow := func(config string, s cpu.Stats) {
			cfg.printf("%-17s %-9s %9.2f %9.3f %9.1f %9.2f %7.2f\n",
				input, config, s.L1iMPKI(), s.ITLBMPKI(), s.TakenPKI(), s.MispredictPKI(), s.IPC())
		}
		printRow("original", orig)

		// OCOLOS: steady-state counters after one replacement round.
		_, _, p, err := cfg.OCOLOSRun(w, input, core.Options{})
		if err != nil {
			return err
		}
		before := p.Stats()
		p.RunFor(cfg.window())
		printRow("OCOLOS", p.Stats().Sub(before))

		boltBin, err := cfg.OracleBolt(w, input)
		if err != nil {
			return err
		}
		bs, err := measureStats(boltBin, input)
		if err != nil {
			return err
		}
		printRow("BOLT", bs)
	}
	return nil
}
