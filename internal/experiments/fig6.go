package experiments

import (
	"repro/internal/bolt"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/workloads/wl"
)

// Fig6 reproduces Figure 6: speedup on sqldb read_only as a function of
// the profiling duration, for OCOLOS (online) and offline BOLT given the
// same amount of profile. Short profiles hurt both; past a knee, more
// profiling buys little. Durations are simulated time; our requests are
// ~1000× shorter than Sysbench transactions, so the knee appears around
// 0.2–1 ms where the paper's sits around 0.1–1 s.
func Fig6(cfg Config) error {
	cfg.defaults()
	w, err := Workload("sqldb", cfg.Quick)
	if err != nil {
		return err
	}
	const input = "read_only"
	durations := []float64{20e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3}
	if cfg.Quick {
		durations = []float64{20e-6, 100e-6, 500e-6, 2e-3}
	}

	orig, err := cfg.MeasureOriginal(w, input)
	if err != nil {
		return err
	}
	cfg.printf("Figure 6: speedup vs profiling duration (sqldb %s)\n", input)
	cfg.printf("%12s %10s %12s %10s\n", "profile (ms)", "samples", "OCOLOS", "BOLT")

	for _, dur := range durations {
		// OCOLOS online with this profiling window.
		threads := cfg.threads(w.Threads)
		d, err := w.NewDriver(input, threads)
		if err != nil {
			return err
		}
		p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
		if err != nil {
			return err
		}
		ctl, err := core.New(p, w.Binary, core.Options{})
		if err != nil {
			return err
		}
		p.RunFor(cfg.warm())
		raw := ctl.Profile(dur)
		samples := len(raw.Samples)
		// With no usable profile OCOLOS leaves C0 running: speedup 1.0.
		ocoSpeed := 1.0
		bs, err := ctl.BuildOptimized(raw)
		if err == nil {
			if _, err := ctl.Replace(bs.Result.Binary); err != nil {
				return err
			}
			p.RunFor(cfg.warm())
			ocoSpeed = wl.Measure(p, d, cfg.window()) / orig
			if err := p.Fault(); err != nil {
				return err
			}
		}

		// Offline BOLT with the same amount of profiling data.
		boltSpeed := 1.0
		raw2, err := profileFor(cfg, w, input, dur)
		if err != nil {
			return err
		}
		prof, err := bolt.ConvertProfile(raw2, w.Binary)
		if err == nil {
			if res, err := bolt.Optimize(w.Binary, prof, bolt.Options{}); err == nil {
				t, err := cfg.MeasureBinary(w, res.Binary, input)
				if err != nil {
					return err
				}
				boltSpeed = t / orig
			}
		}
		cfg.printf("%12.3f %10d %11.2fx %9.2fx\n", dur*1e3, samples, ocoSpeed, boltSpeed)
	}
	return nil
}

// profileFor records a profile of exactly dur simulated seconds.
func profileFor(cfg Config, w *wl.Workload, input string, dur float64) (*perf.RawProfile, error) {
	threads := cfg.threads(w.Threads)
	d, err := w.NewDriver(input, threads)
	if err != nil {
		return nil, err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
	if err != nil {
		return nil, err
	}
	p.RunFor(cfg.warm())
	raw := perf.Record(p, dur, perf.RecorderOptions{})
	return raw, p.Fault()
}
