package experiments

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestPhaseExperiment is the acceptance gate for the drift subsystem's
// end-to-end story: after each hot-tenant turn the drift arm must
// re-optimize back to ≥95% of its post-initial-wave level, while the
// no-drift ablation stays structurally stale — zero re-optimizations,
// still serving the turn-0 layout.
func TestPhaseExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("two full drift timelines in -short mode")
	}
	const turns, tenants = 2, 3
	res, err := RunPhase(true, turns, tenants)
	if err != nil {
		t.Fatal(err)
	}

	opt := res.Optimized["drift"]
	if opt <= 0 {
		t.Fatal("drift arm has no optimized level")
	}
	for turn := 1; turn <= turns; turn++ {
		rec, ok := res.Recovered[turn]
		if !ok {
			t.Fatalf("turn %d never re-optimized", turn)
		}
		if ratio := rec / opt; ratio < 0.95 {
			t.Errorf("turn %d recovered to only %.1f%% of the optimized level", turn, 100*ratio)
		}
		if _, ok := res.Stale[turn]; !ok {
			t.Errorf("turn %d has no ablation measurement", turn)
		}
	}

	reopts := 0
	for _, pt := range res.Points {
		switch {
		case pt.Arm == "no_drift" && pt.Reopts != 0:
			t.Errorf("ablation point %+v counts re-optimizations", pt)
		case pt.Arm == "drift" && pt.Event == "reoptimized":
			reopts = pt.Reopts
			if pt.DriftScore <= 0 {
				t.Errorf("reoptimized point %+v carries no drift score", pt)
			}
		}
	}
	if reopts != turns {
		t.Errorf("drift arm finished with %d reopts, want %d", reopts, turns)
	}

	// The CSV artifact round-trips: header plus one line per point.
	path := t.TempDir() + "/phase.csv"
	if err := WritePhaseCSV(res, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Points)+1 {
		t.Errorf("csv has %d rows, want %d points + header", len(rows), len(res.Points))
	}
	if got := strings.Join(rows[0], ","); got != "arm,turn,event,sim_s,throughput,drift_score,reopts" {
		t.Errorf("csv header %q", got)
	}
}

// driftBenchDoc is the BENCH_drift.json schema: per-turn staleness and
// recovery of the drift arm against the no-drift ablation, plus the
// simulated time each re-convergence took.
type driftBenchDoc struct {
	Tenants          int              `json:"tenants"`
	Turns            int              `json:"turns"`
	OptimizedDrift   float64          `json:"optimized_drift_rps"`
	OptimizedNoDrift float64          `json:"optimized_no_drift_rps"`
	PerTurn          []driftBenchTurn `json:"per_turn"`
}

type driftBenchTurn struct {
	Turn              int     `json:"turn"`
	StaleRPS          float64 `json:"stale_rps"`
	RecoveredRPS      float64 `json:"recovered_rps"`
	RecoveryRatio     float64 `json:"recovery_ratio"`
	AblationStaleRPS  float64 `json:"ablation_stale_rps"`
	DriftScore        float64 `json:"drift_score"`
	ReconvergeSimSecs float64 `json:"reconverge_sim_seconds"`
}

// TestDriftBench is the drift section of scripts/bench.sh: it runs the
// phase timeline at full scale and writes BENCH_drift.json. Gated
// behind DRIFT_BENCH_OUT; DRIFT_BENCH_QUICK=1 scales it down for the
// CI smoke.
func TestDriftBench(t *testing.T) {
	out := os.Getenv("DRIFT_BENCH_OUT")
	if out == "" {
		t.Skip("set DRIFT_BENCH_OUT=path to run the drift benchmark")
	}
	quick := os.Getenv("DRIFT_BENCH_QUICK") == "1"
	const turns, tenants = 2, 3
	res, err := RunPhase(quick, turns, tenants)
	if err != nil {
		t.Fatal(err)
	}

	doc := driftBenchDoc{
		Tenants:          tenants,
		Turns:            turns,
		OptimizedDrift:   res.Optimized["drift"],
		OptimizedNoDrift: res.Optimized["no_drift"],
	}
	// Re-convergence time is the simulated gap between a turn's stale
	// measurement and its post-re-optimization measurement.
	staleAt := map[int]float64{}
	type key struct {
		turn  int
		event string
	}
	byEvent := map[key]PhasePoint{}
	for _, pt := range res.Points {
		if pt.Arm != "drift" {
			continue
		}
		byEvent[key{pt.Turn, pt.Event}] = pt
		if pt.Event == "stale" {
			staleAt[pt.Turn] = pt.SimSeconds
		}
	}
	for turn := 1; turn <= turns; turn++ {
		reopt := byEvent[key{turn, "reoptimized"}]
		doc.PerTurn = append(doc.PerTurn, driftBenchTurn{
			Turn:              turn,
			StaleRPS:          byEvent[key{turn, "stale"}].Throughput,
			RecoveredRPS:      res.Recovered[turn],
			RecoveryRatio:     res.Recovered[turn] / res.Optimized["drift"],
			AblationStaleRPS:  res.Stale[turn],
			DriftScore:        byEvent[key{turn, "stale"}].DriftScore,
			ReconvergeSimSecs: reopt.SimSeconds - staleAt[turn],
		})
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
