package experiments

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

func TestRegistryCoversDesignIndex(t *testing.T) {
	// The per-experiment index in DESIGN.md promises these names.
	want := []string{"fig1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "tab1", "tab2", "ablate", "dbi", "recover", "stagger", "fleet", "phase"}
	for _, name := range want {
		if Registry[name] == nil {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, DESIGN.md indexes %d", len(Registry), len(want))
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names() not sorted")
		}
	}
}

func TestFig1Prints(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(Config{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Broadwell", "Zen 2", "32 K"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
	// Intel's line is flat at 32 KiB — the figure's whole point.
	for _, p := range Fig1Data {
		if p.Vendor == "Intel" && p.KiB != 32 {
			t.Errorf("Intel %s has %d KiB; the paper's Figure 1 shows a flat 32", p.Uarch, p.KiB)
		}
	}
}

func TestFitPlaneRecoversKnownModel(t *testing.T) {
	// Points generated from speedup = 0.9 + 2*FE - 0.5*Retiring.
	var pts []Fig9Point
	for _, fe := range []float64{0.1, 0.3, 0.5, 0.7} {
		for _, ret := range []float64{0.1, 0.2, 0.4} {
			pts = append(pts, Fig9Point{FrontEnd: fe, Retiring: ret, Speedup: 0.9 + 2*fe - 0.5*ret})
		}
	}
	w0, w1, w2 := fitPlane(pts)
	if math.Abs(w0-0.9) > 1e-6 || math.Abs(w1-2) > 1e-6 || math.Abs(w2+0.5) > 1e-6 {
		t.Errorf("fit = (%f, %f, %f), want (0.9, 2, -0.5)", w0, w1, w2)
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := Workload("nope", true); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWorkloadCache(t *testing.T) {
	a, err := Workload("kvcache", true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Workload("kvcache", true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("workload not cached")
	}
}

func TestCSVWriters(t *testing.T) {
	dir := t.TempDir()
	rows := []Fig5Row{{Workload: "w", Input: "i", Original: 100, OCOLOS: 1.4, BoltOr: 1.41, PGOOr: 1.2, BoltAvg: 1.3}}
	p5 := dir + "/fig5.csv"
	if err := WriteFig5CSV(rows, p5); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "1.4000") || !strings.Contains(string(b), "workload,input") {
		t.Errorf("fig5 csv content: %s", b)
	}

	pts := []Fig9Point{{Workload: "w", Input: "i", FrontEnd: 0.4, Retiring: 0.2, Speedup: 1.4}}
	p9 := dir + "/fig9.csv"
	if err := WriteFig9CSV(pts, p9); err != nil {
		t.Fatal(err)
	}
	b, err = os.ReadFile(p9)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "0.4000") {
		t.Errorf("fig9 csv content: %s", b)
	}
}
