package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden CSV files")

// goldenCompare writes the emitter output to a scratch file and diffs it
// against the checked-in golden; -update regenerates the goldens.
func goldenCompare(t *testing.T, golden string, emit func(path string) error) {
	t.Helper()
	got := filepath.Join(t.TempDir(), filepath.Base(golden))
	if err := emit(got); err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(golden, gotBytes, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if string(gotBytes) != string(want) {
		t.Errorf("output does not match %s\n--- got ---\n%s--- want ---\n%s",
			golden, gotBytes, want)
	}
}

// Fixed inputs exercising the formatting edge cases: zero values,
// sub-unity speedups, values needing rounding, and a comma-free check on
// every numeric column.
func fig5Fixture() []Fig5Row {
	return []Fig5Row{
		{Workload: "kvcache", Input: "set10_get90", Original: 812345.6, OCOLOS: 1.23456, BoltOr: 1.3, PGOOr: 1.12, BoltAvg: 1.0499949},
		{Workload: "docdb", Input: "scan95_insert5", Original: 4321.4, OCOLOS: 0.98765, BoltOr: 1.0, PGOOr: 0, BoltAvg: 0.25},
		{Workload: "rtlsim", Input: "dhrystone", Original: 0, OCOLOS: 0, BoltOr: 0, PGOOr: 0, BoltAvg: 0},
	}
}

func fig9Fixture() []Fig9Point {
	return []Fig9Point{
		{Workload: "sqldb", Input: "oltp_point_select", FrontEnd: 0.41237, Retiring: 0.28001, Speedup: 1.5},
		{Workload: "docdb", Input: "scan95_insert5", FrontEnd: 0.05, Retiring: 0.61235, Speedup: 0.99999},
	}
}

func TestWriteFig5CSVGolden(t *testing.T) {
	goldenCompare(t, filepath.Join("testdata", "fig5.golden.csv"), func(path string) error {
		return WriteFig5CSV(fig5Fixture(), path)
	})
}

func TestWriteFig9CSVGolden(t *testing.T) {
	goldenCompare(t, filepath.Join("testdata", "fig9.golden.csv"), func(path string) error {
		return WriteFig9CSV(fig9Fixture(), path)
	})
}
