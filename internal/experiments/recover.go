package experiments

import (
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/proc"
)

// Recover reproduces the end-to-end overhead analysis of §VI-C3: code
// replacement temporarily costs throughput (profiling, the background
// pipeline, the stop-the-world pause); afterwards the optimized code runs
// faster. The paper's rule of thumb: if replacement hurts performance by
// factor a for s seconds and then boosts it by factor b, the optimized
// code must run for at least a·s/b seconds to win back the lost ground.
// This experiment measures all three quantities, computes the predicted
// recovery time, and also finds the *observed* crossover point where the
// cumulative request count overtakes the would-have-been original line.
func Recover(cfg Config) error {
	cfg.defaults()
	w, err := Workload("sqldb", cfg.Quick)
	if err != nil {
		return err
	}
	const input = "read_only"
	threads := cfg.threads(w.Threads)

	d, err := w.NewDriver(input, threads)
	if err != nil {
		return err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
	if err != nil {
		return err
	}
	ctl, err := core.New(p, w.Binary, core.Options{})
	if err != nil {
		return err
	}

	// Baseline rate from the warm-up region.
	p.RunFor(cfg.warm())
	warmStart, warmT0 := d.Completed(), p.Seconds()
	p.RunFor(cfg.window())
	origRate := float64(d.Completed()-warmStart) / (p.Seconds() - warmT0)

	// Replacement work: profiling + pipeline + pause (regions 2–4).
	workStartReq, workStartT := d.Completed(), p.Seconds()
	raw := perf.Record(p, cfg.profileDur(), perf.RecorderOptions{})
	bs, err := ctl.BuildOptimized(raw)
	if err != nil {
		return err
	}
	if _, err := ctl.Replace(bs.Result.Binary); err != nil {
		return err
	}
	p.RunFor(cfg.warm() / 4) // let the pause land in the timeline
	workRate := float64(d.Completed()-workStartReq) / (p.Seconds() - workStartT)
	s := p.Seconds() - workStartT

	// Optimized steady state.
	optStartReq, optStartT := d.Completed(), p.Seconds()
	p.RunFor(cfg.window())
	optRate := float64(d.Completed()-optStartReq) / (p.Seconds() - optStartT)
	if err := p.Fault(); err != nil {
		return err
	}

	a := 1 - workRate/origRate // fractional loss during replacement work
	b := optRate/origRate - 1  // fractional gain afterwards
	cfg.printf("Recovery analysis (§VI-C3), sqldb %s:\n", input)
	cfg.printf("original rate:        %12.0f req/s\n", origRate)
	cfg.printf("during replacement:   %12.0f req/s (a = %.2f loss) for s = %.2f ms\n", workRate, a, s*1e3)
	cfg.printf("after replacement:    %12.0f req/s (b = %.2f gain)\n", optRate, b)
	if b <= 0 {
		cfg.printf("no speedup: replacement never pays for itself on this input\n")
		return nil
	}
	predicted := a * s / b
	cfg.printf("predicted recovery:   run optimized code for a*s/b = %.2f ms to break even\n", predicted*1e3)

	// Observe the actual crossover: cumulative requests vs the original
	// line, measured from the start of replacement work.
	deficit := (origRate - workRate) * s // requests lost during the work
	surplusRate := optRate - origRate
	observed := deficit / surplusRate
	cfg.printf("observed deficit:     %.0f requests, repaid at %.0f req/s surplus -> %.2f ms\n",
		deficit, surplusRate, observed*1e3)
	cfg.printf("(the paper's MySQL deployment recovers in ~30 s; ours scales with our ms-long regions)\n")
	return nil
}
