package experiments

import (
	"encoding/csv"
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/telemetry"
	"repro/internal/workloads/docdb"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/sqldb"
	"repro/internal/workloads/wl"
)

// FleetScale reproduces the §V deployment story at fleet scale: a
// GWP-style profiler continuously watches a mixed tier of services, and
// OCOLOS acts as the actuator. Replicas of the database, document store,
// and cache run under one fleet.Manager; the TopDown scan picks the
// front-end-bound ones, the worker pool drives them through concurrent
// optimization rounds with staggered replacement pauses, and the
// regression guard sends losers back to C0. The output is the
// per-service outcome table plus the fleet-wide telemetry the paper
// argues a production rollout needs.
func FleetScale(cfg Config) error {
	cfg.defaults()

	type svcSpec struct {
		build func() (*wl.Workload, error)
		input string
	}
	specs := []svcSpec{
		{func() (*wl.Workload, error) { return Workload("sqldb", cfg.Quick) }, "read_only"},
		{func() (*wl.Workload, error) { return Workload("docdb", cfg.Quick) }, "read_update"},
		{func() (*wl.Workload, error) { return Workload("kvcache", cfg.Quick) }, "set10_get90"},
	}
	if cfg.Quick {
		// Quick mode swaps in small-scale builds so the bench variant of
		// this experiment stays in the seconds range.
		specs = []svcSpec{
			{func() (*wl.Workload, error) { return sqldb.Build(sqldb.Small()) }, "read_only"},
			{func() (*wl.Workload, error) { return docdb.Build(docdb.Small()) }, "read_update"},
			{func() (*wl.Workload, error) { return kvcache.Build(kvcache.Small()) }, "set10_get90"},
		}
	}

	metrics := telemetry.NewRegistry()
	mc := fleet.Config{
		Workers:   4,
		MaxPauses: 1,
		Timing: fleet.TimingConfig{
			ProfileDur: cfg.profileDur(),
			Warm:       cfg.warm(),
			Window:     cfg.window(),
		},
		Robustness: fleet.RobustnessConfig{
			MaxRounds:   2,
			RevertBelow: 1.0,
		},
		Metrics: metrics,
	}
	if cfg.Quick {
		// Small-scale services sit below the TopDown gate and their
		// windows are far smaller than a realistic pause, so quick mode
		// forces the lifecycle and keeps the pause off the timeline.
		mc.SkipGate = true
		mc.Timing = fleet.TimingConfig{ProfileDur: 0.0008, Warm: 0.0003, Window: 0.0004}
	}
	m, err := fleet.NewManager(mc)
	if err != nil {
		return err
	}

	const replicas = 2
	for _, sp := range specs {
		w, err := sp.build()
		if err != nil {
			return err
		}
		for i := 0; i < replicas; i++ {
			plan := fleet.ServicePlan{
				Name:     fmt.Sprintf("%s/%s#%d", w.Name, sp.input, i),
				Workload: w,
				Input:    sp.input,
				Threads:  cfg.threads(2),
			}
			if cfg.Quick {
				plan.Core = core.Options{NoChargePause: true}
			}
			s, err := m.AddService(plan)
			if err != nil {
				return err
			}
			s.Proc.RunFor(m.Config().Timing.Warm)
		}
	}

	rep, err := m.Run()
	if err != nil {
		return err
	}

	cfg.printf("Fleet deployment (§V): %d services, %d workers, pauses staggered %d at a time\n\n",
		len(rep.Services), m.Config().Workers, m.Config().MaxPauses)
	rep.Write(cfg.Out)

	var steady, reverted, totalRounds int
	var pause, gain float64
	for _, s := range rep.Services {
		totalRounds += len(s.Rounds)
		pause += s.PauseSeconds
		switch s.State {
		case fleet.Steady:
			steady++
			gain += s.FinalSpeedup
		case fleet.Reverted:
			reverted++
		}
	}
	cfg.printf("\n%d steady / %d reverted, %d optimization rounds, %.1f ms total pause",
		steady, reverted, totalRounds, pause*1e3)
	if steady > 0 {
		cfg.printf(", mean steady-state speedup %.2fx", gain/float64(steady))
	}
	cfg.printf("\npeak concurrent pauses: %d (budget %d)\n", m.PeakPauses(), m.Config().MaxPauses)

	if cfg.CSVDir != "" {
		if err := WriteFleetCSV(rep, cfg.CSVDir+"/fleet.csv"); err != nil {
			return err
		}
		cfg.printf("wrote %s/fleet.csv\n", cfg.CSVDir)
	}
	return nil
}

// WriteFleetCSV saves the fleet outcome table in a plot-ready form.
func WriteFleetCSV(rep *fleet.FleetReport, path string) error {
	return writeCSV(path, [][]string{{
		"service", "state", "selected", "frontend_share", "rounds", "speedup", "pause_s", "retries",
	}}, func(w *csv.Writer) error {
		for _, s := range rep.Services {
			if err := w.Write([]string{
				s.Name, s.State.String(),
				fmt.Sprintf("%v", s.Selected),
				fmt.Sprintf("%.4f", s.FrontEnd),
				fmt.Sprintf("%d", len(s.Rounds)),
				fmt.Sprintf("%.4f", s.FinalSpeedup),
				fmt.Sprintf("%.6f", s.PauseSeconds),
				fmt.Sprintf("%d", s.Retries),
			}); err != nil {
				return err
			}
		}
		return nil
	})
}
