package experiments

import (
	"io"
	"testing"

	"repro/internal/core"
)

// TestPaperShapes pins the qualitative results of Figure 5 (quick mode):
// which workloads win, roughly by how much, and the orderings between
// configurations. These are the claims the reproduction stands on, so
// they are enforced as a regression test.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute shape regression in -short mode")
	}
	cfg := Config{Quick: true, Out: io.Discard}

	speedup := func(wl, input string) float64 {
		w, err := Workload(wl, true)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := cfg.MeasureOriginal(w, input)
		if err != nil {
			t.Fatal(err)
		}
		oco, _, _, err := cfg.OCOLOSRun(w, input, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return oco / orig
	}

	// The front-end-bound database mix wins big (paper: 1.41×).
	if s := speedup("sqldb", "read_only"); s < 1.2 || s > 1.6 {
		t.Errorf("sqldb read_only speedup %.2f outside [1.2, 1.6]", s)
	}
	// The chip simulator is the biggest winner (paper: up to 2.2×).
	if s := speedup("rtlsim", "dhrystone"); s < 1.8 || s > 2.9 {
		t.Errorf("rtlsim dhrystone speedup %.2f outside [1.8, 2.9]", s)
	}
	// The tiny key-value cache barely moves (paper: ~1.05×).
	if s := speedup("kvcache", "set10_get90"); s < 0.97 || s > 1.15 {
		t.Errorf("kvcache speedup %.2f outside [0.97, 1.15]", s)
	}
	// The memory-bound scan mix gets no benefit (paper: a regression; our
	// DRAM model bounds it at ≈1.0 — see DESIGN.md deviations).
	if s := speedup("docdb", "scan95_insert5"); s < 0.9 || s > 1.1 {
		t.Errorf("docdb scan95 speedup %.2f outside [0.9, 1.1]", s)
	}

	// Configuration ordering on sqldb read_only: compiler PGO with the
	// same oracle profile trails BOLT (§VI-B).
	w, err := Workload("sqldb", true)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := cfg.MeasureOriginal(w, "read_only")
	if err != nil {
		t.Fatal(err)
	}
	boltBin, err := cfg.OracleBolt(w, "read_only")
	if err != nil {
		t.Fatal(err)
	}
	boltT, err := cfg.MeasureBinary(w, boltBin, "read_only")
	if err != nil {
		t.Fatal(err)
	}
	pgoBin, err := cfg.OraclePGO(w, "read_only")
	if err != nil {
		t.Fatal(err)
	}
	pgoT, err := cfg.MeasureBinary(w, pgoBin, "read_only")
	if err != nil {
		t.Fatal(err)
	}
	if !(pgoT > orig) {
		t.Errorf("PGO (%.0f) should beat original (%.0f)", pgoT, orig)
	}
	if !(boltT > pgoT) {
		t.Errorf("BOLT (%.0f) should beat PGO (%.0f) — the mapping-loss effect", boltT, pgoT)
	}
}
