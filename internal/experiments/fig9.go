package experiments

import (
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/workloads/wl"
)

// Fig9Point is one workload/input in the TopDown classification plane.
type Fig9Point struct {
	Workload string
	Input    string
	FrontEnd float64 // TopDown front-end share of the original binary
	Retiring float64
	Speedup  float64 // measured OCOLOS speedup
}

// Fig9 reproduces Figure 9: the TopDown front-end share and retiring
// share of the *original* binary predict which workloads OCOLOS will
// speed up. A linear model fit on (FrontEnd, Retiring) classifies
// benefit-vs-no-benefit; the paper uses the same two TopDown features.
func Fig9(cfg Config) error {
	cfg.defaults()
	pts, err := Fig9Points(cfg)
	if err != nil {
		return err
	}
	if cfg.CSVDir != "" {
		if err := WriteFig9CSV(pts, cfg.CSVDir+"/fig9.csv"); err != nil {
			return err
		}
	}
	cfg.printf("Figure 9: TopDown features of the original binary vs measured OCOLOS speedup\n")
	cfg.printf("%-9s %-17s %10s %10s %9s\n", "bench", "input", "FE-lat %", "retire %", "speedup")
	for _, p := range pts {
		cfg.printf("%-9s %-17s %10.1f %10.1f %8.2fx\n",
			p.Workload, p.Input, p.FrontEnd*100, p.Retiring*100, p.Speedup)
	}

	// Least-squares fit: speedup ≈ w0 + w1*FE + w2*Retiring.
	w0, w1, w2 := fitPlane(pts)
	correct := 0
	for _, p := range pts {
		pred := w0 + w1*p.FrontEnd + w2*p.Retiring
		if (pred > 1.05) == (p.Speedup > 1.05) {
			correct++
		}
	}
	cfg.printf("linear model speedup ≈ %.2f %+.2f*FE %+.2f*Retiring classifies %d/%d correctly (threshold 1.05x)\n",
		w0, w1, w2, correct, len(pts))

	// §VI-C4's safety net: even if the a-priori classification is wrong,
	// OCOLOS can always revert to C0. Demonstrate on the worst performer.
	worst := pts[0]
	for _, p := range pts {
		if p.Speedup < worst.Speedup {
			worst = p
		}
	}
	w, err := Workload(worst.Workload, cfg.Quick)
	if err != nil {
		return err
	}
	orig, err := cfg.MeasureOriginal(w, worst.Input)
	if err != nil {
		return err
	}
	threads := cfg.threads(w.Threads)
	d, err := w.NewDriver(worst.Input, threads)
	if err != nil {
		return err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
	if err != nil {
		return err
	}
	ctl, err := core.New(p, w.Binary, core.Options{})
	if err != nil {
		return err
	}
	p.RunFor(cfg.warm())
	if _, err := ctl.OptimizeRound(cfg.profileDur()); err != nil {
		return err
	}
	p.RunFor(cfg.warm() / 2)
	if _, err := ctl.Revert(); err != nil {
		return err
	}
	p.RunFor(cfg.warm())
	reverted := wl.Measure(p, d, cfg.window())
	if err := p.Fault(); err != nil {
		return err
	}
	cfg.printf("worst performer %s/%s (%.2fx): after Revert, %.2fx of original — losses are always recoverable (§VI-C4)\n",
		worst.Workload, worst.Input, worst.Speedup, reverted/orig)
	return nil
}

// Fig9Points measures the scatter.
func Fig9Points(cfg Config) ([]Fig9Point, error) {
	cfg.defaults()
	var pts []Fig9Point
	for _, name := range ServerWorkloads() {
		w, err := Workload(name, cfg.Quick)
		if err != nil {
			return nil, err
		}
		inputs := w.Inputs
		if cfg.Quick && len(inputs) > 2 {
			inputs = inputs[:2]
		}
		for _, input := range inputs {
			// TopDown of the original (the DMon-style first-stage check).
			d, err := w.NewDriver(input, cfg.threads(w.Threads))
			if err != nil {
				return nil, err
			}
			p, err := proc.Load(w.Binary, proc.Options{Threads: cfg.threads(w.Threads), Handler: d})
			if err != nil {
				return nil, err
			}
			p.RunFor(cfg.warm())
			td := perf.MeasureTopDown(p, cfg.window()).TopDown()
			if err := p.Fault(); err != nil {
				return nil, err
			}

			orig, err := cfg.MeasureOriginal(w, input)
			if err != nil {
				return nil, err
			}
			ocoT, _, _, err := cfg.OCOLOSRun(w, input, core.Options{})
			if err != nil {
				return nil, err
			}
			pts = append(pts, Fig9Point{
				Workload: name, Input: input,
				FrontEnd: td.FrontEnd, Retiring: td.Retiring,
				Speedup: ocoT / orig,
			})
		}
	}
	return pts, nil
}

// fitPlane solves the 3-parameter least squares via normal equations.
func fitPlane(pts []Fig9Point) (w0, w1, w2 float64) {
	// Build X^T X and X^T y for X rows [1, FE, Ret].
	var a [3][3]float64
	var b [3]float64
	for _, p := range pts {
		x := [3]float64{1, p.FrontEnd, p.Retiring}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] += x[i] * x[j]
			}
			b[i] += x[i] * p.Speedup
		}
	}
	// Gaussian elimination.
	for i := 0; i < 3; i++ {
		// Pivot.
		piv := i
		for r := i + 1; r < 3; r++ {
			if abs(a[r][i]) > abs(a[piv][i]) {
				piv = r
			}
		}
		a[i], a[piv] = a[piv], a[i]
		b[i], b[piv] = b[piv], b[i]
		if abs(a[i][i]) < 1e-12 {
			return 1, 0, 0 // degenerate: fall back to "no benefit anywhere"
		}
		for r := 0; r < 3; r++ {
			if r == i {
				continue
			}
			f := a[r][i] / a[i][i]
			for cix := 0; cix < 3; cix++ {
				a[r][cix] -= f * a[i][cix]
			}
			b[r] -= f * b[i]
		}
	}
	return b[0] / a[0][0], b[1] / a[1][1], b[2] / a[2][2]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
