package experiments

import (
	"repro/internal/bolt"
	"repro/internal/core"
)

// Ablate quantifies the design choices §IV-B calls out and the optimizer
// passes behind them, on sqldb read_only:
//
//   - patching all C0 direct calls instead of only stack-live functions
//     (the paper found it does not improve performance — cold functions
//     don't run — but lengthens the pause)
//   - disabling v-table patching (most steering lost)
//   - disabling stack-live call patching
//   - disabling the function-pointer hook (single round only)
//   - BOLT pass ablations: Pettis-Hansen vs C3 function order, no
//     hot/cold splitting, no basic-block reordering
func Ablate(cfg Config) error {
	cfg.defaults()
	w, err := Workload("sqldb", cfg.Quick)
	if err != nil {
		return err
	}
	const input = "read_only"
	orig, err := cfg.MeasureOriginal(w, input)
	if err != nil {
		return err
	}
	cfg.printf("Ablations on sqldb %s (speedup vs original; pause in simulated ms)\n", input)
	cfg.printf("%-34s %9s %11s\n", "configuration", "speedup", "pause (ms)")

	runCase := func(label string, opts core.Options) error {
		t, ctl, _, err := cfg.OCOLOSRun(w, input, opts)
		if err != nil {
			return err
		}
		pause := ctl.Reports[0].PauseSeconds * 1e3
		cfg.printf("%-34s %8.2fx %11.2f\n", label, t/orig, pause)
		return nil
	}

	cases := []struct {
		label string
		opts  core.Options
	}{
		{"OCOLOS default", core.Options{}},
		{"patch ALL C0 calls", core.Options{PatchAllCalls: true}},
		{"no v-table patching", core.Options{NoPatchVTables: true}},
		{"no stack-live call patching", core.Options{NoPatchStackCalls: true}},
		{"no function-pointer hook", core.Options{NoFuncPtrHook: true}},
		{"function order: Pettis-Hansen", core.Options{Bolt: bolt.Options{FuncOrder: bolt.OrderPH}}},
		{"function order: none", core.Options{Bolt: bolt.Options{FuncOrder: bolt.OrderNone}}},
		{"no hot/cold splitting", core.Options{Bolt: bolt.Options{NoSplit: true}}},
		{"no block reordering", core.Options{Bolt: bolt.Options{NoReorderBlocks: true}}},
		{"no peephole (keep padding)", core.Options{Bolt: bolt.Options{NoPeephole: true}}},
		{"no split + no block reorder", core.Options{Bolt: bolt.Options{NoSplit: true, NoReorderBlocks: true}}},
		{"trampolines (redirect all)", core.Options{Trampolines: true}},
		{"parallel pointer patching", core.Options{ParallelPatch: true}},
	}
	for _, c := range cases {
		if err := runCase(c.label, c.opts); err != nil {
			return err
		}
	}
	return nil
}
