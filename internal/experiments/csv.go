package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
)

// WriteFig5CSV saves the Figure 5 data in a plot-ready form.
func WriteFig5CSV(rows []Fig5Row, path string) error {
	return writeCSV(path, [][]string{{
		"workload", "input", "original_req_s", "ocolos", "bolt_oracle", "pgo_oracle", "bolt_average",
	}}, func(w *csv.Writer) error {
		for _, r := range rows {
			if err := w.Write([]string{
				r.Workload, r.Input,
				fmt.Sprintf("%.0f", r.Original),
				fmt.Sprintf("%.4f", r.OCOLOS),
				fmt.Sprintf("%.4f", r.BoltOr),
				fmt.Sprintf("%.4f", r.PGOOr),
				fmt.Sprintf("%.4f", r.BoltAvg),
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// WriteFig9CSV saves the Figure 9 scatter in a plot-ready form.
func WriteFig9CSV(pts []Fig9Point, path string) error {
	return writeCSV(path, [][]string{{
		"workload", "input", "frontend_share", "retiring_share", "ocolos_speedup",
	}}, func(w *csv.Writer) error {
		for _, p := range pts {
			if err := w.Write([]string{
				p.Workload, p.Input,
				fmt.Sprintf("%.4f", p.FrontEnd),
				fmt.Sprintf("%.4f", p.Retiring),
				fmt.Sprintf("%.4f", p.Speedup),
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

func writeCSV(path string, header [][]string, body func(*csv.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	for _, h := range header {
		if err := w.Write(h); err != nil {
			f.Close()
			return err
		}
	}
	if err := body(w); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
