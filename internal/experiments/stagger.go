package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/obj"
)

// Stagger reproduces the operational guidance of §IV-D: code replacement
// pauses are scheduled, so a load-balanced tier should rotate them across
// replicas instead of replacing everywhere at once. Four sqldb replicas
// serve the same mix; one deployment replaces all replicas in the same
// window, the other staggers one replacement per window. Fleet-level
// throughput per window shows the difference: the staggered rollout never
// loses more than one replica's capacity, while the simultaneous one
// craters for a full window.
func Stagger(cfg Config) error {
	cfg.defaults()
	const replicas = 4
	const input = "read_only"

	run := func(staggered bool) ([]float64, error) {
		w, err := Workload("sqldb", cfg.Quick)
		if err != nil {
			return nil, err
		}
		var svcs []*fleet.Service
		for i := 0; i < replicas; i++ {
			s, err := fleet.NewService(fleet.ServicePlan{
				Name:     fmt.Sprintf("r%d", i),
				Workload: w,
				Input:    input,
				Threads:  cfg.threads(4),
			})
			if err != nil {
				return nil, err
			}
			svcs = append(svcs, s)
		}
		// Profile every replica and build its optimized binary up front
		// (the background pipeline runs while serving; here we only put
		// the *pauses* on the measured timeline).
		binaries := make([]*obj.Binary, len(svcs))
		for i, s := range svcs {
			raw := s.Ctl.Profile(cfg.profileDur() / 2)
			bs, err := s.Ctl.BuildOptimized(raw)
			if err != nil {
				return nil, err
			}
			binaries[i] = bs.Result.Binary
		}

		// Replicas advance against a shared wall clock so a replica's
		// stop-the-world pause (which advances its local time without
		// serving) shows up as lost fleet capacity in that window.
		slice := cfg.window() * 2
		var series []float64
		wall := 0.0
		for _, s := range svcs {
			if t := s.Proc.Seconds(); t > wall {
				wall = t
			}
		}
		completed := func() uint64 {
			var c uint64
			for _, s := range svcs {
				c += s.Driver.Completed()
			}
			return c
		}
		window := func() error {
			before := completed()
			wall += slice
			for _, s := range svcs {
				if dt := wall - s.Proc.Seconds(); dt > 0 {
					s.Proc.RunFor(dt)
				}
				if err := s.Proc.Fault(); err != nil {
					return err
				}
			}
			series = append(series, float64(completed()-before)/slice)
			return nil
		}
		// Warm-up windows.
		for i := 0; i < 2; i++ {
			if err := window(); err != nil {
				return nil, err
			}
		}
		// Rollout: replacement pauses land on the timeline.
		if staggered {
			for i, s := range svcs {
				if _, err := s.Ctl.Replace(binaries[i]); err != nil {
					return nil, err
				}
				if err := window(); err != nil {
					return nil, err
				}
			}
		} else {
			for i, s := range svcs {
				if _, err := s.Ctl.Replace(binaries[i]); err != nil {
					return nil, err
				}
			}
			for i := 0; i < replicas; i++ {
				if err := window(); err != nil {
					return nil, err
				}
			}
		}
		// Optimized steady state.
		for i := 0; i < 2; i++ {
			if err := window(); err != nil {
				return nil, err
			}
		}
		return series, nil
	}

	simul, err := run(false)
	if err != nil {
		return err
	}
	stag, err := run(true)
	if err != nil {
		return err
	}

	base := (simul[0] + simul[1]) / 2
	cfg.printf("Staggered rollout across a %d-replica tier (§IV-D), fleet req/s per window (1.00 = warm fleet)\n", replicas)
	cfg.printf("%8s %14s %14s\n", "window", "simultaneous", "staggered")
	n := len(simul)
	if len(stag) < n {
		n = len(stag)
	}
	minSim, minStag := 1.0, 1.0
	for i := 0; i < n; i++ {
		s, g := simul[i]/base, stag[i]/base
		if s < minSim {
			minSim = s
		}
		if g < minStag {
			minStag = g
		}
		cfg.printf("%8d %13.2f %13.2f\n", i, s, g)
	}
	cfg.printf("worst fleet capacity: simultaneous %.0f%%, staggered %.0f%% — rotate replacements behind the load balancer\n",
		minSim*100, minStag*100)
	return nil
}
