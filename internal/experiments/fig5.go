package experiments

import "repro/internal/core"

// Fig5Row is one benchmark/input row of the headline figure.
type Fig5Row struct {
	Workload string
	Input    string
	Original float64 // req/s
	OCOLOS   float64 // normalized to Original
	BoltOr   float64
	PGOOr    float64
	BoltAvg  float64
}

// Fig5 reproduces Figure 5: throughput of OCOLOS vs offline BOLT with an
// oracle profile, compiler PGO with the same oracle profile, and offline
// BOLT with an average-case profile, all normalized to the original
// binary, across every benchmark input.
func Fig5(cfg Config) error {
	cfg.defaults()
	rows, err := Fig5Rows(cfg)
	if err != nil {
		return err
	}
	if cfg.CSVDir != "" {
		if err := WriteFig5CSV(rows, cfg.CSVDir+"/fig5.csv"); err != nil {
			return err
		}
	}
	cfg.printf("Figure 5: normalized throughput (1.00 = original binary)\n")
	cfg.printf("%-9s %-17s %12s %8s %9s %8s %9s\n",
		"bench", "input", "orig req/s", "OCOLOS", "BOLT-or", "PGO-or", "BOLT-avg")
	var sumO, sumB float64
	for _, r := range rows {
		cfg.printf("%-9s %-17s %12.0f %7.2fx %8.2fx %7.2fx %8.2fx\n",
			r.Workload, r.Input, r.Original, r.OCOLOS, r.BoltOr, r.PGOOr, r.BoltAvg)
		sumO += r.OCOLOS
		sumB += r.BoltOr
	}
	n := float64(len(rows))
	cfg.printf("means: OCOLOS %.3fx, BOLT-oracle %.3fx (gap %.1f points); OCOLOS vs BOLT-avg %+.1f points\n",
		sumO/n, sumB/n, 100*(sumB-sumO)/n, 100*(sumO-avgOf(rows))/n)
	return nil
}

func avgOf(rows []Fig5Row) float64 {
	var s float64
	for _, r := range rows {
		s += r.BoltAvg
	}
	return s / float64(len(rows))
}

// Fig5Rows computes the figure's data.
func Fig5Rows(cfg Config) ([]Fig5Row, error) {
	cfg.defaults()
	var rows []Fig5Row
	for _, name := range ServerWorkloads() {
		w, err := Workload(name, cfg.Quick)
		if err != nil {
			return nil, err
		}
		// The average-case binary is shared across the workload's inputs.
		avgBin, err := cfg.AverageBolt(w)
		if err != nil {
			return nil, err
		}
		for _, input := range w.Inputs {
			orig, err := cfg.MeasureOriginal(w, input)
			if err != nil {
				return nil, err
			}
			ocoT, _, _, err := cfg.OCOLOSRun(w, input, core.Options{})
			if err != nil {
				return nil, err
			}
			oracleBin, err := cfg.OracleBolt(w, input)
			if err != nil {
				return nil, err
			}
			boltT, err := cfg.MeasureBinary(w, oracleBin, input)
			if err != nil {
				return nil, err
			}
			pgoBin, err := cfg.OraclePGO(w, input)
			if err != nil {
				return nil, err
			}
			pgoT, err := cfg.MeasureBinary(w, pgoBin, input)
			if err != nil {
				return nil, err
			}
			avgT, err := cfg.MeasureBinary(w, avgBin, input)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig5Row{
				Workload: name,
				Input:    input,
				Original: orig,
				OCOLOS:   ocoT / orig,
				BoltOr:   boltT / orig,
				PGOOr:    pgoT / orig,
				BoltAvg:  avgT / orig,
			})
		}
	}
	return rows, nil
}
