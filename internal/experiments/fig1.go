package experiments

// Fig1 reproduces Figure 1: per-core L1 instruction cache capacity of
// AMD and Intel server microarchitectures over time — static public data
// showing L1i capacity has been flat for 15 years while code footprints
// grew, the motivation for code layout optimization.

// L1iPoint is one microarchitecture data point.
type L1iPoint struct {
	Year   int
	Vendor string
	Uarch  string
	KiB    int
}

// Fig1Data is the published per-core L1i capacity history the figure
// plots.
var Fig1Data = []L1iPoint{
	{2006, "Intel", "Core (Merom)", 32},
	{2008, "Intel", "Nehalem", 32},
	{2011, "Intel", "Sandy Bridge", 32},
	{2013, "Intel", "Haswell", 32},
	{2015, "Intel", "Broadwell", 32},
	{2017, "Intel", "Skylake-SP", 32},
	{2019, "Intel", "Cascade Lake", 32},
	{2021, "Intel", "Ice Lake-SP", 32},
	{2007, "AMD", "K10 (Barcelona)", 64},
	{2011, "AMD", "Bulldozer", 64},
	{2014, "AMD", "Steamroller", 96},
	{2017, "AMD", "Zen", 64},
	{2019, "AMD", "Zen 2", 32},
	{2020, "AMD", "Zen 3", 32},
	{2022, "AMD", "Zen 4", 32},
}

// Fig1 prints the data series.
func Fig1(cfg Config) error {
	cfg.defaults()
	cfg.printf("Figure 1: per-core L1i capacity over time (KiB)\n")
	cfg.printf("%-6s %-7s %-18s %6s\n", "year", "vendor", "uarch", "L1i")
	for _, p := range Fig1Data {
		cfg.printf("%-6d %-7s %-18s %4d K\n", p.Year, p.Vendor, p.Uarch, p.KiB)
	}
	cfg.printf("(the simulator's core model uses the Broadwell point: 32 KiB, 8-way)\n")
	return nil
}
