// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) against the simulated substrate. Each experiment is a
// function that runs the measurement and prints paper-style rows/series;
// the Registry maps experiment names (fig3, fig5, …, tab1, tab2) to
// runners for cmd/experiments and the root-level benchmarks.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/bolt"
	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/pgo"
	"repro/internal/proc"
	"repro/internal/workloads/compilersim"
	"repro/internal/workloads/docdb"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/loopsim"
	"repro/internal/workloads/rtlsim"
	"repro/internal/workloads/sqldb"
	"repro/internal/workloads/wl"
)

// Config controls measurement durations and output.
type Config struct {
	// Quick shrinks durations and thread counts for CI/bench runs; the
	// full setting is what cmd/experiments uses by default.
	Quick bool
	Out   io.Writer
	// CSVDir, when set, makes the figure experiments also write
	// plot-ready CSVs (fig5.csv, fig9.csv) into this directory.
	CSVDir string
}

func (c *Config) defaults() {
	if c.Out == nil {
		c.Out = os.Stdout
	}
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// Simulated durations (seconds). The paper profiles for 60 s and measures
// steady state; our requests are ~1000× shorter than MySQL transactions,
// so all windows scale down accordingly (documented in EXPERIMENTS.md).
func (c Config) warm() float64 {
	if c.Quick {
		return 0.0012
	}
	return 0.003
}
func (c Config) profileDur() float64 {
	if c.Quick {
		return 0.002
	}
	return 0.005
}
func (c Config) window() float64 {
	if c.Quick {
		return 0.002
	}
	return 0.005
}
func (c Config) threads(def int) int {
	if c.Quick && def > 4 {
		return 4
	}
	return def
}

// buildCache memoizes workload construction across experiments.
var buildCache = map[string]*wl.Workload{}

// Workload builds (or returns the cached) evaluation-scale workload.
func Workload(name string, quick bool) (*wl.Workload, error) {
	key := name
	if quick {
		key += ":q"
	}
	if w, ok := buildCache[key]; ok {
		return w, nil
	}
	var w *wl.Workload
	var err error
	switch name {
	case "sqldb":
		w, err = sqldb.Build(sqldb.Full())
	case "docdb":
		w, err = docdb.Build(docdb.Full())
	case "kvcache":
		w, err = kvcache.Build(kvcache.Full())
	case "rtlsim":
		w, err = rtlsim.Build(rtlsim.Full())
	case "loopsim":
		w, err = loopsim.Build(loopsim.Full())
	case "compilersim":
		w, err = compilersim.Build(compilersim.Full())
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	if err != nil {
		return nil, err
	}
	buildCache[key] = w
	return w, nil
}

// ServerWorkloads are the Figure 5 benchmarks (compilersim is batch-only).
func ServerWorkloads() []string { return []string{"sqldb", "docdb", "kvcache", "rtlsim"} }

// measureBinary runs the given binary under the workload's driver and
// returns steady-state throughput plus the measurement-window counters.
func measureBinary(w *wl.Workload, bin *obj.Binary, input string, threads int, warm, window float64) (float64, *proc.Process, *wl.Driver, error) {
	d, err := w.NewDriver(input, threads)
	if err != nil {
		return 0, nil, nil, err
	}
	p, err := proc.Load(bin, proc.Options{Threads: threads, Handler: d})
	if err != nil {
		return 0, nil, nil, err
	}
	p.RunFor(warm)
	tput := wl.Measure(p, d, window)
	if err := p.Fault(); err != nil {
		return 0, nil, nil, fmt.Errorf("%s/%s: %w", bin.Name, input, err)
	}
	return tput, p, d, nil
}

// MeasureOriginal measures the unmodified binary.
func (c Config) MeasureOriginal(w *wl.Workload, input string) (float64, error) {
	t, _, _, err := measureBinary(w, w.Binary, input, c.threads(w.Threads), c.warm(), c.window())
	return t, err
}

// ProfileInput records an LBR profile of the workload running the input.
func (c Config) ProfileInput(w *wl.Workload, input string) (*perf.RawProfile, error) {
	d, err := w.NewDriver(input, c.threads(w.Threads))
	if err != nil {
		return nil, err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: c.threads(w.Threads), Handler: d})
	if err != nil {
		return nil, err
	}
	p.RunFor(c.warm())
	raw := perf.Record(p, c.profileDur(), perf.RecorderOptions{})
	if err := p.Fault(); err != nil {
		return nil, err
	}
	return raw, nil
}

// OracleBolt produces the offline-BOLT binary using a profile of the same
// input it will run (the "BOLT oracle input" bar of Figure 5).
func (c Config) OracleBolt(w *wl.Workload, input string) (*obj.Binary, error) {
	raw, err := c.ProfileInput(w, input)
	if err != nil {
		return nil, err
	}
	prof, err := bolt.ConvertProfile(raw, w.Binary)
	if err != nil {
		return nil, err
	}
	res, err := bolt.Optimize(w.Binary, prof, bolt.Options{})
	if err != nil {
		return nil, err
	}
	return res.Binary, nil
}

// AverageBolt aggregates profiles across all of the workload's inputs
// before optimizing (the "BOLT average-case input" bar).
func (c Config) AverageBolt(w *wl.Workload) (*obj.Binary, error) {
	var agg perf.RawProfile
	for _, input := range w.Inputs {
		raw, err := c.ProfileInput(w, input)
		if err != nil {
			return nil, err
		}
		agg.Samples = append(agg.Samples, raw.Samples...)
		agg.Seconds += raw.Seconds
	}
	prof, err := bolt.ConvertProfile(&agg, w.Binary)
	if err != nil {
		return nil, err
	}
	res, err := bolt.Optimize(w.Binary, prof, bolt.Options{})
	if err != nil {
		return nil, err
	}
	return res.Binary, nil
}

// OraclePGO produces the compiler-PGO binary from an oracle profile.
func (c Config) OraclePGO(w *wl.Workload, input string) (*obj.Binary, error) {
	raw, err := c.ProfileInput(w, input)
	if err != nil {
		return nil, err
	}
	prof, err := bolt.ConvertProfile(raw, w.Binary)
	if err != nil {
		return nil, err
	}
	return pgo.Optimize(w.Binary, prof, pgo.Options{})
}

// MeasureBinary measures an optimized binary under the workload's driver.
func (c Config) MeasureBinary(w *wl.Workload, bin *obj.Binary, input string) (float64, error) {
	t, _, _, err := measureBinary(w, bin, input, c.threads(w.Threads), c.warm(), c.window())
	return t, err
}

// OCOLOSRun attaches OCOLOS to a live process on the input, performs one
// optimization round, and returns steady-state throughput after
// replacement, the controller (for its reports) and the process.
func (c Config) OCOLOSRun(w *wl.Workload, input string, opts core.Options) (float64, *core.Controller, *proc.Process, error) {
	threads := c.threads(w.Threads)
	d, err := w.NewDriver(input, threads)
	if err != nil {
		return 0, nil, nil, err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
	if err != nil {
		return 0, nil, nil, err
	}
	ctl, err := core.New(p, w.Binary, opts)
	if err != nil {
		return 0, nil, nil, err
	}
	p.RunFor(c.warm())
	if _, err := ctl.OptimizeRound(c.profileDur()); err != nil {
		return 0, nil, nil, err
	}
	p.RunFor(c.warm()) // settle into the optimized steady state
	tput := wl.Measure(p, d, c.window())
	if err := p.Fault(); err != nil {
		return 0, nil, nil, err
	}
	return tput, ctl, p, nil
}

// Runner executes one experiment.
type Runner func(Config) error

// Registry maps experiment names to runners.
var Registry = map[string]Runner{
	"fig1":    Fig1,
	"fig3":    Fig3,
	"fig5":    Fig5,
	"fig6":    Fig6,
	"fig7":    Fig7,
	"fig8":    Fig8,
	"fig9":    Fig9,
	"fig10":   Fig10,
	"tab1":    Tab1,
	"tab2":    Tab2,
	"ablate":  Ablate,
	"dbi":     DBI,
	"recover": Recover,
	"stagger": Stagger,
	"fleet":   FleetScale,
	"phase":   Phase,
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
