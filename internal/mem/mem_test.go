package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestByteAndWord(t *testing.T) {
	as := NewAddressSpace()
	if got := as.LoadByte(0x1234); got != 0 {
		t.Errorf("untouched memory reads %d, want 0", got)
	}
	as.StoreByte(0x1234, 0xAB)
	if got := as.LoadByte(0x1234); got != 0xAB {
		t.Errorf("LoadByte = %#x, want 0xAB", got)
	}
	as.WriteWord(0x2000, 0xDEADBEEFCAFEF00D)
	if got := as.ReadWord(0x2000); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("ReadWord = %#x", got)
	}
}

func TestWordAcrossPageBoundary(t *testing.T) {
	as := NewAddressSpace()
	addr := uint64(PageSize - 3) // straddles page 0 and 1
	as.WriteWord(addr, 0x1122334455667788)
	if got := as.ReadWord(addr); got != 0x1122334455667788 {
		t.Errorf("straddling ReadWord = %#x", got)
	}
	// Bytes land on both pages.
	if as.LoadByte(PageSize-3) != 0x88 || as.LoadByte(PageSize) != 0x55 {
		t.Error("straddling word bytes misplaced")
	}
}

func TestBulkReadWrite(t *testing.T) {
	as := NewAddressSpace()
	src := make([]byte, 3*PageSize+17)
	for i := range src {
		src[i] = byte(i * 7)
	}
	base := uint64(0x400000 + 100)
	as.Write(base, src)
	dst := make([]byte, len(src))
	as.Read(base, dst)
	if !bytes.Equal(src, dst) {
		t.Error("bulk round trip mismatch")
	}
}

func TestReadWriteQuick(t *testing.T) {
	as := NewAddressSpace()
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		base := 0x10000 + uint64(off)
		as.Write(base, data)
		out := make([]byte, len(data))
		as.Read(base, out)
		return bytes.Equal(data, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRSSAccounting(t *testing.T) {
	as := NewAddressSpace()
	if as.ResidentBytes() != 0 {
		t.Fatal("fresh address space should have zero RSS")
	}
	as.StoreByte(0, 1)
	as.StoreByte(PageSize*10, 1)
	if got := as.ResidentBytes(); got != 2*PageSize {
		t.Errorf("RSS = %d, want %d", got, 2*PageSize)
	}
	// Reads of unmapped memory must not allocate.
	_ = as.LoadByte(PageSize * 100)
	_ = as.ReadWord(PageSize * 200)
	if got := as.ResidentBytes(); got != 2*PageSize {
		t.Errorf("read allocated pages: RSS = %d", got)
	}
	as.Unmap(0, PageSize)
	if got := as.ResidentBytes(); got != PageSize {
		t.Errorf("after Unmap RSS = %d, want %d", got, PageSize)
	}
	if got := as.MaxResidentBytes(); got != 2*PageSize {
		t.Errorf("max RSS = %d, want %d", got, 2*PageSize)
	}
}

func TestUnmapZeroesAndFrees(t *testing.T) {
	as := NewAddressSpace()
	data := make([]byte, 4*PageSize)
	for i := range data {
		data[i] = 0xFF
	}
	base := uint64(PageSize) // page-aligned
	as.Write(base, data)
	rss := as.ResidentBytes()
	// Unmap an unaligned interior range: [base+100, base+2*PageSize+200)
	as.Unmap(base+100, 2*PageSize+100)
	// Fully covered page (page 2) freed.
	if as.ResidentBytes() >= rss {
		t.Error("Unmap freed no pages")
	}
	// Partial head/tail zeroed, surrounding bytes intact.
	if as.LoadByte(base+99) != 0xFF {
		t.Error("byte before unmapped range was clobbered")
	}
	if as.LoadByte(base+100) != 0 {
		t.Error("head of unmapped range not zeroed")
	}
	if as.LoadByte(base+2*PageSize+199) != 0 {
		t.Error("tail of unmapped range not zeroed")
	}
	if as.LoadByte(base+2*PageSize+200) != 0xFF {
		t.Error("byte after unmapped range was clobbered")
	}
}

func TestWriteWatch(t *testing.T) {
	as := NewAddressSpace()
	var gotAddr uint64
	var gotN int
	var calls int
	as.SetWriteWatch(func(addr uint64, n int) { gotAddr, gotN = addr, n; calls++ })
	as.StoreByte(0x100, 1)
	if gotAddr != 0x100 || gotN != 1 {
		t.Errorf("watch saw (%#x,%d)", gotAddr, gotN)
	}
	as.WriteWord(0x200, 5)
	if gotAddr != 0x200 || gotN != 8 {
		t.Errorf("watch saw (%#x,%d)", gotAddr, gotN)
	}
	as.Write(0x300, make([]byte, 100))
	if gotAddr != 0x300 || gotN != 100 {
		t.Errorf("watch saw (%#x,%d)", gotAddr, gotN)
	}
	if calls != 3 {
		t.Errorf("watch called %d times, want 3", calls)
	}
	// Reads must not fire the watch.
	_ = as.ReadWord(0x200)
	if calls != 3 {
		t.Error("read fired write watch")
	}
}

func TestMappedRanges(t *testing.T) {
	as := NewAddressSpace()
	as.StoreByte(0, 1)
	as.StoreByte(PageSize, 1)   // adjacent: coalesces with page 0
	as.StoreByte(PageSize*5, 1) // separate
	ranges := as.MappedRanges()
	want := [][2]uint64{{0, 2 * PageSize}, {PageSize * 5, PageSize * 6}}
	if len(ranges) != len(want) {
		t.Fatalf("got %v", ranges)
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Errorf("range %d = %v, want %v", i, ranges[i], want[i])
		}
	}
}

func TestCodeSlice(t *testing.T) {
	as := NewAddressSpace()
	as.WriteWord(0x400000, 0x0102030405060708)
	s := as.CodeSlice(0x400000)
	if len(s) != PageSize {
		t.Errorf("CodeSlice at page start has len %d", len(s))
	}
	if s[0] != 0x08 {
		t.Errorf("CodeSlice[0] = %#x", s[0])
	}
	s2 := as.CodeSlice(0x400000 + PageSize - 16)
	if len(s2) != 16 {
		t.Errorf("CodeSlice near page end has len %d", len(s2))
	}
}

func BenchmarkReadWord(b *testing.B) {
	as := NewAddressSpace()
	as.Write(0x400000, make([]byte, 1<<20))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += as.ReadWord(0x400000 + uint64(i*8)&(1<<20-1))
	}
	_ = sink
}

func TestUnmapPageAlignedSubPage(t *testing.T) {
	// Regression: a page-aligned range smaller than a page must be zeroed
	// (neither branch of the old head/tail logic covered this).
	as := NewAddressSpace()
	as.Write(0x20000000, []byte{1, 2, 3, 4})
	as.Unmap(0x20000000, 0x110)
	if as.LoadByte(0x20000000) != 0 || as.LoadByte(0x20000003) != 0 {
		t.Error("page-aligned sub-page Unmap did not zero the range")
	}
}

func TestUnmapHugeSparseRange(t *testing.T) {
	// Unmapping a multi-GiB range must walk the page table, not the range.
	as := NewAddressSpace()
	as.StoreByte(0x1000_0000_0000, 7)
	as.StoreByte(0x1000_4000_0000, 8)
	as.StoreByte(0x2000_0000_0000, 9)            // outside
	as.Unmap(0x1000_0000_0000, 0x0010_0000_0000) // 64 GiB
	if as.LoadByte(0x1000_0000_0000) != 0 || as.LoadByte(0x1000_4000_0000) != 0 {
		t.Error("sparse range not unmapped")
	}
	if as.LoadByte(0x2000_0000_0000) != 9 {
		t.Error("page outside range was dropped")
	}
	if as.ResidentBytes() != PageSize {
		t.Errorf("resident = %d, want one page", as.ResidentBytes())
	}
}

func TestUnmapStraddlingPartialPages(t *testing.T) {
	as := NewAddressSpace()
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = 0xAB
	}
	as.Write(PageSize, data)
	// Unaligned head in page 1, full page 2, unaligned tail in page 3.
	as.Unmap(PageSize+100, 2*PageSize)
	if as.LoadByte(PageSize+99) != 0xAB || as.LoadByte(PageSize+100) != 0 {
		t.Error("head handling wrong")
	}
	if as.LoadByte(2*PageSize+5) != 0 {
		t.Error("full middle page not freed")
	}
	if as.LoadByte(3*PageSize+99) != 0 || as.LoadByte(3*PageSize+100) != 0xAB {
		t.Error("tail handling wrong")
	}
}
