// Package mem implements the sparse, paged address space of a simulated
// process.
//
// Pages are 4 KiB and allocated lazily on first touch, which lets the
// simulator account for resident set size (max RSS) the way Table I of the
// OCOLOS paper does: injecting an optimized code region C1 grows RSS by the
// size of the new code, and garbage-collecting a dead code version Ci
// shrinks it back.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the size of a memory page in bytes.
const PageSize = 4096

const pageShift = 12

// AddressSpace is a sparse 64-bit byte-addressable memory.
//
// It is not safe for concurrent use; the process scheduler serializes
// accesses (the simulation models multiple cores but steps them from one
// goroutine).
type AddressSpace struct {
	pages map[uint64]*[PageSize]byte

	// lastPage caches the most recently touched page to short-circuit the
	// map lookup on the common sequential access pattern.
	lastIdx  uint64
	lastData *[PageSize]byte

	resident    int // pages currently allocated
	maxResident int // high-water mark

	// writeWatch, if set, is invoked after every store with the written
	// range. The process layer uses it to invalidate decoded-instruction
	// caches when code is overwritten (self-modifying code / OCOLOS
	// patching).
	writeWatch func(addr uint64, n int)
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[uint64]*[PageSize]byte)}
}

// SetWriteWatch registers fn to be called after every store. A nil fn
// removes the watch.
func (as *AddressSpace) SetWriteWatch(fn func(addr uint64, n int)) {
	as.writeWatch = fn
}

func (as *AddressSpace) page(idx uint64) *[PageSize]byte {
	if idx == as.lastIdx && as.lastData != nil {
		return as.lastData
	}
	p, ok := as.pages[idx]
	if !ok {
		p = new([PageSize]byte)
		as.pages[idx] = p
		as.resident++
		if as.resident > as.maxResident {
			as.maxResident = as.resident
		}
	}
	as.lastIdx, as.lastData = idx, p
	return p
}

// peekPage returns the page without allocating; nil if unmapped.
func (as *AddressSpace) peekPage(idx uint64) *[PageSize]byte {
	if idx == as.lastIdx && as.lastData != nil {
		return as.lastData
	}
	p := as.pages[idx]
	if p != nil {
		as.lastIdx, as.lastData = idx, p
	}
	return p
}

// LoadByte returns the byte at addr (0 for untouched memory, without
// allocating a page).
func (as *AddressSpace) LoadByte(addr uint64) byte {
	p := as.peekPage(addr >> pageShift)
	if p == nil {
		return 0
	}
	return p[addr&(PageSize-1)]
}

// StoreByte stores one byte at addr.
func (as *AddressSpace) StoreByte(addr uint64, v byte) {
	as.page(addr >> pageShift)[addr&(PageSize-1)] = v
	if as.writeWatch != nil {
		as.writeWatch(addr, 1)
	}
}

// ReadWord reads a little-endian 8-byte word at addr. The fast path handles
// words that do not straddle a page boundary.
func (as *AddressSpace) ReadWord(addr uint64) uint64 {
	off := addr & (PageSize - 1)
	if off <= PageSize-8 {
		p := as.peekPage(addr >> pageShift)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off:])
	}
	var buf [8]byte
	as.Read(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteWord stores a little-endian 8-byte word at addr.
func (as *AddressSpace) WriteWord(addr uint64, v uint64) {
	off := addr & (PageSize - 1)
	if off <= PageSize-8 {
		binary.LittleEndian.PutUint64(as.page(addr >> pageShift)[off:], v)
		if as.writeWatch != nil {
			as.writeWatch(addr, 8)
		}
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	as.Write(addr, buf[:])
}

// Read copies len(dst) bytes starting at addr into dst.
func (as *AddressSpace) Read(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - off
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		p := as.peekPage(addr >> pageShift)
		if p == nil {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], p[off:off+n])
		}
		dst = dst[n:]
		addr += n
	}
}

// Write copies src into memory starting at addr.
func (as *AddressSpace) Write(addr uint64, src []byte) {
	start, total := addr, len(src)
	for len(src) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - off
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		copy(as.page(addr >> pageShift)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
	if as.writeWatch != nil && total > 0 {
		as.writeWatch(start, total)
	}
}

// CodeSlice returns a direct view of the page bytes containing addr,
// limited to the remainder of that page. Callers (the instruction fetch
// path) use it to decode without copying. The page is allocated if needed
// so the returned slice is always non-nil and at least InstBytes long when
// addr is 16-byte aligned and not at the very end of a page.
func (as *AddressSpace) CodeSlice(addr uint64) []byte {
	p := as.page(addr >> pageShift)
	return p[addr&(PageSize-1):]
}

// Unmap releases all pages fully contained in [addr, addr+size) and zeroes
// the partially covered head/tail so reads return 0. It is used by the
// continuous-optimization garbage collector to reclaim dead code versions
// (§IV-C). Large sparse ranges are handled by scanning the page table
// rather than the range.
func (as *AddressSpace) Unmap(addr, size uint64) {
	if size == 0 {
		return
	}
	end := addr + size
	firstFull := (addr + PageSize - 1) >> pageShift
	lastFull := end >> pageShift // exclusive

	if lastFull > firstFull {
		if lastFull-firstFull > uint64(len(as.pages)) {
			// Sparse fast path: walk the page table instead of the range.
			for idx := range as.pages {
				if idx >= firstFull && idx < lastFull {
					delete(as.pages, idx)
					as.resident--
				}
			}
		} else {
			for idx := firstFull; idx < lastFull; idx++ {
				if _, ok := as.pages[idx]; ok {
					delete(as.pages, idx)
					as.resident--
				}
			}
		}
	}

	// Zero the partially covered head and tail.
	zero := func(lo, hi uint64) {
		for lo < hi {
			pageEnd := (lo &^ (PageSize - 1)) + PageSize
			stop := hi
			if pageEnd < stop {
				stop = pageEnd
			}
			if p := as.pages[lo>>pageShift]; p != nil {
				for i := lo; i < stop; i++ {
					p[i&(PageSize-1)] = 0
				}
			}
			lo = stop
		}
	}
	headEnd := firstFull << pageShift
	if headEnd > end {
		headEnd = end
	}
	if addr < headEnd {
		zero(addr, headEnd)
	}
	tailStart := lastFull << pageShift
	if tailStart < addr {
		tailStart = addr
	}
	if tailStart < end {
		zero(tailStart, end)
	}

	as.lastData = nil
	if as.writeWatch != nil {
		as.writeWatch(addr, int(size))
	}
}

// Resident reports whether the page containing addr is allocated. The
// debugger layer uses it to journal exactly which pages a write brought
// into existence, so a transactional rollback can release them again.
func (as *AddressSpace) Resident(addr uint64) bool {
	return as.peekPage(addr>>pageShift) != nil
}

// ResidentBytes returns the current resident set size in bytes.
func (as *AddressSpace) ResidentBytes() uint64 { return uint64(as.resident) * PageSize }

// MaxResidentBytes returns the peak resident set size in bytes (max RSS).
func (as *AddressSpace) MaxResidentBytes() uint64 { return uint64(as.maxResident) * PageSize }

// MappedRanges returns the mapped regions as sorted [start, end) pairs,
// coalescing adjacent pages. Mainly for debugging and tests.
func (as *AddressSpace) MappedRanges() [][2]uint64 {
	idxs := make([]uint64, 0, len(as.pages))
	for idx := range as.pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var out [][2]uint64
	for _, idx := range idxs {
		start := idx << pageShift
		if n := len(out); n > 0 && out[n-1][1] == start {
			out[n-1][1] = start + PageSize
		} else {
			out = append(out, [2]uint64{start, start + PageSize})
		}
	}
	return out
}

// String summarizes the address space.
func (as *AddressSpace) String() string {
	return fmt.Sprintf("mem: %d pages resident (%.1f MiB), max %.1f MiB",
		as.resident,
		float64(as.ResidentBytes())/(1<<20),
		float64(as.MaxResidentBytes())/(1<<20))
}
