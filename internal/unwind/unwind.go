// Package unwind walks the call stacks of a stopped process — the
// libunwind analog OCOLOS uses to find return addresses and the set of
// stack-live functions (§IV-C1).
//
// The ABI guarantees a frame-pointer chain: ENTER pushes the caller's FP
// and points FP at the saved slot, so [FP] is the saved FP and [FP+8] the
// return address. A zero FP terminates the chain (thread entry).
package unwind

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/ptrace"
)

// ErrTruncated reports a walk that hit the maxFrames bound: the returned
// frames are valid but the chain continues past them. A caller computing a
// stack-live set MUST NOT treat the partial list as complete.
var ErrTruncated = errors.New("unwind: stack deeper than frame bound")

// ErrCorrupt reports a frame-pointer chain that stopped growing upward:
// the returned frames up to the corruption are valid, everything beyond is
// unknowable.
var ErrCorrupt = errors.New("unwind: frame-pointer chain corrupt")

// Frame is one stack frame.
type Frame struct {
	PC      uint64 // instruction address: thread PC for frame 0, return address otherwise
	RetSlot uint64 // memory address holding the return address (0 for frame 0)
	FP      uint64 // frame pointer value for this frame
}

// Walker is the read-only debugger surface the unwinder needs. Both
// *ptrace.Tracee and *ptrace.Txn (the journaled transaction view used
// during code replacement) satisfy it.
type Walker interface {
	GetRegs(tid int) (ptrace.Regs, error)
	PeekData(addr uint64) (uint64, error)
	Threads() int
}

// maxFrames bounds runaway walks over corrupted stacks.
const maxFrames = 4096

// Stack unwinds thread tid of the stopped tracee. The first frame is the
// thread's current PC; subsequent frames carry return addresses and the
// stack slots they were read from (so a code-replacement pass can rewrite
// them).
//
// A walk that cannot reach the outermost frame returns the frames it
// found alongside a typed error — ErrTruncated when the chain exceeds the
// frame bound, ErrCorrupt when a saved FP stops growing upward. Callers
// that only inspect individual frames may accept the partial list;
// callers deriving a complete stack-live set must treat either error as
// fatal, because unseen frames can keep unseen functions live.
func Stack(t Walker, tid int) ([]Frame, error) {
	regs, err := t.GetRegs(tid)
	if err != nil {
		return nil, err
	}
	frames := []Frame{{PC: regs.PC, FP: regs.GPR[isa.FP]}}
	fp := regs.GPR[isa.FP]
	for fp != 0 {
		if len(frames) > maxFrames {
			return frames, fmt.Errorf("unwind: thread %d: %d frames: %w", tid, len(frames), ErrTruncated)
		}
		savedFP, err := t.PeekData(fp)
		if err != nil {
			return nil, err
		}
		if savedFP == 0 {
			// Outermost frame: its ENTER pushed the thread's initial zero
			// FP and no caller ever pushed a return address — the slot
			// above it is off the top of the stack, which the hardened
			// tracee refuses to read.
			break
		}
		retSlot := fp + 8
		ra, err := t.PeekData(retSlot)
		if err != nil {
			return nil, err
		}
		if ra == 0 {
			break
		}
		frames = append(frames, Frame{PC: ra, RetSlot: retSlot, FP: savedFP})
		if savedFP <= fp {
			// The chain must grow upward; a non-monotonic saved FP means
			// the stack bytes are not a well-formed chain.
			return frames, fmt.Errorf("unwind: thread %d: saved FP %#x <= FP %#x: %w", tid, savedFP, fp, ErrCorrupt)
		}
		fp = savedFP
	}
	return frames, nil
}

// AllStacks unwinds every thread. On a truncated or corrupt walk the
// partial stacks collected so far (including the failing thread's) are
// returned with the error.
func AllStacks(t Walker) ([][]Frame, error) {
	out := make([][]Frame, t.Threads())
	for tid := 0; tid < t.Threads(); tid++ {
		frames, err := Stack(t, tid)
		out[tid] = frames
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// LiveFunctions symbolizes all frames against a binary and returns the set
// of stack-live functions (keyed by entry address) — the functions OCOLOS
// must treat specially during replacement.
func LiveFunctions(t Walker, bin *obj.Binary) (map[uint64]*obj.Func, error) {
	stacks, err := AllStacks(t)
	if err != nil {
		return nil, err
	}
	live := make(map[uint64]*obj.Func)
	for _, frames := range stacks {
		for _, fr := range frames {
			if f, _, _ := bin.Lookup(fr.PC); f != nil {
				live[f.Addr] = f
			}
		}
	}
	return live, nil
}
