package unwind

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/proc"
	"repro/internal/ptrace"
)

// nestedProgram: main → fa → fb → fc, where fc spins on global "gate"
// until it becomes 1, then everyone returns and main stores a result.
func nestedProgram(t *testing.T) (*proc.Process, map[string]uint64) {
	t.Helper()
	p := build.NewProgram("nested")
	p.Global("gate", 8)
	p.Global("out", 8)

	fc := p.Func("fc")
	fc.Prologue(16)
	fc.LoadGlobalAddr(isa.R1, "gate")
	spin := fc.Label("spin")
	fc.Ld(isa.R2, isa.R1, 0)
	fc.CmpI(isa.R2, 1)
	fc.If(isa.NE, func() { fc.Goto(spin) }, nil)
	fc.MovI(isa.R0, 7)
	fc.EpilogueRet()

	fb := p.Func("fb")
	fb.Prologue(16)
	fb.Call("fc")
	fb.AddI(isa.R0, isa.R0, 10)
	fb.EpilogueRet()

	fa := p.Func("fa")
	fa.Prologue(16)
	fa.Call("fb")
	fa.AddI(isa.R0, isa.R0, 100)
	fa.EpilogueRet()

	m := p.Func("main")
	m.Prologue(16)
	m.Call("fa")
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R0)
	m.Halt()
	p.SetEntry("main")

	prog, err := p.Program()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pr, asm.DataSymbols(prog, asm.Options{})
}

func TestUnwindNestedCalls(t *testing.T) {
	pr, _ := nestedProgram(t)
	pr.RunUntilHalt(50000) // park inside fc's spin loop
	if pr.Halted() {
		t.Fatal("program finished before pause")
	}
	tr := ptrace.Attach(pr)
	defer tr.Detach()

	frames, err := Stack(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want 4 (fc,fb,fa,main): %+v", len(frames), frames)
	}
	bin := pr.Bin
	wantOrder := []string{"fc", "fb", "fa", "main"}
	for i, fr := range frames {
		f, _, _ := bin.Lookup(fr.PC)
		if f == nil || f.Name != wantOrder[i] {
			t.Errorf("frame %d: PC %#x in %v, want %s", i, fr.PC, f, wantOrder[i])
		}
		if i > 0 && fr.RetSlot == 0 {
			t.Errorf("frame %d missing return slot", i)
		}
	}

	live, err := LiveFunctions(tr, bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 4 {
		t.Errorf("%d live functions, want 4", len(live))
	}
}

func TestPokeReleasesSpinAndResume(t *testing.T) {
	pr, syms := nestedProgram(t)
	pr.RunUntilHalt(50000)
	tr := ptrace.Attach(pr)
	if err := tr.PokeData(syms["gate"], 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.PeekData(syms["gate"]); v != 1 {
		t.Fatal("poke did not land")
	}
	if tr.PokeCount != 1 || tr.PokeBytes != 8 {
		t.Errorf("poke accounting: %d/%d", tr.PokeCount, tr.PokeBytes)
	}
	tr.Detach()
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(syms["out"]); got != 117 {
		t.Errorf("out = %d, want 117", got)
	}
}

func TestDetachedTraceeRejectsOps(t *testing.T) {
	pr, _ := nestedProgram(t)
	pr.RunUntilHalt(1000)
	tr := ptrace.Attach(pr)
	tr.Detach()
	if _, err := tr.GetRegs(0); err == nil {
		t.Error("GetRegs after detach should fail")
	}
	if err := tr.PokeData(0x1000, 1); err == nil {
		t.Error("PokeData after detach should fail")
	}
}

func TestSetRegs(t *testing.T) {
	pr, _ := nestedProgram(t)
	pr.RunUntilHalt(50000)
	tr := ptrace.Attach(pr)
	defer tr.Detach()
	regs, err := tr.GetRegs(0)
	if err != nil {
		t.Fatal(err)
	}
	regs.GPR[isa.R9] = 0xCAFE
	if err := tr.SetRegs(0, regs); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.GetRegs(0)
	if got.GPR[isa.R9] != 0xCAFE {
		t.Error("SetRegs did not stick")
	}
	if _, err := tr.GetRegs(99); err == nil {
		t.Error("bad tid accepted")
	}
}

// TestReturnAddressRewrite reproduces the b_{i,i+1} mechanism of §IV-C1:
// while fb is on the stack, copy its code to a fresh address, rewrite the
// return address in fc's caller frame to the copy, and let execution
// return into the copy. The tail of fb (add, LEAVE, RET) has no
// PC-relative instructions, so the copy needs no fixups.
func TestReturnAddressRewrite(t *testing.T) {
	pr, syms := nestedProgram(t)
	pr.RunUntilHalt(50000)
	tr := ptrace.Attach(pr)

	bin := pr.Bin
	fb := bin.FuncByName("fb")
	frames, err := Stack(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// frames[1] is the fb frame (return address into fb).
	fr := frames[1]
	if f, _, _ := bin.Lookup(fr.PC); f == nil || f.Name != "fb" {
		t.Fatalf("frame 1 not in fb")
	}

	// Copy fb's code to a fresh region via the agent (mmap it first — the
	// hardened tracee refuses writes outside the target's mapped image).
	copyBase := uint64(0x2000_0000)
	if err := tr.Map(copyBase, 1<<20); err != nil {
		t.Fatal(err)
	}
	code := make([]byte, fb.Size)
	if err := tr.ReadMem(fb.Addr, code); err != nil {
		t.Fatal(err)
	}
	if err := tr.AgentWrite(copyBase, code); err != nil {
		t.Fatal(err)
	}
	if tr.AgentBytes != fb.Size {
		t.Errorf("agent accounting: %d", tr.AgentBytes)
	}

	// Redirect the return address into the copy at the same offset.
	newRA := copyBase + (fr.PC - fb.Addr)
	if err := tr.PokeData(fr.RetSlot, newRA); err != nil {
		t.Fatal(err)
	}

	// Release the spin and finish.
	if err := tr.PokeData(syms["gate"], 1); err != nil {
		t.Fatal(err)
	}
	tr.Detach()
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(syms["out"]); got != 117 {
		t.Errorf("out = %d, want 117 (execution should return into the copy)", got)
	}
}
