package unwind

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/ptrace"
)

// deepWalker fabricates a well-formed frame-pointer chain that grows
// upward forever: [fp] = fp+16 and [fp+8] a non-zero return address.
type deepWalker struct{ base uint64 }

func (w deepWalker) GetRegs(tid int) (ptrace.Regs, error) {
	var r ptrace.Regs
	r.PC = 0x1000
	r.GPR[isa.FP] = w.base
	return r, nil
}

func (w deepWalker) PeekData(addr uint64) (uint64, error) {
	if (addr-w.base)%16 == 8 {
		return 0x2000, nil // return-address slot
	}
	return addr + 16, nil // saved FP, endless upward chain
}

func (w deepWalker) Threads() int { return 1 }

func TestStackTruncationReturnsTypedError(t *testing.T) {
	w := deepWalker{base: 0x1_0000}
	frames, err := Stack(w, 0)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("endless chain: err = %v, want ErrTruncated", err)
	}
	if len(frames) != maxFrames+1 {
		t.Fatalf("got %d partial frames, want %d", len(frames), maxFrames+1)
	}
	for i, fr := range frames[1:] {
		if fr.PC != 0x2000 || fr.RetSlot == 0 {
			t.Fatalf("partial frame %d malformed: %+v", i+1, fr)
		}
	}

	// AllStacks must propagate the error and still hand back the partial
	// stacks for diagnostics.
	stacks, err := AllStacks(w)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("AllStacks err = %v, want ErrTruncated", err)
	}
	if len(stacks) != 1 || len(stacks[0]) != maxFrames+1 {
		t.Fatal("AllStacks dropped the partial frames")
	}
}

func TestStackCorruptChainReturnsTypedError(t *testing.T) {
	pr, _ := nestedProgram(t)
	pr.RunUntilHalt(50000) // park inside fc's spin loop
	if pr.Halted() {
		t.Fatal("program finished before pause")
	}
	tr := ptrace.Attach(pr)
	defer tr.Detach()

	clean, err := Stack(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 4 {
		t.Fatalf("baseline walk found %d frames, want 4", len(clean))
	}

	// Clobber fc's saved-FP slot with its own FP: non-zero, but the chain
	// no longer grows upward.
	if err := tr.PokeData(clean[0].FP, clean[0].FP); err != nil {
		t.Fatal(err)
	}
	frames, err := Stack(tr, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt chain: err = %v, want ErrCorrupt", err)
	}
	// The valid prefix is still returned: fc's frame plus the frame read
	// through the (intact) return-address slot.
	if len(frames) != 2 {
		t.Fatalf("got %d partial frames, want 2: %+v", len(frames), frames)
	}
	if f, _, _ := pr.Bin.Lookup(frames[1].PC); f == nil || f.Name != "fb" {
		t.Errorf("partial frame 1 not in fb: %+v", frames[1])
	}

	// A stack-live set computed from a corrupt walk would be incomplete;
	// LiveFunctions must refuse rather than silently under-report.
	if _, err := LiveFunctions(tr, pr.Bin); !errors.Is(err, ErrCorrupt) {
		t.Errorf("LiveFunctions err = %v, want ErrCorrupt", err)
	}
}
