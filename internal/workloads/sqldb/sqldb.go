// Package sqldb is the MySQL-analog workload: a multithreaded relational
// server with a large generated SQL parser (the MYSQLparse analog), a
// query-plan stage, a storage engine behind a v-table (MySQL's handler
// API), a write-ahead log, and a cold utility library that bulks the
// binary up the way real server code does.
//
// Its request mixes mirror the Sysbench inputs of the paper's evaluation:
// point_select, read_only, read_write, write_only, insert, delete,
// update_index, update_non_index.
package sqldb

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/workloads/wl"
	"repro/internal/workloads/wlgen"
)

// Operation codes (slot indexes in the dispatch table).
const (
	opPointSelect = iota
	opRangeSelect
	opInsert
	opUpdateIndex
	opUpdateNonIndex
	opDelete
	opAggregate
	numOps
)

var opNames = []string{"point_select", "range_select", "insert",
	"update_index", "update_non_index", "delete", "aggregate"}

// Scale configures the generated code size. Full() approximates the
// paper's front-end pressure; Small() keeps unit tests fast.
type Scale struct {
	ParseSteps int // functions per query-type parse chain
	ParsePad   int // inline cold error-path NOPs per parse function
	ParseWork  int // hot arithmetic ops per parse function
	ColdFuncs  int // cold library size
	ColdSize   int // instructions per cold function
	Buckets    int64
	Preload    int64 // rows loaded at startup

	// Engine selects the storage engine: "hash" (default, memcached-style
	// open addressing) or "btree" (InnoDB-style clustered B-tree index).
	Engine string
}

// Full is the evaluation scale: the per-query hot code footprint exceeds
// the 32 KiB L1i, so the original layout is front-end bound.
func Full() Scale {
	return Scale{ParseSteps: 36, ParsePad: 44, ParseWork: 14,
		ColdFuncs: 260, ColdSize: 62, Buckets: 1 << 16, Preload: 8192}
}

// Small keeps tests fast.
func Small() Scale {
	return Scale{ParseSteps: 8, ParsePad: 12, ParseWork: 4,
		ColdFuncs: 24, ColdSize: 20, Buckets: 1 << 12, Preload: 512}
}

// Build assembles the workload.
func Build(sc Scale) (*wl.Workload, error) {
	p := build.NewProgram("sqldb")
	p.SetNoJumpTables(true) // OCOLOS requirement (§IV-D)

	cold := wlgen.EmitColdLib(p, "util", sc.ColdFuncs, sc.ColdSize)

	// Storage index: hash (default) or B-tree. Both expose get/put/del
	// with identical semantics (deleted keys read back as 0).
	var idx wlgen.HashTable
	var engineInit string
	if sc.Engine == "btree" {
		bt := wlgen.EmitBTree(p, "bidx", sc.Buckets/2)
		del := p.Func("bidx_del")
		del.Prologue(16)
		del.MovI(isa.R1, 0) // value 0 = deleted
		del.Call(bt.Insert)
		del.EpilogueRet()
		idx = wlgen.HashTable{Get: bt.Find, Put: bt.Insert, Del: "bidx_del"}
		engineInit = bt.Init
	} else {
		idx = wlgen.EmitHashTable(p, "idx", sc.Buckets)
	}
	p.Global("wal", 1<<14)
	p.Global("walpos", 8)
	p.Global("rows", 1<<18) // row heap: 32 KiB of row words ×8

	// Per-query-type parse chains, interleaved in layout (scattered like
	// generated parser states).
	prefixes := make([]string, numOps)
	for i, n := range opNames {
		prefixes[i] = "parse_" + n
	}
	parseEntries := wlgen.EmitChains(p, prefixes, wlgen.ChainSpec{
		Steps:      sc.ParseSteps,
		ColdPad:    sc.ParsePad,
		HotWork:    sc.ParseWork,
		CallCold:   cold[0],
		Sequential: true,
	})

	// Plan/optimizer stage: one function per query type plus two shared
	// helpers.
	costFn := p.Func("plan_cost")
	costFn.Prologue(16)
	costFn.MulI(isa.R0, isa.R0, 31)
	costFn.ShrI(isa.R6, isa.R0, 11)
	costFn.Xor(isa.R0, isa.R0, isa.R6)
	costFn.EpilogueRet()
	cardFn := p.Func("plan_cardinality")
	cardFn.Prologue(16)
	cardFn.AndI(isa.R0, isa.R0, 0xFFFF)
	cardFn.AddI(isa.R0, isa.R0, 17)
	cardFn.EpilogueRet()
	planNames := make([]string, numOps)
	for i, n := range opNames {
		planNames[i] = "plan_" + n
		f := p.Func(planNames[i])
		f.Prologue(16)
		f.Call("plan_cost")
		f.CmpI(isa.R0, 0)
		f.If(isa.LT, func() { // impossible: cost is masked positive
			f.PadCode(20)
			f.Call(cold[(i+1)%len(cold)])
		}, nil)
		f.Call("plan_cardinality")
		f.EpilogueRet()
	}

	// Write-ahead log append: two stores and a wrap check.
	walFn := p.Func("wal_append")
	walFn.Prologue(16)
	walFn.LoadGlobalAddr(isa.R6, "walpos")
	walFn.Ld(isa.R7, isa.R6, 0)
	walFn.LoadGlobalAddr(isa.R8, "wal")
	walFn.AndI(isa.R9, isa.R7, (1<<14)/8-1)
	walFn.ShlI(isa.R9, isa.R9, 3)
	walFn.Add(isa.R8, isa.R8, isa.R9)
	walFn.St(isa.R8, 0, isa.R0)
	walFn.AddI(isa.R7, isa.R7, 1)
	walFn.St(isa.R6, 0, isa.R7)
	walFn.EpilogueRet()

	// Transaction shell.
	begin := p.Func("txn_begin")
	begin.Prologue(16)
	begin.MovI(isa.R0, 0x7C)
	begin.Call("wal_append")
	begin.EpilogueRet()
	commit := p.Func("txn_commit")
	commit.Prologue(16)
	commit.MovI(isa.R0, 0x7D)
	commit.Call("wal_append")
	commit.EpilogueRet()

	// Storage engine behind a v-table (the handler API). Object layout:
	// [vtable]. Methods: 0 read_row, 1 write_row, 2 delete_row, 3 scan.
	p.Global("engine_obj", 8)
	rowTouch := p.Func("row_touch") // fold the row payload
	rowTouch.Prologue(16)
	rowTouch.LoadGlobalAddr(isa.R6, "rows")
	rowTouch.AndI(isa.R7, isa.R0, (1<<18)/8-1)
	rowTouch.ShlI(isa.R7, isa.R7, 3)
	rowTouch.Add(isa.R6, isa.R6, isa.R7)
	rowTouch.Ld(isa.R8, isa.R6, 0)
	rowTouch.Add(isa.R0, isa.R0, isa.R8)
	rowTouch.EpilogueRet()
	rowWrite := p.Func("row_write")
	rowWrite.Prologue(16)
	rowWrite.LoadGlobalAddr(isa.R6, "rows")
	rowWrite.AndI(isa.R7, isa.R0, (1<<18)/8-1)
	rowWrite.ShlI(isa.R7, isa.R7, 3)
	rowWrite.Add(isa.R6, isa.R6, isa.R7)
	rowWrite.St(isa.R6, 0, isa.R1)
	rowWrite.EpilogueRet()

	eRead := p.Func("e_read_row") // R0 key → R0 value
	eRead.Prologue(16)
	eRead.Call(idx.Get)
	eRead.Call("row_touch")
	eRead.EpilogueRet()
	eWrite := p.Func("e_write_row") // R0 key, R1 value
	eWrite.Prologue(32)
	eWrite.St(isa.FP, -8, isa.R0)
	eWrite.St(isa.FP, -16, isa.R1)
	eWrite.Call(idx.Put)
	eWrite.Ld(isa.R0, isa.FP, -8)
	eWrite.Ld(isa.R1, isa.FP, -16)
	eWrite.Call("row_write")
	eWrite.Ld(isa.R0, isa.FP, -8)
	eWrite.Call("wal_append")
	eWrite.EpilogueRet()
	eDelete := p.Func("e_delete_row") // R0 key
	eDelete.Prologue(32)
	eDelete.St(isa.FP, -8, isa.R0)
	eDelete.Call(idx.Del)
	eDelete.Ld(isa.R0, isa.FP, -8)
	eDelete.Call("wal_append")
	eDelete.EpilogueRet()
	eScan := p.Func("e_scan") // R0 start, R1 len → R0 sum of probed values
	eScan.Prologue(48)
	eScan.St(isa.FP, -8, isa.R0)  // cursor key
	eScan.St(isa.FP, -16, isa.R1) // remaining
	eScan.MovI(isa.R9, 0)
	eScan.St(isa.FP, -24, isa.R9) // sum
	eScan.While(func() {
		eScan.Ld(isa.R9, isa.FP, -16)
		eScan.CmpI(isa.R9, 0)
	}, isa.GT, func() {
		eScan.Ld(isa.R0, isa.FP, -8)
		eScan.Call(idx.Get)
		eScan.Ld(isa.R9, isa.FP, -24)
		eScan.Add(isa.R9, isa.R9, isa.R0)
		eScan.St(isa.FP, -24, isa.R9)
		eScan.Ld(isa.R9, isa.FP, -8)
		eScan.AddI(isa.R9, isa.R9, 2)
		eScan.St(isa.FP, -8, isa.R9)
		eScan.Ld(isa.R9, isa.FP, -16)
		eScan.AddI(isa.R9, isa.R9, -1)
		eScan.St(isa.FP, -16, isa.R9)
	})
	eScan.Ld(isa.R0, isa.FP, -24)
	eScan.EpilogueRet()

	p.VTable("engine_vt", "e_read_row", "e_write_row", "e_delete_row", "e_scan")

	// The aggregate reducer, reached through a freshly created function
	// pointer on every aggregate query (the wrapFuncPtrCreation workload,
	// §IV-C2: MySQL creates ~45 pointers/ms).
	reducer := p.Func("agg_reduce")
	reducer.Prologue(16)
	reducer.MulI(isa.R0, isa.R0, 7)
	reducer.XorI(isa.R0, isa.R0, 0x5A5A)
	reducer.EpilogueRet()

	// Query handlers: parse → plan → begin → engine ops → commit.
	// Handler ABI (from the dispatch loop): R0 = key/seed, R1 = aux value,
	// R2 = extra. Result in R0.
	emitHandler := func(op int, body func(h *build.FuncBuilder)) string {
		name := "h_" + opNames[op]
		h := p.Func(name)
		h.Prologue(48)
		h.St(isa.FP, -8, isa.R0)  // key
		h.St(isa.FP, -16, isa.R1) // aux
		h.St(isa.FP, -24, isa.R2) // extra
		// Parse the query text (seed derived from the key; poison clear).
		h.MovI(isa.R1, 0)
		h.Call(parseEntries[op])
		h.Call(planNames[op])
		body(h)
		h.EpilogueRet()
		return name
	}

	// vcall dispatches engine method slot on the engine object.
	vcall := func(h *build.FuncBuilder, slot int64) {
		h.LoadGlobalAddr(isa.R6, "engine_obj")
		h.VCall(isa.R6, isa.R7, slot)
	}

	emitHandler(opPointSelect, func(h *build.FuncBuilder) {
		h.Ld(isa.R0, isa.FP, -8)
		vcall(h, 0)
	})
	emitHandler(opRangeSelect, func(h *build.FuncBuilder) {
		h.Ld(isa.R0, isa.FP, -8)
		h.Ld(isa.R1, isa.FP, -16)
		h.AndI(isa.R1, isa.R1, 63) // range length ≤ 64
		h.AddI(isa.R1, isa.R1, 8)
		vcall(h, 3)
	})
	emitHandler(opInsert, func(h *build.FuncBuilder) {
		h.Call("txn_begin")
		h.Ld(isa.R0, isa.FP, -8)
		h.Ld(isa.R1, isa.FP, -16)
		vcall(h, 1)
		h.Call("txn_commit")
	})
	emitHandler(opUpdateIndex, func(h *build.FuncBuilder) {
		// Index-touching update: delete + reinsert.
		h.Call("txn_begin")
		h.Ld(isa.R0, isa.FP, -8)
		vcall(h, 2)
		h.Ld(isa.R0, isa.FP, -8)
		h.Ld(isa.R1, isa.FP, -16)
		vcall(h, 1)
		h.Call("txn_commit")
	})
	emitHandler(opUpdateNonIndex, func(h *build.FuncBuilder) {
		h.Call("txn_begin")
		h.Ld(isa.R0, isa.FP, -8)
		vcall(h, 0) // read
		h.Mov(isa.R1, isa.R0)
		h.AddI(isa.R1, isa.R1, 1)
		h.Ld(isa.R0, isa.FP, -8)
		vcall(h, 1) // write back
		h.Call("txn_commit")
	})
	emitHandler(opDelete, func(h *build.FuncBuilder) {
		h.Call("txn_begin")
		h.Ld(isa.R0, isa.FP, -8)
		vcall(h, 2)
		h.Call("txn_commit")
	})
	emitHandler(opAggregate, func(h *build.FuncBuilder) {
		h.Ld(isa.R0, isa.FP, -8)
		h.Ld(isa.R1, isa.FP, -16)
		h.AndI(isa.R1, isa.R1, 31)
		h.AddI(isa.R1, isa.R1, 4)
		vcall(h, 3) // scan
		h.FuncPtr(isa.R6, "agg_reduce")
		h.CallR(isa.R6)
	})

	handlerNames := make([]string, numOps)
	for i, n := range opNames {
		handlerNames[i] = "h_" + n
	}
	p.VTable("handlers_vt", handlerNames...)

	// init: point engine_obj at its v-table and preload the table.
	ini := p.Func("db_init")
	ini.Prologue(32)
	if engineInit != "" {
		ini.Call(engineInit)
	}
	ini.LoadGlobalAddr(isa.R6, "engine_vt")
	ini.LoadGlobalAddr(isa.R7, "engine_obj")
	ini.St(isa.R7, 0, isa.R6)
	ini.MovI(isa.R9, 0)
	ini.While(func() { ini.CmpI(isa.R9, sc.Preload) }, isa.LT, func() {
		ini.ShlI(isa.R0, isa.R9, 1)
		ini.AddI(isa.R0, isa.R0, 2) // keys are even, ≥ 2
		ini.MulI(isa.R1, isa.R9, 1664525)
		ini.AddI(isa.R1, isa.R1, 1)
		ini.St(isa.FP, -8, isa.R9)
		ini.Call(idx.Put)
		ini.Ld(isa.R9, isa.FP, -8)
		ini.AddI(isa.R9, isa.R9, 1)
	})
	ini.EpilogueRet()

	p.Global("ready_flag", 8)
	m := p.Func("main")
	m.Prologue(32)
	m.CmpI(isa.R0, 0) // thread 0 initializes; others wait on the flag
	m.If(isa.EQ, func() {
		m.Call("db_init")
		m.LoadGlobalAddr(isa.R6, "ready_flag")
		m.MovI(isa.R7, 1)
		m.St(isa.R6, 0, isa.R7)
	}, func() {
		m.LoadGlobalAddr(isa.R6, "ready_flag")
		spin := m.Label("wait")
		m.Ld(isa.R7, isa.R6, 0)
		m.CmpI(isa.R7, 1)
		m.If(isa.NE, func() { m.Goto(spin) }, nil)
	})
	m.Call("serve_loop")
	m.Halt()
	wlgen.EmitServerMain(p, "serve_loop", "handlers_vt", numOps)
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		return nil, err
	}
	return &wl.Workload{
		Name:    "sqldb",
		Binary:  bin,
		Inputs:  Inputs(),
		Threads: 8,
		NewDriver: func(input string, threads int) (*wl.Driver, error) {
			gen, err := generator(input, sc)
			if err != nil {
				return nil, err
			}
			return wl.NewDriver(gen, threads), nil
		},
	}, nil
}

// Inputs lists the Sysbench-analog request mixes.
func Inputs() []string {
	return []string{"point_select", "read_only", "read_write", "write_only",
		"insert", "delete", "update_index", "update_non_index",
		"diurnal_day", "diurnal_night"}
}

// generator builds the request stream for an input mix.
func generator(input string, sc Scale) (wl.Generator, error) {
	type slice struct {
		pct int
		op  uint64
	}
	var mix []slice
	switch input {
	case "point_select":
		mix = []slice{{100, opPointSelect}}
	case "read_only":
		mix = []slice{{75, opPointSelect}, {15, opRangeSelect}, {10, opAggregate}}
	case "read_write":
		mix = []slice{{55, opPointSelect}, {10, opRangeSelect}, {15, opUpdateNonIndex}, {10, opInsert}, {10, opDelete}}
	case "write_only":
		mix = []slice{{40, opUpdateNonIndex}, {20, opUpdateIndex}, {20, opInsert}, {20, opDelete}}
	case "insert":
		mix = []slice{{100, opInsert}}
	case "delete":
		mix = []slice{{50, opDelete}, {50, opInsert}}
	case "update_index":
		mix = []slice{{100, opUpdateIndex}}
	case "update_non_index":
		mix = []slice{{100, opUpdateNonIndex}}
	case "diurnal_day":
		// Daytime serving traffic: read-dominated, the mix a layout built in
		// the morning sees all day (§IV-C's daily-pattern scenario).
		mix = []slice{{85, opPointSelect}, {10, opRangeSelect}, {5, opAggregate}}
	case "diurnal_night":
		// Overnight batch window: the same service turns write-heavy (bulk
		// loads, index maintenance), shifting the hot path off the read code
		// the daytime layout was optimized for.
		mix = []slice{{10, opPointSelect}, {35, opInsert}, {25, opUpdateIndex}, {20, opUpdateNonIndex}, {10, opDelete}}
	default:
		return nil, fmt.Errorf("sqldb: unknown input %q", input)
	}
	keyMask := uint64(sc.Preload - 1)
	return func(tid int, seq uint64) wl.Request {
		r := wl.SplitMix64(uint64(tid)<<40 ^ seq)
		roll := int(r % 100)
		op := mix[len(mix)-1].op
		acc := 0
		for _, s := range mix {
			acc += s.pct
			if roll < acc {
				op = s.op
				break
			}
		}
		key := ((r >> 8) & keyMask << 1) + 2 // even keys ≥ 2, in the preloaded set
		return wl.Request{Op: op, Arg1: key, Arg2: r >> 32 & 0xFFFF, Arg3: r >> 16 & 0xFF}
	}, nil
}
