package sqldb

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/workloads/wl"
)

func TestBuildAndServe(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Binary.Validate(); err != nil {
		t.Fatal(err)
	}
	if !w.Binary.NoJumpTables {
		t.Error("sqldb must be built with -fno-jump-tables for OCOLOS")
	}
	if len(w.Binary.VTables) < 2 {
		t.Error("expected engine + handler v-tables")
	}

	for _, input := range Inputs() {
		d, err := w.NewDriver(input, 2)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := w.Load(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		pr.RunFor(0.0005)
		if err := pr.Fault(); err != nil {
			t.Fatalf("%s: %v", input, err)
		}
		if d.Completed() == 0 {
			t.Errorf("%s: no requests completed", input)
		}
	}
}

func TestUnknownInputRejected(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewDriver("nope", 1); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestDeterministicThroughput(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	run := func() (uint64, float64) {
		d, _ := w.NewDriver("read_only", 1)
		pr, err := w.Load(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		tput := wl.Measure(pr, d, 0.0005)
		return d.Completed(), tput
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("non-deterministic: (%d, %f) vs (%d, %f)", c1, t1, c2, t2)
	}
}

func TestLatencyTracking(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := w.NewDriver("point_select", 1)
	pr, err := w.Load(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.0005)
	p50 := d.LatencyPercentile(0.50)
	p95 := d.LatencyPercentile(0.95)
	if p50 <= 0 || p95 < p50 {
		t.Errorf("latency percentiles: p50=%f p95=%f", p50, p95)
	}
}

// TestFullScaleFrontEndBound checks the evaluation-scale binary shows the
// paper's precondition: significant front-end stall share under TopDown.
func TestFullScaleFrontEndBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale workload in -short mode")
	}
	w, err := Build(Full())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := w.NewDriver("read_only", 4)
	pr, err := w.Load(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.002) // warm up
	td := perf.MeasureTopDown(pr, 0.003).TopDown()
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	t.Logf("sqldb read_only TopDown: %v", td)
	if td.FrontEnd < 0.25 {
		t.Errorf("front-end share %.1f%% too low; workload will not benefit from layout optimization", td.FrontEnd*100)
	}
}

// TestBTreeEngine runs every input mix on the InnoDB-style B-tree engine.
func TestBTreeEngine(t *testing.T) {
	sc := Small()
	sc.Engine = "btree"
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Binary.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, input := range Inputs() {
		d, err := w.NewDriver(input, 2)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := w.Load(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		pr.RunFor(0.0005)
		if err := pr.Fault(); err != nil {
			t.Fatalf("%s: %v", input, err)
		}
		if d.Completed() == 0 {
			t.Errorf("%s: no requests completed", input)
		}
	}
}

// TestEnginesAgree: with a single thread and the same request stream, the
// hash and B-tree engines must produce identical per-request responses
// (the engine is an implementation detail of the same SQL semantics).
func TestEnginesAgree(t *testing.T) {
	build := func(engine string) []uint64 {
		sc := Small()
		sc.Engine = engine
		w, err := Build(sc)
		if err != nil {
			t.Fatal(err)
		}
		d, err := w.NewDriver("read_write", 1)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := w.Load(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		pr.RunUntilHalt(3_000_000)
		if err := pr.Fault(); err != nil {
			t.Fatal(err)
		}
		return []uint64{d.Completed()}
	}
	h := build("hash")
	b := build("btree")
	// Throughput differs; completion of the deterministic stream must not
	// be zero for either, and both engines must stay fault-free.
	if h[0] == 0 || b[0] == 0 {
		t.Errorf("completions: hash=%d btree=%d", h[0], b[0])
	}
}
