package sqldb

import (
	"testing"

	"repro/internal/bolt"
	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/workloads/wl"
)

// TestSpeedupRegression pins the headline result at evaluation scale:
// offline BOLT and online OCOLOS both give a solid speedup on read_only,
// with OCOLOS close below the BOLT oracle (Figure 5's relationship).
func TestSpeedupRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation-scale run in -short mode")
	}
	w, err := Build(Full())
	if err != nil {
		t.Fatal(err)
	}
	const threads = 4

	measure := func(bin *obj.Binary) float64 {
		d, err := w.NewDriver("read_only", threads)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := proc.Load(bin, proc.Options{Threads: threads, Handler: d})
		if err != nil {
			t.Fatal(err)
		}
		pr.RunFor(0.002)
		tput := wl.Measure(pr, d, 0.003)
		if err := pr.Fault(); err != nil {
			t.Fatal(err)
		}
		return tput
	}

	orig := measure(w.Binary)

	// Offline BOLT with an oracle profile.
	d, _ := w.NewDriver("read_only", threads)
	pr, err := w.Load(d, threads)
	if err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.001)
	raw := perf.Record(pr, 0.003, perf.RecorderOptions{})
	prof, err := bolt.ConvertProfile(raw, w.Binary)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bolt.Optimize(w.Binary, prof, bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boltTput := measure(res.Binary)

	// OCOLOS online.
	d2, _ := w.NewDriver("read_only", threads)
	pr2, err := w.Load(d2, threads)
	if err != nil {
		t.Fatal(err)
	}
	pr2.RunFor(0.001)
	c, err := core.New(pr2, w.Binary, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OptimizeRound(0.003); err != nil {
		t.Fatal(err)
	}
	pr2.RunFor(0.002) // settle into optimized steady state
	ocolos := wl.Measure(pr2, d2, 0.003)
	if err := pr2.Fault(); err != nil {
		t.Fatal(err)
	}

	bs, os := boltTput/orig, ocolos/orig
	t.Logf("read_only speedups: BOLT %.3f, OCOLOS %.3f", bs, os)
	if bs < 1.15 {
		t.Errorf("BOLT speedup %.3f below regression floor 1.15", bs)
	}
	if os < 1.15 {
		t.Errorf("OCOLOS speedup %.3f below regression floor 1.15", os)
	}
	if os > bs*1.1 {
		t.Errorf("OCOLOS (%.3f) should not beat the BOLT oracle (%.3f) by >10%%", os, bs)
	}
}
