// Package loopsim is the loop-parked workload: a service whose main
// function contains the hot loop *itself* and never returns. Each
// request is served by spinning a frame-local inner loop (accumulator
// and trip count live in stack slots, reloaded around calls) that calls
// a small mixing leaf every iteration, then reporting the folded result
// and going straight back for the next request.
//
// The shape is deliberately the worst case for return-driven migration:
// the frame of main is parked on every thread's stack for the entire
// process lifetime, so a code replacement that waits for the function to
// return waits forever — the optimized layout of main would never take
// effect. It exists to exercise on-stack replacement (internal/core's
// OSR stage), which transfers the parked frame between layouts at loop
// headers and call boundaries while the process is paused. A second
// worker thread (the default Threads: 2) keeps the request stream moving
// in fleet runs; the diffcheck harness drives thread 0 alone.
package loopsim

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/workloads/wl"
	"repro/internal/workloads/wlgen"
)

// Scale configures the generated service.
type Scale struct {
	MixBranches int // stimulus-dependent branches in the mixing leaf
	MainBlocks  int // stimulus-dependent branch pairs in main's inner loop
	ColdFuncs   int // never-executed tracing/debug code between hot funcs
	ColdSize    int
}

// Full is the evaluation scale.
func Full() Scale {
	return Scale{MixBranches: 8, MainBlocks: 4, ColdFuncs: 60, ColdSize: 40}
}

// Small keeps tests fast.
func Small() Scale {
	return Scale{MixBranches: 4, MainBlocks: 2, ColdFuncs: 10, ColdSize: 16}
}

// stimSlot is the state word holding the current stimulus.
const stimSlot = 0

// Build assembles the workload.
func Build(sc Scale) (*wl.Workload, error) {
	p := build.NewProgram("loopsim")
	p.SetNoJumpTables(true)
	p.Global("state", 64)
	cold := wlgen.EmitColdLib(p, "ltrace", sc.ColdFuncs, sc.ColdSize)

	// Cold padding before the hot code, so the baseline layout spreads
	// the hot path across the text section.
	pre := p.Func("init_tables")
	pre.Prologue(16)
	pre.PadCode(24)
	pre.Call(cold[0])
	pre.EpilogueRet()

	// mix: the hot leaf called once per inner-loop iteration. R1 holds
	// the accumulator; the mixed value returns in R0. Which branch sides
	// run depends entirely on the stimulus word.
	f := p.Func("mix")
	f.Prologue(16)
	f.LoadGlobalAddr(isa.R6, "state")
	f.Ld(isa.R7, isa.R6, stimSlot*8)
	f.Mov(isa.R0, isa.R1)
	for b := 0; b < sc.MixBranches; b++ {
		bit := uint(b % 60)
		f.ShrI(isa.R8, isa.R7, int64(bit))
		f.AndI(isa.R8, isa.R8, 1)
		f.CmpI(isa.R8, 0)
		b := b
		f.If(isa.EQ, func() {
			f.MulI(isa.R0, isa.R0, int64(2*b+3))
			f.AddI(isa.R0, isa.R0, int64(b+1))
		}, func() {
			f.XorI(isa.R0, isa.R0, int64(b*131+7))
			f.ShrI(isa.R9, isa.R0, 5)
			f.Add(isa.R0, isa.R0, isa.R9)
			f.PadCode(2)
		})
		// Interleave a cold helper between branch clusters.
		if b%2 == 1 {
			g := p.Func(fmt.Sprintf("ldbg_mix_%d", b))
			g.Prologue(16)
			g.PadCode(20)
			g.Call(cold[(b+1)%len(cold)])
			g.EpilogueRet()
		}
	}
	f.EpilogueRet()

	// main: serve requests forever. The inner loop keeps its accumulator
	// at [FP-8] and its remaining trip count at [FP-16]; both are
	// reloaded after every call, so the frame slots — not registers — are
	// the live state a mid-loop migration must preserve.
	m := p.Func("main")
	m.Prologue(32)
	serve := m.Label("serve")
	m.Sys(1) // SysRecv: R0 op, R1 stimulus/seed, R2 inner-loop trips
	m.CmpI(isa.R0, -1)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.LoadGlobalAddr(isa.R6, "state")
	m.St(isa.R6, stimSlot*8, isa.R1)
	m.St(isa.FP, -8, isa.R1)  // accumulator
	m.St(isa.FP, -16, isa.R2) // remaining iterations
	spin := m.Label("spin")
	m.Ld(isa.R1, isa.FP, -8)
	m.Call("mix")
	m.Ld(isa.R6, isa.FP, -8) // reload: registers do not survive the call
	m.Add(isa.R6, isa.R6, isa.R0)
	for b := 0; b < sc.MainBlocks; b++ {
		bit := uint((17 + 7*b) % 60)
		m.LoadGlobalAddr(isa.R7, "state")
		m.Ld(isa.R7, isa.R7, stimSlot*8)
		m.ShrI(isa.R7, isa.R7, int64(bit))
		m.AndI(isa.R7, isa.R7, 1)
		m.CmpI(isa.R7, 0)
		b := b
		m.If(isa.EQ, func() {
			m.AddI(isa.R6, isa.R6, int64(3*b+1))
		}, func() {
			m.XorI(isa.R6, isa.R6, int64(b*257+13))
			m.PadCode(2)
		})
	}
	m.St(isa.FP, -8, isa.R6)
	m.Ld(isa.R7, isa.FP, -16)
	m.AddI(isa.R7, isa.R7, -1)
	m.St(isa.FP, -16, isa.R7)
	m.CmpI(isa.R7, 0)
	m.BranchIf(isa.NE, spin) // back edge: spin is an OSR loop header
	m.Ld(isa.R0, isa.FP, -8)
	m.Sys(2) // SysSend with the folded accumulator
	m.Goto(serve)
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		return nil, err
	}
	return &wl.Workload{
		Name:    "loopsim",
		Binary:  bin,
		Inputs:  Inputs(),
		Threads: 2, // one parked server per core; the second keeps load flowing
		NewDriver: func(input string, threads int) (*wl.Driver, error) {
			gen, err := generator(input)
			if err != nil {
				return nil, err
			}
			return wl.NewDriver(gen, threads), nil
		},
	}, nil
}

// Inputs lists the stimulus mixes.
func Inputs() []string { return []string{"steady", "bursty", "sweep"} }

// trips is the inner-loop trip count per request: long enough that a
// pause almost always lands with a frame parked inside the loop.
const trips = 48

func generator(input string) (wl.Generator, error) {
	var base uint64
	switch input {
	case "steady":
		base = 0x0000_00FF_0000_FFFF
	case "bursty":
		base = 0xFF00_FF00_0F0F_0F0F
	case "sweep":
		base = 0x1357_9BDF_0246_8ACE
	default:
		return nil, fmt.Errorf("loopsim: unknown input %q", input)
	}
	return func(tid int, seq uint64) wl.Request {
		stim := base
		if seq%32 == 31 {
			stim ^= wl.SplitMix64(seq+uint64(tid)<<16) & 0xFFFF
		}
		return wl.Request{Op: 0, Arg1: stim, Arg2: trips}
	}, nil
}
