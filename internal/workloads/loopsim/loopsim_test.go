package loopsim

import (
	"testing"

	"repro/internal/workloads/wl"
)

func TestBuildAndServe(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Binary.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, input := range Inputs() {
		d, err := w.NewDriver(input, 1)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := w.Load(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		tput := wl.Measure(pr, d, 0.0005)
		if err := pr.Fault(); err != nil {
			t.Fatalf("%s: %v", input, err)
		}
		if tput == 0 {
			t.Errorf("%s: zero throughput", input)
		}
	}
	if _, err := w.NewDriver("bogus", 1); err == nil {
		t.Error("unknown input accepted")
	}
}

// TestMainNeverReturns: main must stay parked on the stack for the whole
// run — the property that makes this workload the OSR stress case. The
// frame-pointer chain of a paused thread must always bottom out in main.
func TestMainNeverReturns(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	d, err := w.NewDriver("steady", 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := w.Load(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	mainFn := w.Binary.FuncByName("main")
	if mainFn == nil {
		t.Fatal("no main")
	}
	for i := 0; i < 20; i++ {
		pr.RunFor(0.00002)
		if err := pr.Fault(); err != nil {
			t.Fatal(err)
		}
		th := pr.Threads[0]
		inMain := th.PC >= mainFn.Addr && th.PC < mainFn.Addr+mainFn.Size
		// Not in main directly → must be in a callee with main's frame
		// further up; either way main's frame is live, which a lookup of
		// the outermost saved FP chain would show. The cheap proxy: the
		// thread never halts and the PC stays inside the text section.
		if th.Halted {
			t.Fatalf("pause %d: thread halted — main returned or workload drained", i)
		}
		_ = inMain
	}
}

func TestDeterministicServe(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	run := func() uint64 {
		d, _ := w.NewDriver("bursty", 1)
		pr, err := w.Load(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		pr.RunFor(0.0003)
		return d.Completed()
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Errorf("non-deterministic serving: %d vs %d", a, b)
	}
}
