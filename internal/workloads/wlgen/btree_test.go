package wlgen

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/proc"
)

// btreeHarness drives the guest B-tree via syscalls: op 1 = insert, op
// 2 = find (emits result), op 0 = halt.
func btreeHarness(t *testing.T, poolNodes int64) (*proc.Process, *hashDriver) {
	t.Helper()
	p := build.NewProgram("bt")
	bt := EmitBTree(p, "b", poolNodes)

	m := p.Func("main")
	m.Prologue(32)
	m.Call(bt.Init)
	loop := m.Label("loop")
	m.Sys(proc.SysRecv)
	m.CmpI(isa.R0, 0)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.CmpI(isa.R0, 1)
	m.If(isa.EQ, func() {
		m.Mov(isa.R0, isa.R1)
		m.Mov(isa.R1, isa.R2)
		m.Call(bt.Insert)
		m.Goto(loop)
	}, nil)
	m.Mov(isa.R0, isa.R1)
	m.Call(bt.Find)
	m.Sys(proc.SysEmit)
	m.Goto(loop)
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := &hashDriver{}
	pr, err := proc.Load(bin, proc.Options{Threads: 1, Handler: d})
	if err != nil {
		t.Fatal(err)
	}
	return pr, d
}

// TestBTreeMatchesMapProperty checks the guest B-tree against a Go map
// over random upsert/find streams — including enough inserts to force
// root growth and many node splits.
func TestBTreeMatchesMapProperty(t *testing.T) {
	for _, tc := range []struct {
		seed  int64
		keys  int
		ops   int
		nodes int64
	}{
		{seed: 1, keys: 40, ops: 2000, nodes: 64},     // small, few splits
		{seed: 2, keys: 1000, ops: 6000, nodes: 1024}, // deep tree
		{seed: 3, keys: 5000, ops: 8000, nodes: 4096}, // deeper
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		pr, d := btreeHarness(t, tc.nodes)
		ref := map[uint64]uint64{}
		var wantGets []uint64
		for i := 0; i < tc.ops; i++ {
			key := uint64(rng.Intn(tc.keys)) + 1
			if rng.Intn(2) == 0 {
				val := rng.Uint64() | 1
				d.ops = append(d.ops, hashOp{1, key, val})
				ref[key] = val
			} else {
				d.ops = append(d.ops, hashOp{2, key, 0})
				wantGets = append(wantGets, ref[key])
			}
		}
		pr.RunUntilHalt(0)
		if err := pr.Fault(); err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		if len(d.Emitted) != len(wantGets) {
			t.Fatalf("seed %d: %d finds answered, want %d", tc.seed, len(d.Emitted), len(wantGets))
		}
		for i := range wantGets {
			if d.Emitted[i] != wantGets[i] {
				t.Fatalf("seed %d: find %d = %d, reference %d", tc.seed, i, d.Emitted[i], wantGets[i])
			}
		}
	}
}

// TestBTreeSequentialAscending stresses the splitting path: ascending
// inserts always split the rightmost spine.
func TestBTreeSequentialAscending(t *testing.T) {
	pr, d := btreeHarness(t, 2048)
	const n = 3000
	for k := uint64(1); k <= n; k++ {
		d.ops = append(d.ops, hashOp{1, k, k * 3})
	}
	for k := uint64(1); k <= n; k++ {
		d.ops = append(d.ops, hashOp{2, k, 0})
	}
	d.ops = append(d.ops, hashOp{2, n + 1, 0}) // miss
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		if d.Emitted[k-1] != k*3 {
			t.Fatalf("find(%d) = %d, want %d", k, d.Emitted[k-1], k*3)
		}
	}
	if d.Emitted[n] != 0 {
		t.Error("missing key should find 0")
	}
}
