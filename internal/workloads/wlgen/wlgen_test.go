package wlgen

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/proc"
)

// hashHarness builds a guest program exposing the hash table through a
// syscall-driven loop: op 1 = put(key,val), op 2 = get(key) → emit, op
// 3 = del(key), op 0 = halt.
func hashHarness(t *testing.T, buckets int64) (*proc.Process, *hashDriver) {
	t.Helper()
	p := build.NewProgram("ht")
	ht := EmitHashTable(p, "h", buckets)

	m := p.Func("main")
	m.Prologue(32)
	loop := m.Label("loop")
	m.Sys(proc.SysRecv)
	m.CmpI(isa.R0, 0)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.CmpI(isa.R0, 1)
	m.If(isa.EQ, func() {
		m.Mov(isa.R0, isa.R1)
		m.Mov(isa.R1, isa.R2)
		m.Call(ht.Put)
		m.Goto(loop)
	}, nil)
	m.CmpI(isa.R0, 2)
	m.If(isa.EQ, func() {
		m.Mov(isa.R0, isa.R1)
		m.Call(ht.Get)
		m.Sys(proc.SysEmit)
		m.Goto(loop)
	}, nil)
	m.Mov(isa.R0, isa.R1)
	m.Call(ht.Del)
	m.Goto(loop)
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := &hashDriver{}
	pr, err := proc.Load(bin, proc.Options{Threads: 1, Handler: d})
	if err != nil {
		t.Fatal(err)
	}
	return pr, d
}

type hashOp struct{ op, key, val uint64 }

type hashDriver struct {
	ops     []hashOp
	pos     int
	Emitted []uint64
}

func (d *hashDriver) Syscall(p *proc.Process, t *proc.Thread, num int64) error {
	switch num {
	case proc.SysRecv:
		if d.pos >= len(d.ops) {
			t.Regs[0] = 0
			return nil
		}
		op := d.ops[d.pos]
		d.pos++
		t.Regs[0], t.Regs[1], t.Regs[2] = op.op, op.key, op.val
	case proc.SysEmit:
		d.Emitted = append(d.Emitted, t.Regs[0])
	}
	return nil
}

// TestHashTableMatchesMap drives the guest hash index with a random
// operation stream and checks every get against a Go map — the
// property-based correctness anchor for the storage-engine substrate.
func TestHashTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pr, d := hashHarness(t, 1<<10)

	ref := map[uint64]uint64{}
	var wantGets []uint64
	for i := 0; i < 3000; i++ {
		key := uint64(rng.Intn(300))*2 + 2 // keys > tombstone, bounded set
		switch rng.Intn(4) {
		case 0, 1: // put
			val := rng.Uint64() | 1
			d.ops = append(d.ops, hashOp{1, key, val})
			ref[key] = val
		case 2: // get
			d.ops = append(d.ops, hashOp{2, key, 0})
			wantGets = append(wantGets, ref[key])
		case 3: // del
			d.ops = append(d.ops, hashOp{3, key, 0})
			delete(ref, key)
		}
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if len(d.Emitted) != len(wantGets) {
		t.Fatalf("got %d gets, want %d", len(d.Emitted), len(wantGets))
	}
	for i := range wantGets {
		if d.Emitted[i] != wantGets[i] {
			t.Fatalf("get %d: guest %d, reference %d", i, d.Emitted[i], wantGets[i])
		}
	}
}

func TestChainEntryAndColdPath(t *testing.T) {
	p := build.NewProgram("chain")
	cold := EmitColdLib(p, "c", 2, 8)
	entry := EmitChain(p, "pc", ChainSpec{Steps: 5, ColdPad: 6, HotWork: 3, CallCold: cold[0], Sequential: true})
	p.Global("out", 8)
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R0, 1234)
	m.MovI(isa.R1, 0) // clean parse
	m.Call(entry)
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R0)
	m.Halt()
	p.SetEntry("main")
	prog, err := p.Program()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	outAddr := asm.DataSymbols(prog, asm.Options{})["out"]
	clean := pr.Mem.ReadWord(outAddr)
	if clean == 0 {
		t.Error("clean parse should produce a nonzero mix")
	}

	// Poisoned parse (R1 != 0) takes the cold path and yields 0.
	p2 := build.NewProgram("chain2")
	cold2 := EmitColdLib(p2, "c", 2, 8)
	entry2 := EmitChain(p2, "pc", ChainSpec{Steps: 5, ColdPad: 6, HotWork: 3, CallCold: cold2[0], Sequential: true})
	p2.Global("out", 8)
	m2 := p2.Func("main")
	m2.Prologue(16)
	m2.MovI(isa.R0, 1234)
	m2.MovI(isa.R1, 1) // poison
	m2.Call(entry2)
	m2.LoadGlobalAddr(isa.R3, "out")
	m2.St(isa.R3, 0, isa.R0)
	m2.Halt()
	p2.SetEntry("main")
	prog2, _ := p2.Program()
	bin2, err := asm.Assemble(prog2, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr2, _ := proc.Load(bin2, proc.Options{})
	pr2.RunUntilHalt(0)
	if err := pr2.Fault(); err != nil {
		t.Fatal(err)
	}
	// Cold path zeroes R0 in the first step; later steps remix it, so we
	// only require a different result from the clean run.
	out2 := pr2.Mem.ReadWord(asm.DataSymbols(prog2, asm.Options{})["out"])
	if out2 == clean {
		t.Error("poisoned parse should diverge from clean parse")
	}
}

func TestScanSumsArray(t *testing.T) {
	p := build.NewProgram("scan")
	arr := p.Global("arr", 64*8)
	EmitScan(p, "scan", arr, 64, 1)
	p.Global("out", 8)
	m := p.Func("main")
	m.Prologue(16)
	// Fill arr[i] = i.
	m.LoadGlobalAddr(isa.R6, "arr")
	m.MovI(isa.R7, 0)
	m.While(func() { m.CmpI(isa.R7, 64) }, isa.LT, func() {
		m.ShlI(isa.R8, isa.R7, 3)
		m.Add(isa.R8, isa.R6, isa.R8)
		m.St(isa.R8, 0, isa.R7)
		m.AddI(isa.R7, isa.R7, 1)
	})
	m.MovI(isa.R0, 0)
	m.MovI(isa.R1, 64)
	m.Call("scan")
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R0)
	m.Halt()
	p.SetEntry("main")
	prog, _ := p.Program()
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := proc.Load(bin, proc.Options{})
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(asm.DataSymbols(prog, asm.Options{})["out"]); got != 64*63/2 {
		t.Errorf("scan sum = %d, want %d", got, 64*63/2)
	}
}
