package wlgen

import (
	"repro/internal/build"
	"repro/internal/isa"
)

// B-tree geometry: classic CLRS-style B-tree (keys and values in every
// node) with preemptive splitting, so insertion is a single downward
// pass — no recursion, no parent stack.
const (
	btOrder    = 8 // max keys per node; split when full
	btNodeSize = 224

	// Node layout, word offsets.
	btCount = 0  // number of keys
	btLeaf  = 1  // 1 = leaf
	btKeys  = 2  // keys[0..7]
	btVals  = 10 // vals[0..7]
	btKids  = 18 // children[0..8]
)

// BTree describes an emitted B-tree index.
type BTree struct {
	Init   string // func(): allocate the empty root
	Find   string // func(R0 key) → R0 value (0 = miss)
	Insert string // func(R0 key, R1 value): upsert
	Pool   string // node pool global
	Meta   string // [0] root addr, [1] next free pool offset
}

// EmitBTree emits a B-tree index with capacity for poolNodes nodes.
// The workload must call Init (once) before any other operation and may
// not insert more distinct keys than the pool supports (each node holds
// at least btOrder/2 keys after splits, so poolNodes*4 keys is safe).
// Keys must be > 0.
//
// This is the storage-engine substrate MySQL actually uses (InnoDB's
// clustered index); sqldb exposes it as an alternative engine so the
// layout experiments can run over pointer-chasing tree descents instead
// of hash probes.
func EmitBTree(p *build.ProgramBuilder, prefix string, poolNodes int64) BTree {
	bt := BTree{
		Init:   prefix + "_init",
		Find:   prefix + "_find",
		Insert: prefix + "_insert",
		Pool:   prefix + "_pool",
		Meta:   prefix + "_meta",
	}
	p.Global(bt.Pool, uint64(poolNodes)*btNodeSize)
	p.Global(bt.Meta, 16)

	alloc := prefix + "_alloc"
	split := prefix + "_split"

	// elem computes dst = node + idx*8 (byte address of word idx array
	// slot); subsequent Ld/St use the array's word offset as displacement.
	elem := func(f *build.FuncBuilder, dst, node, idx uint8) {
		f.ShlI(dst, idx, 3)
		f.Add(dst, node, dst)
	}

	// alloc() → R0: fresh node from the pool (zeroed by construction).
	{
		f := p.Func(alloc)
		f.Prologue(16)
		f.LoadGlobalAddr(isa.R6, bt.Meta)
		f.Ld(isa.R7, isa.R6, 8)
		f.LoadGlobalAddr(isa.R8, bt.Pool)
		f.Add(isa.R0, isa.R8, isa.R7)
		f.AddI(isa.R7, isa.R7, btNodeSize)
		f.St(isa.R6, 8, isa.R7)
		f.EpilogueRet()
	}

	// init(): root = alloc(); empty leaf.
	{
		f := p.Func(bt.Init)
		f.Prologue(16)
		f.Call(alloc)
		f.St(isa.R0, btCount*8, isa.RZ)
		f.MovI(isa.R6, 1)
		f.St(isa.R0, btLeaf*8, isa.R6)
		f.LoadGlobalAddr(isa.R6, bt.Meta)
		f.St(isa.R6, 0, isa.R0)
		f.EpilogueRet()
	}

	// find(key R0) → R0.
	// R10 key, R6 node, R7 count, R8 i, R9 scratch.
	{
		f := p.Func(bt.Find)
		f.Prologue(16)
		f.Mov(isa.R10, isa.R0)
		f.LoadGlobalAddr(isa.R6, bt.Meta)
		f.Ld(isa.R6, isa.R6, 0)
		walk := f.Label("walk")
		f.Ld(isa.R7, isa.R6, btCount*8)
		f.MovI(isa.R8, 0)
		scan := f.Label("scan")
		scanDone := "find_scan_done"
		found := "find_found"
		f.Cmp(isa.R8, isa.R7)
		f.BranchIf(isa.GE, scanDone)
		elem(f, isa.R9, isa.R6, isa.R8)
		f.Ld(isa.R9, isa.R9, btKeys*8)
		f.Cmp(isa.R10, isa.R9)
		f.BranchIf(isa.EQ, found)
		// Flags still hold key - keys[i] (branches do not clobber them).
		f.BranchIf(isa.LT, scanDone)
		f.AddI(isa.R8, isa.R8, 1)
		f.Goto(scan)
		f.LabelNamed(scanDone)
		f.Ld(isa.R9, isa.R6, btLeaf*8)
		f.CmpI(isa.R9, 1)
		f.If(isa.EQ, func() { // leaf and not found: miss
			f.MovI(isa.R0, 0)
			f.EpilogueRet()
		}, nil)
		elem(f, isa.R9, isa.R6, isa.R8)
		f.Ld(isa.R6, isa.R9, btKids*8)
		f.Goto(walk)
		f.LabelNamed(found)
		elem(f, isa.R9, isa.R6, isa.R8)
		f.Ld(isa.R0, isa.R9, btVals*8)
		f.EpilogueRet()
	}

	// split(parent R0, i R1): split the full child parent.kids[i].
	// Frame: -8 parent, -16 i, -24 y, -32 z.
	{
		f := p.Func(split)
		f.Prologue(48)
		f.St(isa.FP, -8, isa.R0)
		f.St(isa.FP, -16, isa.R1)
		elem(f, isa.R6, isa.R0, isa.R1)
		f.Ld(isa.R6, isa.R6, btKids*8) // y
		f.St(isa.FP, -24, isa.R6)
		f.Call(alloc) // z in R0
		f.St(isa.FP, -32, isa.R0)
		f.Ld(isa.R6, isa.FP, -24)
		f.Ld(isa.R7, isa.R6, btLeaf*8)
		f.St(isa.R0, btLeaf*8, isa.R7)

		// Copy keys/vals [5..7] of y into [0..2] of z.
		f.MovI(isa.R8, 0)
		f.While(func() { f.CmpI(isa.R8, 3) }, isa.LT, func() {
			f.Ld(isa.R6, isa.FP, -24)  // y
			f.Ld(isa.R11, isa.FP, -32) // z
			f.AddI(isa.R9, isa.R8, 5)
			elem(f, isa.R10, isa.R6, isa.R9)
			f.Ld(isa.R12, isa.R10, btKeys*8)
			elem(f, isa.R9, isa.R11, isa.R8)
			f.St(isa.R9, btKeys*8, isa.R12)
			f.Ld(isa.R12, isa.R10, btVals*8)
			f.St(isa.R9, btVals*8, isa.R12)
			f.AddI(isa.R8, isa.R8, 1)
		})
		// Children [5..8] → z[0..3] when internal.
		f.Ld(isa.R6, isa.FP, -24)
		f.Ld(isa.R7, isa.R6, btLeaf*8)
		f.CmpI(isa.R7, 0)
		f.If(isa.EQ, func() {
			f.MovI(isa.R8, 0)
			f.While(func() { f.CmpI(isa.R8, 4) }, isa.LT, func() {
				f.Ld(isa.R6, isa.FP, -24)
				f.Ld(isa.R11, isa.FP, -32)
				f.AddI(isa.R9, isa.R8, 5)
				elem(f, isa.R10, isa.R6, isa.R9)
				f.Ld(isa.R12, isa.R10, btKids*8)
				elem(f, isa.R9, isa.R11, isa.R8)
				f.St(isa.R9, btKids*8, isa.R12)
				f.AddI(isa.R8, isa.R8, 1)
			})
		}, nil)
		// y.count = 4; z.count = 3.
		f.Ld(isa.R6, isa.FP, -24)
		f.MovI(isa.R7, 4)
		f.St(isa.R6, btCount*8, isa.R7)
		f.Ld(isa.R11, isa.FP, -32)
		f.MovI(isa.R7, 3)
		f.St(isa.R11, btCount*8, isa.R7)

		// Shift the parent: keys/vals [i..count-1] right by one.
		f.Ld(isa.R6, isa.FP, -8)   // parent
		f.Ld(isa.R10, isa.FP, -16) // i
		f.Ld(isa.R7, isa.R6, btCount*8)
		f.Mov(isa.R9, isa.R7) // j = count
		f.While(func() { f.Cmp(isa.R9, isa.R10) }, isa.GT, func() {
			f.AddI(isa.R8, isa.R9, -1)
			elem(f, isa.R11, isa.R6, isa.R8)
			f.Ld(isa.R12, isa.R11, btKeys*8)
			elem(f, isa.R11, isa.R6, isa.R9)
			f.St(isa.R11, btKeys*8, isa.R12)
			elem(f, isa.R11, isa.R6, isa.R8)
			f.Ld(isa.R12, isa.R11, btVals*8)
			elem(f, isa.R11, isa.R6, isa.R9)
			f.St(isa.R11, btVals*8, isa.R12)
			f.AddI(isa.R9, isa.R9, -1)
		})
		// Children [i+1..count] right by one: j from count+1 down to i+2.
		f.Ld(isa.R7, isa.R6, btCount*8)
		f.AddI(isa.R9, isa.R7, 1)
		f.AddI(isa.R10, isa.R10, 1) // i+1
		f.While(func() { f.Cmp(isa.R9, isa.R10) }, isa.GT, func() {
			f.AddI(isa.R8, isa.R9, -1)
			elem(f, isa.R11, isa.R6, isa.R8)
			f.Ld(isa.R12, isa.R11, btKids*8)
			elem(f, isa.R11, isa.R6, isa.R9)
			f.St(isa.R11, btKids*8, isa.R12)
			f.AddI(isa.R9, isa.R9, -1)
		})
		// parent.keys[i] = y.keys[4]; vals likewise; kids[i+1] = z;
		// count++.
		f.Ld(isa.R10, isa.FP, -16) // i
		f.Ld(isa.R11, isa.FP, -24) // y
		f.MovI(isa.R9, 4)
		elem(f, isa.R12, isa.R11, isa.R9)
		f.Ld(isa.R7, isa.R12, btKeys*8) // median key
		elem(f, isa.R8, isa.R6, isa.R10)
		f.St(isa.R8, btKeys*8, isa.R7)
		f.Ld(isa.R7, isa.R12, btVals*8)
		f.St(isa.R8, btVals*8, isa.R7)
		f.AddI(isa.R9, isa.R10, 1)
		elem(f, isa.R8, isa.R6, isa.R9)
		f.Ld(isa.R7, isa.FP, -32) // z
		f.St(isa.R8, btKids*8, isa.R7)
		f.Ld(isa.R7, isa.R6, btCount*8)
		f.AddI(isa.R7, isa.R7, 1)
		f.St(isa.R6, btCount*8, isa.R7)
		f.EpilogueRet()
	}

	// insert(key R0, val R1): single-pass upsert with preemptive splits.
	// Frame: -8 key, -16 val, -24 node, -32 i.
	{
		f := p.Func(bt.Insert)
		f.Prologue(48)
		f.St(isa.FP, -8, isa.R0)
		f.St(isa.FP, -16, isa.R1)

		// Grow the root if full.
		f.LoadGlobalAddr(isa.R6, bt.Meta)
		f.Ld(isa.R7, isa.R6, 0) // root
		f.Ld(isa.R8, isa.R7, btCount*8)
		f.CmpI(isa.R8, btOrder)
		f.If(isa.EQ, func() {
			f.St(isa.FP, -24, isa.R7) // save old root
			f.Call(alloc)             // s
			f.St(isa.R0, btCount*8, isa.RZ)
			f.St(isa.R0, btLeaf*8, isa.RZ)
			f.Ld(isa.R7, isa.FP, -24)
			f.St(isa.R0, btKids*8, isa.R7) // kids[0] = old root
			f.LoadGlobalAddr(isa.R6, bt.Meta)
			f.St(isa.R6, 0, isa.R0)
			f.MovI(isa.R1, 0)
			f.Call(split)
		}, nil)

		f.LoadGlobalAddr(isa.R6, bt.Meta)
		f.Ld(isa.R6, isa.R6, 0)
		f.St(isa.FP, -24, isa.R6)

		down := f.Label("down")
		leafIns := "ins_leaf"
		f.Ld(isa.R6, isa.FP, -24)
		f.Ld(isa.R9, isa.R6, btLeaf*8)
		f.CmpI(isa.R9, 1)
		f.BranchIf(isa.EQ, leafIns)

		// Internal node: find child index.
		f.Ld(isa.R7, isa.R6, btCount*8)
		f.Ld(isa.R10, isa.FP, -8) // key
		f.MovI(isa.R8, 0)
		iscan := f.Label("iscan")
		ichild := "ins_child"
		f.Cmp(isa.R8, isa.R7)
		f.BranchIf(isa.GE, ichild)
		elem(f, isa.R9, isa.R6, isa.R8)
		f.Ld(isa.R9, isa.R9, btKeys*8)
		f.Cmp(isa.R10, isa.R9)
		f.If(isa.EQ, func() { // key at internal node: update value
			elem(f, isa.R9, isa.R6, isa.R8)
			f.Ld(isa.R12, isa.FP, -16)
			f.St(isa.R9, btVals*8, isa.R12)
			f.EpilogueRet()
		}, nil)
		f.Cmp(isa.R10, isa.R9)
		f.BranchIf(isa.LT, ichild)
		f.AddI(isa.R8, isa.R8, 1)
		f.Goto(iscan)

		f.LabelNamed(ichild)
		f.St(isa.FP, -32, isa.R8)
		elem(f, isa.R9, isa.R6, isa.R8)
		f.Ld(isa.R12, isa.R9, btKids*8) // child
		f.Ld(isa.R7, isa.R12, btCount*8)
		f.CmpI(isa.R7, btOrder)
		f.If(isa.EQ, func() {
			f.Mov(isa.R0, isa.R6)
			f.Ld(isa.R1, isa.FP, -32)
			f.Call(split)
			// Re-route around the promoted median.
			f.Ld(isa.R6, isa.FP, -24)
			f.Ld(isa.R8, isa.FP, -32)
			f.Ld(isa.R10, isa.FP, -8)
			elem(f, isa.R9, isa.R6, isa.R8)
			f.Ld(isa.R9, isa.R9, btKeys*8) // median
			f.Cmp(isa.R10, isa.R9)
			f.If(isa.EQ, func() {
				elem(f, isa.R9, isa.R6, isa.R8)
				f.Ld(isa.R12, isa.FP, -16)
				f.St(isa.R9, btVals*8, isa.R12)
				f.EpilogueRet()
			}, nil)
			f.Cmp(isa.R10, isa.R9)
			f.If(isa.GT, func() {
				f.AddI(isa.R8, isa.R8, 1)
			}, nil)
			elem(f, isa.R9, isa.R6, isa.R8)
			f.Ld(isa.R12, isa.R9, btKids*8)
		}, nil)
		f.St(isa.FP, -24, isa.R12)
		f.Goto(down)

		// Leaf insertion.
		f.LabelNamed(leafIns)
		f.Ld(isa.R6, isa.FP, -24)
		f.Ld(isa.R7, isa.R6, btCount*8)
		f.Ld(isa.R10, isa.FP, -8)
		f.MovI(isa.R8, 0)
		lscan := f.Label("lscan")
		lins := "ins_place"
		f.Cmp(isa.R8, isa.R7)
		f.BranchIf(isa.GE, lins)
		elem(f, isa.R9, isa.R6, isa.R8)
		f.Ld(isa.R9, isa.R9, btKeys*8)
		f.Cmp(isa.R10, isa.R9)
		f.If(isa.EQ, func() { // duplicate: overwrite
			elem(f, isa.R9, isa.R6, isa.R8)
			f.Ld(isa.R12, isa.FP, -16)
			f.St(isa.R9, btVals*8, isa.R12)
			f.EpilogueRet()
		}, nil)
		f.Cmp(isa.R10, isa.R9)
		f.BranchIf(isa.LT, lins)
		f.AddI(isa.R8, isa.R8, 1)
		f.Goto(lscan)

		f.LabelNamed(lins)
		// Shift [i..count-1] right: j from count down to i+1.
		f.Mov(isa.R9, isa.R7)
		f.While(func() { f.Cmp(isa.R9, isa.R8) }, isa.GT, func() {
			f.AddI(isa.R11, isa.R9, -1)
			elem(f, isa.R12, isa.R6, isa.R11)
			f.Ld(isa.R10, isa.R12, btKeys*8)
			elem(f, isa.R12, isa.R6, isa.R9)
			f.St(isa.R12, btKeys*8, isa.R10)
			elem(f, isa.R12, isa.R6, isa.R11)
			f.Ld(isa.R10, isa.R12, btVals*8)
			elem(f, isa.R12, isa.R6, isa.R9)
			f.St(isa.R12, btVals*8, isa.R10)
			f.AddI(isa.R9, isa.R9, -1)
		})
		elem(f, isa.R12, isa.R6, isa.R8)
		f.Ld(isa.R10, isa.FP, -8)
		f.St(isa.R12, btKeys*8, isa.R10)
		f.Ld(isa.R10, isa.FP, -16)
		f.St(isa.R12, btVals*8, isa.R10)
		f.AddI(isa.R7, isa.R7, 1)
		f.St(isa.R6, btCount*8, isa.R7)
		f.EpilogueRet()
	}

	return bt
}
