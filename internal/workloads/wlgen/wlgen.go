// Package wlgen emits reusable guest-code building blocks for the
// benchmark workloads: an open-addressing hash index (the storage-engine
// substrate), deep call chains with inline cold error paths (generated
// parser code, the MYSQLparse analog), cold utility libraries (the bulk
// of any real binary), and scan loops (memory-bound operators).
//
// Every emitted function establishes a frame (ENTER first), per the
// unwindability ABI the OCOLOS controller requires.
package wlgen

import (
	"fmt"

	"repro/internal/build"
	"repro/internal/isa"
)

// Tombstone is the reserved key marking deleted hash slots; generators
// must produce keys > Tombstone.
const Tombstone = 1

// HashTable describes an emitted hash index.
type HashTable struct {
	Get  string // func(R0 key) → R0 value (0 = miss)
	Put  string // func(R0 key, R1 value)
	Del  string // func(R0 key)
	Glob string // backing global (buckets × 16 bytes)
	Mask int64
}

// EmitHashTable emits an open-addressing (linear probing) hash index over
// a dedicated global. buckets must be a power of two.
func EmitHashTable(p *build.ProgramBuilder, prefix string, buckets int64) HashTable {
	if buckets&(buckets-1) != 0 {
		panic("wlgen: buckets must be a power of two")
	}
	glob := p.Global(prefix+"_tab", uint64(buckets)*16)
	mask := buckets - 1
	ht := HashTable{
		Get:  prefix + "_get",
		Put:  prefix + "_put",
		Del:  prefix + "_del",
		Glob: glob,
		Mask: mask,
	}

	// hashTo(f, dst): dst = mix(R0) & mask. Clobbers R7.
	hashTo := func(f *build.FuncBuilder, dst uint8) {
		f.Mov(dst, isa.R0)
		f.MulI(dst, dst, 0x9E3779B1)
		f.ShrI(isa.R7, dst, 17)
		f.Xor(dst, dst, isa.R7)
		f.AndI(dst, dst, mask)
	}
	// slotAddr(f): R7 = &table[R6]. Clobbers R8.
	slotAddr := func(f *build.FuncBuilder) {
		f.LoadGlobalAddr(isa.R7, glob)
		f.ShlI(isa.R8, isa.R6, 4)
		f.Add(isa.R7, isa.R7, isa.R8)
	}

	g := p.Func(ht.Get)
	g.Prologue(16)
	hashTo(g, isa.R6)
	loop := g.Label("probe")
	slotAddr(g)
	g.Ld(isa.R8, isa.R7, 0)
	g.Cmp(isa.R8, isa.R0)
	g.If(isa.EQ, func() {
		g.Ld(isa.R0, isa.R7, 8)
		g.EpilogueRet()
	}, nil)
	g.CmpI(isa.R8, 0)
	g.If(isa.EQ, func() {
		g.MovI(isa.R0, 0)
		g.EpilogueRet()
	}, nil)
	g.AddI(isa.R6, isa.R6, 1)
	g.AndI(isa.R6, isa.R6, mask)
	g.Goto(loop)

	w := p.Func(ht.Put)
	w.Prologue(16)
	hashTo(w, isa.R6)
	wloop := w.Label("probe")
	slotAddr(w)
	w.Ld(isa.R8, isa.R7, 0)
	w.Cmp(isa.R8, isa.R0)
	w.If(isa.EQ, func() {
		w.St(isa.R7, 8, isa.R1)
		w.EpilogueRet()
	}, nil)
	w.CmpI(isa.R8, int64(Tombstone)+1)
	w.If(isa.LT, func() { // empty (0) or tombstone (1): claim it
		w.St(isa.R7, 0, isa.R0)
		w.St(isa.R7, 8, isa.R1)
		w.EpilogueRet()
	}, nil)
	w.AddI(isa.R6, isa.R6, 1)
	w.AndI(isa.R6, isa.R6, mask)
	w.Goto(wloop)

	d := p.Func(ht.Del)
	d.Prologue(16)
	hashTo(d, isa.R6)
	dloop := d.Label("probe")
	slotAddr(d)
	d.Ld(isa.R8, isa.R7, 0)
	d.Cmp(isa.R8, isa.R0)
	d.If(isa.EQ, func() {
		d.MovI(isa.R8, Tombstone)
		d.St(isa.R7, 0, isa.R8)
		d.EpilogueRet()
	}, nil)
	d.CmpI(isa.R8, 0)
	d.If(isa.EQ, func() { d.EpilogueRet() }, nil)
	d.AddI(isa.R6, isa.R6, 1)
	d.AndI(isa.R6, isa.R6, mask)
	d.Goto(dloop)

	return ht
}

// ChainSpec shapes a generated call chain (the parser-code analog).
type ChainSpec struct {
	Steps    int    // functions in the chain
	ColdPad  int    // NOPs of inline cold error handling per function
	HotWork  int    // arithmetic ops per function on the hot path
	CallCold string // optional cold-library function called on the error path

	// Sequential emits a driver function <prefix>_drv that calls the steps
	// one after another (parser states driven from a dispatch loop)
	// instead of nesting each step's call inside the previous one; nesting
	// 30+ frames deep would overflow any real return-address stack, which
	// is not how generated parsers behave.
	Sequential bool
}

// EmitChain emits functions <prefix>_s0 … and returns the entry function
// name. Each step mixes R0, takes a biased branch whose cold side is the
// inline error path (never executed for well-formed requests: R1 carries
// a poison flag the generators keep zero), then calls the next step.
// The chain preserves and transforms R0; R1 is the poison flag.
func EmitChain(p *build.ProgramBuilder, prefix string, spec ChainSpec) string {
	return EmitChains(p, []string{prefix}, spec)[0]
}

// EmitChains emits one chain per prefix with the functions *interleaved by
// step* in the layout: step k of every chain is emitted before step k+1 of
// any chain. This reproduces the source-order scatter of generated parser
// code — the functions one query type actually executes are strided
// across the text section, which is precisely what profile-guided layout
// fixes. Returns the entry function of each chain.
func EmitChains(p *build.ProgramBuilder, prefixes []string, spec ChainSpec) []string {
	names := make([][]string, len(prefixes))
	for c, prefix := range prefixes {
		names[c] = make([]string, spec.Steps)
		for i := range names[c] {
			names[c][i] = fmt.Sprintf("%s_s%d", prefix, i)
		}
	}
	entries := make([]string, len(prefixes))
	if spec.Sequential {
		for c, prefix := range prefixes {
			entries[c] = prefix + "_drv"
			d := p.Func(entries[c])
			d.Prologue(16)
			for i := 0; i < spec.Steps; i++ {
				d.Call(names[c][i])
			}
			d.EpilogueRet()
		}
	}
	for i := spec.Steps - 1; i >= 0; i-- {
		for c := range prefixes {
			emitChainStep(p, names[c], i, spec)
		}
	}
	if !spec.Sequential {
		for c := range prefixes {
			entries[c] = names[c][0]
		}
	}
	return entries
}

func emitChainStep(p *build.ProgramBuilder, names []string, i int, spec ChainSpec) {
	f := p.Func(names[i])
	{
		f.Prologue(16)
		for k := 0; k < spec.HotWork; k++ {
			switch k % 3 {
			case 0:
				f.MulI(isa.R0, isa.R0, int64(2*i+3))
			case 1:
				f.XorI(isa.R0, isa.R0, int64(i*257+k))
			case 2:
				f.ShrI(isa.R6, isa.R0, 7)
				f.Add(isa.R0, isa.R0, isa.R6)
			}
		}
		// Poison check: the inline cold error path (R1 != 0).
		f.CmpI(isa.R1, 0)
		f.If(isa.NE, func() {
			f.PadCode(spec.ColdPad)
			if spec.CallCold != "" {
				f.Call(spec.CallCold)
			}
			f.MovI(isa.R0, 0)
			f.EpilogueRet()
		}, nil)
		if i+1 < spec.Steps && !spec.Sequential {
			f.Call(names[i+1])
		}
		f.EpilogueRet()
	}
}

// EmitColdLib emits n cold utility functions <prefix>_u0… of roughly
// sizeInsts instructions each and returns their names. They bulk up the
// binary the way rarely-used library code does in MySQL/MongoDB.
func EmitColdLib(p *build.ProgramBuilder, prefix string, n, sizeInsts int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s_u%d", prefix, i)
		f := p.Func(names[i])
		f.Prologue(16)
		f.PadCode(sizeInsts)
		f.AddI(isa.R0, isa.R0, int64(i))
		f.EpilogueRet()
	}
	return names
}

// EmitScan emits <name>: func(R0 startIdx, R1 count) → R0 sum, walking the
// given global array of words with the given stride. The loop is
// memory-bound for arrays far beyond the LLC.
func EmitScan(p *build.ProgramBuilder, name, arrayGlob string, arrayWords, stride int64) {
	f := p.Func(name)
	f.Prologue(16)
	f.LoadGlobalAddr(isa.R6, arrayGlob)
	f.MovI(isa.R8, 0) // sum
	f.Mov(isa.R9, isa.R0)
	f.While(func() { f.CmpI(isa.R1, 0) }, isa.GT, func() {
		f.AndI(isa.R9, isa.R9, arrayWords-1)
		f.ShlI(isa.R10, isa.R9, 3)
		f.Add(isa.R10, isa.R6, isa.R10)
		f.Ld(isa.R11, isa.R10, 0)
		f.Add(isa.R8, isa.R8, isa.R11)
		f.AddI(isa.R9, isa.R9, stride)
		f.AddI(isa.R1, isa.R1, -1)
	})
	f.Mov(isa.R0, isa.R8)
	f.EpilogueRet()
}

// EmitServerMain emits the standard serving loop: recv a request, bounds-
// check the opcode, dispatch through the given handler table (a v-table
// indexed by opcode), send the result, repeat; opcode NoMoreWork (all
// ones) halts. handlers is the name of a v-table whose slot i serves
// opcode i.
func EmitServerMain(p *build.ProgramBuilder, name, handlersVT string, numOps int64) {
	m := p.Func(name)
	m.Prologue(32)
	loop := m.Label("serve")
	m.Sys(1) // SysRecv → R0 op, R1..R3 args
	m.CmpI(isa.R0, -1)
	m.If(isa.EQ, func() {
		m.Halt()
	}, nil)
	// Bounds check (cold failure path).
	m.CmpI(isa.R0, numOps)
	m.If(isa.GE, func() {
		m.PadCode(8)
		m.Goto(loop)
	}, nil)
	// Dispatch through the handler v-table: an indirect call per request,
	// exactly the code-pointer pattern OCOLOS must patch.
	m.LoadGlobalAddr(isa.R6, handlersVT)
	m.ShlI(isa.R7, isa.R0, 3)
	m.Add(isa.R6, isa.R6, isa.R7)
	m.Ld(isa.R6, isa.R6, 0)
	m.Mov(isa.R0, isa.R1) // args shift down for the handler
	m.Mov(isa.R1, isa.R2)
	m.Mov(isa.R2, isa.R3)
	m.CallR(isa.R6)
	m.Sys(2) // SysSend (result in R0)
	m.Goto(loop)
}
