package kvcache

import (
	"testing"

	"repro/internal/workloads/wl"
)

func TestBuildAndServe(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Binary.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Binary.VTables) != 0 {
		t.Error("kvcache should have no v-tables (like Memcached, Table I)")
	}
	for _, input := range Inputs() {
		d, err := w.NewDriver(input, 2)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := w.Load(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		tput := wl.Measure(pr, d, 0.0005)
		if err := pr.Fault(); err != nil {
			t.Fatalf("%s: %v", input, err)
		}
		if tput == 0 {
			t.Errorf("%s: zero throughput", input)
		}
	}
	if _, err := w.NewDriver("bogus", 1); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestTextIsSmall(t *testing.T) {
	w, err := Build(Full())
	if err != nil {
		t.Fatal(err)
	}
	if tb := w.Binary.TextBytes(); tb > 300<<10 {
		t.Errorf("kvcache text %d bytes; should stay small like Memcached's 145 KiB", tb)
	}
}
