// Package kvcache is the Memcached-analog workload: a small key-value
// cache whose entire hot path nearly fits in the L1i. Like Memcached in
// the paper (374 functions, 0.142 MiB of text, no v-tables, ~1.05×
// speedup), it leaves code layout optimization little to win — a useful
// contrast point in Figure 5.
//
// Inputs follow memaslap naming: set10_get90, set50_get50.
package kvcache

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/workloads/wl"
	"repro/internal/workloads/wlgen"
)

const (
	opGet = iota
	opSet
	numOps
)

// Scale configures sizes.
type Scale struct {
	Buckets   int64
	ColdFuncs int
	ColdSize  int
	// Tenants > 1 builds the multi-tenant image (see MultiTenant): one
	// protocol decoder and handler pair per tenant, muxed on the request's
	// tenant id, with "hotK" inputs concentrating traffic on tenant K.
	Tenants int
}

// Full approximates Memcached's footprint.
func Full() Scale { return Scale{Buckets: 1 << 16, ColdFuncs: 48, ColdSize: 40} }

// Small keeps tests fast.
func Small() Scale { return Scale{Buckets: 1 << 10, ColdFuncs: 8, ColdSize: 12} }

// Build assembles the workload.
func Build(sc Scale) (*wl.Workload, error) {
	if sc.Tenants > 1 {
		return buildMultiTenant(sc)
	}
	p := build.NewProgram("kvcache")
	p.SetNoJumpTables(true)

	wlgen.EmitColdLib(p, "kutil", sc.ColdFuncs, sc.ColdSize)
	ht := wlgen.EmitHashTable(p, "kv", sc.Buckets)
	p.Global("stats_hits", 8)
	p.Global("stats_miss", 8)

	// Protocol decode: a short chain (memcached's command parser is tiny).
	decode := wlgen.EmitChain(p, "proto", wlgen.ChainSpec{
		Steps: 4, ColdPad: 8, HotWork: 5, Sequential: true,
	})

	hGet := p.Func("h_get")
	hGet.Prologue(32)
	hGet.St(isa.FP, -8, isa.R0)
	hGet.MovI(isa.R1, 0)
	hGet.Call(decode)
	hGet.Ld(isa.R0, isa.FP, -8)
	hGet.Call(ht.Get)
	hGet.CmpI(isa.R0, 0)
	hGet.If(isa.EQ, func() {
		hGet.LoadGlobalAddr(isa.R6, "stats_miss")
		hGet.Ld(isa.R7, isa.R6, 0)
		hGet.AddI(isa.R7, isa.R7, 1)
		hGet.St(isa.R6, 0, isa.R7)
	}, func() {
		hGet.LoadGlobalAddr(isa.R6, "stats_hits")
		hGet.Ld(isa.R7, isa.R6, 0)
		hGet.AddI(isa.R7, isa.R7, 1)
		hGet.St(isa.R6, 0, isa.R7)
	})
	hGet.EpilogueRet()

	hSet := p.Func("h_set")
	hSet.Prologue(32)
	hSet.St(isa.FP, -8, isa.R0)
	hSet.St(isa.FP, -16, isa.R1)
	hSet.MovI(isa.R1, 0)
	hSet.Call(decode)
	hSet.Ld(isa.R0, isa.FP, -8)
	hSet.Ld(isa.R1, isa.FP, -16)
	hSet.Call(ht.Put)
	hSet.MovI(isa.R0, 1)
	hSet.EpilogueRet()

	// Dispatch by branch, not v-table: Memcached has no virtual calls.
	m := p.Func("main")
	m.Prologue(32)
	loop := m.Label("serve")
	m.Sys(1) // SysRecv
	m.CmpI(isa.R0, -1)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.CmpI(isa.R0, int64(opGet))
	m.If(isa.EQ, func() {
		m.Mov(isa.R0, isa.R1)
		m.Call("h_get")
	}, func() {
		m.Mov(isa.R0, isa.R1)
		m.Mov(isa.R1, isa.R2)
		m.Call("h_set")
	})
	m.Sys(2) // SysSend
	m.Goto(loop)
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		return nil, err
	}
	return &wl.Workload{
		Name:    "kvcache",
		Binary:  bin,
		Inputs:  Inputs(),
		Threads: 8,
		NewDriver: func(input string, threads int) (*wl.Driver, error) {
			gen, err := generator(input)
			if err != nil {
				return nil, err
			}
			return wl.NewDriver(gen, threads), nil
		},
	}, nil
}

// Inputs lists the memaslap-analog mixes.
func Inputs() []string { return []string{"set10_get90", "set50_get50"} }

func generator(input string) (wl.Generator, error) {
	var setPct int
	switch input {
	case "set10_get90":
		setPct = 10
	case "set50_get50":
		setPct = 50
	default:
		return nil, fmt.Errorf("kvcache: unknown input %q", input)
	}
	return func(tid int, seq uint64) wl.Request {
		r := wl.SplitMix64(uint64(tid)<<40 ^ seq ^ 0xCACE)
		op := uint64(opGet)
		if int(r%100) < setPct {
			op = opSet
		}
		key := ((r >> 8) & 0x3FFF << 1) + 2
		return wl.Request{Op: op, Arg1: key, Arg2: r >> 32}
	}, nil
}
