package kvcache

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/workloads/wl"
	"repro/internal/workloads/wlgen"
)

// MultiTenant sizes a cache image hosting n symmetric tenants, each
// with its own protocol decoder and handlers. The tenants are
// code-identical by construction, so whichever tenant is hot, the
// optimal layout delivers the same throughput — the property the drift
// experiments lean on: after a hot-tenant swap, a re-optimized layout
// should recover the pre-swap optimized throughput, not some
// tenant-specific level.
func MultiTenant(n int) Scale {
	// The open-addressing table livelocks on misses once every slot is
	// taken, so size it for ≤ 12.5% load at the generator's 1024 keys per
	// tenant (the single-tenant build keeps the same headroom).
	buckets := int64(1 << 13)
	for buckets < int64(n)*tenantKeys*8 {
		buckets <<= 1
	}
	return Scale{Buckets: buckets, ColdFuncs: 16, ColdSize: 16, Tenants: n}
}

// tenantKeys is the per-tenant key-space size of TenantGenerator.
const tenantKeys = 1 << 10

// TenantInputs lists the hot-tenant mixes of an n-tenant build: input
// "hotK" concentrates 90% of traffic on tenant K and sprays the rest
// uniformly. Swapping inputs is the phase turn.
func TenantInputs(n int) []string {
	inputs := make([]string, n)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("hot%d", i)
	}
	return inputs
}

// buildMultiTenant assembles the n-tenant image: one shared hash table,
// per-tenant decode chains and get/set handlers, and a serving loop
// that muxes on the tenant id (Arg3) with chained branches — like the
// single-tenant build, no v-tables, so layout is the whole game. Only
// the hot tenant's decoder+handlers stay in the i-cache working set;
// shifting the hot tenant moves the hot text wholesale, which is
// exactly the profile drift the fleet's detector must catch.
func buildMultiTenant(sc Scale) (*wl.Workload, error) {
	p := build.NewProgram("mt-kvcache")
	p.SetNoJumpTables(true)

	wlgen.EmitColdLib(p, "kutil", sc.ColdFuncs, sc.ColdSize)
	ht := wlgen.EmitHashTable(p, "kv", sc.Buckets)
	p.Global("stats_hits", 8)
	p.Global("stats_miss", 8)

	prefixes := make([]string, sc.Tenants)
	for i := range prefixes {
		prefixes[i] = fmt.Sprintf("proto%d", i)
	}
	// Long decode chains with generous cold padding: each tenant's hot
	// path is big enough that only one tenant's text fits the L1i at a
	// time, so serving the wrong tenant on a stale layout measurably
	// hurts — the signal the drift experiments measure.
	chains := wlgen.EmitChains(p, prefixes, wlgen.ChainSpec{
		Steps: 10, ColdPad: 16, HotWork: 6, Sequential: true,
	})

	gets := make([]string, sc.Tenants)
	sets := make([]string, sc.Tenants)
	for i := 0; i < sc.Tenants; i++ {
		gets[i] = fmt.Sprintf("h_get_%d", i)
		hGet := p.Func(gets[i])
		hGet.Prologue(32)
		hGet.St(isa.FP, -8, isa.R0)
		hGet.MovI(isa.R1, 0)
		hGet.Call(chains[i])
		hGet.Ld(isa.R0, isa.FP, -8)
		hGet.Call(ht.Get)
		hGet.CmpI(isa.R0, 0)
		hGet.If(isa.EQ, func() {
			hGet.LoadGlobalAddr(isa.R6, "stats_miss")
			hGet.Ld(isa.R7, isa.R6, 0)
			hGet.AddI(isa.R7, isa.R7, 1)
			hGet.St(isa.R6, 0, isa.R7)
		}, func() {
			hGet.LoadGlobalAddr(isa.R6, "stats_hits")
			hGet.Ld(isa.R7, isa.R6, 0)
			hGet.AddI(isa.R7, isa.R7, 1)
			hGet.St(isa.R6, 0, isa.R7)
		})
		hGet.EpilogueRet()

		sets[i] = fmt.Sprintf("h_set_%d", i)
		hSet := p.Func(sets[i])
		hSet.Prologue(32)
		hSet.St(isa.FP, -8, isa.R0)
		hSet.St(isa.FP, -16, isa.R1)
		hSet.MovI(isa.R1, 0)
		hSet.Call(chains[i])
		hSet.Ld(isa.R0, isa.FP, -8)
		hSet.Ld(isa.R1, isa.FP, -16)
		hSet.Call(ht.Put)
		hSet.MovI(isa.R0, 1)
		hSet.EpilogueRet()
	}

	m := p.Func("main")
	m.Prologue(32)
	loop := m.Label("serve")
	m.Sys(1) // SysRecv → R0 op, R1 key, R2 val, R3 tenant
	m.CmpI(isa.R0, -1)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.CmpI(isa.R0, int64(opGet))
	m.If(isa.EQ, func() {
		emitTenantMux(m, gets)
	}, func() {
		emitTenantMux(m, sets)
	})
	m.Sys(2) // SysSend
	m.Goto(loop)
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		return nil, err
	}
	tenants := sc.Tenants
	return &wl.Workload{
		Name:    "mt-kvcache",
		Binary:  bin,
		Inputs:  TenantInputs(tenants),
		Threads: 8,
		NewDriver: func(input string, threads int) (*wl.Driver, error) {
			gen, err := TenantGenerator(input, tenants)
			if err != nil {
				return nil, err
			}
			return wl.NewDriver(gen, threads), nil
		},
	}, nil
}

// emitTenantMux dispatches to the tenant's handler on R3 via a chain of
// compare-and-branch (no indirect calls). The last tenant is the
// fall-through so every id lands somewhere.
func emitTenantMux(m *build.FuncBuilder, handlers []string) {
	call := func(name string) {
		m.Mov(isa.R0, isa.R1)
		m.Mov(isa.R1, isa.R2)
		m.Call(name)
	}
	var mux func(i int)
	mux = func(i int) {
		if i == len(handlers)-1 {
			call(handlers[i])
			return
		}
		m.CmpI(isa.R3, int64(i))
		m.If(isa.EQ, func() { call(handlers[i]) }, func() { mux(i + 1) })
	}
	mux(0)
}

// TenantGenerator builds the "hotK" request mix for an n-tenant cache:
// 90% of requests hit tenant K, the rest spread uniformly, with the
// usual 10% set / 90% get split and per-tenant key spaces.
func TenantGenerator(input string, tenants int) (wl.Generator, error) {
	var hot int
	if _, err := fmt.Sscanf(input, "hot%d", &hot); err != nil || hot < 0 || hot >= tenants {
		return nil, fmt.Errorf("kvcache: unknown input %q for a %d-tenant cache", input, tenants)
	}
	return func(tid int, seq uint64) wl.Request {
		r := wl.SplitMix64(uint64(tid)<<40 ^ seq ^ 0x7E47)
		tenant := uint64(hot)
		if int(r%100) < 10 {
			tenant = (r / 100) % uint64(tenants)
		}
		op := uint64(opGet)
		if int(r>>16%100) < 10 {
			op = opSet
		}
		key := ((r>>8)&(tenantKeys-1)<<1 + 2) | tenant<<20
		return wl.Request{Op: op, Arg1: key, Arg2: r >> 32, Arg3: tenant}
	}, nil
}
