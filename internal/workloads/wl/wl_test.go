package wl

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/proc"
)

func TestDriverCountsAndLatency(t *testing.T) {
	p := build.NewProgram("echo")
	m := p.Func("main")
	m.Prologue(16)
	loop := m.Label("loop")
	m.Sys(proc.SysRecv)
	m.CmpI(isa.R0, -1)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.Add(isa.R0, isa.R1, isa.R2)
	m.Sys(proc.SysSend)
	m.Goto(loop)
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}

	served := 0
	d := NewDriver(func(tid int, seq uint64) Request {
		if seq >= 100 {
			return Request{Op: NoMoreWork}
		}
		served++
		return Request{Op: 1, Arg1: seq, Arg2: 2 * seq}
	}, 1)
	pr, err := proc.Load(bin, proc.Options{Threads: 1, Handler: d})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if d.Completed() != 100 {
		t.Errorf("completed = %d, want 100", d.Completed())
	}
	if p50 := d.LatencyPercentile(0.5); p50 <= 0 {
		t.Error("no latency recorded")
	}
	if d.LatencyPercentile(1.0) < d.LatencyPercentile(0.0) {
		t.Error("max latency < min latency")
	}
	d.ResetWindow()
	if d.LatencyPercentile(0.5) != 0 {
		t.Error("window not reset")
	}
}

func TestGeneratorSwap(t *testing.T) {
	p := build.NewProgram("echo")
	m := p.Func("main")
	m.Prologue(16)
	loop := m.Label("loop")
	m.Sys(proc.SysRecv)
	m.CmpI(isa.R0, -1)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.Sys(proc.SysSend)
	m.Goto(loop)
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(func(tid int, seq uint64) Request { return Request{Op: 1} }, 1)
	pr, err := proc.Load(bin, proc.Options{Threads: 1, Handler: d})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(5000)
	first := d.Completed()
	if first == 0 {
		t.Fatal("no requests served")
	}
	// Swap to a terminating generator: the server drains and halts.
	d.SetGenerator(func(tid int, seq uint64) Request { return Request{Op: NoMoreWork} })
	if d.Generator() == nil {
		t.Fatal("Generator() returned nil")
	}
	pr.RunUntilHalt(0)
	if !pr.Halted() {
		t.Error("server did not halt after generator swap")
	}
}

func TestUnknownSyscallFaults(t *testing.T) {
	p := build.NewProgram("bad")
	m := p.Func("main")
	m.Prologue(16)
	m.Sys(99)
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(func(int, uint64) Request { return Request{} }, 1)
	pr, err := proc.Load(bin, proc.Options{Threads: 1, Handler: d})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if pr.Fault() == nil {
		t.Error("unknown syscall should fault")
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	if SplitMix64(1) != SplitMix64(1) {
		t.Error("SplitMix64 not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[SplitMix64(i)] = true
	}
	if len(seen) != 1000 {
		t.Errorf("SplitMix64 collisions in first 1000: %d unique", len(seen))
	}
}

func TestMeasureThroughput(t *testing.T) {
	p := build.NewProgram("echo")
	m := p.Func("main")
	m.Prologue(16)
	loop := m.Label("loop")
	m.Sys(proc.SysRecv)
	m.CmpI(isa.R0, -1)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.Sys(proc.SysSend)
	m.Goto(loop)
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(func(int, uint64) Request { return Request{Op: 1} }, 1)
	pr, err := proc.Load(bin, proc.Options{Threads: 1, Handler: d})
	if err != nil {
		t.Fatal(err)
	}
	tput := Measure(pr, d, 0.0003)
	if tput <= 0 {
		t.Errorf("throughput = %f", tput)
	}
	// Deterministic across identical runs.
	d2 := NewDriver(func(int, uint64) Request { return Request{Op: 1} }, 1)
	pr2, _ := proc.Load(bin, proc.Options{Threads: 1, Handler: d2})
	if t2 := Measure(pr2, d2, 0.0003); t2 != tput {
		t.Errorf("non-deterministic throughput: %f vs %f", tput, t2)
	}
	// Zero window yields zero.
	if z := Measure(pr, d, 0); z != 0 {
		t.Errorf("zero window throughput = %f", z)
	}
}

func TestEmittedAndLoad(t *testing.T) {
	p := build.NewProgram("emit")
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R0, 42)
	m.Sys(proc.SysEmit)
	m.MovI(isa.R0, 8)
	m.Sys(proc.SysAlloc)
	m.Sys(proc.SysNow)
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(func(int, uint64) Request { return Request{} }, 1)
	w := &Workload{Name: "emit", Binary: bin, Threads: 1,
		NewDriver: func(string, int) (*Driver, error) { return d, nil }}
	pr, err := w.Load(d, 0) // 0 → workload default thread count
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := d.Emitted(); len(got) != 1 || got[0] != 42 {
		t.Errorf("Emitted = %v", got)
	}
}
