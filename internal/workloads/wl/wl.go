// Package wl holds the infrastructure shared by the benchmark workloads:
// the Workload descriptor the experiment harness consumes and the request
// driver that plays the role of the load generators the paper uses
// (Sysbench for MySQL, YCSB for MongoDB, memaslap for Memcached, the
// RISC-V benchmark inputs for Verilator).
//
// Convention between guest programs and drivers:
//
//	SysRecv — the driver writes a request descriptor into R0..R3
//	          (R0 = operation code; R0 = NoMoreWork means the serving
//	          loop should exit) and records the request start time.
//	SysSend — the guest reports completion of the current request with a
//	          response value in R0; the driver counts it and records the
//	          request latency.
//	SysEmit — the guest publishes a checksum/result value (validation).
//	SysNow/SysAlloc — the usual conveniences.
package wl

import (
	"fmt"
	"sort"

	"repro/internal/obj"
	"repro/internal/proc"
)

// NoMoreWork is returned from SysRecv to stop a batch guest.
const NoMoreWork = ^uint64(0)

// Request is what a generator produces for one SysRecv.
type Request struct {
	Op   uint64 // operation code, workload-specific
	Arg1 uint64
	Arg2 uint64
	Arg3 uint64
}

// Generator produces the request stream for one input mix. It must be
// deterministic for a given sequence number.
type Generator func(tid int, seq uint64) Request

// Driver is the load generator + measurement side of a workload.
type Driver struct {
	gen Generator

	seq       []uint64  // per-thread sequence numbers
	starts    []float64 // per-thread in-flight request start cycles
	completed uint64
	emitted   []uint64
	latencies []float64 // per-request latency in cycles (bounded)
	maxLat    int
}

// NewDriver builds a driver for up to maxThreads threads.
func NewDriver(gen Generator, maxThreads int) *Driver {
	return &Driver{
		gen:    gen,
		seq:    make([]uint64, maxThreads),
		starts: make([]float64, maxThreads),
		maxLat: 1 << 16,
	}
}

// Syscall implements proc.SyscallHandler.
func (d *Driver) Syscall(p *proc.Process, t *proc.Thread, num int64) error {
	switch num {
	case proc.SysRecv:
		req := d.gen(t.ID, d.seq[t.ID])
		d.seq[t.ID]++
		t.Regs[0] = req.Op
		t.Regs[1] = req.Arg1
		t.Regs[2] = req.Arg2
		t.Regs[3] = req.Arg3
		d.starts[t.ID] = t.Core.Cycles()
	case proc.SysSend:
		d.completed++
		if len(d.latencies) < d.maxLat {
			d.latencies = append(d.latencies, t.Core.Cycles()-d.starts[t.ID])
		}
	case proc.SysEmit:
		d.emitted = append(d.emitted, t.Regs[0])
	case proc.SysNow:
		proc.NowSyscall(t)
	case proc.SysAlloc:
		proc.AllocSyscall(p, t)
	default:
		return fmt.Errorf("wl: unknown syscall %d", num)
	}
	return nil
}

// Completed returns the number of finished requests.
func (d *Driver) Completed() uint64 { return d.completed }

// SetGenerator swaps the request generator, modeling an input shift (the
// daily-pattern scenario continuous optimization exists for, §IV-C).
func (d *Driver) SetGenerator(gen Generator) { d.gen = gen }

// Generator returns the driver's request generator (so an input shift can
// borrow another driver's mix).
func (d *Driver) Generator() Generator { return d.gen }

// Emitted returns the values the guest published (checksums).
func (d *Driver) Emitted() []uint64 { return d.emitted }

// ResetWindow clears the latency window (used between measurement phases).
func (d *Driver) ResetWindow() { d.latencies = d.latencies[:0] }

// LatencyPercentile returns the p-th percentile request latency in cycles
// over the current window (0 if empty).
func (d *Driver) LatencyPercentile(p float64) float64 {
	if len(d.latencies) == 0 {
		return 0
	}
	tmp := append([]float64(nil), d.latencies...)
	sort.Float64s(tmp)
	idx := int(p * float64(len(tmp)-1))
	return tmp[idx]
}

// Workload packages a benchmark program with its input mixes.
type Workload struct {
	Name   string
	Binary *obj.Binary
	// Inputs lists the input names (sysbench/YCSB mixes, stimulus sets).
	Inputs []string
	// Threads is the default thread count the paper-style runs use.
	Threads int
	// NewDriver builds the load generator for an input mix.
	NewDriver func(input string, threads int) (*Driver, error)
}

// Load starts a process for the workload with the given driver.
func (w *Workload) Load(d *Driver, threads int) (*proc.Process, error) {
	if threads <= 0 {
		threads = w.Threads
	}
	return proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
}

// Measure runs the process for the given simulated duration and returns
// throughput in requests per simulated second over that window.
func Measure(p *proc.Process, d *Driver, seconds float64) float64 {
	before := d.Completed()
	t0 := p.Seconds()
	p.RunFor(seconds)
	dt := p.Seconds() - t0
	if dt <= 0 {
		return 0
	}
	return float64(d.Completed()-before) / dt
}

// WindowStats summarizes one measurement window: throughput plus the
// request-latency distribution the fleet layer publishes as telemetry.
type WindowStats struct {
	Seconds    float64 // simulated window length actually covered
	Requests   uint64  // requests completed in the window
	Throughput float64 // requests per simulated second
	P50        float64 // median request latency, cycles
	P95        float64 // tail request latency, cycles
	P99        float64 // far-tail request latency, cycles
}

// MeasureStats runs the process for the given simulated duration and
// returns the window's throughput and latency percentiles. The latency
// window is reset first so percentiles cover exactly this window.
func MeasureStats(p *proc.Process, d *Driver, seconds float64) WindowStats {
	d.ResetWindow()
	before := d.Completed()
	t0 := p.Seconds()
	p.RunFor(seconds)
	ws := WindowStats{
		Seconds:  p.Seconds() - t0,
		Requests: d.Completed() - before,
		P50:      d.LatencyPercentile(0.50),
		P95:      d.LatencyPercentile(0.95),
		P99:      d.LatencyPercentile(0.99),
	}
	if ws.Seconds > 0 {
		ws.Throughput = float64(ws.Requests) / ws.Seconds
	}
	return ws
}

// SplitMix64 is the deterministic PRNG used by request generators.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
