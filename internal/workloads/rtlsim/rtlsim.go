// Package rtlsim is the Verilator-analog workload: a cycle-driven RTL
// simulator for a synthetic circuit. Each module becomes one generated
// eval function full of stimulus-dependent biased branches, and one
// simulated circuit cycle sweeps every module — a single-threaded
// instruction stream whose footprint far exceeds the L1i, the regime
// where the paper measures its largest speedup (2.20×).
//
// Inputs name the RISC-V benchmark stimuli of the paper: dhrystone,
// median, vvadd. Each selects a different stimulus pattern, activating
// different branch sides in the eval functions (the input sensitivity of
// Figure 5).
package rtlsim

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/workloads/wl"
	"repro/internal/workloads/wlgen"
)

// Scale configures the generated circuit.
type Scale struct {
	Modules    int // eval functions
	Branches   int // stimulus-dependent branches per module
	ColdFuncs  int // debug/tracing code, never executed
	ColdSize   int
	StateWords int64
}

// Full is the evaluation scale (~0.5 MiB of eval code).
func Full() Scale {
	return Scale{Modules: 100, Branches: 7, ColdFuncs: 120, ColdSize: 50, StateWords: 1 << 12}
}

// Small keeps tests fast.
func Small() Scale {
	return Scale{Modules: 16, Branches: 4, ColdFuncs: 8, ColdSize: 16, StateWords: 1 << 8}
}

// stimSlot is the state word holding the current stimulus.
const stimSlot = 0

// Build assembles the workload.
func Build(sc Scale) (*wl.Workload, error) {
	p := build.NewProgram("rtlsim")
	p.SetNoJumpTables(true)
	p.Global("state", uint64(sc.StateWords)*8)
	cold := wlgen.EmitColdLib(p, "vtrace", sc.ColdFuncs, sc.ColdSize)

	// Module eval functions, interleaved with cold tracing helpers the
	// way Verilated output interleaves eval and debug code.
	evalNames := make([]string, sc.Modules)
	for i := range evalNames {
		evalNames[i] = fmt.Sprintf("eval_%03d", i)
		f := p.Func(evalNames[i])
		f.Prologue(16)
		f.LoadGlobalAddr(isa.R6, "state")
		slot := int64(1 + i%int(sc.StateWords-2))
		f.Ld(isa.R7, isa.R6, slot*8)     // module state
		f.Ld(isa.R8, isa.R6, stimSlot*8) // stimulus word
		for b := 0; b < sc.Branches; b++ {
			bit := uint((i*sc.Branches + b) % 60)
			f.ShrI(isa.R9, isa.R8, int64(bit))
			f.AndI(isa.R9, isa.R9, 1)
			f.CmpI(isa.R9, 0)
			// Both branch sides are real logic; which one is hot depends
			// entirely on the stimulus, so only a profile can know.
			f.If(isa.EQ, func() {
				f.MulI(isa.R7, isa.R7, int64(2*b+3))
				f.AddI(isa.R7, isa.R7, int64(i+b))
			}, func() {
				f.XorI(isa.R7, isa.R7, int64(i*131+b))
				f.ShrI(isa.R10, isa.R7, 3)
				f.Add(isa.R7, isa.R7, isa.R10)
				f.AddI(isa.R7, isa.R7, 7)
				f.PadCode(2)
			})
		}
		f.St(isa.R6, slot*8, isa.R7)
		f.Mov(isa.R0, isa.R7)
		f.EpilogueRet()
		// Interleave a cold helper after every few modules.
		if i%3 == 2 {
			name := fmt.Sprintf("vdbg_%03d", i)
			g := p.Func(name)
			g.Prologue(16)
			g.PadCode(30)
			g.Call(cold[i%len(cold)])
			g.EpilogueRet()
		}
	}

	// cycle_eval: one circuit cycle = sweep all modules in *schedule*
	// order, folding a checksum. The netlist schedule (data dependencies
	// between modules) has nothing to do with the order the code
	// generator emitted the eval functions in, so the original layout
	// jumps all over the text section — exactly Verilator's pathology
	// that gives BOLT its largest win in the paper.
	schedule := make([]int, len(evalNames))
	for i := range schedule {
		schedule[i] = i
	}
	lcg := uint64(0x9E3779B97F4A7C15)
	for i := len(schedule) - 1; i > 0; i-- {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		j := int(lcg>>33) % (i + 1)
		schedule[i], schedule[j] = schedule[j], schedule[i]
	}
	ce := p.Func("cycle_eval")
	ce.Prologue(32)
	ce.MovI(isa.R11, 0)
	ce.St(isa.FP, -8, isa.R11)
	for _, mi := range schedule {
		n := evalNames[mi]
		ce.Call(n)
		ce.Ld(isa.R11, isa.FP, -8)
		ce.Add(isa.R11, isa.R11, isa.R0)
		ce.St(isa.FP, -8, isa.R11)
	}
	ce.Ld(isa.R0, isa.FP, -8)
	ce.EpilogueRet()

	// main: request = simulate one circuit cycle with the given stimulus.
	m := p.Func("main")
	m.Prologue(32)
	loop := m.Label("tick")
	m.Sys(1) // SysRecv: R0 op (unused), R1 stimulus
	m.CmpI(isa.R0, -1)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.LoadGlobalAddr(isa.R6, "state")
	m.St(isa.R6, stimSlot*8, isa.R1)
	m.Call("cycle_eval")
	m.Sys(2) // SysSend with the cycle checksum
	m.Goto(loop)
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		return nil, err
	}
	return &wl.Workload{
		Name:    "rtlsim",
		Binary:  bin,
		Inputs:  Inputs(),
		Threads: 1, // Verilator is single-threaded (§VI-A)
		NewDriver: func(input string, threads int) (*wl.Driver, error) {
			gen, err := generator(input)
			if err != nil {
				return nil, err
			}
			return wl.NewDriver(gen, threads), nil
		},
	}, nil
}

// Inputs lists the stimulus sets (RISC-V benchmark analogs).
func Inputs() []string { return []string{"dhrystone", "median", "vvadd"} }

func generator(input string) (wl.Generator, error) {
	var base uint64
	switch input {
	case "dhrystone":
		base = 0x0000_0000_0000_FFFF
	case "median":
		base = 0xFFFF_0000_FF00_00FF
	case "vvadd":
		base = 0x5A5A_C33C_0F0F_9696
	default:
		return nil, fmt.Errorf("rtlsim: unknown input %q", input)
	}
	return func(tid int, seq uint64) wl.Request {
		// Mostly stable stimulus with occasional flips, like a program
		// phase in the simulated core.
		stim := base
		if seq%64 == 63 {
			stim ^= wl.SplitMix64(seq) & 0xFF
		}
		return wl.Request{Op: 0, Arg1: stim}
	}, nil
}
