package rtlsim

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/workloads/wl"
)

func TestBuildAndTick(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Binary.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, input := range Inputs() {
		d, err := w.NewDriver(input, 1)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := w.Load(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		tput := wl.Measure(pr, d, 0.0005)
		if err := pr.Fault(); err != nil {
			t.Fatalf("%s: %v", input, err)
		}
		if tput == 0 {
			t.Errorf("%s: zero cycle throughput", input)
		}
	}
	if _, err := w.NewDriver("bogus", 1); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestDeterministicChecksums(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	run := func() uint64 {
		d, _ := w.NewDriver("dhrystone", 1)
		pr, err := w.Load(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		pr.RunFor(0.0003)
		return d.Completed()
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Errorf("non-deterministic ticks: %d vs %d", a, b)
	}
}

// TestFullScaleFrontEndBound: the eval sweep must thrash the front end —
// the precondition for the paper's 2.2× Verilator speedup.
func TestFullScaleFrontEndBound(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation-scale run in -short mode")
	}
	w, err := Build(Full())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := w.NewDriver("dhrystone", 1)
	pr, err := w.Load(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.002)
	td := perf.MeasureTopDown(pr, 0.003).TopDown()
	t.Logf("rtlsim dhrystone TopDown: %v", td)
	if td.FrontEnd < 0.35 {
		t.Errorf("front-end share %.1f%% too low for the Verilator analog", td.FrontEnd*100)
	}
}
