// Package docdb is the MongoDB-analog workload: a document store with a
// BSON-style decode pipeline, collection dispatch through v-tables, and a
// document heap far larger than the last-level cache so that scan-heavy
// mixes are memory-bandwidth bound — the regime behind the paper's
// MongoDB scan95_insert5 anomaly (§VI-B), where code layout optimization
// cannot help and the BOLT-based configurations stop winning.
//
// Input mixes follow the paper's YCSB-style naming: read95_insert5,
// read_update (50/50), scan95_insert5.
package docdb

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/workloads/wl"
	"repro/internal/workloads/wlgen"
)

// Operation codes.
const (
	opRead = iota
	opUpdate
	opInsert
	opScan
	numOps
)

var opNames = []string{"read", "update", "insert", "scan"}

// Scale configures code and data sizes.
type Scale struct {
	DecodeSteps int
	DecodePad   int
	DecodeWork  int
	ColdFuncs   int
	ColdSize    int
	Buckets     int64
	DocWords    int64 // document heap size in words; Full exceeds the LLC
	ScanLen     int64
	Preload     int64
}

// Full is the evaluation scale.
func Full() Scale {
	return Scale{DecodeSteps: 28, DecodePad: 40, DecodeWork: 12,
		ColdFuncs: 320, ColdSize: 60, Buckets: 1 << 16,
		DocWords: 1 << 22, // 32 MiB, beyond the 20 MiB L3
		ScanLen:  2048, Preload: 8192}
}

// Small keeps tests fast.
func Small() Scale {
	return Scale{DecodeSteps: 6, DecodePad: 10, DecodeWork: 4,
		ColdFuncs: 16, ColdSize: 16, Buckets: 1 << 12,
		DocWords: 1 << 14, ScanLen: 64, Preload: 256}
}

// Build assembles the workload.
func Build(sc Scale) (*wl.Workload, error) {
	p := build.NewProgram("docdb")
	p.SetNoJumpTables(true)

	cold := wlgen.EmitColdLib(p, "mutil", sc.ColdFuncs, sc.ColdSize)
	idx := wlgen.EmitHashTable(p, "didx", sc.Buckets)
	p.Global("docs", uint64(sc.DocWords)*8)
	p.Global("oplog", 1<<14)
	p.Global("oplogpos", 8)

	prefixes := make([]string, numOps)
	for i, n := range opNames {
		prefixes[i] = "bson_" + n
	}
	decodeEntries := wlgen.EmitChains(p, prefixes, wlgen.ChainSpec{
		Steps:      sc.DecodeSteps,
		ColdPad:    sc.DecodePad,
		HotWork:    sc.DecodeWork,
		CallCold:   cold[0],
		Sequential: true,
	})

	// The memory-bound collection scan.
	wlgen.EmitScan(p, "doc_scan", "docs", sc.DocWords, 8)

	// Document field access: 8 strided loads within one document.
	docRead := p.Func("doc_read") // R0 docid → R0 folded fields
	docRead.Prologue(16)
	docRead.LoadGlobalAddr(isa.R6, "docs")
	docRead.AndI(isa.R7, isa.R0, sc.DocWords-8)
	docRead.ShlI(isa.R7, isa.R7, 3)
	docRead.Add(isa.R6, isa.R6, isa.R7)
	docRead.MovI(isa.R9, 0)
	for i := int64(0); i < 8; i++ {
		docRead.Ld(isa.R8, isa.R6, i*8)
		docRead.Add(isa.R9, isa.R9, isa.R8)
	}
	docRead.Mov(isa.R0, isa.R9)
	docRead.EpilogueRet()

	docWrite := p.Func("doc_write") // R0 docid, R1 value
	docWrite.Prologue(16)
	docWrite.LoadGlobalAddr(isa.R6, "docs")
	docWrite.AndI(isa.R7, isa.R0, sc.DocWords-8)
	docWrite.ShlI(isa.R7, isa.R7, 3)
	docWrite.Add(isa.R6, isa.R6, isa.R7)
	for i := int64(0); i < 4; i++ {
		docWrite.St(isa.R6, i*8, isa.R1)
	}
	docWrite.EpilogueRet()

	oplog := p.Func("oplog_append")
	oplog.Prologue(16)
	oplog.LoadGlobalAddr(isa.R6, "oplogpos")
	oplog.Ld(isa.R7, isa.R6, 0)
	oplog.LoadGlobalAddr(isa.R8, "oplog")
	oplog.AndI(isa.R9, isa.R7, (1<<14)/8-1)
	oplog.ShlI(isa.R9, isa.R9, 3)
	oplog.Add(isa.R8, isa.R8, isa.R9)
	oplog.St(isa.R8, 0, isa.R0)
	oplog.AddI(isa.R7, isa.R7, 1)
	oplog.St(isa.R6, 0, isa.R7)
	oplog.EpilogueRet()

	// Collection methods behind a v-table: 0 find, 1 upsert, 2 insert,
	// 3 scan.
	p.Global("coll_obj", 8)
	cFind := p.Func("c_find") // R0 key → R0 doc fold
	cFind.Prologue(32)
	cFind.Call(idx.Get)
	cFind.Call("doc_read")
	cFind.EpilogueRet()
	cUpsert := p.Func("c_upsert") // R0 key, R1 val
	cUpsert.Prologue(32)
	cUpsert.St(isa.FP, -8, isa.R0)
	cUpsert.St(isa.FP, -16, isa.R1)
	cUpsert.Call(idx.Get)
	cUpsert.Mov(isa.R1, isa.R0) // docid (0 for miss: slot 0 is a scratch doc)
	cUpsert.Ld(isa.R0, isa.FP, -8)
	cUpsert.Mov(isa.R0, isa.R1)
	cUpsert.Ld(isa.R1, isa.FP, -16)
	cUpsert.Call("doc_write")
	cUpsert.Ld(isa.R0, isa.FP, -8)
	cUpsert.Call("oplog_append")
	cUpsert.EpilogueRet()
	cInsert := p.Func("c_insert") // R0 key, R1 docid
	cInsert.Prologue(32)
	cInsert.St(isa.FP, -8, isa.R1)
	cInsert.Call(idx.Put)
	cInsert.Ld(isa.R0, isa.FP, -8)
	cInsert.MovI(isa.R1, 0xBEEF)
	cInsert.Call("doc_write")
	cInsert.Ld(isa.R0, isa.FP, -8)
	cInsert.Call("oplog_append")
	cInsert.EpilogueRet()
	cScan := p.Func("c_scan") // R0 start, R1 len → R0 sum
	cScan.Prologue(16)
	cScan.Call("doc_scan")
	cScan.EpilogueRet()
	p.VTable("coll_vt", "c_find", "c_upsert", "c_insert", "c_scan")

	// Handlers.
	emitHandler := func(op int, body func(h *build.FuncBuilder)) {
		h := p.Func("h_" + opNames[op])
		h.Prologue(48)
		h.St(isa.FP, -8, isa.R0)
		h.St(isa.FP, -16, isa.R1)
		h.St(isa.FP, -24, isa.R2)
		h.MovI(isa.R1, 0)
		h.Call(decodeEntries[op])
		body(h)
		h.EpilogueRet()
	}
	vcall := func(h *build.FuncBuilder, slot int64) {
		h.LoadGlobalAddr(isa.R6, "coll_obj")
		h.VCall(isa.R6, isa.R7, slot)
	}
	emitHandler(opRead, func(h *build.FuncBuilder) {
		h.Ld(isa.R0, isa.FP, -8)
		vcall(h, 0)
	})
	emitHandler(opUpdate, func(h *build.FuncBuilder) {
		h.Ld(isa.R0, isa.FP, -8)
		h.Ld(isa.R1, isa.FP, -16)
		vcall(h, 1)
	})
	emitHandler(opInsert, func(h *build.FuncBuilder) {
		h.Ld(isa.R0, isa.FP, -8)
		h.Ld(isa.R1, isa.FP, -16)
		vcall(h, 2)
	})
	emitHandler(opScan, func(h *build.FuncBuilder) {
		h.Ld(isa.R0, isa.FP, -8)
		h.MovI(isa.R1, sc.ScanLen)
		vcall(h, 3)
	})
	handlerNames := make([]string, numOps)
	for i, n := range opNames {
		handlerNames[i] = "h_" + n
	}
	p.VTable("handlers_vt", handlerNames...)

	// init + main with the usual ready-flag gate.
	p.Global("ready_flag", 8)
	ini := p.Func("db_init")
	ini.Prologue(32)
	ini.LoadGlobalAddr(isa.R6, "coll_vt")
	ini.LoadGlobalAddr(isa.R7, "coll_obj")
	ini.St(isa.R7, 0, isa.R6)
	ini.MovI(isa.R9, 0)
	ini.While(func() { ini.CmpI(isa.R9, sc.Preload) }, isa.LT, func() {
		ini.ShlI(isa.R0, isa.R9, 1)
		ini.AddI(isa.R0, isa.R0, 2)
		ini.MulI(isa.R1, isa.R9, 2654435761)
		ini.St(isa.FP, -8, isa.R9)
		ini.Call(idx.Put)
		ini.Ld(isa.R9, isa.FP, -8)
		ini.AddI(isa.R9, isa.R9, 1)
	})
	ini.EpilogueRet()

	m := p.Func("main")
	m.Prologue(32)
	m.CmpI(isa.R0, 0)
	m.If(isa.EQ, func() {
		m.Call("db_init")
		m.LoadGlobalAddr(isa.R6, "ready_flag")
		m.MovI(isa.R7, 1)
		m.St(isa.R6, 0, isa.R7)
	}, func() {
		m.LoadGlobalAddr(isa.R6, "ready_flag")
		spin := m.Label("wait")
		m.Ld(isa.R7, isa.R6, 0)
		m.CmpI(isa.R7, 1)
		m.If(isa.NE, func() { m.Goto(spin) }, nil)
	})
	m.Call("serve_loop")
	m.Halt()
	wlgen.EmitServerMain(p, "serve_loop", "handlers_vt", numOps)
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		return nil, err
	}
	return &wl.Workload{
		Name:    "docdb",
		Binary:  bin,
		Inputs:  Inputs(),
		Threads: 8,
		NewDriver: func(input string, threads int) (*wl.Driver, error) {
			gen, err := generator(input, sc)
			if err != nil {
				return nil, err
			}
			return wl.NewDriver(gen, threads), nil
		},
	}, nil
}

// Inputs lists the YCSB-analog mixes.
func Inputs() []string {
	return []string{"read95_insert5", "read_update", "scan95_insert5"}
}

func generator(input string, sc Scale) (wl.Generator, error) {
	type slice struct {
		pct int
		op  uint64
	}
	var mix []slice
	switch input {
	case "read95_insert5":
		mix = []slice{{95, opRead}, {5, opInsert}}
	case "read_update":
		mix = []slice{{50, opRead}, {50, opUpdate}}
	case "scan95_insert5":
		mix = []slice{{95, opScan}, {5, opInsert}}
	default:
		return nil, fmt.Errorf("docdb: unknown input %q", input)
	}
	keyMask := uint64(sc.Preload - 1)
	scanMask := uint64(sc.DocWords - 1)
	return func(tid int, seq uint64) wl.Request {
		r := wl.SplitMix64(uint64(tid)<<40 ^ seq ^ 0xD0C)
		roll := int(r % 100)
		op := mix[len(mix)-1].op
		acc := 0
		for _, s := range mix {
			acc += s.pct
			if roll < acc {
				op = s.op
				break
			}
		}
		arg1 := ((r >> 8) & keyMask << 1) + 2
		if op == opScan {
			arg1 = (r >> 8) & scanMask
		}
		return wl.Request{Op: op, Arg1: arg1, Arg2: r >> 32 & 0xFFFF, Arg3: 0}
	}, nil
}
