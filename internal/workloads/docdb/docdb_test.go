package docdb

import (
	"testing"

	"repro/internal/perf"
)

func TestBuildAndServe(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Binary.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, input := range Inputs() {
		d, err := w.NewDriver(input, 2)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := w.Load(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		pr.RunFor(0.0005)
		if err := pr.Fault(); err != nil {
			t.Fatalf("%s: %v", input, err)
		}
		if d.Completed() == 0 {
			t.Errorf("%s: no requests completed", input)
		}
	}
	if _, err := w.NewDriver("bogus", 1); err == nil {
		t.Error("unknown input accepted")
	}
}

// TestScanMixIsBackEndBound verifies the precondition for the paper's
// scan95_insert5 anomaly: the scan-heavy mix is memory bound, not
// front-end bound, so layout optimization has nothing to attack.
func TestScanMixIsBackEndBound(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation-scale run in -short mode")
	}
	w, err := Build(Full())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := w.NewDriver("scan95_insert5", 4)
	pr, err := w.Load(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.002)
	td := perf.MeasureTopDown(pr, 0.003).TopDown()
	t.Logf("docdb scan95_insert5 TopDown: %v", td)
	if td.BackEnd < 0.5 {
		t.Errorf("back-end share %.1f%% too low for the scan anomaly", td.BackEnd*100)
	}
	if td.FrontEnd > 0.25 {
		t.Errorf("front-end share %.1f%% too high for a scan mix", td.FrontEnd*100)
	}

	// The read-heavy mix, by contrast, is front-end heavy.
	d2, _ := w.NewDriver("read95_insert5", 4)
	pr2, err := w.Load(d2, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr2.RunFor(0.002)
	td2 := perf.MeasureTopDown(pr2, 0.003).TopDown()
	t.Logf("docdb read95_insert5 TopDown: %v", td2)
	if td2.FrontEnd < 0.2 {
		t.Errorf("read mix front-end share %.1f%% too low", td2.FrontEnd*100)
	}
}
