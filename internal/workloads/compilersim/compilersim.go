// Package compilersim is the Clang-analog batch workload for BAM (§V-A,
// Figure 10): a compiler binary that is invoked once per translation unit
// in a parallel build. Each invocation lexes a pseudo-random token stream
// (generated in guest code from the TU's seed), dispatches per-token into
// recursive-descent-style grammar functions, and "emits code" into an
// output buffer, publishing a checksum for validation.
package compilersim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/workloads/wl"
	"repro/internal/workloads/wlgen"
)

// tokenTypes is the number of token kinds the front end dispatches on;
// each TU only produces tokenWindow consecutive kinds (seed-dependent).
const (
	tokenTypes  = 12
	tokenWindow = 8
)

// Scale configures the compiler's code size.
type Scale struct {
	GrammarSteps int // grammar functions per token type
	GrammarPad   int
	GrammarWork  int
	ColdFuncs    int
	ColdSize     int
}

// Full is the evaluation scale.
func Full() Scale {
	return Scale{GrammarSteps: 14, GrammarPad: 44, GrammarWork: 12, ColdFuncs: 200, ColdSize: 55}
}

// Small keeps tests fast.
func Small() Scale {
	return Scale{GrammarSteps: 3, GrammarPad: 8, GrammarWork: 4, ColdFuncs: 12, ColdSize: 14}
}

// Build assembles the compiler binary.
func Build(sc Scale) (*wl.Workload, error) {
	p := build.NewProgram("compilersim")
	p.SetNoJumpTables(true)
	cold := wlgen.EmitColdLib(p, "diag", sc.ColdFuncs, sc.ColdSize)
	p.Global("outbuf", 1<<14)
	p.Global("outpos", 8)

	// Grammar pipelines, one per token type, interleaved in layout.
	prefixes := make([]string, tokenTypes)
	for i := range prefixes {
		prefixes[i] = fmt.Sprintf("gram_t%02d", i)
	}
	gramEntries := wlgen.EmitChains(p, prefixes, wlgen.ChainSpec{
		Steps:      sc.GrammarSteps,
		ColdPad:    sc.GrammarPad,
		HotWork:    sc.GrammarWork,
		CallCold:   cold[0],
		Sequential: true,
	})

	// Code emitters per token type: append a word to the output buffer.
	emitNames := make([]string, tokenTypes)
	for i := range emitNames {
		emitNames[i] = fmt.Sprintf("emit_t%02d", i)
		f := p.Func(emitNames[i])
		f.Prologue(16)
		f.LoadGlobalAddr(isa.R6, "outpos")
		f.Ld(isa.R7, isa.R6, 0)
		f.LoadGlobalAddr(isa.R8, "outbuf")
		f.AndI(isa.R9, isa.R7, (1<<14)/8-1)
		f.ShlI(isa.R9, isa.R9, 3)
		f.Add(isa.R8, isa.R8, isa.R9)
		f.XorI(isa.R0, isa.R0, int64(i*7919))
		f.St(isa.R8, 0, isa.R0)
		f.AddI(isa.R7, isa.R7, 1)
		f.St(isa.R6, 0, isa.R7)
		f.EpilogueRet()
	}

	// Per-token front-end handlers: grammar then emission.
	tokNames := make([]string, tokenTypes)
	for i := range tokNames {
		tokNames[i] = fmt.Sprintf("tok_t%02d", i)
		f := p.Func(tokNames[i])
		f.Prologue(32)
		f.St(isa.FP, -8, isa.R0)
		f.MovI(isa.R1, 0)
		f.Call(gramEntries[i])
		f.Ld(isa.R0, isa.FP, -8)
		f.Call(emitNames[i])
		f.EpilogueRet()
	}

	// compile_tu(R0 seed, R1 ntokens) → R0 checksum.
	// Token stream: LCG in R10; token type = high bits mod tokenTypes via
	// a compare chain (-fno-jump-tables lowering).
	ct := p.Func("compile_tu")
	ct.Prologue(48)
	ct.St(isa.FP, -8, isa.R0)  // lcg state
	ct.St(isa.FP, -16, isa.R1) // remaining tokens
	ct.MovI(isa.R9, 0)
	ct.St(isa.FP, -24, isa.R9) // checksum
	// Each TU exercises a seed-dependent window of the token-type space
	// (different source files stress different language constructs), so
	// profiles from more TUs cover more of the front end — the marginal
	// utility Figure 10's ideal curve measures.
	ct.MovI(isa.R12, tokenTypes)
	ct.Mod(isa.R11, isa.R0, isa.R12)
	ct.St(isa.FP, -32, isa.R11) // token-window base
	ct.While(func() {
		ct.Ld(isa.R9, isa.FP, -16)
		ct.CmpI(isa.R9, 0)
	}, isa.GT, func() {
		// lcg: state = state*6364136223846793005 + 1442695040888963407
		ct.Ld(isa.R10, isa.FP, -8)
		ct.MulI(isa.R10, isa.R10, -3372029247567499371) // 6364136223846793005 as int64
		ct.AddI(isa.R10, isa.R10, 1442695040888963407)
		ct.St(isa.FP, -8, isa.R10)
		ct.ShrI(isa.R11, isa.R10, 33)
		ct.MovI(isa.R12, tokenWindow)
		ct.Mod(isa.R11, isa.R11, isa.R12)
		ct.Ld(isa.R12, isa.FP, -32) // + per-TU window base
		ct.Add(isa.R11, isa.R11, isa.R12)
		ct.MovI(isa.R12, tokenTypes)
		ct.Mod(isa.R11, isa.R11, isa.R12) // token type
		ct.Mov(isa.R0, isa.R10)
		// Dispatch (compare chain over token types).
		cases := make([]func(), tokenTypes)
		for i := range cases {
			name := tokNames[i]
			cases[i] = func() { ct.Call(name) }
		}
		ct.Switch(isa.R11, cases, func() { ct.Call(cold[1]) })
		// Fold into the checksum.
		ct.Ld(isa.R9, isa.FP, -24)
		ct.Add(isa.R9, isa.R9, isa.R0)
		ct.St(isa.FP, -24, isa.R9)
		ct.Ld(isa.R9, isa.FP, -16)
		ct.AddI(isa.R9, isa.R9, -1)
		ct.St(isa.FP, -16, isa.R9)
	})
	ct.Ld(isa.R0, isa.FP, -24)
	ct.EpilogueRet()

	// main: each request is one TU (op 0); NoMoreWork halts the process.
	m := p.Func("main")
	m.Prologue(32)
	loop := m.Label("tu")
	m.Sys(1) // SysRecv: R1 seed, R2 ntokens
	m.CmpI(isa.R0, -1)
	m.If(isa.EQ, func() { m.Halt() }, nil)
	m.Mov(isa.R0, isa.R1)
	m.Mov(isa.R1, isa.R2)
	m.Call("compile_tu")
	m.Sys(5) // SysEmit checksum
	m.Sys(2) // SysSend
	m.Goto(loop)
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		return nil, err
	}
	return &wl.Workload{
		Name:    "compilersim",
		Binary:  bin,
		Inputs:  []string{"tu:0"},
		Threads: 1,
		NewDriver: func(input string, threads int) (*wl.Driver, error) {
			gen, err := generator(input)
			if err != nil {
				return nil, err
			}
			return wl.NewDriver(gen, threads), nil
		},
	}, nil
}

// TUTokens is the default translation-unit size in tokens.
const TUTokens = 2500

// generator serves exactly one TU then reports no more work, like a
// compiler process that compiles its file and exits. The input selects
// the TU: "tu:<n>".
func generator(input string) (wl.Generator, error) {
	if !strings.HasPrefix(input, "tu:") {
		return nil, fmt.Errorf("compilersim: input must be tu:<n>, got %q", input)
	}
	n, err := strconv.Atoi(input[3:])
	if err != nil {
		return nil, fmt.Errorf("compilersim: bad TU index in %q", input)
	}
	return func(tid int, seq uint64) wl.Request {
		if seq > 0 {
			return wl.Request{Op: wl.NoMoreWork}
		}
		seed := wl.SplitMix64(uint64(n)*0x9E37 + 12345)
		return wl.Request{Op: 0, Arg1: seed | 1, Arg2: TUTokens}
	}, nil
}
