package compilersim

import (
	"testing"

	"repro/internal/proc"
)

func TestCompileOneTU(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Binary.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := w.NewDriver("tu:7", 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := w.Load(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if !pr.Halted() {
		t.Fatal("compiler process did not exit after its TU")
	}
	if d.Completed() != 1 {
		t.Errorf("completed %d TUs, want 1", d.Completed())
	}
	if len(d.Emitted()) != 1 || d.Emitted()[0] == 0 {
		t.Errorf("checksum missing: %v", d.Emitted())
	}
}

func TestChecksumsDifferByTU(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	sum := func(tu string) uint64 {
		d, err := w.NewDriver(tu, 1)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := proc.Load(w.Binary, proc.Options{Threads: 1, Handler: d})
		if err != nil {
			t.Fatal(err)
		}
		pr.RunUntilHalt(0)
		if err := pr.Fault(); err != nil {
			t.Fatal(err)
		}
		return d.Emitted()[0]
	}
	a1, a2, b := sum("tu:1"), sum("tu:1"), sum("tu:2")
	if a1 != a2 {
		t.Error("same TU produced different checksums")
	}
	if a1 == b {
		t.Error("different TUs produced identical checksums")
	}
}

func TestBadInputRejected(t *testing.T) {
	w, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"x", "tu:", "tu:abc"} {
		if _, err := w.NewDriver(in, 1); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
