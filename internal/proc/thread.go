package proc

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Thread is one simulated thread. Each thread runs on its own core (the
// evaluation machine has more hardware contexts than any workload uses
// threads, so pinning is a faithful simplification).
type Thread struct {
	ID     int
	PC     uint64
	Regs   [isa.NumRegs]uint64
	CmpVal int64 // flags: last CMP/CMPI difference
	Halted bool

	Core    *cpu.Core
	StackLo uint64
	StackHi uint64

	proc *Process

	// Trace-resume state: set when a quantum runs dry mid-superblock so
	// the next quantum re-enters the trace at the exact op instead of
	// re-dispatching through the block map. Consumed (and re-validated)
	// by runQuantum.
	resumeSB  *superblock
	resumeIdx int
}

// Reg reads a register (RZ reads zero).
func (t *Thread) Reg(i uint8) uint64 {
	// No RZ branch: Regs[RZ] starts at zero and every write goes through
	// SetReg, which discards RZ stores — so the slot holds zero forever
	// and a plain read is correct on the hottest path in the simulator.
	// The mask is a no-op (decode rejects register numbers >= NumRegs)
	// that elides the bounds check.
	return t.Regs[i&(isa.NumRegs-1)]
}

// SetReg writes a register (writes to RZ are discarded).
func (t *Thread) SetReg(i uint8, v uint64) {
	if i != isa.RZ {
		t.Regs[i&(isa.NumRegs-1)] = v // no-op mask; see Reg
	}
}

// Mem gives syscall handlers access to process memory.
func (t *Thread) Mem() *memAccess { return &memAccess{t.proc} }

// memAccess is a narrow facade over the address space for handlers; the
// methods mirror mem.AddressSpace.
type memAccess struct{ p *Process }

func (m *memAccess) ReadWord(addr uint64) uint64     { return m.p.Mem.ReadWord(addr) }
func (m *memAccess) WriteWord(addr uint64, v uint64) { m.p.Mem.WriteWord(addr, v) }
func (m *memAccess) Read(addr uint64, b []byte)      { m.p.Mem.Read(addr, b) }
func (m *memAccess) Write(addr uint64, b []byte)     { m.p.Mem.Write(addr, b) }

// String summarizes the thread state.
func (t *Thread) String() string {
	return fmt.Sprintf("thread %d: PC=%#x SP=%#x halted=%v", t.ID, t.PC, t.Regs[isa.SP], t.Halted)
}
