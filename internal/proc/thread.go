package proc

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Thread is one simulated thread. Each thread runs on its own core (the
// evaluation machine has more hardware contexts than any workload uses
// threads, so pinning is a faithful simplification).
type Thread struct {
	ID     int
	PC     uint64
	Regs   [isa.NumRegs]uint64
	CmpVal int64 // flags: last CMP/CMPI difference
	Halted bool

	Core    *cpu.Core
	StackLo uint64
	StackHi uint64

	proc *Process
}

// Reg reads a register (RZ reads zero).
func (t *Thread) Reg(i uint8) uint64 {
	if i == isa.RZ {
		return 0
	}
	return t.Regs[i]
}

// SetReg writes a register (writes to RZ are discarded).
func (t *Thread) SetReg(i uint8, v uint64) {
	if i != isa.RZ {
		t.Regs[i] = v
	}
}

// Mem gives syscall handlers access to process memory.
func (t *Thread) Mem() *memAccess { return &memAccess{t.proc} }

// memAccess is a narrow facade over the address space for handlers; the
// methods mirror mem.AddressSpace.
type memAccess struct{ p *Process }

func (m *memAccess) ReadWord(addr uint64) uint64     { return m.p.Mem.ReadWord(addr) }
func (m *memAccess) WriteWord(addr uint64, v uint64) { m.p.Mem.WriteWord(addr, v) }
func (m *memAccess) Read(addr uint64, b []byte)      { m.p.Mem.Read(addr, b) }
func (m *memAccess) Write(addr uint64, b []byte)     { m.p.Mem.Write(addr, b) }

// String summarizes the thread state.
func (t *Thread) String() string {
	return fmt.Sprintf("thread %d: PC=%#x SP=%#x halted=%v", t.ID, t.PC, t.Regs[isa.SP], t.Halted)
}
