package proc

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obj"
)

// assembleOrDie builds a binary from a ProgramBuilder.
func assembleOrDie(t *testing.T, p *build.ProgramBuilder) *obj.Binary {
	t.Helper()
	b, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func loadOrDie(t *testing.T, b *obj.Binary, opts Options) *Process {
	t.Helper()
	p, err := Load(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArithmeticAndGlobals(t *testing.T) {
	p := build.NewProgram("sum")
	p.Global("out", 8)
	f := p.Func("main")
	f.MovI(isa.R1, 0) // i
	f.MovI(isa.R2, 0) // sum
	f.While(func() { f.CmpI(isa.R1, 11) }, isa.LT, func() {
		f.Add(isa.R2, isa.R2, isa.R1)
		f.AddI(isa.R1, isa.R1, 1)
	})
	f.LoadGlobalAddr(isa.R3, "out")
	f.St(isa.R3, 0, isa.R2)
	f.Halt()
	p.SetEntry("main")

	bin := assembleOrDie(t, p)
	pr := loadOrDie(t, bin, Options{})
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	syms := asm.DataSymbols(mustProg(t, p), asm.Options{})
	if got := pr.Mem.ReadWord(syms["out"]); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if pr.Stats().Instructions == 0 || pr.Seconds() <= 0 {
		t.Error("no cycles accounted")
	}
}

func mustProg(t *testing.T, p *build.ProgramBuilder) *asm.Program {
	t.Helper()
	prog, err := p.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRecursionAndStack(t *testing.T) {
	p := build.NewProgram("fact")
	p.Global("out", 8)
	// fact(n): if n<=1 return 1; return n*fact(n-1)
	f := p.Func("fact")
	f.Prologue(16)
	f.CmpI(isa.R0, 1)
	f.If(isa.LE, func() {
		f.MovI(isa.R0, 1)
		f.EpilogueRet()
	}, nil)
	f.St(isa.FP, -8, isa.R0) // save n
	f.AddI(isa.R0, isa.R0, -1)
	f.Call("fact")
	f.Ld(isa.R1, isa.FP, -8)
	f.Mul(isa.R0, isa.R0, isa.R1)
	f.EpilogueRet()

	m := p.Func("main")
	m.MovI(isa.R0, 10)
	m.Call("fact")
	m.LoadGlobalAddr(isa.R1, "out")
	m.St(isa.R1, 0, isa.R0)
	m.Halt()
	p.SetEntry("main")

	bin := assembleOrDie(t, p)
	pr := loadOrDie(t, bin, Options{})
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	syms := asm.DataSymbols(mustProg(t, p), asm.Options{})
	if got := pr.Mem.ReadWord(syms["out"]); got != 3628800 {
		t.Errorf("10! = %d, want 3628800", got)
	}
}

func TestVirtualDispatch(t *testing.T) {
	p := build.NewProgram("virt")
	p.Global("out", 8)
	p.VTable("vt", "ma", "mb")
	ma := p.Func("ma")
	ma.MovI(isa.R0, 111)
	ma.Ret()
	mb := p.Func("mb")
	mb.MovI(isa.R0, 222)
	mb.Ret()
	m := p.Func("main")
	// object on stack: [vtable]
	m.Prologue(16)
	m.LoadGlobalAddr(isa.R1, "vt")
	m.St(isa.FP, -8, isa.R1)
	m.AddI(isa.R2, isa.FP, -8) // obj ptr
	m.VCall(isa.R2, isa.R6, 1) // slot 1 = mb
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R0)
	m.Halt()
	p.SetEntry("main")

	bin := assembleOrDie(t, p)
	pr := loadOrDie(t, bin, Options{})
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	syms := asm.DataSymbols(mustProg(t, p), asm.Options{})
	if got := pr.Mem.ReadWord(syms["out"]); got != 222 {
		t.Errorf("vcall result = %d, want 222", got)
	}
}

func TestFuncPtrAndHook(t *testing.T) {
	p := build.NewProgram("fp")
	p.Global("out", 8)
	a := p.Func("fa")
	a.MovI(isa.R0, 1)
	a.Ret()
	b := p.Func("fb")
	b.MovI(isa.R0, 2)
	b.Ret()
	m := p.Func("main")
	m.FuncPtr(isa.R4, "fa")
	m.CallR(isa.R4)
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R0)
	m.Halt()
	p.SetEntry("main")

	bin := assembleOrDie(t, p)
	syms := asm.DataSymbols(mustProg(t, p), asm.Options{})

	// Without hook: calls fa.
	pr := loadOrDie(t, bin, Options{})
	pr.RunUntilHalt(0)
	if got := pr.Mem.ReadWord(syms["out"]); got != 1 {
		t.Fatalf("without hook: %d", got)
	}

	// With a hook that redirects fa's address to fb: calls fb.
	pr2 := loadOrDie(t, bin, Options{})
	faAddr := bin.FuncByName("fa").Addr
	fbAddr := bin.FuncByName("fb").Addr
	pr2.SetFuncPtrHook(func(v uint64) uint64 {
		if v == faAddr {
			return fbAddr
		}
		return v
	})
	pr2.RunUntilHalt(0)
	if err := pr2.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr2.Mem.ReadWord(syms["out"]); got != 2 {
		t.Errorf("with hook: %d, want 2", got)
	}
	// Hook cost was charged.
	if pr2.Stats().Cycles <= pr.Stats().Cycles {
		t.Error("hook cost not charged")
	}
}

func TestJumpTableDispatch(t *testing.T) {
	p := build.NewProgram("jt") // jump tables allowed
	p.Global("out", 8)
	m := p.Func("main")
	m.MovI(isa.R1, 2) // select case 2
	m.Switch(isa.R1, []func(){
		func() { m.MovI(isa.R2, 10) },
		func() { m.MovI(isa.R2, 20) },
		func() { m.MovI(isa.R2, 30) },
	}, func() { m.MovI(isa.R2, 99) })
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R2)
	m.Halt()
	p.SetEntry("main")

	bin := assembleOrDie(t, p)
	if len(bin.JumpTables) != 1 {
		t.Fatal("expected a jump table")
	}
	pr := loadOrDie(t, bin, Options{})
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	syms := asm.DataSymbols(mustProg(t, p), asm.Options{})
	if got := pr.Mem.ReadWord(syms["out"]); got != 30 {
		t.Errorf("switch picked %d, want 30", got)
	}
}

func TestSyscalls(t *testing.T) {
	p := build.NewProgram("sys")
	m := p.Func("main")
	m.MovI(isa.R0, 64)
	m.Sys(SysAlloc)
	m.Mov(isa.R5, isa.R0) // keep buffer
	m.MovI(isa.R0, 7)
	m.Sys(SysEmit)
	m.Sys(SysNow)
	m.Halt()
	p.SetEntry("main")
	bin := assembleOrDie(t, p)

	var emitted []uint64
	handler := SyscallFunc(func(pr *Process, t *Thread, num int64) error {
		switch num {
		case SysAlloc:
			AllocSyscall(pr, t)
		case SysEmit:
			emitted = append(emitted, t.Regs[0])
		case SysNow:
			NowSyscall(t)
		}
		return nil
	})
	pr := loadOrDie(t, bin, Options{Handler: handler})
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 || emitted[0] != 7 {
		t.Errorf("emitted = %v", emitted)
	}
}

func TestFaults(t *testing.T) {
	// Divide by zero.
	p := build.NewProgram("div0")
	m := p.Func("main")
	m.MovI(isa.R1, 5)
	m.MovI(isa.R2, 0)
	m.Div(isa.R0, isa.R1, isa.R2)
	m.Halt()
	p.SetEntry("main")
	pr := loadOrDie(t, assembleOrDie(t, p), Options{})
	pr.RunUntilHalt(0)
	if pr.Fault() == nil {
		t.Error("divide by zero not faulted")
	}

	// Jumping into zeroed memory faults on decode.
	p2 := build.NewProgram("wild")
	m2 := p2.Func("main")
	m2.MovI(isa.R1, 0x10000)
	m2.CallR(isa.R1)
	m2.Halt()
	p2.SetEntry("main")
	pr2 := loadOrDie(t, assembleOrDie(t, p2), Options{})
	pr2.RunUntilHalt(0)
	if pr2.Fault() == nil {
		t.Error("wild jump not faulted")
	}

	// SYS without a handler faults.
	p3 := build.NewProgram("nosys")
	m3 := p3.Func("main")
	m3.Sys(SysRecv)
	m3.Halt()
	p3.SetEntry("main")
	pr3 := loadOrDie(t, assembleOrDie(t, p3), Options{})
	pr3.RunUntilHalt(0)
	if pr3.Fault() == nil {
		t.Error("handlerless SYS not faulted")
	}
	// The syscall never dispatched, so its kernel-entry cost must not be
	// booked: a faulting process would otherwise distort TopDown deltas.
	if st := pr3.Stats(); st.BEStallCycles != 0 {
		t.Errorf("handlerless SYS booked %.0f back-end stall cycles, want 0", st.BEStallCycles)
	}
}

func TestUnmapInvalidatesDecodedCode(t *testing.T) {
	// A caller jumps to code written outside the loader at 0x500000; after
	// mem.Unmap the re-run must fault on decode, and a partial unmap
	// (zeroed-but-mapped bytes) must fault exactly like a full-page unmap.
	const victim = 0x500000
	newVictimProc := func() *Process {
		p := build.NewProgram("unmapvictim")
		m := p.Func("main")
		m.MovI(isa.R1, victim)
		m.CallR(isa.R1)
		m.Halt()
		p.SetEntry("main")
		pr := loadOrDie(t, assembleOrDie(t, p), Options{})
		pr.Mem.Write(victim, isa.EncodeAll([]isa.Inst{
			{Op: isa.MOVI, Rd: isa.R2, Imm: 7},
			{Op: isa.RET},
		}))
		return pr
	}
	rerun := func(pr *Process) {
		t0 := pr.Threads[0]
		t0.Halted = false
		t0.PC = pr.Bin.Entry
		pr.RunUntilHalt(0)
	}

	// Partial unmap: only the victim's first instruction, head of a page.
	prA := newVictimProc()
	prA.RunUntilHalt(0)
	if err := prA.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := prA.Threads[0].Regs[isa.R2]; got != 7 {
		t.Fatalf("victim did not run: R2 = %d", got)
	}
	prA.Mem.Unmap(victim, isa.InstBytes)
	rerun(prA)
	if prA.Fault() == nil {
		t.Fatal("zeroed-but-mapped code executed stale decode")
	}

	// Full-page unmap of the same victim.
	prB := newVictimProc()
	prB.RunUntilHalt(0)
	prB.Mem.Unmap(victim, mem.PageSize)
	rerun(prB)
	if prB.Fault() == nil {
		t.Fatal("fully-unmapped code executed stale decode")
	}
	if a, b := prA.Fault().Error(), prB.Fault().Error(); a != b {
		t.Errorf("partial and full unmap fault differently:\n  partial: %s\n  full:    %s", a, b)
	}
}

func TestUnmapStraddlingPageBoundary(t *testing.T) {
	// The victim straddles a page boundary: MOVI's immediate sits in the
	// tail of one page, RET at the head of the next. An unmap covering the
	// boundary zeroes the immediate (the MOVI must re-decode with the new
	// value) and RET's opcode (which must fault).
	const head = 0x500ff0 // last slot of the first victim page
	const tail = 0x501000 // first slot of the next page
	p := build.NewProgram("straddle")
	m := p.Func("main")
	m.MovI(isa.R1, head)
	m.CallR(isa.R1)
	m.Halt()
	p.SetEntry("main")
	pr := loadOrDie(t, assembleOrDie(t, p), Options{})
	pr.Mem.Write(head, isa.EncodeAll([]isa.Inst{
		{Op: isa.MOVI, Rd: isa.R2, Imm: 7},
		{Op: isa.RET},
	}))
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Threads[0].Regs[isa.R2]; got != 7 {
		t.Fatalf("victim did not run: R2 = %d", got)
	}

	pr.Mem.Unmap(head+8, isa.InstBytes) // covers imm of MOVI + opcode of RET
	t0 := pr.Threads[0]
	t0.Halted = false
	t0.PC = pr.Bin.Entry
	t0.Regs[isa.R2] = 99
	pr.RunUntilHalt(0)
	if pr.Fault() == nil {
		t.Fatal("zeroed RET opcode did not fault")
	}
	if !strings.Contains(pr.Fault().Error(), "0x501000") {
		t.Errorf("fault not at the zeroed RET: %v", pr.Fault())
	}
	if got := t0.Regs[isa.R2]; got != 0 {
		t.Errorf("MOVI executed stale immediate: R2 = %d, want 0", got)
	}
}

func TestSelfModifyingCodeInvalidation(t *testing.T) {
	// main loops twice over a MOVI that external code rewrites between
	// runs; the decode cache must observe the new bytes.
	p := build.NewProgram("smc")
	p.Global("out", 8)
	m := p.Func("main")
	m.MovI(isa.R2, 111) // instruction to patch (index 0)
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R2)
	m.Halt()
	p.SetEntry("main")
	bin := assembleOrDie(t, p)
	pr := loadOrDie(t, bin, Options{})

	pr.RunUntilHalt(0)
	syms := asm.DataSymbols(mustProg(t, p), asm.Options{})
	if got := pr.Mem.ReadWord(syms["out"]); got != 111 {
		t.Fatalf("first run: %d", got)
	}

	// Patch the MOVI imm to 222 and restart thread 0 at entry.
	var buf [isa.InstBytes]byte
	patched := isa.Inst{Op: isa.MOVI, Rd: isa.R2, Imm: 222}
	patched.Encode(buf[:])
	pr.Mem.Write(bin.Entry, buf[:])
	t0 := pr.Threads[0]
	t0.Halted = false
	t0.PC = bin.Entry
	pr.RunUntilHalt(0)
	if got := pr.Mem.ReadWord(syms["out"]); got != 222 {
		t.Errorf("after patch: %d, want 222", got)
	}
}

func TestMultiThread(t *testing.T) {
	p := build.NewProgram("mt")
	p.Global("counters", 8*4)
	m := p.Func("main")
	// Each thread (id in R0) bumps counters[id] 1000 times.
	m.LoadGlobalAddr(isa.R3, "counters")
	m.ShlI(isa.R4, isa.R0, 3)
	m.Add(isa.R3, isa.R3, isa.R4)
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1000) }, isa.LT, func() {
		m.Ld(isa.R5, isa.R3, 0)
		m.AddI(isa.R5, isa.R5, 1)
		m.St(isa.R3, 0, isa.R5)
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	bin := assembleOrDie(t, p)
	pr := loadOrDie(t, bin, Options{Threads: 4})
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	syms := asm.DataSymbols(mustProg(t, p), asm.Options{})
	for i := uint64(0); i < 4; i++ {
		if got := pr.Mem.ReadWord(syms["counters"] + i*8); got != 1000 {
			t.Errorf("counter %d = %d", i, got)
		}
	}
	// Cores advanced in near-lockstep.
	lo, hi := pr.Threads[0].Core.Cycles(), pr.Threads[0].Core.Cycles()
	for _, th := range pr.Threads {
		c := th.Core.Cycles()
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi > lo*1.5+1000 {
		t.Errorf("cores diverged: %f vs %f", lo, hi)
	}
}

func TestPauseResume(t *testing.T) {
	p := build.NewProgram("loop")
	m := p.Func("main")
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	pr := loadOrDie(t, assembleOrDie(t, p), Options{})

	pr.RunUntilHalt(100000)
	if pr.Halted() {
		t.Fatal("loop ended too early")
	}
	pr.Pause()
	n := pr.RunUntilHalt(0)
	if n != 0 {
		t.Errorf("paused process executed %d instructions", n)
	}
	pr.Resume()
	if n := pr.RunUntilHalt(1000); n == 0 {
		t.Error("resumed process did not run")
	}
	// Thread state is inspectable at an instruction boundary.
	if pr.Threads[0].PC%isa.InstBytes != 0 {
		t.Error("paused PC not at instruction boundary")
	}
}

func TestRunFor(t *testing.T) {
	p := build.NewProgram("timed")
	m := p.Func("main")
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	pr := loadOrDie(t, assembleOrDie(t, p), Options{})
	pr.RunFor(1e-4) // 100 microseconds at 2.1 GHz ≈ 210k cycles
	if s := pr.Seconds(); s < 1e-4 || s > 2e-4 {
		t.Errorf("RunFor(1e-4) advanced %g seconds", s)
	}
}

func BenchmarkInterpreter(b *testing.B) {
	p := build.NewProgram("bench")
	m := p.Func("main")
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		m.AddI(isa.R2, isa.R2, 7)
		m.XorI(isa.R2, isa.R2, 13)
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pr, err := Load(bin, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	pr.RunUntilHalt(uint64(b.N))
}

// TestDBITaxModel: running under the modeled DBI framework must cost
// cycles, and indirect-heavy code must suffer more than branch-light code
// (the Pin cost profile of §I).
func TestDBITaxModel(t *testing.T) {
	buildBin := func() *obj.Binary {
		p := build.NewProgram("dbi")
		leaf := p.Func("leaf")
		leaf.Prologue(0)
		leaf.AddI(isa.R0, isa.R0, 1)
		leaf.EpilogueRet()
		m := p.Func("main")
		m.Prologue(16)
		m.MovI(isa.R1, 0)
		m.While(func() { m.CmpI(isa.R1, 20000) }, isa.LT, func() {
			m.FuncPtr(isa.R6, "leaf")
			m.CallR(isa.R6) // indirect call + return per iteration
			m.AddI(isa.R1, isa.R1, 1)
		})
		m.Halt()
		p.SetEntry("main")
		bin, err := p.Assemble(asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return bin
	}
	run := func(dbi bool) float64 {
		pr, err := Load(buildBin(), Options{DBI: dbi})
		if err != nil {
			t.Fatal(err)
		}
		pr.RunUntilHalt(0)
		if err := pr.Fault(); err != nil {
			t.Fatal(err)
		}
		return pr.Seconds()
	}
	native := run(false)
	underDBI := run(true)
	if underDBI <= native*1.2 {
		t.Errorf("indirect-heavy code under DBI %.6fs vs native %.6fs; expected a big tax", underDBI, native)
	}
}
