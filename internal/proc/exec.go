package proc

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Step executes one instruction on t, charging its core. A false return
// means the thread cannot run (halted or faulted).
func (p *Process) Step(t *Thread) bool {
	if t.Halted {
		return false
	}
	in, err := p.decode(t.PC)
	if err != nil {
		p.faultThread(t, err)
		return false
	}
	c := t.Core
	c.Fetch(t.PC)

	pc := t.PC
	next := pc + isa.InstBytes

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		c.Retire(false)
		t.Halted = true
		return false

	case isa.MOVI:
		t.SetReg(in.Rd, uint64(in.Imm))
	case isa.MOV:
		t.SetReg(in.Rd, t.Reg(in.Rs1))
	case isa.ADD:
		t.SetReg(in.Rd, t.Reg(in.Rs1)+t.Reg(in.Rs2))
	case isa.SUB:
		t.SetReg(in.Rd, t.Reg(in.Rs1)-t.Reg(in.Rs2))
	case isa.MUL:
		t.SetReg(in.Rd, t.Reg(in.Rs1)*t.Reg(in.Rs2))
	case isa.DIV:
		d := int64(t.Reg(in.Rs2))
		if d == 0 {
			p.faultThread(t, fmt.Errorf("proc: divide by zero at PC %#x", pc))
			return false
		}
		t.SetReg(in.Rd, uint64(int64(t.Reg(in.Rs1))/d))
	case isa.MOD:
		d := int64(t.Reg(in.Rs2))
		if d == 0 {
			p.faultThread(t, fmt.Errorf("proc: modulo by zero at PC %#x", pc))
			return false
		}
		t.SetReg(in.Rd, uint64(int64(t.Reg(in.Rs1))%d))
	case isa.AND:
		t.SetReg(in.Rd, t.Reg(in.Rs1)&t.Reg(in.Rs2))
	case isa.OR:
		t.SetReg(in.Rd, t.Reg(in.Rs1)|t.Reg(in.Rs2))
	case isa.XOR:
		t.SetReg(in.Rd, t.Reg(in.Rs1)^t.Reg(in.Rs2))
	case isa.SHL:
		t.SetReg(in.Rd, t.Reg(in.Rs1)<<(t.Reg(in.Rs2)&63))
	case isa.SHR:
		t.SetReg(in.Rd, t.Reg(in.Rs1)>>(t.Reg(in.Rs2)&63))
	case isa.ADDI:
		t.SetReg(in.Rd, t.Reg(in.Rs1)+uint64(in.Imm))
	case isa.MULI:
		t.SetReg(in.Rd, t.Reg(in.Rs1)*uint64(in.Imm))
	case isa.ANDI:
		t.SetReg(in.Rd, t.Reg(in.Rs1)&uint64(in.Imm))
	case isa.ORI:
		t.SetReg(in.Rd, t.Reg(in.Rs1)|uint64(in.Imm))
	case isa.XORI:
		t.SetReg(in.Rd, t.Reg(in.Rs1)^uint64(in.Imm))
	case isa.SHLI:
		t.SetReg(in.Rd, t.Reg(in.Rs1)<<(uint64(in.Imm)&63))
	case isa.SHRI:
		t.SetReg(in.Rd, t.Reg(in.Rs1)>>(uint64(in.Imm)&63))

	case isa.LD:
		addr := t.Reg(in.Rs1) + uint64(in.Imm)
		c.Mem(addr, false)
		t.SetReg(in.Rd, p.Mem.ReadWord(addr))
	case isa.ST:
		addr := t.Reg(in.Rs1) + uint64(in.Imm)
		c.Mem(addr, true)
		p.Mem.WriteWord(addr, t.Reg(in.Rs2))
	case isa.LDB:
		addr := t.Reg(in.Rs1) + uint64(in.Imm)
		c.Mem(addr, false)
		t.SetReg(in.Rd, uint64(p.Mem.LoadByte(addr)))
	case isa.STB:
		addr := t.Reg(in.Rs1) + uint64(in.Imm)
		c.Mem(addr, true)
		p.Mem.StoreByte(addr, byte(t.Reg(in.Rs2)))

	case isa.CMP:
		t.CmpVal = int64(t.Reg(in.Rs1)) - int64(t.Reg(in.Rs2))
	case isa.CMPI:
		t.CmpVal = int64(t.Reg(in.Rs1)) - in.Imm

	case isa.JMP:
		target := uint64(int64(next) + in.Imm)
		c.Retire(false)
		c.Branch(pc, target, true, cpu.BrJump, 0)
		p.dbiTax(c, false)
		t.PC = target
		return true
	case isa.JCC:
		taken := in.Cond.Holds(t.CmpVal)
		target := next
		if taken {
			target = uint64(int64(next) + in.Imm)
		}
		c.Retire(false)
		c.Branch(pc, target, taken, cpu.BrCond, 0)
		if taken {
			p.dbiTax(c, false)
		}
		t.PC = target
		return true
	case isa.CALL:
		target := uint64(int64(next) + in.Imm)
		sp := t.Regs[isa.SP] - 8
		t.Regs[isa.SP] = sp
		c.Mem(sp, true)
		p.Mem.WriteWord(sp, next)
		c.Retire(false)
		c.Branch(pc, target, true, cpu.BrCall, next)
		p.dbiTax(c, false)
		t.PC = target
		return true
	case isa.CALLR:
		target := t.Reg(in.Rs1)
		sp := t.Regs[isa.SP] - 8
		t.Regs[isa.SP] = sp
		c.Mem(sp, true)
		p.Mem.WriteWord(sp, next)
		c.Retire(false)
		c.Branch(pc, target, true, cpu.BrCallInd, next)
		p.dbiTax(c, true)
		t.PC = target
		return true
	case isa.RET:
		sp := t.Regs[isa.SP]
		c.Mem(sp, false)
		target := p.Mem.ReadWord(sp)
		t.Regs[isa.SP] = sp + 8
		c.Retire(false)
		c.Branch(pc, target, true, cpu.BrRet, 0)
		p.dbiTax(c, true)
		t.PC = target
		return true
	case isa.JTBL:
		idx := t.Reg(in.Rs1)
		slot := uint64(in.Imm) + idx*8
		c.Mem(slot, false)
		target := p.Mem.ReadWord(slot)
		c.Retire(false)
		c.Branch(pc, target, true, cpu.BrJumpTable, 0)
		p.dbiTax(c, true)
		t.PC = target
		return true

	case isa.FPTR:
		v := uint64(in.Imm)
		if p.fptrHook != nil {
			v = p.fptrHook(v)
			c.AddStall(p.opts.FuncPtrHookCost, cpu.BucketRetiring)
		}
		t.SetReg(in.Rd, v)

	case isa.ENTER:
		sp := t.Regs[isa.SP] - 8
		c.Mem(sp, true)
		p.Mem.WriteWord(sp, t.Regs[isa.FP])
		t.Regs[isa.FP] = sp
		t.Regs[isa.SP] = sp - uint64(in.Imm)
	case isa.LEAVE:
		fp := t.Regs[isa.FP]
		c.Mem(fp, false)
		t.Regs[isa.FP] = p.Mem.ReadWord(fp)
		t.Regs[isa.SP] = fp + 8
	case isa.PUSH:
		sp := t.Regs[isa.SP] - 8
		t.Regs[isa.SP] = sp
		c.Mem(sp, true)
		p.Mem.WriteWord(sp, t.Reg(in.Rs1))
	case isa.POP:
		sp := t.Regs[isa.SP]
		c.Mem(sp, false)
		t.SetReg(in.Rd, p.Mem.ReadWord(sp))
		t.Regs[isa.SP] = sp + 8

	case isa.SYS:
		if p.handler == nil {
			// Fault before charging SyscallCost: a syscall that never
			// dispatched must not book back-end stall cycles.
			p.faultThread(t, fmt.Errorf("proc: SYS %d with no handler at PC %#x", in.Imm, pc))
			return false
		}
		c.AddStall(p.opts.SyscallCost, cpu.BucketBackEnd)
		if err := p.handler.Syscall(p, t, in.Imm); err != nil {
			p.faultThread(t, err)
			return false
		}
		if t.Halted { // handler may halt the thread
			c.Retire(false)
			return false
		}

	default:
		p.faultThread(t, fmt.Errorf("proc: unimplemented op %v at PC %#x", in.Op, pc))
		return false
	}

	c.Retire(in.Op == isa.DIV || in.Op == isa.MOD)
	t.PC = next
	return true
}

func (p *Process) faultThread(t *Thread, err error) {
	t.Halted = true
	if p.fault == nil {
		p.fault = fmt.Errorf("thread %d: %w", t.ID, err)
	}
}

// dbiTax charges the DBI framework's per-transfer overhead (Options.DBI).
func (p *Process) dbiTax(c *cpu.Core, indirect bool) {
	if !p.opts.DBI {
		return
	}
	if indirect {
		c.AddStall(dbiIndirectCost, cpu.BucketRetiring)
	} else {
		c.AddStall(dbiDirectCost, cpu.BucketRetiring)
	}
}
