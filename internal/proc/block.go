package proc

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// The basic-block engine. Step (exec.go) decodes and dispatches one
// instruction at a time and stays the reference semantics; runQuantum is
// the hot path the scheduler uses. It decodes a straight-line run once
// into a flat block, executes the block with no map lookups, and chains
// blocks through cached successor pointers. Correctness hinges on two
// invariants:
//
//   - every architectural effect and every cpu.Core event happens in
//     exactly the order Step would produce it, so timing is bit-identical
//     (guarded by internal/diffcheck's cycle-exact golden test);
//   - any store into a page holding decoded state invalidates its blocks
//     via the mem write watch before the next instruction from that page
//     executes — the executor re-checks blk.valid after every
//     instruction, so even a block overwriting itself stops at the next
//     boundary, exactly where Step would first see the new bytes.

// bbOp is one pre-decoded instruction of a block: the instruction plus
// its PC and fall-through successor, resolved at build time so the
// executor does no address arithmetic on the hot path.
type bbOp struct {
	in    isa.Inst
	pc    uint64
	next  uint64
	isDiv bool
}

// basicBlock is a decoded straight-line run: it ends at the first control
// transfer, SYS (handlers may rewrite anything), undecodable word, or
// page boundary (invalidation is page-granular, so blocks never span
// pages). succFall/succTaken cache the fall-through and taken successors;
// for indirect transfers succTaken acts as a monomorphic inline cache.
// Successor hints are only hints — the executor validates start and
// valid before trusting one.
type basicBlock struct {
	start     uint64
	ops       []bbOp
	valid     bool
	succFall  *basicBlock
	succTaken *basicBlock

	// Fixed-bin profiling counters for superblock formation (super.go):
	// fields on the block itself, binstat-style, so the hot path pays a
	// plain increment and never a map lookup. heat counts dispatches;
	// takenCnt/fallCnt profile the terminator's edge when it is a JCC.
	// super caches the trace headed at this block, if one was formed.
	heat     uint32
	takenCnt uint32
	fallCnt  uint32
	super    *superblock
}

// blockAt returns the (valid) block starting at pc, building it on miss.
// Invalidated blocks are removed from the map, so a hit is always valid.
func (p *Process) blockAt(pc uint64) (*basicBlock, error) {
	if b := p.blocks[pc]; b != nil {
		return b, nil
	}
	return p.buildBlock(pc)
}

// buildBlock decodes the straight-line run starting at pc and registers
// it for execution and invalidation. A decode error on the first
// instruction is the caller's fault to raise (identical to what Step
// would report); an error later just ends the block before the bad word,
// so the fault surfaces — or doesn't — exactly when execution reaches it.
func (p *Process) buildBlock(start uint64) (*basicBlock, error) {
	if start%isa.InstBytes != 0 {
		return nil, fmt.Errorf("proc: misaligned PC %#x", start)
	}
	pg := start / mem.PageSize
	pageEnd := (pg + 1) * mem.PageSize
	blk := &basicBlock{start: start, valid: true}
	for pc := start; pc < pageEnd; pc += isa.InstBytes {
		in, err := p.decode(pc)
		if err != nil {
			if pc == start {
				return nil, err
			}
			break
		}
		blk.ops = append(blk.ops, bbOp{
			in:    in,
			pc:    pc,
			next:  pc + isa.InstBytes,
			isDiv: in.Op == isa.DIV || in.Op == isa.MOD,
		})
		if in.IsCtrl() || in.Op == isa.SYS {
			break
		}
	}
	p.blocks[start] = blk
	p.blockPg[pg] = append(p.blockPg[pg], blk)
	p.noteCodePage(pg)
	return blk, nil
}

// chain resolves a successor hint: reuse the cached block if it still
// matches, otherwise consult the map and refresh the hint. Returns nil on
// a cold target; runQuantum builds it.
func (p *Process) chain(slot **basicBlock, target uint64) *basicBlock {
	if b := *slot; b != nil && b.valid && b.start == target {
		return b
	}
	b := p.blocks[target]
	*slot = b
	return b
}

// runQuantum executes up to budget instructions on t through the block
// cache and returns how many completed — the same count the legacy
// per-Step quantum loop reported (HALT, faults, and halting syscalls are
// not counted). Hot blocks are promoted to the superblock trace engine
// (super.go): once a block's heat crosses the formation threshold a
// trace is spliced from the profiled path and dispatched here instead.
func (p *Process) runQuantum(t *Thread, budget int) int {
	total := 0
	var blk *basicBlock
	if sb := t.resumeSB; sb != nil {
		// The previous quantum ran dry mid-trace. Re-enter at the saved
		// op if everything still lines up (the trace may have been
		// invalidated, or a hook may have moved the PC, in between).
		t.resumeSB = nil
		if p.supersEnabled && sb.valid && !t.Halted && budget > 0 &&
			t.resumeIdx < len(sb.ops) && sb.ops[t.resumeIdx].pc == t.PC {
			n := p.execSuper(t, sb, budget, t.resumeIdx)
			total += n
			p.superInsts += uint64(n)
		}
	}
	for total < budget && !t.Halted {
		if blk == nil || !blk.valid || blk.start != t.PC {
			var err error
			blk, err = p.blockAt(t.PC)
			if err != nil {
				p.faultThread(t, err)
				return total
			}
		}
		if p.supersEnabled {
			if sb := blk.super; sb != nil {
				if sb.valid {
					n := p.execSuper(t, sb, budget-total, 0)
					total += n
					p.superInsts += uint64(n)
					blk = nil
					continue
				}
				blk.super = nil
			} else {
				blk.heat++
				if blk.heat >= superHotThreshold {
					if p.tryFormSuper(blk) != nil {
						continue // re-dispatch: blk.super is now set
					}
				}
			}
		}
		n, next := p.execBlock(t, blk, budget-total)
		total += n
		blk = next
	}
	return total
}

// execBlock runs one block until it ends, the budget runs out, the
// thread halts or faults, or the block is invalidated under its own
// feet. It returns the number of completed instructions and the next
// block if the terminator's successor hint resolved (nil otherwise).
// t.PC is synced on every exit path, never per instruction.
//
// There is no per-instruction budget check: a block's terminator is
// always its last op, so truncating the op slice to the budget leaves
// only fall-through instructions and the fall-off-the-end epilogue
// already resumes at exactly the cut point. Only instructions that can
// store — and so can trigger the write watch — re-check blk.valid; each
// of those cases carries its own retire epilogue and `continue`s past
// the shared check-free tail.
func (p *Process) execBlock(t *Thread, blk *basicBlock, budget int) (int, *basicBlock) {
	c := t.Core
	n := 0
	ops := blk.ops
	if budget < len(ops) {
		ops = ops[:budget]
	}
	for i := range ops {
		e := &ops[i]
		c.Fetch(e.pc)
		in := &e.in

		switch in.Op {
		case isa.NOP:
		case isa.HALT:
			c.Retire(false)
			t.PC = e.pc
			t.Halted = true
			return n, nil

		case isa.MOVI:
			t.SetReg(in.Rd, uint64(in.Imm))
		case isa.MOV:
			t.SetReg(in.Rd, t.Reg(in.Rs1))
		case isa.ADD:
			t.SetReg(in.Rd, t.Reg(in.Rs1)+t.Reg(in.Rs2))
		case isa.SUB:
			t.SetReg(in.Rd, t.Reg(in.Rs1)-t.Reg(in.Rs2))
		case isa.MUL:
			t.SetReg(in.Rd, t.Reg(in.Rs1)*t.Reg(in.Rs2))
		case isa.DIV:
			d := int64(t.Reg(in.Rs2))
			if d == 0 {
				t.PC = e.pc
				p.faultThread(t, fmt.Errorf("proc: divide by zero at PC %#x", e.pc))
				return n, nil
			}
			t.SetReg(in.Rd, uint64(int64(t.Reg(in.Rs1))/d))
		case isa.MOD:
			d := int64(t.Reg(in.Rs2))
			if d == 0 {
				t.PC = e.pc
				p.faultThread(t, fmt.Errorf("proc: modulo by zero at PC %#x", e.pc))
				return n, nil
			}
			t.SetReg(in.Rd, uint64(int64(t.Reg(in.Rs1))%d))
		case isa.AND:
			t.SetReg(in.Rd, t.Reg(in.Rs1)&t.Reg(in.Rs2))
		case isa.OR:
			t.SetReg(in.Rd, t.Reg(in.Rs1)|t.Reg(in.Rs2))
		case isa.XOR:
			t.SetReg(in.Rd, t.Reg(in.Rs1)^t.Reg(in.Rs2))
		case isa.SHL:
			t.SetReg(in.Rd, t.Reg(in.Rs1)<<(t.Reg(in.Rs2)&63))
		case isa.SHR:
			t.SetReg(in.Rd, t.Reg(in.Rs1)>>(t.Reg(in.Rs2)&63))
		case isa.ADDI:
			t.SetReg(in.Rd, t.Reg(in.Rs1)+uint64(in.Imm))
		case isa.MULI:
			t.SetReg(in.Rd, t.Reg(in.Rs1)*uint64(in.Imm))
		case isa.ANDI:
			t.SetReg(in.Rd, t.Reg(in.Rs1)&uint64(in.Imm))
		case isa.ORI:
			t.SetReg(in.Rd, t.Reg(in.Rs1)|uint64(in.Imm))
		case isa.XORI:
			t.SetReg(in.Rd, t.Reg(in.Rs1)^uint64(in.Imm))
		case isa.SHLI:
			t.SetReg(in.Rd, t.Reg(in.Rs1)<<(uint64(in.Imm)&63))
		case isa.SHRI:
			t.SetReg(in.Rd, t.Reg(in.Rs1)>>(uint64(in.Imm)&63))

		case isa.LD:
			addr := t.Reg(in.Rs1) + uint64(in.Imm)
			c.Mem(addr, false)
			t.SetReg(in.Rd, p.Mem.ReadWord(addr))
		case isa.ST:
			addr := t.Reg(in.Rs1) + uint64(in.Imm)
			c.Mem(addr, true)
			p.Mem.WriteWord(addr, t.Reg(in.Rs2))
			c.Retire(false)
			n++
			if !blk.valid {
				t.PC = e.next
				return n, nil
			}
			continue
		case isa.LDB:
			addr := t.Reg(in.Rs1) + uint64(in.Imm)
			c.Mem(addr, false)
			t.SetReg(in.Rd, uint64(p.Mem.LoadByte(addr)))
		case isa.STB:
			addr := t.Reg(in.Rs1) + uint64(in.Imm)
			c.Mem(addr, true)
			p.Mem.StoreByte(addr, byte(t.Reg(in.Rs2)))
			c.Retire(false)
			n++
			if !blk.valid {
				t.PC = e.next
				return n, nil
			}
			continue

		case isa.CMP:
			t.CmpVal = int64(t.Reg(in.Rs1)) - int64(t.Reg(in.Rs2))
		case isa.CMPI:
			t.CmpVal = int64(t.Reg(in.Rs1)) - in.Imm

		case isa.JMP:
			target := uint64(int64(e.next) + in.Imm)
			c.Retire(false)
			c.Branch(e.pc, target, true, cpu.BrJump, 0)
			p.dbiTax(c, false)
			t.PC = target
			return n + 1, p.chain(&blk.succTaken, target)
		case isa.JCC:
			taken := in.Cond.Holds(t.CmpVal)
			target := e.next
			if taken {
				target = uint64(int64(e.next) + in.Imm)
				blk.takenCnt++
			} else {
				blk.fallCnt++
			}
			c.Retire(false)
			c.Branch(e.pc, target, taken, cpu.BrCond, 0)
			t.PC = target
			if taken {
				p.dbiTax(c, false)
				return n + 1, p.chain(&blk.succTaken, target)
			}
			return n + 1, p.chain(&blk.succFall, target)
		case isa.CALL:
			target := uint64(int64(e.next) + in.Imm)
			sp := t.Regs[isa.SP] - 8
			t.Regs[isa.SP] = sp
			c.Mem(sp, true)
			p.Mem.WriteWord(sp, e.next)
			c.Retire(false)
			c.Branch(e.pc, target, true, cpu.BrCall, e.next)
			p.dbiTax(c, false)
			t.PC = target
			return n + 1, p.chain(&blk.succTaken, target)
		case isa.CALLR:
			target := t.Reg(in.Rs1)
			sp := t.Regs[isa.SP] - 8
			t.Regs[isa.SP] = sp
			c.Mem(sp, true)
			p.Mem.WriteWord(sp, e.next)
			c.Retire(false)
			c.Branch(e.pc, target, true, cpu.BrCallInd, e.next)
			p.dbiTax(c, true)
			t.PC = target
			return n + 1, p.chain(&blk.succTaken, target)
		case isa.RET:
			sp := t.Regs[isa.SP]
			c.Mem(sp, false)
			target := p.Mem.ReadWord(sp)
			t.Regs[isa.SP] = sp + 8
			c.Retire(false)
			c.Branch(e.pc, target, true, cpu.BrRet, 0)
			p.dbiTax(c, true)
			t.PC = target
			return n + 1, p.chain(&blk.succTaken, target)
		case isa.JTBL:
			idx := t.Reg(in.Rs1)
			slot := uint64(in.Imm) + idx*8
			c.Mem(slot, false)
			target := p.Mem.ReadWord(slot)
			c.Retire(false)
			c.Branch(e.pc, target, true, cpu.BrJumpTable, 0)
			p.dbiTax(c, true)
			t.PC = target
			return n + 1, p.chain(&blk.succTaken, target)

		case isa.FPTR:
			v := uint64(in.Imm)
			if p.fptrHook != nil {
				// The hook is arbitrary code; re-check validity like a
				// store in case it rewrote the region under us.
				v = p.fptrHook(v)
				c.AddStall(p.opts.FuncPtrHookCost, cpu.BucketRetiring)
				t.SetReg(in.Rd, v)
				c.Retire(false)
				n++
				if !blk.valid {
					t.PC = e.next
					return n, nil
				}
				continue
			}
			t.SetReg(in.Rd, v)

		case isa.ENTER:
			sp := t.Regs[isa.SP] - 8
			c.Mem(sp, true)
			p.Mem.WriteWord(sp, t.Regs[isa.FP])
			t.Regs[isa.FP] = sp
			t.Regs[isa.SP] = sp - uint64(in.Imm)
			c.Retire(false)
			n++
			if !blk.valid {
				t.PC = e.next
				return n, nil
			}
			continue
		case isa.LEAVE:
			fp := t.Regs[isa.FP]
			c.Mem(fp, false)
			t.Regs[isa.FP] = p.Mem.ReadWord(fp)
			t.Regs[isa.SP] = fp + 8
		case isa.PUSH:
			sp := t.Regs[isa.SP] - 8
			t.Regs[isa.SP] = sp
			c.Mem(sp, true)
			p.Mem.WriteWord(sp, t.Reg(in.Rs1))
			c.Retire(false)
			n++
			if !blk.valid {
				t.PC = e.next
				return n, nil
			}
			continue
		case isa.POP:
			sp := t.Regs[isa.SP]
			c.Mem(sp, false)
			t.SetReg(in.Rd, p.Mem.ReadWord(sp))
			t.Regs[isa.SP] = sp + 8

		case isa.SYS:
			// The handler sees the SYS PC, the way Step leaves it.
			t.PC = e.pc
			if p.handler == nil {
				p.faultThread(t, fmt.Errorf("proc: SYS %d with no handler at PC %#x", in.Imm, e.pc))
				return n, nil
			}
			c.AddStall(p.opts.SyscallCost, cpu.BucketBackEnd)
			if err := p.handler.Syscall(p, t, in.Imm); err != nil {
				p.faultThread(t, err)
				return n, nil
			}
			c.Retire(false)
			if t.Halted {
				return n, nil
			}
			// SYS always ends the block: the handler may have rewritten
			// code, started threads, or paused the process.
			t.PC = e.next
			return n + 1, nil

		default:
			t.PC = e.pc
			p.faultThread(t, fmt.Errorf("proc: unimplemented op %v at PC %#x", in.Op, e.pc))
			return n, nil
		}

		// Shared tail for the store-free cases: nothing here can have
		// invalidated the block, so no validity re-check is needed.
		c.Retire(e.isDiv)
		n++
	}
	// Ran out of budget mid-block, or fell off the page end without a
	// terminator: resume at the next instruction.
	t.PC = ops[len(ops)-1].next
	return n, nil
}
