package proc

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// The superblock trace engine (the tier above the basic-block cache in
// block.go; see docs/perf.md). Once a block has run superHotThreshold
// times, the per-block edge counters (heat, takenCnt/fallCnt — fixed
// bins on the block itself, no map lookups on the hot path) pick the
// likely direction of every conditional, and the chain of blocks along
// that path is spliced into one superblock decoded once. Execution then
// stays inside the trace across taken branches; a conditional that goes
// against the plan is a side exit that falls back to the block cache at
// the actual target.
//
// Three pre-computations make re-execution O(1) per straight-line run
// instead of O(1) per instruction:
//
//   - fetch points: an op needs a front-end Fetch only at the trace
//     head, after a planned-taken branch, or on a static line crossing.
//     Every other op is proven at build time to sit on the line the core
//     just fetched, where Fetch is a no-op — so the call is skipped.
//     Each fetch point carries a cpu.FetchPlan so the warm case (line
//     live, or demand + prefetch lines in their sets' MRU way) is
//     charged inline via cpu.FetchFast without calling into the model.
//   - pure runs: a maximal streak of event-free ops (ALU, CMP — nothing
//     that touches memory or branches) is charged with one
//     cpu.RetireBulk call, bit-identical to per-op Retire by
//     construction (see internal/cpu/blockacct.go). Runs extend across
//     line crossings: interior warm fetches add only integer state, so
//     deferring the bulk retire past them is exact, and any interior
//     fetch that misses first flushes the retires charged so far so the
//     DRAM model sees the true cycle count.
//   - aggregated front ends: a div-free run whose fetch points are
//     sequential same-page lines gets a cpu.FetchRunPlan; when every
//     line is warm, one cpu.FetchRunFast call charges the whole run's
//     front-end traffic and the op loop touches no model state until
//     the single bulk retire — O(1) model interactions per run.
//
// Everything else — memory ops, branch prediction, DBI taxes, faults —
// goes through exactly the per-event calls the block engine makes, in
// the same order, so cpu.Stats stays cycle-exact against the Step
// reference engine (the diffcheck golden gate runs with superblocks on).
//
// Invalidation: superblocks may span pages (traces cross page
// boundaries), so every constituent page is registered in superPg and a
// store into any of them invalidates the whole trace. The executor
// re-checks sb.valid after every instruction that can store, so a trace
// overwriting any of its own pages stops at the next instruction
// boundary — exactly where Step would first see the new bytes.

const (
	// superHotThreshold is how many times a block must dispatch before
	// trace formation is attempted from it.
	superHotThreshold = 64
	// superMaxOps bounds the trace length in instructions.
	superMaxOps = 96
	// superMaxBlocks bounds how many blocks one trace may splice.
	superMaxBlocks = 16
)

// sbCont says how execution continues after a control op in a trace when
// the op goes the planned direction.
type sbCont uint8

const (
	contExit sbCont = iota // leave the trace (unplanned or unknowable target)
	contNext               // proceed to the next op in the trace
	contLoop               // planned back edge to the trace head
)

// sbOp is one pre-decoded instruction of a superblock. Beyond the block
// engine's per-op fields it carries the trace plan: the planned branch
// target and direction, the continuation kind, the precomputed fetch
// point (with its front-end fingerprint), and the length of the pure run
// starting here that can be charged in one bulk retire.
type sbOp struct {
	in      isa.Inst
	pc      uint64
	next    uint64            // fall-through successor
	target  uint64            // planned taken target (control ops)
	pl      cpu.FetchPlan     // warm-path fetch descriptor (fetch points only)
	fe      *cpu.FetchRunPlan // aggregated front-end plan (div-free run heads only)
	run     uint16            // pure ops starting here, executable as one bulk charge
	fetch   bool              // fetch point: a new line is (or may be) entered here
	planned bool              // JCC: the trace assumes taken
	cont    sbCont
	isDiv   bool
}

// superblock is a decoded trace: the ops of several blocks spliced along
// the profiled hot path. pages lists every code page the ops were
// decoded from; a store into any of them invalidates the trace.
type superblock struct {
	head   uint64
	ops    []sbOp
	valid  bool
	pages  []uint64
	blocks int // blocks spliced in (diagnostics)
}

// SuperblockStats reports trace-engine activity for diagnostics and
// tests.
type SuperblockStats struct {
	Formed      uint64 // traces built
	Invalidated uint64 // traces dropped by the write watch
	Insts       uint64 // instructions retired inside traces
}

// SuperblockStats returns the current trace-engine counters.
func (p *Process) SuperblockStats() SuperblockStats {
	return SuperblockStats{Formed: p.superFormed, Invalidated: p.superInval, Insts: p.superInsts}
}

// pureOp reports whether op is event-free: no memory traffic, no control
// transfer, no syscall, no hook — only registers and flags. Pure ops in
// a trace are charged in bulk. DIV/MOD qualify (the divider latency
// folds from an integer counter) but carry a fault check at run time.
func pureOp(op isa.Op) bool {
	switch op {
	case isa.NOP, isa.MOVI, isa.MOV, isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI,
		isa.CMP, isa.CMPI:
		return true
	}
	return false
}

// tryFormSuper attempts to build a superblock starting at head and
// registers it on success. On failure head's heat resets so a later,
// warmer state (successor blocks built, branch counters filled in) can
// retry.
func (p *Process) tryFormSuper(head *basicBlock) *superblock {
	sb := &superblock{head: head.start, valid: true}
	cur := head
	loop := false
	// Static call stack: a CALL spliced into the trace records its return
	// address, so a matching RET can continue the trace there instead of
	// exiting — with a run-time check that the real return address agrees
	// (see execSuper's RET case).
	var callStack []uint64

walk:
	for cur != nil && sb.blocks < superMaxBlocks && len(sb.ops) < superMaxOps {
		sb.blocks++
		var next uint64
		nextKnown := false // a continuation target was determined
		viaCtrl := false   // ... by a control op (vs page-end fall-through)

		for oi := range cur.ops {
			if len(sb.ops) >= superMaxOps {
				break walk
			}
			op := &cur.ops[oi]
			if op.in.Op == isa.SYS || op.in.Op == isa.HALT {
				// Never traced: the handler may rewrite anything, and HALT
				// must go through the block engine's halt path. The trace
				// ends just before; the epilogue resumes here.
				break walk
			}
			so := sbOp{in: op.in, pc: op.pc, next: op.next, isDiv: op.isDiv, cont: contNext}
			switch op.in.Op {
			case isa.JMP:
				so.target = uint64(int64(op.next) + op.in.Imm)
				so.planned = true
				next, nextKnown, viaCtrl = so.target, true, true
			case isa.CALL:
				so.target = uint64(int64(op.next) + op.in.Imm)
				so.planned = true
				callStack = append(callStack, op.next)
				next, nextKnown, viaCtrl = so.target, true, true
			case isa.JCC:
				so.target = uint64(int64(op.next) + op.in.Imm)
				tc, fc := cur.takenCnt, cur.fallCnt
				if tc == 0 && fc == 0 {
					// No edge profile: both directions side-exit.
					so.cont = contExit
					sb.ops = append(sb.ops, so)
					break walk
				}
				so.planned = tc >= fc
				if so.planned {
					next = so.target
				} else {
					next = op.next
				}
				nextKnown, viaCtrl = true, true
			case isa.RET:
				if len(callStack) == 0 {
					// Returning out of the trace: dynamic target, exit.
					so.cont = contExit
					sb.ops = append(sb.ops, so)
					break walk
				}
				// Call/return folding: this RET matches a CALL spliced
				// earlier, so the trace continues at its return address.
				// The executor side-exits if the guest's stack disagrees.
				so.target = callStack[len(callStack)-1]
				so.planned = true
				callStack = callStack[:len(callStack)-1]
				next, nextKnown, viaCtrl = so.target, true, true
			case isa.CALLR, isa.JTBL:
				// Dynamic target: always a trace exit.
				so.cont = contExit
				sb.ops = append(sb.ops, so)
				break walk
			}
			sb.ops = append(sb.ops, so)
			if nextKnown {
				break // block terminator reached
			}
		}

		if !nextKnown {
			// The block ended without a control op: at the page boundary
			// (fall through into the next page's block) or at a decode
			// error (stop; the fault surfaces via the block engine).
			last := cur.ops[len(cur.ops)-1]
			if last.next%mem.PageSize != 0 {
				break walk
			}
			next = last.next
		}

		if next == sb.head {
			if viaCtrl {
				sb.ops[len(sb.ops)-1].cont = contLoop
				loop = true
			}
			break walk
		}
		// Revisited blocks are spliced again (bounded by superMaxOps /
		// superMaxBlocks): an inner loop simply unrolls into the trace.
		cur = p.blocks[next] // nil (not yet decoded) ends the walk
	}

	// A trailing control op planned to continue has nothing to continue
	// into: demote it to a side exit.
	if len(sb.ops) > 0 {
		if last := &sb.ops[len(sb.ops)-1]; last.cont == contNext {
			switch last.in.Op {
			case isa.JMP, isa.JCC, isa.CALL, isa.RET:
				last.cont = contExit
			}
		}
	}

	// Only worth it when the trace extends past its head block or loops
	// back to it; otherwise the block engine already does the same work.
	if len(sb.ops) < 2 || (sb.blocks == 1 && !loop) {
		head.heat = 0
		return nil
	}

	p.planFetchAndRuns(sb)

	seen := make(map[uint64]bool, 2)
	for _, e := range sb.ops {
		pg := e.pc / mem.PageSize
		if !seen[pg] {
			seen[pg] = true
			sb.pages = append(sb.pages, pg)
		}
	}
	for _, pg := range sb.pages {
		p.superPg[pg] = append(p.superPg[pg], sb)
		p.noteCodePage(pg)
	}
	head.super = sb
	p.superFormed++
	return sb
}

// planFetchAndRuns precomputes the per-op fetch points (with their
// front-end fingerprints) and the pure-run lengths. An op is a fetch
// point iff it heads the trace, follows a planned-taken branch (which
// redirects fetch), or statically crosses a cache line; every other op
// is proven to sit on the line the core just fetched, where Fetch is a
// no-op that can be skipped outright.
func (p *Process) planFetchAndRuns(sb *superblock) {
	c := p.Threads[0].Core // geometry is config-wide; any core works
	for i := range sb.ops {
		e := &sb.ops[i]
		if i == 0 {
			e.fetch = true
		} else {
			prev := &sb.ops[i-1]
			redirect := false
			if prev.cont != contExit {
				switch prev.in.Op {
				case isa.JMP, isa.CALL, isa.RET:
					redirect = true
				case isa.JCC:
					redirect = prev.planned
				}
			}
			e.fetch = redirect || !c.SameFetchLine(prev.pc, e.pc)
		}
		if e.fetch {
			e.pl = c.PlanFetch(e.pc)
		}
	}
	for i := len(sb.ops) - 1; i >= 0; i-- {
		e := &sb.ops[i]
		if !pureOp(e.in.Op) {
			e.run = 0
			continue
		}
		// Runs extend across line-crossing fetch points: the executor
		// handles interior fetches per op inside the run (see execSuper),
		// so only non-pure ops break a run.
		r := uint16(1)
		if i+1 < len(sb.ops) {
			if nxt := &sb.ops[i+1]; nxt.run > 0 {
				r += nxt.run
			}
		}
		e.run = r
	}
	// Aggregate each run's front-end plan (FetchRunFast). Only div-free
	// runs qualify: a mid-run divide fault exits with the later ops —
	// and their fetches — unexecuted, which the up-front bulk charge
	// could not undo.
	for i := 0; i < len(sb.ops); i++ {
		e := &sb.ops[i]
		if e.run == 0 || (i > 0 && sb.ops[i-1].run > 0) {
			continue // not a run head
		}
		r := int(e.run)
		var pcs []uint64
		ok := true
		for j := i; j < i+r; j++ {
			if sb.ops[j].isDiv {
				ok = false
				break
			}
			if sb.ops[j].fetch {
				pcs = append(pcs, sb.ops[j].pc)
			}
		}
		if ok {
			e.fe = c.PlanFetchRun(pcs) // nil when not aggregable
		}
	}
}

// execSuper runs the trace from op index start until a side exit, the
// budget runs out, the thread faults, or the trace is invalidated under
// its own feet. It returns the number of completed instructions; t.PC
// is synced on every exit path. Event order is
// instruction-for-instruction identical to execBlock (and therefore
// Step); the only differences are skipped no-op Fetches and
// bulk-charged retires, both bit-exact by construction.
func (p *Process) execSuper(t *Thread, sb *superblock, budget, start int) int {
	c := t.Core
	n := 0
	ops := sb.ops
	i := start
	for n < budget {
		e := &ops[i]

		// Pure run: execute the streak's register effects (fetching
		// in-place at interior line crossings), then charge the whole
		// streak with one bulk retire. Hit fetches add no cycles, so
		// deferring the integer-only retires past them is bit-exact; a
		// fetch that needs the full path flushes the pending retires
		// first, because a miss can reach the DRAM model, which reads
		// Cycles() — the retired-instruction count must be current.
		if r := int(e.run); r > 0 {
			m := r
			if left := budget - n; m > left {
				m = left
			}
			run := ops[i : i+m]

			// Whole-run fast path: a full, div-free run whose lines are
			// all warm charges its entire front end in one FetchRunFast
			// call, so the op loop touches no model state at all until
			// the single bulk retire — O(1) model interactions for the
			// whole run. Truncated runs (budget) and runs with divider
			// ops (mid-run fault exits) take the per-op path below.
			if m == r && e.fe != nil && c.FetchRunFast(e.fe) {
				for j := range run {
					op := &run[j]
					in := &op.in
					switch in.Op {
					case isa.NOP:
					case isa.MOVI:
						t.SetReg(in.Rd, uint64(in.Imm))
					case isa.MOV:
						t.SetReg(in.Rd, t.Reg(in.Rs1))
					case isa.ADD:
						t.SetReg(in.Rd, t.Reg(in.Rs1)+t.Reg(in.Rs2))
					case isa.SUB:
						t.SetReg(in.Rd, t.Reg(in.Rs1)-t.Reg(in.Rs2))
					case isa.MUL:
						t.SetReg(in.Rd, t.Reg(in.Rs1)*t.Reg(in.Rs2))
					case isa.AND:
						t.SetReg(in.Rd, t.Reg(in.Rs1)&t.Reg(in.Rs2))
					case isa.OR:
						t.SetReg(in.Rd, t.Reg(in.Rs1)|t.Reg(in.Rs2))
					case isa.XOR:
						t.SetReg(in.Rd, t.Reg(in.Rs1)^t.Reg(in.Rs2))
					case isa.SHL:
						t.SetReg(in.Rd, t.Reg(in.Rs1)<<(t.Reg(in.Rs2)&63))
					case isa.SHR:
						t.SetReg(in.Rd, t.Reg(in.Rs1)>>(t.Reg(in.Rs2)&63))
					case isa.ADDI:
						t.SetReg(in.Rd, t.Reg(in.Rs1)+uint64(in.Imm))
					case isa.MULI:
						t.SetReg(in.Rd, t.Reg(in.Rs1)*uint64(in.Imm))
					case isa.ANDI:
						t.SetReg(in.Rd, t.Reg(in.Rs1)&uint64(in.Imm))
					case isa.ORI:
						t.SetReg(in.Rd, t.Reg(in.Rs1)|uint64(in.Imm))
					case isa.XORI:
						t.SetReg(in.Rd, t.Reg(in.Rs1)^uint64(in.Imm))
					case isa.SHLI:
						t.SetReg(in.Rd, t.Reg(in.Rs1)<<(uint64(in.Imm)&63))
					case isa.SHRI:
						t.SetReg(in.Rd, t.Reg(in.Rs1)>>(uint64(in.Imm)&63))
					case isa.CMP:
						t.CmpVal = int64(t.Reg(in.Rs1)) - int64(t.Reg(in.Rs2))
					case isa.CMPI:
						t.CmpVal = int64(t.Reg(in.Rs1)) - in.Imm
					default:
						// DIV/MOD are formation-excluded from aggregated
						// runs; anything else is a formation bug.
						c.RetireBulk(uint64(j), 0)
						t.PC = op.pc
						p.faultThread(t, fmt.Errorf("proc: unexpected op %v in aggregated run at PC %#x", in.Op, op.pc))
						return n + j
					}
				}
				c.RetireBulk(uint64(m), 0)
				n += m
				i += m
				if i == len(ops) {
					t.PC = ops[i-1].next
					return n
				}
				continue
			}

			var divs uint64
			charged := 0
			for j := range run {
				op := &run[j]
				if op.fetch && !c.FetchFast(&op.pl) {
					c.RetireBulk(uint64(j-charged), divs)
					charged, divs = j, 0
					c.Fetch(op.pc)
				}
				in := &op.in
				switch in.Op {
				case isa.NOP:
				case isa.MOVI:
					t.SetReg(in.Rd, uint64(in.Imm))
				case isa.MOV:
					t.SetReg(in.Rd, t.Reg(in.Rs1))
				case isa.ADD:
					t.SetReg(in.Rd, t.Reg(in.Rs1)+t.Reg(in.Rs2))
				case isa.SUB:
					t.SetReg(in.Rd, t.Reg(in.Rs1)-t.Reg(in.Rs2))
				case isa.MUL:
					t.SetReg(in.Rd, t.Reg(in.Rs1)*t.Reg(in.Rs2))
				case isa.DIV:
					d := int64(t.Reg(in.Rs2))
					if d == 0 {
						c.RetireBulk(uint64(j-charged), divs)
						t.PC = op.pc
						p.faultThread(t, fmt.Errorf("proc: divide by zero at PC %#x", op.pc))
						return n + j
					}
					t.SetReg(in.Rd, uint64(int64(t.Reg(in.Rs1))/d))
					divs++
				case isa.MOD:
					d := int64(t.Reg(in.Rs2))
					if d == 0 {
						c.RetireBulk(uint64(j-charged), divs)
						t.PC = op.pc
						p.faultThread(t, fmt.Errorf("proc: modulo by zero at PC %#x", op.pc))
						return n + j
					}
					t.SetReg(in.Rd, uint64(int64(t.Reg(in.Rs1))%d))
					divs++
				case isa.AND:
					t.SetReg(in.Rd, t.Reg(in.Rs1)&t.Reg(in.Rs2))
				case isa.OR:
					t.SetReg(in.Rd, t.Reg(in.Rs1)|t.Reg(in.Rs2))
				case isa.XOR:
					t.SetReg(in.Rd, t.Reg(in.Rs1)^t.Reg(in.Rs2))
				case isa.SHL:
					t.SetReg(in.Rd, t.Reg(in.Rs1)<<(t.Reg(in.Rs2)&63))
				case isa.SHR:
					t.SetReg(in.Rd, t.Reg(in.Rs1)>>(t.Reg(in.Rs2)&63))
				case isa.ADDI:
					t.SetReg(in.Rd, t.Reg(in.Rs1)+uint64(in.Imm))
				case isa.MULI:
					t.SetReg(in.Rd, t.Reg(in.Rs1)*uint64(in.Imm))
				case isa.ANDI:
					t.SetReg(in.Rd, t.Reg(in.Rs1)&uint64(in.Imm))
				case isa.ORI:
					t.SetReg(in.Rd, t.Reg(in.Rs1)|uint64(in.Imm))
				case isa.XORI:
					t.SetReg(in.Rd, t.Reg(in.Rs1)^uint64(in.Imm))
				case isa.SHLI:
					t.SetReg(in.Rd, t.Reg(in.Rs1)<<(uint64(in.Imm)&63))
				case isa.SHRI:
					t.SetReg(in.Rd, t.Reg(in.Rs1)>>(uint64(in.Imm)&63))
				case isa.CMP:
					t.CmpVal = int64(t.Reg(in.Rs1)) - int64(t.Reg(in.Rs2))
				case isa.CMPI:
					t.CmpVal = int64(t.Reg(in.Rs1)) - in.Imm
				}
			}
			c.RetireBulk(uint64(m-charged), divs)
			n += m
			i += m
			if i == len(ops) {
				t.PC = ops[i-1].next
				return n
			}
			continue
		}

		if e.fetch && !c.FetchFast(&e.pl) {
			c.Fetch(e.pc)
		}
		in := &e.in
		switch in.Op {
		case isa.LD:
			addr := t.Reg(in.Rs1) + uint64(in.Imm)
			if !c.MemFast(addr) {
				c.Mem(addr, false)
			}
			t.SetReg(in.Rd, p.Mem.ReadWord(addr))
		case isa.LDB:
			addr := t.Reg(in.Rs1) + uint64(in.Imm)
			if !c.MemFast(addr) {
				c.Mem(addr, false)
			}
			t.SetReg(in.Rd, uint64(p.Mem.LoadByte(addr)))
		case isa.LEAVE:
			fp := t.Regs[isa.FP]
			if !c.MemFast(fp) {
				c.Mem(fp, false)
			}
			t.Regs[isa.FP] = p.Mem.ReadWord(fp)
			t.Regs[isa.SP] = fp + 8
		case isa.POP:
			sp := t.Regs[isa.SP]
			if !c.MemFast(sp) {
				c.Mem(sp, false)
			}
			t.SetReg(in.Rd, p.Mem.ReadWord(sp))
			t.Regs[isa.SP] = sp + 8

		case isa.ST:
			addr := t.Reg(in.Rs1) + uint64(in.Imm)
			if !c.MemFast(addr) {
				c.Mem(addr, true)
			}
			p.Mem.WriteWord(addr, t.Reg(in.Rs2))
			c.Retire(false)
			n++
			if !sb.valid {
				t.PC = e.next
				return n
			}
			i++
			if i == len(ops) {
				t.PC = e.next
				return n
			}
			continue
		case isa.STB:
			addr := t.Reg(in.Rs1) + uint64(in.Imm)
			if !c.MemFast(addr) {
				c.Mem(addr, true)
			}
			p.Mem.StoreByte(addr, byte(t.Reg(in.Rs2)))
			c.Retire(false)
			n++
			if !sb.valid {
				t.PC = e.next
				return n
			}
			i++
			if i == len(ops) {
				t.PC = e.next
				return n
			}
			continue
		case isa.PUSH:
			sp := t.Regs[isa.SP] - 8
			t.Regs[isa.SP] = sp
			if !c.MemFast(sp) {
				c.Mem(sp, true)
			}
			p.Mem.WriteWord(sp, t.Reg(in.Rs1))
			c.Retire(false)
			n++
			if !sb.valid {
				t.PC = e.next
				return n
			}
			i++
			if i == len(ops) {
				t.PC = e.next
				return n
			}
			continue
		case isa.ENTER:
			sp := t.Regs[isa.SP] - 8
			if !c.MemFast(sp) {
				c.Mem(sp, true)
			}
			p.Mem.WriteWord(sp, t.Regs[isa.FP])
			t.Regs[isa.FP] = sp
			t.Regs[isa.SP] = sp - uint64(in.Imm)
			c.Retire(false)
			n++
			if !sb.valid {
				t.PC = e.next
				return n
			}
			i++
			if i == len(ops) {
				t.PC = e.next
				return n
			}
			continue

		case isa.FPTR:
			v := uint64(in.Imm)
			if p.fptrHook != nil {
				// Arbitrary code: re-check validity like a store.
				v = p.fptrHook(v)
				c.AddStall(p.opts.FuncPtrHookCost, cpu.BucketRetiring)
				t.SetReg(in.Rd, v)
				c.Retire(false)
				n++
				if !sb.valid {
					t.PC = e.next
					return n
				}
				i++
				if i == len(ops) {
					t.PC = e.next
					return n
				}
				continue
			}
			t.SetReg(in.Rd, v)

		case isa.JMP:
			c.Retire(false)
			if !c.BranchJumpFast(e.pc, e.target) {
				c.Branch(e.pc, e.target, true, cpu.BrJump, 0)
			}
			p.dbiTax(c, false)
			n++
			switch e.cont {
			case contLoop:
				i = 0
			case contNext:
				i++
			default:
				t.PC = e.target
				return n
			}
			continue
		case isa.JCC:
			taken := in.Cond.Holds(t.CmpVal)
			target := e.next
			if taken {
				target = e.target
			}
			c.Retire(false)
			if taken {
				c.Branch(e.pc, target, true, cpu.BrCond, 0)
				p.dbiTax(c, false)
			} else {
				c.BranchCondNotTakenFast(e.pc)
			}
			n++
			if taken != e.planned || e.cont == contExit {
				// Side exit: the trace's plan ends here; fall back to the
				// block cache at the actual target.
				t.PC = target
				return n
			}
			if e.cont == contLoop {
				i = 0
			} else {
				i++
			}
			continue
		case isa.CALL:
			sp := t.Regs[isa.SP] - 8
			t.Regs[isa.SP] = sp
			if !c.MemFast(sp) {
				c.Mem(sp, true)
			}
			p.Mem.WriteWord(sp, e.next)
			c.Retire(false)
			if !c.BranchCallFast(e.pc, e.target, e.next) {
				c.Branch(e.pc, e.target, true, cpu.BrCall, e.next)
			}
			p.dbiTax(c, false)
			n++
			// The return-address push is a store: it can invalidate the
			// trace (a stack aimed at a code page), so re-check.
			if e.cont == contExit || !sb.valid {
				t.PC = e.target
				return n
			}
			if e.cont == contLoop {
				i = 0
			} else {
				i++
			}
			continue
		case isa.CALLR:
			target := t.Reg(in.Rs1)
			sp := t.Regs[isa.SP] - 8
			t.Regs[isa.SP] = sp
			if !c.MemFast(sp) {
				c.Mem(sp, true)
			}
			p.Mem.WriteWord(sp, e.next)
			c.Retire(false)
			c.Branch(e.pc, target, true, cpu.BrCallInd, e.next)
			p.dbiTax(c, true)
			t.PC = target
			return n + 1
		case isa.RET:
			sp := t.Regs[isa.SP]
			if !c.MemFast(sp) {
				c.Mem(sp, false)
			}
			target := p.Mem.ReadWord(sp)
			t.Regs[isa.SP] = sp + 8
			c.Retire(false)
			if !c.BranchRetFast(e.pc, target) {
				c.Branch(e.pc, target, true, cpu.BrRet, 0)
			}
			p.dbiTax(c, true)
			n++
			// Call/return folding: continue in the trace only if the guest
			// really returns where the spliced CALL said it would.
			if e.cont == contExit || target != e.target {
				t.PC = target
				return n
			}
			if e.cont == contLoop {
				i = 0
			} else {
				i++
			}
			continue
		case isa.JTBL:
			idx := t.Reg(in.Rs1)
			slot := uint64(in.Imm) + idx*8
			if !c.MemFast(slot) {
				c.Mem(slot, false)
			}
			target := p.Mem.ReadWord(slot)
			c.Retire(false)
			c.Branch(e.pc, target, true, cpu.BrJumpTable, 0)
			p.dbiTax(c, true)
			t.PC = target
			return n + 1

		default:
			// Formation never includes SYS, HALT, or undecodable ops.
			t.PC = e.pc
			p.faultThread(t, fmt.Errorf("proc: unexpected op %v in superblock at PC %#x", in.Op, e.pc))
			return n
		}

		// Shared tail for the load-class ops (LD/LDB/LEAVE/POP and
		// hook-less FPTR): nothing here can invalidate the trace.
		c.Retire(false)
		n++
		i++
		if i == len(ops) {
			t.PC = e.next
			return n
		}
	}
	// Budget exhausted mid-trace: record the exact op so the next
	// quantum re-enters the trace here instead of re-dispatching through
	// the block map (which would decode a spurious block at this
	// mid-trace PC).
	t.PC = ops[i].pc
	t.resumeSB, t.resumeIdx = sb, i
	return n
}
