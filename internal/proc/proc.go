// Package proc implements the simulated process: an address space loaded
// from an obj.Binary, threads with in-memory stacks, an interpreter for
// the ISA that reports timing events to per-thread cpu.Cores, a
// round-robin scheduler, and the syscall surface workloads use to receive
// requests and publish results.
//
// The process also exposes the two hook points OCOLOS relies on:
//
//   - SetFuncPtrHook installs the wrapFuncPtrCreation analog (§IV-C2):
//     every FPTR instruction's result value passes through the hook.
//   - The debugger facade used by internal/ptrace: Pause/Resume, direct
//     memory access, and register access.
package proc

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obj"
)

// Memory layout constants for loader-managed regions.
const (
	HeapBase  = 0x4000_0000
	StackTop  = 0x7000_0000_0000
	StackSize = 1 << 20 // per thread
	StackGap  = 1 << 21 // distance between thread stacks
)

// SyscallHandler services SYS instructions. It may read and write the
// calling thread's registers and the process memory. Returning an error
// faults the thread.
type SyscallHandler interface {
	Syscall(p *Process, t *Thread, num int64) error
}

// SyscallFunc adapts a function to the SyscallHandler interface.
type SyscallFunc func(p *Process, t *Thread, num int64) error

// Syscall implements SyscallHandler.
func (f SyscallFunc) Syscall(p *Process, t *Thread, num int64) error { return f(p, t, num) }

// Options configures process creation.
type Options struct {
	Threads int         // number of threads (each gets its own core)
	Config  *cpu.Config // nil = cpu.DefaultConfig()
	Handler SyscallHandler

	// SyscallCost is the kernel entry/exit overhead in cycles.
	SyscallCost float64
	// FuncPtrHookCost is charged per FPTR when a hook is installed — the
	// run-time cost of the wrapFuncPtrCreation instrumentation.
	FuncPtrHookCost float64

	// DBI emulates running under a dynamic binary instrumentation
	// framework (Pin/DynamoRIO, §I): translated code runs near-natively,
	// but every direct control transfer pays a small chaining cost and
	// every indirect transfer (indirect call, return, jump table) pays a
	// code-cache lookup. OCOLOS's whole point is avoiding this recurring
	// cost; the "dbi" experiment quantifies the difference.
	DBI bool

	// SchedQuantum, when set, overrides the fixed scheduler quantum per
	// pick: it receives the thread ID and the proposed quantum (the
	// Quantum constant) and returns the instruction budget to run. The
	// default nil keeps the deterministic round-robin; chaos tests and
	// the record/replay layer inject perturbed or journal-fed sources.
	SchedQuantum func(tid, proposed int) int

	// DisableSuperblocks turns off the superblock trace engine
	// (super.go), pinning execution to the basic-block cache. Timing is
	// identical either way (the trace engine is cycle-exact); the switch
	// exists for benchmarking the engines against each other and for
	// bisecting engine bugs.
	DisableSuperblocks bool
}

// DBI cost model (cycles), roughly Pin-like: direct branches are chained
// after warmup, indirect transfers hash into the code cache every time.
const (
	dbiDirectCost   = 1.5
	dbiIndirectCost = 25
)

func (o *Options) defaults() {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.Config == nil {
		o.Config = cpu.DefaultConfig()
	}
	if o.SyscallCost == 0 {
		o.SyscallCost = 150
	}
	if o.FuncPtrHookCost == 0 {
		o.FuncPtrHookCost = 12
	}
}

// Process is a running simulated process.
type Process struct {
	Bin     *obj.Binary
	Mem     *mem.AddressSpace
	Threads []*Thread
	Shared  *cpu.Shared
	Cfg     *cpu.Config

	opts    Options
	handler SyscallHandler

	fptrHook func(uint64) uint64

	heapCursor uint64
	paused     bool
	fault      error

	// regions are address windows mapped into the target by the debugger
	// agent (the mmap analog OCOLOS's LD_PRELOAD library uses to create
	// each code version's home). Together with the binary image, heap, and
	// thread stacks they define which addresses the ptrace layer will
	// touch; everything else is reported as unmapped.
	regions []Region

	dcache   map[uint64]*decodePage
	lastPage *decodePage
	lastIdx  uint64

	// Basic-block cache (the hot execution path; see docs/perf.md).
	// blocks maps a start PC to its decoded straight-line run, blockPg
	// indexes blocks by code page for invalidation, and loCodePg/hiCodePg
	// bound the pages holding any decoded state so the write watch can
	// dismiss stack and heap stores without a map lookup.
	blocks   map[uint64]*basicBlock
	blockPg  map[uint64][]*basicBlock
	loCodePg uint64
	hiCodePg uint64

	// Superblock trace cache (super.go). superPg indexes every trace by
	// each constituent code page — traces span pages, so one store can
	// invalidate a trace registered on several pages.
	superPg       map[uint64][]*superblock
	supersEnabled bool
	superFormed   uint64
	superInval    uint64
	superInsts    uint64

	// SampleHook, if set, runs after every scheduler quantum with the
	// thread that just ran; internal/perf uses it to poll LBR sample
	// deadlines. Prefer AddSampleHook, which composes: this field is kept
	// for callers that own the only hook.
	SampleHook func(t *Thread)

	sampleHooks []*sampleHook
}

type sampleHook struct{ fn func(t *Thread) }

type decodePage struct {
	insts [mem.PageSize / isa.InstBytes]isa.Inst
	valid [mem.PageSize / isa.InstBytes]bool
}

// Load creates a process from a binary: sections are copied into a fresh
// address space, threads are created halted at the entry function with
// their thread index in R0.
func Load(bin *obj.Binary, opts Options) (*Process, error) {
	opts.defaults()
	if bin.Entry == 0 {
		return nil, fmt.Errorf("proc: binary %s has no entry point", bin.Name)
	}
	p := &Process{
		Bin:        bin,
		Mem:        mem.NewAddressSpace(),
		Shared:     cpu.NewShared(opts.Config),
		Cfg:        opts.Config,
		opts:       opts,
		handler:    opts.Handler,
		heapCursor: HeapBase,
		dcache:     make(map[uint64]*decodePage),
		blocks:     make(map[uint64]*basicBlock),
		blockPg:    make(map[uint64][]*basicBlock),
		superPg:    make(map[uint64][]*superblock),
		loCodePg:   ^uint64(0),
	}
	p.supersEnabled = !opts.DisableSuperblocks
	for _, s := range bin.Sections {
		writeSparse(p.Mem, s.Addr, s.Data)
	}
	p.Mem.SetWriteWatch(p.invalidate)

	for i := 0; i < opts.Threads; i++ {
		p.StartThread(bin.Entry)
	}
	return p, nil
}

// StartThread creates a new runnable thread at pc with its own core and
// stack and the thread index in R0, appends it to p.Threads, and returns
// it. The scheduler picks it up on its next pass; perf recorders attached
// earlier arm it lazily at its first quantum.
func (p *Process) StartThread(pc uint64) *Thread {
	id := len(p.Threads)
	stackHi := uint64(StackTop - id*StackGap)
	t := &Thread{
		ID:      id,
		PC:      pc,
		Core:    cpu.NewCore(id, p.Cfg, p.Shared),
		StackHi: stackHi,
		StackLo: stackHi - StackSize,
		proc:    p,
	}
	t.Regs[isa.SP] = stackHi
	t.Regs[isa.R0] = uint64(id)
	p.Threads = append(p.Threads, t)
	return t
}

// writeSparse copies section bytes into memory, skipping page-sized
// all-zero runs so huge zero-initialized data sections (document stores,
// scan arrays) do not inflate RSS before the program touches them — the
// way a real loader maps BSS.
func writeSparse(m *mem.AddressSpace, addr uint64, data []byte) {
	const chunk = mem.PageSize
	for off := 0; off < len(data); {
		n := chunk - int(addr+uint64(off))%chunk
		if off+n > len(data) {
			n = len(data) - off
		}
		piece := data[off : off+n]
		if !allZero(piece) {
			m.Write(addr+uint64(off), piece)
		}
		off += n
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// invalidate drops decoded instructions and basic blocks covering a
// written range. The write watch calls this on *every* store — stack
// pushes included — so the common case must be a cheap dismissal: any
// range outside [loCodePg, hiCodePg] (the pages holding decoded state)
// returns without touching a map. Huge in-range spans (a garbage-collected
// code region) walk the caches instead of the range.
func (p *Process) invalidate(addr uint64, n int) {
	first := addr / mem.PageSize
	last := (addr + uint64(n) - 1) / mem.PageSize
	if last < p.loCodePg || first > p.hiCodePg {
		return
	}
	if last-first+1 > uint64(len(p.dcache))+uint64(len(p.blockPg))+uint64(len(p.superPg)) {
		for pg := range p.dcache {
			if pg >= first && pg <= last {
				delete(p.dcache, pg)
			}
		}
		for pg := range p.blockPg {
			if pg >= first && pg <= last {
				p.dropBlocks(pg)
			}
		}
		for pg := range p.superPg {
			if pg >= first && pg <= last {
				p.dropSupers(pg)
			}
		}
	} else {
		for pg := first; pg <= last; pg++ {
			delete(p.dcache, pg)
			p.dropBlocks(pg)
			p.dropSupers(pg)
		}
	}
	p.lastPage = nil
}

// dropBlocks invalidates every basic block decoded from the given page.
// Blocks are marked invalid (the executor checks the flag after every
// instruction, so a block invalidated by its own store stops immediately)
// and unregistered so the next lookup rebuilds from current bytes.
func (p *Process) dropBlocks(pg uint64) {
	list, ok := p.blockPg[pg]
	if !ok {
		return
	}
	for _, b := range list {
		b.valid = false
		delete(p.blocks, b.start)
	}
	delete(p.blockPg, pg)
}

// dropSupers invalidates every superblock with a constituent op on the
// given page. Traces span pages, so a trace invalidated here may still
// sit (now invalid) in other pages' lists; entries are skipped on later
// drops and the head block's cached pointer is cleared lazily at
// dispatch. The executor checks sb.valid after every instruction that
// can store, so a trace overwriting any of its own pages stops at the
// next instruction boundary.
func (p *Process) dropSupers(pg uint64) {
	list, ok := p.superPg[pg]
	if !ok {
		return
	}
	for _, sb := range list {
		if sb.valid {
			sb.valid = false
			p.superInval++
		}
	}
	delete(p.superPg, pg)
}

// noteCodePage widens the decoded-state page bounds used by invalidate's
// fast dismissal. Bounds never shrink; that only costs false positives.
func (p *Process) noteCodePage(pg uint64) {
	if pg < p.loCodePg {
		p.loCodePg = pg
	}
	if pg > p.hiCodePg {
		p.hiCodePg = pg
	}
}

// decode fetches the decoded instruction at addr, caching per page.
func (p *Process) decode(addr uint64) (isa.Inst, error) {
	pg := addr / mem.PageSize
	dp := p.lastPage
	if dp == nil || pg != p.lastIdx {
		dp = p.dcache[pg]
		if dp == nil {
			dp = new(decodePage)
			p.dcache[pg] = dp
			p.noteCodePage(pg)
		}
		p.lastPage, p.lastIdx = dp, pg
	}
	slot := (addr % mem.PageSize) / isa.InstBytes
	if addr%isa.InstBytes != 0 {
		return isa.Inst{}, fmt.Errorf("proc: misaligned PC %#x", addr)
	}
	if dp.valid[slot] {
		return dp.insts[slot], nil
	}
	in, err := isa.Decode(p.Mem.CodeSlice(addr))
	if err != nil {
		return isa.Inst{}, fmt.Errorf("proc: at PC %#x: %w", addr, err)
	}
	dp.insts[slot] = in
	dp.valid[slot] = true
	return in, nil
}

// Region is one agent-mapped address window.
type Region struct {
	Addr, Size uint64
}

// End returns the exclusive end of the region.
func (r Region) End() uint64 { return r.Addr + r.Size }

// MapRegion registers [addr, addr+size) as a valid target window (the
// agent's mmap). Pages are still allocated lazily on first write.
func (p *Process) MapRegion(addr, size uint64) {
	if size == 0 {
		return
	}
	p.regions = append(p.regions, Region{Addr: addr, Size: size})
}

// UnmapRegion removes every registered region fully contained in
// [addr, addr+size) and returns the removed set (the agent's munmap; the
// transaction journal re-registers them on rollback). Page contents are
// not touched — callers release memory through Mem.Unmap.
func (p *Process) UnmapRegion(addr, size uint64) []Region {
	end := addr + size
	var removed []Region
	kept := p.regions[:0]
	for _, r := range p.regions {
		if r.Addr >= addr && r.End() <= end {
			removed = append(removed, r)
		} else {
			kept = append(kept, r)
		}
	}
	p.regions = kept
	return removed
}

// Regions returns the agent-mapped windows in registration order.
func (p *Process) Regions() []Region { return append([]Region(nil), p.regions...) }

// RangeMapped reports whether every byte of [addr, addr+n) falls inside
// the target's mapped image: a binary section, the heap, a thread stack,
// or an agent-mapped region. The ptrace layer refuses to read or write
// through anything else, making the debugger a real error boundary.
func (p *Process) RangeMapped(addr, n uint64) bool {
	if n == 0 {
		return true
	}
	end := addr + n
	if end < addr {
		return false // wrapped
	}
	for addr < end {
		next, ok := p.coveredUntil(addr)
		if !ok {
			return false
		}
		addr = next
	}
	return true
}

// coveredUntil returns the exclusive end of a mapped interval containing
// addr, or ok=false when addr is unmapped.
func (p *Process) coveredUntil(addr uint64) (uint64, bool) {
	for _, s := range p.Bin.Sections {
		if addr >= s.Addr && addr < s.End() {
			return s.End(), true
		}
	}
	if addr >= HeapBase && addr < p.heapCursor {
		return p.heapCursor, true
	}
	for _, t := range p.Threads {
		if addr >= t.StackLo && addr < t.StackHi {
			return t.StackHi, true
		}
	}
	for _, r := range p.regions {
		if addr >= r.Addr && addr < r.End() {
			return r.End(), true
		}
	}
	return 0, false
}

// SetFuncPtrHook installs (or clears, with nil) the function-pointer
// creation hook. While installed, every FPTR result is translated by fn
// and each creation site pays Options.FuncPtrHookCost cycles.
func (p *Process) SetFuncPtrHook(fn func(uint64) uint64) { p.fptrHook = fn }

// FuncPtrHook returns the installed hook (nil if none).
func (p *Process) FuncPtrHook() func(uint64) uint64 { return p.fptrHook }

// Alloc bump-allocates n bytes of heap, 16-byte aligned.
func (p *Process) Alloc(n uint64) uint64 {
	addr := (p.heapCursor + 15) &^ 15
	p.heapCursor = addr + n
	return addr
}

// Pause stops the scheduler (ptrace attach). Running Run* calls return at
// the next quantum boundary, leaving all threads at instruction
// boundaries.
func (p *Process) Pause() { p.paused = true }

// Resume clears the pause flag.
func (p *Process) Resume() { p.paused = false }

// Paused reports whether the process is stopped.
func (p *Process) Paused() bool { return p.paused }

// Fault returns the first thread fault, if any.
func (p *Process) Fault() error { return p.fault }

// Halted reports whether every thread has halted.
func (p *Process) Halted() bool {
	for _, t := range p.Threads {
		if !t.Halted {
			return false
		}
	}
	return true
}

// Stats aggregates counters across all threads' cores.
func (p *Process) Stats() cpu.Stats {
	var s cpu.Stats
	for _, t := range p.Threads {
		s.Add(t.Core.StatsSnapshot())
	}
	return s
}

// AddSampleHook registers fn to run after every scheduler quantum and
// returns a function that removes exactly this registration — safe no
// matter what hooks were added or removed in between, unlike saving and
// restoring the SampleHook field.
func (p *Process) AddSampleHook(fn func(t *Thread)) (remove func()) {
	h := &sampleHook{fn: fn}
	p.sampleHooks = append(p.sampleHooks, h)
	return func() {
		for i, e := range p.sampleHooks {
			if e == h {
				// Copy-on-write splice: a hook removing itself while
				// sample() iterates must not disturb the live slice.
				p.sampleHooks = append(p.sampleHooks[:i:i], p.sampleHooks[i+1:]...)
				return
			}
		}
	}
}

// sample dispatches the end-of-quantum hooks: the legacy single-owner
// field first, then every registered hook in registration order.
func (p *Process) sample(t *Thread) {
	if p.SampleHook != nil {
		p.SampleHook(t)
	}
	for _, h := range p.sampleHooks {
		h.fn(t)
	}
}

// Seconds returns the elapsed simulated time: the maximum across cores
// (cores advance in near-lockstep under the round-robin scheduler).
func (p *Process) Seconds() float64 {
	var max float64
	for _, t := range p.Threads {
		if s := t.Core.Seconds(); s > max {
			max = s
		}
	}
	return max
}

// MaxRSS returns the peak resident set size of the address space.
func (p *Process) MaxRSS() uint64 { return p.Mem.MaxResidentBytes() }
