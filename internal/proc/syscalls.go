package proc

// Canonical syscall numbers shared by the workloads and their drivers.
// The semantics live in each workload's SyscallHandler; these constants
// only fix the numbering so generated code and drivers agree.
const (
	// SysRecv asks the driver for the next request. Convention: R0 holds a
	// buffer address, R1 its capacity; the driver writes the request bytes
	// and returns the length in R0 (0 = no more work, the serving loop
	// exits).
	SysRecv = 1

	// SysSend reports a completed request; R0 carries the response value.
	// Drivers timestamp completions here for throughput and tail latency.
	SysSend = 2

	// SysNow returns the current core cycle count in R0.
	SysNow = 3

	// SysAlloc allocates R0 bytes of heap; returns the address in R0.
	SysAlloc = 4

	// SysEmit publishes a result value (R0) to the driver; used by batch
	// workloads (rtlsim, compilersim) to report outputs for verification.
	SysEmit = 5
)

// NowSyscall implements the SysNow convention for any handler to reuse.
func NowSyscall(t *Thread) {
	t.Regs[0] = uint64(t.Core.Cycles())
}

// AllocSyscall implements the SysAlloc convention.
func AllocSyscall(p *Process, t *Thread) {
	t.Regs[0] = p.Alloc(t.Regs[0])
}
