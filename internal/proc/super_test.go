package proc

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/mem"
)

// hotLoopProgram builds a loop that runs far past the trace-formation
// threshold: sum += (i&1023) < 700 ? 3 : 5 over 4000 iterations. The
// inner conditional is biased but flips direction every few hundred
// iterations, so a formed trace takes planned-direction iterations and
// side exits on the minority direction.
func hotLoopProgram() *build.ProgramBuilder {
	p := build.NewProgram("hotloop")
	p.Global("sum", 8)
	f := p.Func("main")
	f.MovI(isa.R1, 0) // i
	f.MovI(isa.R2, 0) // sum
	f.While(func() { f.CmpI(isa.R1, 4000) }, isa.LT, func() {
		f.AndI(isa.R3, isa.R1, 1023)
		f.CmpI(isa.R3, 700)
		f.If(isa.LT, func() { f.AddI(isa.R2, isa.R2, 3) }, func() { f.AddI(isa.R2, isa.R2, 5) })
		f.AddI(isa.R1, isa.R1, 1)
	})
	f.LoadGlobalAddr(isa.R3, "sum")
	f.St(isa.R3, 0, isa.R2)
	f.Halt()
	p.SetEntry("main")
	return p
}

// TestSuperblockFormationAndSideExits: the hot loop forms traces,
// retires instructions inside them, side exits when the biased branch
// flips, and produces exactly the architectural result and cycle
// accounting of the block engine with traces disabled.
func TestSuperblockFormationAndSideExits(t *testing.T) {
	p := hotLoopProgram()
	bin := assembleOrDie(t, p)

	pr := loadOrDie(t, bin, Options{})
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	sb := pr.SuperblockStats()
	if sb.Formed == 0 || sb.Insts == 0 {
		t.Fatalf("trace engine idle on a hot loop: %+v", sb)
	}

	ref := loadOrDie(t, bin, Options{DisableSuperblocks: true})
	ref.RunUntilHalt(0)
	if err := ref.Fault(); err != nil {
		t.Fatal(err)
	}
	if rs := ref.SuperblockStats(); rs.Formed != 0 || rs.Insts != 0 {
		t.Fatalf("DisableSuperblocks still formed traces: %+v", rs)
	}

	syms := asm.DataSymbols(mustProg(t, p), asm.Options{})
	const want = 2800*3 + 1200*5
	if got := pr.Mem.ReadWord(syms["sum"]); got != want {
		t.Errorf("super sum = %d, want %d", got, want)
	}
	if got := ref.Mem.ReadWord(syms["sum"]); got != want {
		t.Errorf("block sum = %d, want %d", got, want)
	}
	if a, b := pr.Stats(), ref.Stats(); a != b {
		t.Errorf("cycle accounting diverged:\nsuper: %+v\nblock: %+v", a, b)
	}
}

// TestSuperblockSelfModifyingStore: a store executed from inside a
// superblock into one of the trace's own code pages must invalidate the
// trace and take effect at the next instruction boundary — exactly where
// the Step reference would first see the new bytes. The loop patches the
// immediate of a callee's MOVI every iteration (same value before
// iteration 500, a new one after) and then calls it, so any engine that
// keeps executing a stale decoded trace past the store is caught by the
// architectural sum, and any accounting drift by the stats comparison.
func TestSuperblockSelfModifyingStore(t *testing.T) {
	p := build.NewProgram("smcsuper")
	p.Global("sum", 8)
	m := p.Func("main")
	m.FuncPtr(isa.R6, "victim")
	m.AddI(isa.R7, isa.R6, 8) // imm word of victim's MOVI
	m.MovI(isa.R8, 500)
	m.MovI(isa.R1, 0) // i
	m.MovI(isa.R2, 0) // sum
	m.While(func() { m.CmpI(isa.R1, 800) }, isa.LT, func() {
		m.Div(isa.R9, isa.R1, isa.R8) // 0 while i < 500, then 1
		m.MulI(isa.R9, isa.R9, 111)
		m.AddI(isa.R9, isa.R9, 111) // 111 or 222
		m.St(isa.R7, 0, isa.R9)     // patch the callee's immediate
		m.Call("victim")            // must observe the patched bytes
		m.Add(isa.R2, isa.R2, isa.R5)
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.LoadGlobalAddr(isa.R3, "sum")
	m.St(isa.R3, 0, isa.R2)
	m.Halt()
	// Push victim onto its own page so formed traces span two code pages
	// and the write watch must track multi-page constituents.
	pad := p.Func("pad")
	pad.PadCode(mem.PageSize / isa.InstBytes)
	pad.Ret()
	v := p.Func("victim")
	v.MovI(isa.R5, 111)
	v.Ret()
	p.SetEntry("main")
	bin := assembleOrDie(t, p)

	pr := loadOrDie(t, bin, Options{})
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	syms := asm.DataSymbols(mustProg(t, p), asm.Options{})
	const want = 500*111 + 300*222
	if got := pr.Mem.ReadWord(syms["sum"]); got != want {
		t.Errorf("sum = %d, want %d (stale decoded trace survived a store?)", got, want)
	}
	sb := pr.SuperblockStats()
	if sb.Formed == 0 {
		t.Fatalf("no traces formed on a hot self-patching loop: %+v", sb)
	}
	if sb.Invalidated == 0 {
		t.Errorf("stores into trace pages never invalidated a trace: %+v", sb)
	}

	ref := loadOrDie(t, bin, Options{DisableSuperblocks: true})
	ref.RunUntilHalt(0)
	if err := ref.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := ref.Mem.ReadWord(syms["sum"]); got != want {
		t.Errorf("block-engine sum = %d, want %d", got, want)
	}
	if a, b := pr.Stats(), ref.Stats(); a != b {
		t.Errorf("cycle accounting diverged:\nsuper: %+v\nblock: %+v", a, b)
	}
}

// TestRunUntilHaltNeverOvershoots: the maxInst cap is exact. Each pick's
// budget must be clamped to the remaining allowance; the historical bug
// handed every thread a full quantum and only compared totals between
// rounds, overshooting by up to Quantum-1 (times threads) instructions.
func TestRunUntilHaltNeverOvershoots(t *testing.T) {
	prog := func() *build.ProgramBuilder {
		p := build.NewProgram("spin")
		f := p.Func("main")
		// R1 (the counter) is deliberately not initialized: registers
		// start at zero, and the sliced-run case below shortens the spin
		// by presetting it before the first quantum.
		f.While(func() { f.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
			f.AddI(isa.R1, isa.R1, 1)
		})
		f.Halt()
		p.SetEntry("main")
		return p
	}
	bin := assembleOrDie(t, prog())

	for _, threads := range []int{1, 3} {
		for _, max := range []uint64{1, 100, Quantum - 1, Quantum, Quantum + 1, 1000, 12345} {
			pr := loadOrDie(t, bin, Options{Threads: threads})
			if n := pr.RunUntilHalt(max); n != max {
				t.Errorf("threads=%d maxInst=%d: executed %d", threads, max, n)
			}
			if got := pr.Stats().Instructions; got != max {
				t.Errorf("threads=%d maxInst=%d: retired %d", threads, max, got)
			}
		}
	}

	// Running in odd-sized slices must reach the same final state as one
	// uncapped run: the cap changes scheduling, not semantics.
	sliced := loadOrDie(t, bin, Options{})
	sliced.Threads[0].Regs[isa.R1] = 1<<40 - 300 // shorten the spin
	var total uint64
	for !sliced.Halted() {
		total += sliced.RunUntilHalt(97)
	}
	oneShot := loadOrDie(t, bin, Options{})
	oneShot.Threads[0].Regs[isa.R1] = 1<<40 - 300
	if n := oneShot.RunUntilHalt(0); n != total {
		t.Errorf("sliced run executed %d instructions, one-shot %d", total, n)
	}
	if a, b := sliced.Stats(), oneShot.Stats(); a != b {
		t.Errorf("sliced vs one-shot stats diverged:\n%+v\n%+v", a, b)
	}
}
