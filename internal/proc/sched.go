package proc

// Quantum is how many instructions a thread runs before the scheduler
// rotates. Cores advance near-lockstep, which keeps multi-thread timing
// comparable while staying fast.
const Quantum = 128

// quantumFor returns the instruction budget for one pick of thread t:
// the fixed Quantum unless Options.SchedQuantum overrides it.
func (p *Process) quantumFor(t *Thread) int {
	if p.opts.SchedQuantum == nil {
		return Quantum
	}
	if q := p.opts.SchedQuantum(t.ID, Quantum); q > 0 {
		return q
	}
	return Quantum
}

// RunUntilHalt runs until every thread halts, the process faults or is
// paused, or maxInst instructions retire in total. It returns the number
// of instructions executed by this call, never more than maxInst: each
// pick's budget is clamped to the remaining allowance (after the
// SchedQuantum hook has seen the unclamped proposal, so recorded
// scheduling journals are unaffected) and the cap is checked between
// threads, not only between full rounds.
func (p *Process) RunUntilHalt(maxInst uint64) uint64 {
	var executed uint64
	for !p.paused && p.fault == nil {
		ran := false
		for _, t := range p.Threads {
			if t.Halted {
				continue
			}
			budget := p.quantumFor(t)
			if maxInst > 0 {
				rem := maxInst - executed
				if rem == 0 {
					return executed
				}
				if uint64(budget) > rem {
					budget = int(rem)
				}
			}
			ran = true
			executed += uint64(p.runQuantum(t, budget))
			p.sample(t)
		}
		if !ran || (maxInst > 0 && executed >= maxInst) {
			break
		}
	}
	return executed
}

// RunFor advances the process by the given amount of simulated time
// (seconds of the slowest still-running core). It returns early if all
// threads halt, a fault occurs, or Pause is called.
func (p *Process) RunFor(seconds float64) {
	if seconds <= 0 {
		return
	}
	deadline := p.minActiveSeconds() + seconds
	for !p.paused && p.fault == nil {
		ran := false
		for _, t := range p.Threads {
			if t.Halted || t.Core.Seconds() >= deadline {
				continue
			}
			ran = true
			p.runQuantum(t, p.quantumFor(t))
			p.sample(t)
		}
		if !ran {
			break
		}
	}
}

func (p *Process) minActiveSeconds() float64 {
	min := -1.0
	for _, t := range p.Threads {
		if t.Halted {
			continue
		}
		if s := t.Core.Seconds(); min < 0 || s < min {
			min = s
		}
	}
	if min < 0 {
		return p.Seconds()
	}
	return min
}
