package asm

import (
	"encoding/binary"
	"testing"

	"repro/internal/isa"
	"repro/internal/obj"
)

// smallProgram: main calls helper through a conditional; helper is also in
// a v-table and a jump table.
func smallProgram() *Program {
	return &Program{
		Name:  "small",
		Entry: "main",
		Funcs: []*Func{
			{
				Name: "main",
				Blocks: []*Block{
					{Label: "entry", Insts: []AInst{
						{Inst: isa.Inst{Op: isa.ENTER, Imm: 16}},
						{Inst: isa.Inst{Op: isa.MOVI, Rd: isa.R0, Imm: 1}},
						{Inst: isa.Inst{Op: isa.CMPI, Rs1: isa.R0, Imm: 0}},
						{Inst: isa.Inst{Op: isa.JCC, Cond: isa.EQ}, TargetLabel: "skip"},
					}, Fall: "docall"},
					{Label: "docall", Insts: []AInst{
						{Inst: isa.Inst{Op: isa.CALL}, Callee: "helper"},
					}, Fall: "skip"},
					{Label: "skip", Insts: []AInst{
						{Inst: isa.Inst{Op: isa.MOVI, Rd: isa.R6}, DataSym: "gcounter"},
						{Inst: isa.Inst{Op: isa.LEAVE}},
						{Inst: isa.Inst{Op: isa.HALT}},
					}},
				},
			},
			{
				Name: "helper",
				Blocks: []*Block{
					{Label: "entry", Insts: []AInst{
						{Inst: isa.Inst{Op: isa.ADDI, Rd: isa.R0, Rs1: isa.R0, Imm: 1}},
						{Inst: isa.Inst{Op: isa.RET}},
					}},
				},
			},
		},
		Globals: []*Global{{Name: "gcounter", Size: 8}},
		VTables: []*VTable{{Name: "vt0", Slots: []string{"helper", "main"}}},
	}
}

func TestAssembleValidates(t *testing.T) {
	b, err := Assemble(smallProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Entry != b.FuncByName("main").Addr {
		t.Error("entry address mismatch")
	}
	if b.FuncByName("main").Addr%FuncAlign != 0 || b.FuncByName("helper").Addr%FuncAlign != 0 {
		t.Error("functions not cache-line aligned")
	}
}

func TestCallAndBranchResolution(t *testing.T) {
	b, err := Assemble(smallProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	main := b.FuncByName("main")
	helper := b.FuncByName("helper")
	code, err := b.Bytes(main.Addr, int(main.Size))
	if err != nil {
		t.Fatal(err)
	}
	insts, err := isa.DecodeAll(code)
	if err != nil {
		t.Fatal(err)
	}
	// Find the CALL and check its PC-relative target.
	found := false
	for i, in := range insts {
		if in.Op == isa.CALL {
			pc := main.Addr + uint64(i)*isa.InstBytes
			if tgt := uint64(int64(pc) + isa.InstBytes + in.Imm); tgt != helper.Addr {
				t.Errorf("CALL resolves to %#x, want %#x", tgt, helper.Addr)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no CALL in main")
	}
	// JCC at index 3 targets the "skip" block; blocks metadata gives spans.
	jcc := insts[3]
	if jcc.Op != isa.JCC {
		t.Fatalf("inst 3 is %v", jcc)
	}
	tgt := uint64(int64(main.Addr+3*isa.InstBytes) + isa.InstBytes + jcc.Imm)
	// "skip" is the third block.
	skipAddr := main.Addr + uint64(main.Blocks[2].Off)
	if tgt != skipAddr {
		t.Errorf("JCC resolves to %#x, want %#x", tgt, skipAddr)
	}
}

func TestFallthroughJmpInsertion(t *testing.T) {
	// Reorder blocks so "docall" is last: entry falls to docall which is no
	// longer adjacent, forcing a JMP.
	p := smallProgram()
	mainFn := p.Funcs[0]
	mainFn.Blocks = []*Block{mainFn.Blocks[0], mainFn.Blocks[2], mainFn.Blocks[1]}
	b, err := Assemble(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	main := b.FuncByName("main")
	code, _ := b.Bytes(main.Addr, int(main.Size))
	insts, _ := isa.DecodeAll(code)
	// entry block got a trailing JMP to docall, and docall got one to skip.
	var jmps int
	for _, in := range insts {
		if in.Op == isa.JMP {
			jmps++
		}
	}
	if jmps != 2 {
		t.Errorf("expected 2 inserted JMPs, found %d", jmps)
	}
	// Size grew by the two jumps versus the straight-line layout.
	b2, _ := Assemble(smallProgram(), Options{})
	if main.Size != b2.FuncByName("main").Size+2*isa.InstBytes {
		t.Errorf("reordered main size %d, want %d",
			main.Size, b2.FuncByName("main").Size+2*isa.InstBytes)
	}
}

func TestVTableMaterialization(t *testing.T) {
	b, err := Assemble(smallProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.VTables) != 1 {
		t.Fatal("missing v-table")
	}
	vt := b.VTables[0]
	if vt.Slots[0] != b.FuncByName("helper").Addr || vt.Slots[1] != b.FuncByName("main").Addr {
		t.Error("v-table slots wrong")
	}
	// The .data image holds the same values.
	raw, err := b.Bytes(vt.Addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(raw) != vt.Slots[0] {
		t.Error(".data image does not match v-table slot 0")
	}
	// Global symbol address was baked into the MOVI.
	syms := DataSymbols(smallProgram(), Options{})
	main := b.FuncByName("main")
	code, _ := b.Bytes(main.Addr, int(main.Size))
	insts, _ := isa.DecodeAll(code)
	found := false
	for _, in := range insts {
		if in.Op == isa.MOVI && in.Rd == isa.R6 {
			if uint64(in.Imm) != syms["gcounter"] {
				t.Errorf("MOVI imm %#x, want %#x", in.Imm, syms["gcounter"])
			}
			found = true
		}
	}
	if !found {
		t.Error("global MOVI not found")
	}
}

func TestJumpTables(t *testing.T) {
	p := &Program{
		Name:  "jt",
		Entry: "f",
		Funcs: []*Func{{
			Name: "f",
			Blocks: []*Block{
				{Label: "entry", Insts: []AInst{
					{Inst: isa.Inst{Op: isa.JTBL, Rs1: isa.R0}, JTName: "tbl"},
				}},
				{Label: "a", Insts: []AInst{{Inst: isa.Inst{Op: isa.HALT}}}},
				{Label: "b", Insts: []AInst{{Inst: isa.Inst{Op: isa.HALT}}}},
			},
			JumpTables: []SrcJT{{Name: "tbl", Labels: []string{"a", "b", "a"}}},
		}},
	}
	b, err := Assemble(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.JumpTables) != 1 {
		t.Fatal("missing jump table")
	}
	jt := b.JumpTables[0]
	f := b.FuncByName("f")
	wantA := f.Addr + uint64(f.Blocks[1].Off)
	wantB := f.Addr + uint64(f.Blocks[2].Off)
	if jt.Targets[0] != wantA || jt.Targets[1] != wantB || jt.Targets[2] != wantA {
		t.Errorf("jump table targets %#x, want [%#x %#x %#x]", jt.Targets, wantA, wantB, wantA)
	}
	// .rodata image matches.
	raw, err := b.Bytes(jt.Addr, 24)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(raw[8:]) != wantB {
		t.Error(".rodata image mismatch")
	}
	// The JTBL instruction's Imm is the table address.
	code, _ := b.Bytes(f.Addr, isa.InstBytes)
	in, _ := isa.Decode(code)
	if uint64(in.Imm) != jt.Addr {
		t.Errorf("JTBL imm %#x, want %#x", in.Imm, jt.Addr)
	}

	// NoJumpTables must reject this program.
	p.NoJumpTables = true
	if _, err := Assemble(p, Options{}); err == nil {
		t.Error("NoJumpTables program with a jump table assembled")
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []*Func{
		// No terminator, no fall-through.
		{Name: "f", Blocks: []*Block{{Label: "e", Insts: []AInst{{Inst: isa.Inst{Op: isa.NOP}}}}}},
		// Undefined branch label.
		{Name: "f", Blocks: []*Block{{Label: "e", Insts: []AInst{
			{Inst: isa.Inst{Op: isa.JMP}, TargetLabel: "nope"}}}}},
		// Duplicate labels.
		{Name: "f", Blocks: []*Block{
			{Label: "e", Insts: []AInst{{Inst: isa.Inst{Op: isa.RET}}}},
			{Label: "e", Insts: []AInst{{Inst: isa.Inst{Op: isa.RET}}}}}},
		// Terminator plus fall-through.
		{Name: "f", Blocks: []*Block{
			{Label: "e", Insts: []AInst{{Inst: isa.Inst{Op: isa.RET}}}, Fall: "x"},
			{Label: "x", Insts: []AInst{{Inst: isa.Inst{Op: isa.RET}}}}}},
		// Call without callee.
		{Name: "f", Blocks: []*Block{{Label: "e", Insts: []AInst{
			{Inst: isa.Inst{Op: isa.CALL}}, {Inst: isa.Inst{Op: isa.RET}}}}}},
	}
	for i, fn := range cases {
		if _, err := fn.Lower(nil); err == nil {
			t.Errorf("case %d: Lower accepted invalid function", i)
		}
	}
}

func TestLinkErrors(t *testing.T) {
	frag := &Fragment{
		Name:   "f",
		Insts:  []FInst{{I: isa.Inst{Op: isa.CALL}, Callee: "missing"}, {I: isa.Inst{Op: isa.RET}}},
		Blocks: []int{0},
	}
	_, err := Link(LinkInput{
		Name:       "t",
		Placements: []Placement{{Frag: frag, Addr: DefaultTextBase, Section: obj.SecText}},
	})
	if err == nil {
		t.Error("undefined callee not caught")
	}

	// Duplicate fragments.
	ret := &Fragment{Name: "g", Insts: []FInst{{I: isa.Inst{Op: isa.RET}}}, Blocks: []int{0}}
	_, err = Link(LinkInput{
		Name: "t",
		Placements: []Placement{
			{Frag: ret, Addr: DefaultTextBase, Section: obj.SecText},
			{Frag: ret, Addr: DefaultTextBase + 64, Section: obj.SecText},
		},
	})
	if err == nil {
		t.Error("duplicate fragment not caught")
	}

	// Unaligned placement.
	_, err = Link(LinkInput{
		Name:       "t",
		Placements: []Placement{{Frag: ret, Addr: DefaultTextBase + 3, Section: obj.SecText}},
	})
	if err == nil {
		t.Error("unaligned placement not caught")
	}
}

func TestColdFragmentAttachment(t *testing.T) {
	hot := &Fragment{
		Name: "f",
		Insts: []FInst{
			{I: isa.Inst{Op: isa.JCC, Cond: isa.EQ}, Target: &Ref{Frag: "f" + ColdSuffix, Index: 0}},
			{I: isa.Inst{Op: isa.RET}},
		},
		Blocks: []int{0},
	}
	cold := &Fragment{
		Name:   "f" + ColdSuffix,
		Insts:  []FInst{{I: isa.Inst{Op: isa.RET}}},
		Blocks: []int{0},
	}
	b, err := Link(LinkInput{
		Name:  "t",
		Entry: "f",
		Placements: []Placement{
			{Frag: hot, Addr: 0x400000, Section: obj.SecText},
			{Frag: cold, Addr: 0x600000, Section: obj.SecColdText},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := b.FuncByName("f")
	if f.ColdAddr != 0x600000 || f.ColdSize != isa.InstBytes {
		t.Errorf("cold range not attached: %+v", f)
	}
	// The cross-fragment JCC resolves into the cold section.
	code, _ := b.Bytes(0x400000, isa.InstBytes)
	in, _ := isa.Decode(code)
	if tgt := uint64(int64(0x400000) + isa.InstBytes + in.Imm); tgt != 0x600000 {
		t.Errorf("cross-fragment branch resolves to %#x", tgt)
	}
	// Only one function symbol (cold part is not its own function).
	if len(b.Funcs) != 1 {
		t.Errorf("%d function symbols, want 1", len(b.Funcs))
	}
}

func TestLinkMoreErrors(t *testing.T) {
	ret := &Fragment{Name: "g", Insts: []FInst{{I: isa.Inst{Op: isa.RET}}}, Blocks: []int{0}}

	// Undefined entry symbol.
	if _, err := Link(LinkInput{
		Name:       "t",
		Entry:      "missing",
		Placements: []Placement{{Frag: ret, Addr: DefaultTextBase, Section: obj.SecText}},
	}); err == nil {
		t.Error("undefined entry not caught")
	}

	// V-table slot referencing an unknown function.
	if _, err := Link(LinkInput{
		Name:       "t",
		Placements: []Placement{{Frag: ret, Addr: DefaultTextBase, Section: obj.SecText}},
		VTables:    []VTableSpec{{Name: "vt", Off: 0, Slots: []string{"nope"}}},
		DataBase:   DefaultDataBase,
	}); err == nil {
		t.Error("undefined vtable slot not caught")
	}

	// Duplicate jump-table names across fragments.
	j1 := &Fragment{Name: "a", Insts: []FInst{{I: isa.Inst{Op: isa.JTBL, Rs1: isa.R0}, JT: "tbl"}},
		Blocks: []int{0}, JTs: []JTable{{Name: "tbl", Entries: []Ref{{Frag: "a", Index: 0}}}}}
	j2 := &Fragment{Name: "b", Insts: []FInst{{I: isa.Inst{Op: isa.JTBL, Rs1: isa.R0}, JT: "tbl"}},
		Blocks: []int{0}, JTs: []JTable{{Name: "tbl", Entries: []Ref{{Frag: "b", Index: 0}}}}}
	if _, err := Link(LinkInput{
		Name: "t",
		Placements: []Placement{
			{Frag: j1, Addr: DefaultTextBase, Section: obj.SecText},
			{Frag: j2, Addr: DefaultTextBase + 64, Section: obj.SecText},
		},
		ROBase: DefaultRODataBase,
	}); err == nil {
		t.Error("duplicate jump table not caught")
	}

	// Ref to out-of-range instruction.
	bad := &Fragment{Name: "h", Insts: []FInst{
		{I: isa.Inst{Op: isa.JMP}, Target: &Ref{Frag: "h", Index: 99}},
	}, Blocks: []int{0}}
	if _, err := Link(LinkInput{
		Name:       "t",
		Placements: []Placement{{Frag: bad, Addr: DefaultTextBase, Section: obj.SecText}},
	}); err == nil {
		t.Error("out-of-range ref not caught")
	}
}

func TestFragmentValidateErrors(t *testing.T) {
	// Blocks not starting at 0.
	f := &Fragment{Name: "x", Insts: []FInst{{I: isa.Inst{Op: isa.RET}}}, Blocks: []int{1}}
	if err := f.Validate(); err == nil {
		t.Error("bad block start accepted")
	}
	// JMP without target.
	f2 := &Fragment{Name: "x", Insts: []FInst{{I: isa.Inst{Op: isa.JMP}}}, Blocks: []int{0}}
	if err := f2.Validate(); err == nil {
		t.Error("JMP without target accepted")
	}
	// JTBL without table name.
	f3 := &Fragment{Name: "x", Insts: []FInst{{I: isa.Inst{Op: isa.JTBL}}}, Blocks: []int{0}}
	if err := f3.Validate(); err == nil {
		t.Error("JTBL without table accepted")
	}
}
