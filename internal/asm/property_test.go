package asm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/progtest"
)

// TestAssembleInvariantsProperty assembles random programs and checks the
// structural invariants every layout must satisfy: functions are aligned
// and non-overlapping, every PC-relative operand lands on an instruction
// boundary inside the same function (branches) or on a function entry
// (calls), and FPTR immediates are function entries.
func TestAssembleInvariantsProperty(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		prog, _, err := progtest.Generate(progtest.Options{
			Funcs: 9, MainIters: 10, Seed: seed, JumpTables: seed%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		bin, err := asm.Assemble(prog, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := bin.Validate(); err != nil {
			t.Fatal(err)
		}

		var prevEnd uint64
		for _, fn := range bin.Funcs {
			if fn.Addr%asm.FuncAlign != 0 {
				t.Errorf("seed %d: %s not aligned", seed, fn.Name)
			}
			if fn.Addr < prevEnd {
				t.Errorf("seed %d: %s overlaps previous function", seed, fn.Name)
			}
			prevEnd = fn.Addr + fn.Size

			raw, err := bin.Bytes(fn.Addr, int(fn.Size))
			if err != nil {
				t.Fatal(err)
			}
			insts, err := isa.DecodeAll(raw)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, fn.Name, err)
			}
			for i, in := range insts {
				pc := fn.Addr + uint64(i)*isa.InstBytes
				switch in.Op {
				case isa.JMP, isa.JCC:
					tgt := uint64(int64(pc) + isa.InstBytes + in.Imm)
					if tgt < fn.Addr || tgt >= fn.Addr+fn.Size || (tgt-fn.Addr)%isa.InstBytes != 0 {
						t.Errorf("seed %d: %s+%#x: branch target %#x outside function", seed, fn.Name, pc-fn.Addr, tgt)
					}
				case isa.CALL:
					tgt := uint64(int64(pc) + isa.InstBytes + in.Imm)
					if bin.FuncAt(tgt) == nil {
						t.Errorf("seed %d: %s: call target %#x is not a function entry", seed, fn.Name, tgt)
					}
				case isa.FPTR:
					if bin.FuncAt(uint64(in.Imm)) == nil {
						t.Errorf("seed %d: %s: FPTR %#x is not a function entry", seed, fn.Name, uint64(in.Imm))
					}
				case isa.JTBL:
					found := false
					for _, jt := range bin.JumpTables {
						if jt.Addr == uint64(in.Imm) {
							found = true
						}
					}
					if !found {
						t.Errorf("seed %d: %s: JTBL table %#x unknown", seed, fn.Name, uint64(in.Imm))
					}
				}
			}

			// Block spans tile the function exactly.
			var covered uint64
			for _, b := range fn.Blocks {
				covered += uint64(b.Size)
			}
			if covered != fn.Size {
				t.Errorf("seed %d: %s: blocks cover %d of %d bytes", seed, fn.Name, covered, fn.Size)
			}
		}

		// Jump-table entries land on instruction boundaries inside their
		// owner function.
		for _, jt := range bin.JumpTables {
			owner := bin.FuncByName(jt.Owner)
			if owner == nil {
				t.Fatalf("seed %d: jump table %s has unknown owner", seed, jt.Name)
			}
			for _, tgt := range jt.Targets {
				if tgt < owner.Addr || tgt >= owner.Addr+owner.Size || (tgt-owner.Addr)%isa.InstBytes != 0 {
					t.Errorf("seed %d: jump table %s target %#x outside %s", seed, jt.Name, tgt, jt.Owner)
				}
			}
		}
		_ = obj.SecText
	}
}
