package asm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/obj"
)

// ColdSuffix marks a fragment holding the exiled cold part of a split
// function: fragment "f" + fragment "f"+ColdSuffix together form function f.
const ColdSuffix = "#cold"

// FuncAlign is the alignment of function entry addresses (a cache line).
const FuncAlign = 64

// Placement assigns one fragment an address in a section.
type Placement struct {
	Frag      *Fragment
	Addr      uint64
	Section   string // obj.SecText, obj.SecOrgText, or obj.SecColdText
	Optimized bool   // layout chosen by an optimizer
}

// VTableSpec describes a v-table to be materialized in the data section.
type VTableSpec struct {
	Name  string
	Off   uint64   // byte offset of slot 0 within the data section
	Slots []string // function (fragment) names
}

// LinkInput is everything the linker needs to produce a binary.
type LinkInput struct {
	Name  string
	Entry string // entry function name ("" for libraries/tests)

	Placements []Placement

	// Data is the pre-laid-out .data section image (globals). May be nil.
	Data     []byte
	DataBase uint64

	VTables []VTableSpec

	// ROBase is where jump tables are allocated (the .rodata section).
	ROBase uint64

	Bolted       bool
	NoJumpTables bool
	AddrMap      map[uint64]uint64
}

// Link resolves all symbolic operands, encodes every fragment at its
// placement address, materializes jump tables and v-tables, and returns a
// validated binary.
func Link(in LinkInput) (*obj.Binary, error) {
	// Symbol table: fragment name → address. Cold fragments are address
	// targets for branches but not call targets; include them anyway (a
	// name can only be referenced by the matching operand kind).
	syms := make(map[string]uint64, len(in.Placements))
	frags := make(map[string]*Placement, len(in.Placements))
	for i := range in.Placements {
		p := &in.Placements[i]
		if _, dup := frags[p.Frag.Name]; dup {
			return nil, fmt.Errorf("asm: duplicate fragment %s", p.Frag.Name)
		}
		if p.Addr%isa.InstBytes != 0 {
			return nil, fmt.Errorf("asm: fragment %s at unaligned address %#x", p.Frag.Name, p.Addr)
		}
		if err := p.Frag.Validate(); err != nil {
			return nil, err
		}
		frags[p.Frag.Name] = p
		syms[p.Frag.Name] = p.Addr
	}

	refAddr := func(r Ref) (uint64, error) {
		p, ok := frags[r.Frag]
		if !ok {
			return 0, fmt.Errorf("asm: unresolved fragment ref %q", r.Frag)
		}
		if r.Index < 0 || r.Index >= len(p.Frag.Insts) {
			return 0, fmt.Errorf("asm: ref %s[%d] out of range", r.Frag, r.Index)
		}
		return p.Addr + uint64(r.Index)*isa.InstBytes, nil
	}

	// Allocate jump tables in .rodata, in deterministic placement order.
	type jtLoc struct {
		addr    uint64
		entries []Ref
		owner   string
	}
	jts := make(map[string]*jtLoc)
	var jtOrder []string
	roCursor := in.ROBase
	for _, p := range in.Placements {
		for _, jt := range p.Frag.JTs {
			if _, dup := jts[jt.Name]; dup {
				return nil, fmt.Errorf("asm: duplicate jump table %s", jt.Name)
			}
			jts[jt.Name] = &jtLoc{addr: roCursor, entries: jt.Entries, owner: p.Frag.Name}
			jtOrder = append(jtOrder, jt.Name)
			roCursor += uint64(len(jt.Entries)) * 8
		}
	}

	// Encode fragments.
	type secImage struct {
		lo, hi uint64
		chunks []struct {
			addr uint64
			data []byte
		}
	}
	secs := make(map[string]*secImage)
	for _, p := range in.Placements {
		code := make([]byte, p.Frag.Size())
		for i, fi := range p.Frag.Insts {
			inst := fi.I
			pc := p.Addr + uint64(i)*isa.InstBytes
			next := pc + isa.InstBytes
			switch inst.Op {
			case isa.JMP, isa.JCC:
				t, err := refAddr(*fi.Target)
				if err != nil {
					return nil, fmt.Errorf("asm: %s inst %d: %w", p.Frag.Name, i, err)
				}
				inst.Imm = int64(t) - int64(next)
			case isa.CALL:
				t, ok := syms[fi.Callee]
				if !ok {
					return nil, fmt.Errorf("asm: %s inst %d: undefined function %q", p.Frag.Name, i, fi.Callee)
				}
				inst.Imm = int64(t) - int64(next)
			case isa.FPTR:
				t, ok := syms[fi.Callee]
				if !ok {
					return nil, fmt.Errorf("asm: %s inst %d: undefined function %q", p.Frag.Name, i, fi.Callee)
				}
				inst.Imm = int64(t)
			case isa.JTBL:
				loc, ok := jts[fi.JT]
				if !ok {
					return nil, fmt.Errorf("asm: %s inst %d: undefined jump table %q", p.Frag.Name, i, fi.JT)
				}
				inst.Imm = int64(loc.addr)
			}
			inst.Encode(code[i*isa.InstBytes:])
		}
		si := secs[p.Section]
		if si == nil {
			si = &secImage{lo: p.Addr, hi: p.Addr}
			secs[p.Section] = si
		}
		if p.Addr < si.lo {
			si.lo = p.Addr
		}
		if end := p.Addr + uint64(len(code)); end > si.hi {
			si.hi = end
		}
		si.chunks = append(si.chunks, struct {
			addr uint64
			data []byte
		}{p.Addr, code})
	}

	b := &obj.Binary{
		Name:         in.Name,
		Bolted:       in.Bolted,
		NoJumpTables: in.NoJumpTables,
		AddrMap:      in.AddrMap,
	}

	// Materialize code sections.
	for _, name := range []string{obj.SecText, obj.SecOrgText, obj.SecColdText} {
		si := secs[name]
		if si == nil {
			continue
		}
		data := make([]byte, si.hi-si.lo)
		for _, c := range si.chunks {
			copy(data[c.addr-si.lo:], c.data)
		}
		b.Sections = append(b.Sections, &obj.Section{Name: name, Addr: si.lo, Data: data})
	}

	// .rodata: jump tables.
	if len(jtOrder) > 0 {
		ro := make([]byte, roCursor-in.ROBase)
		for _, name := range jtOrder {
			loc := jts[name]
			targets := make([]uint64, len(loc.entries))
			for i, e := range loc.entries {
				t, err := refAddr(e)
				if err != nil {
					return nil, fmt.Errorf("asm: jump table %s entry %d: %w", name, i, err)
				}
				targets[i] = t
				binary.LittleEndian.PutUint64(ro[loc.addr-in.ROBase+uint64(i)*8:], t)
			}
			b.JumpTables = append(b.JumpTables, &obj.JumpTable{
				Name: name, Addr: loc.addr, Targets: targets, Owner: loc.owner,
			})
		}
		b.Sections = append(b.Sections, &obj.Section{Name: obj.SecROData, Addr: in.ROBase, Data: ro})
	}

	// .data: caller-provided image with v-table slots filled in.
	if in.Data != nil || len(in.VTables) > 0 {
		data := append([]byte(nil), in.Data...)
		for _, vt := range in.VTables {
			need := vt.Off + uint64(len(vt.Slots))*8
			if need > uint64(len(data)) {
				grown := make([]byte, need)
				copy(grown, data)
				data = grown
			}
			slots := make([]uint64, len(vt.Slots))
			for i, fn := range vt.Slots {
				addr, ok := syms[fn]
				if !ok {
					return nil, fmt.Errorf("asm: vtable %s slot %d: undefined function %q", vt.Name, i, fn)
				}
				slots[i] = addr
				binary.LittleEndian.PutUint64(data[vt.Off+uint64(i)*8:], addr)
			}
			b.VTables = append(b.VTables, &obj.VTable{Name: vt.Name, Addr: in.DataBase + vt.Off, Slots: slots})
		}
		b.Sections = append(b.Sections, &obj.Section{Name: obj.SecData, Addr: in.DataBase, Data: data})
	}

	// Function symbols: hot fragments become functions; cold fragments
	// attach to their owners.
	for _, p := range in.Placements {
		if isColdName(p.Frag.Name) {
			continue
		}
		spans := p.Frag.BlockSpans()
		f := &obj.Func{
			Name:      p.Frag.Name,
			Addr:      p.Addr,
			Size:      p.Frag.Size(),
			Optimized: p.Optimized,
		}
		for _, s := range spans {
			f.Blocks = append(f.Blocks, obj.BlockSpan{Off: s.Off, Size: s.Size})
		}
		if cp, ok := frags[p.Frag.Name+ColdSuffix]; ok {
			f.ColdAddr = cp.Addr
			f.ColdSize = cp.Frag.Size()
		}
		b.Funcs = append(b.Funcs, f)
	}
	b.SortFuncs()

	if in.Entry != "" {
		addr, ok := syms[in.Entry]
		if !ok {
			return nil, fmt.Errorf("asm: undefined entry function %q", in.Entry)
		}
		b.Entry = addr
	}

	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

func isColdName(name string) bool {
	return len(name) > len(ColdSuffix) && name[len(name)-len(ColdSuffix):] == ColdSuffix
}

// SequentialPlacement lays fragments out back to back from base with
// FuncAlign alignment, in the given order, all in the same section.
func SequentialPlacement(frags []*Fragment, base uint64, section string, optimized bool) []Placement {
	ps := make([]Placement, 0, len(frags))
	addr := align(base, FuncAlign)
	for _, f := range frags {
		ps = append(ps, Placement{Frag: f, Addr: addr, Section: section, Optimized: optimized})
		addr = align(addr+f.Size(), FuncAlign)
	}
	return ps
}

func align(x, a uint64) uint64 { return (x + a - 1) &^ (a - 1) }

// SortPlacements orders placements by address (stable helper for tests).
func SortPlacements(ps []Placement) {
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Addr < ps[j].Addr })
}
