package asm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obj"
)

// Default section base addresses for compiler-produced binaries. The
// optimizer places its new .text at a disjoint, higher base (see
// internal/bolt), mirroring how BOLT appends a new text segment.
const (
	DefaultTextBase   = 0x0040_0000
	DefaultRODataBase = 0x0800_0000
	DefaultDataBase   = 0x0C00_0000
)

// AInst is a source-level instruction: an isa.Inst whose control/data
// operands may be symbolic.
type AInst struct {
	isa.Inst
	TargetLabel string // JMP/JCC: block label within the same function
	Callee      string // CALL/FPTR: function name
	DataSym     string // MOVI: global or v-table name (address materialized)
	JTName      string // JTBL: jump table name
}

// Block is a basic block. If Fall is non-empty, control falls through to
// the named block; the assembler inserts a JMP when the layout does not
// place that block next. Blocks whose last instruction terminates need no
// Fall.
type Block struct {
	Label string
	Insts []AInst
	Fall  string
}

// SrcJT is a jump table at source level: an ordered list of block labels.
type SrcJT struct {
	Name   string
	Labels []string
}

// Func is a function: Blocks[0] is the entry block.
type Func struct {
	Name       string
	Blocks     []*Block
	JumpTables []SrcJT
}

// Global is a named chunk of the .data section.
type Global struct {
	Name string
	Size uint64
	Init []byte // optional; zero-filled beyond len(Init)
}

// VTable is a source-level v-table: an ordered list of function names.
type VTable struct {
	Name  string
	Slots []string
}

// Program is a whole source program.
type Program struct {
	Name    string
	Entry   string // entry function name
	Funcs   []*Func
	Globals []*Global
	VTables []*VTable

	// NoJumpTables asserts the program contains no jump tables (the
	// -fno-jump-tables analog OCOLOS requires, §IV-D). Assemble fails if a
	// function declares one anyway.
	NoJumpTables bool
}

// Lower converts a function to a fragment, resolving block labels to
// instruction indexes and inserting fall-through jumps where needed.
// dataSyms maps global/v-table names to addresses for MOVI materialization.
func (fn *Func) Lower(dataSyms map[string]uint64) (*Fragment, error) {
	if len(fn.Blocks) == 0 {
		return nil, fmt.Errorf("asm: function %s has no blocks", fn.Name)
	}
	frag := &Fragment{Name: fn.Name}

	// First pass: compute where each block starts, accounting for inserted
	// fall-through jumps.
	starts := make(map[string]int, len(fn.Blocks))
	needJmp := make([]bool, len(fn.Blocks))
	idx := 0
	for bi, blk := range fn.Blocks {
		if _, dup := starts[blk.Label]; dup {
			return nil, fmt.Errorf("asm: function %s: duplicate label %q", fn.Name, blk.Label)
		}
		starts[blk.Label] = idx
		n := len(blk.Insts)
		last := lastInst(blk)
		switch {
		case blk.Fall != "":
			if last != nil && last.Terminates() {
				return nil, fmt.Errorf("asm: function %s block %s: terminator plus fall-through", fn.Name, blk.Label)
			}
			if bi+1 >= len(fn.Blocks) || fn.Blocks[bi+1].Label != blk.Fall {
				needJmp[bi] = true
				n++
			}
			// n may legitimately be 0 here: an empty pass-through block
			// whose fall target is adjacent. Its label aliases the next
			// block's first instruction.
		default:
			if last == nil || !last.Terminates() {
				return nil, fmt.Errorf("asm: function %s block %s: no terminator and no fall-through", fn.Name, blk.Label)
			}
		}
		idx += n
	}

	ref := func(label string) (*Ref, error) {
		s, ok := starts[label]
		if !ok {
			return nil, fmt.Errorf("asm: function %s: undefined label %q", fn.Name, label)
		}
		return &Ref{Frag: fn.Name, Index: s}, nil
	}

	// Second pass: emit. Empty pass-through blocks produce no span.
	for bi, blk := range fn.Blocks {
		if len(blk.Insts) > 0 || needJmp[bi] {
			frag.Blocks = append(frag.Blocks, starts[blk.Label])
		}
		for _, ai := range blk.Insts {
			fi := FInst{I: ai.Inst}
			switch ai.Op {
			case isa.JMP, isa.JCC:
				r, err := ref(ai.TargetLabel)
				if err != nil {
					return nil, err
				}
				fi.Target = r
			case isa.CALL, isa.FPTR:
				if ai.Callee == "" {
					return nil, fmt.Errorf("asm: function %s: %s without callee", fn.Name, ai.Op)
				}
				fi.Callee = ai.Callee
			case isa.JTBL:
				fi.JT = ai.JTName
			case isa.MOVI:
				if ai.DataSym != "" {
					addr, ok := dataSyms[ai.DataSym]
					if !ok {
						return nil, fmt.Errorf("asm: function %s: undefined data symbol %q", fn.Name, ai.DataSym)
					}
					fi.I.Imm = int64(addr)
				}
			}
			frag.Insts = append(frag.Insts, fi)
		}
		if needJmp[bi] {
			r, err := ref(blk.Fall)
			if err != nil {
				return nil, err
			}
			frag.Insts = append(frag.Insts, FInst{I: isa.Inst{Op: isa.JMP}, Target: r})
		}
	}

	for _, jt := range fn.JumpTables {
		t := JTable{Name: jt.Name}
		for _, label := range jt.Labels {
			r, err := ref(label)
			if err != nil {
				return nil, err
			}
			t.Entries = append(t.Entries, *r)
		}
		frag.JTs = append(frag.JTs, t)
	}
	return frag, nil
}

func lastInst(b *Block) *isa.Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	return &b.Insts[len(b.Insts)-1].Inst
}

// Options configures assembly.
type Options struct {
	TextBase   uint64
	RODataBase uint64
	DataBase   uint64
}

func (o *Options) defaults() {
	if o.TextBase == 0 {
		o.TextBase = DefaultTextBase
	}
	if o.RODataBase == 0 {
		o.RODataBase = DefaultRODataBase
	}
	if o.DataBase == 0 {
		o.DataBase = DefaultDataBase
	}
}

// Assemble lowers and links the program with functions in source order —
// the "compiler default layout" against which all profile-guided layouts
// are compared.
func Assemble(p *Program, opts Options) (*obj.Binary, error) {
	opts.defaults()

	// Lay out .data: v-tables first, then globals, 8-byte aligned.
	dataSyms := make(map[string]uint64)
	var vspecs []VTableSpec
	var cursor uint64
	for _, vt := range p.VTables {
		dataSyms[vt.Name] = opts.DataBase + cursor
		vspecs = append(vspecs, VTableSpec{Name: vt.Name, Off: cursor, Slots: vt.Slots})
		cursor += uint64(len(vt.Slots)) * 8
	}
	for _, g := range p.Globals {
		cursor = align(cursor, 8)
		if _, dup := dataSyms[g.Name]; dup {
			return nil, fmt.Errorf("asm: duplicate data symbol %q", g.Name)
		}
		dataSyms[g.Name] = opts.DataBase + cursor
		cursor += g.Size
	}
	data := make([]byte, cursor)
	for _, g := range p.Globals {
		off := dataSyms[g.Name] - opts.DataBase
		if uint64(len(g.Init)) > g.Size {
			return nil, fmt.Errorf("asm: global %q init larger than size", g.Name)
		}
		copy(data[off:off+g.Size], g.Init)
	}

	// Lower functions.
	frags := make([]*Fragment, 0, len(p.Funcs))
	for _, fn := range p.Funcs {
		if p.NoJumpTables && len(fn.JumpTables) > 0 {
			return nil, fmt.Errorf("asm: program %s declared NoJumpTables but %s has one", p.Name, fn.Name)
		}
		frag, err := fn.Lower(dataSyms)
		if err != nil {
			return nil, err
		}
		frags = append(frags, frag)
	}

	return Link(LinkInput{
		Name:         p.Name,
		Entry:        p.Entry,
		Placements:   SequentialPlacement(frags, opts.TextBase, obj.SecText, false),
		Data:         data,
		DataBase:     opts.DataBase,
		VTables:      vspecs,
		ROBase:       opts.RODataBase,
		NoJumpTables: p.NoJumpTables,
	})
}

// DataSymbols recomputes the data-symbol layout Assemble uses, letting
// callers (tests, drivers) find global addresses without re-assembling.
func DataSymbols(p *Program, opts Options) map[string]uint64 {
	opts.defaults()
	syms := make(map[string]uint64)
	var cursor uint64
	for _, vt := range p.VTables {
		syms[vt.Name] = opts.DataBase + cursor
		cursor += uint64(len(vt.Slots)) * 8
	}
	for _, g := range p.Globals {
		cursor = align(cursor, 8)
		syms[g.Name] = opts.DataBase + cursor
		cursor += g.Size
	}
	return syms
}
