// Package asm provides the program intermediate representation, the
// assembler that lowers it, and the fragment linker that encodes laid-out
// code into an obj.Binary.
//
// Two producers share the fragment linker:
//
//   - the compiler path (build DSL → Program IR → fragments), which lays
//     functions out in source order, and
//   - the BOLT-style optimizer, which decodes an existing binary back into
//     fragments, reorders blocks and functions, splits hot/cold code, and
//     re-links hot fragments at a new base while pinning untouched
//     functions at their original addresses.
package asm

import (
	"fmt"

	"repro/internal/isa"
)

// Ref names one instruction inside a fragment: the target of a branch or a
// jump-table entry. Cross-fragment refs are allowed (hot→cold split parts
// of one function branch to each other).
type Ref struct {
	Frag  string // fragment name
	Index int    // instruction index within the fragment
}

// FInst is one instruction plus its unresolved symbolic operands. Exactly
// one of Target/Callee/JT is meaningful, depending on the opcode:
//
//	JMP, JCC       → Target
//	CALL, FPTR     → Callee (function name)
//	JTBL           → JT (jump-table name)
//
// All other opcodes are taken verbatim (their Imm is already final).
type FInst struct {
	I      isa.Inst
	Target *Ref
	Callee string
	JT     string
}

// JTable is a jump table owned by a fragment: entries are instruction
// references, encoded as absolute addresses in .rodata at link time.
type JTable struct {
	Name    string
	Entries []Ref
}

// Fragment is a contiguous run of instructions to be placed at a single
// address: a whole function, or the hot or cold part of a split function.
type Fragment struct {
	Name   string
	Insts  []FInst
	JTs    []JTable
	Blocks []int // instruction indexes that start basic blocks (Blocks[0]==0)
}

// Size returns the fragment's encoded size in bytes.
func (f *Fragment) Size() uint64 { return uint64(len(f.Insts)) * isa.InstBytes }

// BlockSpans converts the block-start index list into byte spans for the
// symbol table.
func (f *Fragment) BlockSpans() []struct{ Off, Size uint32 } {
	spans := make([]struct{ Off, Size uint32 }, 0, len(f.Blocks))
	for i, start := range f.Blocks {
		end := len(f.Insts)
		if i+1 < len(f.Blocks) {
			end = f.Blocks[i+1]
		}
		spans = append(spans, struct{ Off, Size uint32 }{
			Off:  uint32(start * isa.InstBytes),
			Size: uint32((end - start) * isa.InstBytes),
		})
	}
	return spans
}

// Validate checks internal consistency: refs resolvable later, block list
// sane, operand kinds matching opcodes.
func (f *Fragment) Validate() error {
	if len(f.Blocks) == 0 || f.Blocks[0] != 0 {
		return fmt.Errorf("asm: fragment %s: block list must start at 0", f.Name)
	}
	prev := -1
	for _, b := range f.Blocks {
		if b <= prev || b >= len(f.Insts) {
			return fmt.Errorf("asm: fragment %s: bad block start %d", f.Name, b)
		}
		prev = b
	}
	for i, fi := range f.Insts {
		switch fi.I.Op {
		case isa.JMP, isa.JCC:
			if fi.Target == nil {
				return fmt.Errorf("asm: fragment %s inst %d: %s without target", f.Name, i, fi.I.Op)
			}
		case isa.CALL, isa.FPTR:
			if fi.Callee == "" {
				return fmt.Errorf("asm: fragment %s inst %d: %s without callee", f.Name, i, fi.I.Op)
			}
		case isa.JTBL:
			if fi.JT == "" {
				return fmt.Errorf("asm: fragment %s inst %d: jtbl without table", f.Name, i)
			}
		}
	}
	return nil
}
