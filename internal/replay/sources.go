package replay

import (
	"fmt"
	"math"
	"time"

	"repro/internal/trace"
)

// Clock is the injectable time source the fleet layer reads instead of
// calling time.Now/time.Sleep directly: in record mode every read and
// sleep is journaled; in replay mode reads return the recorded instants
// and sleeps return immediately (a replay never waits on host time).
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Wall is the default Clock: the host's real time.
type Wall struct{}

func (Wall) Now() time.Time        { return time.Now() }
func (Wall) Sleep(d time.Duration) { time.Sleep(d) }

// Clock wraps inner with the session: pass-through when inactive.
func (s *Session) Clock(inner Clock) Clock {
	if !s.Active() {
		return inner
	}
	return &sessionClock{s: s, inner: inner}
}

type sessionClock struct {
	s     *Session
	inner Clock
}

func (c *sessionClock) Now() time.Time {
	attrs, err := c.s.step(trace.Event{Type: trace.EvClockRead, Stage: "clock.now"},
		func() trace.Attrs {
			return trace.Attrs{trace.Int("unix_nano", int(c.inner.Now().UnixNano()))}
		})
	if err != nil {
		// Diverged: the sticky error will surface at the next checkpoint or
		// Finish; keep time flowing so the execution can reach it.
		return c.inner.Now()
	}
	ns, _ := attrs.Int("unix_nano")
	return time.Unix(0, ns)
}

func (c *sessionClock) Sleep(d time.Duration) {
	// The duration is identity: it is computed by the (re-)execution from
	// replayed jitter, so a mismatch means the backoff schedule diverged.
	_, err := c.s.step(trace.Event{Type: trace.EvSleep, Stage: "clock.sleep",
		Attrs: trace.Attrs{trace.Int("nanos", int(d))}}, nil)
	if err != nil || c.s.Replaying() {
		return
	}
	c.inner.Sleep(d)
}

// Jitter wraps a [0,1) jitter source (the fleet's seeded backoff
// randomness). Draws are recorded bit-exactly via Float64bits.
func (s *Session) Jitter(inner func() float64) func() float64 {
	if !s.Active() {
		return inner
	}
	return func() float64 {
		attrs, err := s.step(trace.Event{Type: trace.EvJitter, Stage: "backoff.jitter"},
			func() trace.Attrs {
				return trace.Attrs{trace.Int("bits", int(math.Float64bits(inner())))}
			})
		if err != nil {
			if inner != nil {
				return inner()
			}
			return 0
		}
		bits, _ := attrs.Int("bits")
		return math.Float64frombits(uint64(bits))
	}
}

// PerfDeadline wraps a perf sampling-deadline source (see
// perf.RecorderOptions.NextDeadline). The thread ID and current cycle
// count are identity — the replayed execution recomputes both — and the
// chosen deadline is the recorded payload.
func (s *Session) PerfDeadline(inner func(tid int, cycles float64) float64) func(int, float64) float64 {
	if !s.Active() {
		return inner
	}
	return func(tid int, cycles float64) float64 {
		identity := trace.Attrs{
			trace.Int("tid", tid),
			trace.Int("at_bits", int(math.Float64bits(cycles))),
		}
		attrs, err := s.step(trace.Event{Type: trace.EvPerfSample, Stage: "perf.deadline", Attrs: identity},
			func() trace.Attrs {
				return trace.Attrs{trace.Int("deadline_bits", int(math.Float64bits(inner(tid, cycles))))}
			})
		if err != nil {
			if inner != nil {
				return inner(tid, cycles)
			}
			return cycles
		}
		bits, _ := attrs.Int("deadline_bits")
		return math.Float64frombits(uint64(bits))
	}
}

// SchedQuantum wraps a scheduler quantum source (see
// proc.Options.SchedQuantum). The default round-robin scheduler is
// deterministic, so only an injected policy needs per-pick recording;
// one EvSchedPolicy event pins down which case the recording is in, and
// in replay mode the recorded flag — not the caller's argument — decides
// whether picks are journal-fed.
func (s *Session) SchedQuantum(inner func(tid, proposed int) int) func(int, int) int {
	if !s.Active() {
		return inner
	}
	injected := inner != nil
	attrs, err := s.step(trace.Event{Type: trace.EvSchedPolicy, Stage: "sched.policy"},
		func() trace.Attrs {
			return trace.Attrs{trace.Bool("injected", injected)}
		})
	if err != nil {
		return inner
	}
	if s.Replaying() {
		v, _ := attrs.Get("injected")
		recorded, _ := v.(bool)
		if !recorded {
			return nil
		}
		return func(tid, proposed int) int {
			identity := trace.Attrs{trace.Int("tid", tid), trace.Int("proposed", proposed)}
			a, err := s.step(trace.Event{Type: trace.EvSchedPick, Stage: "sched.pick", Attrs: identity}, nil)
			if err != nil {
				return proposed
			}
			q, _ := a.Int("quantum")
			return int(q)
		}
	}
	if !injected {
		return nil
	}
	return func(tid, proposed int) int {
		q := inner(tid, proposed)
		s.step(trace.Event{Type: trace.EvSchedPick, Stage: "sched.pick", Attrs: trace.Attrs{
			trace.Int("tid", tid), trace.Int("proposed", proposed), trace.Int("quantum", q)}}, nil)
		return q
	}
}

// CacheEvent journals one layout-cache lookup decision. Both the
// content-addressed key and the outcome are identity: a replayed wave
// starts from an empty cache and re-executes the same serial decision
// sequence, so it must recompute the same keys and reach the same
// hit/miss outcomes — any drift (a layout fingerprint that no longer
// matches, a lookup that appears or disappears) surfaces as a
// DivergenceError instead of silently replaying different code.
func (s *Session) CacheEvent(key, outcome string) error {
	if !s.Active() {
		return nil
	}
	_, err := s.step(trace.Event{Type: trace.EvCacheDecision, Stage: "layout.cache",
		Attrs: trace.Attrs{trace.String("key", key), trace.String("outcome", outcome)}}, nil)
	return err
}

// OSREvent journals one on-stack-replacement decision made while
// migrating a live frame during code replacement. All attributes are
// identity: a replayed round re-walks the same stacks against the same
// layouts, so every OSR decision — which frame, from which PC, mapped
// where (or fallen back) — must recur exactly; drift surfaces as a
// DivergenceError before the divergent round can commit.
func (s *Session) OSREvent(tid, frame int, oldPC uint64, outcome string, newPC uint64) error {
	if !s.Active() {
		return nil
	}
	_, err := s.step(trace.Event{Type: trace.EvOSRDecision, Stage: "replace.osr",
		Attrs: trace.Attrs{
			trace.Int("tid", tid), trace.Int("frame", frame),
			trace.String("old_pc", fmt.Sprintf("%#x", oldPC)),
			trace.String("outcome", outcome),
			trace.String("new_pc", fmt.Sprintf("%#x", newPC))}}, nil)
	return err
}

// DriftEvent journals one drift-detector verdict for a service. All
// attributes are identity: a replayed drift scan re-summarizes the same
// (replayed) sample stream against the same baseline, so the divergence
// score — journaled bit-exactly via Float64bits — the trigger flag, and
// the reason must all recur; any drift in the drift detector surfaces as
// a DivergenceError before the divergent wave can run.
func (s *Session) DriftEvent(service string, scoreBits uint64, trigger bool, reason string) error {
	if !s.Active() {
		return nil
	}
	_, err := s.step(trace.Event{Type: trace.EvDriftDecision, Stage: "profile.drift",
		Service: service,
		Attrs: trace.Attrs{
			trace.Int("score_bits", int(scoreBits)),
			trace.Bool("trigger", trigger),
			trace.String("reason", reason)}}, nil)
	return err
}

// ProfileIngest journals one externally pushed profile batch (the
// control plane's POST /profile) being absorbed into a service's sample
// store. The batch shape and digest are identity: external pushes are
// environment input, not derivable from the recorded execution, so a
// journal containing them only replays against a harness that re-supplies
// the same batches in the same order — anything else diverges loudly.
func (s *Session) ProfileIngest(service string, samples, branches int, digest string) error {
	if !s.Active() {
		return nil
	}
	_, err := s.step(trace.Event{Type: trace.EvProfileIngest, Stage: "profile.ingest",
		Service: service,
		Attrs: trace.Attrs{
			trace.Int("samples", samples),
			trace.Int("branches", branches),
			trace.String("digest", digest)}}, nil)
	return err
}

// FaultHook wraps a tracee-level fault hook (core.Options.FaultHook).
// Record mode journals each firing decision; replay mode reconstructs
// the decisions from the journal alone — the inner hook (usually nil on
// replay) is never consulted.
func (s *Session) FaultHook(inner func(op string, n int) error) func(string, int) error {
	if !s.Active() {
		return inner
	}
	if s.Recording() && inner == nil {
		return nil
	}
	return func(op string, n int) error {
		identity := trace.Attrs{trace.String("op", op), trace.Int("op_index", n)}
		return s.Fault("fault.hook", identity, func() error {
			if inner == nil {
				return nil
			}
			return inner(op, n)
		})
	}
}
