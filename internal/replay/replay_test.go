package replay

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// roundTrip serializes a recorder's journal and parses it back, exactly
// like a shipped artifact.
func roundTrip(t *testing.T, s *Session) []trace.Event {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestNilSessionPassesThrough(t *testing.T) {
	var s *Session
	if s.Active() || s.Recording() || s.Replaying() || s.Mode() != ModeOff {
		t.Error("nil session reports a mode")
	}
	if s.Err() != nil || s.Finish() != nil || s.Journal() != nil {
		t.Error("nil session has state")
	}
	inner := &fakeClock{now: time.Unix(100, 0)}
	if got := s.Clock(inner).Now(); !got.Equal(inner.now) {
		t.Errorf("nil-session clock read %v, want inner %v", got, inner.now)
	}
	if got := s.Jitter(func() float64 { return 0.5 })(); got != 0.5 {
		t.Errorf("nil-session jitter = %v, want 0.5", got)
	}
	if s.SchedQuantum(nil) != nil {
		t.Error("nil session wrapped a nil quantum source")
	}
	called := false
	err := s.Fault("site", nil, func() error { called = true; return nil })
	if err != nil || !called {
		t.Error("nil-session fault did not run the live hook")
	}
	if err := s.Checkpoint("x", 1); err != nil {
		t.Error("nil-session checkpoint errored")
	}
}

type fakeClock struct {
	now    time.Time
	slept  []time.Duration
	stepBy time.Duration
}

func (c *fakeClock) Now() time.Time {
	n := c.now
	c.now = c.now.Add(c.stepBy)
	return n
}
func (c *fakeClock) Sleep(d time.Duration) { c.slept = append(c.slept, d) }

// TestClockJitterRoundTrip records clock reads, sleeps, and jitter
// draws, then replays them: the replayed values must be the recorded
// ones (not the new inner source's), the inner sleep must not run, and
// the re-recorded journal must be byte-identical.
func TestClockJitterRoundTrip(t *testing.T) {
	rec := NewRecorder(0)
	if err := rec.Meta(trace.String("kind", "unit")); err != nil {
		t.Fatal(err)
	}
	inner := &fakeClock{now: time.Unix(1000, 12345), stepBy: time.Second}
	clk := rec.Clock(inner)
	draws := []float64{0.25, 0.75, math.Pi / 4}
	di := 0
	jit := rec.Jitter(func() float64 { d := draws[di]; di++; return d })

	var wantNow []time.Time
	for i := 0; i < 3; i++ {
		wantNow = append(wantNow, clk.Now())
	}
	clk.Sleep(42 * time.Millisecond)
	var wantJit []float64
	for i := 0; i < 3; i++ {
		wantJit = append(wantJit, jit())
	}
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	var recorded bytes.Buffer
	if err := rec.WriteJSONL(&recorded); err != nil {
		t.Fatal(err)
	}

	events := roundTrip(t, rec)
	rp, err := NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Meta(trace.String("kind", "unit")); err != nil {
		t.Fatal(err)
	}
	inner2 := &fakeClock{now: time.Unix(9999, 0), stepBy: time.Hour} // wrong on purpose
	clk2 := rp.Clock(inner2)
	jit2 := rp.Jitter(func() float64 { return -1 }) // wrong on purpose
	for i, want := range wantNow {
		if got := clk2.Now(); !got.Equal(want) {
			t.Errorf("replayed Now %d = %v, want recorded %v", i, got, want)
		}
	}
	clk2.Sleep(42 * time.Millisecond)
	if len(inner2.slept) != 0 {
		t.Error("replay performed a real sleep")
	}
	for i, want := range wantJit {
		if got := jit2(); got != want {
			t.Errorf("replayed jitter %d = %v, want recorded %v (bit-exact)", i, got, want)
		}
	}
	if err := rp.Finish(); err != nil {
		t.Fatal(err)
	}
	var rerecorded bytes.Buffer
	if err := rp.WriteJSONL(&rerecorded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recorded.Bytes(), rerecorded.Bytes()) {
		t.Error("re-recorded journal not byte-identical")
	}
}

// TestSchedQuantumRoundTrip records a perturbing scheduler-quantum
// source and replays its picks from the journal with no live source.
func TestSchedQuantumRoundTrip(t *testing.T) {
	rec := NewRecorder(0)
	src := rec.SchedQuantum(func(tid, proposed int) int { return proposed - tid - 1 })
	if src == nil {
		t.Fatal("recording wrapper for a live source is nil")
	}
	var want []int
	for tid := 0; tid < 3; tid++ {
		want = append(want, src(tid, 10))
	}

	events := roundTrip(t, rec)
	rp, err := NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	src2 := rp.SchedQuantum(nil) // journal-fed: no live source needed
	if src2 == nil {
		t.Fatal("replay wrapper is nil despite a recorded injected policy")
	}
	for tid := 0; tid < 3; tid++ {
		if got := src2(tid, 10); got != want[tid] {
			t.Errorf("replayed quantum for tid %d = %d, want %d", tid, got, want[tid])
		}
	}
	if err := rp.Finish(); err != nil {
		t.Fatal(err)
	}

	// A recorded nil policy replays as nil: the deterministic default
	// needs no journal feed.
	rec2 := NewRecorder(0)
	if rec2.SchedQuantum(nil) != nil {
		t.Error("recording wrapper for a nil source is not nil")
	}
	rp2, err := NewReplayer(roundTrip(t, rec2))
	if err != nil {
		t.Fatal(err)
	}
	if rp2.SchedQuantum(func(tid, proposed int) int { return 1 }) != nil {
		t.Error("replay invented a quantum source the recording did not have")
	}
}

// TestFaultConditionalPeek: only firing faults are recorded, and replay
// consumes a fault decision exactly when the identity matches — every
// other probe returns nil without touching the journal.
func TestFaultConditionalPeek(t *testing.T) {
	boom := errors.New("op 2 failed")
	rec := NewRecorder(0)
	for i := 0; i < 5; i++ {
		ident := trace.Attrs{trace.String("op", "write"), trace.Int("op_index", i)}
		err := rec.Fault("unit.site", ident, func() error {
			if i == 2 {
				return boom
			}
			return nil
		})
		if (err != nil) != (i == 2) {
			t.Fatalf("record fault at %d: %v", i, err)
		}
	}
	if n := len(rec.Events()); n != 1 {
		t.Fatalf("recorded %d events, want 1 (only the firing fault)", n)
	}

	rp, err := NewReplayer(roundTrip(t, rec))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ident := trace.Attrs{trace.String("op", "write"), trace.Int("op_index", i)}
		err := rp.Fault("unit.site", ident, func() error {
			t.Fatal("replay ran the live hook")
			return nil
		})
		if i == 2 {
			if !IsRecordedFault(err) {
				t.Fatalf("replay fault at %d: %v, want RecordedFault", i, err)
			}
			if err.Error() != boom.Error() {
				t.Errorf("recorded fault message %q, want %q verbatim", err.Error(), boom.Error())
			}
		} else if err != nil {
			t.Fatalf("replay injected a fault at %d: %v", i, err)
		}
	}
	if err := rp.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointDivergence: a replayed checkpoint whose recomputed hash
// differs must fail immediately with the diverging seq and both
// payloads, and the error must stick.
func TestCheckpointDivergence(t *testing.T) {
	rec := NewRecorder(0)
	if err := rec.Checkpoint("round", 0xabc, trace.Int("version", 1)); err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(roundTrip(t, rec))
	if err != nil {
		t.Fatal(err)
	}
	err = rp.Checkpoint("round", 0xdef, trace.Int("version", 1))
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("mismatched checkpoint returned %v, want DivergenceError", err)
	}
	if div.Seq != 1 {
		t.Errorf("diverged at seq %d, want 1", div.Seq)
	}
	msg := err.Error()
	for _, want := range []string{"diverged at seq 1", "0xabc", "0xdef"} {
		if !strings.Contains(msg, want) {
			t.Errorf("divergence message %q missing %q", msg, want)
		}
	}
	if rp.Err() == nil || rp.Finish() == nil {
		t.Error("divergence did not stick")
	}
}

// TestReplayExhaustionAndUnconsumed covers both length mismatches: an
// execution that asks for more decisions than were recorded, and one
// that ends before consuming the whole journal.
func TestReplayExhaustionAndUnconsumed(t *testing.T) {
	rec := NewRecorder(0)
	if err := rec.Checkpoint("only", 1); err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(roundTrip(t, rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Checkpoint("only", 1); err != nil {
		t.Fatal(err)
	}
	err = rp.Checkpoint("extra", 2)
	var div *DivergenceError
	if !errors.As(err, &div) || div.Seq != 2 {
		t.Errorf("journal exhaustion returned %v, want DivergenceError at seq 2", err)
	}
	if !strings.Contains(err.Error(), "journal exhausted") {
		t.Errorf("exhaustion message: %q", err.Error())
	}

	rec2 := NewRecorder(0)
	rec2.Checkpoint("a", 1)
	rec2.Checkpoint("b", 2)
	rp2, err := NewReplayer(roundTrip(t, rec2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rp2.Checkpoint("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := rp2.Finish(); err == nil || !strings.Contains(err.Error(), "unconsumed") {
		t.Errorf("short run finished clean: %v", err)
	}
}

// TestTruncatedJournalRefused: a ring that wrapped produces a dump the
// replayer must refuse with a clear "journal truncated" error — at
// Finish in record mode, and at construction in replay mode.
func TestTruncatedJournalRefused(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		if err := rec.Checkpoint("cp", uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	err := rec.Finish()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("overflowing recorder finished clean: %v", err)
	}
	if !strings.Contains(err.Error(), "journal truncated — replay unavailable") {
		t.Errorf("truncation message: %q", err.Error())
	}

	_, err = NewReplayer(roundTrip(t, rec))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated dump accepted by the replayer: %v", err)
	}
	if !strings.Contains(err.Error(), "journal truncated — replay unavailable") {
		t.Errorf("replayer truncation message: %q", err.Error())
	}

	// Gaps in the middle are corruption, not truncation.
	events := []trace.Event{{Seq: 1, Type: trace.EvCheckpoint}, {Seq: 3, Type: trace.EvCheckpoint}}
	if _, err := NewReplayer(events); err == nil || errors.Is(err, ErrTruncated) {
		t.Errorf("gapped journal: %v", err)
	}
	if _, err := NewReplayer(nil); err == nil {
		t.Error("empty journal accepted")
	}
}

// TestMetaMismatch: replaying under a different configuration diverges
// on the very first event.
func TestMetaMismatch(t *testing.T) {
	rec := NewRecorder(0)
	if err := rec.Meta(trace.String("workload", "kvcache"), trace.Int("rounds", 2)); err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(roundTrip(t, rec))
	if err != nil {
		t.Fatal(err)
	}
	err = rp.Meta(trace.String("workload", "sqldb"), trace.Int("rounds", 2))
	var div *DivergenceError
	if !errors.As(err, &div) || div.Seq != 1 {
		t.Fatalf("config drift returned %v, want DivergenceError at seq 1", err)
	}
	meta, err := MetaOf(rp.Events())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := meta.Get("workload"); v != "kvcache" {
		t.Errorf("MetaOf workload = %v", v)
	}
}

// TestDumpArtifact honors OCOLOS_TEST_ARTIFACTS and sanitizes names.
func TestDumpArtifact(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("OCOLOS_TEST_ARTIFACTS", dir)
	rec := NewRecorder(0)
	if err := rec.Checkpoint("cp", 7); err != nil {
		t.Fatal(err)
	}
	path, err := rec.DumpArtifact("suite/TestX case 1")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || strings.ContainsAny(filepath.Base(path), "/: ") {
		t.Errorf("artifact path %q not sanitized into %q", path, dir)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != trace.EvCheckpoint || len(data) == 0 {
		t.Errorf("artifact contents: %d events, %d bytes", len(got), len(data))
	}
}
