// Package replay is the rr-style deterministic record/replay layer for
// whole optimization sessions (profile → perf2bolt → BOLT → replace →
// rollback). The simulated substrate is deterministic by construction —
// round-robin scheduling, cycle-driven perf sampling, seeded workload
// generators — so only the *injected* nondeterminism needs recording:
// wall-clock reads and backoff sleeps (fleet), jitter draws (retry
// backoff), perf sampling deadlines, non-default scheduler quantum
// choices, and fault-hook decisions. A Session in record mode journals
// each such decision as a typed trace.Event; in replay mode it feeds the
// recorded decisions back in order, re-recording as it goes, so a
// faithful replay yields a byte-identical journal. StateHash checkpoints
// at every replace/rollback boundary make divergence fail fast with the
// exact sequence number and both event payloads.
//
// The decision sources are plain func/interface seams (perf.NextDeadline,
// proc.SchedQuantum, core/fleet fault hooks, fleet.Clock), so the
// instrumented packages never import replay types they don't need; a nil
// *Session is a valid pass-through everywhere. See docs/replay.md.
package replay

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/trace"
)

// Mode is a session's direction.
type Mode int

const (
	// ModeOff: no session; every wrapper passes through to its inner source.
	ModeOff Mode = iota
	// ModeRecord: decisions run live and are journaled.
	ModeRecord
	// ModeReplay: decisions are fed back from the recorded journal.
	ModeReplay
)

// DefaultCap bounds a recording session's journal. Recorded events are
// only the actual nondeterministic decisions (a few hundred per round,
// dominated by perf sampling deadlines), so the default is generous; a
// session that still overflows produces a truncated dump the replayer
// refuses with ErrTruncated.
const DefaultCap = 1 << 17

// ErrTruncated marks a journal whose oldest events were evicted by the
// recorder's ring before the dump — replay needs the complete prefix.
var ErrTruncated = errors.New("replay: journal truncated — replay unavailable")

// DivergenceError reports the first point where a replayed execution
// asked for a decision the recording does not contain (or contains
// differently). Want is the recorded event, Got what the execution
// produced; Seq is where the journals fork.
type DivergenceError struct {
	Seq  uint64
	Want trace.Event // recorded (zero Event when the journal was exhausted)
	Got  trace.Event // what the replayed execution produced
}

func (e *DivergenceError) Error() string {
	if e.Want.Type == 0 && e.Want.Seq == 0 {
		return fmt.Sprintf("replay: diverged at seq %d: journal exhausted, but execution asked for %s",
			e.Seq, fmtEvent(e.Got))
	}
	return fmt.Sprintf("replay: diverged at seq %d: recorded %s, got %s",
		e.Seq, fmtEvent(e.Want), fmtEvent(e.Got))
}

func fmtEvent(e trace.Event) string {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Sprintf("%+v", e)
	}
	return string(b)
}

// RecordedFault is the error a replaying fault hook returns in place of
// the live hook's error: its message is the recorded message verbatim,
// so error matching on message content behaves identically under replay.
type RecordedFault struct{ Msg string }

func (e *RecordedFault) Error() string { return e.Msg }

// IsRecordedFault reports whether err carries a journal-fed fault
// decision (the replay analog of a test's injected-fault sentinel).
func IsRecordedFault(err error) bool {
	var rf *RecordedFault
	return errors.As(err, &rf)
}

// Session records or replays one optimization session's nondeterminism.
// A nil *Session (or ModeOff) passes every decision through live. All
// methods are safe for concurrent use, but meaningful replay requires
// the decisions themselves to arrive in a deterministic order — the
// fleet manager serializes its wave (Workers=1) while a session is
// active for exactly that reason.
type Session struct {
	mode Mode

	mu  sync.Mutex
	out *trace.Journal // recorded (or re-recorded) decisions
	in  []trace.Event  // replay input
	pos int            // next replay event
	err error          // sticky first divergence
}

// NewRecorder returns a recording session (cap <= 0 means DefaultCap).
func NewRecorder(cap int) *Session {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Session{mode: ModeRecord, out: trace.NewJournal(cap)}
}

// NewReplayer returns a session that replays the given recorded events.
// The journal must be complete (first seq 1 — a ring that wrapped has
// evicted the prefix replay needs) and contiguous.
func NewReplayer(events []trace.Event) (*Session, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("replay: empty journal")
	}
	if events[0].Seq != 1 {
		return nil, fmt.Errorf("%w (first recorded seq %d; the %d earlier events were evicted by the recorder's ring)",
			ErrTruncated, events[0].Seq, events[0].Seq-1)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			return nil, fmt.Errorf("replay: corrupt journal: seq %d follows seq %d at index %d",
				events[i].Seq, events[i-1].Seq, i)
		}
	}
	// The re-record journal must hold every event or byte-identity breaks.
	return &Session{mode: ModeReplay, in: events, out: trace.NewJournal(len(events))}, nil
}

// Load parses a journal dump (the -record output) into events.
func Load(r io.Reader) ([]trace.Event, error) { return trace.ReadJSONL(r) }

// LoadFile reads and parses a journal dump from disk.
func LoadFile(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Mode returns the session's direction (ModeOff on nil).
func (s *Session) Mode() Mode {
	if s == nil {
		return ModeOff
	}
	return s.mode
}

// Active reports whether the session records or replays.
func (s *Session) Active() bool { return s.Mode() != ModeOff }

// Recording reports record mode.
func (s *Session) Recording() bool { return s.Mode() == ModeRecord }

// Replaying reports replay mode.
func (s *Session) Replaying() bool { return s.Mode() == ModeReplay }

// Err returns the first divergence the session hit (nil while faithful).
func (s *Session) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Journal returns the session's output journal: the recording in record
// mode, the re-recording in replay mode.
func (s *Session) Journal() *trace.Journal {
	if s == nil {
		return nil
	}
	return s.out
}

// Events returns the output journal's events.
func (s *Session) Events() []trace.Event { return s.Journal().Events() }

// WriteJSONL dumps the output journal as JSONL.
func (s *Session) WriteJSONL(w io.Writer) error { return s.Journal().WriteJSONL(w) }

// Finish validates the session end state. In record mode it fails if
// the ring evicted events (the dump would be unreplayable); in replay
// mode it fails on a sticky divergence or on recorded decisions the
// execution never consumed (the run ended short of the recording).
func (s *Session) Finish() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.mode == ModeRecord {
		if d := s.out.Dropped(); d > 0 {
			return fmt.Errorf("%w (recorder ring evicted %d events; raise the journal cap)", ErrTruncated, d)
		}
		return nil
	}
	if s.mode == ModeReplay && s.pos < len(s.in) {
		return fmt.Errorf("replay: execution ended with %d recorded decisions unconsumed (next: %s)",
			len(s.in)-s.pos, fmtEvent(s.in[s.pos]))
	}
	return nil
}

// step records one decision or replays the next recorded one. e carries
// the decision's identity (type, stage, service, and identity attrs the
// replaying execution recomputes); live computes the payload attrs in
// record mode and is not called during replay. The returned attrs are
// identity+payload — recorded values in replay mode.
func (s *Session) step(e trace.Event, live func() trace.Attrs) (trace.Attrs, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	switch s.mode {
	case ModeRecord:
		if live != nil {
			e.Attrs = append(e.Attrs, live()...)
		}
		s.out.Append(e)
		return e.Attrs, nil
	case ModeReplay:
		if s.pos >= len(s.in) {
			s.err = &DivergenceError{Seq: uint64(len(s.in)) + 1, Got: e}
			return nil, s.err
		}
		rec := s.in[s.pos]
		if !sameDecision(rec, e) {
			s.err = &DivergenceError{Seq: rec.Seq, Want: rec, Got: e}
			return nil, s.err
		}
		s.pos++
		s.out.Append(rec)
		return rec.Attrs, nil
	}
	return nil, nil
}

// sameDecision reports whether the recorded event rec matches the
// decision identity e: same type/stage/service/err and e's attrs (the
// recomputed identity) as an exact prefix of rec's (identity+payload).
func sameDecision(rec, e trace.Event) bool {
	if rec.Type != e.Type || rec.Stage != e.Stage || rec.Service != e.Service || rec.Err != e.Err {
		return false
	}
	if len(e.Attrs) > len(rec.Attrs) {
		return false
	}
	for i, a := range e.Attrs {
		if rec.Attrs[i].Key != a.Key || !attrValueEqual(rec.Attrs[i].Value, a.Value) {
			return false
		}
	}
	return true
}

// attrValueEqual compares attr values across a JSON round-trip: the
// constructors store int64/float64/string/bool and Attrs.UnmarshalJSON
// decodes integral numbers as int64, so a numeric cross-check is the
// only normalization needed.
func attrValueEqual(a, b any) bool {
	if a == b {
		return true
	}
	af, aok := asFloat(a)
	bf, bok := asFloat(b)
	return aok && bok && af == bf
}

func asFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}

// Meta journals the session header: the config identity the replayer
// uses to reconstruct the run. All attrs are identity — a replay started
// with a different configuration diverges on its first event.
func (s *Session) Meta(attrs ...trace.Attr) error {
	if !s.Active() {
		return nil
	}
	_, err := s.step(trace.Event{Type: trace.EvSessionMeta, Stage: "session"}, func() trace.Attrs {
		return attrs
	})
	if s.Replaying() && err == nil {
		// Re-check identity: meta attrs are recomputed by the replayer from
		// the recorded meta itself, so a mismatch means config drift.
		return s.verifyLast(attrs)
	}
	return err
}

// verifyLast compares attrs against the most recently replayed event.
func (s *Session) verifyLast(attrs trace.Attrs) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.in[s.pos-1]
	if len(attrs) != len(rec.Attrs) {
		s.err = &DivergenceError{Seq: rec.Seq, Want: rec,
			Got: trace.Event{Type: rec.Type, Stage: rec.Stage, Attrs: attrs}}
		return s.err
	}
	for i, a := range attrs {
		if rec.Attrs[i].Key != a.Key || !attrValueEqual(rec.Attrs[i].Value, a.Value) {
			s.err = &DivergenceError{Seq: rec.Seq, Want: rec,
				Got: trace.Event{Type: rec.Type, Stage: rec.Stage, Attrs: attrs}}
			return s.err
		}
	}
	return nil
}

// MetaOf returns the session-meta attrs heading a recorded journal.
func MetaOf(events []trace.Event) (trace.Attrs, error) {
	if len(events) == 0 || events[0].Type != trace.EvSessionMeta {
		return nil, fmt.Errorf("replay: journal does not start with a session_meta event")
	}
	return events[0].Attrs, nil
}

// Checkpoint journals a named state-hash checkpoint. Everything is
// identity: in replay mode the execution recomputes the hash, and any
// mismatch surfaces immediately as a DivergenceError.
func (s *Session) Checkpoint(name string, hash uint64, extra ...trace.Attr) error {
	if !s.Active() {
		return nil
	}
	attrs := trace.Attrs{trace.String("name", name), trace.String("state_hash", fmt.Sprintf("%#x", hash))}
	attrs = append(attrs, extra...)
	_, err := s.step(trace.Event{Type: trace.EvCheckpoint, Stage: "checkpoint", Attrs: attrs}, nil)
	return err
}

// Fault records or replays one fault-injection decision at the named
// site. Only firing faults are journaled (the rr discipline: record the
// deviation, not every non-event), so in replay mode the next recorded
// event is consumed exactly when its identity matches this site — and
// the recorded error is returned as a *RecordedFault without running
// any live hook, which is what lets a failure reproduce from its
// journal alone.
func (s *Session) Fault(site string, identity trace.Attrs, live func() error) error {
	if !s.Active() {
		if live != nil {
			return live()
		}
		return nil
	}
	if s.Recording() {
		var err error
		if live != nil {
			err = live()
		}
		if err != nil {
			s.mu.Lock()
			if s.err == nil {
				attrs := append(append(trace.Attrs{}, identity...), trace.String("fault_err", err.Error()))
				s.out.Append(trace.Event{Type: trace.EvFaultDecision, Stage: site, Attrs: attrs})
			}
			s.mu.Unlock()
		}
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.pos < len(s.in) {
		rec := s.in[s.pos]
		if rec.Type == trace.EvFaultDecision && rec.Stage == site &&
			sameDecision(rec, trace.Event{Type: rec.Type, Stage: site, Attrs: identity}) {
			s.pos++
			s.out.Append(rec)
			msg, _ := rec.Attrs.Get("fault_err")
			str, _ := msg.(string)
			return &RecordedFault{Msg: str}
		}
	}
	return nil
}

// ArtifactDir is where failing tests dump their journals: the
// OCOLOS_TEST_ARTIFACTS environment variable when set, else a stable
// directory under the system temp dir.
func ArtifactDir() string {
	if d := os.Getenv("OCOLOS_TEST_ARTIFACTS"); d != "" {
		return d
	}
	return filepath.Join(os.TempDir(), "ocolos-artifacts")
}

// DumpArtifact writes the session's journal to ArtifactDir()/name.jsonl
// and returns the path; failing replay-based tests call this so every CI
// failure ships its own repro.
func (s *Session) DumpArtifact(name string) (string, error) {
	dir := ArtifactDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name = strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ':
			return '-'
		}
		return r
	}, name)
	path := filepath.Join(dir, name+".jsonl")
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		return "", err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
