package diffcheck

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"repro/internal/bolt"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/workloads/loopsim"
	"repro/internal/workloads/wl"
)

// replaceBenchArm is one side of the OSR ablation in BENCH_replace.json.
type replaceBenchArm struct {
	PauseSeconds     float64 `json:"pause_seconds"`
	BytesCopied      uint64  `json:"bytes_copied"`
	StackFuncsCopied int     `json:"stack_funcs_copied"`
	OSRFramesMapped  int     `json:"osr_frames_mapped"`
	OSRFallbacks     int     `json:"osr_fallbacks"`
	Throughput       float64 `json:"throughput"`
	// C0MainResidency is the share of main's own post-round execution
	// that still runs the original (C0) image. The serve loop never
	// returns, so without OSR this stays 1.0 forever — the optimized
	// layout of main never takes effect. OSR drives it to 0.
	C0MainResidency float64 `json:"c0_main_residency"`
}

// replaceBenchDoc is the BENCH_replace.json schema: the cost of
// migrating loop-parked frames, with and without on-stack replacement,
// on the workload built to be OSR's worst case.
type replaceBenchDoc struct {
	Workload string          `json:"workload"`
	Input    string          `json:"input"`
	Scale    string          `json:"scale"`
	Rounds   int             `json:"rounds"`
	OSR      replaceBenchArm `json:"osr"`
	NoOSR    replaceBenchArm `json:"no_osr"`
}

// TestReplaceBench is the replacement-cost benchmark behind
// scripts/bench.sh: the loopsim service (whose main never returns, so
// every round must migrate a parked frame) run through REPLACE_BENCH_ROUNDS
// optimization rounds twice — once with OSR, once with core.Options.NoOSR —
// and the per-arm pause time, copy traffic, and OSR outcomes written to
// REPLACE_BENCH_OUT. Gated behind the env var; scale with
// REPLACE_BENCH_SCALE=small|full (default full).
func TestReplaceBench(t *testing.T) {
	out := os.Getenv("REPLACE_BENCH_OUT")
	if out == "" {
		t.Skip("set REPLACE_BENCH_OUT=path to run the replacement benchmark")
	}
	rounds := 3
	if v := os.Getenv("REPLACE_BENCH_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad REPLACE_BENCH_ROUNDS %q", v)
		}
		rounds = n
	}
	scale, sc := "full", loopsim.Full()
	if os.Getenv("REPLACE_BENCH_SCALE") == "small" {
		scale, sc = "small", loopsim.Small()
	}
	const input = "steady"

	arm := func(noOSR bool) replaceBenchArm {
		w, err := loopsim.Build(sc)
		if err != nil {
			t.Fatal(err)
		}
		d, err := w.NewDriver(input, 1)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := w.Load(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := core.New(pr, w.Binary, core.Options{
			NoOSR: noOSR,
			Bolt:  bolt.Options{AllowReBolt: true},
			Perf:  perf.RecorderOptions{PeriodCycles: 2000},
		})
		if err != nil {
			t.Fatal(err)
		}
		var a replaceBenchArm
		pr.RunFor(0.0003) // warm up: park the serve loop mid-flight
		for r := 0; r < rounds; r++ {
			// Stagger the profile windows so the stop-the-world pause does
			// not resonate with the workload's loop period and land every
			// round at the same (possibly unmappable) loop offset.
			rep, err := ctl.OptimizeRound(0.0005 + float64(r)*0.000137)
			if err != nil {
				t.Fatalf("round %d (noOSR=%v): %v", r, noOSR, err)
			}
			a.PauseSeconds += rep.PauseSeconds
			if rs := rep.Replace; rs != nil {
				a.BytesCopied += rs.BytesCopied
				a.StackFuncsCopied += rs.StackFuncsCopied
				a.OSRFramesMapped += rs.OSRFramesMapped
				a.OSRFallbacks += rs.OSRFallbacks
			}
			pr.RunFor(0.0002)
			if err := pr.Fault(); err != nil {
				t.Fatalf("round %d (noOSR=%v): %v", r, noOSR, err)
			}
		}
		a.Throughput = wl.Measure(pr, d, 0.0005)
		if err := pr.Fault(); err != nil {
			t.Fatalf("post-round (noOSR=%v): %v", noOSR, err)
		}
		// Where is the parked serve loop actually executing now? Sample
		// the thread PC over a single-stepped window, and of the samples
		// inside any image of main (the frame that can never drain by
		// returning), count the share still on the original C0 image.
		th := pr.Threads[0]
		inC0, inMain := 0, 0
		for i := 0; i < 4000 && !th.Halted; i++ {
			if name, ver, ok := ctl.Whereis(th.PC); ok && name == "main" {
				inMain++
				if ver == 0 {
					inC0++
				}
			}
			pr.Step(th)
		}
		if inMain > 0 {
			a.C0MainResidency = float64(inC0) / float64(inMain)
		}
		return a
	}

	doc := replaceBenchDoc{
		Workload: "loopsim",
		Input:    input,
		Scale:    scale,
		Rounds:   rounds,
		OSR:      arm(false),
		NoOSR:    arm(true),
	}

	// The acceptance bar for the workload this benchmark exists for:
	// with OSR on, parked frames actually transfer; with it off, none do.
	if doc.OSR.OSRFramesMapped == 0 {
		t.Error("OSR arm mapped no frames on the loop-parked workload")
	}
	if doc.NoOSR.OSRFramesMapped != 0 || doc.NoOSR.OSRFallbacks != 0 {
		t.Errorf("NoOSR arm counted OSR activity: %+v", doc.NoOSR)
	}

	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("OSR: pause %.6fs, %d copied funcs, %d mapped / NoOSR: pause %.6fs, %d copied funcs",
		doc.OSR.PauseSeconds, doc.OSR.StackFuncsCopied, doc.OSR.OSRFramesMapped,
		doc.NoOSR.PauseSeconds, doc.NoOSR.StackFuncsCopied)
}
