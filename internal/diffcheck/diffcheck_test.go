package diffcheck

import (
	"fmt"
	"testing"

	"repro/internal/bolt"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/proc"
)

// TestLayoutEquivalence is the oracle over every workload: the BOLTed
// layout and the mid-run-replaced execution must be architecturally
// equivalent to the compiler-default layout.
func TestLayoutEquivalence(t *testing.T) {
	for _, tgt := range Targets() {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			t.Parallel()
			diffs, err := Check(tgt)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diffs {
				t.Errorf("divergence: %s", d)
			}
		})
	}
}

// TestBaselineIsMeaningful guards the oracle against vacuity: the
// baseline run must do real work and the bolted binary must really move
// functions — an equivalence check over an empty run proves nothing.
func TestBaselineIsMeaningful(t *testing.T) {
	tgt, err := TargetByName("kvcache")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Halted || base.Fault != nil {
		t.Fatalf("baseline did not finish cleanly: halted=%v fault=%v", base.Halted, base.Fault)
	}
	if base.Completed == 0 || base.Syscalls == 0 || base.Insts == 0 {
		t.Fatalf("baseline did no work: completed=%d syscalls=%d insts=%d",
			base.Completed, base.Syscalls, base.Insts)
	}
	if len(base.Work) < 3 {
		t.Fatalf("work attribution covered only %d functions", len(base.Work))
	}
	bin, err := BoltBinary(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !bin.Bolted {
		t.Fatal("BoltBinary returned an unbolted binary")
	}
	moved := 0
	for _, f := range bin.Funcs {
		if f.Addr >= bolt.DefaultTextBase {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("bolted layout moved no functions; the equivalence check is vacuous")
	}
}

// TestTraceDeterminism: the harness itself must be deterministic — two
// baseline runs of the same target produce byte-identical traces, or
// every comparison it makes is noise.
func TestTraceDeterminism(t *testing.T) {
	tgt, err := TargetByName("rtlsim")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Baseline(tgt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Baseline(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(a, b); len(diffs) != 0 {
		t.Fatalf("two identical baseline runs diverge: %v", diffs)
	}
	if a.Insts != b.Insts || a.Seconds != b.Seconds {
		t.Fatalf("instruction/time counts differ across identical runs: %d/%g vs %d/%g",
			a.Insts, a.Seconds, b.Insts, b.Seconds)
	}
}

// corruptFirstCall re-targets the first direct call in the optimized hot
// text by one instruction slot — the shape of a bad BOLT relocation.
func corruptFirstCall(bin *obj.Binary) error {
	sec := bin.Section(obj.SecText)
	if sec == nil {
		return fmt.Errorf("bolted binary has no %s section", obj.SecText)
	}
	for off := 0; off+isa.InstBytes <= len(sec.Data); off += isa.InstBytes {
		in, err := isa.Decode(sec.Data[off:])
		if err != nil || in.Op != isa.CALL {
			continue
		}
		in.Imm += isa.InstBytes
		in.Encode(sec.Data[off:])
		return nil
	}
	return fmt.Errorf("no CALL instruction in hot text")
}

// TestDetectsCorruptedRelocation: the harness can fail, not just pass. A
// mis-relocated call in the injected code must surface as a divergence
// (or an outright fault) against the baseline.
func TestDetectsCorruptedRelocation(t *testing.T) {
	tgt, err := TargetByName("kvcache")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(tgt)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := BoltedWith(tgt, Hooks{MutateBinary: corruptFirstCall})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(base, bad); len(diffs) == 0 {
		t.Fatal("corrupted relocation was not detected as non-equivalent")
	}
}

// TestDetectsClobberedCodePointer: a botched pointer patch — a v-table
// slot left pointing at the wrong function, the exact failure OCOLOS's
// stop-the-world v-table pass must never produce — must be flagged.
func TestDetectsClobberedCodePointer(t *testing.T) {
	tgt, err := TargetByName("docdb")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(tgt)
	if err != nil {
		t.Fatal(err)
	}
	clobber := func(p *proc.Process) {
		var vt *obj.VTable
		for _, v := range p.Bin.VTables {
			if len(v.Slots) >= 2 {
				vt = v
				break
			}
		}
		if vt == nil {
			t.Fatal("docdb has no multi-slot v-table")
		}
		// Swap the first two slots: both remain valid function entries,
		// so nothing faults — only semantics change.
		s0 := p.Mem.ReadWord(vt.Addr)
		s1 := p.Mem.ReadWord(vt.Addr + 8)
		p.Mem.WriteWord(vt.Addr, s1)
		p.Mem.WriteWord(vt.Addr+8, s0)
	}
	bad, err := BoltedWith(tgt, Hooks{PostLoad: clobber})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(base, bad); len(diffs) == 0 {
		t.Fatal("clobbered code pointer was not detected as non-equivalent")
	}
}

// TestCompareFlagsEveryAxis exercises Compare directly so a future edit
// cannot silently drop one of the equivalence dimensions.
func TestCompareFlagsEveryAxis(t *testing.T) {
	mk := func() *Trace {
		return &Trace{
			Name: "t", Halted: true, Completed: 5, Syscalls: 11,
			SyscallHash: 0xAB, GlobalsHash: 0xCD, GlobalsBytes: 64,
			Emitted: []uint64{1, 2}, Work: map[string]uint64{"f": 10},
		}
	}
	base := mk()
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"halted", func(tr *Trace) { tr.Halted = false }},
		{"fault", func(tr *Trace) { tr.Fault = fmt.Errorf("boom") }},
		{"completed", func(tr *Trace) { tr.Completed++ }},
		{"syscall count", func(tr *Trace) { tr.Syscalls++ }},
		{"syscall digest", func(tr *Trace) { tr.SyscallHash++ }},
		{"emitted value", func(tr *Trace) { tr.Emitted[1]++ }},
		{"emitted length", func(tr *Trace) { tr.Emitted = tr.Emitted[:1] }},
		{"globals hash", func(tr *Trace) { tr.GlobalsHash++ }},
		{"globals size", func(tr *Trace) { tr.GlobalsBytes++ }},
		{"work count", func(tr *Trace) { tr.Work["f"]++ }},
		{"work set", func(tr *Trace) { tr.Work["g"] = 1 }},
	}
	if diffs := Compare(base, mk()); len(diffs) != 0 {
		t.Fatalf("identical traces reported divergent: %v", diffs)
	}
	for _, c := range cases {
		other := mk()
		c.mutate(other)
		if diffs := Compare(base, other); len(diffs) == 0 {
			t.Errorf("%s divergence not flagged", c.name)
		}
	}
}
