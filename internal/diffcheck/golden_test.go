package diffcheck

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/proc"
)

// legacyRun replicates the scheduler's pre-block-cache quantum loop on
// top of proc.Step, the per-instruction reference interpreter. It is the
// "before" side of the cycle-exact equivalence gate.
func legacyRun(p *proc.Process, maxInst uint64) uint64 {
	var executed uint64
	for !p.Paused() && p.Fault() == nil {
		ran := false
		for _, t := range p.Threads {
			if t.Halted {
				continue
			}
			ran = true
			for i := 0; i < proc.Quantum; i++ {
				if !p.Step(t) {
					break
				}
				executed++
			}
		}
		if !ran || (maxInst > 0 && executed >= maxInst) {
			break
		}
	}
	return executed
}

// TestCycleExactEngineEquivalence pins the block-cache execution engine
// to the Step reference interpreter: every workload must retire the same
// instructions AND account the same cycles, to the bit. This is the gate
// that makes the engine rewrite a pure wall-clock win — any model drift
// (an event reordered, a stall charged twice, a float added in a
// different order) shows up as a Stats mismatch here.
func TestCycleExactEngineEquivalence(t *testing.T) {
	for _, tgt := range Targets() {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			t.Parallel()
			run := func(useBlocks bool) (cpu.Stats, uint64) {
				w, d, err := tgt.load()
				if err != nil {
					t.Fatal(err)
				}
				p, err := proc.Load(w.Binary, proc.Options{Threads: 1, Handler: d})
				if err != nil {
					t.Fatal(err)
				}
				var n uint64
				if useBlocks {
					n = p.RunUntilHalt(defaultMaxInst)
				} else {
					n = legacyRun(p, defaultMaxInst)
				}
				if err := p.Fault(); err != nil {
					t.Fatal(err)
				}
				return p.Stats(), n
			}
			blk, blkN := run(true)
			ref, refN := run(false)
			if blkN != refN {
				t.Errorf("executed-instruction count: block engine %d, reference %d", blkN, refN)
			}
			if blk != ref {
				t.Errorf("block engine diverged from reference interpreter:\n"+
					"  golden quad block: insts=%d cycles=%v L1iMisses=%d mispredicts=%d\n"+
					"  golden quad ref:   insts=%d cycles=%v L1iMisses=%d mispredicts=%d\n"+
					"  full block: %+v\n  full ref:   %+v",
					blk.Instructions, blk.Cycles, blk.L1iMisses, blk.Mispredicts,
					ref.Instructions, ref.Cycles, ref.L1iMisses, ref.Mispredicts,
					blk, ref)
			}
		})
	}
}
