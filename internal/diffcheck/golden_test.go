package diffcheck

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/proc"
)

// legacyRun replicates the scheduler's pre-block-cache quantum loop on
// top of proc.Step, the per-instruction reference interpreter. It is the
// "before" side of the cycle-exact equivalence gate.
func legacyRun(p *proc.Process, maxInst uint64) uint64 {
	var executed uint64
	for !p.Paused() && p.Fault() == nil {
		ran := false
		for _, t := range p.Threads {
			if t.Halted {
				continue
			}
			ran = true
			for i := 0; i < proc.Quantum; i++ {
				if !p.Step(t) {
					break
				}
				executed++
			}
		}
		if !ran || (maxInst > 0 && executed >= maxInst) {
			break
		}
	}
	return executed
}

// TestCycleExactEngineEquivalence pins both fast execution tiers — the
// basic-block cache and the superblock trace engine layered on it — to
// the Step reference interpreter: every workload must retire the same
// instructions AND account the same cycles, to the bit. This is the gate
// that makes the engine rewrites a pure wall-clock win — any model drift
// (an event reordered, a stall charged twice, a float added in a
// different order) shows up as a Stats mismatch here. The superblock run
// must actually exercise traces (formation plus in-trace retirement), so
// the gate cannot silently pass by never entering the tier it pins.
func TestCycleExactEngineEquivalence(t *testing.T) {
	for _, tgt := range Targets() {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			t.Parallel()
			run := func(mode string) (cpu.Stats, uint64, proc.SuperblockStats) {
				w, d, err := tgt.load()
				if err != nil {
					t.Fatal(err)
				}
				opts := proc.Options{Threads: 1, Handler: d}
				if mode == "block" {
					opts.DisableSuperblocks = true
				}
				p, err := proc.Load(w.Binary, opts)
				if err != nil {
					t.Fatal(err)
				}
				var n uint64
				if mode == "legacy" {
					n = legacyRun(p, defaultMaxInst)
				} else {
					n = p.RunUntilHalt(defaultMaxInst)
				}
				if err := p.Fault(); err != nil {
					t.Fatal(err)
				}
				return p.Stats(), n, p.SuperblockStats()
			}
			ref, refN, _ := run("legacy")
			for _, mode := range []string{"super", "block"} {
				got, gotN, sb := run(mode)
				if gotN != refN {
					t.Errorf("%s engine executed %d instructions, reference %d", mode, gotN, refN)
				}
				if got != ref {
					t.Errorf("%s engine diverged from reference interpreter:\n"+
						"  golden quad %s: insts=%d cycles=%v L1iMisses=%d mispredicts=%d\n"+
						"  golden quad ref: insts=%d cycles=%v L1iMisses=%d mispredicts=%d\n"+
						"  full %s: %+v\n  full ref: %+v",
						mode,
						mode, got.Instructions, got.Cycles, got.L1iMisses, got.Mispredicts,
						ref.Instructions, ref.Cycles, ref.L1iMisses, ref.Mispredicts,
						mode, got, ref)
				}
				switch mode {
				case "super":
					if sb.Formed == 0 || sb.Insts == 0 {
						t.Errorf("superblock engine never exercised traces on %s: %+v", tgt.Name, sb)
					}
				case "block":
					if sb.Formed != 0 || sb.Insts != 0 {
						t.Errorf("DisableSuperblocks run still used traces: %+v", sb)
					}
				}
			}
		})
	}
}
