package diffcheck

import (
	"fmt"

	"repro/internal/workloads/compilersim"
	"repro/internal/workloads/docdb"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/loopsim"
	"repro/internal/workloads/rtlsim"
	"repro/internal/workloads/sqldb"
	"repro/internal/workloads/wl"
)

// Target names one workload/input pair the harness can check. Server
// workloads get a request cap so the run is finite; batch workloads
// (Requests == 0) halt on their own.
type Target struct {
	Name  string
	Input string
	// Requests caps the request stream per thread (0 = batch workload).
	Requests uint64
	// MaxInst overrides the runaway-execution bound (0 = default).
	MaxInst uint64
	// Build assembles the workload at test scale.
	Build func() (*wl.Workload, error)
}

func (t Target) maxInst() uint64 { return t.MaxInst }

// load builds the workload and a single-threaded driver whose request
// stream is capped at t.Requests.
func (t Target) load() (*wl.Workload, *wl.Driver, error) {
	w, err := t.Build()
	if err != nil {
		return nil, nil, err
	}
	d, err := w.NewDriver(t.Input, 1)
	if err != nil {
		return nil, nil, err
	}
	if t.Requests > 0 {
		d.SetGenerator(CapRequests(d.Generator(), t.Requests))
	}
	return w, d, nil
}

// Targets returns one diffcheck target per workload package, at the
// small (test) scale. Every package under internal/workloads that ships
// a guest program appears here — keeping this list complete is part of
// adding a workload (see docs/testing.md).
func Targets() []Target {
	return []Target{
		{
			Name:     "kvcache",
			Input:    "set10_get90",
			Requests: 600,
			Build:    func() (*wl.Workload, error) { return kvcache.Build(kvcache.Small()) },
		},
		{
			Name:     "sqldb",
			Input:    sqldb.Inputs()[0],
			Requests: 250,
			Build:    func() (*wl.Workload, error) { return sqldb.Build(sqldb.Small()) },
		},
		{
			Name:     "docdb",
			Input:    "read95_insert5",
			Requests: 300,
			Build:    func() (*wl.Workload, error) { return docdb.Build(docdb.Small()) },
		},
		{
			Name:     "rtlsim",
			Input:    "dhrystone",
			Requests: 400,
			Build:    func() (*wl.Workload, error) { return rtlsim.Build(rtlsim.Small()) },
		},
		{
			Name:     "loopsim",
			Input:    "steady",
			Requests: 150,
			Build:    func() (*wl.Workload, error) { return loopsim.Build(loopsim.Small()) },
		},
		{
			Name:  "compilersim",
			Input: "tu:3", // batch: one translation unit, natural halt
			Build: func() (*wl.Workload, error) { return compilersim.Build(compilersim.Small()) },
		},
	}
}

// TargetByName finds a target in Targets.
func TargetByName(name string) (Target, error) {
	for _, t := range Targets() {
		if t.Name == name {
			return t, nil
		}
	}
	return Target{}, fmt.Errorf("diffcheck: no target %q", name)
}
