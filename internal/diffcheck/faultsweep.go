// The fault-sweep harness is the exhaustive robustness check for
// transactional code replacement: it counts every tracee operation a
// continuous-optimization scenario performs, then re-runs the scenario
// once per operation with that exact operation forced to fail, asserting
// after each injected fault that the rollback restored the target's
// memory, page residency, registers, and the controller's state
// bit-identically — and that the run still finishes with the
// never-optimized baseline's output. One sweep proves there is no point
// inside a replacement where a failure can leave the target torn
// (docs/robustness.md).
package diffcheck

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/bolt"
	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/replay"
	"repro/internal/trace"
)

// ErrInjected is the sentinel failure the sweep's fault hook returns; it
// surfaces from ptrace operations wrapped, so errors.Is finds it.
var ErrInjected = errors.New("diffcheck: injected tracee fault")

// FaultScenario describes a continuous-optimization run to sweep: a
// binary (with an optional workload handler) that executes rounds of
// profile → build → replace at fixed instruction counts.
type FaultScenario struct {
	Name string
	Bin  *obj.Binary
	// NewHandler builds a fresh syscall handler per run (drivers are
	// stateful, and the sweep runs the scenario many times); nil for
	// self-contained programs that make no syscalls.
	NewHandler func() (proc.SyscallHandler, error)
	MaxInst    uint64 // run cap (0 = harness default)

	// SwitchAt are the retired-instruction counts at which optimization
	// rounds trigger; two or more entries make the scenario exercise
	// continuous optimization (stack-live copies, dead-version GC).
	SwitchAt []uint64
	// ProfileWindow is the simulated profiling duration per round.
	ProfileWindow float64

	// NoOSR disables on-stack replacement in the controller, forcing
	// every parked frame through copy-based migration (the ablation the
	// OSR benchmark compares against).
	NoOSR bool

	// MetaExtra is appended to a recorded run's session-meta event:
	// callers record whatever identifies how the scenario was built
	// (generator seed, workload target) so a shipped journal names its
	// own reconstruction recipe.
	MetaExtra trace.Attrs
}

// ScenarioFromTarget adapts a workload target into a sweepable scenario:
// the binary is built once, and every run gets a fresh capped driver so
// request streams replay identically.
func ScenarioFromTarget(t Target) (*FaultScenario, error) {
	w, err := t.Build()
	if err != nil {
		return nil, err
	}
	return &FaultScenario{
		Name: t.Name,
		Bin:  w.Binary,
		NewHandler: func() (proc.SyscallHandler, error) {
			d, err := w.NewDriver(t.Input, 1)
			if err != nil {
				return nil, err
			}
			if t.Requests > 0 {
				d.SetGenerator(CapRequests(d.Generator(), t.Requests))
			}
			return d, nil
		},
		MaxInst: t.MaxInst,
	}, nil
}

// SweepRun is the outcome of one scenario execution.
type SweepRun struct {
	Trace      *Trace
	Ops        int  // tracee operations begun across all rounds
	Committed  int  // rounds that committed
	RolledBack int  // rounds that failed and were rolled back
	FaultHit   bool // the injected fault index was reached

	// Tracer holds the run's spans and event journal; CheckJournal
	// cross-checks it against the sweep's own bookkeeping.
	Tracer *trace.Tracer
	// InjectedOp is the tracee-local operation index the fault fired at
	// (the hook's per-attach counter, which is what the controller's
	// rollback event records), -1 if no fault fired.
	InjectedOp int

	// OSRFramesMapped and OSRFallbacks total the controller's on-stack
	// replacement outcomes across every round of the run (committed and
	// rolled back alike report through ctl.Reports only on commit).
	OSRFramesMapped int
	OSRFallbacks    int

	// RollbackDiffs lists every way a rollback failed to restore the
	// pre-replace state exactly; empty on a correct transaction.
	RollbackDiffs []string

	// Session is the run's record/replay session (nil for a plain Run):
	// the recording of this run's nondeterminism, or the re-recording
	// produced while replaying a shipped journal.
	Session *replay.Session
}

// Baseline runs the scenario's program with no controller attached — the
// never-optimized reference every sweep run must match.
func (sc *FaultScenario) Baseline() (*Trace, error) {
	h, err := sc.handler()
	if err != nil {
		return nil, err
	}
	r := &runner{bin: sc.Bin, handler: h, maxInst: sc.MaxInst}
	return r.run(sc.Name + "/baseline")
}

func (sc *FaultScenario) handler() (proc.SyscallHandler, error) {
	if sc.NewHandler == nil {
		return nil, nil
	}
	return sc.NewHandler()
}

// Ops executes the scenario fault-free and returns the total tracee
// operation count — the sweep's index space. Every round must commit;
// a scenario whose rounds cannot land without faults is mis-sized.
func (sc *FaultScenario) Ops() (int, error) {
	sr, err := sc.Run(-1)
	if err != nil {
		return 0, err
	}
	if sr.Committed != len(sc.SwitchAt) {
		return 0, fmt.Errorf("diffcheck: scenario %s: %d/%d rounds committed fault-free (rolled back %d)",
			sc.Name, sr.Committed, len(sc.SwitchAt), sr.RolledBack)
	}
	return sr.Ops, nil
}

// Run executes the scenario with the faultAt-th tracee operation
// (counting across every round, attempts and verifier reads included)
// forced to fail; faultAt < 0 injects nothing. A faulted round is rolled
// back and the run continues — later rounds still fire, modeling a
// transient fault the fleet layer would absorb.
func (sc *FaultScenario) Run(faultAt int) (*SweepRun, error) {
	return sc.run(faultAt, nil)
}

// RunRecorded executes the scenario under a recording replay session:
// the returned run's Session holds the journal that replays this exact
// execution — fault decision, perf sample timing, and replace
// checkpoints included. Failing sweep tests dump it as their repro.
func (sc *FaultScenario) RunRecorded(faultAt int) (*SweepRun, error) {
	sess := replay.NewRecorder(0)
	if err := sess.Meta(sc.metaAttrs(faultAt)...); err != nil {
		return nil, err
	}
	return sc.run(faultAt, sess)
}

// ReplayJournal re-executes a recorded scenario run from its journal
// alone: the fault fires where the journal says it fired (no live fault
// hook runs), perf deadlines are journal-fed, and every recorded
// checkpoint is re-verified against the recomputed StateHash. The
// scenario must be built the same way as at record time; the meta event
// is cross-checked so drift surfaces as a divergence, not silence.
func (sc *FaultScenario) ReplayJournal(events []trace.Event) (*SweepRun, error) {
	meta, err := replay.MetaOf(events)
	if err != nil {
		return nil, err
	}
	faultAt, ok := meta.Int("fault_at")
	if !ok {
		return nil, fmt.Errorf("diffcheck: journal meta has no fault_at")
	}
	sess, err := replay.NewReplayer(events)
	if err != nil {
		return nil, err
	}
	if err := sess.Meta(sc.metaAttrs(int(faultAt))...); err != nil {
		return nil, err
	}
	sr, err := sc.run(int(faultAt), sess)
	if err != nil {
		return sr, err
	}
	if err := sess.Finish(); err != nil {
		return sr, err
	}
	// The live hook never ran: reconstruct the sweep bookkeeping from the
	// replayed fault decision itself.
	for _, e := range sess.Events() {
		if e.Type == trace.EvFaultDecision {
			sr.FaultHit = true
			if n, ok := e.Attrs.Int("op_index"); ok {
				sr.InjectedOp = int(n)
			}
		}
	}
	return sr, nil
}

// metaAttrs is the session-meta identity of one recorded run: enough to
// re-derive the scenario (with MetaExtra naming its build recipe) plus
// the fault index being swept.
func (sc *FaultScenario) metaAttrs(faultAt int) []trace.Attr {
	attrs := trace.Attrs{
		trace.String("kind", "faultsweep"),
		trace.String("scenario", sc.Name),
		trace.Int("fault_at", faultAt),
		trace.String("switch_at", fmt.Sprint(sc.SwitchAt)),
		trace.Float("profile_window", sc.ProfileWindow),
		trace.Int("max_inst", int(sc.MaxInst)),
	}
	if sc.NoOSR {
		// Only recorded when set, so journals from before the OSR stage
		// (and from default-configured runs) keep their meta shape.
		attrs = append(attrs, trace.Bool("no_osr", true))
	}
	return append(attrs, sc.MetaExtra...)
}

func (sc *FaultScenario) run(faultAt int, sess *replay.Session) (*SweepRun, error) {
	sr := &SweepRun{Tracer: trace.New(trace.Options{}), InjectedOp: -1, Session: sess}
	var ctl *core.Controller
	var attachErr error
	hook := func(op string, n int) error {
		i := sr.Ops
		sr.Ops++
		if faultAt >= 0 && i == faultAt {
			sr.FaultHit = true
			sr.InjectedOp = n
			return ErrInjected
		}
		return nil
	}

	round := func(p *proc.Process) (int, error) {
		if attachErr != nil {
			return 0, attachErr
		}
		raw := ctl.Profile(sc.ProfileWindow)
		build, err := ctl.BuildOptimized(raw)
		if err != nil {
			return 0, err
		}
		before := replaceFingerprint(p, ctl)
		if _, err := ctl.Replace(build.Result.Binary); err != nil {
			if !errors.Is(err, ErrInjected) && !replay.IsRecordedFault(err) {
				return 0, err // a real bug (or a replay divergence), not the injected fault
			}
			sr.RolledBack++
			sr.RollbackDiffs = append(sr.RollbackDiffs, before.diff(replaceFingerprint(p, ctl))...)
			return ctl.Version(), nil
		}
		sr.Committed++
		return ctl.Version(), nil
	}

	h, err := sc.handler()
	if err != nil {
		return sr, err
	}
	r := &runner{
		bin:     sc.Bin,
		handler: h,
		maxInst: sc.MaxInst,
		postLoad: func(p *proc.Process) {
			ctl, attachErr = core.New(p, sc.Bin, core.Options{
				Perf:          perf.RecorderOptions{PeriodCycles: 2000},
				Bolt:          bolt.Options{AllowReBolt: true},
				NoChargePause: true,
				NoOSR:         sc.NoOSR,
				FaultHook:     hook,
				Tracer:        sr.Tracer,
				Service:       sc.Name,
				Replay:        sess,
			})
		},
	}
	for _, at := range sc.SwitchAt {
		r.events = append(r.events, runEvent{at: at, fn: round})
	}
	// Error paths still return sr: a failing recorded run's journal is the
	// repro its test dumps, so the session must survive the failure.
	tr, err := r.run(fmt.Sprintf("%s/fault@%d", sc.Name, faultAt))
	if err != nil {
		return sr, err
	}
	if err := sess.Err(); err != nil {
		return sr, err
	}
	sr.Trace = tr
	if ctl != nil {
		for _, rep := range ctl.Reports {
			sr.OSRFramesMapped += rep.OSRFramesMapped
			sr.OSRFallbacks += rep.OSRFallbacks
		}
	}
	return sr, nil
}

// CheckJournal cross-checks the run's event journal and span tree
// against the sweep's own bookkeeping, returning one string per
// discrepancy (empty when the observability layer told the truth). A
// faulted run must have journaled the injection, exactly one rollback
// whose op_index is the tracee operation the fault fired at, and a
// "replace" span closed with error status; a clean run must show none
// of those.
func (sr *SweepRun) CheckJournal() []string {
	var out []string
	j := sr.Tracer.Journal()
	faults := j.ByType(trace.EvFaultInjected)
	rollbacks := j.ByType(trace.EvRollback)
	errReplace := spansWithErr(sr.Tracer.Tree(""), "replace")

	if !sr.FaultHit {
		if len(faults) != 0 {
			out = append(out, fmt.Sprintf("clean run journaled %d fault_injected event(s)", len(faults)))
		}
		if len(rollbacks) != 0 {
			out = append(out, fmt.Sprintf("clean run journaled %d rollback event(s)", len(rollbacks)))
		}
		if len(errReplace) != 0 {
			out = append(out, fmt.Sprintf("clean run has %d error-status replace span(s)", len(errReplace)))
		}
		return out
	}

	if len(faults) != 1 {
		out = append(out, fmt.Sprintf("want 1 fault_injected event, journal has %d", len(faults)))
	} else if idx, ok := faults[0].Attrs.Int("op_index"); !ok || int(idx) != sr.InjectedOp {
		out = append(out, fmt.Sprintf("fault_injected op_index = %d (present %v), injected at %d", idx, ok, sr.InjectedOp))
	}
	if len(rollbacks) != sr.RolledBack {
		out = append(out, fmt.Sprintf("want %d rollback event(s), journal has %d", sr.RolledBack, len(rollbacks)))
	}
	for _, rb := range rollbacks {
		if idx, ok := rb.Attrs.Int("op_index"); !ok || int(idx) != sr.InjectedOp {
			out = append(out, fmt.Sprintf("rollback op_index = %d (present %v), fault injected at op %d", idx, ok, sr.InjectedOp))
		}
		if rb.Stage != "replace" {
			out = append(out, fmt.Sprintf("rollback event attributed to stage %q, want replace", rb.Stage))
		}
		if len(faults) == 1 && rb.Seq <= faults[0].Seq {
			out = append(out, fmt.Sprintf("rollback seq %d not after fault_injected seq %d", rb.Seq, faults[0].Seq))
		}
	}
	if len(errReplace) != sr.RolledBack {
		out = append(out, fmt.Sprintf("want %d error-status replace span(s), tree has %d", sr.RolledBack, len(errReplace)))
	}
	for _, n := range errReplace {
		if !errContains(n.Err, ErrInjected) {
			out = append(out, fmt.Sprintf("replace span error %q does not carry the injected fault", n.Err))
		}
	}
	return out
}

// spansWithErr walks a span tree collecting closed spans of the given
// name that ended with error status.
func spansWithErr(nodes []*trace.SpanNode, name string) []*trace.SpanNode {
	var out []*trace.SpanNode
	for _, n := range nodes {
		if n.Name == name && !n.Open && n.Err != "" {
			out = append(out, n)
		}
		out = append(out, spansWithErr(n.Children, name)...)
	}
	return out
}

func errContains(msg string, sentinel error) bool {
	return msg != "" && strings.Contains(msg, sentinel.Error())
}

// replaceFingerprint digests everything a rolled-back Replace must leave
// untouched: every mapped range and its contents, total page residency,
// every thread's registers, and the controller's own state hash.
type fingerprint struct {
	ranges   [][2]uint64
	memHash  uint64
	resident uint64
	regsHash uint64
	ctlHash  uint64
}

func replaceFingerprint(p *proc.Process, ctl *core.Controller) fingerprint {
	fp := fingerprint{
		ranges:   p.Mem.MappedRanges(),
		resident: p.Mem.ResidentBytes(),
		ctlHash:  ctl.StateHash(),
	}
	h := uint64(fnvOffset)
	buf := make([]byte, 64*1024)
	for _, r := range fp.ranges {
		h = fnvWord(h, r[0])
		h = fnvWord(h, r[1])
		for off := r[0]; off < r[1]; {
			n := uint64(len(buf))
			if off+n > r[1] {
				n = r[1] - off
			}
			p.Mem.Read(off, buf[:n])
			h = fnvBytes(h, buf[:n])
			off += n
		}
	}
	fp.memHash = h
	h = fnvOffset
	for _, t := range p.Threads {
		h = fnvWord(h, t.PC)
		for _, g := range t.Regs {
			h = fnvWord(h, g)
		}
		h = fnvWord(h, uint64(t.CmpVal))
	}
	fp.regsHash = h
	return fp
}

// diff lists how another fingerprint deviates from this (pre-replace)
// one.
func (fp fingerprint) diff(after fingerprint) []string {
	var out []string
	if len(fp.ranges) != len(after.ranges) {
		out = append(out, fmt.Sprintf("mapped ranges: %d before vs %d after rollback", len(fp.ranges), len(after.ranges)))
	} else {
		for i := range fp.ranges {
			if fp.ranges[i] != after.ranges[i] {
				out = append(out, fmt.Sprintf("mapped range %d: %#x before vs %#x after rollback", i, fp.ranges[i], after.ranges[i]))
				break
			}
		}
	}
	if fp.memHash != after.memHash {
		out = append(out, "memory contents differ after rollback")
	}
	if fp.resident != after.resident {
		out = append(out, fmt.Sprintf("resident bytes: %d before vs %d after rollback", fp.resident, after.resident))
	}
	if fp.regsHash != after.regsHash {
		out = append(out, "thread registers differ after rollback")
	}
	if fp.ctlHash != after.ctlHash {
		out = append(out, "controller state differs after rollback")
	}
	return out
}
