// Package diffcheck is the differential layout-equivalence harness: the
// executable form of OCOLOS's central safety claim that code layout
// optimization never changes program semantics (§III; BOLT makes the
// same guarantee offline). In the spirit of record-and-replay checking
// (rr, O'Callahan et al. 2017), it runs the same workload twice — once
// with the compiler-default layout and once with a BOLT-reordered layout,
// or with a mid-run OCOLOS code replacement — and diffs everything a
// layout change must not perturb:
//
//   - the syscall stream (request/response order and values) and the
//     checksums the guest publishes via SysEmit,
//   - final memory of every global past the v-table area (v-table slots
//     legitimately move to the optimized entries),
//   - per-function retired-instruction "work" counts, excluding only the
//     instructions a layout pass may add or remove (NOP padding eliminated
//     by the peephole, JMPs dropped or added by block reordering —
//     conditional branches, calls and returns must retire identically),
//   - halt/fault state and completed-request counts.
//
// Runs are single-threaded: the round-robin scheduler interleaves threads
// by instruction count, so multi-threaded final states are layout-
// dependent by construction and carry no equivalence signal.
package diffcheck

import (
	"fmt"
	"sort"

	"repro/internal/bolt"
	"repro/internal/build"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/workloads/wl"
)

// Trace is the observable footprint of one run.
type Trace struct {
	Name    string
	Insts   uint64  // total retired instructions (informational, not compared)
	Seconds float64 // simulated seconds (informational)

	// Work counts retired instructions per function, excluding NOP and
	// JMP (the only opcodes BOLT may legitimately add or delete). Nil
	// when attribution was skipped (mid-run replacement executes code
	// regions the original binary cannot name).
	Work map[string]uint64

	GlobalsHash  uint64 // FNV-1a over every global's final bytes
	GlobalsBytes uint64 // size of the hashed region

	Emitted     []uint64 // SysEmit checksums, in order
	Completed   uint64   // requests finished
	Syscalls    uint64   // total syscalls
	SyscallHash uint64   // order-sensitive digest of the syscall stream

	Halted  bool
	Fault   error
	Version int // optimized-code version at exit (0 for static runs)
}

// machine adapts a proc.Process to build.Machine (build cannot import
// proc: proc's own tests build programs with the build package).
type machine struct{ p *proc.Process }

func (m machine) RunUntilHalt(maxInst uint64) uint64 { return m.p.RunUntilHalt(maxInst) }
func (m machine) RunFor(seconds float64)             { m.p.RunFor(seconds) }
func (m machine) Seconds() float64                   { return m.p.Seconds() }
func (m machine) Fault() error                       { return m.p.Fault() }
func (m machine) ReadWord(addr uint64) uint64        { return m.p.Mem.ReadWord(addr) }

// Attach loads a built program into a fresh single-threaded process and
// attaches it to the result, the one-liner tests use to run a builder
// program and inspect its globals.
func Attach(r *build.Result, opts proc.Options) (*proc.Process, error) {
	p, err := proc.Load(r.Binary, opts)
	if err != nil {
		return nil, err
	}
	r.Attach(machine{p})
	return p, nil
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// recorder wraps the workload driver and digests the semantically
// meaningful part of the syscall stream: the request values handed to the
// guest (SysRecv results) and the values the guest hands back (SysSend
// responses, SysEmit checksums). SysNow results and SysAlloc addresses
// are deliberately not digested — time is layout-dependent by design.
type recorder struct {
	inner proc.SyscallHandler
	hash  uint64
	count uint64
}

func newRecorder(inner proc.SyscallHandler) *recorder {
	return &recorder{inner: inner, hash: fnvOffset}
}

// Syscall implements proc.SyscallHandler.
func (r *recorder) Syscall(p *proc.Process, t *proc.Thread, num int64) error {
	r.count++
	r.hash = fnvWord(r.hash, uint64(num))
	switch num {
	case proc.SysSend, proc.SysEmit:
		r.hash = fnvWord(r.hash, t.Regs[0])
	}
	var err error
	if r.inner != nil {
		err = r.inner.Syscall(p, t, num)
	} else {
		err = fmt.Errorf("diffcheck: syscall %d from a handler-less program", num)
	}
	if num == proc.SysRecv {
		for i := 0; i < 4; i++ {
			r.hash = fnvWord(r.hash, t.Regs[i])
		}
	}
	return err
}

// CapRequests wraps a generator so each thread serves at most n requests
// and then reports NoMoreWork, turning an open-ended server workload into
// a finite, deterministic run.
func CapRequests(gen wl.Generator, n uint64) wl.Generator {
	return func(tid int, seq uint64) wl.Request {
		if seq >= n {
			return wl.Request{Op: wl.NoMoreWork}
		}
		return gen(tid, seq)
	}
}

// countsWork reports whether an opcode must retire the same number of
// times under every layout. NOPs are deleted by the peephole pass; JMPs
// are added and removed as block reordering changes which successor falls
// through. Everything else — including JCC (reordering may invert the
// condition but the branch still retires) — is layout-invariant.
func countsWork(op isa.Op) bool { return op != isa.NOP && op != isa.JMP }

// maxInstFactor bounds a checked run relative to the caller's budget so a
// corrupted binary that spins forever is reported instead of hanging.
const defaultMaxInst = 200_000_000

// runEvent is one scheduled mid-run intervention: fn fires once when at
// instructions have retired and returns the optimized-code version live
// afterwards. The fault-sweep harness schedules several (one per
// continuous-optimization round); Midrun schedules one.
type runEvent struct {
	at uint64
	fn func(p *proc.Process) (int, error)
}

// runner executes one single-threaded run and collects its Trace.
type runner struct {
	bin       *obj.Binary
	handler   proc.SyscallHandler
	attribute bool
	maxInst   uint64

	// postLoad runs after the process is created, before execution; the
	// negative tests use it to model a botched pointer patch.
	postLoad func(p *proc.Process)
	// events are mid-run interventions, fired in order of their trigger
	// instruction counts.
	events []runEvent
}

func (r *runner) run(name string) (*Trace, error) {
	rec := newRecorder(r.handler)
	p, err := proc.Load(r.bin, proc.Options{Threads: 1, Handler: rec})
	if err != nil {
		return nil, err
	}
	if r.postLoad != nil {
		r.postLoad(p)
	}
	maxInst := r.maxInst
	if maxInst == 0 {
		maxInst = defaultMaxInst
	}
	pending := append([]runEvent(nil), r.events...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].at < pending[j].at })

	tr := &Trace{Name: name}
	if r.attribute {
		tr.Work = make(map[string]uint64)
	}
	t := p.Threads[0]
	for !t.Halted && tr.Insts < maxInst {
		for len(pending) > 0 && tr.Insts >= pending[0].at {
			ev := pending[0]
			pending = pending[1:]
			v, err := ev.fn(p)
			if err != nil {
				return nil, fmt.Errorf("diffcheck: mid-run replacement: %w", err)
			}
			tr.Version = v
		}
		if t.Halted { // an event advanced the process to completion
			break
		}
		if r.attribute {
			in, err := isa.Decode(p.Mem.CodeSlice(t.PC))
			if err == nil && countsWork(in.Op) {
				f, _, _ := r.bin.Lookup(t.PC)
				name := "<unmapped>"
				if f != nil {
					name = f.Name
				}
				tr.Work[name]++
			}
		}
		if !p.Step(t) {
			break
		}
		tr.Insts++
	}
	tr.Seconds = p.Seconds()
	tr.Halted = p.Halted()
	tr.Fault = p.Fault()
	tr.GlobalsHash, tr.GlobalsBytes = globalsHash(p)
	if d, ok := r.handler.(*wl.Driver); ok {
		tr.Completed = d.Completed()
		tr.Emitted = append([]uint64(nil), d.Emitted()...)
	}
	tr.Syscalls = rec.count
	tr.SyscallHash = rec.hash
	return tr, nil
}

// globalsHash digests the final bytes of the .data section past the
// v-table area. V-tables are laid out first at the data base and their
// slots are the one part of data a layout optimizer may rewrite (to the
// optimized entry points), so they are excluded; every byte after them
// must be layout-invariant.
func globalsHash(p *proc.Process) (uint64, uint64) {
	data := p.Bin.Section(obj.SecData)
	if data == nil {
		return 0, 0
	}
	start := data.Addr
	for _, vt := range p.Bin.VTables {
		if end := vt.Addr + 8*uint64(len(vt.Slots)); end > start {
			start = end
		}
	}
	if start >= data.End() {
		return 0, 0
	}
	n := data.End() - start
	h := uint64(fnvOffset)
	buf := make([]byte, 64*1024)
	for off := uint64(0); off < n; {
		chunk := uint64(len(buf))
		if off+chunk > n {
			chunk = n - off
		}
		p.Mem.Read(start+off, buf[:chunk])
		h = fnvBytes(h, buf[:chunk])
		off += chunk
	}
	return h, n
}

// Compare returns a list of human-readable divergences between two
// traces, nil when the runs are architecturally equivalent.
func Compare(a, b *Trace) []string {
	var diffs []string
	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if a.Halted != b.Halted {
		add("halted: %s=%v vs %s=%v", a.Name, a.Halted, b.Name, b.Halted)
	}
	if (a.Fault == nil) != (b.Fault == nil) {
		add("fault: %s=%v vs %s=%v", a.Name, a.Fault, b.Name, b.Fault)
	}
	if a.Completed != b.Completed {
		add("completed requests: %s=%d vs %s=%d", a.Name, a.Completed, b.Name, b.Completed)
	}
	if a.Syscalls != b.Syscalls {
		add("syscall count: %s=%d vs %s=%d", a.Name, a.Syscalls, b.Name, b.Syscalls)
	}
	if a.SyscallHash != b.SyscallHash {
		add("syscall stream digest: %s=%#x vs %s=%#x", a.Name, a.SyscallHash, b.Name, b.SyscallHash)
	}
	if len(a.Emitted) != len(b.Emitted) {
		add("emitted checksums: %s has %d vs %s has %d", a.Name, len(a.Emitted), b.Name, len(b.Emitted))
	} else {
		for i := range a.Emitted {
			if a.Emitted[i] != b.Emitted[i] {
				add("emitted[%d]: %s=%#x vs %s=%#x", i, a.Name, a.Emitted[i], b.Name, b.Emitted[i])
				break
			}
		}
	}
	if a.GlobalsBytes != b.GlobalsBytes {
		add("globals region size: %s=%d vs %s=%d", a.Name, a.GlobalsBytes, b.Name, b.GlobalsBytes)
	} else if a.GlobalsHash != b.GlobalsHash {
		add("final globals diverge (hash %#x vs %#x)", a.GlobalsHash, b.GlobalsHash)
	}
	if a.Work != nil && b.Work != nil {
		names := make(map[string]bool, len(a.Work))
		for n := range a.Work {
			names[n] = true
		}
		for n := range b.Work {
			names[n] = true
		}
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			if a.Work[n] != b.Work[n] {
				add("work count for %s: %s=%d vs %s=%d", n, a.Name, a.Work[n], b.Name, b.Work[n])
			}
		}
	}
	return diffs
}

// Hooks lets tests sabotage a run: MutateBinary corrupts the binary
// before it is loaded (a bad relocation), PostLoad corrupts the live
// process before it runs (a botched pointer patch).
type Hooks struct {
	MutateBinary func(bin *obj.Binary) error
	PostLoad     func(p *proc.Process)
}

// Baseline runs the target with the compiler-default layout.
func Baseline(t Target) (*Trace, error) { return runStatic(t, false, Hooks{}) }

// Bolted profiles the target, builds the BOLT-reordered binary offline,
// and runs that layout from the start.
func Bolted(t Target) (*Trace, error) { return runStatic(t, true, Hooks{}) }

// BoltedWith is Bolted with sabotage hooks, for the negative tests.
func BoltedWith(t Target, hooks Hooks) (*Trace, error) { return runStatic(t, true, hooks) }

func runStatic(t Target, bolted bool, hooks Hooks) (*Trace, error) {
	w, d, err := t.load()
	if err != nil {
		return nil, err
	}
	bin := w.Binary
	name := t.Name + "/baseline"
	if bolted {
		if bin, err = BoltBinary(t); err != nil {
			return nil, err
		}
		name = t.Name + "/bolted"
	}
	if hooks.MutateBinary != nil {
		if err := hooks.MutateBinary(bin); err != nil {
			return nil, err
		}
	}
	r := &runner{bin: bin, handler: d, attribute: true, maxInst: t.maxInst()}
	if hooks.PostLoad != nil {
		r.postLoad = hooks.PostLoad
	}
	return r.run(name)
}

// BoltBinary produces the offline-optimized layout for a target: it runs
// a throwaway profiling process on the uncapped request stream, converts
// the LBR samples, and re-links with BOLT defaults.
func BoltBinary(t Target) (*obj.Binary, error) {
	w, err := t.Build()
	if err != nil {
		return nil, err
	}
	d, err := w.NewDriver(t.Input, 1)
	if err != nil {
		return nil, err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: 1, Handler: d})
	if err != nil {
		return nil, err
	}
	raw := perf.Record(p, profileSeconds, perf.RecorderOptions{PeriodCycles: 2000})
	if err := p.Fault(); err != nil {
		return nil, fmt.Errorf("diffcheck: profiling run faulted: %w", err)
	}
	prof, err := bolt.ConvertProfile(raw, w.Binary)
	if err != nil {
		return nil, err
	}
	res, err := bolt.Optimize(w.Binary, prof, bolt.Options{})
	if err != nil {
		return nil, err
	}
	return res.Binary, nil
}

// profileSeconds is the simulated profiling window for the offline
// BoltBinary pass, which samples an uncapped request stream (matches the
// windows internal/core's own tests use).
const profileSeconds = 0.0005

// Midrun runs the target with the OCOLOS controller attached and triggers
// one full optimization round (profile → BOLT → stop-the-world code
// replacement via internal/core) after switchAt retired instructions,
// profiling for profileWindow simulated seconds (size it well below the
// run's remaining duration or the stream drains before replacement).
// Per-function attribution is skipped: after replacement the process
// executes C1 code the original binary cannot name. The returned trace
// must still match the baseline on every other axis.
func Midrun(t Target, switchAt uint64, profileWindow float64) (*Trace, error) {
	w, d, err := t.load()
	if err != nil {
		return nil, err
	}
	var ctrl *core.Controller
	var attachErr error
	r := &runner{
		bin:     w.Binary,
		handler: d,
		maxInst: t.maxInst(),
		postLoad: func(p *proc.Process) {
			ctrl, attachErr = core.New(p, w.Binary, core.Options{
				Perf:          perf.RecorderOptions{PeriodCycles: 2000},
				NoChargePause: true,
			})
		},
		events: []runEvent{{at: switchAt, fn: func(p *proc.Process) (int, error) {
			if attachErr != nil {
				return 0, attachErr
			}
			if _, err := ctrl.OptimizeRound(profileWindow); err != nil {
				return 0, err
			}
			return ctrl.Version(), nil
		}}},
	}
	return r.run(t.Name + "/midrun")
}

// Check is the one-call equivalence oracle for a target: baseline vs
// offline-BOLTed, then baseline vs mid-run replacement. It returns the
// divergence list (nil means the layouts are equivalent).
func Check(t Target) ([]string, error) {
	base, err := Baseline(t)
	if err != nil {
		return nil, err
	}
	if !base.Halted || base.Fault != nil {
		return nil, fmt.Errorf("diffcheck: baseline run bad: halted=%v fault=%v", base.Halted, base.Fault)
	}
	bolted, err := Bolted(t)
	if err != nil {
		return nil, err
	}
	diffs := Compare(base, bolted)
	mid, err := Midrun(t, base.Insts/3, base.Seconds/8)
	if err != nil {
		return nil, err
	}
	if mid.Version == 0 {
		diffs = append(diffs, "mid-run replacement never happened (version still 0)")
	}
	diffs = append(diffs, Compare(base, mid)...)
	return diffs, nil
}
