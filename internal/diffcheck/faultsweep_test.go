package diffcheck

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/progtest"
	"repro/internal/replay"
	"repro/internal/trace"
)

// replayJournalPath points TestReplayShippedJournal at a recorded
// fault-sweep journal (the artifact a failing sweep test dumps).
var replayJournalPath = flag.String("replay.journal", "",
	"path to a recorded fault-sweep journal to re-execute")

// Generator parameters of the progtest sweep scenario. They are also
// recorded in each journal's session-meta event so a shipped repro
// names its own reconstruction recipe.
const (
	progtestFuncs = 12
	progtestIters = 4000
	progtestSeed  = 41
)

func progtestMetaAttrs() trace.Attrs {
	return trace.Attrs{
		trace.Int("gen_funcs", progtestFuncs),
		trace.Int("gen_iters", progtestIters),
		trace.Int("gen_seed", progtestSeed),
	}
}

// newProgtestScenario builds the generated-program sweep scenario used
// by the recording tests and by journal replays alike.
func newProgtestScenario(t *testing.T) (*FaultScenario, *Trace) {
	t.Helper()
	prog, _, err := progtest.Generate(progtest.Options{
		Funcs: progtestFuncs, MainIters: progtestIters, Seed: progtestSeed})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := &FaultScenario{Name: "progtest", Bin: bin, MetaExtra: progtestMetaAttrs()}
	return sc, prepareScenario(t, sc)
}

// prepareScenario runs the baseline and derives the round trigger
// points from it, returning the baseline trace.
func prepareScenario(t *testing.T, sc *FaultScenario) *Trace {
	t.Helper()
	base, err := sc.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if !base.Halted || base.Fault != nil {
		t.Fatalf("baseline bad: halted=%v fault=%v", base.Halted, base.Fault)
	}
	sc.SwitchAt = []uint64{base.Insts / 4, base.Insts / 2}
	sc.ProfileWindow = base.Seconds / 16
	return base
}

// scenarioFromMeta rebuilds the sweep scenario a recorded journal's
// session-meta event describes — the reconstruction half of "every CI
// failure ships its own repro". Any drift between this rebuild and the
// recording surfaces as a meta divergence when the replay starts.
func scenarioFromMeta(t *testing.T, meta trace.Attrs) (*FaultScenario, *Trace) {
	t.Helper()
	nameAny, _ := meta.Get("scenario")
	name, _ := nameAny.(string)
	if name == "progtest" {
		funcs, _ := meta.Int("gen_funcs")
		iters, _ := meta.Int("gen_iters")
		seed, _ := meta.Int("gen_seed")
		prog, _, err := progtest.Generate(progtest.Options{
			Funcs: int(funcs), MainIters: iters, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		bin, err := asm.Assemble(prog, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sc := &FaultScenario{Name: name, Bin: bin, MetaExtra: trace.Attrs{
			trace.Int("gen_funcs", int(funcs)),
			trace.Int("gen_iters", int(iters)),
			trace.Int("gen_seed", int(seed)),
		}}
		return sc, prepareScenario(t, sc)
	}
	tgt, err := TargetByName(name)
	if err != nil {
		t.Fatalf("journal names unknown scenario %q: %v", name, err)
	}
	sc, err := ScenarioFromTarget(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := meta.Get("no_osr"); ok {
		b, _ := v.(bool)
		sc.NoOSR = b
	}
	base := prepareScenario(t, sc)
	applyMetaSchedule(sc, meta)
	return sc, base
}

// applyMetaSchedule overrides the derived round schedule with the one the
// journal's meta event records, so a replayed scenario fires its rounds
// exactly where the recording did even when the recording used a
// non-default schedule (the 3-round OSR sweep does).
func applyMetaSchedule(sc *FaultScenario, meta trace.Attrs) {
	if v, ok := meta.Get("switch_at"); ok {
		if str, ok := v.(string); ok {
			var vals []uint64
			for _, f := range strings.Fields(strings.Trim(str, "[]")) {
				if n, err := strconv.ParseUint(f, 10, 64); err == nil {
					vals = append(vals, n)
				}
			}
			if len(vals) > 0 {
				sc.SwitchAt = vals
			}
		}
	}
	if v, ok := meta.Get("profile_window"); ok {
		if w, ok := v.(float64); ok && w > 0 {
			sc.ProfileWindow = w
		}
	}
}

// sweepIndices picks which fault indices to run: every one of n in full
// mode, a deterministic ~sample spread (always including the first and
// last operations) under -short.
func sweepIndices(t *testing.T, n, sample int) []int {
	t.Helper()
	if n <= 0 {
		t.Fatalf("scenario performed %d tracee operations", n)
	}
	if !testing.Short() || n <= sample {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0}
	for k := 1; k < sample-1; k++ {
		out = append(out, k*(n-1)/(sample-1))
	}
	return append(out, n-1)
}

// failSweep dumps the failing run's journal to the test artifacts
// directory and fails with the one-line command that replays it.
func failSweep(t *testing.T, sr *SweepRun, faultAt int, format string, args ...any) {
	t.Helper()
	msg := fmt.Sprintf(format, args...)
	if sr == nil || sr.Session == nil {
		t.Fatalf("fault@%d: %s", faultAt, msg)
	}
	path, derr := sr.Session.DumpArtifact(fmt.Sprintf("faultsweep-%s-fault%d", t.Name(), faultAt))
	if derr != nil {
		t.Fatalf("fault@%d: %s (journal dump failed: %v)", faultAt, msg, derr)
	}
	t.Fatalf("fault@%d: %s\nrepro: go test ./internal/diffcheck -run TestReplayShippedJournal -args -replay.journal=%s",
		faultAt, msg, path)
}

// checkSweepRun asserts three things for one injected fault: the
// rollback was bit-exact, the run still produced the never-optimized
// baseline's output, and the trace journal recorded the failure
// truthfully (fault_injected + rollback at the injected op index, and a
// replace span closed with error status). The run is recorded; any
// failure ships its journal as the repro.
func checkSweepRun(t *testing.T, sc *FaultScenario, base *Trace, faultAt int) {
	t.Helper()
	sr, err := sc.RunRecorded(faultAt)
	if err != nil {
		failSweep(t, sr, faultAt, "run: %v", err)
	}
	if !sr.FaultHit {
		failSweep(t, sr, faultAt, "injected fault never reached (only %d ops this run)", sr.Ops)
	}
	if sr.RolledBack == 0 {
		failSweep(t, sr, faultAt, "fault hit but no round rolled back")
	}
	for _, d := range sr.RollbackDiffs {
		t.Errorf("fault@%d: rollback not exact: %s", faultAt, d)
	}
	for _, d := range sr.CheckJournal() {
		t.Errorf("fault@%d: journal: %s", faultAt, d)
	}
	for _, d := range Compare(base, sr.Trace) {
		t.Errorf("fault@%d: diverged from baseline: %s", faultAt, d)
	}
	if err := sr.Session.Finish(); err != nil {
		t.Errorf("fault@%d: recording incomplete: %v", faultAt, err)
	}
	if t.Failed() {
		failSweep(t, sr, faultAt, "stopping sweep on first failing index")
	}
}

// TestFaultSweepExhaustive is the tentpole robustness check: a
// two-round continuous-optimization scenario over a generated program is
// re-run once per tracee operation with that exact operation forced to
// fail. Every single failure point must roll back bit-identically and
// finish with the baseline's output. Under -short a deterministic sample
// of indices runs instead of all of them.
func TestFaultSweepExhaustive(t *testing.T) {
	sc, base := newProgtestScenario(t)

	// Fault-free reference: both rounds must commit and the run must
	// still match the baseline (the layout-equivalence claim).
	clean, err := sc.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Committed != len(sc.SwitchAt) {
		t.Fatalf("fault-free run committed %d/%d rounds", clean.Committed, len(sc.SwitchAt))
	}
	if diffs := Compare(base, clean.Trace); len(diffs) > 0 {
		t.Fatalf("fault-free run diverged: %v", diffs)
	}
	if probs := clean.CheckJournal(); len(probs) > 0 {
		t.Fatalf("fault-free run journal: %v", probs)
	}
	n := clean.Ops
	t.Logf("sweeping %d tracee operations across %d rounds", n, clean.Committed)
	if n < 50 {
		t.Fatalf("only %d tracee operations — scenario too small to mean anything", n)
	}

	for _, i := range sweepIndices(t, n, 25) {
		checkSweepRun(t, sc, base, i)
	}
}

// newLoopsimScenario builds the on-stack-replacement sweep scenario: the
// loop-parked workload whose main function never returns, with three
// continuous-optimization rounds so frames migrate forward (C0 → C1,
// C1 → C2) while parked inside the hot loop.
func newLoopsimScenario(t *testing.T) (*FaultScenario, *Trace) {
	t.Helper()
	tgt, err := TargetByName("loopsim")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScenarioFromTarget(tgt)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sc.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if !base.Halted || base.Fault != nil {
		t.Fatalf("baseline bad: halted=%v fault=%v", base.Halted, base.Fault)
	}
	sc.SwitchAt = []uint64{base.Insts / 5, 2 * base.Insts / 5, 3 * base.Insts / 5}
	sc.ProfileWindow = base.Seconds / 24
	return sc, base
}

// TestOSRFaultSweep is the robustness check for on-stack replacement:
// every tracee operation of a three-round run over the loop-parked
// workload — including every OSR frame rewrite and every verifier
// re-read — is forced to fail in turn, and each injected fault must roll
// the target and controller back bit-identically and still finish with
// the never-optimized baseline's output. The fault-free reference must
// actually map frames (a sweep that never performs OSR proves nothing).
func TestOSRFaultSweep(t *testing.T) {
	sc, base := newLoopsimScenario(t)

	clean, err := sc.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Committed != len(sc.SwitchAt) {
		t.Fatalf("fault-free run committed %d/%d rounds", clean.Committed, len(sc.SwitchAt))
	}
	if diffs := Compare(base, clean.Trace); len(diffs) > 0 {
		t.Fatalf("fault-free run diverged: %v", diffs)
	}
	if clean.OSRFramesMapped == 0 {
		t.Fatalf("no frame was on-stack replaced (fallbacks=%d): the loop-parked scenario must exercise OSR",
			clean.OSRFallbacks)
	}
	t.Logf("loopsim OSR scenario: %d ops, %d frames mapped, %d fallbacks",
		clean.Ops, clean.OSRFramesMapped, clean.OSRFallbacks)

	for _, i := range sweepIndices(t, clean.Ops, 20) {
		checkSweepRun(t, sc, base, i)
	}
}

// TestOSRAblationStillEquivalent pins the NoOSR switch: with OSR
// disabled the same scenario must fall back to pure copy-based migration
// — zero frames mapped — and still match the baseline.
func TestOSRAblationStillEquivalent(t *testing.T) {
	sc, base := newLoopsimScenario(t)
	sc.NoOSR = true
	clean, err := sc.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Committed != len(sc.SwitchAt) {
		t.Fatalf("NoOSR run committed %d/%d rounds", clean.Committed, len(sc.SwitchAt))
	}
	if clean.OSRFramesMapped != 0 || clean.OSRFallbacks != 0 {
		t.Fatalf("NoOSR run still reported OSR activity: mapped=%d fallbacks=%d",
			clean.OSRFramesMapped, clean.OSRFallbacks)
	}
	if diffs := Compare(base, clean.Trace); len(diffs) > 0 {
		t.Fatalf("NoOSR run diverged from baseline: %v", diffs)
	}
}

// TestFaultSweepWorkload points the sweep at a real server workload
// (kvcache with a capped request stream, syscalls and all) and samples
// fault indices across both rounds.
func TestFaultSweepWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep is sampled but still heavy; progtest sweep covers -short")
	}
	tgt, err := TargetByName("kvcache")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScenarioFromTarget(tgt)
	if err != nil {
		t.Fatal(err)
	}
	base := prepareScenario(t, sc)

	n, err := sc.Ops()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kvcache scenario: %d tracee operations", n)

	// Sample ~30 indices, always covering the first and last operation.
	sample := 30
	if n < sample {
		sample = n
	}
	for k := 0; k < sample; k++ {
		checkSweepRun(t, sc, base, k*(n-1)/(sample-1))
	}
}

// TestFaultSweepReplayRoundTrip is the determinism claim itself: record
// a faulted run, re-execute it from the serialized journal alone, and
// require the same outcome, the same baseline equivalence, and a
// byte-identical re-recorded journal.
func TestFaultSweepReplayRoundTrip(t *testing.T) {
	sc, base := newProgtestScenario(t)
	clean, err := sc.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	faultAt := clean.Ops / 2

	rec, err := sc.RunRecorded(faultAt)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !rec.FaultHit || rec.RolledBack == 0 {
		t.Fatalf("recorded run did not fault+rollback: %+v", rec)
	}
	if err := rec.Session.Finish(); err != nil {
		t.Fatalf("recording incomplete: %v", err)
	}
	var recorded bytes.Buffer
	if err := rec.Session.WriteJSONL(&recorded); err != nil {
		t.Fatal(err)
	}

	// Round-trip through the serialized form, exactly like a shipped
	// artifact would.
	events, err := replay.Load(bytes.NewReader(recorded.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := sc.ReplayJournal(events)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rp.FaultHit || rp.InjectedOp != rec.InjectedOp {
		t.Errorf("replay fault: hit=%v op=%d, recorded op=%d", rp.FaultHit, rp.InjectedOp, rec.InjectedOp)
	}
	if rp.RolledBack != rec.RolledBack || rp.Committed != rec.Committed {
		t.Errorf("replay outcome rolledback=%d committed=%d, recorded %d/%d",
			rp.RolledBack, rp.Committed, rec.RolledBack, rec.Committed)
	}
	for _, d := range rp.RollbackDiffs {
		t.Errorf("replayed rollback not exact: %s", d)
	}
	for _, d := range Compare(base, rp.Trace) {
		t.Errorf("replayed run diverged from baseline: %s", d)
	}

	var rerecorded bytes.Buffer
	if err := rp.Session.WriteJSONL(&rerecorded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recorded.Bytes(), rerecorded.Bytes()) {
		t.Errorf("re-recorded journal is not byte-identical (%d vs %d bytes)",
			recorded.Len(), rerecorded.Len())
	}
}

// TestFaultSweepReplayDivergence corrupts a single recorded event and
// requires the replayer to fail fast with the diverging sequence number
// and both payloads — the recorded event and what the execution
// actually produced.
func TestFaultSweepReplayDivergence(t *testing.T) {
	sc, _ := newProgtestScenario(t)
	clean, err := sc.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sc.RunRecorded(clean.Ops / 2)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	pristine := rec.Session.Events()

	corrupt := func(t *testing.T, mutate func([]trace.Event) uint64) {
		t.Helper()
		events := make([]trace.Event, len(pristine))
		copy(events, pristine)
		seq := mutate(events)
		_, err := sc.ReplayJournal(events)
		var div *replay.DivergenceError
		if !errors.As(err, &div) {
			t.Fatalf("corrupt journal replayed without divergence: %v", err)
		}
		if div.Seq != seq {
			t.Errorf("diverged at seq %d, want %d", div.Seq, seq)
		}
		msg := div.Error()
		for _, want := range []string{"diverged at seq", "recorded", "got"} {
			if !bytes.Contains([]byte(msg), []byte(want)) {
				t.Errorf("divergence message %q missing %q", msg, want)
			}
		}
		if div.Want.Seq == 0 && div.Got.Type == 0 {
			t.Errorf("divergence lost the payloads: %+v", div)
		}
	}

	t.Run("checkpoint-hash", func(t *testing.T) {
		corrupt(t, func(events []trace.Event) uint64 {
			for i, e := range events {
				if e.Type != trace.EvCheckpoint {
					continue
				}
				attrs := append(trace.Attrs{}, e.Attrs...)
				for j, a := range attrs {
					if a.Key == "state_hash" {
						attrs[j] = trace.String("state_hash", "0xdead")
					}
				}
				events[i].Attrs = attrs
				return e.Seq
			}
			t.Fatal("no checkpoint event recorded")
			return 0
		})
	})
	t.Run("perf-deadline", func(t *testing.T) {
		corrupt(t, func(events []trace.Event) uint64 {
			for i, e := range events {
				if e.Type != trace.EvPerfSample {
					continue
				}
				attrs := append(trace.Attrs{}, e.Attrs...)
				for j, a := range attrs {
					if a.Key == "tid" {
						attrs[j] = trace.Int("tid", 99)
					}
				}
				events[i].Attrs = attrs
				return e.Seq
			}
			t.Fatal("no perf_sample event recorded")
			return 0
		})
	})
}

// TestReplayShippedJournal re-executes a journal artifact named on the
// command line — the command every failing sweep test prints. It
// rebuilds the scenario from the journal's own session-meta event, so
// the file is the complete repro.
func TestReplayShippedJournal(t *testing.T) {
	if *replayJournalPath == "" {
		t.Skip("no -replay.journal given; this test re-executes a shipped repro artifact")
	}
	events, err := replay.LoadFile(*replayJournalPath)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := replay.MetaOf(events)
	if err != nil {
		t.Fatal(err)
	}
	sc, base := scenarioFromMeta(t, meta)
	sr, err := sc.ReplayJournal(events)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	t.Logf("replayed %s: ops=%d committed=%d rolledback=%d faultop=%d",
		*replayJournalPath, sr.Ops, sr.Committed, sr.RolledBack, sr.InjectedOp)
	for _, d := range sr.RollbackDiffs {
		t.Errorf("rollback not exact: %s", d)
	}
	for _, d := range sr.CheckJournal() {
		t.Errorf("journal: %s", d)
	}
	for _, d := range Compare(base, sr.Trace) {
		t.Errorf("diverged from baseline: %s", d)
	}
}
