package diffcheck

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/progtest"
)

// sweepIndices picks which fault indices to run: every one of n in full
// mode, a deterministic ~sample spread (always including the first and
// last operations) under -short.
func sweepIndices(t *testing.T, n, sample int) []int {
	t.Helper()
	if n <= 0 {
		t.Fatalf("scenario performed %d tracee operations", n)
	}
	if !testing.Short() || n <= sample {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0}
	for k := 1; k < sample-1; k++ {
		out = append(out, k*(n-1)/(sample-1))
	}
	return append(out, n-1)
}

// checkSweepRun asserts three things for one injected fault: the
// rollback was bit-exact, the run still produced the never-optimized
// baseline's output, and the trace journal recorded the failure
// truthfully (fault_injected + rollback at the injected op index, and a
// replace span closed with error status).
func checkSweepRun(t *testing.T, sc *FaultScenario, base *Trace, faultAt int) {
	t.Helper()
	sr, err := sc.Run(faultAt)
	if err != nil {
		t.Fatalf("fault@%d: %v", faultAt, err)
	}
	if !sr.FaultHit {
		t.Fatalf("fault@%d: injected fault never reached (only %d ops this run)", faultAt, sr.Ops)
	}
	if sr.RolledBack == 0 {
		t.Fatalf("fault@%d: fault hit but no round rolled back", faultAt)
	}
	for _, d := range sr.RollbackDiffs {
		t.Errorf("fault@%d: rollback not exact: %s", faultAt, d)
	}
	for _, d := range sr.CheckJournal() {
		t.Errorf("fault@%d: journal: %s", faultAt, d)
	}
	for _, d := range Compare(base, sr.Trace) {
		t.Errorf("fault@%d: diverged from baseline: %s", faultAt, d)
	}
	if t.Failed() {
		t.Fatalf("fault@%d: stopping sweep on first failing index", faultAt)
	}
}

// TestFaultSweepExhaustive is the tentpole robustness check: a
// two-round continuous-optimization scenario over a generated program is
// re-run once per tracee operation with that exact operation forced to
// fail. Every single failure point must roll back bit-identically and
// finish with the baseline's output. Under -short a deterministic sample
// of indices runs instead of all of them.
func TestFaultSweepExhaustive(t *testing.T) {
	prog, _, err := progtest.Generate(progtest.Options{Funcs: 12, MainIters: 4000, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := &FaultScenario{Name: "progtest", Bin: bin}

	base, err := sc.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if !base.Halted || base.Fault != nil {
		t.Fatalf("baseline bad: halted=%v fault=%v", base.Halted, base.Fault)
	}
	sc.SwitchAt = []uint64{base.Insts / 4, base.Insts / 2}
	sc.ProfileWindow = base.Seconds / 16

	// Fault-free reference: both rounds must commit and the run must
	// still match the baseline (the layout-equivalence claim).
	clean, err := sc.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Committed != len(sc.SwitchAt) {
		t.Fatalf("fault-free run committed %d/%d rounds", clean.Committed, len(sc.SwitchAt))
	}
	if diffs := Compare(base, clean.Trace); len(diffs) > 0 {
		t.Fatalf("fault-free run diverged: %v", diffs)
	}
	if probs := clean.CheckJournal(); len(probs) > 0 {
		t.Fatalf("fault-free run journal: %v", probs)
	}
	n := clean.Ops
	t.Logf("sweeping %d tracee operations across %d rounds", n, clean.Committed)
	if n < 50 {
		t.Fatalf("only %d tracee operations — scenario too small to mean anything", n)
	}

	for _, i := range sweepIndices(t, n, 25) {
		checkSweepRun(t, sc, base, i)
	}
}

// TestFaultSweepWorkload points the sweep at a real server workload
// (kvcache with a capped request stream, syscalls and all) and samples
// fault indices across both rounds.
func TestFaultSweepWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep is sampled but still heavy; progtest sweep covers -short")
	}
	tgt, err := TargetByName("kvcache")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScenarioFromTarget(tgt)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sc.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if !base.Halted || base.Fault != nil {
		t.Fatalf("baseline bad: halted=%v fault=%v", base.Halted, base.Fault)
	}
	sc.SwitchAt = []uint64{base.Insts / 4, base.Insts / 2}
	sc.ProfileWindow = base.Seconds / 16

	n, err := sc.Ops()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kvcache scenario: %d tracee operations", n)

	// Sample ~30 indices, always covering the first and last operation.
	sample := 30
	if n < sample {
		sample = n
	}
	for k := 0; k < sample; k++ {
		checkSweepRun(t, sc, base, k*(n-1)/(sample-1))
	}
}
