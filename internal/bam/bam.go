// Package bam implements Batch Accelerator Mode (§V-A): accelerating
// batch workloads made of many short-lived invocations of one binary —
// the paper's motivating case is a from-scratch Clang build under
// `LD_PRELOAD=bam.so make -j`.
//
// BAM intercepts exec calls of the target binary. Early invocations run
// with perf profiling enabled; once a configurable number of profiles has
// been collected, perf2bolt + BOLT run in a background process, and every
// later exec transparently uses the optimized binary. There is no
// stop-the-world: switching binaries costs nothing because it happens at
// exec boundaries.
//
// The build itself is modeled as a pool of parallel job slots (make -j):
// each job is one invocation whose duration is the simulated run time of
// its process, so profiling overhead, the late availability of the
// optimized binary, and the optimized binary's speedup all show up in the
// build makespan exactly as in Figure 10.
package bam

import (
	"fmt"
	"time"

	"repro/internal/bolt"
	"repro/internal/obj"
	"repro/internal/perf"
)

// JobResult is what running one invocation yields.
type JobResult struct {
	Seconds float64 // simulated duration of the invocation
	Raw     *perf.RawProfile
}

// RunJob executes one invocation of the given binary; when profile is
// true the run is under `perf record -b` (the exec arguments BAM rewrote)
// and must return the raw LBR profile.
type RunJob func(bin *obj.Binary, profile bool) (JobResult, error)

// Config tunes BAM.
type Config struct {
	Target *obj.Binary // the binary to optimize

	// ProfileRuns is how many initial invocations to profile before
	// running BOLT (the paper sweeps this on Figure 10's x-axis).
	ProfileRuns int

	// Slots is the build parallelism (make -j N).
	Slots int

	// PipelineSeconds is the simulated wall time of the background
	// perf2bolt + BOLT pipeline; the optimized binary becomes available
	// this long after the last profiled invocation finishes. It runs in a
	// background process and does not occupy a build slot.
	PipelineSeconds float64

	Bolt bolt.Options
}

// Result reports one batch run.
type Result struct {
	MakespanSeconds float64
	JobsTotal       int
	JobsProfiled    int
	JobsOptimized   int     // invocations that used the BOLTed binary
	SwitchSeconds   float64 // when the optimized binary became available (-1 if never)
	Optimized       *obj.Binary
	HostBoltSeconds float64 // host time spent in perf2bolt+BOLT
}

// Run executes njobs invocations across the slot pool with BAM attached.
func Run(cfg Config, njobs int, run RunJob) (*Result, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.ProfileRuns < 0 {
		cfg.ProfileRuns = 0
	}
	res := &Result{JobsTotal: njobs, SwitchSeconds: -1}

	slotFree := make([]float64, cfg.Slots)
	var agg perf.RawProfile
	profiledDone := 0
	profiledStarted := 0
	var lastProfiledEnd float64
	var optimized *obj.Binary
	switchAt := -1.0

	for j := 0; j < njobs; j++ {
		// Next invocation starts on the earliest-free slot.
		slot := 0
		for i := 1; i < cfg.Slots; i++ {
			if slotFree[i] < slotFree[slot] {
				slot = i
			}
		}
		start := slotFree[slot]

		// BAM's exec interception decides which binary and whether to
		// rewrite the exec into a profiled run.
		bin := cfg.Target
		profile := false
		switch {
		case optimized != nil && start >= switchAt:
			bin = optimized
			res.JobsOptimized++
		case profiledStarted < cfg.ProfileRuns:
			profile = true
			profiledStarted++
		}

		jr, err := run(bin, profile)
		if err != nil {
			return nil, fmt.Errorf("bam: job %d: %w", j, err)
		}
		end := start + jr.Seconds
		slotFree[slot] = end

		if profile {
			if jr.Raw == nil {
				return nil, fmt.Errorf("bam: job %d was profiled but returned no profile", j)
			}
			agg.Samples = append(agg.Samples, jr.Raw.Samples...)
			agg.Seconds += jr.Raw.Seconds
			profiledDone++
			if end > lastProfiledEnd {
				lastProfiledEnd = end
			}
			if profiledDone == cfg.ProfileRuns {
				// Quota reached: run the pipeline in the background.
				t0 := time.Now()
				prof, err := bolt.ConvertProfile(&agg, cfg.Target)
				if err != nil {
					return nil, err
				}
				ores, err := bolt.Optimize(cfg.Target, prof, cfg.Bolt)
				if err != nil {
					return nil, err
				}
				res.HostBoltSeconds = time.Since(t0).Seconds()
				optimized = ores.Binary
				switchAt = lastProfiledEnd + cfg.PipelineSeconds
				res.Optimized = optimized
				res.SwitchSeconds = switchAt
			}
		}
	}

	for _, t := range slotFree {
		if t > res.MakespanSeconds {
			res.MakespanSeconds = t
		}
	}
	res.JobsProfiled = profiledDone
	return res, nil
}

// RunBaseline executes the build without BAM: every invocation uses bin,
// none is profiled. Used for the "original" and "ideal" lines of
// Figure 10 (for ideal, pass a pre-optimized binary).
func RunBaseline(bin *obj.Binary, slots, njobs int, run RunJob) (*Result, error) {
	return Run(Config{Target: bin, ProfileRuns: 0, Slots: slots}, njobs, run)
}
