package bam

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/progtest"
)

// jobBinary builds the "compiler" binary invoked by every build job.
func jobBinary(t *testing.T) *obj.Binary {
	t.Helper()
	// Big enough that the hot path does not trivially fit in the L1i —
	// otherwise layout optimization has nothing to win.
	prog, _, err := progtest.Generate(progtest.Options{Funcs: 60, MainIters: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// makeRunner returns a RunJob that loads a fresh process per invocation.
func makeRunner(t *testing.T) RunJob {
	t.Helper()
	return func(bin *obj.Binary, profile bool) (JobResult, error) {
		pr, err := proc.Load(bin, proc.Options{})
		if err != nil {
			return JobResult{}, err
		}
		var rec *perf.Recorder
		if profile {
			rec = perf.Attach(pr, perf.RecorderOptions{PeriodCycles: 4000})
		}
		pr.RunUntilHalt(0)
		if err := pr.Fault(); err != nil {
			return JobResult{}, err
		}
		jr := JobResult{Seconds: pr.Seconds()}
		if rec != nil {
			jr.Raw = rec.Stop()
		}
		return jr, nil
	}
}

func TestBAMSwitchesToOptimizedBinary(t *testing.T) {
	bin := jobBinary(t)
	run := makeRunner(t)
	res, err := Run(Config{
		Target:          bin,
		ProfileRuns:     3,
		Slots:           4,
		PipelineSeconds: 0.0005,
	}, 40, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsProfiled != 3 {
		t.Errorf("profiled %d jobs, want 3", res.JobsProfiled)
	}
	if res.Optimized == nil || !res.Optimized.Bolted {
		t.Fatal("no optimized binary produced")
	}
	if res.JobsOptimized == 0 {
		t.Error("no job used the optimized binary")
	}
	if res.SwitchSeconds < 0 || res.SwitchSeconds > res.MakespanSeconds {
		t.Errorf("switch at %g outside build [0, %g]", res.SwitchSeconds, res.MakespanSeconds)
	}
	if res.MakespanSeconds <= 0 {
		t.Error("zero makespan")
	}
}

func TestBAMOptimizedJobsAreFaster(t *testing.T) {
	bin := jobBinary(t)
	run := makeRunner(t)

	orig, err := run(bin, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Target: bin, ProfileRuns: 2, Slots: 1, PipelineSeconds: 0}, 6, run)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := run(res.Optimized, false)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Seconds >= orig.Seconds {
		t.Errorf("optimized invocation (%.6fs) not faster than original (%.6fs)", opt.Seconds, orig.Seconds)
	}
	// A profiled run is slower than a plain one (perf overhead).
	prof, err := run(bin, true)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Seconds <= orig.Seconds {
		t.Errorf("profiled invocation (%.6fs) not slower than plain (%.6fs)", prof.Seconds, orig.Seconds)
	}
}

func TestBAMZeroProfileRunsNeverSwitches(t *testing.T) {
	bin := jobBinary(t)
	run := makeRunner(t)
	res, err := Run(Config{Target: bin, ProfileRuns: 0, Slots: 2}, 6, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimized != nil || res.SwitchSeconds != -1 || res.JobsOptimized != 0 {
		t.Error("BAM with ProfileRuns=0 must behave as the original build")
	}
}

func TestBaselineMatchesSerialSum(t *testing.T) {
	bin := jobBinary(t)
	run := makeRunner(t)
	one, err := run(bin, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBaseline(bin, 1, 5, run)
	if err != nil {
		t.Fatal(err)
	}
	want := one.Seconds * 5
	if diff := res.MakespanSeconds - want; diff > want*0.01 || diff < -want*0.01 {
		t.Errorf("serial makespan %.6f, want ≈ %.6f", res.MakespanSeconds, want)
	}
	// Parallel build is ~K× faster.
	res4, err := RunBaseline(bin, 5, 5, run)
	if err != nil {
		t.Fatal(err)
	}
	if res4.MakespanSeconds > one.Seconds*1.01 {
		t.Errorf("fully parallel makespan %.6f, want ≈ %.6f", res4.MakespanSeconds, one.Seconds)
	}
}
