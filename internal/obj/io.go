package obj

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// magic identifies serialized binaries on disk.
const magic = "OCOLOSGO1\n"

// Encode serializes the binary to w (gob, gzip-compressed, with a magic
// header). The on-disk form is what cmd/bolt and cmd/ocolos-run exchange.
func (b *Binary) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(b); err != nil {
		return fmt.Errorf("obj: encode %s: %w", b.Name, err)
	}
	return zw.Close()
}

// DecodeBinary reads a binary previously written by Encode.
func DecodeBinary(r io.Reader) (*Binary, error) {
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("obj: reading header: %w", err)
	}
	if !bytes.Equal(hdr, []byte(magic)) {
		return nil, fmt.Errorf("obj: bad magic %q", hdr)
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("obj: gzip: %w", err)
	}
	defer zr.Close()
	var b Binary
	if err := gob.NewDecoder(zr).Decode(&b); err != nil {
		return nil, fmt.Errorf("obj: decode: %w", err)
	}
	b.SortFuncs()
	return &b, nil
}

// WriteFile serializes the binary to path.
func (b *Binary) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a binary from path.
func ReadFile(path string) (*Binary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeBinary(f)
}

// Clone returns a deep copy of the binary. Optimizers use it so the input
// binary is never mutated.
func (b *Binary) Clone() *Binary {
	nb := &Binary{
		Name:         b.Name,
		Entry:        b.Entry,
		Bolted:       b.Bolted,
		NoJumpTables: b.NoJumpTables,
	}
	for _, s := range b.Sections {
		data := make([]byte, len(s.Data))
		copy(data, s.Data)
		nb.Sections = append(nb.Sections, &Section{Name: s.Name, Addr: s.Addr, Data: data})
	}
	for _, f := range b.Funcs {
		nf := *f
		nf.Blocks = append([]BlockSpan(nil), f.Blocks...)
		nb.Funcs = append(nb.Funcs, &nf)
	}
	for _, vt := range b.VTables {
		nvt := *vt
		nvt.Slots = append([]uint64(nil), vt.Slots...)
		nb.VTables = append(nb.VTables, &nvt)
	}
	for _, jt := range b.JumpTables {
		njt := *jt
		njt.Targets = append([]uint64(nil), jt.Targets...)
		nb.JumpTables = append(nb.JumpTables, &njt)
	}
	nb.OrgRanges = append([]OrgRange(nil), b.OrgRanges...)
	if b.AddrMap != nil {
		nb.AddrMap = make(map[uint64]uint64, len(b.AddrMap))
		for k, v := range b.AddrMap {
			nb.AddrMap[k] = v
		}
	}
	if b.OSRMap != nil {
		nb.OSRMap = make(map[uint64][]OSRPoint, len(b.OSRMap))
		for k, v := range b.OSRMap {
			nb.OSRMap[k] = append([]OSRPoint(nil), v...)
		}
	}
	nb.SortFuncs()
	return nb
}
