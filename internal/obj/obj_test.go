package obj

import (
	"bytes"
	"testing"
)

// testBinary builds a small two-section binary with two functions, a
// v-table, and a jump table.
func testBinary() *Binary {
	text := make([]byte, 0x100)
	data := make([]byte, 0x40)
	b := &Binary{
		Name:  "t",
		Entry: 0x400000,
		Sections: []*Section{
			{Name: SecText, Addr: 0x400000, Data: text},
			{Name: SecData, Addr: 0x500000, Data: data},
		},
		Funcs: []*Func{
			{Name: "main", Addr: 0x400000, Size: 0x80,
				Blocks: []BlockSpan{{0, 0x30}, {0x30, 0x50}}},
			{Name: "helper", Addr: 0x400080, Size: 0x80,
				Blocks: []BlockSpan{{0, 0x80}}},
		},
		VTables: []*VTable{
			{Name: "vt", Addr: 0x500000, Slots: []uint64{0x400080}},
		},
		JumpTables: []*JumpTable{
			{Name: "jt", Addr: 0x500020, Targets: []uint64{0x400030, 0x400080}, Owner: "main"},
		},
	}
	b.SortFuncs()
	return b
}

func TestValidateOK(t *testing.T) {
	if err := testBinary().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	b := testBinary()
	b.Sections = append(b.Sections, &Section{Name: "x", Addr: 0x400010, Data: make([]byte, 8)})
	if err := b.Validate(); err == nil {
		t.Error("overlapping sections not caught")
	}

	b = testBinary()
	b.VTables[0].Slots[0] = 0x400084 // mid-function, not an entry
	if err := b.Validate(); err == nil {
		t.Error("vtable slot at non-entry not caught")
	}

	b = testBinary()
	b.Funcs[0].Blocks[1].Size = 1 // blocks no longer cover function
	if err := b.Validate(); err == nil {
		t.Error("block coverage mismatch not caught")
	}

	b = testBinary()
	b.Entry = 0x400004
	if err := b.Validate(); err == nil {
		t.Error("bad entry not caught")
	}

	b = testBinary()
	b.JumpTables[0].Targets[0] = 0x700000
	if err := b.Validate(); err == nil {
		t.Error("jump table target outside functions not caught")
	}
}

func TestLookup(t *testing.T) {
	b := testBinary()
	f, off, cold := b.Lookup(0x400084)
	if f == nil || f.Name != "helper" || off != 4 || cold {
		t.Errorf("Lookup(0x400084) = %v,%d,%v", f, off, cold)
	}
	f, off, _ = b.Lookup(0x400000)
	if f == nil || f.Name != "main" || off != 0 {
		t.Errorf("Lookup(entry) = %v,%d", f, off)
	}
	if f, _, _ := b.Lookup(0x399999); f != nil {
		t.Error("Lookup below text should fail")
	}
	if f, _, _ := b.Lookup(0x400100); f != nil {
		t.Error("Lookup past last function should fail")
	}
}

func TestLookupColdRange(t *testing.T) {
	b := testBinary()
	b.Funcs[0].ColdAddr = 0x600000
	b.Funcs[0].ColdSize = 0x20
	b.Sections = append(b.Sections, &Section{Name: SecColdText, Addr: 0x600000, Data: make([]byte, 0x20)})
	f, off, cold := b.Lookup(0x600010)
	if f == nil || f.Name != "main" || off != 0x10 || !cold {
		t.Errorf("cold Lookup = %v,%d,%v", f, off, cold)
	}
	if !b.Funcs[0].Contains(0x600010) {
		t.Error("Contains should include cold range")
	}
}

func TestFuncByNameAndAt(t *testing.T) {
	b := testBinary()
	if f := b.FuncByName("helper"); f == nil || f.Addr != 0x400080 {
		t.Error("FuncByName failed")
	}
	if f := b.FuncByName("nope"); f != nil {
		t.Error("FuncByName should return nil for unknown")
	}
	if f := b.FuncAt(0x400080); f == nil || f.Name != "helper" {
		t.Error("FuncAt failed")
	}
	if f := b.FuncAt(0x400081); f != nil {
		t.Error("FuncAt mid-function should return nil")
	}
}

func TestBytes(t *testing.T) {
	b := testBinary()
	b.Sections[0].Data[5] = 0xAA
	got, err := b.Bytes(0x400004, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 0xAA {
		t.Error("Bytes returned wrong data")
	}
	if _, err := b.Bytes(0x4000FE, 4); err == nil {
		t.Error("overrun not caught")
	}
	if _, err := b.Bytes(0x900000, 1); err == nil {
		t.Error("unmapped address not caught")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := testBinary()
	b.Bolted = true
	b.AddrMap = map[uint64]uint64{0x400000: 0x20000000}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || got.Entry != b.Entry || !got.Bolted {
		t.Error("header fields lost")
	}
	if len(got.Funcs) != 2 || got.FuncByName("main") == nil {
		t.Error("functions lost")
	}
	if got.AddrMap[0x400000] != 0x20000000 {
		t.Error("AddrMap lost")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("decoded binary invalid: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBinary(bytes.NewReader([]byte("not a binary at all"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestClone(t *testing.T) {
	b := testBinary()
	c := b.Clone()
	c.Sections[0].Data[0] = 0xFF
	c.Funcs[0].Size = 1
	c.VTables[0].Slots[0] = 0
	if b.Sections[0].Data[0] == 0xFF || b.Funcs[0].Size == 1 || b.VTables[0].Slots[0] == 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestStats(t *testing.T) {
	b := testBinary()
	st := b.Stats()
	if st.Funcs != 2 || st.VTables != 1 || st.TextBytes != 0x100 || st.JumpTables != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestOrgRanges(t *testing.T) {
	b := testBinary()
	b.OrgRanges = []OrgRange{
		{Lo: 0x700000, Hi: 0x700100, Name: "main", Entry: 0x700000},
	}
	r, ok := b.OrgLookup(0x700080)
	if !ok || r.Name != "main" || r.Entry != 0x700000 {
		t.Errorf("OrgLookup = %+v, %v", r, ok)
	}
	if _, ok := b.OrgLookup(0x700100); ok {
		t.Error("end-exclusive boundary resolved")
	}
	if _, ok := b.OrgLookup(0x123); ok {
		t.Error("miss resolved")
	}
	// Survives serialization and cloning.
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.OrgRanges) != 1 || got.OrgRanges[0].Name != "main" {
		t.Error("OrgRanges lost in serialization")
	}
	c := b.Clone()
	c.OrgRanges[0].Name = "x"
	if b.OrgRanges[0].Name != "main" {
		t.Error("Clone shares OrgRanges storage")
	}
}
