// Package obj defines the binary ("executable") format produced by the
// assembler/linker and consumed by the loader, the BOLT-style optimizer,
// and the OCOLOS controller.
//
// A Binary is a bag of sections (code and data bytes at fixed virtual
// addresses) plus the symbol-level metadata real tools get from ELF symbol
// tables: function ranges, basic-block spans, v-table locations, and
// jump-table locations. BOLT-style tools re-discover control flow by
// disassembling the section bytes; the metadata only anchors function
// boundaries, exactly as symbol tables do for the real BOLT.
package obj

import (
	"fmt"
	"sort"
)

// Canonical section names.
const (
	SecText     = ".text"          // code, as laid out by the compiler
	SecOrgText  = ".bolt.org.text" // original code, renamed by BOLT (§II-D)
	SecColdText = ".text.cold"     // exiled cold blocks of hot functions
	SecROData   = ".rodata"        // jump tables and constants
	SecData     = ".data"          // globals and v-tables
)

// Section is a contiguous range of initialized bytes at a fixed address.
type Section struct {
	Name string
	Addr uint64
	Data []byte
}

// End returns the first address past the section.
func (s *Section) End() uint64 { return s.Addr + uint64(len(s.Data)) }

// Contains reports whether addr falls inside the section.
func (s *Section) Contains(addr uint64) bool { return addr >= s.Addr && addr < s.End() }

// BlockSpan records one basic block of a function as a byte range relative
// to the function start.
type BlockSpan struct {
	Off  uint32 // byte offset from function entry
	Size uint32 // bytes
}

// Func is a function symbol.
type Func struct {
	Name string
	Addr uint64 // entry address
	Size uint64 // bytes of the contiguous (hot) part

	// Blocks are the basic-block spans of the contiguous part, in layout
	// order. The first span is always the entry block (offset 0).
	Blocks []BlockSpan

	// ColdAddr/ColdSize describe the exiled cold part after hot/cold
	// splitting (zero if the function was not split).
	ColdAddr uint64
	ColdSize uint64

	// Optimized marks functions whose layout was chosen by an optimizer
	// (BOLT reordered its blocks and/or moved it). Informational.
	Optimized bool
}

// Contains reports whether addr is inside the function's hot or cold range.
func (f *Func) Contains(addr uint64) bool {
	if addr >= f.Addr && addr < f.Addr+f.Size {
		return true
	}
	return f.ColdSize > 0 && addr >= f.ColdAddr && addr < f.ColdAddr+f.ColdSize
}

// OrgRange records an address range a function occupied before it was
// moved by an optimizer.
type OrgRange struct {
	Lo, Hi uint64
	Name   string
	Entry  uint64 // the old entry address within [Lo,Hi)
}

// OrgLookup resolves addr against the OrgRanges table, returning the
// function name and old entry.
func (b *Binary) OrgLookup(addr uint64) (*OrgRange, bool) {
	for i := range b.OrgRanges {
		r := &b.OrgRanges[i]
		if addr >= r.Lo && addr < r.Hi {
			return r, true
		}
	}
	return nil, false
}

// OSRKind classifies why a point inside a function is safe for on-stack
// replacement. All kinds share the property that the live register/spill
// state at the point is identical across layouts, so transferring a frame
// needs no state reconstruction ("OSR à la carte").
type OSRKind uint8

const (
	// OSREntry is the function entry (offset 0 in both layouts).
	OSREntry OSRKind = iota
	// OSRLoopHeader is the target of a backward edge: a loop header a
	// parked thread re-reaches every iteration.
	OSRLoopHeader
	// OSRCallSite is a CALL instruction (a thread stopped exactly on it
	// has not yet pushed the callee frame).
	OSRCallSite
	// OSRRetPoint is the instruction after a CALL: the return address a
	// suspended caller frame holds while the callee runs.
	OSRRetPoint
)

// String names the kind for journals and test failures.
func (k OSRKind) String() string {
	switch k {
	case OSREntry:
		return "entry"
	case OSRLoopHeader:
		return "loop_header"
	case OSRCallSite:
		return "call"
	case OSRRetPoint:
		return "ret_point"
	}
	return fmt.Sprintf("OSRKind(%d)", uint8(k))
}

// OSRPoint maps one mappable program point of a function from the input
// layout to the optimized layout. Offsets are unified byte offsets from
// the function entry: offsets below the hot size address the hot range,
// larger offsets continue into the cold range (hotSize + coldOffset),
// mirroring bolt's unified CFG addressing.
type OSRPoint struct {
	OldOff uint64
	NewOff uint64
	Kind   OSRKind
}

// OSRPointAt returns the OSR point for the given input-layout entry
// address and unified old offset, if one exists. Points are sorted by
// OldOff, so a binary search suffices.
func (b *Binary) OSRPointAt(entry, oldOff uint64) (OSRPoint, bool) {
	pts := b.OSRMap[entry]
	i := sort.Search(len(pts), func(i int) bool { return pts[i].OldOff >= oldOff })
	if i < len(pts) && pts[i].OldOff == oldOff {
		return pts[i], true
	}
	return OSRPoint{}, false
}

// VTable is a virtual-method table in the data section: Slots entries of
// 8 bytes each, holding absolute function entry addresses.
type VTable struct {
	Name  string
	Addr  uint64
	Slots []uint64 // link-time target addresses (loader writes these to memory)
}

// JumpTable is a table of absolute code addresses in .rodata used by a
// JTBL instruction.
type JumpTable struct {
	Name    string
	Addr    uint64
	Targets []uint64 // absolute code addresses
	// Owner is the name of the function whose JTBL references this table.
	Owner string
}

// Binary is a complete executable image.
type Binary struct {
	Name  string
	Entry uint64 // address of the entry function

	Sections   []*Section
	Funcs      []*Func // sorted by Addr
	VTables    []*VTable
	JumpTables []*JumpTable

	// Bolted marks a binary produced by the BOLT-style optimizer. Like the
	// real BOLT (§IV-C), the optimizer refuses to process a Bolted binary
	// unless explicitly told to.
	Bolted bool

	// NoJumpTables records that the binary was compiled with the
	// -fno-jump-tables analog, a requirement for OCOLOS code replacement
	// (§IV-D).
	NoJumpTables bool

	// AddrMap, present on optimized binaries, maps original function entry
	// addresses to optimized entry addresses. OCOLOS uses it to patch
	// v-tables and calls; it is also the translation table behind the
	// wrapFuncPtrCreation invariant.
	AddrMap map[uint64]uint64

	// OrgRanges symbolizes the *previous* homes of moved functions — the
	// BAT (BOLT Address Translation) analog. Profilers use it to attribute
	// samples taken in old code (which keeps executing in the live process
	// under OCOLOS) to the right function, at function granularity.
	OrgRanges []OrgRange

	// OSRMap, present on optimized binaries, lists the mappable OSR
	// points of each reordered function, keyed by the function's entry
	// address in the *input* binary and sorted by OldOff. A frame parked
	// mid-function in the old layout can be migrated in place iff its
	// unified offset appears here; anything else falls back to copy-based
	// migration.
	OSRMap map[uint64][]OSRPoint

	byName map[string]*Func // lazily built
}

// Section returns the section with the given name, or nil.
func (b *Binary) Section(name string) *Section {
	for _, s := range b.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// SectionFor returns the section containing addr, or nil.
func (b *Binary) SectionFor(addr uint64) *Section {
	for _, s := range b.Sections {
		if s.Contains(addr) {
			return s
		}
	}
	return nil
}

// Bytes returns n bytes at addr from whichever section contains the range,
// or an error if the range is not fully inside one section.
func (b *Binary) Bytes(addr uint64, n int) ([]byte, error) {
	s := b.SectionFor(addr)
	if s == nil {
		return nil, fmt.Errorf("obj: address %#x not in any section of %s", addr, b.Name)
	}
	off := addr - s.Addr
	if off+uint64(n) > uint64(len(s.Data)) {
		return nil, fmt.Errorf("obj: range [%#x,+%d) overruns section %s", addr, n, s.Name)
	}
	return s.Data[off : off+uint64(n)], nil
}

// SortFuncs sorts the function table by entry address and resets lookup
// caches. Producers must call it after assembling the table.
func (b *Binary) SortFuncs() {
	sort.Slice(b.Funcs, func(i, j int) bool { return b.Funcs[i].Addr < b.Funcs[j].Addr })
	b.byName = nil
}

// FuncByName returns the function with the given name, or nil.
func (b *Binary) FuncByName(name string) *Func {
	if b.byName == nil {
		b.byName = make(map[string]*Func, len(b.Funcs))
		for _, f := range b.Funcs {
			b.byName[f.Name] = f
		}
	}
	return b.byName[name]
}

// FuncAt returns the function whose hot range starts exactly at addr, or
// nil.
func (b *Binary) FuncAt(addr uint64) *Func {
	i := sort.Search(len(b.Funcs), func(i int) bool { return b.Funcs[i].Addr >= addr })
	if i < len(b.Funcs) && b.Funcs[i].Addr == addr {
		return b.Funcs[i]
	}
	return nil
}

// Lookup symbolizes addr: it returns the function containing addr (hot or
// cold range) and the byte offset from that range's start. The second
// result is true when addr falls in the cold range.
func (b *Binary) Lookup(addr uint64) (f *Func, off uint64, cold bool) {
	// Hot ranges: binary search on sorted entry addresses.
	i := sort.Search(len(b.Funcs), func(i int) bool { return b.Funcs[i].Addr > addr })
	if i > 0 {
		cand := b.Funcs[i-1]
		if addr < cand.Addr+cand.Size {
			return cand, addr - cand.Addr, false
		}
	}
	// Cold ranges are few; scan.
	for _, f := range b.Funcs {
		if f.ColdSize > 0 && addr >= f.ColdAddr && addr < f.ColdAddr+f.ColdSize {
			return f, addr - f.ColdAddr, true
		}
	}
	return nil, 0, false
}

// TextBytes returns the total code bytes across all code sections.
func (b *Binary) TextBytes() uint64 {
	var n uint64
	for _, s := range b.Sections {
		if s.Name == SecText || s.Name == SecOrgText || s.Name == SecColdText {
			n += uint64(len(s.Data))
		}
	}
	return n
}

// Validate performs structural sanity checks: sections must not overlap,
// functions must be inside code sections, v-table slots and jump-table
// targets must point at function entries or inside functions.
func (b *Binary) Validate() error {
	secs := make([]*Section, len(b.Sections))
	copy(secs, b.Sections)
	sort.Slice(secs, func(i, j int) bool { return secs[i].Addr < secs[j].Addr })
	for i := 1; i < len(secs); i++ {
		if secs[i].Addr < secs[i-1].End() {
			return fmt.Errorf("obj: sections %s and %s overlap", secs[i-1].Name, secs[i].Name)
		}
	}
	for _, f := range b.Funcs {
		s := b.SectionFor(f.Addr)
		if s == nil || (s.Name != SecText && s.Name != SecOrgText && s.Name != SecColdText) {
			return fmt.Errorf("obj: function %s at %#x not in a code section", f.Name, f.Addr)
		}
		if f.Addr+f.Size > s.End() {
			return fmt.Errorf("obj: function %s overruns section %s", f.Name, s.Name)
		}
		var covered uint64
		for bi, blk := range f.Blocks {
			if bi == 0 && blk.Off != 0 {
				return fmt.Errorf("obj: function %s: first block at offset %d", f.Name, blk.Off)
			}
			covered += uint64(blk.Size)
		}
		if len(f.Blocks) > 0 && covered != f.Size {
			return fmt.Errorf("obj: function %s: blocks cover %d of %d bytes", f.Name, covered, f.Size)
		}
	}
	for _, vt := range b.VTables {
		for i, slot := range vt.Slots {
			if fn, _, _ := b.Lookup(slot); fn == nil || fn.Addr != slot {
				return fmt.Errorf("obj: vtable %s slot %d (%#x) is not a function entry", vt.Name, i, slot)
			}
		}
	}
	for _, jt := range b.JumpTables {
		for i, tgt := range jt.Targets {
			if fn, _, _ := b.Lookup(tgt); fn == nil {
				return fmt.Errorf("obj: jump table %s target %d (%#x) is not in any function", jt.Name, i, tgt)
			}
		}
	}
	if b.Entry != 0 {
		if f := b.FuncAt(b.Entry); f == nil {
			return fmt.Errorf("obj: entry %#x is not a function entry", b.Entry)
		}
	}
	return nil
}

// Stats summarizes the binary for characterization tables (Table I).
type Stats struct {
	Funcs      int
	VTables    int
	TextBytes  uint64
	JumpTables int
}

// Stats returns summary statistics.
func (b *Binary) Stats() Stats {
	return Stats{
		Funcs:      len(b.Funcs),
		VTables:    len(b.VTables),
		TextBytes:  b.TextBytes(),
		JumpTables: len(b.JumpTables),
	}
}

// String implements fmt.Stringer.
func (b *Binary) String() string {
	st := b.Stats()
	return fmt.Sprintf("%s: %d funcs, %d vtables, .text %.2f MiB, bolted=%v",
		b.Name, st.Funcs, st.VTables, float64(st.TextBytes)/(1<<20), b.Bolted)
}
