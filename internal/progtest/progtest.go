// Package progtest generates deterministic random programs for
// property-based testing: a random call DAG with data-dependent control
// flow, virtual calls, and function pointers, whose final checksum must be
// identical under any semantics-preserving code transformation. The bolt
// and core test suites run original and transformed binaries and compare
// checksums.
package progtest

import (
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
)

// Options shapes the generated program.
type Options struct {
	Funcs      int   // number of non-main functions (≥ 3)
	MainIters  int64 // main loop trip count
	Seed       int64
	JumpTables bool // allow switch-via-jump-table
}

// Generate builds a random program. The checksum is written to global
// "out" and main halts. Returns the program and the address of "out".
func Generate(o Options) (*asm.Program, uint64, error) {
	if o.Funcs < 3 {
		o.Funcs = 3
	}
	if o.MainIters == 0 {
		o.MainIters = 5000
	}
	rng := rand.New(rand.NewSource(o.Seed))

	p := build.NewProgram(fmt.Sprintf("rand%d", o.Seed))
	p.SetNoJumpTables(!o.JumpTables)
	p.Global("out", 8)

	names := make([]string, o.Funcs)
	for i := range names {
		names[i] = fmt.Sprintf("f%02d", i)
	}
	// The last three functions are leaf v-table methods.
	vslots := names[o.Funcs-3:]
	p.VTable("vt", vslots...)

	for i, name := range names {
		f := p.Func(name)
		emitRandomFunc(p, f, rng, names, i, o)
	}

	m := p.Func("main")
	m.Prologue(32)
	m.MovI(isa.R7, 0)
	m.MovI(isa.R8, 0)
	m.While(func() { m.CmpI(isa.R7, o.MainIters) }, isa.LT, func() {
		m.Mov(isa.R0, isa.R7)
		m.Call(names[0])
		m.Add(isa.R8, isa.R8, isa.R0)
		// Mix in a second entry point sometimes for wider coverage.
		m.AndI(isa.R1, isa.R7, 7)
		m.CmpI(isa.R1, 0)
		m.If(isa.EQ, func() {
			m.Mov(isa.R0, isa.R7)
			m.Call(names[1%len(names)])
			m.Add(isa.R8, isa.R8, isa.R0)
		}, nil)
		m.AddI(isa.R7, isa.R7, 1)
	})
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R8)
	m.Halt()
	p.SetEntry("main")

	prog, err := p.Program()
	if err != nil {
		return nil, 0, err
	}
	outAddr := asm.DataSymbols(prog, asm.Options{})["out"]
	return prog, outAddr, nil
}

// emitRandomFunc writes a function body: R0 in → R0 out, deterministic.
// Function i only calls functions with larger indexes (acyclic), keeping
// its live accumulator in a frame slot across calls.
func emitRandomFunc(p *build.ProgramBuilder, f *build.FuncBuilder, rng *rand.Rand, names []string, i int, o Options) {
	f.Prologue(32)
	// acc in R2, input preserved in frame slot -8.
	f.St(isa.FP, -8, isa.R0)
	f.Mov(isa.R2, isa.R0)

	nStmts := 2 + rng.Intn(4)
	for s := 0; s < nStmts; s++ {
		switch rng.Intn(6) {
		case 0: // arithmetic
			f.MulI(isa.R2, isa.R2, int64(1+rng.Intn(7)))
			f.AddI(isa.R2, isa.R2, int64(rng.Intn(100)))
		case 1: // xor/shift mix
			f.XorI(isa.R2, isa.R2, int64(rng.Intn(1<<16)))
			f.ShrI(isa.R3, isa.R2, int64(1+rng.Intn(3)))
			f.Add(isa.R2, isa.R2, isa.R3)
		case 2: // biased if/else
			bias := int64(rng.Intn(15))
			f.Ld(isa.R1, isa.FP, -8)
			f.AndI(isa.R1, isa.R1, 15)
			f.CmpI(isa.R1, bias)
			f.If(isa.Cond(rng.Intn(6)), func() {
				f.AddI(isa.R2, isa.R2, 17)
			}, func() {
				f.MulI(isa.R2, isa.R2, 3)
				f.PadCode(rng.Intn(12))
			})
		case 3: // bounded loop
			n := int64(1 + rng.Intn(4))
			f.St(isa.FP, -16, isa.R2)
			f.MovI(isa.R4, 0)
			f.While(func() { f.CmpI(isa.R4, n) }, isa.LT, func() {
				f.Ld(isa.R5, isa.FP, -16)
				f.AddI(isa.R5, isa.R5, 5)
				f.St(isa.FP, -16, isa.R5)
				f.AddI(isa.R4, isa.R4, 1)
			})
			f.Ld(isa.R2, isa.FP, -16)
		case 4: // direct or pointer call to a later function
			if i+1 < len(names) {
				callee := names[i+1+rng.Intn(len(names)-i-1)]
				f.St(isa.FP, -24, isa.R2)
				f.Ld(isa.R0, isa.FP, -8)
				if rng.Intn(3) == 0 {
					f.FuncPtr(isa.R6, callee)
					f.CallR(isa.R6)
				} else {
					f.Call(callee)
				}
				f.Ld(isa.R2, isa.FP, -24)
				f.Add(isa.R2, isa.R2, isa.R0)
			} else {
				f.AddI(isa.R2, isa.R2, 9)
			}
		case 5: // switch on input
			cases := make([]func(), 2+rng.Intn(3))
			for c := range cases {
				delta := int64(c*7 + rng.Intn(20))
				cases[c] = func() { f.AddI(isa.R2, isa.R2, delta) }
			}
			f.Ld(isa.R1, isa.FP, -8)
			f.AndI(isa.R1, isa.R1, int64(len(cases)))
			f.Switch(isa.R1, cases, func() { f.XorI(isa.R2, isa.R2, 0x55) })
		}
	}

	// Virtual call from the middle tier into the leaf methods.
	if i >= 2 && i < len(names)-3 && rng.Intn(3) == 0 {
		f.St(isa.FP, -24, isa.R2)
		f.LoadGlobalAddr(isa.R3, "vt")
		f.St(isa.FP, -32, isa.R3)
		f.AddI(isa.R4, isa.FP, -32) // object: [vtable]
		f.Ld(isa.R0, isa.FP, -8)
		f.AndI(isa.R5, isa.R0, 1)
		f.Ld(isa.R6, isa.R4, 0)
		f.ShlI(isa.R5, isa.R5, 3)
		f.Add(isa.R6, isa.R6, isa.R5)
		f.Ld(isa.R6, isa.R6, 0)
		f.CallR(isa.R6)
		f.Ld(isa.R2, isa.FP, -24)
		f.Add(isa.R2, isa.R2, isa.R0)
	}

	f.Mov(isa.R0, isa.R2)
	f.EpilogueRet()
}
