package progtest

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/proc"
)

// TestGenerateDeterministicAndRunnable: same seed → same binary and same
// checksum; different seeds → different programs.
func TestGenerateDeterministicAndRunnable(t *testing.T) {
	run := func(seed int64) uint64 {
		prog, outAddr, err := Generate(Options{Funcs: 8, MainIters: 2000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		bin, err := asm.Assemble(prog, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := bin.Validate(); err != nil {
			t.Fatal(err)
		}
		p, err := proc.Load(bin, proc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p.RunUntilHalt(0)
		if err := p.Fault(); err != nil {
			t.Fatal(err)
		}
		return p.Mem.ReadWord(outAddr)
	}
	a1, a2 := run(7), run(7)
	if a1 != a2 {
		t.Errorf("same seed produced %d and %d", a1, a2)
	}
	if b := run(8); b == a1 {
		t.Error("different seeds produced identical checksums")
	}
}

func TestGenerateDefaultsAndJumpTables(t *testing.T) {
	prog, _, err := Generate(Options{Seed: 3, JumpTables: true})
	if err != nil {
		t.Fatal(err)
	}
	if prog.NoJumpTables {
		t.Error("JumpTables option ignored")
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Minimum function count is enforced.
	if len(bin.Funcs) < 4 {
		t.Errorf("only %d functions", len(bin.Funcs))
	}
}
