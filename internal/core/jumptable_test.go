package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bolt"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/progtest"
)

func genJTProgram(t *testing.T, seed int64, iters int64) (*obj.Binary, uint64) {
	t.Helper()
	prog, outAddr, err := progtest.Generate(progtest.Options{
		Funcs: 12, MainIters: iters, Seed: seed, JumpTables: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.JumpTables) == 0 {
		t.Skip("seed produced no jump tables")
	}
	return bin, outAddr
}

// TestJumpTableSupport exercises the §IV-D extension: a binary compiled
// WITH jump tables is optimized online; each version's tables are
// relocated into its own region and injected with the code, C0's tables
// stay untouched, and semantics are preserved across continuous rounds.
func TestJumpTableSupport(t *testing.T) {
	bin, outAddr := genJTProgram(t, 92, 150000)
	want := plainRun(t, bin, outAddr)

	pr, c := newController(t, bin, Options{
		AllowJumpTables: true,
		Bolt:            bolt.Options{AllowReBolt: true},
	})
	pr.RunFor(0.0002)
	for round := 0; round < 3; round++ {
		if pr.Halted() {
			t.Fatalf("ended before round %d", round)
		}
		rr, err := c.OptimizeRound(0.0004)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		rs, bs := rr.Replace, rr.Build
		_ = rs
		// The optimized binary's tables live inside the version region.
		if ro := bs.Result.Binary.Section(obj.SecROData); ro != nil {
			base := textBase(c.Version())
			if ro.Addr < base || ro.Addr >= base+versionStride {
				t.Errorf("round %d: rodata at %#x outside version region [%#x,%#x)",
					round, ro.Addr, base, base+versionStride)
			}
		}
		pr.RunFor(0.0004)
		if err := pr.Fault(); err != nil {
			t.Fatalf("fault after round %d: %v", round, err)
		}
	}

	// C0's original jump tables are untouched.
	for _, jt := range bin.JumpTables {
		for i, wantTgt := range jt.Targets {
			if got := pr.Mem.ReadWord(jt.Addr + uint64(i)*8); got != wantTgt {
				t.Errorf("C0 jump table %s entry %d clobbered: %#x != %#x",
					jt.Name, i, got, wantTgt)
			}
		}
	}

	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum %d != %d", got, want)
	}
}

// TestJumpTableBinaryStillRejectedByDefault: without the opt-in the
// paper's §IV-D requirement stands.
func TestJumpTableBinaryStillRejectedByDefault(t *testing.T) {
	bin, _ := genJTProgram(t, 93, 1000)
	pr, err := procLoad(bin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(pr, bin, Options{}); err == nil {
		t.Error("jump-table binary accepted without AllowJumpTables")
	}
	if _, err := New(pr, bin, Options{AllowJumpTables: true}); err != nil {
		t.Errorf("AllowJumpTables rejected: %v", err)
	}
}

// TestJumpTableSteering: execution moves into the optimized region, i.e.
// the relocated tables actually get used.
func TestJumpTableSteering(t *testing.T) {
	bin, _ := genJTProgram(t, 94, 1<<30)
	pr, c := newController(t, bin, Options{AllowJumpTables: true})
	pr.RunFor(0.0003)
	if _, err := c.OptimizeRound(0.0005); err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.0003)
	raw := perf.Record(pr, 0.0005, perf.RecorderOptions{PeriodCycles: 2000})
	var inOpt, total int
	for _, s := range raw.Samples {
		for _, r := range s.Records {
			total++
			if r.From >= firstTextBase {
				inOpt++
			}
		}
	}
	if total == 0 {
		t.Fatal("no samples")
	}
	if frac := float64(inOpt) / float64(total); frac < 0.4 {
		t.Errorf("only %.1f%% of branches in optimized code", frac*100)
	}
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
}

// TestKitchenSink: jump tables + trampolines + parallel patching +
// continuous rounds + multithreading, all at once.
func TestKitchenSink(t *testing.T) {
	if testing.Short() {
		t.Skip("kitchen sink in -short mode")
	}
	bin, outAddr := genJTProgram(t, 98, 120000)
	want := plainRun(t, bin, outAddr)

	pr, err := proc.Load(bin, proc.Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(pr, bin, Options{
		AllowJumpTables: true,
		Trampolines:     true,
		ParallelPatch:   true,
		Bolt:            bolt.Options{AllowReBolt: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.0002)
	for round := 0; round < 3; round++ {
		if pr.Halted() {
			t.Fatalf("ended before round %d", round)
		}
		if _, err := c.OptimizeRound(0.0004); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		pr.RunFor(0.0003)
		if err := pr.Fault(); err != nil {
			t.Fatalf("fault after round %d: %v", round, err)
		}
	}
	if _, err := c.Revert(); err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum %d != %d", got, want)
	}
}
