package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/ptrace"
	"repro/internal/trace"
	"repro/internal/unwind"
)

// ReplaceStats reports one replacement round (Tables I and II inputs).
type ReplaceStats struct {
	Version            int
	BytesInjected      uint64
	BytesCopied        uint64 // stack-live b_{i,i+1} copies
	BytesFreed         uint64 // dead code GC'd
	VTableSlotsPatched int
	CallSitesPatched   int
	TrampolinesWritten int
	FuncsOnStack       int
	StackFuncsCopied   int
	RetAddrsUpdated    int
	ThreadPCsUpdated   int
	OSRFramesMapped    int     // frames transferred in place between layouts
	OSRFallbacks       int     // frames considered for OSR that degrade to copies
	PauseSeconds       float64 // simulated stop-the-world time
	HostSeconds        float64 // wall time of the controller's work
}

// Replace injects the optimized binary's code into the paused target and
// redirects code pointers to it (steps 3-6 of Figure 4a). It is also the
// continuous-optimization path: when an optimized version is already
// running, stack-live functions of the outgoing version are copied
// (b_{i,i+1}, §IV-C1), return addresses and thread PCs are rewritten, and
// the dead version is garbage-collected.
//
// Replace is transactional: every target mutation goes through a write
// journal (ptrace.Txn) and every controller-map mutation is covered by a
// snapshot. On any mid-stream error — or a pre-resume verifier failure —
// the journal replays its undos in reverse while the target is still
// paused and the controller restores its snapshot, so the round either
// commits fully or leaves target and controller bit-identical to their
// pre-call state (docs/robustness.md).
func (c *Controller) Replace(nb *obj.Binary) (*ReplaceStats, error) {
	return c.replace(nb)
}

// Revert restores execution to C0 (§VI-C4: "we can always revert to C0
// code"): all patched pointers go back to original addresses and every
// optimized region becomes dead and is collected. Stack-live optimized
// functions are copied so in-flight invocations drain safely.
//
// At version 0 there is nothing to revert and Revert is a cheap no-op: no
// pause is charged, no version is consumed, and no report is appended.
func (c *Controller) Revert() (*ReplaceStats, error) {
	if c.version == 0 {
		return &ReplaceStats{}, nil
	}
	return c.replace(nil)
}

func (c *Controller) replace(nb *obj.Binary) (*ReplaceStats, error) {
	start := time.Now()
	newVersion := c.version + 1
	sp := c.startSpan("replace", trace.Int("version", newVersion))

	if newVersion > 1 {
		if c.opts.NoFuncPtrHook {
			err := fmt.Errorf("core: continuous optimization requires the function-pointer hook (§IV-C2)")
			sp.End(err)
			return nil, err
		}
		if c.opts.NoPatchVTables {
			err := fmt.Errorf("core: continuous optimization requires v-table patching")
			sp.End(err)
			return nil, err
		}
	}

	snap := c.snapshot()
	tr := ptrace.Attach(c.p)
	tr.FaultHook = c.wrapFaultHook(sp)
	defer tr.Detach()
	x := ptrace.Begin(tr)

	stats, nr, newCur, dead, osr, err := c.applyReplace(x, nb, newVersion)
	verifyFailed := false
	if err == nil {
		vsp := c.tracer.Start(sp, "verify")
		verr := c.verifyResumeSafety(x, nr, newCur, dead, nb, osr)
		vsp.End(verr)
		if verr != nil {
			err = verr
			verifyFailed = true
		}
	}
	if err != nil {
		// The failing tracee op is the last one begun: the op counter
		// advances before the operation runs, and the rollback below
		// bypasses the counter, so OpCount()-1 still names it.
		sp.EventErr(trace.EvRollback, err, trace.Int("op_index", tr.OpCount()-1))
		if verifyFailed {
			sp.EventErr(trace.EvVerifyFail, err)
		}
		rbErr := x.Rollback()
		c.restore(snap)
		if m := c.opts.Metrics; m != nil {
			m.Counter("core_txn_rollbacks_total").Inc()
			if verifyFailed {
				m.Counter("core_verify_failures_total").Inc()
			}
		}
		if rbErr != nil {
			err = fmt.Errorf("core: replace failed (%v) and rollback failed: %w", err, rbErr)
			sp.End(err)
			return nil, err
		}
		// Round boundary: the rollback must land on the identical controller
		// state in record and replay, or the session diverged.
		if cerr := c.opts.Replay.Checkpoint("replace_rollback", c.StateHash(),
			trace.Int("version", c.version)); cerr != nil {
			sp.End(cerr)
			return nil, cerr
		}
		sp.End(err)
		return nil, err
	}
	x.Commit()

	// Commit the controller: resolver, current binary, preferred entries,
	// version. The map mutations (jtables, patched, tramps, fptrMap) were
	// applied in-stream and stand.
	c.res = *nr
	c.curBin = nb
	c.curOf = newCur
	c.osrFromC0 = osr.fromC0
	c.version = newVersion

	// Charge the stop-the-world pause to the target. Parallel patching
	// spreads the scattered pointer writes over several workers (§IV-D).
	// The verifier runs on the controller's side of the ptrace channel, so
	// the transaction machinery adds nothing to the pause model.
	sites := stats.CallSitesPatched + stats.TrampolinesWritten
	slots := stats.VTableSlotsPatched
	frames := stats.RetAddrsUpdated + stats.ThreadPCsUpdated + stats.OSRFramesMapped
	if c.opts.ParallelPatch {
		sites = (sites + patchParallelism - 1) / patchParallelism
		slots = (slots + patchParallelism - 1) / patchParallelism
		frames = (frames + patchParallelism - 1) / patchParallelism
	}
	stats.PauseSeconds = c.opts.Pause.seconds(
		stats.BytesInjected+stats.BytesCopied, sites, slots, frames)
	if !c.opts.NoChargePause {
		for _, t := range c.p.Threads {
			t.Core.AddStall(stats.PauseSeconds*c.p.Cfg.ClockHz, cpu.BucketBackEnd)
		}
	}
	stats.HostSeconds = time.Since(start).Seconds()
	c.Reports = append(c.Reports, *stats)
	c.observeStage("replace", stats.HostSeconds)
	if m := c.opts.Metrics; m != nil {
		m.Histogram("core_pause_seconds").Observe(stats.PauseSeconds)
		m.Counter("core_bytes_injected_total").Add(float64(stats.BytesInjected))
		m.Counter("core_bytes_freed_total").Add(float64(stats.BytesFreed))
		if nb == nil {
			m.Counter("core_reverts_total").Inc()
		}
		if stats.OSRFramesMapped > 0 {
			m.CounterVec("core_osr_frames_total", "outcome").With("mapped").Add(float64(stats.OSRFramesMapped))
		}
		if stats.OSRFallbacks > 0 {
			m.CounterVec("core_osr_frames_total", "outcome").With("fallback").Add(float64(stats.OSRFallbacks))
		}
	}
	if nb == nil {
		sp.Event(trace.EvRevert, trace.Int("bytes_freed", int(stats.BytesFreed)))
	}
	sp.SetAttrs(
		trace.Int("bytes_injected", int(stats.BytesInjected)),
		trace.Int("vtable_slots", stats.VTableSlotsPatched),
		trace.Int("call_sites", stats.CallSitesPatched),
		trace.Int("osr_frames_mapped", stats.OSRFramesMapped),
		trace.Float("pause_seconds", stats.PauseSeconds),
	)
	// Round boundary: a committed replacement (or revert) must produce the
	// identical controller state hash under replay.
	if cerr := c.opts.Replay.Checkpoint("replace_commit", c.StateHash(),
		trace.Int("version", c.version)); cerr != nil {
		sp.End(cerr)
		return nil, cerr
	}
	sp.End(nil)
	return stats, nil
}

// wrapFaultHook interposes on the configured fault hook so every fault it
// injects is journaled (with the tracee-local op index) before the
// transaction unwinds.
func (c *Controller) wrapFaultHook(sp *trace.Span) func(op string, n int) error {
	hook := c.opts.FaultHook
	if hook == nil {
		return nil
	}
	return func(op string, n int) error {
		err := hook(op, n)
		if err != nil {
			sp.EventErr(trace.EvFaultInjected, err,
				trace.String("op", op), trace.Int("op_index", n))
		}
		return err
	}
}

// applyReplace performs every mutation of one replacement round through
// the journaled transaction — injection, stack-live copies, pointer
// patching, trampolines, and dead-version GC — and returns the stats,
// the new resolver, the new preferred-entry map, and the address ranges
// garbage-collected this round (for the verifier's dead-pointer check).
// It may mutate the controller's maps freely: the caller holds a snapshot.
func (c *Controller) applyReplace(x *ptrace.Txn, nb *obj.Binary, newVersion int) (*ReplaceStats, *resolver, map[string]uint64, [][2]uint64, *osrOutcome, error) {
	stats := &ReplaceStats{Version: newVersion}
	fail := func(err error) (*ReplaceStats, *resolver, map[string]uint64, [][2]uint64, *osrOutcome, error) {
		return nil, nil, nil, nil, nil, err
	}

	inputBin := c.orig
	if c.curBin != nil {
		inputBin = c.curBin
	}

	// New preferred entry per function: the optimized location when the
	// round moved it, the C0 location otherwise (functions that fell cold
	// fall back to C0 — which always exists, design principle #1).
	newCur := make(map[string]uint64, len(c.c0Entry))
	for name, e := range c.c0Entry {
		newCur[name] = e
	}
	if nb != nil {
		for _, oldE := range sortedKeys(nb.AddrMap) {
			newE := nb.AddrMap[oldE]
			f := inputBin.FuncAt(oldE)
			if f == nil {
				return fail(fmt.Errorf("core: AddrMap key %#x is not a function entry of %s", oldE, inputBin.Name))
			}
			newCur[f.Name] = newE
			c.fptrMap[newE] = c.c0Entry[f.Name]
		}
	}

	// Inject the new code (bulk copy through the in-process agent, §V).
	// The agent mmaps the version's region first, so the tracee's mapped-
	// address checks hold for the fresh range. With AllowJumpTables, the
	// version's relocated jump tables ride along and are registered so
	// stack-live copies can relocate them again.
	sections := []string{obj.SecText, obj.SecColdText}
	if c.opts.AllowJumpTables {
		sections = append(sections, obj.SecROData)
		if nb != nil {
			for _, jt := range nb.JumpTables {
				c.jtables[jt.Addr] = append([]uint64(nil), jt.Targets...)
			}
		}
	}
	if nb != nil {
		if err := x.Map(textBase(newVersion), versionStride); err != nil {
			return fail(err)
		}
		for _, secName := range sections {
			if sec := nb.Section(secName); sec != nil {
				if err := x.AgentWrite(sec.Addr, sec.Data); err != nil {
					return fail(err)
				}
				stats.BytesInjected += uint64(len(sec.Data))
			}
		}
	}

	// Crawl all stacks (libunwind analog).
	stacks, err := unwind.AllStacks(x)
	if err != nil {
		return fail(err)
	}

	// The frame-pointer chain misses one return address when a thread is
	// paused between a CALL and the callee's ENTER (PC exactly at a
	// function entry) or between LEAVE and RET (frame already popped). In
	// both states the hidden return address sits at [SP]; synthesize a
	// frame for it so liveness classification and relocation see it.
	for tid := range stacks {
		regs, err := x.GetRegs(tid)
		if err != nil {
			return fail(err)
		}
		ra, slot, err := c.hiddenRetAddr(x, tid, regs)
		if err != nil {
			return fail(err)
		}
		if slot != 0 {
			if _, ok := c.res.at(ra); ok {
				stacks[tid] = append(stacks[tid], unwind.Frame{PC: ra, RetSlot: slot})
			}
		}
	}

	// On-stack replacement: transfer frames parked at mappable points
	// directly between layouts. Runs before liveness classification so an
	// instance whose every frame was transferred needs no stack-live copy.
	osr, osrMapped, err := c.applyOSR(x, nb, stacks, stats)
	if err != nil {
		return fail(err)
	}

	liveC0 := make(map[string]bool)
	liveOldEntry := make(map[uint64]bool) // live instance entries, outgoing version
	for tid, frames := range stacks {
		for fi, fr := range frames {
			if osrMapped[[2]int{tid, fi}] {
				continue // already transferred off the outgoing code
			}
			s, ok := c.res.at(fr.PC)
			if !ok {
				return fail(fmt.Errorf("core: stack address %#x in unknown code", fr.PC))
			}
			if s.version == 0 {
				liveC0[s.name] = true
			} else {
				liveOldEntry[s.entry] = true
			}
		}
	}
	stats.FuncsOnStack = len(liveC0) + len(liveOldEntry)

	// Copy stack-live function instances of the outgoing version so their
	// frames stay executable after GC (the b_{i,i+1} mechanism, §IV-C1).
	// Each instance gets its own copy window; all of its spans (hot plus
	// exiled cold) shift by one per-instance delta, so every PC-relative
	// branch inside it — including hot→cold — stays valid. Direct calls
	// are retargeted to the new preferred entries.
	type copied struct {
		oldLo, oldHi uint64
		delta        int64
		name         string
		entry        uint64
	}
	var copies []copied
	if c.version >= 1 && len(liveOldEntry) > 0 {
		if err := x.Map(copiesArea(newVersion), copiesAreaStride); err != nil {
			return fail(err)
		}
		entries := make([]uint64, 0, len(liveOldEntry))
		for e := range liveOldEntry {
			entries = append(entries, e)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
		for k, entry := range entries {
			var spans []span
			for _, s := range c.res.versionSpans(c.version) {
				if s.entry == entry {
					spans = append(spans, s)
				}
			}
			if len(spans) == 0 {
				return fail(fmt.Errorf("core: live instance %#x has no spans", entry))
			}
			minLo, maxHi := spans[0].lo, spans[0].hi
			for _, s := range spans {
				if s.lo < minLo {
					minLo = s.lo
				}
				if s.hi > maxHi {
					maxHi = s.hi
				}
			}
			if maxHi-minLo > copyWindow {
				return fail(fmt.Errorf("core: instance %#x spans %#x bytes, exceeds copy window", entry, maxHi-minLo))
			}
			winBase := copiesArea(newVersion) + uint64(k)*copyWindow
			delta := int64(winBase) - int64(minLo)
			// Jump tables the instance references are relocated into the
			// upper half of its copy window (their old homes are about to
			// be garbage-collected with the outgoing version).
			tableCursor := winBase + copyWindow/2
			for _, s := range spans {
				buf := make([]byte, s.hi-s.lo)
				if err := x.ReadMem(s.lo, buf); err != nil {
					return fail(err)
				}
				if err := c.retargetCopy(x, buf, s.lo, delta, newCur, spans, &tableCursor); err != nil {
					return fail(err)
				}
				if err := x.AgentWrite(uint64(int64(s.lo)+delta), buf); err != nil {
					return fail(err)
				}
				stats.BytesCopied += uint64(len(buf))
				copies = append(copies, copied{oldLo: s.lo, oldHi: s.hi, delta: delta, name: s.name, entry: s.entry})
			}
		}
		stats.StackFuncsCopied = len(liveOldEntry)
	}
	relocate := func(addr uint64) (uint64, bool) {
		for _, cp := range copies {
			if addr >= cp.oldLo && addr < cp.oldHi {
				return uint64(int64(addr) + cp.delta), true
			}
		}
		return addr, false
	}

	// Rewrite return addresses and thread PCs that point into copied code.
	for tid, frames := range stacks {
		regs, err := x.GetRegs(tid)
		if err != nil {
			return fail(err)
		}
		if pc, ok := relocate(regs.PC); ok && !osrMapped[[2]int{tid, 0}] {
			regs.PC = pc
			if err := x.SetRegs(tid, regs); err != nil {
				return fail(err)
			}
			stats.ThreadPCsUpdated++
		}
		for fi, fr := range frames {
			if fr.RetSlot == 0 || osrMapped[[2]int{tid, fi}] {
				continue
			}
			if ra, ok := relocate(fr.PC); ok {
				if err := x.PokeData(fr.RetSlot, ra); err != nil {
					return fail(err)
				}
				stats.RetAddrsUpdated++
			}
		}
	}

	// Patch v-table slots to the new preferred entries.
	if !c.opts.NoPatchVTables {
		for _, vt := range c.orig.VTables {
			for i := range vt.Slots {
				slotAddr := vt.Addr + uint64(i)*8
				v, err := x.PeekData(slotAddr)
				if err != nil {
					return fail(err)
				}
				s, ok := c.res.at(v)
				if !ok {
					return fail(fmt.Errorf("core: vtable %s slot %d holds unknown code address %#x", vt.Name, i, v))
				}
				want := newCur[s.name]
				if v != want {
					if err := x.PokeData(slotAddr, want); err != nil {
						return fail(err)
					}
					stats.VTableSlotsPatched++
				}
			}
		}
	}

	// Patch direct calls in C0. Default: stack-live functions only (§IV-B
	// found patching all functions does not help — they are cold — and
	// slows replacement; PatchAllCalls reproduces that ablation).
	// Previously patched sites are always re-patched so no reference to
	// the outgoing version survives.
	patchSet := make(map[string]bool)
	switch {
	case c.opts.PatchAllCalls:
		for name := range c.callSites {
			patchSet[name] = true
		}
	case !c.opts.NoPatchStackCalls || newVersion > 1:
		for name := range liveC0 {
			patchSet[name] = true
		}
	}
	patchSite := func(site callSite) error {
		want := newCur[site.callee]
		imm := int64(want) - int64(site.addr+isa.InstBytes)
		cur, err := x.PeekData(site.addr + 8)
		if err != nil {
			return err
		}
		if int64(cur) == imm {
			return nil
		}
		if err := x.PokeData(site.addr+8, uint64(imm)); err != nil {
			return err
		}
		stats.CallSitesPatched++
		return nil
	}
	for _, name := range sortedKeys(patchSet) {
		for _, site := range c.callSites[name] {
			if err := patchSite(site); err != nil {
				return fail(err)
			}
			c.patched[site.addr] = site.callee
		}
	}
	for _, addr := range sortedKeys(c.patched) {
		if err := patchSite(callSite{addr: addr, callee: c.patched[addr]}); err != nil {
			return fail(err)
		}
	}

	// Trampoline mode: every moved function's C0 entry bounces to the new
	// version; functions falling back to C0 get their original entry
	// instruction restored. Done while still paused, so no thread ever
	// observes a torn instruction.
	if c.opts.Trampolines {
		for _, name := range sortedKeys(c.c0Entry) {
			c0 := c.c0Entry[name]
			target := newCur[name]
			switch {
			case target != c0:
				jmp := isa.Inst{Op: isa.JMP, Imm: int64(target) - int64(c0+isa.InstBytes)}
				var buf [isa.InstBytes]byte
				jmp.Encode(buf[:])
				if err := x.AgentWrite(c0, buf[:]); err != nil {
					return fail(err)
				}
				c.tramps[name] = true
				stats.TrampolinesWritten++
			case c.tramps[name]:
				orig, err := c.orig.Bytes(c0, isa.InstBytes)
				if err != nil {
					return fail(err)
				}
				if err := x.AgentWrite(c0, orig); err != nil {
					return fail(err)
				}
				delete(c.tramps, name)
				stats.TrampolinesWritten++
			}
		}
	}

	// Garbage-collect the outgoing version (§IV-C): its code is now
	// unreachable — v-tables, C0 calls, return addresses and PCs all point
	// at C_{i+1}, copies, or C0, and function pointers were never allowed
	// to reference it. The whole text region and copies area of the dead
	// version are unmapped through the transaction (so a rollback can
	// resurrect them), returning the pages to the system.
	var dead [][2]uint64
	if c.version >= 1 {
		for _, s := range c.res.versionSpans(c.version) {
			stats.BytesFreed += s.hi - s.lo
		}
		gcText := textBase(c.version)
		gcCopies := copiesArea(c.version)
		if err := x.Unmap(gcText, versionStride); err != nil {
			return fail(err)
		}
		if err := x.Unmap(gcCopies, copiesAreaStride); err != nil {
			return fail(err)
		}
		dead = [][2]uint64{
			{gcText, gcText + versionStride},
			{gcCopies, gcCopies + copiesAreaStride},
		}
		// Drop jump-table registrations that lived in the dead regions.
		for addr := range c.jtables {
			if (addr >= gcText && addr < gcText+versionStride) ||
				(addr >= gcCopies && addr < gcCopies+copiesAreaStride) {
				delete(c.jtables, addr)
			}
		}
	}

	// Rebuild the resolver: C0 + incoming version + copies.
	nr := &resolver{}
	for _, s := range c.res.versionSpans(0) {
		nr.spans = append(nr.spans, s)
	}
	if nb != nil {
		for _, f := range nb.Funcs {
			if !f.Optimized {
				continue // pinned functions alias C0 spans
			}
			nr.add(f.Addr, f.Addr+f.Size, f.Name, f.Addr, newVersion)
			if f.ColdSize > 0 {
				nr.add(f.ColdAddr, f.ColdAddr+f.ColdSize, f.Name, f.Addr, newVersion)
			}
		}
	}
	for _, cp := range copies {
		nr.add(uint64(int64(cp.oldLo)+cp.delta), uint64(int64(cp.oldHi)+cp.delta),
			cp.name, uint64(int64(cp.entry)+cp.delta), newVersion)
	}
	nr.sort()
	return stats, nr, newCur, dead, osr, nil
}

// hiddenRetAddr detects the two pause states whose return address the
// frame-pointer chain cannot see (PC exactly at a function entry, or at a
// RET with the frame already popped) and reads it from [SP]. It returns
// slot 0 when the thread has no hidden return address — including the
// empty-stack case where SP still sits at the thread's stack top and
// there is nothing to read.
func (c *Controller) hiddenRetAddr(x *ptrace.Txn, tid int, regs ptrace.Regs) (ra, slot uint64, err error) {
	sp := regs.GPR[isa.SP]
	if sp+8 > c.p.Threads[tid].StackHi {
		return 0, 0, nil
	}
	var instBuf [isa.InstBytes]byte
	if err := x.ReadMem(regs.PC, instBuf[:]); err != nil {
		return 0, 0, err
	}
	in, derr := isa.Decode(instBuf[:])
	atEntry := false
	if s, ok := c.res.at(regs.PC); ok && regs.PC == s.entry {
		atEntry = true
	}
	if !atEntry && (derr != nil || in.Op != isa.RET) {
		return 0, 0, nil
	}
	ra, err = x.PeekData(sp)
	if err != nil {
		return 0, 0, err
	}
	return ra, sp, nil
}

// retargetCopy rewrites the position-dependent operands of a copied code
// blob (read from oldBase, about to be written at oldBase+delta):
//
//   - direct-call immediates are re-aimed at the callee's new preferred
//     entry (intra-function PC-relative branches need no fixup because
//     every span of the instance moves by the same delta);
//   - jump tables are relocated into the instance's copy window (their
//     old homes are garbage-collected with the outgoing version), with
//     every entry shifted by the instance delta.
func (c *Controller) retargetCopy(x *ptrace.Txn, buf []byte, oldBase uint64, delta int64, newCur map[string]uint64, spans []span, tableCursor *uint64) error {
	inSpans := func(addr uint64) bool {
		for _, s := range spans {
			if addr >= s.lo && addr < s.hi {
				return true
			}
		}
		return false
	}
	n := len(buf) / isa.InstBytes
	for i := 0; i < n; i++ {
		in, err := isa.Decode(buf[i*isa.InstBytes:])
		if err != nil {
			return fmt.Errorf("core: decoding copied code at %#x: %w", oldBase+uint64(i)*isa.InstBytes, err)
		}
		oldPC := oldBase + uint64(i)*isa.InstBytes
		switch in.Op {
		case isa.CALL:
			tgt := uint64(int64(oldPC) + isa.InstBytes + in.Imm)
			s, ok := c.res.at(tgt)
			if !ok {
				return fmt.Errorf("core: copied call at %#x targets unknown code %#x", oldPC, tgt)
			}
			want, ok := newCur[s.name]
			if !ok {
				return fmt.Errorf("core: no entry for function %s", s.name)
			}
			newPC := uint64(int64(oldPC) + delta)
			in.Imm = int64(want) - int64(newPC+isa.InstBytes)
			in.Encode(buf[i*isa.InstBytes:])
		case isa.JTBL:
			oldT := uint64(in.Imm)
			entries, ok := c.jtables[oldT]
			if !ok {
				return fmt.Errorf("core: copied jump table %#x at %#x is not registered", oldT, oldPC)
			}
			shifted := make([]uint64, len(entries))
			raw := make([]byte, len(entries)*8)
			for j, e := range entries {
				if !inSpans(e) {
					return fmt.Errorf("core: jump table %#x entry %#x escapes the copied instance", oldT, e)
				}
				shifted[j] = uint64(int64(e) + delta)
				for b := 0; b < 8; b++ {
					raw[j*8+b] = byte(shifted[j] >> (8 * b))
				}
			}
			newT := *tableCursor
			*tableCursor += uint64(len(raw)+63) &^ 63
			if err := x.AgentWrite(newT, raw); err != nil {
				return err
			}
			c.jtables[newT] = shifted
			in.Imm = int64(newT)
			in.Encode(buf[i*isa.InstBytes:])
		}
	}
	return nil
}
