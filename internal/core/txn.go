package core

import (
	"sort"

	"repro/internal/obj"
)

// ctlSnapshot is a deep copy of every piece of controller state a
// replacement round mutates. The target-side mutations are journaled by
// ptrace.Txn; this covers the controller side, so a failed round restores
// *both* halves and the controller stays reusable — the state-leak class
// where jump tables and fptrMap entries registered before a failed
// injection permanently polluted the maps.
type ctlSnapshot struct {
	res       resolver
	version   int
	curBin    *obj.Binary
	curOf     map[string]uint64
	patched   map[uint64]string
	fptrMap   map[uint64]uint64
	tramps    map[string]bool
	jtables   map[uint64][]uint64
	osrFromC0 map[string]map[uint64]uint64
	reports   int
}

func copyMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// snapshot captures the controller state before a replacement round.
func (c *Controller) snapshot() ctlSnapshot {
	jt := make(map[uint64][]uint64, len(c.jtables))
	for a, t := range c.jtables {
		jt[a] = append([]uint64(nil), t...)
	}
	osr := make(map[string]map[uint64]uint64, len(c.osrFromC0))
	for name, m := range c.osrFromC0 {
		osr[name] = copyMap(m)
	}
	return ctlSnapshot{
		res:       resolver{spans: append([]span(nil), c.res.spans...)},
		version:   c.version,
		curBin:    c.curBin,
		curOf:     copyMap(c.curOf),
		patched:   copyMap(c.patched),
		fptrMap:   copyMap(c.fptrMap),
		tramps:    copyMap(c.tramps),
		jtables:   jt,
		osrFromC0: osr,
		reports:   len(c.Reports),
	}
}

// restore rolls the controller back to a snapshot. The function-pointer
// hook closure reads c.fptrMap through the receiver, so reassigning the
// map restores its behavior too.
func (c *Controller) restore(s ctlSnapshot) {
	c.res = s.res
	c.version = s.version
	c.curBin = s.curBin
	c.curOf = s.curOf
	c.patched = s.patched
	c.fptrMap = s.fptrMap
	c.tramps = s.tramps
	c.jtables = s.jtables
	c.osrFromC0 = s.osrFromC0
	c.Reports = c.Reports[:s.reports]
}

// StateHash digests every observable piece of controller state — version,
// resolver spans, preferred entries, patched sites, trampolines, the
// function-pointer map, registered jump tables, and the report count —
// into one order-independent fingerprint. The fault-sweep harness
// compares it across a failed Replace to prove the rollback left the
// controller bit-identical.
func (c *Controller) StateHash() uint64 {
	h := uint64(fnvOffset)
	word := func(v uint64) { h = hashWord(h, v) }
	word(uint64(c.version))
	word(uint64(len(c.Reports)))
	for _, s := range c.res.spans { // already sorted by lo
		word(s.lo)
		word(s.hi)
		word(s.entry)
		word(uint64(s.version))
		h = hashString(h, s.name)
	}
	for _, name := range sortedKeys(c.curOf) {
		h = hashString(h, name)
		word(c.curOf[name])
	}
	for _, addr := range sortedKeys(c.patched) {
		word(addr)
		h = hashString(h, c.patched[addr])
	}
	for _, name := range sortedKeys(c.tramps) {
		h = hashString(h, name)
	}
	for _, from := range sortedKeys(c.fptrMap) {
		word(from)
		word(c.fptrMap[from])
	}
	for _, addr := range sortedKeys(c.jtables) {
		word(addr)
		for _, e := range c.jtables[addr] {
			word(e)
		}
	}
	for _, name := range sortedKeys(c.osrFromC0) {
		h = hashString(h, name)
		m := c.osrFromC0[name]
		word(uint64(len(m)))
		for _, k := range sortedKeys(m) {
			word(k)
			word(m[k])
		}
	}
	return h
}

// FNV-1a parameters for StateHash.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func hashWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return hashWord(h, uint64(len(s)))
}

// sortedKeys returns a map's keys in ascending order, so every journal,
// patch, and verification pass issues its tracee operations in a
// deterministic sequence (the fault sweep indexes into that sequence).
func sortedKeys[K interface {
	~uint64 | ~string
}, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
