package core

import (
	"testing"

	"repro/internal/trace"
)

// TestOptimizeRoundEmitsStageSpans asserts one full round produces the
// complete span tree: a round span with profile, perf2bolt, bolt, and
// replace children, the verify span nested under replace, and stage
// attributes populated from the pipeline's actual results.
func TestOptimizeRoundEmitsStageSpans(t *testing.T) {
	bin, _ := genProgram(t, 31, 1<<30)
	tr := trace.New(trace.Options{})
	pr, c := newController(t, bin, Options{Tracer: tr, Service: "svc-a"})
	pr.RunFor(0.0003)

	if _, err := c.OptimizeRound(0.0005); err != nil {
		t.Fatal(err)
	}

	roots := tr.Tree("svc-a")
	if len(roots) != 1 {
		t.Fatalf("got %d root spans, want 1 round span", len(roots))
	}
	round := roots[0]
	if round.Name != "round" || round.Round != 1 || round.Open || round.Err != "" {
		t.Fatalf("round span = %+v", round)
	}

	stages := map[string]*trace.SpanNode{}
	for _, ch := range round.Children {
		stages[ch.Name] = ch
	}
	for _, want := range []string{"profile", "perf2bolt", "bolt", "replace"} {
		sp, ok := stages[want]
		if !ok {
			t.Errorf("round span has no %q child (children: %v)", want, names(round.Children))
			continue
		}
		if sp.Open || sp.Err != "" {
			t.Errorf("stage %q: open=%v err=%q", want, sp.Open, sp.Err)
		}
		if sp.Service != "svc-a" || sp.Round != 1 {
			t.Errorf("stage %q: service=%q round=%d", want, sp.Service, sp.Round)
		}
	}

	// Stage attributes come from the stage results.
	if v, ok := stages["profile"].Attrs.Int("samples"); !ok || v <= 0 {
		t.Errorf("profile span samples attr = %v, %v", v, ok)
	}
	if v, ok := stages["perf2bolt"].Attrs.Int("profiled_funcs"); !ok || v <= 0 {
		t.Errorf("perf2bolt span profiled_funcs attr = %v, %v", v, ok)
	}
	if v, ok := stages["bolt"].Attrs.Int("funcs_reordered"); !ok || v <= 0 {
		t.Errorf("bolt span funcs_reordered attr = %v, %v", v, ok)
	}
	if v, ok := stages["replace"].Attrs.Int("bytes_injected"); !ok || v <= 0 {
		t.Errorf("replace span bytes_injected attr = %v, %v", v, ok)
	}

	// Verify runs as a child of replace.
	rep := stages["replace"]
	if rep == nil {
		t.Fatal("no replace span")
	}
	var verify *trace.SpanNode
	for _, ch := range rep.Children {
		if ch.Name == "verify" {
			verify = ch
		}
	}
	if verify == nil {
		t.Fatalf("replace span has no verify child (children: %v)", names(rep.Children))
	}
	if verify.Open || verify.Err != "" {
		t.Errorf("verify span: open=%v err=%q", verify.Open, verify.Err)
	}

	// Journal holds the paired start/end events in monotonic order.
	j := tr.Journal()
	starts := j.ByType(trace.EvSpanStart)
	ends := j.ByType(trace.EvSpanEnd)
	if len(starts) != 6 || len(ends) != 6 { // round + 4 stages + verify
		t.Errorf("journal has %d starts / %d ends, want 6/6", len(starts), len(ends))
	}
}

// TestRevertEmitsRevertEvent pins the revert journal event and the
// error-free replace span on the revert path.
func TestRevertEmitsRevertEvent(t *testing.T) {
	bin, _ := genProgram(t, 32, 1<<30)
	tr := trace.New(trace.Options{})
	pr, c := newController(t, bin, Options{Tracer: tr, Service: "svc-r"})
	pr.RunFor(0.0003)
	if _, err := c.OptimizeRound(0.0005); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Revert(); err != nil {
		t.Fatal(err)
	}
	evs := tr.Journal().ByType(trace.EvRevert)
	if len(evs) != 1 {
		t.Fatalf("journal has %d revert events, want 1", len(evs))
	}
	if evs[0].Service != "svc-r" || evs[0].Stage != "replace" {
		t.Errorf("revert event = %+v", evs[0])
	}
	if v, ok := evs[0].Attrs.Int("bytes_freed"); !ok || v <= 0 {
		t.Errorf("revert event bytes_freed = %v, %v", v, ok)
	}
}

func names(nodes []*trace.SpanNode) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.Name)
	}
	return out
}
