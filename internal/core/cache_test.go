package core

import (
	"sync"
	"testing"

	"repro/internal/layout"
)

// recordingCache is the injectable-fake shape satellite consumers
// (diffcheck, experiments) use: a plain Get/Put/Stats implementation
// with operation counts, no single-flight machinery.
type recordingCache struct {
	mu      sync.Mutex
	entries map[layout.Key]*layout.Entry
	gets    int
	puts    int
	hits    int
}

func (r *recordingCache) Get(k layout.Key) (*layout.Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gets++
	e, ok := r.entries[k]
	if ok {
		r.hits++
	}
	return e, ok
}

func (r *recordingCache) Put(k layout.Key, e *layout.Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = make(map[layout.Key]*layout.Entry)
	}
	r.entries[k] = e
	r.puts++
}

func (r *recordingCache) Stats() layout.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return layout.Stats{
		Hits:    uint64(r.hits),
		Misses:  uint64(r.gets - r.hits),
		Entries: len(r.entries),
	}
}

// TestLayoutCacheInjection: a caller-supplied cache behind the small
// layout.Cache interface short-circuits BuildOptimized on the second
// identical controller, and the cached layout preserves program
// semantics end to end.
func TestLayoutCacheInjection(t *testing.T) {
	bin, outAddr := genProgram(t, 11, 60000)
	want := plainRun(t, bin, outAddr)

	fake := &recordingCache{}
	optimize := func() (*Controller, uint64, bool) {
		pr, c := newController(t, bin, Options{LayoutCache: fake})
		pr.RunFor(0.0003)
		rr, err := c.OptimizeRound(0.0005)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Build.LayoutKey == "" {
			t.Error("cached build carried no layout key")
		}
		pr.RunUntilHalt(0)
		if err := pr.Fault(); err != nil {
			t.Fatal(err)
		}
		return c, pr.Mem.ReadWord(outAddr), rr.Build.CacheHit
	}

	_, out1, hit1 := optimize()
	if hit1 {
		t.Error("first controller hit an empty cache")
	}
	if out1 != want {
		t.Errorf("miss path output %#x, want %#x", out1, want)
	}
	if fake.puts != 1 {
		t.Fatalf("puts = %d, want 1 after the computing miss", fake.puts)
	}

	_, out2, hit2 := optimize()
	if !hit2 {
		t.Error("identical second controller missed the cache")
	}
	if out2 != want {
		t.Errorf("hit path output %#x, want %#x", out2, want)
	}
	if fake.puts != 1 {
		t.Errorf("puts = %d after the hit, want still 1 (no recompute)", fake.puts)
	}
	if fake.hits < 1 {
		t.Errorf("fake recorded %d hits, want ≥ 1", fake.hits)
	}
}
