package core

import (
	"testing"

	"repro/internal/bolt"
	"repro/internal/perf"
)

// TestTrampolinesPreserveSemantics: the redirect-all mode (§IV-B) must
// not change program results, including across continuous rounds where
// trampolines are retargeted or removed.
func TestTrampolinesPreserveSemantics(t *testing.T) {
	bin, outAddr := genProgram(t, 81, 150000)
	want := plainRun(t, bin, outAddr)

	pr, c := newController(t, bin, Options{
		Trampolines: true,
		Bolt:        bolt.Options{AllowReBolt: true},
	})
	pr.RunFor(0.0002)
	for round := 0; round < 3; round++ {
		if pr.Halted() {
			t.Fatalf("ended before round %d", round)
		}
		rr, err := c.OptimizeRound(0.0004)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		rs := rr.Replace
		if rs.TrampolinesWritten == 0 {
			t.Errorf("round %d: no trampolines written", round)
		}
		pr.RunFor(0.0003)
		if err := pr.Fault(); err != nil {
			t.Fatalf("fault after round %d: %v", round, err)
		}
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum with trampolines %d != %d", got, want)
	}
}

// TestTrampolinesSteerWithoutVTables: with v-table patching disabled,
// trampolines alone must still pull execution into the optimized code —
// every call through a stale C0 pointer bounces at the function entry.
func TestTrampolinesSteerWithoutVTables(t *testing.T) {
	bin, _ := genProgram(t, 82, 1<<30)
	pr, c := newController(t, bin, Options{Trampolines: true, NoPatchVTables: true, NoPatchStackCalls: true})
	pr.RunFor(0.0003)
	if _, err := c.OptimizeRound(0.0005); err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.0003)
	raw := perf.Record(pr, 0.0005, perf.RecorderOptions{PeriodCycles: 2000})
	var inOpt, total int
	for _, s := range raw.Samples {
		for _, r := range s.Records {
			total++
			if r.From >= firstTextBase {
				inOpt++
			}
		}
	}
	if total == 0 {
		t.Fatal("no samples")
	}
	if frac := float64(inOpt) / float64(total); frac < 0.5 {
		t.Errorf("only %.1f%% of branches in optimized code despite trampolines", frac*100)
	}
}

// TestTrampolinesRemovedOnRevert: after Revert, C0 entries hold their
// original bytes again and execution completes correctly.
func TestTrampolinesRemovedOnRevert(t *testing.T) {
	bin, outAddr := genProgram(t, 83, 120000)
	want := plainRun(t, bin, outAddr)

	pr, c := newController(t, bin, Options{Trampolines: true})
	pr.RunFor(0.0002)
	if _, err := c.OptimizeRound(0.0004); err != nil {
		t.Fatal(err)
	}
	// Some entry was trampolined.
	trampolined := false
	for name, c0 := range c.c0Entry {
		if c.curOf[name] != c0 {
			got := make([]byte, 16)
			pr.Mem.Read(c0, got)
			orig, _ := bin.Bytes(c0, 16)
			if string(got) != string(orig) {
				trampolined = true
			}
		}
	}
	if !trampolined {
		t.Fatal("no entry was trampolined")
	}
	if _, err := c.Revert(); err != nil {
		t.Fatal(err)
	}
	// All entries restored.
	for _, c0 := range c.c0Entry {
		got := make([]byte, 16)
		pr.Mem.Read(c0, got)
		orig, _ := bin.Bytes(c0, 16)
		if string(got) != string(orig) {
			t.Fatalf("entry %#x not restored after revert", c0)
		}
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum after revert %d != %d", got, want)
	}
}

// TestParallelPatchShortensPause: the §IV-D optimization reduces modeled
// replacement time without changing behavior.
func TestParallelPatchShortensPause(t *testing.T) {
	bin, outAddr := genProgram(t, 84, 120000)
	want := plainRun(t, bin, outAddr)

	run := func(opts Options) (float64, uint64) {
		pr, c := newController(t, bin, opts)
		pr.RunFor(0.0002)
		rr, err := c.OptimizeRound(0.0004)
		if err != nil {
			t.Fatal(err)
		}
		rs := rr.Replace
		pr.RunUntilHalt(0)
		if err := pr.Fault(); err != nil {
			t.Fatal(err)
		}
		return rs.PauseSeconds, pr.Mem.ReadWord(outAddr)
	}
	serialPause, out1 := run(Options{PatchAllCalls: true})
	parallelPause, out2 := run(Options{PatchAllCalls: true, ParallelPatch: true})
	if out1 != want || out2 != want {
		t.Errorf("outputs %d/%d != %d", out1, out2, want)
	}
	if parallelPause >= serialPause {
		t.Errorf("parallel patching pause %.4f >= serial %.4f", parallelPause, serialPause)
	}
}
