package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bolt"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/progtest"
)

// genProgram builds a deterministic random program and assembles it.
func genProgram(t *testing.T, seed int64, iters int64) (*obj.Binary, uint64) {
	t.Helper()
	prog, outAddr, err := progtest.Generate(progtest.Options{
		Funcs:     12,
		MainIters: iters,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return bin, outAddr
}

// plainRun executes the binary to completion without OCOLOS.
func plainRun(t *testing.T, bin *obj.Binary, outAddr uint64) uint64 {
	t.Helper()
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	return pr.Mem.ReadWord(outAddr)
}

func newController(t *testing.T, bin *obj.Binary, opts Options) (*proc.Process, *Controller) {
	t.Helper()
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Perf.PeriodCycles == 0 {
		opts.Perf.PeriodCycles = 2000
	}
	c, err := New(pr, bin, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pr, c
}

func TestSingleRoundPreservesSemantics(t *testing.T) {
	bin, outAddr := genProgram(t, 11, 60000)
	want := plainRun(t, bin, outAddr)

	pr, c := newController(t, bin, Options{})
	pr.RunFor(0.0003) // let it warm up
	if pr.Halted() {
		t.Fatal("program finished before replacement")
	}
	rr, err := c.OptimizeRound(0.0005)
	if err != nil {
		t.Fatal(err)
	}
	rs, bs := rr.Replace, rr.Build
	if rs.BytesInjected == 0 {
		t.Error("nothing injected")
	}
	if bs.Result.FuncsReordered == 0 {
		t.Error("no functions reordered")
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum after replacement %d != %d", got, want)
	}
	if rs.PauseSeconds <= 0 {
		t.Error("pause time not modeled")
	}
}

func TestExecutionSteersIntoC1(t *testing.T) {
	bin, outAddr := genProgram(t, 12, 1<<30)
	_ = outAddr
	pr, c := newController(t, bin, Options{})
	pr.RunFor(0.0003)
	if _, err := c.OptimizeRound(0.0005); err != nil {
		t.Fatal(err)
	}
	// Sample where execution happens now.
	raw := perf.Record(pr, 0.0005, perf.RecorderOptions{PeriodCycles: 2000})
	var inC1, total int
	for _, s := range raw.Samples {
		for _, r := range s.Records {
			total++
			if r.From >= firstTextBase {
				inC1++
			}
		}
	}
	if total == 0 {
		t.Fatal("no samples after replacement")
	}
	if frac := float64(inC1) / float64(total); frac < 0.5 {
		t.Errorf("only %.1f%% of branches execute in optimized code", frac*100)
	}
}

func TestVTableSlotsPointIntoC1(t *testing.T) {
	bin, _ := genProgram(t, 13, 1<<30)
	pr, c := newController(t, bin, Options{})
	pr.RunFor(0.0003)
	rr, err := c.OptimizeRound(0.0005)
	if err != nil {
		t.Fatal(err)
	}
	rs := rr.Replace
	if len(bin.VTables) == 0 {
		t.Fatal("test program has no vtables")
	}
	patched := 0
	for _, vt := range bin.VTables {
		for i := range vt.Slots {
			v := pr.Mem.ReadWord(vt.Addr + uint64(i)*8)
			if v >= firstTextBase {
				patched++
			}
		}
	}
	if patched == 0 && rs.VTableSlotsPatched > 0 {
		t.Error("vtable slots reported patched but none point into C1")
	}
}

func TestContinuousOptimizationSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("continuous property test in -short mode")
	}
	for seed := int64(21); seed <= 26; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			bin, outAddr := genProgram(t, seed, 150000)
			want := plainRun(t, bin, outAddr)

			pr, c := newController(t, bin, Options{
				Bolt: bolt.Options{AllowReBolt: true},
			})
			pr.RunFor(0.0002)
			for round := 0; round < 3; round++ {
				if pr.Halted() {
					t.Fatalf("program ended before round %d", round)
				}
				if _, err := c.OptimizeRound(0.0004); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				pr.RunFor(0.0004)
				if err := pr.Fault(); err != nil {
					t.Fatalf("fault after round %d: %v", round, err)
				}
			}
			if c.Version() != 3 {
				t.Fatalf("version = %d, want 3", c.Version())
			}
			pr.RunUntilHalt(0)
			if err := pr.Fault(); err != nil {
				t.Fatal(err)
			}
			if got := pr.Mem.ReadWord(outAddr); got != want {
				t.Errorf("seed %d: checksum after 3 rounds %d != %d", seed, got, want)
			}
		})
	}
}

func TestGarbageCollectionBoundsMemory(t *testing.T) {
	bin, _ := genProgram(t, 31, 1<<30)
	pr, c := newController(t, bin, Options{Bolt: bolt.Options{AllowReBolt: true}})
	pr.RunFor(0.0002)

	if _, err := c.OptimizeRound(0.0004); err != nil {
		t.Fatal(err)
	}
	var freed uint64
	residents := []uint64{pr.Mem.ResidentBytes()}
	for round := 0; round < 5; round++ {
		pr.RunFor(0.0002)
		rr, err := c.OptimizeRound(0.0004)
		if err != nil {
			t.Fatal(err)
		}
		rs := rr.Replace
		freed += rs.BytesFreed
		residents = append(residents, pr.Mem.ResidentBytes())
	}
	if freed == 0 {
		t.Error("GC freed nothing across continuous rounds")
	}
	// Memory must plateau, not grow linearly with rounds: without GC each
	// round would leak a whole code version (tens of KiB); with GC the
	// resident set settles after the first couple of rounds (modulo a page
	// or two of stack-live copies).
	versionSize := residents[1] // includes one live optimized version
	last := residents[len(residents)-1]
	mid := residents[2]
	if last > mid+2*4096 {
		t.Errorf("resident still growing after settling: %v", residents)
	}
	if last > versionSize*3 {
		t.Errorf("resident %d is several versions deep (%v); GC ineffective", last, residents)
	}
	// The outgoing version's region is actually unmapped.
	if got := pr.Mem.LoadByte(textBase(1) + 64); got != 0 {
		t.Error("version-1 text still mapped after GC")
	}
}

func TestRevert(t *testing.T) {
	bin, outAddr := genProgram(t, 41, 150000)
	want := plainRun(t, bin, outAddr)

	pr, c := newController(t, bin, Options{Bolt: bolt.Options{AllowReBolt: true}})
	pr.RunFor(0.0002)
	if _, err := c.OptimizeRound(0.0004); err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.0003)
	rs, err := c.Revert()
	if err != nil {
		t.Fatal(err)
	}
	if rs.BytesInjected != 0 {
		t.Error("revert should inject nothing")
	}
	// Execution continues correctly back in C0.
	pr.RunFor(0.0005)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	raw := perf.Record(pr, 0.0004, perf.RecorderOptions{PeriodCycles: 2000})
	var inOpt, total int
	for _, s := range raw.Samples {
		for _, r := range s.Records {
			total++
			// Copies of stack-live functions may still drain; steady-state
			// execution should be overwhelmingly in C0.
			if r.From >= firstTextBase {
				inOpt++
			}
		}
	}
	if total > 0 && float64(inOpt)/float64(total) > 0.2 {
		t.Errorf("%.1f%% of branches still in optimized regions after revert", 100*float64(inOpt)/float64(total))
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum after revert %d != %d", got, want)
	}
}

func TestJumpTableBinaryRejected(t *testing.T) {
	p := build.NewProgram("jt")
	m := p.Func("main")
	m.MovI(isa.R1, 1)
	m.Switch(isa.R1, []func(){
		func() { m.Nop() },
		func() { m.Nop() },
	}, nil)
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(pr, bin, Options{}); err == nil {
		t.Error("binary with jump tables accepted (§IV-D requires -fno-jump-tables)")
	}
}

func TestAblationsSingleRound(t *testing.T) {
	for _, opts := range []Options{
		{NoPatchVTables: true},
		{NoPatchStackCalls: true},
		{PatchAllCalls: true},
		{NoFuncPtrHook: true},
	} {
		bin, outAddr := genProgram(t, 51, 80000)
		want := plainRun(t, bin, outAddr)
		pr, c := newController(t, bin, opts)
		pr.RunFor(0.0003)
		if _, err := c.OptimizeRound(0.0004); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		pr.RunUntilHalt(0)
		if err := pr.Fault(); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if got := pr.Mem.ReadWord(outAddr); got != want {
			t.Errorf("%+v: checksum %d != %d", opts, got, want)
		}
	}
}

func TestContinuousRequiresHookAndVTables(t *testing.T) {
	bin, _ := genProgram(t, 61, 1<<30)
	pr, c := newController(t, bin, Options{NoFuncPtrHook: true, Bolt: bolt.Options{AllowReBolt: true}})
	pr.RunFor(0.0002)
	if _, err := c.OptimizeRound(0.0004); err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.0002)
	if _, err := c.OptimizeRound(0.0004); err == nil {
		t.Error("second round without func-ptr hook should be refused")
	}
}

func TestReplaceStatsPopulated(t *testing.T) {
	bin, _ := genProgram(t, 71, 1<<30)
	pr, c := newController(t, bin, Options{})
	pr.RunFor(0.0003)
	rr, err := c.OptimizeRound(0.0005)
	if err != nil {
		t.Fatal(err)
	}
	rs, bs := rr.Replace, rr.Build
	if rs.FuncsOnStack == 0 {
		t.Error("no functions on stack at replacement time")
	}
	if rs.CallSitesPatched == 0 && rs.VTableSlotsPatched == 0 {
		t.Error("no pointers patched at all")
	}
	if bs.Perf2BoltSeconds <= 0 || bs.BoltSeconds <= 0 {
		t.Error("pipeline timings missing")
	}
	if len(c.Reports) != 1 {
		t.Error("report not recorded")
	}
	_ = pr
}

// procLoad is a test convenience.
func procLoad(bin *obj.Binary) (*proc.Process, error) {
	return proc.Load(bin, proc.Options{Threads: 1})
}

func TestShouldOptimizeGate(t *testing.T) {
	// A branchy, code-heavy program is worth optimizing...
	bin, _ := genProgram(t, 95, 1<<30)
	pr, c := newController(t, bin, Options{})
	pr.RunFor(0.0004)
	go1, td1 := c.ShouldOptimize(0.0004)
	if td1.FrontEnd <= 0 {
		t.Error("no TopDown data measured")
	}
	_ = go1 // small random programs may or may not pass the gate

	// ...a tight arithmetic loop is not.
	p2 := build.NewProgram("tight")
	m := p2.Func("main")
	m.Prologue(16)
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		m.MulI(isa.R2, isa.R2, 3)
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p2.SetEntry("main")
	p2.SetNoJumpTables(true)
	bin2, err := p2.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := proc.Load(bin2, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(pr2, bin2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr2.RunFor(0.0003)
	goAhead, td := c2.ShouldOptimize(0.0004)
	if goAhead {
		t.Errorf("tight loop classified as front-end bound: %v", td)
	}
}

// TestContinuousMultithreaded: several threads, several rounds — every
// thread's stack gets crawled, live instances copied, PCs rewritten, and
// all threads still compute the right checksum.
func TestContinuousMultithreaded(t *testing.T) {
	if testing.Short() {
		t.Skip("multithreaded continuous run in -short mode")
	}
	bin, outAddr := genProgram(t, 97, 120000)
	want := plainRun(t, bin, outAddr)

	pr, err := proc.Load(bin, proc.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(pr, bin, Options{Bolt: bolt.Options{AllowReBolt: true}})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.0002)
	for round := 0; round < 3; round++ {
		if pr.Halted() {
			t.Fatalf("ended before round %d", round)
		}
		rr, err := c.OptimizeRound(0.0004)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		rs := rr.Replace
		if round > 0 && rs.StackFuncsCopied == 0 {
			t.Logf("round %d: no stack-live copies (threads may all sit in C0)", round)
		}
		pr.RunFor(0.0004)
		if err := pr.Fault(); err != nil {
			t.Fatalf("fault after round %d: %v", round, err)
		}
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum %d != %d", got, want)
	}
	for _, th := range pr.Threads {
		if !th.Halted {
			t.Errorf("thread %d never finished", th.ID)
		}
	}
}
