package core

import (
	"fmt"
	"sort"
)

// span is one contiguous code range belonging to a specific instance of a
// function: its C0 body, the hot or cold part of an optimized version, or
// a stack-live copy made during continuous optimization.
type span struct {
	lo, hi  uint64
	name    string // canonical function name
	entry   uint64 // entry address of this instance
	version int    // 0 = C0, i = code injected at round i (copies included)
}

// resolver symbolizes addresses across every live code region of the
// target process. OCOLOS rebuilds it after each replacement round.
type resolver struct {
	spans []span // sorted by lo
}

func (r *resolver) add(lo, hi uint64, name string, entry uint64, version int) {
	if hi <= lo {
		return
	}
	r.spans = append(r.spans, span{lo: lo, hi: hi, name: name, entry: entry, version: version})
}

func (r *resolver) sort() {
	sort.Slice(r.spans, func(i, j int) bool { return r.spans[i].lo < r.spans[j].lo })
	for i := 1; i < len(r.spans); i++ {
		if r.spans[i].lo < r.spans[i-1].hi {
			panic(fmt.Sprintf("core: overlapping code spans %x-%x and %x-%x",
				r.spans[i-1].lo, r.spans[i-1].hi, r.spans[i].lo, r.spans[i].hi))
		}
	}
}

// at returns the span containing addr.
func (r *resolver) at(addr uint64) (span, bool) {
	i := sort.Search(len(r.spans), func(i int) bool { return r.spans[i].lo > addr })
	if i == 0 {
		return span{}, false
	}
	s := r.spans[i-1]
	if addr >= s.hi {
		return span{}, false
	}
	return s, true
}

// funcName resolves addr to the canonical name of the function whose code
// contains it.
func (r *resolver) funcName(addr uint64) (string, bool) {
	s, ok := r.at(addr)
	return s.name, ok
}

// spansOf returns every span belonging to the given function instance
// version (hot, cold, copies).
func (r *resolver) spansOf(name string, version int) []span {
	var out []span
	for _, s := range r.spans {
		if s.name == name && s.version == version {
			out = append(out, s)
		}
	}
	return out
}

// dropVersion removes all spans of the given version (after GC).
func (r *resolver) dropVersion(version int) {
	out := r.spans[:0]
	for _, s := range r.spans {
		if s.version != version {
			out = append(out, s)
		}
	}
	r.spans = out
}

// versionSpans returns all spans of a version.
func (r *resolver) versionSpans(version int) []span {
	var out []span
	for _, s := range r.spans {
		if s.version == version {
			out = append(out, s)
		}
	}
	return out
}
