package core

import (
	"repro/internal/bolt"
	"repro/internal/obj"
	"repro/internal/ptrace"
	"repro/internal/unwind"
)

// On-stack replacement (OSR) transfers a thread frame parked inside an
// outgoing code version directly to the equivalent point of the target
// layout, instead of letting the frame drain through a stack-live copy.
// BOLT only reorders basic blocks — it never changes the instructions or
// the frame layout — so two layouts of one function are state-equivalent
// at every block boundary the optimizer registered as mappable: the
// function entry, loop headers (backward-branch targets), call sites, and
// return points (the instruction after a CALL). The "à la carte" OSR map
// of those points is produced per round by internal/bolt
// (obj.Binary.OSRMap); everything here is offset arithmetic against it.
//
// Frames parked anywhere else are simply left to the pre-existing
// copy-based migration — fallback is a counted outcome, never an error.

// osrRewrite records one on-stack-replaced frame: where the frame's
// stored PC lives (slot 0 = the thread's live PC register), what it held,
// and the offset arithmetic that justified the rewrite. The pre-resume
// verifier re-derives every field against the OSR maps before the target
// is allowed to run.
type osrRewrite struct {
	tid, frame int
	slot       uint64 // return-address slot; 0 → thread PC (registers)
	oldPC      uint64
	newPC      uint64
	name       string
	entry      uint64 // input-binary entry keying the OSR-map lookup (forward only)
	oldOff     uint64 // unified offset of oldPC in the frame's layout
	viaOff     uint64 // input-layout offset fed into the incoming OSR map (forward only)
	newOff     uint64 // unified offset of newPC in the target layout
	toC0       bool   // target is the immortal C0 image (revert / fell-cold)
}

// osrOutcome bundles what the OSR stage hands back to replace(): the
// rewrites performed (for the verifier) and the composed C0→new-layout
// relation, which becomes c.osrFromC0 if — and only if — the round
// commits. A rollback therefore never has to undo it.
type osrOutcome struct {
	rewrites []osrRewrite
	fromC0   map[string]map[uint64]uint64
}

// osrAddrAt maps a unified offset back to an address in f's layout (the
// inverse of bolt.UnifiedOff): offsets past the hot size live in the
// exiled cold fragment.
func osrAddrAt(f *obj.Func, off uint64) uint64 {
	if off < f.Size {
		return f.Addr + off
	}
	return f.ColdAddr + (off - f.Size)
}

// composeFromC0 computes the C0-offset → incoming-layout-offset OSR
// relation that describes the round being applied: nb's per-round map
// composed onto the live relation (identity for functions currently at
// C0 — round one, or functions that were cold until now). A revert
// returns the empty relation: after it, the current layout *is* C0.
// Points whose image is not mappable in the new layout drop out of the
// relation — a frame parked there in some future round falls back to a
// copy, which is always sound.
func (c *Controller) composeFromC0(nb *obj.Binary) map[string]map[uint64]uint64 {
	out := make(map[string]map[uint64]uint64)
	if nb == nil {
		return out
	}
	inputBin := c.orig
	if c.curBin != nil {
		inputBin = c.curBin
	}
	for oldE, pts := range nb.OSRMap {
		f := inputBin.FuncAt(oldE)
		if f == nil {
			continue
		}
		m := make(map[uint64]uint64, len(pts))
		if prev := c.osrFromC0[f.Name]; prev != nil {
			for c0Off, curOff := range prev {
				if p, ok := nb.OSRPointAt(oldE, curOff); ok {
					m[c0Off] = p.NewOff
				}
			}
		} else {
			for _, p := range pts {
				m[p.OldOff] = p.NewOff
			}
		}
		out[f.Name] = m
	}
	return out
}

// invertFromC0 finds the smallest C0 offset whose image under the live
// relation is curOff. The relation need not be injective (a call site
// and a loop header can collapse onto one block start), but every
// preimage of a mappable point is state-equivalent to it by
// construction, so any choice is sound and the smallest is
// deterministic.
func (c *Controller) invertFromC0(name string, curOff uint64) (uint64, bool) {
	var best uint64
	found := false
	for c0Off, v := range c.osrFromC0[name] {
		if v == curOff && (!found || c0Off < best) {
			best, found = c0Off, true
		}
	}
	return best, found
}

// osrDecide classifies one parked frame. It returns (nil, false) when the
// frame is outside OSR's scope this round (code that is not changing),
// (nil, true) when the frame was considered but sits at no mappable point
// (it degrades to copy-based migration), and a rewrite when the frame can
// be transferred in place.
func (c *Controller) osrDecide(nb *obj.Binary, fr unwind.Frame) (*osrRewrite, bool) {
	s, ok := c.res.at(fr.PC)
	if !ok {
		return nil, false // the liveness pass reports unknown code addresses
	}
	inputBin := c.orig
	if c.curBin != nil {
		inputBin = c.curBin
	}
	if s.version == 0 {
		// A frame on the immortal C0 image is never at risk, but if its
		// function moves this round we transfer it anyway: function
		// pointers always aim at C0, so without OSR a thread parked in a
		// hot loop here would keep executing the stale layout until the
		// loop returned.
		if nb == nil {
			return nil, false
		}
		inf := inputBin.FuncByName(s.name)
		if inf == nil {
			return nil, false
		}
		if _, moved := nb.AddrMap[inf.Addr]; !moved {
			return nil, false
		}
		c0f := c.orig.FuncByName(s.name)
		if c0f == nil || fr.PC < c0f.Addr || fr.PC >= c0f.Addr+c0f.Size {
			return nil, false
		}
		oldOff := fr.PC - c0f.Addr
		// The incoming OSR map is keyed by input-layout offsets; pivot the
		// C0 offset through the live relation first (identity while the
		// input layout is C0 itself).
		viaOff := oldOff
		if prev := c.osrFromC0[s.name]; prev != nil {
			v, ok := prev[oldOff]
			if !ok {
				return nil, true
			}
			viaOff = v
		}
		p, ok := nb.OSRPointAt(inf.Addr, viaOff)
		if !ok {
			return nil, true
		}
		nf := nb.FuncByName(s.name)
		if nf == nil {
			return nil, true
		}
		return &osrRewrite{oldPC: fr.PC, newPC: osrAddrAt(nf, p.NewOff), name: s.name,
			entry: inf.Addr, oldOff: oldOff, viaOff: viaOff, newOff: p.NewOff}, true
	}
	if s.version != c.version {
		return nil, false
	}
	inf := inputBin.FuncAt(s.entry)
	if inf == nil {
		// A stack-live copy from an earlier round: its ad-hoc layout is in
		// no OSR map, so it keeps draining through the copy mechanism.
		return nil, true
	}
	oldOff, ok := bolt.UnifiedOff(inf, fr.PC)
	if !ok {
		return nil, true
	}
	if nb != nil {
		if _, moved := nb.AddrMap[s.entry]; moved {
			p, ok := nb.OSRPointAt(s.entry, oldOff)
			if !ok {
				return nil, true
			}
			nf := nb.FuncByName(s.name)
			if nf == nil {
				return nil, true
			}
			return &osrRewrite{oldPC: fr.PC, newPC: osrAddrAt(nf, p.NewOff), name: s.name,
				entry: s.entry, oldOff: oldOff, viaOff: oldOff, newOff: p.NewOff}, true
		}
	}
	// Revert, or the function fell cold this round: its preferred entry
	// goes back to C0, so transfer the frame there by inverting the live
	// C0→current relation.
	c0Off, ok := c.invertFromC0(s.name, oldOff)
	if !ok {
		return nil, true
	}
	c0f := c.orig.FuncByName(s.name)
	if c0f == nil || c0Off >= c0f.Size {
		return nil, true
	}
	return &osrRewrite{oldPC: fr.PC, newPC: c0f.Addr + c0Off, name: s.name,
		oldOff: oldOff, newOff: c0Off, toC0: true}, true
}

// applyOSR is the on-stack-replacement stage of a replacement round. It
// runs while the target is paused, after the incoming code is injected
// and the stacks (including synthesized hidden frames) are crawled, but
// before liveness classification — an instance whose every frame was
// transferred needs no stack-live copy at all. Each rewrite goes through
// the journaled transaction (SetRegs for a thread's live PC, PokeData for
// a return-address slot), so a rollback restores every frame
// bit-identically; each decision — mapped or fallback — is journaled by
// an active replay session in deterministic stack order. The returned set
// marks rewritten frames by (tid, frame index) so the later passes leave
// them alone.
func (c *Controller) applyOSR(x *ptrace.Txn, nb *obj.Binary, stacks [][]unwind.Frame, stats *ReplaceStats) (*osrOutcome, map[[2]int]bool, error) {
	out := &osrOutcome{fromC0: c.composeFromC0(nb)}
	mapped := make(map[[2]int]bool)
	if c.opts.NoOSR {
		return out, mapped, nil
	}
	for tid, frames := range stacks {
		for fi, fr := range frames {
			rw, considered := c.osrDecide(nb, fr)
			if !considered {
				continue
			}
			outcome := "fallback"
			var newPC uint64
			if rw != nil {
				outcome = "mapped"
				newPC = rw.newPC
			}
			if err := c.opts.Replay.OSREvent(tid, fi, fr.PC, outcome, newPC); err != nil {
				return nil, nil, err
			}
			if rw == nil {
				stats.OSRFallbacks++
				continue
			}
			rw.tid, rw.frame = tid, fi
			if fr.RetSlot == 0 {
				regs, err := x.GetRegs(tid)
				if err != nil {
					return nil, nil, err
				}
				regs.PC = rw.newPC
				if err := x.SetRegs(tid, regs); err != nil {
					return nil, nil, err
				}
			} else {
				rw.slot = fr.RetSlot
				if err := x.PokeData(fr.RetSlot, rw.newPC); err != nil {
					return nil, nil, err
				}
			}
			stats.OSRFramesMapped++
			mapped[[2]int{tid, fi}] = true
			out.rewrites = append(out.rewrites, *rw)
		}
	}
	return out, mapped, nil
}
