// Package core implements OCOLOS itself: online profile-guided code layout
// optimization of a running process (§IV, §V of the paper).
//
// A Controller attaches to a live simulated process and, per optimization
// round: samples LBR profiles with perf (step 1), runs perf2bolt + the
// BOLT-style optimizer in the background to produce an optimized binary
// (step 2), then pauses the target (step 3), injects the new code C_{i+1}
// at a fresh address range (step 4), updates code pointers — v-table
// slots, direct calls in stack-live C0 functions, return addresses and
// thread PCs — (step 5), and resumes (step 6).
//
// Design principles from §IV are honored literally:
//
//  1. C0 instruction addresses are never moved; C0 bytes are only patched
//     in place (direct-call immediates).
//  2. C1 runs in the common case: v-tables and stack-live C0 call sites
//     steer execution into the optimized code.
//  3. Fixed costs only: the function-pointer-creation hook (the
//     wrapFuncPtrCreation analog, §IV-C2) is the one standing
//     instrumentation, and it enforces the invariant that function
//     pointers always refer to C0, which is what makes continuous
//     optimization (C_i → C_{i+1} with dead-code GC) safe.
package core

import (
	"fmt"
	"time"

	"repro/internal/bolt"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Region layout for injected code versions. Each version's new text goes
// at textBase(v); stack-live copies made while replacing version v-1 go
// into a dedicated, generously spaced copies area: each copied function
// instance gets its own fixed-width window so that the hot and cold spans
// of one instance shift by a single delta (keeping every PC-relative
// branch valid) without ever colliding with later versions' regions.
const (
	versionStride    = 0x1000_0000
	firstTextBase    = 0x2000_0000
	roOffset         = 0x0C00_0000 // per-version jump-table area
	copiesAreaBase   = 0x1000_0000_0000
	copiesAreaStride = 0x0010_0000_0000 // per version
	copyWindow       = 0x1000_0000      // per copied instance
)

// PauseModel converts replacement work into simulated stop-the-world time
// (§VI-C2): a few MiB of scattered single-threaded writes.
type PauseModel struct {
	BaseSeconds          float64
	SecondsPerMiB        float64
	SecondsPerCallSite   float64
	SecondsPerVTableSlot float64
	SecondsPerFrame      float64
}

func (m *PauseModel) defaults() {
	if m.BaseSeconds == 0 {
		m.BaseSeconds = 2e-3
	}
	if m.SecondsPerMiB == 0 {
		m.SecondsPerMiB = 0.022
	}
	if m.SecondsPerCallSite == 0 {
		m.SecondsPerCallSite = 8e-6
	}
	if m.SecondsPerVTableSlot == 0 {
		m.SecondsPerVTableSlot = 1.5e-6
	}
	if m.SecondsPerFrame == 0 {
		m.SecondsPerFrame = 2e-5
	}
}

// seconds computes the simulated pause for a replacement.
func (m PauseModel) seconds(bytes uint64, sites, slots, frames int) float64 {
	return m.BaseSeconds +
		m.SecondsPerMiB*float64(bytes)/(1<<20) +
		m.SecondsPerCallSite*float64(sites) +
		m.SecondsPerVTableSlot*float64(slots) +
		m.SecondsPerFrame*float64(frames)
}

// Options configures a controller.
type Options struct {
	Perf  perf.RecorderOptions
	Bolt  bolt.Options // TextBase is managed per round by the controller
	Pause PauseModel

	// Ablation switches (§IV-B discussion).
	NoPatchVTables    bool // leave v-tables pointing at C0
	NoPatchStackCalls bool // do not patch direct calls in stack-live C0 funcs
	PatchAllCalls     bool // patch direct calls in *all* C0 functions
	NoFuncPtrHook     bool // skip wrapFuncPtrCreation (single-round only)

	// Trampolines redirects *all* invocations of moved functions: the
	// first instruction of each moved function's C0 body is overwritten
	// with a jump to its optimized version (§IV-B's security/debugging
	// mode — "via trampoline instructions at the start of C0 functions").
	// Instruction addresses are still preserved; only future entries
	// bounce. Trampolines are rewritten each round and removed when a
	// function falls back to C0 (and on Revert).
	Trampolines bool

	// AllowJumpTables lifts the -fno-jump-tables requirement (§IV-D calls
	// the restriction "not fundamental ... with a little extra support
	// from BOLT"): the optimizer emits each version's jump tables into
	// that version's own region and OCOLOS injects them alongside the
	// code, so C0's tables are never touched and the new code reads its
	// own relocated tables.
	AllowJumpTables bool

	// NoOSR disables on-stack replacement of frames parked mid-function:
	// every live frame of the outgoing version drains through copy-based
	// migration (the pre-OSR behavior). Ablation and benchmark switch.
	NoOSR bool

	// ParallelPatch models parallelized pointer patching (§IV-D: "if
	// OCOLOS updated v-tables in parallel with patching direct calls that
	// should reduce the end-to-end replacement time"): the scattered-write
	// components of the pause are divided by the parallelism factor.
	ParallelPatch bool

	// ChargePause adds the modeled stop-the-world time to the target's
	// cores so throughput/latency measurements include it (default on;
	// tests that only check semantics can disable it).
	NoChargePause bool

	// Metrics, when non-nil, receives the controller's operational
	// metrics: rounds, per-stage host latencies, pause seconds, bytes
	// injected/freed, and per-stage error counts. The fleet manager
	// shares one registry across every controller it owns.
	Metrics *telemetry.Registry

	// Tracer, when non-nil, receives a hierarchical span per pipeline
	// stage (profile, perf2bolt, bolt, replace, verify) plus journal
	// events for rollbacks, verify failures, reverts, and injected
	// faults. Stage spans parent under the current round span
	// (StartRound/EndRound) when one is open, else under the root span
	// installed with SetTraceRoot.
	Tracer *trace.Tracer

	// Service labels this controller's spans and journal events when the
	// controller creates root-level spans itself (no SetTraceRoot); the
	// fleet manager instead installs a per-service root span that carries
	// the name.
	Service string

	// FaultHook, when non-nil, is installed on every tracee the controller
	// attaches during Replace: it runs before each debugger operation and
	// can fail it (see ptrace.Tracee.FaultHook). The fault-sweep harness
	// uses it to abort a replacement at every possible point and assert
	// the transactional rollback restores the target exactly.
	FaultHook func(op string, n int) error

	// Replay, when active, records or replays the controller's
	// nondeterminism sources: perf sampling deadlines are routed through
	// the session, FaultHook decisions are journaled (and journal-fed on
	// replay), and every replace commit/rollback emits a StateHash
	// checkpoint. See internal/replay and docs/replay.md.
	Replay *replay.Session

	// Clock supplies the controller's host-time reads (stage-latency
	// windows); nil means the host's real clock. When Replay is active
	// the controller wraps it in the session's journaling clock, so
	// wall-clock-dependent windows (Profile's start instant) land in the
	// journal and replay identically instead of re-reading host time.
	Clock replay.Clock

	// LayoutCache, when non-nil, short-circuits BuildOptimized: the
	// (binary, quantized profile, optimizer options) fingerprint is
	// looked up first and only a miss runs perf2bolt + BOLT, with
	// single-flight coalescing when the cache supports it. The fleet
	// manager shares one cache across every controller it owns so one
	// service's layout is reused fleet-wide ("optimize once, deploy
	// everywhere", §V); tests inject recording fakes through the same
	// seam. Cache decisions are journaled by an active Replay session.
	LayoutCache layout.Cache
}

// patchParallelism is the modeled fan-out of ParallelPatch.
const patchParallelism = 4

// callSite is a pre-parsed direct call in C0 (§IV: OCOLOS parses the
// original binary offline to shorten the stop-the-world window).
type callSite struct {
	addr   uint64 // address of the CALL instruction
	callee string
}

// Controller drives online optimization of one process.
type Controller struct {
	p    *proc.Process
	orig *obj.Binary
	opts Options

	res       resolver
	version   int                   // current optimized version; 0 = none
	curBin    *obj.Binary           // binary of the current version
	c0Entry   map[string]uint64     // name → C0 entry
	curOf     map[string]uint64     // name → preferred entry right now
	callSites map[string][]callSite // C0 call sites by function
	patched   map[uint64]string     // patched C0 site → callee name
	fptrMap   map[uint64]uint64     // optimized entry → C0 entry
	tramps    map[string]bool       // functions with a live C0 trampoline
	jtables   map[uint64][]uint64   // live relocated jump tables by address

	// osrFromC0 is the live OSR relation of the current layout: for every
	// function currently moved off C0, the C0 unified offset → current-
	// layout unified offset map of its mappable points, composed across
	// rounds. It is what lets a frame migrate between *any* two layouts by
	// pivoting through the immortal C0 image (fell-cold and Revert paths).
	osrFromC0 map[string]map[uint64]uint64

	tracer *trace.Tracer
	troot  *trace.Span // root span stage spans parent under (may be nil)
	tround *trace.Span // current round span, between StartRound and EndRound

	// clock is Options.Clock (or the wall), session-wrapped when a
	// replay session is active.
	clock replay.Clock
	// src, when attached, serves Profile from streamed windows instead
	// of a one-shot pull (AttachProfileSource).
	src profile.Source

	// Reports accumulates one entry per replacement round.
	Reports []ReplaceStats
}

// New attaches a controller to a running process. The binary must be the
// one the process was loaded from and must have been compiled with the
// -fno-jump-tables analog (§IV-D); the function-pointer hook is installed
// immediately so the C0 invariant holds for every pointer the program
// ever creates.
func New(p *proc.Process, orig *obj.Binary, opts Options) (*Controller, error) {
	if !orig.NoJumpTables && !opts.AllowJumpTables {
		return nil, fmt.Errorf("core: target binary %s has jump tables; OCOLOS requires -fno-jump-tables (§IV-D) unless AllowJumpTables is set", orig.Name)
	}
	if orig.Bolted {
		return nil, fmt.Errorf("core: target binary %s is already bolted", orig.Name)
	}
	opts.Pause.defaults()
	if opts.Clock == nil {
		opts.Clock = replay.Wall{}
	}
	if opts.Replay.Active() {
		// Route the controller's nondeterminism through the session: fault
		// decisions (journaled when firing, journal-fed on replay), perf
		// sampling deadlines (always journaled — they are what makes two
		// profiles of the same window differ), and the clock behind the
		// stage-latency windows (Profile's start instant used to be a bare
		// time.Now() in the record path, so window timing replayed from
		// host time instead of the journal).
		opts.FaultHook = opts.Replay.FaultHook(opts.FaultHook)
		opts.Perf.NextDeadline = opts.Replay.PerfDeadline(opts.Perf.DeadlineFunc())
		opts.Clock = opts.Replay.Clock(opts.Clock)
	}
	c := &Controller{
		p:         p,
		orig:      orig,
		opts:      opts,
		c0Entry:   make(map[string]uint64, len(orig.Funcs)),
		curOf:     make(map[string]uint64, len(orig.Funcs)),
		callSites: make(map[string][]callSite, len(orig.Funcs)),
		patched:   make(map[uint64]string),
		fptrMap:   make(map[uint64]uint64),
		tramps:    make(map[string]bool),
		jtables:   make(map[uint64][]uint64),
		osrFromC0: make(map[string]map[uint64]uint64),
		tracer:    opts.Tracer,
		clock:     opts.Clock,
	}
	for _, f := range orig.Funcs {
		c.c0Entry[f.Name] = f.Addr
		c.curOf[f.Name] = f.Addr
		c.res.add(f.Addr, f.Addr+f.Size, f.Name, f.Addr, 0)
	}
	c.res.sort()
	if err := c.parseCallSites(); err != nil {
		return nil, err
	}
	if !opts.NoFuncPtrHook {
		c.p.SetFuncPtrHook(func(v uint64) uint64 {
			if c0, ok := c.fptrMap[v]; ok {
				return c0
			}
			return v
		})
	}
	return c, nil
}

// parseCallSites decodes every C0 function, verifies it is unwindable,
// and records its direct calls.
func (c *Controller) parseCallSites() error {
	for _, f := range c.orig.Funcs {
		raw, err := c.orig.Bytes(f.Addr, int(f.Size))
		if err != nil {
			return err
		}
		insts, err := isa.DecodeAll(raw)
		if err != nil {
			return fmt.Errorf("core: decoding %s: %w", f.Name, err)
		}
		// Unwindability ABI: every function must establish a frame first
		// (the -fno-omit-frame-pointer analog); OCOLOS's stack crawling
		// depends on it the way the real system depends on libunwind
		// having usable unwind info.
		if len(insts) == 0 || insts[0].Op != isa.ENTER {
			return fmt.Errorf("core: function %s does not start with ENTER; target must keep frame pointers", f.Name)
		}
		for i, in := range insts {
			if in.Op != isa.CALL {
				continue
			}
			pc := f.Addr + uint64(i)*isa.InstBytes
			tgt := uint64(int64(pc) + isa.InstBytes + in.Imm)
			callee := c.orig.FuncAt(tgt)
			if callee == nil {
				return fmt.Errorf("core: %s: call at %#x targets non-entry %#x", f.Name, pc, tgt)
			}
			c.callSites[f.Name] = append(c.callSites[f.Name], callSite{addr: pc, callee: callee.Name})
		}
	}
	return nil
}

// Version returns the current optimized code version (0 before the first
// replacement).
func (c *Controller) Version() int { return c.version }

// CurrentBinary returns the binary of the running optimized version (nil
// before the first replacement).
func (c *Controller) CurrentBinary() *obj.Binary { return c.curBin }

// Whereis resolves a code address against the controller's live code
// map: the function name and code version (0 = the immortal C0 image)
// of the span containing addr. Stack-live copies resolve to their
// function's name under the version that made the copy. It answers the
// observability question "which layout is this thread executing?"
// without exposing the resolver itself.
func (c *Controller) Whereis(addr uint64) (name string, version int, ok bool) {
	s, ok := c.res.at(addr)
	if !ok {
		return "", 0, false
	}
	return s.name, s.version, true
}

// SetTraceRoot installs the span under which the controller's round and
// stage spans nest — the fleet manager passes each service's root span
// here so one tracer can hold many controllers' trees.
func (c *Controller) SetTraceRoot(root *trace.Span) { c.troot = root }

// StartRound opens the span bracketing one optimization round. Stage
// spans started before the matching EndRound parent under it. Callers
// that drive the stages individually (the fleet lifecycle) bracket them
// explicitly; OptimizeRound does it internally.
func (c *Controller) StartRound(round int) *trace.Span {
	sp := c.tracer.Start(c.troot, "round", trace.Int("round", round))
	if c.troot == nil {
		sp.SetService(c.opts.Service)
	}
	sp.SetRound(round)
	c.tround = sp
	return sp
}

// EndRound closes the current round span with the round's outcome.
func (c *Controller) EndRound(err error) {
	c.tround.End(err)
	c.tround = nil
}

// startSpan opens a stage span under the current round (or root) span.
func (c *Controller) startSpan(name string, attrs ...trace.Attr) *trace.Span {
	parent := c.tround
	if parent == nil {
		parent = c.troot
	}
	sp := c.tracer.Start(parent, name, attrs...)
	if parent == nil {
		sp.SetService(c.opts.Service)
	}
	return sp
}

// textBase returns the injection base for version v ≥ 1.
func textBase(v int) uint64 { return firstTextBase + uint64(v-1)*versionStride }

// copiesArea returns the base of the copies area for version v.
func copiesArea(v int) uint64 { return copiesAreaBase + uint64(v)*copiesAreaStride }

// ShouldOptimize is the first profiling stage (§V, following DMon's
// TopDown methodology): a cheap counter measurement deciding whether the
// target suffers enough front-end stalls for code layout optimization to
// pay off. It returns the decision and the measured breakdown; Figure 9
// shows the same two features separating winners from losers.
func (c *Controller) ShouldOptimize(seconds float64) (bool, cpu.TopDown) {
	td := perf.MeasureTopDown(c.p, seconds).TopDown()
	return td.FrontEnd > 0.25 && td.Retiring < 0.5, td
}

// AttachProfileSource supersedes the pull-based Profile(seconds) shape:
// with a source attached (the fleet wires each service's streaming
// profile.Store here), Profile serves the source's trailing window
// instead of running a one-shot perf.Record pull. Pass nil to detach
// and return to pull profiling.
func (c *Controller) AttachProfileSource(src profile.Source) { c.src = src }

// ProfileSource returns the attached streaming source (nil when the
// controller profiles by pulling).
func (c *Controller) ProfileSource() profile.Source { return c.src }

// Profile produces the round's LBR profile (step 1 of Figure 4a): the
// trailing window of the attached streaming source when one is attached
// and has samples, else a one-shot pull of the given simulated duration
// (the pre-streaming behavior, and the fallback for a source whose
// window is empty — e.g. immediately after a replacement epoch).
func (c *Controller) Profile(seconds float64) *perf.RawProfile {
	sp := c.startSpan("profile")
	t0 := c.clock.Now()
	var raw *perf.RawProfile
	streamed := false
	if c.src != nil {
		raw = c.src.Window(seconds)
		streamed = len(raw.Samples) > 0
	}
	if !streamed {
		raw = perf.Record(c.p, seconds, c.opts.Perf)
	}
	c.observeStage("profile", c.clock.Now().Sub(t0).Seconds())
	sp.SetAttrs(append(raw.TraceAttrs(), trace.Bool("streamed", streamed))...)
	sp.End(nil)
	return raw
}

// BuildStats reports the background pipeline costs (Table II).
type BuildStats struct {
	Perf2BoltSeconds float64 // host time of profile conversion
	BoltSeconds      float64 // host time of the optimizer
	Result           *bolt.Result

	// CacheHit reports that the layout came out of Options.LayoutCache
	// (including the single-flight coalesced path) instead of a fresh
	// perf2bolt + BOLT run; LayoutKey is the content-addressed key of
	// the lookup ("" when no cache is configured).
	CacheHit  bool
	LayoutKey string
}

// SetLayoutCache swaps the layout cache consulted by BuildOptimized
// (nil disables caching). The fleet manager uses it to honor per-wave
// cache toggles; it must not be called while a round is in flight.
func (c *Controller) SetLayoutCache(lc layout.Cache) { c.opts.LayoutCache = lc }

// boltOptions derives the per-round optimizer options for the next
// version.
func (c *Controller) boltOptions() bolt.Options {
	bo := c.opts.Bolt
	bo.TextBase = textBase(c.version + 1)
	// Functions that fall cold this round are pinned back at C0: their
	// current homes (if in C_i) are garbage-collected during replacement.
	bo.PinBase = c.c0Entry
	if c.opts.AllowJumpTables {
		// Each version's jump tables live inside its own region (and are
		// collected with it); C0's tables are never overwritten.
		bo.ROBase = textBase(c.version+1) + roOffset
	}
	return bo
}

// BuildOptimized converts the raw profile and runs the optimizer against
// the *currently running* code version (step 2). For rounds ≥ 2 this
// requires Options.Bolt.AllowReBolt, reproducing the real BOLT's refusal
// and this implementation's extension past it (§IV-C).
//
// With a layout cache configured, the (binary, quantized-profile,
// options) fingerprint is consulted first: a hit reuses the cached
// layout — the expensive pipeline never runs — and concurrent misses on
// one key coalesce into a single BOLT run. The round's perf2bolt/bolt
// stage spans are emitted either way, carrying cache_hit so a trace
// shows which services paid for the layout and which reused it.
func (c *Controller) BuildOptimized(raw *perf.RawProfile) (*BuildStats, error) {
	input := c.orig
	if c.curBin != nil {
		input = c.curBin
	}
	bo := c.boltOptions()
	if c.opts.LayoutCache == nil {
		res, stats, err := c.runBoltPipeline(input, raw, bo, "")
		if err != nil {
			return nil, err
		}
		stats.Result = res
		return stats, nil
	}

	key := layout.KeyFor(input, raw, bo)
	var stats *BuildStats
	entry, outcome, err := layout.Do(c.opts.LayoutCache, key, func() (*layout.Entry, error) {
		res, st, err := c.runBoltPipeline(input, raw, bo, key.String())
		if err != nil {
			return nil, err
		}
		stats = st
		return &layout.Entry{Result: res}, nil
	})
	// The lookup outcome is part of the wave's decision sequence: journal
	// it (and on replay, verify the re-executed wave reaches the same
	// decision) before acting on it.
	if rerr := c.opts.Replay.CacheEvent(key.String(), string(outcome)); rerr != nil {
		return nil, rerr
	}
	if err != nil {
		return nil, err
	}
	if stats == nil {
		// Hit or coalesced: this controller never ran the pipeline. Emit
		// the stage spans so every round's trace keeps the same shape,
		// marked as cache reuse.
		sp := c.startSpan("perf2bolt", trace.Bool("cache_hit", true))
		sp.End(nil)
		bsp := c.startSpan("bolt", trace.Bool("cache_hit", true),
			trace.String("cache_key", key.String()))
		bsp.SetAttrs(entry.Result.TraceAttrs()...)
		bsp.End(nil)
		c.opts.Metrics.CounterVec("core_layout_cache_total", "outcome").
			With(string(outcome)).Inc()
		stats = &BuildStats{CacheHit: true}
	}
	stats.LayoutKey = key.String()
	// Hand out a private copy of the cached image: entries are shared
	// fleet-wide and must stay immutable, while the caller's binary is
	// injected into (and retained by) one specific process.
	res := *entry.Result
	res.Binary = entry.Result.Binary.Clone()
	stats.Result = &res
	return stats, nil
}

// runBoltPipeline is the uncached build: profile conversion plus the
// optimizer, bracketed by stage spans and latency metrics. It returns
// the result separately from the stats so the cache can store the one
// and the caller keep the other.
func (c *Controller) runBoltPipeline(input *obj.Binary, raw *perf.RawProfile, bo bolt.Options, cacheKey string) (*bolt.Result, *BuildStats, error) {
	sp := c.startSpan("perf2bolt")
	t0 := time.Now()
	prof, err := bolt.ConvertProfile(raw, input)
	if err != nil {
		sp.End(err)
		return nil, nil, err
	}
	sp.SetAttrs(prof.TraceAttrs()...)
	sp.End(nil)
	t1 := time.Now()
	attrs := []trace.Attr{}
	if cacheKey != "" {
		attrs = append(attrs, trace.Bool("cache_hit", false), trace.String("cache_key", cacheKey))
	}
	bsp := c.startSpan("bolt", attrs...)
	res, err := bolt.Optimize(input, prof, bo)
	if err != nil {
		bsp.End(err)
		return nil, nil, err
	}
	bsp.SetAttrs(res.TraceAttrs()...)
	bsp.End(nil)
	t2 := time.Now()
	c.observeStage("perf2bolt", t1.Sub(t0).Seconds())
	c.observeStage("bolt", t2.Sub(t1).Seconds())
	c.opts.Metrics.Counter("core_bolt_invocations_total").Inc()
	return res, &BuildStats{
		Perf2BoltSeconds: t1.Sub(t0).Seconds(),
		BoltSeconds:      t2.Sub(t1).Seconds(),
	}, nil
}

// RoundReport is the consolidated record of one optimization round
// (profile → build → replace), the unit Tables I/II and the fleet layer
// consume.
type RoundReport struct {
	Version      int           // code version now live (C_version)
	Build        *BuildStats   // background pipeline costs (Table II)
	Replace      *ReplaceStats // stop-the-world replacement stats (Table I)
	PauseSeconds float64       // simulated stop-the-world time of the round
	WallSeconds  float64       // host wall time of the whole round
}

// OptimizeRound performs a complete optimization round: profile for the
// given simulated duration, build the optimized binary against the
// running version, and replace the code of the running process
// (C_i → C_{i+1}). Per-stage host latencies, pause time, and byte counts
// are published to Options.Metrics when a registry is configured.
func (c *Controller) OptimizeRound(profileSeconds float64) (*RoundReport, error) {
	start := time.Now()
	c.StartRound(c.version + 1)
	raw := c.Profile(profileSeconds)
	build, err := c.BuildOptimized(raw)
	if err != nil {
		c.countError("build")
		c.EndRound(err)
		return nil, err
	}
	rs, err := c.Replace(build.Result.Binary)
	if err != nil {
		c.countError("replace")
		c.EndRound(err)
		return nil, err
	}
	c.EndRound(nil)
	if m := c.opts.Metrics; m != nil {
		m.Counter("core_rounds_total").Inc()
	}
	return &RoundReport{
		Version:      rs.Version,
		Build:        build,
		Replace:      rs,
		PauseSeconds: rs.PauseSeconds,
		WallSeconds:  time.Since(start).Seconds(),
	}, nil
}

// observeStage records one stage's host latency into the metrics
// registry, if any.
func (c *Controller) observeStage(stage string, seconds float64) {
	c.opts.Metrics.HistogramVec("core_stage_seconds", "stage").With(stage).Observe(seconds)
}

// countError bumps the per-stage error counter, if a registry is set.
func (c *Controller) countError(stage string) {
	c.opts.Metrics.CounterVec("core_errors_total", "stage").With(stage).Inc()
}
