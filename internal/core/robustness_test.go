package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bolt"
	"repro/internal/telemetry"
)

// targetFingerprint captures the target process state a rolled-back
// Replace must leave untouched: mapped ranges, their contents, page
// residency, and every thread's registers.
func targetFingerprint(t *testing.T, c *Controller) ([]byte, uint64) {
	t.Helper()
	var blob []byte
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			blob = append(blob, byte(v>>(8*i)))
		}
	}
	for _, r := range c.p.Mem.MappedRanges() {
		word(r[0])
		word(r[1])
		b := make([]byte, r[1]-r[0])
		c.p.Mem.Read(r[0], b)
		blob = append(blob, b...)
	}
	for _, th := range c.p.Threads {
		word(th.PC)
		for _, g := range th.Regs {
			word(g)
		}
		word(uint64(th.CmpVal))
	}
	h := uint64(fnvOffset)
	for _, b := range blob {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return nil, h ^ hashWord(fnvOffset, c.p.Mem.ResidentBytes())
}

// TestFailedReplaceLeavesControllerUnchanged is the regression test for
// the state-leak class the transaction fixes: a Replace that fails part
// way must leave Version(), the jump-table registry, the function-pointer
// map — the whole controller — and the target process bit-identical.
func TestFailedReplaceLeavesControllerUnchanged(t *testing.T) {
	bin, outAddr := genProgram(t, 301, 150000)
	want := plainRun(t, bin, outAddr)

	reg := telemetry.NewRegistry()
	pr, c := newController(t, bin, Options{
		Bolt:    bolt.Options{AllowReBolt: true},
		Metrics: reg,
	})
	pr.RunFor(0.0003)
	raw := c.Profile(0.0004)
	build, err := c.BuildOptimized(raw)
	if err != nil {
		t.Fatal(err)
	}

	// Scout run on an identical process/controller: the simulation is
	// deterministic, so the op count measured here matches the replacement
	// below op-for-op.
	nOps := func() int {
		pr2, c2 := newController(t, bin, Options{Bolt: bolt.Options{AllowReBolt: true}})
		pr2.RunFor(0.0003)
		b2, err := c2.BuildOptimized(c2.Profile(0.0004))
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		c2.opts.FaultHook = func(op string, i int) error { count++; return nil }
		if _, err := c2.Replace(b2.Result.Binary); err != nil {
			t.Fatal(err)
		}
		return count
	}()
	if nOps < 10 {
		t.Fatalf("replacement used only %d tracee ops", nOps)
	}

	boom := errors.New("injected")
	// Fail at a scatter of op indexes: early (before injection), in the
	// middle of patching, and at the very end (verifier reads).
	for _, failAt := range []int{0, 3, nOps / 4, nOps / 2, 3 * nOps / 4, nOps - 1} {
		ctlBefore := c.StateHash()
		verBefore := c.Version()
		jtBefore := len(c.jtables)
		fpBefore := len(c.fptrMap)
		_, memBefore := targetFingerprint(t, c)

		c.opts.FaultHook = func(op string, i int) error {
			if i == failAt {
				return boom
			}
			return nil
		}
		_, err := c.Replace(build.Result.Binary)
		c.opts.FaultHook = nil
		if !errors.Is(err, boom) {
			t.Fatalf("failAt=%d: fault not surfaced: %v", failAt, err)
		}
		if got := c.StateHash(); got != ctlBefore {
			t.Errorf("failAt=%d: controller state changed across failed Replace", failAt)
		}
		if c.Version() != verBefore {
			t.Errorf("failAt=%d: Version() = %d, want %d", failAt, c.Version(), verBefore)
		}
		if len(c.jtables) != jtBefore {
			t.Errorf("failAt=%d: jtables leaked: %d != %d", failAt, len(c.jtables), jtBefore)
		}
		if len(c.fptrMap) != fpBefore {
			t.Errorf("failAt=%d: fptrMap leaked: %d != %d", failAt, len(c.fptrMap), fpBefore)
		}
		if _, memAfter := targetFingerprint(t, c); memAfter != memBefore {
			t.Errorf("failAt=%d: target process changed across failed Replace", failAt)
		}
		if len(c.Reports) != 0 {
			t.Errorf("failAt=%d: failed round appended a report", failAt)
		}
	}
	if v := reg.Counter("core_txn_rollbacks_total").Value(); v == 0 {
		t.Error("rollbacks not counted")
	}

	// The same controller and the same build must still commit cleanly and
	// the program must finish with the never-optimized checksum.
	if _, err := c.Replace(build.Result.Binary); err != nil {
		t.Fatal(err)
	}
	if c.Version() != 1 {
		t.Fatalf("version after recovery = %d", c.Version())
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum after recovery %d != %d", got, want)
	}
}

// TestVerifierFailureRollsBack plants an invariant violation the patching
// code itself would never produce (a registered jump table pointing at
// unmapped memory) and checks the pre-resume verifier catches it, the
// round rolls back, and the failure is counted separately.
func TestVerifierFailureRollsBack(t *testing.T) {
	bin, _ := genProgram(t, 303, 1<<30)
	reg := telemetry.NewRegistry()
	pr, c := newController(t, bin, Options{Metrics: reg})
	pr.RunFor(0.0003)
	raw := c.Profile(0.0004)
	build, err := c.BuildOptimized(raw)
	if err != nil {
		t.Fatal(err)
	}

	c.jtables[0xDEAD_0000] = []uint64{0xDEAD_0040}
	before := c.StateHash()
	_, err = c.Replace(build.Result.Binary)
	if err == nil {
		t.Fatal("verifier accepted a jump table into unknown code")
	}
	if !strings.Contains(err.Error(), "verify") {
		t.Errorf("error does not identify the verifier: %v", err)
	}
	if c.StateHash() != before || c.Version() != 0 {
		t.Error("verifier failure did not roll back")
	}
	if reg.Counter("core_verify_failures_total").Value() != 1 {
		t.Error("verify failure not counted")
	}
	if reg.Counter("core_txn_rollbacks_total").Value() != 1 {
		t.Error("rollback not counted")
	}

	// Removing the poison heals the controller in place.
	delete(c.jtables, 0xDEAD_0000)
	if _, err := c.Replace(build.Result.Binary); err != nil {
		t.Fatal(err)
	}
}

// TestRevertAtVersionZeroIsNoOp: Revert before any optimization has
// nothing to undo — no pause, no report, no version change, not even an
// attach.
func TestRevertAtVersionZeroIsNoOp(t *testing.T) {
	bin, outAddr := genProgram(t, 305, 60000)
	want := plainRun(t, bin, outAddr)

	pr, c := newController(t, bin, Options{})
	pr.RunFor(0.0002)
	stallBefore := pr.Threads[0].Core.StatsSnapshot().Cycles
	before := c.StateHash()
	rs, err := c.Revert()
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil || rs.PauseSeconds != 0 || rs.BytesInjected != 0 || rs.Version != 0 {
		t.Errorf("revert at v0 did work: %+v", rs)
	}
	if len(c.Reports) != 0 {
		t.Error("no-op revert appended a report")
	}
	if c.Version() != 0 || c.StateHash() != before {
		t.Error("no-op revert changed controller state")
	}
	if pr.Threads[0].Core.StatsSnapshot().Cycles != stallBefore {
		t.Error("no-op revert charged cycles to the target")
	}
	pr.RunUntilHalt(0)
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum %d != %d", got, want)
	}
}
