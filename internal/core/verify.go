package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/ptrace"
	"repro/internal/unwind"
)

// verifyResumeSafety runs after every mutation of a replacement round and
// before the target is resumed. It re-reads the patched state through the
// transaction and asserts the invariants a safe resume depends on:
//
//   - every patched direct call decodes to a CALL whose target is the
//     callee's current preferred entry;
//   - every v-table slot holds a known function entry (and, when v-table
//     patching is on, the preferred one);
//   - every thread PC, every return address on every stack (including the
//     synthesized hidden frames), and every trampoline target lands in
//     code the new resolver knows;
//   - no live pointer references the address ranges being garbage-
//     collected this round;
//   - every registered jump-table entry still points into a live span;
//   - every OSR-rewritten frame (see osr.go) holds exactly the new PC it
//     was given, that PC decodes to a live instruction of the same
//     function, and the offset arithmetic that justified the transfer
//     re-derives from the OSR maps.
//
// Any violation aborts the round: the caller rolls the journal back while
// the target is still paused, so a bug in the patching logic degrades to a
// skipped round instead of a resumed process running through torn state.
// All reads go through the tracee in deterministic (sorted) order, so the
// fault sweep exercises verifier reads too.
func (c *Controller) verifyResumeSafety(x *ptrace.Txn, nr *resolver, newCur map[string]uint64, dead [][2]uint64, nb *obj.Binary, osr *osrOutcome) error {
	inDead := func(addr uint64) bool {
		for _, d := range dead {
			if addr >= d[0] && addr < d[1] {
				return true
			}
		}
		return false
	}
	checkCode := func(what string, addr uint64) (span, error) {
		if inDead(addr) {
			return span{}, fmt.Errorf("core: verify: %s %#x references garbage-collected code", what, addr)
		}
		s, ok := nr.at(addr)
		if !ok {
			return span{}, fmt.Errorf("core: verify: %s %#x is not in any live code span", what, addr)
		}
		return s, nil
	}

	// Patched direct-call sites decode to CALLs aimed at preferred entries.
	for _, addr := range sortedKeys(c.patched) {
		callee := c.patched[addr]
		var buf [isa.InstBytes]byte
		if err := x.ReadMem(addr, buf[:]); err != nil {
			return err
		}
		in, err := isa.Decode(buf[:])
		if err != nil || in.Op != isa.CALL {
			return fmt.Errorf("core: verify: patched site %#x does not decode to a CALL", addr)
		}
		tgt := uint64(int64(addr) + isa.InstBytes + in.Imm)
		want, ok := newCur[callee]
		if !ok {
			return fmt.Errorf("core: verify: patched site %#x calls unknown function %s", addr, callee)
		}
		if tgt != want {
			return fmt.Errorf("core: verify: patched call %#x→%s targets %#x, want %#x", addr, callee, tgt, want)
		}
		if _, err := checkCode("patched call target", tgt); err != nil {
			return err
		}
	}

	// V-table slots hold live, known function entries.
	for _, vt := range c.orig.VTables {
		for i := range vt.Slots {
			v, err := x.PeekData(vt.Addr + uint64(i)*8)
			if err != nil {
				return err
			}
			s, err := checkCode(fmt.Sprintf("vtable %s slot %d", vt.Name, i), v)
			if err != nil {
				return err
			}
			if !c.opts.NoPatchVTables {
				if want := newCur[s.name]; v != want {
					return fmt.Errorf("core: verify: vtable %s slot %d holds %#x, want preferred entry %#x of %s",
						vt.Name, i, v, want, s.name)
				}
			}
			if v != s.entry {
				return fmt.Errorf("core: verify: vtable %s slot %d holds %#x, mid-function of %s", vt.Name, i, v, s.name)
			}
		}
	}

	// Trampolines decode to JMPs into the preferred entry.
	for _, name := range sortedKeys(c.tramps) {
		c0 := c.c0Entry[name]
		var buf [isa.InstBytes]byte
		if err := x.ReadMem(c0, buf[:]); err != nil {
			return err
		}
		in, err := isa.Decode(buf[:])
		if err != nil || in.Op != isa.JMP {
			return fmt.Errorf("core: verify: trampoline for %s at %#x does not decode to a JMP", name, c0)
		}
		tgt := uint64(int64(c0) + isa.InstBytes + in.Imm)
		if want := newCur[name]; tgt != want {
			return fmt.Errorf("core: verify: trampoline for %s jumps to %#x, want %#x", name, tgt, want)
		}
		if _, err := checkCode("trampoline target", tgt); err != nil {
			return err
		}
	}

	// Thread PCs, every return address reachable by a fresh unwind, and
	// the hidden [SP] return addresses all resolve to live code.
	stacks, err := unwind.AllStacks(x)
	if err != nil {
		return err
	}
	for tid, frames := range stacks {
		for i, fr := range frames {
			what := fmt.Sprintf("thread %d frame %d return address", tid, i)
			if i == 0 {
				what = fmt.Sprintf("thread %d PC", tid)
			}
			if _, err := checkCode(what, fr.PC); err != nil {
				return err
			}
		}
		regs, err := x.GetRegs(tid)
		if err != nil {
			return err
		}
		ra, slot, err := c.hiddenRetAddrVerify(x, tid, regs, nr)
		if err != nil {
			return err
		}
		if slot != 0 {
			if _, err := checkCode(fmt.Sprintf("thread %d hidden return address", tid), ra); err != nil {
				return err
			}
		}
	}

	// Every OSR-rewritten frame landed where the decision said it would,
	// on an address that decodes and that the OSR maps justify.
	if osr != nil {
		if err := c.verifyOSRRewrites(x, nr, nb, osr); err != nil {
			return err
		}
	}

	// Registered jump tables only reference live spans.
	for _, addr := range sortedKeys(c.jtables) {
		if inDead(addr) {
			return fmt.Errorf("core: verify: jump table %#x lives in garbage-collected code", addr)
		}
		for j, e := range c.jtables[addr] {
			if _, err := checkCode(fmt.Sprintf("jump table %#x entry %d", addr, j), e); err != nil {
				return err
			}
		}
	}
	return nil
}

// verifyOSRRewrites re-derives every on-stack replacement performed this
// round. For each rewrite it re-reads the rewritten location through the
// transaction and checks the landing point against the OSR maps: a
// forward transfer must match the incoming binary's registered mappable
// point (pivoted through the live C0 relation when the frame sat on C0),
// and a transfer onto C0 must invert through the live relation onto the
// exact C0 address written. Note c.osrFromC0 still holds the *old*
// relation here — the new one is only installed on commit — which is
// precisely the relation the decisions were made against.
func (c *Controller) verifyOSRRewrites(x *ptrace.Txn, nr *resolver, nb *obj.Binary, osr *osrOutcome) error {
	for _, rw := range osr.rewrites {
		var got uint64
		if rw.slot == 0 {
			regs, err := x.GetRegs(rw.tid)
			if err != nil {
				return err
			}
			got = regs.PC
		} else {
			v, err := x.PeekData(rw.slot)
			if err != nil {
				return err
			}
			got = v
		}
		if got != rw.newPC {
			return fmt.Errorf("core: verify: OSR frame %d/%d holds %#x, want %#x", rw.tid, rw.frame, got, rw.newPC)
		}
		s, ok := nr.at(rw.newPC)
		if !ok {
			return fmt.Errorf("core: verify: OSR target %#x of thread %d frame %d is not in any live code span", rw.newPC, rw.tid, rw.frame)
		}
		if s.name != rw.name {
			return fmt.Errorf("core: verify: OSR target %#x is in %s, want %s", rw.newPC, s.name, rw.name)
		}
		var buf [isa.InstBytes]byte
		if err := x.ReadMem(rw.newPC, buf[:]); err != nil {
			return err
		}
		if _, err := isa.Decode(buf[:]); err != nil {
			return fmt.Errorf("core: verify: OSR target %#x does not decode: %v", rw.newPC, err)
		}
		if rw.toC0 {
			if s.version != 0 {
				return fmt.Errorf("core: verify: OSR transfer to C0 landed in version %d", s.version)
			}
			c0f := c.orig.FuncByName(rw.name)
			if c0f == nil || rw.newOff >= c0f.Size || c0f.Addr+rw.newOff != rw.newPC {
				return fmt.Errorf("core: verify: OSR transfer to C0 of %s: %#x is not offset %#x", rw.name, rw.newPC, rw.newOff)
			}
			if m := c.osrFromC0[rw.name]; m == nil || m[rw.newOff] != rw.oldOff {
				return fmt.Errorf("core: verify: OSR transfer of %s to C0 offset %#x is not an equivalent point of offset %#x", rw.name, rw.newOff, rw.oldOff)
			}
			continue
		}
		if nb == nil {
			return fmt.Errorf("core: verify: forward OSR rewrite of %s without an incoming binary", rw.name)
		}
		p, ok := nb.OSRPointAt(rw.entry, rw.viaOff)
		if !ok || p.NewOff != rw.newOff {
			return fmt.Errorf("core: verify: OSR point %#x of %s does not map to offset %#x", rw.viaOff, rw.name, rw.newOff)
		}
		nf := nb.FuncByName(rw.name)
		if nf == nil || osrAddrAt(nf, rw.newOff) != rw.newPC {
			return fmt.Errorf("core: verify: OSR target %#x is not offset %#x of the incoming %s", rw.newPC, rw.newOff, rw.name)
		}
		if s.version == 0 || s.entry != nf.Addr {
			return fmt.Errorf("core: verify: OSR target %#x resolves to instance %#x v%d, want the incoming %s", rw.newPC, s.entry, s.version, rw.name)
		}
		if rw.oldOff != rw.viaOff {
			if m := c.osrFromC0[rw.name]; m == nil || m[rw.oldOff] != rw.viaOff {
				return fmt.Errorf("core: verify: OSR pivot of %s C0 offset %#x through %#x is not in the live relation", rw.name, rw.oldOff, rw.viaOff)
			}
		}
	}
	return nil
}

// hiddenRetAddrVerify is hiddenRetAddr against the *new* resolver: after
// patching, a thread paused at a moved function's entry sits at the new
// version's entry address, which only nr knows.
func (c *Controller) hiddenRetAddrVerify(x *ptrace.Txn, tid int, regs ptrace.Regs, nr *resolver) (ra, slot uint64, err error) {
	sp := regs.GPR[isa.SP]
	if sp+8 > c.p.Threads[tid].StackHi {
		return 0, 0, nil
	}
	var instBuf [isa.InstBytes]byte
	if err := x.ReadMem(regs.PC, instBuf[:]); err != nil {
		return 0, 0, err
	}
	in, derr := isa.Decode(instBuf[:])
	atEntry := false
	if s, ok := nr.at(regs.PC); ok && regs.PC == s.entry {
		atEntry = true
	}
	if !atEntry && (derr != nil || in.Op != isa.RET) {
		return 0, 0, nil
	}
	ra, err = x.PeekData(sp)
	if err != nil {
		return 0, 0, err
	}
	return ra, sp, nil
}
