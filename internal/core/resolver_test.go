package core

import "testing"

func testResolver() *resolver {
	r := &resolver{}
	r.add(0x400000, 0x400100, "main", 0x400000, 0)
	r.add(0x400100, 0x400200, "f", 0x400100, 0)
	r.add(0x20000000, 0x20000080, "f", 0x20000000, 1) // optimized hot
	r.add(0x28000000, 0x28000040, "f", 0x20000000, 1) // optimized cold
	r.sort()
	return r
}

func TestResolverLookup(t *testing.T) {
	r := testResolver()
	if s, ok := r.at(0x400150); !ok || s.name != "f" || s.version != 0 {
		t.Errorf("at(0x400150) = %+v, %v", s, ok)
	}
	if s, ok := r.at(0x28000010); !ok || s.name != "f" || s.version != 1 || s.entry != 0x20000000 {
		t.Errorf("cold span lookup = %+v, %v", s, ok)
	}
	if _, ok := r.at(0x400200); ok {
		t.Error("end-exclusive boundary resolved")
	}
	if _, ok := r.at(0x300000); ok {
		t.Error("hole resolved")
	}
	if name, ok := r.funcName(0x20000000); !ok || name != "f" {
		t.Error("funcName failed")
	}
}

func TestResolverSpansOfAndVersions(t *testing.T) {
	r := testResolver()
	if got := len(r.spansOf("f", 1)); got != 2 {
		t.Errorf("spansOf(f,1) = %d spans, want 2 (hot+cold)", got)
	}
	if got := len(r.spansOf("f", 0)); got != 1 {
		t.Errorf("spansOf(f,0) = %d spans, want 1", got)
	}
	if got := len(r.versionSpans(1)); got != 2 {
		t.Errorf("versionSpans(1) = %d", got)
	}
	r.dropVersion(1)
	if got := len(r.versionSpans(1)); got != 0 {
		t.Error("dropVersion left spans behind")
	}
	if _, ok := r.at(0x400150); !ok {
		t.Error("dropVersion removed version-0 spans")
	}
}

func TestResolverRejectsOverlap(t *testing.T) {
	r := &resolver{}
	r.add(0x400000, 0x400100, "a", 0x400000, 0)
	r.add(0x4000F0, 0x400200, "b", 0x4000F0, 0)
	defer func() {
		if recover() == nil {
			t.Error("overlapping spans not detected")
		}
	}()
	r.sort()
}

func TestResolverIgnoresEmptySpans(t *testing.T) {
	r := &resolver{}
	r.add(0x400100, 0x400100, "z", 0x400100, 0) // empty: dropped
	r.sort()
	if len(r.spans) != 0 {
		t.Error("empty span retained")
	}
}
