package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// scriptClock is a deterministic replay.Clock: every Now() read advances
// a scripted amount, so any code path that secretly calls time.Now()
// instead of reading through the seam produces a visibly different
// duration.
type scriptClock struct {
	at   time.Time
	step time.Duration
}

func (c *scriptClock) Now() time.Time {
	now := c.at
	c.at = c.at.Add(c.step)
	return now
}

func (c *scriptClock) Sleep(time.Duration) {}

// TestProfileReadsInjectedClock is the regression test for Profile's
// stage-latency window: it used to read bare time.Now(), bypassing
// Options.Clock, so the profile stage's host latency was immune to the
// replay layer's journaling clock. With the seam honored, a scripted
// clock that advances 250 ms per read must make the one-read-apart
// window exactly 250 ms.
func TestProfileReadsInjectedClock(t *testing.T) {
	bin, _ := genProgram(t, 71, 2_000_000)
	reg := telemetry.NewRegistry()
	sc := &scriptClock{at: time.Unix(1000, 0), step: 250 * time.Millisecond}
	pr, c := newController(t, bin, Options{Metrics: reg, Clock: sc})
	pr.RunFor(0.0003)

	if raw := c.Profile(0.0004); len(raw.Samples) == 0 {
		t.Fatal("no profile collected")
	}
	h := reg.HistogramVec("core_stage_seconds", "stage").With("profile")
	if h.Count() != 1 {
		t.Fatalf("profile stage observed %d times, want 1", h.Count())
	}
	// Profile reads the clock exactly twice (start and end of the
	// window); a bare time.Now() would yield microseconds, not 0.25 s.
	if got := h.Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("profile stage latency %v s, want exactly 0.25 (the scripted step)", got)
	}
}

// TestProfileClockJournaled closes the loop with the replay layer: under
// a recording session Profile's two clock reads land in the journal, and
// a replay against a clock scripted to run 100x faster still observes
// the recorded 250 ms window — the reads come from the journal, not the
// replacement clock.
func TestProfileClockJournaled(t *testing.T) {
	record := func(sess *replay.Session, step time.Duration) float64 {
		bin, _ := genProgram(t, 71, 2_000_000)
		reg := telemetry.NewRegistry()
		pr, c := newController(t, bin, Options{
			Metrics: reg,
			Clock:   &scriptClock{at: time.Unix(1000, 0), step: step},
			Replay:  sess,
		})
		pr.RunFor(0.0003)
		c.Profile(0.0004)
		return reg.HistogramVec("core_stage_seconds", "stage").With("profile").Sum()
	}

	rec := replay.NewRecorder(0)
	recorded := record(rec, 250*time.Millisecond)
	if math.Abs(recorded-0.25) > 1e-9 {
		t.Fatalf("recorded stage latency %v, want 0.25", recorded)
	}
	events := rec.Journal().Events()
	reads := 0
	for _, ev := range events {
		if ev.Type == trace.EvClockRead {
			reads++
		}
	}
	if reads < 2 {
		t.Fatalf("journal holds %d clock reads, want Profile's 2 (events: %d)", reads, len(events))
	}

	rp, err := replay.NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	replayed := record(rp, 25*time.Millisecond) // 10x faster host clock
	if replayed != recorded {
		t.Errorf("replayed stage latency %v, recorded %v: clock reads not fed from the journal", replayed, recorded)
	}
	if err := rp.Finish(); err != nil {
		t.Errorf("replay diverged: %v", err)
	}
}
