package core

import (
	"testing"

	"repro/internal/bolt"
	"repro/internal/isa"
)

// TestOSRCallBoundaryAcrossRevert parks a thread at the exact CALL/RET
// boundary — PC sitting on a moved function's entry, return address still
// hidden at [SP] (the hiddenRetAddr path) — then runs a Revert()-to-C0
// round with OSR enabled. The thread's PC must be transferred in place to
// the C0 entry (not relocated into a stack-live copy), the hidden return
// slot must come back to a C0 address, and the run must still produce the
// baseline checksum.
func TestOSRCallBoundaryAcrossRevert(t *testing.T) {
	bin, outAddr := genProgram(t, 47, 150000)
	want := plainRun(t, bin, outAddr)

	pr, c := newController(t, bin, Options{Bolt: bolt.Options{AllowReBolt: true}})
	pr.RunFor(0.0002)
	if pr.Halted() {
		t.Fatal("program too short to optimize")
	}
	if _, err := c.OptimizeRound(0.0004); err != nil {
		t.Fatal(err)
	}

	// Entries that moved off C0 this round: a patched CALL jumps straight
	// to one of these, and the first instruction there is the moved ENTER.
	moved := make(map[uint64]string)
	for name, e := range c.curOf {
		if e != c.c0Entry[name] {
			moved[e] = name
		}
	}
	if len(moved) == 0 {
		t.Fatal("optimization round moved no function")
	}

	// Single-step until the thread pauses exactly on a moved entry. At
	// that point the frame is not yet established: FP is the caller's and
	// the return address is only at [SP].
	th := pr.Threads[0]
	var name string
	for i := 0; ; i++ {
		if n, ok := moved[th.PC]; ok {
			name = n
			break
		}
		if th.Halted || i > 5_000_000 {
			t.Fatal("thread never paused at a moved entry")
		}
		pr.Step(th)
	}
	sp := th.Reg(isa.SP)
	hiddenRA := pr.Mem.ReadWord(sp)

	rs, err := c.Revert()
	if err != nil {
		t.Fatal(err)
	}
	if rs.OSRFramesMapped < 1 {
		t.Errorf("OSRFramesMapped = %d at entry boundary, want >= 1 (fallbacks %d)",
			rs.OSRFramesMapped, rs.OSRFallbacks)
	}
	// The live PC was transferred in place to C0 — copy-based migration
	// would instead have parked it in a stack-live copy window.
	if th.PC != c.c0Entry[name] {
		t.Errorf("thread PC %#x after revert, want C0 entry %#x of %s", th.PC, c.c0Entry[name], name)
	}
	// The hidden [SP] return address must point at valid code: either
	// OSR-transferred back to the C0 image or left aimed at a live copy.
	if got := pr.Mem.ReadWord(sp); got != hiddenRA {
		if f, _, _ := c.orig.Lookup(got); f == nil {
			t.Errorf("hidden return slot rewritten to %#x, outside the C0 image", got)
		}
	}

	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum after OSR revert %d != %d", got, want)
	}

	var mapped, fallbacks int
	for _, rep := range c.Reports {
		mapped += rep.OSRFramesMapped
		fallbacks += rep.OSRFallbacks
	}
	if mapped < 1 {
		t.Errorf("no OSR-mapped frames across the round sequence (fallbacks %d)", fallbacks)
	}
}

// TestOSRDisabledFallsBackToCopies is the ablation twin: with NoOSR set
// the same boundary pause must migrate through the copy mechanism — zero
// frames mapped, semantics still intact.
func TestOSRDisabledFallsBackToCopies(t *testing.T) {
	bin, outAddr := genProgram(t, 47, 150000)
	want := plainRun(t, bin, outAddr)

	pr, c := newController(t, bin, Options{Bolt: bolt.Options{AllowReBolt: true}, NoOSR: true})
	pr.RunFor(0.0002)
	if _, err := c.OptimizeRound(0.0004); err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.0003)
	rs, err := c.Revert()
	if err != nil {
		t.Fatal(err)
	}
	if rs.OSRFramesMapped != 0 || rs.OSRFallbacks != 0 {
		t.Errorf("NoOSR round counted OSR activity: mapped %d fallbacks %d",
			rs.OSRFramesMapped, rs.OSRFallbacks)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatal(err)
	}
	if got := pr.Mem.ReadWord(outAddr); got != want {
		t.Errorf("checksum with OSR disabled %d != %d", got, want)
	}
}
