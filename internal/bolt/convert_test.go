package bolt

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/perf"
)

// convBinary builds a two-function binary with known instruction
// addresses for hand-crafted LBR records:
//
//	f: b0 [cmp, jcc→b2]  b1 [addi, (fall)]  b2 [call g, ret]
//	g: [muli, ret]
func convBinary(t *testing.T) *obj.Binary {
	t.Helper()
	p := build.NewProgram("conv")
	p.SetNoJumpTables(true)

	f := p.Func("f")
	f.Prologue(0) // inst 0: enter
	f.CmpI(isa.R0, 5)
	f.If(isa.EQ, func() { // jcc at inst 2 (negated NE → else=join)
		f.AddI(isa.R0, isa.R0, 1)
	}, nil)
	f.Call("g")
	f.EpilogueRet()

	g := p.Func("g")
	g.Prologue(0)
	g.MulI(isa.R0, isa.R0, 3)
	g.EpilogueRet()

	m := p.Func("main")
	m.Prologue(0)
	m.Call("f")
	m.Halt()
	p.SetEntry("main")

	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// TestConvertProfileAttribution crafts LBR samples and checks perf2bolt's
// edge, call, and fallthrough accounting against them.
func TestConvertProfileAttribution(t *testing.T) {
	bin := convBinary(t)
	f := bin.FuncByName("f")
	g := bin.FuncByName("g")

	// Locate f's call-to-g instruction by decoding.
	raw, _ := bin.Bytes(f.Addr, int(f.Size))
	insts, _ := isa.DecodeAll(raw)
	callIdx := -1
	for i, in := range insts {
		if in.Op == isa.CALL {
			callIdx = i
		}
	}
	if callIdx < 0 {
		t.Fatal("no call in f")
	}
	callPC := f.Addr + uint64(callIdx)*isa.InstBytes

	// One LBR sample: call f→g taken, then g returns (ret → back into f).
	// Between the call's landing (g entry) and g's ret, execution fell
	// through g's body.
	gRetPC := g.Addr + g.Size - isa.InstBytes
	prof, err := ConvertProfile(&perf.RawProfile{Samples: []perf.Sample{{
		Records: []cpu.BranchRecord{
			{From: callPC, To: g.Addr},           // call edge
			{From: gRetPC, To: callPC + 16},      // return
			{From: callPC + 16, To: callPC + 16}, // stand-in next branch
		},
	}}}, bin)
	if err != nil {
		t.Fatal(err)
	}

	fp := prof.Funcs[f.Addr]
	if fp == nil {
		t.Fatal("f not profiled")
	}
	if fp.Calls[g.Addr] != 1 {
		t.Errorf("call count f→g = %d, want 1", fp.Calls[g.Addr])
	}
	gp := prof.Funcs[g.Addr]
	if gp == nil {
		t.Fatal("g not profiled")
	}
	// Entry block of g credited by the call, and the fallthrough walk from
	// g's entry to its ret touched its block(s).
	if gp.BlockCount[0] < 2 {
		t.Errorf("g entry block count = %d, want >= 2 (call + fallthrough walk)", gp.BlockCount[0])
	}
}

// TestConvertProfileIntraFunctionEdge: a taken JCC inside one function
// produces a block edge.
func TestConvertProfileIntraFunctionEdge(t *testing.T) {
	bin := convBinary(t)
	f := bin.FuncByName("f")
	raw, _ := bin.Bytes(f.Addr, int(f.Size))
	insts, _ := isa.DecodeAll(raw)
	jccIdx := -1
	for i, in := range insts {
		if in.Op == isa.JCC {
			jccIdx = i
		}
	}
	if jccIdx < 0 {
		t.Fatal("no jcc in f")
	}
	jccPC := f.Addr + uint64(jccIdx)*isa.InstBytes
	target := uint64(int64(jccPC) + isa.InstBytes + insts[jccIdx].Imm)

	prof, err := ConvertProfile(&perf.RawProfile{Samples: []perf.Sample{{
		Records: []cpu.BranchRecord{{From: jccPC, To: target}},
	}}}, bin)
	if err != nil {
		t.Fatal(err)
	}
	fp := prof.Funcs[f.Addr]
	if fp == nil {
		t.Fatal("f not profiled")
	}
	cfg, err := BuildCFG(bin, f)
	if err != nil {
		t.Fatal(err)
	}
	fromB := cfg.BlockAt(jccPC - f.Addr)
	toB := cfg.BlockAt(target - f.Addr)
	if fp.Edge[[2]int{fromB, toB}] != 1 {
		t.Errorf("edge (%d,%d) count = %d, want 1; edges: %v", fromB, toB, fp.Edge[[2]int{fromB, toB}], fp.Edge)
	}
}

// TestConvertProfileIgnoresUnknownCode: records outside any function are
// skipped without error.
func TestConvertProfileIgnoresUnknownCode(t *testing.T) {
	bin := convBinary(t)
	prof, err := ConvertProfile(&perf.RawProfile{Samples: []perf.Sample{{
		Records: []cpu.BranchRecord{
			{From: 0xDEAD0000, To: 0xDEAD0040},
		},
	}}}, bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Funcs) != 0 {
		t.Errorf("unknown code attributed: %v", prof.Funcs)
	}
	if prof.TotalBranches != 1 {
		t.Errorf("TotalBranches = %d", prof.TotalBranches)
	}
}
