package bolt

import (
	"bytes"
	"fmt"
	"testing"
)

// fingerprint renders everything that defines a layout: section
// placement and bytes, the function map (hot and cold halves), jump
// tables and v-table slots, and the entry point. Two results with equal
// fingerprints are byte-identical layouts.
func fingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	b := res.Binary
	fmt.Fprintf(&buf, "entry=%#x reordered=%d split=%d newtext=%d\n",
		b.Entry, res.FuncsReordered, res.FuncsSplit, res.NewTextBytes)
	for _, s := range b.Sections {
		fmt.Fprintf(&buf, "sec %s addr=%#x len=%d\n", s.Name, s.Addr, len(s.Data))
		buf.Write(s.Data)
		buf.WriteByte('\n')
	}
	for _, f := range b.Funcs {
		fmt.Fprintf(&buf, "func %s addr=%#x size=%d cold=%#x/%d opt=%v\n",
			f.Name, f.Addr, f.Size, f.ColdAddr, f.ColdSize, f.Optimized)
	}
	for _, vt := range b.VTables {
		fmt.Fprintf(&buf, "vt %s addr=%#x slots=%v\n", vt.Name, vt.Addr, vt.Slots)
	}
	for _, jt := range b.JumpTables {
		fmt.Fprintf(&buf, "jt addr=%#x targets=%v\n", jt.Addr, jt.Targets)
	}
	return buf.Bytes()
}

// TestOptimizeDeterministic: identical profiles must yield byte-identical
// layouts, across repeated Optimize calls and across independently
// recorded (but identical) profiling runs. The diffcheck oracle leans on
// this: a nondeterministic optimizer would make every differential run
// incomparable.
func TestOptimizeDeterministic(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"no-split", Options{NoSplit: true}},
		{"no-reorder-blocks", Options{NoReorderBlocks: true}},
		{"no-peephole", Options{NoPeephole: true}},
		{"pettis-hansen", Options{FuncOrder: OrderPH}},
		{"no-func-order", Options{FuncOrder: OrderNone}},
	}
	bin, _ := buildToy(t, 30000)
	prof := profileBinary(t, bin, 0.002)
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			first, err := Optimize(bin, prof, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			ref := fingerprint(t, first)
			// Same profile object, repeated: Optimize must not depend on
			// map iteration order or mutate its inputs.
			for i := 0; i < 3; i++ {
				again, err := Optimize(bin, prof, c.opts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ref, fingerprint(t, again)) {
					t.Fatalf("run %d produced a different layout", i+2)
				}
			}
			// A fresh, independently recorded profile of the identical
			// deterministic run must reproduce the layout end-to-end.
			bin2, _ := buildToy(t, 30000)
			prof2 := profileBinary(t, bin2, 0.002)
			indep, err := Optimize(bin2, prof2, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, fingerprint(t, indep)) {
				t.Fatal("independently recorded identical profile produced a different layout")
			}
		})
	}
}

// TestOptimizeDoesNotMutateInput: determinism across calls also requires
// the optimizer to leave the input binary untouched.
func TestOptimizeDoesNotMutateInput(t *testing.T) {
	bin, _ := buildToy(t, 30000)
	prof := profileBinary(t, bin, 0.002)
	var before bytes.Buffer
	for _, s := range bin.Sections {
		before.Write(s.Data)
	}
	if _, err := Optimize(bin, prof, Options{}); err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	for _, s := range bin.Sections {
		after.Write(s.Data)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("Optimize mutated the input binary's sections")
	}
}
