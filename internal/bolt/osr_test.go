package bolt

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/obj"
)

// instAt decodes the instruction at a unified offset of fn in bin.
func instAt(t *testing.T, bin *obj.Binary, fn *obj.Func, off uint64) isa.Inst {
	t.Helper()
	addr := fn.Addr + off
	if off >= fn.Size {
		addr = fn.ColdAddr + (off - fn.Size)
	}
	raw, err := bin.Bytes(addr, int(isa.InstBytes))
	if err != nil {
		t.Fatalf("%s+%#x: %v", fn.Name, off, err)
	}
	in, err := isa.Decode(raw)
	if err != nil {
		t.Fatalf("%s+%#x: %v", fn.Name, off, err)
	}
	return in
}

// calleeName resolves the CALL at (fn, off) to its target function name.
func calleeName(t *testing.T, bin *obj.Binary, fn *obj.Func, off uint64) string {
	t.Helper()
	in := instAt(t, bin, fn, off)
	if in.Op != isa.CALL {
		t.Fatalf("%s+%#x: not a CALL: %v", fn.Name, off, in.Op)
	}
	pc := fn.Addr + off
	if off >= fn.Size {
		pc = fn.ColdAddr + (off - fn.Size)
	}
	tgt := bin.FuncAt(uint64(int64(pc) + isa.InstBytes + in.Imm))
	if tgt == nil {
		t.Fatalf("%s+%#x: CALL to non-entry", fn.Name, off)
	}
	return tgt.Name
}

// TestOSRMapPoints checks the structural contract of the exported OSR
// map: every moved function gets the entry point, points are sorted and
// in range, call/ret points decode to corresponding CALLs in both
// layouts, and main's loop contributes a loop-header point.
func TestOSRMapPoints(t *testing.T) {
	bin, _ := buildToy(t, 30000)
	prof := profileBinary(t, bin, 0.002)
	res, err := Optimize(bin, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ob := res.Binary
	if len(ob.OSRMap) == 0 {
		t.Fatal("optimized binary has no OSR map")
	}

	loopHeaders, retPoints := 0, 0
	for entry, pts := range ob.OSRMap {
		fn := bin.FuncAt(entry)
		if fn == nil {
			t.Fatalf("OSR map entry %#x not in input binary", entry)
		}
		nf := ob.FuncByName(fn.Name)
		if nf == nil {
			t.Fatalf("OSR-mapped function %s missing from output", fn.Name)
		}
		if len(pts) == 0 || pts[0] != (obj.OSRPoint{OldOff: 0, NewOff: 0, Kind: obj.OSREntry}) {
			t.Fatalf("%s: first OSR point is not the entry: %+v", fn.Name, pts)
		}
		for i, p := range pts {
			if i > 0 && pts[i-1].OldOff >= p.OldOff {
				t.Fatalf("%s: OSR points not strictly sorted at %d: %+v", fn.Name, i, pts)
			}
			if p.OldOff%isa.InstBytes != 0 || p.NewOff%isa.InstBytes != 0 {
				t.Fatalf("%s: unaligned OSR point %+v", fn.Name, p)
			}
			if p.OldOff >= fn.Size+fn.ColdSize || p.NewOff >= nf.Size+nf.ColdSize {
				t.Fatalf("%s: OSR point out of range: %+v", fn.Name, p)
			}
			got, ok := ob.OSRPointAt(entry, p.OldOff)
			if !ok || got != p {
				t.Fatalf("%s: OSRPointAt(%#x) = %+v, %v; want %+v", fn.Name, p.OldOff, got, ok, p)
			}
			switch p.Kind {
			case obj.OSRCallSite:
				oldC := calleeName(t, bin, fn, p.OldOff)
				newC := calleeName(t, ob, nf, p.NewOff)
				if oldC != newC {
					t.Errorf("%s+%#x: call site maps %s call to %s call", fn.Name, p.OldOff, oldC, newC)
				}
			case obj.OSRRetPoint:
				calleeName(t, bin, fn, p.OldOff-isa.InstBytes)
				calleeName(t, ob, nf, p.NewOff-isa.InstBytes)
				retPoints++
			case obj.OSRLoopHeader:
				loopHeaders++
			}
		}
	}
	if loopHeaders == 0 {
		t.Error("no loop-header OSR points despite main's loop")
	}
	if retPoints == 0 {
		t.Error("no return-point OSR points despite calls in hot functions")
	}

	origMain := bin.FuncByName("main")
	hasHeader := false
	for _, p := range ob.OSRMap[origMain.Addr] {
		if p.Kind == obj.OSRLoopHeader {
			hasHeader = true
		}
	}
	if !hasHeader {
		t.Error("main's OSR map has no loop header for its while loop")
	}

	// The map survives Clone (the layout cache hands out clones).
	cl := ob.Clone()
	if len(cl.OSRMap) != len(ob.OSRMap) {
		t.Fatalf("Clone dropped OSR map: %d != %d", len(cl.OSRMap), len(ob.OSRMap))
	}
	for entry, pts := range ob.OSRMap {
		cpts := cl.OSRMap[entry]
		if len(cpts) != len(pts) {
			t.Fatalf("Clone OSR map differs at %#x", entry)
		}
		for i := range pts {
			if cpts[i] != pts[i] {
				t.Fatalf("Clone OSR point differs: %+v != %+v", cpts[i], pts[i])
			}
		}
	}
}
