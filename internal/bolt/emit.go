package bolt

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/obj"
)

// blockPos locates a CFG block in the emitted layout.
type blockPos struct {
	frag  string
	index int // index of the block's first instruction in the fragment
}

// emitFunc lowers one function with the chosen hot/cold block layout into
// fragments with symbolic operands, performing the branch fixups the new
// adjacency requires:
//
//   - a JMP whose target became the next block is deleted
//   - a JCC whose taken target became the next block is inverted, making
//     the hot edge a fallthrough (the taken-branch reduction of Figure 2)
//   - a block whose fallthrough moved away gains a JMP
//
// Calls and FPTRs are rewritten to symbolic callee names so the linker
// re-resolves them to the final function addresses; jump tables become
// symbolic block references.
//
// Alongside the fragments, emitFunc collects the function's OSR map: the
// mappable points — entry, loop headers (backward-edge targets), CALL
// sites, and the return points after them — as old→new unified offsets.
// These are exactly the points where the live register/spill state is
// identical in both layouts (reordering never touches instructions inside
// a block, and deleted NOPs carry no state), so a parked frame can be
// transferred between layouts there with no state reconstruction.
func emitFunc(cfg *CFG, hotOrder, coldOrder []int, bin *obj.Binary, peephole bool) (*asm.Fragment, *asm.Fragment, []obj.OSRPoint, error) {
	fn := cfg.Fn
	if len(hotOrder) == 0 || hotOrder[0] != 0 {
		return nil, nil, nil, fmt.Errorf("bolt: %s: layout must start with the entry block", fn.Name)
	}

	hotName := fn.Name
	coldName := fn.Name + asm.ColdSuffix
	layouts := [2][]int{hotOrder, coldOrder}
	names := [2]string{hotName, coldName}

	// Pass 1: per-block emitted instruction counts given adjacency.
	nextOf := make(map[int]int) // block → physically next block (-1 none)
	fragOf := make(map[int]int) // block → 0 hot / 1 cold
	for li, order := range layouts {
		for i, b := range order {
			fragOf[b] = li
			if i+1 < len(order) {
				nextOf[b] = order[i+1]
			} else {
				nextOf[b] = -1
			}
		}
	}

	type plan struct {
		count   int  // emitted instructions
		dropJmp bool // trailing JMP removed
		invert  bool // trailing JCC inverted (branch to FallTo instead)
		addJmp  int  // block to JMP to after body (-1 none)
	}
	plans := make(map[int]*plan)
	for _, order := range layouts {
		for _, bi := range order {
			b := cfg.Blocks[bi]
			n := len(b.Insts)
			if peephole {
				// Peephole: alignment/padding NOPs are deleted from
				// relocated code (§II-C's "small peephole optimizations").
				n = 0
				for _, in := range b.Insts {
					if in.Op != isa.NOP {
						n++
					}
				}
			}
			p := &plan{count: n, addJmp: -1}
			next := nextOf[bi]
			switch term := b.Terminator(); term.Op {
			case isa.JMP:
				if b.CondTarget == next {
					p.dropJmp = true
					p.count--
				}
			case isa.JCC:
				if b.FallTo < 0 {
					return nil, nil, nil, fmt.Errorf("bolt: %s: JCC without fallthrough", fn.Name)
				}
				switch {
				case b.FallTo == next:
					// keep as-is
				case b.CondTarget == next:
					p.invert = true
				default:
					p.addJmp = b.FallTo
					p.count++
				}
			case isa.RET, isa.HALT, isa.JTBL:
				// no fixup
			default:
				if b.FallTo >= 0 && b.FallTo != next {
					p.addJmp = b.FallTo
					p.count++
				}
			}
			plans[bi] = p
		}
	}

	// Pass 2: block start indexes.
	pos := make(map[int]blockPos)
	var fragLen [2]int
	for li, order := range layouts {
		idx := 0
		for _, bi := range order {
			pos[bi] = blockPos{frag: names[li], index: idx}
			idx += plans[bi].count
		}
		fragLen[li] = idx
	}
	ref := func(bi int) *asm.Ref {
		p := pos[bi]
		return &asm.Ref{Frag: p.frag, Index: p.index}
	}
	// newOff maps an emitted instruction index to its unified offset in the
	// new layout (cold instructions continue past the hot fragment).
	newOff := func(li, idx int) uint64 {
		if li == 1 {
			idx += fragLen[0]
		}
		return uint64(idx) * isa.InstBytes
	}
	blockNewOff := func(bi int) uint64 {
		p := pos[bi]
		if p.frag == coldName {
			return newOff(1, p.index)
		}
		return newOff(0, p.index)
	}

	// OSR points: the entry, then every backward-edge target (loop
	// header). CALL sites and their return points are added during pass 3,
	// where the emitted index of each CALL is known.
	osr := []obj.OSRPoint{{OldOff: 0, NewOff: blockNewOff(0), Kind: obj.OSREntry}}
	for _, order := range layouts {
		for _, bi := range order {
			b := cfg.Blocks[bi]
			tgts := b.JTTargets
			if b.CondTarget >= 0 {
				tgts = append([]int{b.CondTarget}, b.JTTargets...)
			}
			for _, t := range tgts {
				if cfg.Blocks[t].Off <= b.Off {
					osr = append(osr, obj.OSRPoint{
						OldOff: uint64(cfg.Blocks[t].Off),
						NewOff: blockNewOff(t),
						Kind:   obj.OSRLoopHeader,
					})
				}
			}
		}
	}

	// Pass 3: emit.
	frags := [2]*asm.Fragment{}
	for li, order := range layouts {
		if li == 1 && len(order) == 0 {
			continue
		}
		frag := &asm.Fragment{Name: names[li]}
		for _, bi := range order {
			b := cfg.Blocks[bi]
			p := plans[bi]
			if p.count > 0 {
				frag.Blocks = append(frag.Blocks, len(frag.Insts))
			}
			nInsts := len(b.Insts)
			if p.dropJmp {
				nInsts--
			}
			for j := 0; j < nInsts; j++ {
				in := b.Insts[j]
				if peephole && in.Op == isa.NOP {
					continue
				}
				origPC := b.Addr + uint64(j)*isa.InstBytes
				fi := asm.FInst{I: in}
				isLast := j == len(b.Insts)-1
				switch in.Op {
				case isa.JMP:
					if !isLast {
						return nil, nil, nil, fmt.Errorf("bolt: %s: JMP mid-block", fn.Name)
					}
					fi.Target = ref(b.CondTarget)
				case isa.JCC:
					if !isLast {
						return nil, nil, nil, fmt.Errorf("bolt: %s: JCC mid-block", fn.Name)
					}
					if p.invert {
						fi.I.Cond = in.Cond.Negate()
						fi.Target = ref(b.FallTo)
					} else {
						fi.Target = ref(b.CondTarget)
					}
				case isa.CALL:
					calleeAddr := uint64(int64(origPC) + isa.InstBytes + in.Imm)
					callee := bin.FuncAt(calleeAddr)
					if callee == nil {
						return nil, nil, nil, fmt.Errorf("bolt: %s: call at %#x targets non-entry %#x", fn.Name, origPC, calleeAddr)
					}
					fi.Callee = callee.Name
					// A CALL always has a following emitted instruction in
					// its fragment: its block either falls through to the
					// physically next block or gains a fixup JMP, so the
					// return point after the CALL is a valid OSR target.
					callIdx := len(frag.Insts)
					callOld := uint64(b.Off) + uint64(j)*isa.InstBytes
					osr = append(osr,
						obj.OSRPoint{OldOff: callOld, NewOff: newOff(li, callIdx), Kind: obj.OSRCallSite},
						obj.OSRPoint{OldOff: callOld + isa.InstBytes, NewOff: newOff(li, callIdx+1), Kind: obj.OSRRetPoint})
				case isa.FPTR:
					callee := bin.FuncAt(uint64(in.Imm))
					if callee == nil {
						return nil, nil, nil, fmt.Errorf("bolt: %s: FPTR at %#x targets non-entry %#x", fn.Name, origPC, uint64(in.Imm))
					}
					fi.Callee = callee.Name
				case isa.JTBL:
					jt := jumpTableAt(bin, uint64(in.Imm))
					if jt == nil {
						return nil, nil, nil, fmt.Errorf("bolt: %s: unknown jump table %#x", fn.Name, uint64(in.Imm))
					}
					fi.JT = jt.Name
				}
				frag.Insts = append(frag.Insts, fi)
			}
			if p.addJmp >= 0 {
				frag.Insts = append(frag.Insts, asm.FInst{I: isa.Inst{Op: isa.JMP}, Target: ref(p.addJmp)})
			}
		}
		frags[li] = frag
	}

	// Attach the function's jump tables to the hot fragment with re-derived
	// block references.
	for _, jt := range bin.JumpTables {
		if jt.Owner != fn.Name {
			continue
		}
		t := asm.JTable{Name: jt.Name}
		for _, tgt := range jt.Targets {
			bi := cfg.BlockAt(tgt - fn.Addr)
			if bi < 0 {
				return nil, nil, nil, fmt.Errorf("bolt: %s: jump table %s target %#x unmapped", fn.Name, jt.Name, tgt)
			}
			r := ref(bi)
			t.Entries = append(t.Entries, *r)
		}
		frags[0].JTs = append(frags[0].JTs, t)
	}

	// Deduplicate OSR points by old offset (a block start can be both a
	// loop header and a call site; first insertion wins — all candidates
	// for one offset are state-equivalent targets) and sort for binary
	// search.
	seen := make(map[uint64]bool, len(osr))
	pts := osr[:0]
	for _, p := range osr {
		if seen[p.OldOff] {
			continue
		}
		seen[p.OldOff] = true
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].OldOff < pts[j].OldOff })

	return frags[0], frags[1], pts, nil
}

func jumpTableAt(bin *obj.Binary, addr uint64) *obj.JumpTable {
	for _, jt := range bin.JumpTables {
		if jt.Addr == addr {
			return jt
		}
	}
	return nil
}
