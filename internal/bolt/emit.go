package bolt

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/obj"
)

// blockPos locates a CFG block in the emitted layout.
type blockPos struct {
	frag  string
	index int // index of the block's first instruction in the fragment
}

// emitFunc lowers one function with the chosen hot/cold block layout into
// fragments with symbolic operands, performing the branch fixups the new
// adjacency requires:
//
//   - a JMP whose target became the next block is deleted
//   - a JCC whose taken target became the next block is inverted, making
//     the hot edge a fallthrough (the taken-branch reduction of Figure 2)
//   - a block whose fallthrough moved away gains a JMP
//
// Calls and FPTRs are rewritten to symbolic callee names so the linker
// re-resolves them to the final function addresses; jump tables become
// symbolic block references.
func emitFunc(cfg *CFG, hotOrder, coldOrder []int, bin *obj.Binary, peephole bool) (*asm.Fragment, *asm.Fragment, error) {
	fn := cfg.Fn
	if len(hotOrder) == 0 || hotOrder[0] != 0 {
		return nil, nil, fmt.Errorf("bolt: %s: layout must start with the entry block", fn.Name)
	}

	hotName := fn.Name
	coldName := fn.Name + asm.ColdSuffix
	layouts := [2][]int{hotOrder, coldOrder}
	names := [2]string{hotName, coldName}

	// Pass 1: per-block emitted instruction counts given adjacency.
	nextOf := make(map[int]int) // block → physically next block (-1 none)
	fragOf := make(map[int]int) // block → 0 hot / 1 cold
	for li, order := range layouts {
		for i, b := range order {
			fragOf[b] = li
			if i+1 < len(order) {
				nextOf[b] = order[i+1]
			} else {
				nextOf[b] = -1
			}
		}
	}

	type plan struct {
		count   int  // emitted instructions
		dropJmp bool // trailing JMP removed
		invert  bool // trailing JCC inverted (branch to FallTo instead)
		addJmp  int  // block to JMP to after body (-1 none)
	}
	plans := make(map[int]*plan)
	for _, order := range layouts {
		for _, bi := range order {
			b := cfg.Blocks[bi]
			n := len(b.Insts)
			if peephole {
				// Peephole: alignment/padding NOPs are deleted from
				// relocated code (§II-C's "small peephole optimizations").
				n = 0
				for _, in := range b.Insts {
					if in.Op != isa.NOP {
						n++
					}
				}
			}
			p := &plan{count: n, addJmp: -1}
			next := nextOf[bi]
			switch term := b.Terminator(); term.Op {
			case isa.JMP:
				if b.CondTarget == next {
					p.dropJmp = true
					p.count--
				}
			case isa.JCC:
				if b.FallTo < 0 {
					return nil, nil, fmt.Errorf("bolt: %s: JCC without fallthrough", fn.Name)
				}
				switch {
				case b.FallTo == next:
					// keep as-is
				case b.CondTarget == next:
					p.invert = true
				default:
					p.addJmp = b.FallTo
					p.count++
				}
			case isa.RET, isa.HALT, isa.JTBL:
				// no fixup
			default:
				if b.FallTo >= 0 && b.FallTo != next {
					p.addJmp = b.FallTo
					p.count++
				}
			}
			plans[bi] = p
		}
	}

	// Pass 2: block start indexes.
	pos := make(map[int]blockPos)
	for li, order := range layouts {
		idx := 0
		for _, bi := range order {
			pos[bi] = blockPos{frag: names[li], index: idx}
			idx += plans[bi].count
		}
	}
	ref := func(bi int) *asm.Ref {
		p := pos[bi]
		return &asm.Ref{Frag: p.frag, Index: p.index}
	}

	// Pass 3: emit.
	frags := [2]*asm.Fragment{}
	for li, order := range layouts {
		if li == 1 && len(order) == 0 {
			continue
		}
		frag := &asm.Fragment{Name: names[li]}
		for _, bi := range order {
			b := cfg.Blocks[bi]
			p := plans[bi]
			if p.count > 0 {
				frag.Blocks = append(frag.Blocks, len(frag.Insts))
			}
			nInsts := len(b.Insts)
			if p.dropJmp {
				nInsts--
			}
			for j := 0; j < nInsts; j++ {
				in := b.Insts[j]
				if peephole && in.Op == isa.NOP {
					continue
				}
				origPC := b.Addr + uint64(j)*isa.InstBytes
				fi := asm.FInst{I: in}
				isLast := j == len(b.Insts)-1
				switch in.Op {
				case isa.JMP:
					if !isLast {
						return nil, nil, fmt.Errorf("bolt: %s: JMP mid-block", fn.Name)
					}
					fi.Target = ref(b.CondTarget)
				case isa.JCC:
					if !isLast {
						return nil, nil, fmt.Errorf("bolt: %s: JCC mid-block", fn.Name)
					}
					if p.invert {
						fi.I.Cond = in.Cond.Negate()
						fi.Target = ref(b.FallTo)
					} else {
						fi.Target = ref(b.CondTarget)
					}
				case isa.CALL:
					calleeAddr := uint64(int64(origPC) + isa.InstBytes + in.Imm)
					callee := bin.FuncAt(calleeAddr)
					if callee == nil {
						return nil, nil, fmt.Errorf("bolt: %s: call at %#x targets non-entry %#x", fn.Name, origPC, calleeAddr)
					}
					fi.Callee = callee.Name
				case isa.FPTR:
					callee := bin.FuncAt(uint64(in.Imm))
					if callee == nil {
						return nil, nil, fmt.Errorf("bolt: %s: FPTR at %#x targets non-entry %#x", fn.Name, origPC, uint64(in.Imm))
					}
					fi.Callee = callee.Name
				case isa.JTBL:
					jt := jumpTableAt(bin, uint64(in.Imm))
					if jt == nil {
						return nil, nil, fmt.Errorf("bolt: %s: unknown jump table %#x", fn.Name, uint64(in.Imm))
					}
					fi.JT = jt.Name
				}
				frag.Insts = append(frag.Insts, fi)
			}
			if p.addJmp >= 0 {
				frag.Insts = append(frag.Insts, asm.FInst{I: isa.Inst{Op: isa.JMP}, Target: ref(p.addJmp)})
			}
		}
		frags[li] = frag
	}

	// Attach the function's jump tables to the hot fragment with re-derived
	// block references.
	for _, jt := range bin.JumpTables {
		if jt.Owner != fn.Name {
			continue
		}
		t := asm.JTable{Name: jt.Name}
		for _, tgt := range jt.Targets {
			bi := cfg.BlockAt(tgt - fn.Addr)
			if bi < 0 {
				return nil, nil, fmt.Errorf("bolt: %s: jump table %s target %#x unmapped", fn.Name, jt.Name, tgt)
			}
			r := ref(bi)
			t.Entries = append(t.Entries, *r)
		}
		frags[0].JTs = append(frags[0].JTs, t)
	}

	return frags[0], frags[1], nil
}

func jumpTableAt(bin *obj.Binary, addr uint64) *obj.JumpTable {
	for _, jt := range bin.JumpTables {
		if jt.Addr == addr {
			return jt
		}
	}
	return nil
}
