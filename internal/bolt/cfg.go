package bolt

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/obj"
)

// BB is a reconstructed basic block.
type BB struct {
	Index int
	// Off is the block's unified byte offset: offsets in [0, Size) address
	// the function's hot range; offsets >= Size address the exiled cold
	// range of a previously split function (re-BOLT support).
	Off   uint32
	Addr  uint64 // original absolute address of the block start
	Insts []isa.Inst

	// Successors by block index; -1 = none.
	CondTarget int   // JMP/JCC target
	FallTo     int   // fallthrough successor
	JTTargets  []int // JTBL targets

	Count uint64 // execution count (attached from profile)
}

// Terminator returns the block's last instruction.
func (b *BB) Terminator() isa.Inst {
	return b.Insts[len(b.Insts)-1]
}

// CFG is the reconstructed control-flow graph of one function, the MIR
// analog BOLT lifts machine code into. Split functions (hot + cold
// ranges) are decoded as one unified instruction stream, which is what
// lets this implementation re-optimize already-bolted binaries — the
// capability §IV-C reports the real BOLT lacks.
type CFG struct {
	Fn     *obj.Func
	Blocks []*BB
	// HasJumpTable marks functions dispatching through JTBL; BOLT keeps
	// their block layout intact (our simplification of BOLT's jump-table
	// rewriting) but can still move the function.
	HasJumpTable bool

	offs []uint32 // sorted block start (unified) offsets
}

// UnifiedOff maps an absolute address inside the function to its unified
// offset; ok is false when addr is outside the function.
func UnifiedOff(fn *obj.Func, addr uint64) (uint64, bool) {
	if addr >= fn.Addr && addr < fn.Addr+fn.Size {
		return addr - fn.Addr, true
	}
	if fn.ColdSize > 0 && addr >= fn.ColdAddr && addr < fn.ColdAddr+fn.ColdSize {
		return fn.Size + (addr - fn.ColdAddr), true
	}
	return 0, false
}

// BuildCFG disassembles the function from the binary image and
// reconstructs basic blocks: leaders are the entry, branch targets, and
// fallthrough points after control flow, exactly as a binary lifter finds
// them.
func BuildCFG(bin *obj.Binary, fn *obj.Func) (*CFG, error) {
	raw, err := bin.Bytes(fn.Addr, int(fn.Size))
	if err != nil {
		return nil, fmt.Errorf("bolt: reading %s: %w", fn.Name, err)
	}
	insts, err := isa.DecodeAll(raw)
	if err != nil {
		return nil, fmt.Errorf("bolt: decoding %s: %w", fn.Name, err)
	}
	nHot := len(insts)
	if nHot == 0 {
		return nil, fmt.Errorf("bolt: function %s is empty", fn.Name)
	}
	if fn.ColdSize > 0 {
		rawCold, err := bin.Bytes(fn.ColdAddr, int(fn.ColdSize))
		if err != nil {
			return nil, fmt.Errorf("bolt: reading %s cold part: %w", fn.Name, err)
		}
		coldInsts, err := isa.DecodeAll(rawCold)
		if err != nil {
			return nil, fmt.Errorf("bolt: decoding %s cold part: %w", fn.Name, err)
		}
		insts = append(insts, coldInsts...)
	}
	n := len(insts)

	// pcOf maps instruction index to its original absolute address.
	pcOf := func(i int) uint64 {
		if i < nHot {
			return fn.Addr + uint64(i)*isa.InstBytes
		}
		return fn.ColdAddr + uint64(i-nHot)*isa.InstBytes
	}
	// idxFor maps a branch target address to an instruction index.
	idxFor := func(tgt uint64) (int, bool) {
		off, ok := UnifiedOff(fn, tgt)
		if !ok || off%isa.InstBytes != 0 {
			return 0, false
		}
		return int(off) / isa.InstBytes, true
	}

	// Collect jump tables owned by this function.
	var jts []*obj.JumpTable
	for _, jt := range bin.JumpTables {
		if jt.Owner == fn.Name {
			jts = append(jts, jt)
		}
	}

	// Leaders.
	leader := make([]bool, n)
	leader[0] = true
	if nHot < n {
		leader[nHot] = true // cold range start
	}
	branchTargetIdx := make([]int, n)
	for i := range branchTargetIdx {
		branchTargetIdx[i] = -1
	}
	for i, in := range insts {
		switch in.Op {
		case isa.JMP, isa.JCC:
			tgt := uint64(int64(pcOf(i)) + isa.InstBytes + in.Imm)
			ti, ok := idxFor(tgt)
			if !ok {
				return nil, fmt.Errorf("bolt: %s: branch at %#x leaves function", fn.Name, pcOf(i))
			}
			leader[ti] = true
			branchTargetIdx[i] = ti
			if i+1 < n {
				leader[i+1] = true
			}
		case isa.RET, isa.HALT, isa.JTBL:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	for _, jt := range jts {
		for _, tgt := range jt.Targets {
			ti, ok := idxFor(tgt)
			if !ok {
				return nil, fmt.Errorf("bolt: %s: jump table target %#x outside function", fn.Name, tgt)
			}
			leader[ti] = true
		}
	}

	// Blocks.
	cfg := &CFG{Fn: fn, HasJumpTable: len(jts) > 0}
	idxOf := make([]int, n) // inst index → block index
	for i := 0; i < n; {
		start := i
		for i++; i < n && !leader[i]; i++ {
		}
		b := &BB{
			Index:      len(cfg.Blocks),
			Off:        uint32(start * isa.InstBytes),
			Addr:       pcOf(start),
			Insts:      insts[start:i],
			CondTarget: -1,
			FallTo:     -1,
		}
		for j := start; j < i; j++ {
			idxOf[j] = b.Index
		}
		cfg.Blocks = append(cfg.Blocks, b)
		cfg.offs = append(cfg.offs, b.Off)
	}

	// Successors. Physical fallthrough exists only within one range, so a
	// block ending at the hot/cold boundary must terminate (guaranteed by
	// how fragments are emitted); we still guard against it.
	hotColdBoundary := -1
	if nHot < n {
		hotColdBoundary = idxOf[nHot]
	}
	for bi, b := range cfg.Blocks {
		lastIdx := int(b.Off)/isa.InstBytes + len(b.Insts) - 1
		term := b.Terminator()
		fallOK := bi+1 < len(cfg.Blocks) && bi+1 != hotColdBoundary
		switch term.Op {
		case isa.JMP:
			b.CondTarget = idxOf[branchTargetIdx[lastIdx]]
		case isa.JCC:
			b.CondTarget = idxOf[branchTargetIdx[lastIdx]]
			if !fallOK {
				return nil, fmt.Errorf("bolt: %s: conditional branch falls off a code range", fn.Name)
			}
			b.FallTo = bi + 1
		case isa.RET, isa.HALT:
		case isa.JTBL:
			seen := make(map[int]bool)
			for _, jt := range jts {
				if uint64(term.Imm) != jt.Addr {
					continue
				}
				for _, tgt := range jt.Targets {
					ti, _ := idxFor(tgt)
					bidx := idxOf[ti]
					if !seen[bidx] {
						seen[bidx] = true
						b.JTTargets = append(b.JTTargets, bidx)
					}
				}
			}
		default:
			if !fallOK {
				return nil, fmt.Errorf("bolt: %s: code range ends without terminator", fn.Name)
			}
			b.FallTo = bi + 1
		}
	}
	return cfg, nil
}

// BlockAt maps a unified byte offset to its block index, or -1.
func (c *CFG) BlockAt(off uint64) int {
	i := sort.Search(len(c.offs), func(i int) bool { return uint64(c.offs[i]) > off })
	if i == 0 {
		return -1
	}
	b := c.Blocks[i-1]
	if off >= uint64(b.Off)+uint64(len(b.Insts))*isa.InstBytes {
		return -1
	}
	return i - 1
}

// AttachProfile copies block counts from a function profile.
func (c *CFG) AttachProfile(fp *FuncProfile) {
	if fp == nil {
		return
	}
	for bi, cnt := range fp.BlockCount {
		if bi >= 0 && bi < len(c.Blocks) {
			c.Blocks[bi].Count += cnt
		}
	}
}
