package bolt

import (
	"sort"
	"testing"
)

// chainCFG builds a synthetic CFG shape for reorder tests: blocks only
// need counts and successor links.
func chainCFG(n int) *CFG {
	cfg := &CFG{Blocks: make([]*BB, n)}
	for i := 0; i < n; i++ {
		cfg.Blocks[i] = &BB{Index: i, CondTarget: -1, FallTo: -1}
	}
	return cfg
}

func profWithEdges(edges map[[2]int]uint64, counts map[int]uint64) *FuncProfile {
	fp := newFuncProfile(0)
	fp.Edge = edges
	fp.BlockCount = counts
	return fp
}

func isPermutation(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order has %d blocks, want %d", len(order), n)
	}
	seen := append([]int(nil), order...)
	sort.Ints(seen)
	for i, v := range seen {
		if v != i {
			t.Fatalf("order %v is not a permutation of 0..%d", order, n-1)
		}
	}
}

func TestReorderBlocksChainsHotPath(t *testing.T) {
	// 0 → (hot) 2 → (hot) 4, with 1 and 3 cold fallthroughs.
	cfg := chainCFG(5)
	fp := profWithEdges(map[[2]int]uint64{
		{0, 2}: 1000,
		{2, 4}: 900,
		{0, 1}: 5,
		{2, 3}: 4,
	}, map[int]uint64{0: 1000, 2: 1000, 4: 900, 1: 5, 3: 4})
	cfg.AttachProfile(fp)
	order := ReorderBlocks(cfg, fp)
	isPermutation(t, order, 5)
	if order[0] != 0 {
		t.Fatalf("entry block not first: %v", order)
	}
	// The hot chain 0,2,4 must be contiguous in that order.
	pos := map[int]int{}
	for i, b := range order {
		pos[b] = i
	}
	if pos[2] != pos[0]+1 || pos[4] != pos[2]+1 {
		t.Errorf("hot chain not contiguous: %v", order)
	}
}

func TestReorderBlocksEntryStaysFirst(t *testing.T) {
	// A heavy back edge into the entry must not splice block 0 mid-chain.
	cfg := chainCFG(3)
	fp := profWithEdges(map[[2]int]uint64{
		{2, 0}: 5000, // loop back edge
		{0, 1}: 100,
		{1, 2}: 100,
	}, map[int]uint64{0: 5000, 1: 100, 2: 100})
	cfg.AttachProfile(fp)
	order := ReorderBlocks(cfg, fp)
	isPermutation(t, order, 3)
	if order[0] != 0 {
		t.Errorf("entry displaced: %v", order)
	}
}

func TestReorderBlocksNoProfileIdentity(t *testing.T) {
	cfg := chainCFG(4)
	order := ReorderBlocks(cfg, nil)
	for i, b := range order {
		if b != i {
			t.Fatalf("nil profile should give identity: %v", order)
		}
	}
}

func TestSplitBlocksExilesColdKeepsEntry(t *testing.T) {
	cfg := chainCFG(5)
	cfg.Blocks[1].Count = 0
	cfg.Blocks[3].Count = 0
	cfg.Blocks[0].Count = 0 // entry cold too — must stay hot anyway
	cfg.Blocks[2].Count = 10
	cfg.Blocks[4].Count = 10
	hot, cold := SplitBlocks(cfg, []int{0, 2, 4, 1, 3})
	if len(hot) != 3 || hot[0] != 0 {
		t.Errorf("hot = %v", hot)
	}
	if len(cold) != 2 {
		t.Errorf("cold = %v", cold)
	}
	// Nothing cold → no split.
	for _, b := range cfg.Blocks {
		b.Count = 1
	}
	hot, cold = SplitBlocks(cfg, identityOrder(5))
	if len(cold) != 0 || len(hot) != 5 {
		t.Error("all-hot function should not split")
	}
}

func TestOrderFunctionsDeterministic(t *testing.T) {
	prof := &Profile{Funcs: map[uint64]*FuncProfile{}}
	hot := map[uint64]bool{}
	sizes := map[uint64]uint64{}
	for i := uint64(0); i < 20; i++ {
		entry := 0x400000 + i*0x100
		fp := newFuncProfile(entry)
		fp.Records = 100 - i
		fp.BlockCount[0] = 100 - i
		if i > 0 {
			fp.Calls[0x400000+(i-1)*0x100] = i // call the previous one
		}
		prof.Funcs[entry] = fp
		hot[entry] = true
		sizes[entry] = 0x100
	}
	for _, algo := range []FuncOrderAlgo{OrderC3, OrderPH, OrderNone} {
		a := OrderFunctions(prof, hot, sizes, algo)
		b := OrderFunctions(prof, hot, sizes, algo)
		if len(a) != 20 || len(b) != 20 {
			t.Fatalf("%s: wrong length", algo)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: non-deterministic order", algo)
			}
		}
	}
}

func TestC3PutsHotCallerBeforeCallee(t *testing.T) {
	prof := &Profile{Funcs: map[uint64]*FuncProfile{}}
	caller, callee := uint64(0x402000), uint64(0x401000) // callee earlier in memory
	fpCaller := newFuncProfile(caller)
	fpCaller.Records = 100
	fpCaller.BlockCount[0] = 100
	fpCaller.Calls[callee] = 500
	fpCallee := newFuncProfile(callee)
	fpCallee.Records = 90
	fpCallee.BlockCount[0] = 90
	prof.Funcs[caller] = fpCaller
	prof.Funcs[callee] = fpCallee
	hot := map[uint64]bool{caller: true, callee: true}
	sizes := map[uint64]uint64{caller: 64, callee: 64}
	order := OrderFunctions(prof, hot, sizes, OrderC3)
	if len(order) != 2 || order[0] != caller || order[1] != callee {
		t.Errorf("C3 order = %#x, want caller %#x before callee %#x", order, caller, callee)
	}
}
