package bolt

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
)

// toyProgram builds a program with a strongly biased hot path:
// main loops `iters` times calling hotA; hotA's condition is true 15/16 of
// the time (then-path calls hotB), else-path calls coldC. A checksum lands
// in global "out".
func toyProgram(iters int64) (*build.ProgramBuilder, string) {
	p := build.NewProgram("toy")
	p.SetNoJumpTables(true)
	out := p.Global("out", 8)

	hotB := p.Func("hotB")
	hotB.MulI(isa.R0, isa.R0, 3)
	hotB.AddI(isa.R0, isa.R0, 1)
	hotB.Ret()

	coldC := p.Func("coldC")
	coldC.PadCode(40) // cold bulk
	coldC.AddI(isa.R0, isa.R0, 1000)
	coldC.Ret()

	// deadF is never called: it must stay pinned in .bolt.org.text.
	deadF := p.Func("deadF")
	deadF.PadCode(20)
	deadF.Ret()

	hotA := p.Func("hotA")
	hotA.Prologue(16)
	// Never-taken error path: guaranteed cold blocks for splitting.
	hotA.CmpI(isa.R0, -1)
	hotA.If(isa.EQ, func() {
		hotA.PadCode(30)
		hotA.Call("deadF")
		hotA.EpilogueRet()
	}, nil)
	hotA.AndI(isa.R1, isa.R0, 15)
	hotA.CmpI(isa.R1, 15)
	hotA.If(isa.NE, func() { // hot path (15/16)
		hotA.Call("hotB")
	}, func() { // cold path
		hotA.Call("coldC")
	})
	hotA.EpilogueRet()

	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R7, 0) // i
	m.MovI(isa.R8, 0) // acc
	m.While(func() { m.CmpI(isa.R7, iters) }, isa.LT, func() {
		m.Mov(isa.R0, isa.R7)
		m.Call("hotA")
		m.Add(isa.R8, isa.R8, isa.R0)
		m.AddI(isa.R7, isa.R7, 1)
	})
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R8)
	m.Halt()
	p.SetEntry("main")
	return p, out
}

// runToCompletion loads and runs a binary, returning the word at outAddr.
func runToCompletion(t *testing.T, bin *obj.Binary, outAddr uint64) uint64 {
	t.Helper()
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatalf("%s faulted: %v", bin.Name, err)
	}
	if !pr.Halted() {
		t.Fatalf("%s did not halt", bin.Name)
	}
	return pr.Mem.ReadWord(outAddr)
}

// profileBinary runs the binary under perf and converts the profile.
func profileBinary(t *testing.T, bin *obj.Binary, seconds float64) *Profile {
	t.Helper()
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := perf.Record(pr, seconds, perf.RecorderOptions{PeriodCycles: 5000})
	if len(raw.Samples) == 0 {
		t.Fatal("no LBR samples collected")
	}
	prof, err := ConvertProfile(raw, bin)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func buildToy(t *testing.T, iters int64) (*obj.Binary, uint64) {
	t.Helper()
	p, _ := toyProgram(iters)
	prog, err := p.Program()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return bin, asm.DataSymbols(prog, asm.Options{})["out"]
}

func TestOptimizePreservesSemantics(t *testing.T) {
	bin, outAddr := buildToy(t, 30000)
	want := runToCompletion(t, bin, outAddr)

	prof := profileBinary(t, bin, 0.002)
	res, err := Optimize(bin, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Binary.Validate(); err != nil {
		t.Fatal(err)
	}
	got := runToCompletion(t, res.Binary, outAddr)
	if got != want {
		t.Errorf("bolted output %d != original %d", got, want)
	}
}

func TestOptimizeLayoutFacts(t *testing.T) {
	bin, _ := buildToy(t, 30000)
	prof := profileBinary(t, bin, 0.002)
	res, err := Optimize(bin, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ob := res.Binary

	if !ob.Bolted {
		t.Error("output not marked bolted")
	}
	if res.FuncsReordered < 3 { // main, hotA, hotB at least
		t.Errorf("only %d functions reordered", res.FuncsReordered)
	}

	// Hot functions moved to the new text base; cold ones pinned.
	main := ob.FuncByName("main")
	if main == nil || main.Addr < DefaultTextBase {
		t.Errorf("main not moved: %+v", main)
	}
	hotA := ob.FuncByName("hotA")
	if hotA == nil || hotA.Addr < DefaultTextBase || !hotA.Optimized {
		t.Errorf("hotA not moved/optimized: %+v", hotA)
	}

	// AddrMap maps original entries to new ones.
	origMain := bin.FuncByName("main")
	if ob.AddrMap[origMain.Addr] != main.Addr {
		t.Error("AddrMap wrong for main")
	}

	// hotA was split: its cold-path call to coldC is in the cold section.
	if hotA.ColdSize == 0 {
		t.Error("hotA has no cold part despite a cold else-branch")
	}
	if cs := ob.Section(obj.SecColdText); cs == nil {
		t.Error("no cold text section")
	}

	// Original section preserved as .bolt.org.text for pinned functions.
	if ob.Section(obj.SecOrgText) == nil {
		t.Error("no org text section")
	}

	// The hot path in hotA is now fallthrough: its hot fragment should
	// contain no taken unconditional JMP back into itself for the common
	// case. Weak check: hot part shrank relative to the original (cold
	// blocks exiled).
	origA := bin.FuncByName("hotA")
	if hotA.Size >= origA.Size {
		t.Errorf("hotA hot part %d >= original %d", hotA.Size, origA.Size)
	}
}

func TestC3OrdersCallerBeforeCallee(t *testing.T) {
	bin, _ := buildToy(t, 30000)
	prof := profileBinary(t, bin, 0.002)
	res, err := Optimize(bin, prof, Options{FuncOrder: OrderC3})
	if err != nil {
		t.Fatal(err)
	}
	ob := res.Binary
	main, hotA, hotB := ob.FuncByName("main"), ob.FuncByName("hotA"), ob.FuncByName("hotB")
	if !(main.Addr < hotA.Addr && hotA.Addr < hotB.Addr) {
		t.Errorf("C3 order main=%#x hotA=%#x hotB=%#x; want caller before callee",
			main.Addr, hotA.Addr, hotB.Addr)
	}
}

func TestReBoltRefusedWithoutOptIn(t *testing.T) {
	bin, _ := buildToy(t, 30000)
	prof := profileBinary(t, bin, 0.002)
	res, err := Optimize(bin, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(res.Binary, prof, Options{}); err != ErrAlreadyBolted {
		t.Errorf("re-bolt error = %v, want ErrAlreadyBolted", err)
	}
}

func TestReBoltWithOptIn(t *testing.T) {
	bin, outAddr := buildToy(t, 30000)
	want := runToCompletion(t, bin, outAddr)
	prof := profileBinary(t, bin, 0.002)
	res, err := Optimize(bin, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-profile the bolted binary and optimize again at a fresh base.
	prof2 := profileBinary(t, res.Binary, 0.002)
	res2, err := Optimize(res.Binary, prof2, Options{AllowReBolt: true, TextBase: 0x3000_0000})
	if err != nil {
		t.Fatal(err)
	}
	got := runToCompletion(t, res2.Binary, outAddr)
	if got != want {
		t.Errorf("re-bolted output %d != original %d", got, want)
	}
}

func TestAblationOptions(t *testing.T) {
	bin, outAddr := buildToy(t, 30000)
	want := runToCompletion(t, bin, outAddr)
	prof := profileBinary(t, bin, 0.002)
	for _, opts := range []Options{
		{NoReorderBlocks: true},
		{NoSplit: true},
		{FuncOrder: OrderPH},
		{FuncOrder: OrderNone},
	} {
		res, err := Optimize(bin, prof, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if got := runToCompletion(t, res.Binary, outAddr); got != want {
			t.Errorf("%+v: output %d != %d", opts, got, want)
		}
	}
}

func TestJumpTableFunctionsPreserved(t *testing.T) {
	// A program using a jump table: the function is moved but its block
	// layout (and table) must stay consistent.
	p := build.NewProgram("jt")
	out := p.Global("out", 8)
	_ = out
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R7, 0)
	m.MovI(isa.R8, 0)
	m.While(func() { m.CmpI(isa.R7, 20000) }, isa.LT, func() {
		m.AndI(isa.R1, isa.R7, 3)
		m.Switch(isa.R1, []func(){
			func() { m.AddI(isa.R8, isa.R8, 1) },
			func() { m.AddI(isa.R8, isa.R8, 3) },
			func() { m.AddI(isa.R8, isa.R8, 5) },
			func() { m.AddI(isa.R8, isa.R8, 7) },
		}, func() { m.AddI(isa.R8, isa.R8, 100) })
		m.AddI(isa.R7, isa.R7, 1)
	})
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R8)
	m.Halt()
	p.SetEntry("main")
	prog, err := p.Program()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outAddr := asm.DataSymbols(prog, asm.Options{})["out"]
	want := runToCompletion(t, bin, outAddr)

	prof := profileBinary(t, bin, 0.002)
	res, err := Optimize(bin, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := runToCompletion(t, res.Binary, outAddr); got != want {
		t.Errorf("jump-table program: bolted %d != original %d", got, want)
	}
}

func TestProfileShapesMatchBias(t *testing.T) {
	bin, _ := buildToy(t, 30000)
	prof := profileBinary(t, bin, 0.002)
	hotB := bin.FuncByName("hotB")
	coldC := bin.FuncByName("coldC")
	fpB, fpC := prof.Funcs[hotB.Addr], prof.Funcs[coldC.Addr]
	if fpB == nil {
		t.Fatal("hotB not profiled")
	}
	wB := fpB.Weight()
	var wC uint64
	if fpC != nil {
		wC = fpC.Weight()
	}
	if wB < wC*4 {
		t.Errorf("profile weights: hotB=%d coldC=%d; expected strong bias", wB, wC)
	}
}

func TestPerfRecorderOverheadCharged(t *testing.T) {
	bin, _ := buildToy(t, 1<<40)
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunFor(0.001)
	ipcBefore := pr.Stats().IPC()
	before := pr.Stats()
	raw := perf.Record(pr, 0.002, perf.RecorderOptions{})
	during := pr.Stats().Sub(before)
	if raw.Seconds <= 0 || len(raw.Samples) == 0 {
		t.Fatal("recording produced nothing")
	}
	if during.IPC() >= ipcBefore {
		t.Errorf("profiling overhead not visible: IPC %.3f -> %.3f", ipcBefore, during.IPC())
	}
}

// TestPeepholeShrinksHotCode: padding NOPs vanish from relocated code but
// semantics hold; the ablation switch restores them.
func TestPeepholeShrinksHotCode(t *testing.T) {
	bin, outAddr := buildToy(t, 30000)
	want := runToCompletion(t, bin, outAddr)
	prof := profileBinary(t, bin, 0.002)

	with, err := Optimize(bin, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Optimize(bin, prof, Options{NoPeephole: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.NewTextBytes >= without.NewTextBytes {
		t.Errorf("peephole did not shrink code: %d vs %d bytes",
			with.NewTextBytes, without.NewTextBytes)
	}
	if got := runToCompletion(t, with.Binary, outAddr); got != want {
		t.Errorf("peephole output %d != original %d", got, want)
	}
	// No NOPs survive in moved functions.
	for _, f := range with.Binary.Funcs {
		if !f.Optimized {
			continue
		}
		raw, err := with.Binary.Bytes(f.Addr, int(f.Size))
		if err != nil {
			t.Fatal(err)
		}
		insts, err := isa.DecodeAll(raw)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range insts {
			if in.Op == isa.NOP {
				t.Fatalf("NOP survived peephole in %s", f.Name)
			}
		}
	}
}
