package bolt

import "sort"

// ReorderBlocks computes a new block order for a profiled function using
// bottom-up chain merging (the Pettis-Hansen / ExtTSP family, §II-B):
// process CFG edges hottest-first, gluing the chain ending in the edge's
// source to the chain starting with its destination, so hot successors
// become fallthroughs. The entry block's chain is placed first; remaining
// chains follow by descending heat; completely cold blocks sink to the
// end (where SplitBlocks can exile them).
func ReorderBlocks(cfg *CFG, fp *FuncProfile) []int {
	n := len(cfg.Blocks)
	if n <= 2 || fp == nil || len(fp.Edge) == 0 {
		return identityOrder(n)
	}

	type edge struct {
		from, to int
		w        uint64
	}
	edges := make([]edge, 0, len(fp.Edge))
	for k, w := range fp.Edge {
		if k[0] == k[1] || w == 0 {
			continue
		}
		if k[0] < 0 || k[0] >= n || k[1] < 0 || k[1] >= n {
			continue
		}
		edges = append(edges, edge{k[0], k[1], w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})

	// Chains as linked structures.
	chainOf := make([]int, n) // block → chain id
	head := make([]int, n)    // chain id → first block
	tail := make([]int, n)    // chain id → last block
	next := make([]int, n)    // block → next block in its chain
	for i := 0; i < n; i++ {
		chainOf[i], head[i], tail[i] = i, i, i
		next[i] = -1
	}

	for _, e := range edges {
		ca, cb := chainOf[e.from], chainOf[e.to]
		if ca == cb || tail[ca] != e.from || head[cb] != e.to {
			continue
		}
		// Entry block must stay a chain head.
		if e.to == 0 {
			continue
		}
		next[e.from] = e.to
		tail[ca] = tail[cb]
		for b := e.to; b != -1; b = next[b] {
			chainOf[b] = ca
		}
	}

	// Gather chains with their heat.
	type chain struct {
		id     int
		blocks []int
		heat   uint64
	}
	var chains []chain
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		c := chainOf[i]
		if seen[c] {
			continue
		}
		seen[c] = true
		var blocks []int
		var heat uint64
		for b := head[c]; b != -1; b = next[b] {
			blocks = append(blocks, b)
			heat += cfg.Blocks[b].Count
		}
		chains = append(chains, chain{id: c, blocks: blocks, heat: heat})
	}

	entryChain := chainOf[0]
	sort.SliceStable(chains, func(i, j int) bool {
		if (chains[i].id == entryChain) != (chains[j].id == entryChain) {
			return chains[i].id == entryChain
		}
		return chains[i].heat > chains[j].heat
	})

	order := make([]int, 0, n)
	for _, c := range chains {
		order = append(order, c.blocks...)
	}
	return order
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// SplitBlocks partitions an order into hot and cold parts: blocks with a
// zero execution count (other than the entry) are exiled, implementing
// BOLT's hot/cold function splitting (§II-D). Returns (hot, cold) in
// layout order; cold is empty when nothing can be split.
func SplitBlocks(cfg *CFG, order []int) (hot, cold []int) {
	for _, bi := range order {
		if bi != 0 && cfg.Blocks[bi].Count == 0 {
			cold = append(cold, bi)
		} else {
			hot = append(hot, bi)
		}
	}
	if len(cold) == 0 {
		return order, nil
	}
	return hot, cold
}
