// Package bolt is the offline post-link optimizer: the BOLT analog
// (§II-D). It converts raw LBR profiles to block-level profiles
// (perf2bolt), decodes a binary's functions back into CFGs, reorders
// basic blocks, splits hot/cold code, reorders functions (Pettis-Hansen
// or C3), and emits a new binary whose optimized .text lives at a higher
// address range while unprofiled functions stay pinned at their original
// addresses in .bolt.org.text.
package bolt

import (
	"fmt"

	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/trace"
)

// Profile is the block-level profile perf2bolt produces.
type Profile struct {
	// Funcs is keyed by original function entry address.
	Funcs map[uint64]*FuncProfile
	// TotalBranches is the number of LBR records aggregated.
	TotalBranches uint64
}

// TraceAttrs summarizes the aggregation as span attributes for the
// perf2bolt stage span.
func (p *Profile) TraceAttrs() []trace.Attr {
	return []trace.Attr{
		trace.Int("profiled_funcs", len(p.Funcs)),
		trace.Int("total_branches", int(p.TotalBranches)),
	}
}

// FuncProfile is the profile of one function, block indexes referring to
// the function's reconstructed CFG.
type FuncProfile struct {
	Entry uint64
	// BlockCount estimates per-block execution counts.
	BlockCount map[int]uint64
	// Edge counts control-flow edges between blocks (taken branches and
	// observed fallthroughs combined).
	Edge map[[2]int]uint64
	// Calls counts outgoing calls by callee entry address.
	Calls map[uint64]uint64
	// Records is the number of LBR records that touched this function.
	Records uint64
}

func newFuncProfile(entry uint64) *FuncProfile {
	return &FuncProfile{
		Entry:      entry,
		BlockCount: make(map[int]uint64),
		Edge:       make(map[[2]int]uint64),
		Calls:      make(map[uint64]uint64),
	}
}

// Weight returns the function's total profile mass.
func (fp *FuncProfile) Weight() uint64 {
	var w uint64
	for _, c := range fp.BlockCount {
		w += c
	}
	if w == 0 {
		w = fp.Records
	}
	return w
}

// ConvertProfile is the perf2bolt analog: it aggregates raw LBR samples
// against the binary into block-level per-function profiles. Like the
// real tool it does work proportional to the sampled control flow — the
// fallthrough path between consecutive LBR records is re-walked over the
// decoded CFG (this is why perf2bolt dominates the pipeline cost in the
// paper's Table II).
func ConvertProfile(raw *perf.RawProfile, bin *obj.Binary) (*Profile, error) {
	p := &Profile{Funcs: make(map[uint64]*FuncProfile)}
	cfgs := make(map[uint64]*CFG)

	cfgFor := func(f *obj.Func) *CFG {
		if c, ok := cfgs[f.Addr]; ok {
			return c
		}
		c, err := BuildCFG(bin, f)
		if err != nil {
			// Functions that cannot be decoded are skipped, as perf2bolt
			// skips functions it cannot disassemble.
			c = nil
		}
		cfgs[f.Addr] = c
		return c
	}
	profFor := func(entry uint64) *FuncProfile {
		fp, ok := p.Funcs[entry]
		if !ok {
			fp = newFuncProfile(entry)
			p.Funcs[entry] = fp
		}
		return fp
	}

	// resolve symbolizes an address: first against the binary's current
	// function ranges, then against OrgRanges (the BAT analog) for code
	// still executing in a function's previous home. isOrg marks the
	// latter: such samples are attributable at function granularity only,
	// since the old block layout differs from the current one.
	resolve := func(addr uint64) (fn *obj.Func, isOrg, isEntry bool) {
		if f, off, cold := bin.Lookup(addr); f != nil {
			return f, false, off == 0 && !cold
		}
		if r, ok := bin.OrgLookup(addr); ok {
			if f := bin.FuncByName(r.Name); f != nil {
				return f, true, addr == r.Entry
			}
		}
		return nil, false, false
	}

	for _, sample := range raw.Samples {
		recs := sample.Records
		for i, r := range recs {
			p.TotalBranches++
			fromFn, fromOrg, _ := resolve(r.From)
			toFn, toOrg, toEntry := resolve(r.To)
			if fromFn != nil {
				profFor(fromFn.Addr).Records++
			}
			switch {
			case fromFn == nil || toFn == nil:
				// Branch in unknown code (library/injected): skip.
			case fromFn == toFn && !fromOrg && !toOrg:
				cfg := cfgFor(fromFn)
				if cfg != nil {
					fromOff, ok1 := UnifiedOff(fromFn, r.From)
					toOff, ok2 := UnifiedOff(fromFn, r.To)
					if ok1 && ok2 {
						fb := cfg.BlockAt(fromOff)
						tb := cfg.BlockAt(toOff)
						if fb >= 0 && tb >= 0 {
							fp := profFor(fromFn.Addr)
							fp.Edge[[2]int{fb, tb}]++
							fp.BlockCount[tb]++
						}
					}
				}
			case toEntry && fromFn != toFn:
				// Call (or tail transfer) to g's entry (current or old home
				// — the call count belongs to the function either way).
				profFor(fromFn.Addr).Calls[toFn.Addr]++
				profFor(toFn.Addr).BlockCount[0]++
			default:
				// Return into the middle of the caller, an exotic transfer,
				// or a same-function branch in an old (org) home whose
				// block layout we cannot map; attribute a touch.
				profFor(toFn.Addr).Records++
			}

			// Fallthrough inference: between this record's target and the
			// next record's source the program executed sequentially. Only
			// meaningful against the current layout (org homes differ).
			if i+1 >= len(recs) {
				continue
			}
			nf := recs[i+1].From
			if toFn == nil || toOrg {
				continue
			}
			endFn, _, _ := bin.Lookup(nf)
			if endFn != toFn {
				continue
			}
			cfg := cfgFor(toFn)
			if cfg == nil {
				continue
			}
			startOff, ok1 := UnifiedOff(toFn, r.To)
			endOff, ok2 := UnifiedOff(toFn, nf)
			if !ok1 || !ok2 || endOff < startOff {
				continue
			}
			start := cfg.BlockAt(startOff)
			end := cfg.BlockAt(endOff)
			if start < 0 || end < 0 {
				continue
			}
			fp := profFor(toFn.Addr)
			// Walk the fallthrough chain from start to end.
			for b, steps := start, 0; b >= 0 && steps < len(cfg.Blocks)+1; b, steps = cfg.Blocks[b].FallTo, steps+1 {
				fp.BlockCount[b]++
				if b == end {
					break
				}
				if next := cfg.Blocks[b].FallTo; next >= 0 {
					fp.Edge[[2]int{b, next}]++
				}
			}
		}
	}
	return p, nil
}

// HotFunctions returns the entry addresses of functions whose profile has
// at least minRecords records, i.e. the set BOLT will move and optimize.
func (p *Profile) HotFunctions(minRecords uint64) map[uint64]bool {
	hot := make(map[uint64]bool)
	for entry, fp := range p.Funcs {
		if fp.Records >= minRecords {
			hot[entry] = true
		}
	}
	return hot
}

func (p *Profile) String() string {
	return fmt.Sprintf("bolt profile: %d branches over %d functions", p.TotalBranches, len(p.Funcs))
}
