package bolt

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/progtest"
)

// TestOptimizeSemanticsProperty is the semantic-equivalence property test:
// for random programs (random call DAGs, data-dependent branches, virtual
// calls, function pointers, optional jump tables), the BOLTed binary must
// compute exactly the checksum the original computes.
func TestOptimizeSemanticsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			prog, outAddr, err := progtest.Generate(progtest.Options{
				Funcs:      10,
				MainIters:  4000,
				Seed:       seed,
				JumpTables: seed%2 == 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			bin, err := asm.Assemble(prog, asm.Options{})
			if err != nil {
				t.Fatal(err)
			}

			want := runBinary(t, bin, outAddr)

			// Profile a separate instance.
			pr, err := proc.Load(bin, proc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			raw := perf.Record(pr, 0.002, perf.RecorderOptions{PeriodCycles: 4000})
			prof, err := ConvertProfile(raw, bin)
			if err != nil {
				t.Fatal(err)
			}
			if len(prof.Funcs) == 0 {
				t.Skip("no profile collected (program too short)")
			}

			res, err := Optimize(bin, prof, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Binary.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := runBinary(t, res.Binary, outAddr); got != want {
				t.Errorf("seed %d: bolted checksum %d != original %d", seed, got, want)
			}

			// And again with every ablation toggled, PH ordering.
			res2, err := Optimize(bin, prof, Options{FuncOrder: OrderPH, NoSplit: true})
			if err != nil {
				t.Fatal(err)
			}
			if got := runBinary(t, res2.Binary, outAddr); got != want {
				t.Errorf("seed %d: PH/no-split checksum %d != original %d", seed, got, want)
			}
		})
	}
}

func runBinary(t *testing.T, bin *obj.Binary, outAddr uint64) uint64 {
	t.Helper()
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatalf("%s faulted: %v", bin.Name, err)
	}
	return pr.Mem.ReadWord(outAddr)
}
