package bolt

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/obj"
	"repro/internal/trace"
)

// DefaultTextBase is where the optimized .text is linked — a disjoint,
// higher address range than any original section, so injected code never
// collides with C0 (Figure 4b).
const DefaultTextBase = 0x2000_0000

// ErrAlreadyBolted is returned when the input binary was already produced
// by this optimizer. Like the real BOLT (§IV-C), re-optimizing requires an
// explicit opt-in (Options.AllowReBolt, our implementation of the paper's
// planned extension).
var ErrAlreadyBolted = errors.New("bolt: input binary is already bolted (set AllowReBolt to re-optimize)")

// Options configures an optimization run.
type Options struct {
	// TextBase is the link base of the new hot .text section.
	TextBase uint64
	// FuncOrder selects the function layout algorithm (default C3).
	FuncOrder FuncOrderAlgo
	// NoReorderBlocks disables basic-block reordering (ablation).
	NoReorderBlocks bool
	// NoSplit disables hot/cold splitting (ablation).
	NoSplit bool
	// NoPeephole disables NOP/padding elimination in moved functions
	// (ablation).
	NoPeephole bool
	// MinRecords is the minimum LBR records for a function to be treated
	// as hot (moved + optimized). Functions below stay pinned.
	MinRecords uint64
	// AllowReBolt permits optimizing an already-bolted binary: the
	// continuous-optimization enabler the paper leaves as future work.
	AllowReBolt bool
	// PinBase overrides where unmoved functions are pinned, keyed by
	// function name. The OCOLOS controller uses it during continuous
	// optimization to pin functions that fell cold back at their C0
	// addresses — their C_i homes are about to be garbage-collected, while
	// C0 is immortal (design principle #1).
	PinBase map[string]uint64

	// ROBase relocates the emitted .rodata (jump tables). The default (0)
	// reuses the input binary's rodata base, which is right for offline
	// use; the OCOLOS controller instead emits each version's tables into
	// that version's region so the injected code never aliases the live
	// process's original tables — the "extra support from BOLT" §IV-D says
	// would lift the jump-table restriction.
	ROBase uint64
}

func (o *Options) defaults() {
	if o.TextBase == 0 {
		o.TextBase = DefaultTextBase
	}
	if o.FuncOrder == "" {
		o.FuncOrder = OrderC3
	}
	if o.MinRecords == 0 {
		o.MinRecords = 8
	}
}

// Layout records the decisions the optimizer made: the hot-function
// layout order and each hot function's basic-block order, keyed by the
// input binary's entry addresses. The emitted Binary already embodies
// these decisions; carrying them separately is what lets a fleet-wide
// layout cache store, compare, and audit "the layout" as a value
// independent of the bytes it was linked into.
type Layout struct {
	// FuncOrder is the hot-function layout order (input entry addresses),
	// as chosen by the function-ordering algorithm.
	FuncOrder []uint64
	// BlockOrder maps each reordered function's input entry address to
	// its chosen basic-block order (indices into the input CFG's blocks,
	// before hot/cold splitting).
	BlockOrder map[uint64][]int
}

// Result carries the optimized binary plus the statistics Table I reports.
type Result struct {
	Binary *obj.Binary
	// Layout is the decision record behind Binary: function order and
	// per-function block orders.
	Layout *Layout
	// FuncsReordered is the number of functions moved to the new .text.
	FuncsReordered int
	// FuncsSplit is how many of them had cold blocks exiled.
	FuncsSplit int
	// NewTextBytes is the size of the injected code (hot + cold sections).
	NewTextBytes uint64
}

// TraceAttrs summarizes the layout result as span attributes, so every
// round's bolt span records what the optimizer actually moved.
func (r *Result) TraceAttrs() []trace.Attr {
	return []trace.Attr{
		trace.Int("funcs_reordered", r.FuncsReordered),
		trace.Int("funcs_split", r.FuncsSplit),
		trace.Int("new_text_bytes", int(r.NewTextBytes)),
	}
}

// Optimize runs the full pipeline: reconstruct CFGs, attach the profile,
// reorder blocks, split hot/cold, reorder functions, and re-link. The
// input binary is not modified.
func Optimize(bin *obj.Binary, prof *Profile, opts Options) (*Result, error) {
	opts.defaults()
	if bin.Bolted && !opts.AllowReBolt {
		return nil, ErrAlreadyBolted
	}
	if prof == nil || len(prof.Funcs) == 0 {
		return nil, fmt.Errorf("bolt: empty profile")
	}

	// Hot set: profiled functions that decode cleanly.
	hot := prof.HotFunctions(opts.MinRecords)
	cfgs := make(map[uint64]*CFG, len(bin.Funcs))
	for _, fn := range bin.Funcs {
		cfg, err := BuildCFG(bin, fn)
		if err != nil {
			return nil, err
		}
		cfg.AttachProfile(prof.Funcs[fn.Addr])
		cfgs[fn.Addr] = cfg
	}

	sizeOf := make(map[uint64]uint64, len(hot))
	for entry := range hot {
		if fn := bin.FuncAt(entry); fn != nil {
			sizeOf[entry] = fn.Size
		} else {
			delete(hot, entry) // profile mentions unknown code
		}
	}

	hotOrder := OrderFunctions(prof, hot, sizeOf, opts.FuncOrder)

	res := &Result{Layout: &Layout{
		FuncOrder:  hotOrder,
		BlockOrder: make(map[uint64][]int, len(hotOrder)),
	}}
	var hotFrags, coldFrags []*asm.Fragment
	osrMap := make(map[uint64][]obj.OSRPoint, len(hotOrder))
	for _, entry := range hotOrder {
		cfg := cfgs[entry]
		fp := prof.Funcs[entry]
		var order []int
		if opts.NoReorderBlocks || cfg.HasJumpTable {
			order = identityOrder(len(cfg.Blocks))
		} else {
			order = ReorderBlocks(cfg, fp)
		}
		res.Layout.BlockOrder[entry] = order
		hotBlocks, coldBlocks := order, []int(nil)
		if !opts.NoSplit && !cfg.HasJumpTable {
			hotBlocks, coldBlocks = SplitBlocks(cfg, order)
		}
		hf, cf, pts, err := emitFunc(cfg, hotBlocks, coldBlocks, bin, !opts.NoPeephole)
		if err != nil {
			return nil, err
		}
		osrMap[entry] = pts
		hotFrags = append(hotFrags, hf)
		if cf != nil {
			coldFrags = append(coldFrags, cf)
			res.FuncsSplit++
		}
		res.FuncsReordered++
	}

	// Unmoved functions: re-emit in place (identity layout) so their calls
	// resolve to the new locations of moved callees.
	var pinned []asm.Placement
	for _, fn := range bin.Funcs {
		if hot[fn.Addr] {
			continue
		}
		cfg := cfgs[fn.Addr]
		hf, _, _, err := emitFunc(cfg, identityOrder(len(cfg.Blocks)), nil, bin, false)
		if err != nil {
			return nil, err
		}
		pinAddr := fn.Addr
		if a, ok := opts.PinBase[fn.Name]; ok {
			pinAddr = a
		}
		if pinAddr == fn.Addr && hf.Size() > fn.Size {
			return nil, fmt.Errorf("bolt: pinned function %s grew from %d to %d bytes", fn.Name, fn.Size, hf.Size())
		}
		pinned = append(pinned, asm.Placement{Frag: hf, Addr: pinAddr, Section: obj.SecOrgText})
	}

	// Place hot fragments at the new base, cold fragments after them.
	placements := asm.SequentialPlacement(hotFrags, opts.TextBase, obj.SecText, true)
	var hotEnd uint64 = opts.TextBase
	for _, p := range placements {
		if end := p.Addr + p.Frag.Size(); end > hotEnd {
			hotEnd = end
		}
	}
	coldBase := (hotEnd + 0xFFFF) &^ 0xFFFF // 64 KiB gap/alignment
	placements = append(placements, asm.SequentialPlacement(coldFrags, coldBase, obj.SecColdText, true)...)
	placements = append(placements, pinned...)

	// V-tables: symbolic slots from the original binary.
	dataSec := bin.Section(obj.SecData)
	var data []byte
	var dataBase uint64
	var vspecs []asm.VTableSpec
	if dataSec != nil {
		data = append([]byte(nil), dataSec.Data...)
		dataBase = dataSec.Addr
	}
	for _, vt := range bin.VTables {
		spec := asm.VTableSpec{Name: vt.Name, Off: vt.Addr - dataBase}
		for i, slot := range vt.Slots {
			f := bin.FuncAt(slot)
			if f == nil {
				return nil, fmt.Errorf("bolt: vtable %s slot %d (%#x) is not a function entry", vt.Name, i, slot)
			}
			spec.Slots = append(spec.Slots, f.Name)
		}
		vspecs = append(vspecs, spec)
	}

	// Entry symbol.
	entryName := ""
	if f := bin.FuncAt(bin.Entry); f != nil {
		entryName = f.Name
	}

	roBase := opts.ROBase
	if roBase == 0 {
		roBase = asm.DefaultRODataBase
		if ro := bin.Section(obj.SecROData); ro != nil {
			roBase = ro.Addr
		}
	}

	out, err := asm.Link(asm.LinkInput{
		Name:         bin.Name + ".bolt",
		Entry:        entryName,
		Placements:   placements,
		Data:         data,
		DataBase:     dataBase,
		VTables:      vspecs,
		ROBase:       roBase,
		Bolted:       true,
		NoJumpTables: bin.NoJumpTables,
	})
	if err != nil {
		return nil, err
	}

	// AddrMap: original entry → optimized entry for every moved function.
	// OrgRanges (the BAT analog) symbolize every old home of moved code so
	// profiles taken while old instances still execute remain attributable:
	// inherit the input's table, then add the ranges vacated this round.
	out.AddrMap = make(map[uint64]uint64, len(hotOrder))
	out.OSRMap = osrMap
	out.OrgRanges = append(out.OrgRanges, bin.OrgRanges...)
	for _, entry := range hotOrder {
		fn := bin.FuncAt(entry)
		nf := out.FuncByName(fn.Name)
		if nf == nil {
			return nil, fmt.Errorf("bolt: moved function %s lost during link", fn.Name)
		}
		for _, p := range osrMap[entry] {
			if p.OldOff >= fn.Size+fn.ColdSize || p.NewOff >= nf.Size+nf.ColdSize {
				return nil, fmt.Errorf("bolt: %s: OSR point %+v outside function", fn.Name, p)
			}
		}
		out.AddrMap[entry] = nf.Addr
		out.OrgRanges = append(out.OrgRanges, obj.OrgRange{
			Lo: fn.Addr, Hi: fn.Addr + fn.Size, Name: fn.Name, Entry: fn.Addr,
		})
		if fn.ColdSize > 0 {
			out.OrgRanges = append(out.OrgRanges, obj.OrgRange{
				Lo: fn.ColdAddr, Hi: fn.ColdAddr + fn.ColdSize, Name: fn.Name, Entry: fn.Addr,
			})
		}
	}

	for _, s := range out.Sections {
		if s.Name == obj.SecText || s.Name == obj.SecColdText {
			res.NewTextBytes += uint64(len(s.Data))
		}
	}
	res.Binary = out
	return res, nil
}

// MovedFunctions lists original→new entry pairs sorted by original
// address (for reports and the OCOLOS patcher).
func MovedFunctions(addrMap map[uint64]uint64) [][2]uint64 {
	out := make([][2]uint64, 0, len(addrMap))
	for o, n := range addrMap {
		out = append(out, [2]uint64{o, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
