package bolt

import "sort"

// FuncOrderAlgo selects the function-layout algorithm.
type FuncOrderAlgo string

// Supported algorithms (§II-C).
const (
	OrderC3   FuncOrderAlgo = "c3"   // call-chain clustering, callers before callees
	OrderPH   FuncOrderAlgo = "ph"   // classic Pettis-Hansen closest-is-best
	OrderNone FuncOrderAlgo = "none" // keep original relative order
)

// callGraph is the profile-weighted call graph over hot functions.
type callGraph struct {
	nodes  []uint64 // entries, deterministic order
	weight map[uint64]uint64
	calls  map[[2]uint64]uint64 // (caller, callee) → count
	sizeOf map[uint64]uint64
}

func buildCallGraph(prof *Profile, hot map[uint64]bool, sizeOf map[uint64]uint64) *callGraph {
	g := &callGraph{
		weight: make(map[uint64]uint64),
		calls:  make(map[[2]uint64]uint64),
		sizeOf: sizeOf,
	}
	for entry := range hot {
		g.nodes = append(g.nodes, entry)
		if fp := prof.Funcs[entry]; fp != nil {
			g.weight[entry] = fp.Weight()
			for callee, cnt := range fp.Calls {
				if hot[callee] {
					g.calls[[2]uint64{entry, callee}] += cnt
				}
			}
		}
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i] < g.nodes[j] })
	return g
}

// OrderFunctions returns the hot-function layout order (entry addresses)
// for the chosen algorithm.
func OrderFunctions(prof *Profile, hot map[uint64]bool, sizeOf map[uint64]uint64, algo FuncOrderAlgo) []uint64 {
	g := buildCallGraph(prof, hot, sizeOf)
	switch algo {
	case OrderC3:
		return g.c3()
	case OrderPH:
		return g.pettisHansen()
	default:
		return g.nodes
	}
}

// c3 implements Call-Chain Clustering (Ottoni & Maher, CGO'17): visit
// functions by decreasing hotness and append each one's cluster after the
// cluster of its hottest caller, so callers precede callees and the call
// target lands close after the call site.
func (g *callGraph) c3() []uint64 {
	const maxClusterBytes = 1 << 20 // do not grow clusters past 1 MiB

	// Hottest caller of each function.
	hottestCaller := make(map[uint64]uint64)
	callerWeight := make(map[uint64]uint64)
	for k, w := range g.calls {
		caller, callee := k[0], k[1]
		if caller == callee {
			continue
		}
		if w > callerWeight[callee] || (w == callerWeight[callee] && caller < hottestCaller[callee]) {
			callerWeight[callee] = w
			hottestCaller[callee] = caller
		}
	}

	cluster := make(map[uint64]int)
	clusters := make([][]uint64, 0, len(g.nodes))
	sizes := make([]uint64, 0, len(g.nodes))
	for _, n := range g.nodes {
		cluster[n] = len(clusters)
		clusters = append(clusters, []uint64{n})
		sizes = append(sizes, g.sizeOf[n])
	}

	// Visit by decreasing weight (ties by address for determinism).
	order := append([]uint64(nil), g.nodes...)
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := g.weight[order[i]], g.weight[order[j]]
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})

	for _, f := range order {
		caller, ok := hottestCaller[f]
		if !ok {
			continue
		}
		cf, cc := cluster[f], cluster[caller]
		if cf == cc {
			continue
		}
		if sizes[cc]+sizes[cf] > maxClusterBytes {
			continue
		}
		// Append f's cluster to the caller's cluster.
		for _, m := range clusters[cf] {
			cluster[m] = cc
		}
		clusters[cc] = append(clusters[cc], clusters[cf]...)
		sizes[cc] += sizes[cf]
		clusters[cf] = nil
	}

	// Sort clusters by density (weight per byte) descending.
	type cl struct {
		blocks  []uint64
		density float64
		first   uint64
	}
	var out []cl
	for _, c := range clusters {
		if len(c) == 0 {
			continue
		}
		var w, sz uint64
		for _, m := range c {
			w += g.weight[m]
			sz += g.sizeOf[m]
		}
		if sz == 0 {
			sz = 1
		}
		out = append(out, cl{blocks: c, density: float64(w) / float64(sz), first: c[0]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].density != out[j].density {
			return out[i].density > out[j].density
		}
		return out[i].first < out[j].first
	})

	var result []uint64
	for _, c := range out {
		result = append(result, c.blocks...)
	}
	return result
}

// pettisHansen implements the classic PH function placement: treat call
// weights as undirected affinities and repeatedly merge the two clusters
// joined by the heaviest remaining affinity, without the caller/callee
// distinction C3 adds.
func (g *callGraph) pettisHansen() []uint64 {
	aff := make(map[[2]uint64]uint64)
	for k, w := range g.calls {
		a, b := k[0], k[1]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		aff[[2]uint64{a, b}] += w
	}
	type edge struct {
		a, b uint64
		w    uint64
	}
	edges := make([]edge, 0, len(aff))
	for k, w := range aff {
		edges = append(edges, edge{k[0], k[1], w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	cluster := make(map[uint64]int)
	clusters := make([][]uint64, 0, len(g.nodes))
	for _, n := range g.nodes {
		cluster[n] = len(clusters)
		clusters = append(clusters, []uint64{n})
	}
	for _, e := range edges {
		ca, cb := cluster[e.a], cluster[e.b]
		if ca == cb {
			continue
		}
		for _, m := range clusters[cb] {
			cluster[m] = ca
		}
		clusters[ca] = append(clusters[ca], clusters[cb]...)
		clusters[cb] = nil
	}

	type cl struct {
		blocks []uint64
		w      uint64
		first  uint64
	}
	var out []cl
	for _, c := range clusters {
		if len(c) == 0 {
			continue
		}
		var w uint64
		for _, m := range c {
			w += g.weight[m]
		}
		out = append(out, cl{blocks: c, w: w, first: c[0]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].w != out[j].w {
			return out[i].w > out[j].w
		}
		return out[i].first < out[j].first
	})
	var result []uint64
	for _, c := range out {
		result = append(result, c.blocks...)
	}
	return result
}
