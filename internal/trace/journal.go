// Package trace is the observability substrate the fleet layer watches
// itself through: hierarchical spans over every optimization-pipeline
// stage and a bounded, ordered journal of typed events. The paper's §V
// deployment story — a data center continuously re-optimizing long-running
// services — only works if the optimizer itself is observable; BOLT's
// authors make the same point about always-on profiling infrastructure,
// and the record-and-replay line of work shows how much debugging power a
// durable, ordered event log buys. Spans answer "where did this round
// spend its time and did it fail"; the journal answers "what happened, in
// what order" — rollbacks, verify failures, quarantine trips, reverts,
// injected faults — and can be dumped as JSONL or asserted on in tests.
//
// A nil *Tracer (and the nil *Span it hands out) is a valid no-op sink,
// mirroring telemetry's nil *Registry, so instrumentation can publish
// unconditionally.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventType discriminates journal entries.
type EventType int

const (
	// EvSpanStart / EvSpanEnd bracket every span in the journal, so the
	// journal alone carries a total order over the span tree.
	EvSpanStart EventType = iota
	EvSpanEnd
	// EvRollback: a transactional replacement failed and its write journal
	// was replayed; the "op_index" attribute is the tracee operation index
	// the round died at.
	EvRollback
	// EvVerifyFail: the pre-resume verifier rejected a replacement.
	EvVerifyFail
	// EvQuarantine: the fleet's replace-rollback circuit breaker tripped.
	EvQuarantine
	// EvRevert: a service was restored to C0.
	EvRevert
	// EvFaultInjected: a test fault hook failed an operation on purpose.
	EvFaultInjected
	// EvTransition: a service moved to a new lifecycle state.
	EvTransition
	// EvRetry: a lifecycle stage attempt failed and will be retried.
	EvRetry
	// EvBackoff: the retry loop slept before the next attempt.
	EvBackoff

	// The remaining types are the record/replay vocabulary (internal/replay):
	// each is one recorded nondeterministic decision, and a journal of them
	// drives a bit-identical re-execution.

	// EvSessionMeta heads a recorded session: the workload/config identity
	// the replayer needs to reconstruct the run.
	EvSessionMeta
	// EvClockRead: one wall-clock read (unix nanos recorded).
	EvClockRead
	// EvSleep: one backoff sleep (duration recorded; replay skips the wait).
	EvSleep
	// EvJitter: one draw from the backoff jitter source.
	EvJitter
	// EvPerfSample: one perf sampling-deadline decision for a thread.
	EvPerfSample
	// EvSchedPolicy: whether a non-default scheduler quantum source was
	// installed for the session.
	EvSchedPolicy
	// EvSchedPick: one injected scheduler quantum choice.
	EvSchedPick
	// EvFaultDecision: a fault hook chose to fail an operation.
	EvFaultDecision
	// EvCheckpoint: a state-hash checkpoint at a round boundary; replay
	// recomputes the hash and fails fast on mismatch.
	EvCheckpoint
	// EvCacheDecision: one layout-cache lookup outcome (hit/miss/
	// coalesced) with its content-addressed key. Everything is identity:
	// a replayed wave recomputes the key and must reach the same
	// decision, so cached waves replay bit-identically.
	EvCacheDecision
	// EvOSRDecision: one on-stack-replacement decision for a live frame
	// during code replacement — mapped in place or fallen back to
	// copy-based migration. Everything is identity: a replayed round
	// re-walks the same stacks and must reach the same decisions.
	EvOSRDecision
	// EvDriftDecision: one drift-detector verdict for a Steady service —
	// the divergence score of the live windowed profile against the
	// layout's build profile, whether re-optimization fired, and why not
	// otherwise. Everything is identity: a replayed drift scan recomputes
	// the score from the replayed sample stream and must reach the same
	// verdict bit for bit.
	EvDriftDecision
	// EvProfileIngest: one externally pushed profile batch (the control
	// plane's POST /profile) absorbed into a service's sample store. The
	// batch digest is identity: replaying a journal that contains external
	// ingests requires re-supplying the same batches, and anything else
	// diverges loudly instead of silently replaying a different profile.
	EvProfileIngest
)

var eventTypeNames = [...]string{
	EvSpanStart:     "span_start",
	EvSpanEnd:       "span_end",
	EvRollback:      "rollback",
	EvVerifyFail:    "verify_fail",
	EvQuarantine:    "quarantine",
	EvRevert:        "revert",
	EvFaultInjected: "fault_injected",
	EvTransition:    "transition",
	EvRetry:         "retry",
	EvBackoff:       "backoff",
	EvSessionMeta:   "session_meta",
	EvClockRead:     "clock_read",
	EvSleep:         "sleep",
	EvJitter:        "jitter",
	EvPerfSample:    "perf_sample",
	EvSchedPolicy:   "sched_policy",
	EvSchedPick:     "sched_pick",
	EvFaultDecision: "fault_decision",
	EvCheckpoint:    "checkpoint",
	EvCacheDecision: "cache_decision",
	EvOSRDecision:   "osr_decision",
	EvDriftDecision: "drift_decision",
	EvProfileIngest: "profile_ingest",
}

func (t EventType) String() string {
	if int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// MarshalJSON renders the type as its string name, so JSONL dumps stay
// readable and stable across constant reordering.
func (t EventType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON accepts the string names MarshalJSON produces, so
// journal dumps round-trip through consumers.
func (t *EventType) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range eventTypeNames {
		if n == name {
			*t = EventType(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event type %q", name)
}

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value any
}

// String, Int, Float, and Bool are the attribute constructors the
// instrumentation sites use.
func String(k, v string) Attr        { return Attr{Key: k, Value: v} }
func Int(k string, v int) Attr       { return Attr{Key: k, Value: int64(v)} }
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }
func Bool(k string, v bool) Attr     { return Attr{Key: k, Value: v} }

// Attrs is an ordered attribute list; it marshals as a JSON object in
// list order.
type Attrs []Attr

// MarshalJSON renders the list as an object, preserving attribute order.
func (a Attrs) MarshalJSON() ([]byte, error) {
	var b []byte
	b = append(b, '{')
	for i, at := range a {
		if i > 0 {
			b = append(b, ',')
		}
		k, err := json.Marshal(at.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(at.Value)
		if err != nil {
			return nil, err
		}
		b = append(b, k...)
		b = append(b, ':')
		b = append(b, v...)
	}
	return append(b, '}'), nil
}

// UnmarshalJSON decodes an object back into an ordered attribute list,
// preserving key order. Numbers decode as int64 when integral, float64
// otherwise, matching what the constructors store.
func (a *Attrs) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok == nil { // JSON null
		*a = nil
		return nil
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("trace: attrs must be a JSON object, got %v", tok)
	}
	var out Attrs
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := kt.(string)
		if !ok {
			return fmt.Errorf("trace: non-string attr key %v", kt)
		}
		var v any
		if err := dec.Decode(&v); err != nil {
			return err
		}
		if n, ok := v.(json.Number); ok {
			if i, err := n.Int64(); err == nil {
				v = i
			} else if f, err := n.Float64(); err == nil {
				v = f
			}
		}
		out = append(out, Attr{Key: key, Value: v})
	}
	*a = out
	return nil
}

// Get returns the value of the named attribute.
func (a Attrs) Get(key string) (any, bool) {
	for _, at := range a {
		if at.Key == key {
			return at.Value, true
		}
	}
	return nil, false
}

// Int returns the named attribute coerced to int64 (false if absent or
// not numeric).
func (a Attrs) Int(key string) (int64, bool) {
	v, ok := a.Get(key)
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case int64:
		return n, true
	case int:
		return int64(n), true
	case uint64:
		return int64(n), true
	case float64:
		return int64(n), true
	}
	return 0, false
}

// Event is one journal entry. Seq is assigned by the journal and is the
// total order over everything the tracer observed — span starts and ends
// included — so "the rollback happened after the third verify read" is a
// checkable statement.
type Event struct {
	Seq     uint64    `json:"seq"`
	Type    EventType `json:"type"`
	Service string    `json:"service,omitempty"`
	Round   int       `json:"round,omitempty"`
	Stage   string    `json:"stage,omitempty"`
	Span    uint64    `json:"span,omitempty"` // owning span ID, 0 if none
	Err     string    `json:"err,omitempty"`
	Attrs   Attrs     `json:"attrs,omitempty"`
}

// DefaultJournalCap bounds the journal when Options.JournalCap is unset.
const DefaultJournalCap = 4096

// Journal is a bounded ring of events. When full, the oldest entries are
// dropped (and counted); sequence numbers keep increasing, so a gap at
// the front of Events() is visible as seq(first) > dropped evidence.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	start   int    // index of the oldest entry
	n       int    // live entries
	seq     uint64 // total events ever appended
	dropped uint64
}

// NewJournal returns a journal holding at most capacity events
// (DefaultJournalCap if capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Append assigns the next sequence number to e and stores it, evicting
// the oldest entry when full. It returns the stored event. A nil journal
// is a no-op sink.
func (j *Journal) Append(e Event) Event {
	if j == nil {
		return e
	}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if j.n == len(j.buf) {
		j.buf[j.start] = e
		j.start = (j.start + 1) % len(j.buf)
		j.dropped++
	} else {
		j.buf[(j.start+j.n)%len(j.buf)] = e
		j.n++
	}
	j.mu.Unlock()
	return e
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Dropped returns how many events the ring evicted.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns the retained events in sequence order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(j.start+i)%len(j.buf)])
	}
	return out
}

// Filter returns the retained events the predicate accepts, in order.
func (j *Journal) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range j.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByType returns the retained events of one type, in order.
func (j *Journal) ByType(t EventType) []Event {
	return j.Filter(func(e Event) bool { return e.Type == t })
}

// ByService returns the retained events of one service, in order.
func (j *Journal) ByService(name string) []Event {
	return j.Filter(func(e Event) bool { return e.Service == name })
}

// WriteJSONL dumps the retained events, one JSON object per line.
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends the newline
	for _, e := range j.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a WriteJSONL dump back into events, preserving order
// (blank lines are skipped). It is the inverse WriteJSONL needs for
// journal round-trips and what the replayer loads its input from.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
