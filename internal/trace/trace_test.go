package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeAndOrdering(t *testing.T) {
	tr := New(Options{})
	root := tr.Start(nil, "service", String("name", "db"))
	root.SetService("db")
	round := tr.Start(root, "round")
	round.SetRound(1)
	profile := tr.Start(round, "profile", Int("samples", 42))
	profile.End(nil)
	replace := tr.Start(round, "replace")
	replace.EventErr(EvRollback, errors.New("boom"), Int("op_index", 7))
	replace.End(errors.New("boom"))
	round.End(errors.New("boom"))
	root.End(nil)

	// Inheritance: children carry the root's service and the round span's
	// round number.
	if svc, _ := profile.Identity(); svc != "db" {
		t.Errorf("profile service = %q, want db", svc)
	}
	if _, rnd := replace.Identity(); rnd != 1 {
		t.Errorf("replace round = %d, want 1", rnd)
	}

	trees := tr.Tree("db")
	if len(trees) != 1 || trees[0].Name != "service" {
		t.Fatalf("tree roots = %+v", trees)
	}
	rnode := trees[0].Children[0]
	if rnode.Name != "round" || len(rnode.Children) != 2 {
		t.Fatalf("round node = %+v", rnode)
	}
	if rnode.Children[0].Name != "profile" || rnode.Children[1].Name != "replace" {
		t.Errorf("children out of start order: %s, %s",
			rnode.Children[0].Name, rnode.Children[1].Name)
	}
	if rnode.Children[1].Err != "boom" {
		t.Errorf("replace node error = %q", rnode.Children[1].Err)
	}
	if rnode.Children[0].Open {
		t.Error("ended span reported open")
	}

	// Monotonic order: every span's start seq precedes its end seq, and a
	// child starts after its parent.
	if !(trees[0].StartSeq < rnode.StartSeq && rnode.StartSeq < rnode.Children[0].StartSeq) {
		t.Errorf("start seqs not nested: %d %d %d",
			trees[0].StartSeq, rnode.StartSeq, rnode.Children[0].StartSeq)
	}
	if profile.node().EndSeq <= profile.node().StartSeq {
		t.Error("end seq not after start seq")
	}

	// The journal carries the rollback event with its attributes.
	rb := tr.Journal().ByType(EvRollback)
	if len(rb) != 1 {
		t.Fatalf("rollback events = %d, want 1", len(rb))
	}
	if rb[0].Service != "db" || rb[0].Round != 1 || rb[0].Stage != "replace" || rb[0].Err != "boom" {
		t.Errorf("rollback event = %+v", rb[0])
	}
	if idx, ok := rb[0].Attrs.Int("op_index"); !ok || idx != 7 {
		t.Errorf("op_index = %d (ok=%v), want 7", idx, ok)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Options{})
	s := tr.Start(nil, "x")
	s.End(errors.New("first"))
	s.End(errors.New("second"))
	if s.Err().Error() != "first" {
		t.Errorf("second End overwrote the first: %v", s.Err())
	}
	if n := len(tr.Journal().ByType(EvSpanEnd)); n != 1 {
		t.Errorf("span_end events = %d, want 1", n)
	}
}

func TestNilTracerAndSpanAreSinks(t *testing.T) {
	var tr *Tracer
	s := tr.Start(nil, "x", Int("a", 1))
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All of these must be safe no-ops.
	s.SetService("db")
	s.SetRound(1)
	s.SetAttrs(Int("b", 2))
	s.Event(EvRevert)
	s.End(nil)
	if s.Ended() || s.Err() != nil || s.Duration() != 0 {
		t.Error("nil span has state")
	}
	tr.Emit(Event{Type: EvRevert})
	if tr.Journal().Len() != 0 || tr.Tree("") != nil {
		t.Error("nil tracer retained data")
	}
}

func TestJournalRingBound(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 20; i++ {
		j.Append(Event{Type: EvTransition, Stage: fmt.Sprintf("s%d", i)})
	}
	if j.Len() != 8 {
		t.Fatalf("len = %d, want 8", j.Len())
	}
	if j.Dropped() != 12 {
		t.Errorf("dropped = %d, want 12", j.Dropped())
	}
	evs := j.Events()
	// Oldest retained entry is #13 (seq 13), newest is #20.
	if evs[0].Seq != 13 || evs[len(evs)-1].Seq != 20 {
		t.Errorf("retained seqs %d..%d, want 13..20", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap: %d → %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestJournalJSONL(t *testing.T) {
	tr := New(Options{})
	s := tr.Start(nil, "replace")
	s.SetService("db")
	s.EventErr(EvVerifyFail, errors.New("bad slot"), String("what", "vtable"), Int("slot", 3))
	s.End(errors.New("bad slot"))

	var b strings.Builder
	if err := tr.Journal().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 { // span_start, verify_fail, span_end
		t.Fatalf("journal lines = %d:\n%s", len(lines), b.String())
	}
	// Every line is valid JSON with the expected shape.
	var ev struct {
		Seq   uint64         `json:"seq"`
		Type  string         `json:"type"`
		Stage string         `json:"stage"`
		Err   string         `json:"err"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 2 not JSON: %v\n%s", err, lines[1])
	}
	if ev.Type != "verify_fail" || ev.Stage != "replace" || ev.Err != "bad slot" {
		t.Errorf("event line = %+v", ev)
	}
	if ev.Attrs["what"] != "vtable" || ev.Attrs["slot"] != float64(3) {
		t.Errorf("attrs = %v", ev.Attrs)
	}
}

// TestConcurrentSpansAndJournal hammers span starts/ends, attribute
// writes, and journal appends from many goroutines; run under -race in
// CI. Sequence numbers must come out unique and the journal bounded.
func TestConcurrentSpansAndJournal(t *testing.T) {
	tr := New(Options{JournalCap: 256, MaxSpans: 128})
	root := tr.Start(nil, "root")
	root.SetService("svc")

	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := tr.Start(root, "stage", Int("worker", w))
				s.SetRound(i)
				s.SetAttrs(Int("iter", i))
				s.Event(EvTransition, String("to", "next"))
				if i%2 == 0 {
					s.End(nil)
				} else {
					s.End(errors.New("odd"))
				}
				_ = s.Duration()
				_ = tr.Tree("svc")
			}
		}(w)
	}
	wg.Wait()
	root.End(nil)

	if got := tr.Journal().Len(); got != 256 {
		t.Errorf("journal len = %d, want full ring 256", got)
	}
	evs := tr.Journal().Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("journal out of order: seq %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	// 1 root + workers*perWorker children started; retention capped.
	if tr.SpansDropped() != uint64(1+workers*perWorker-128) {
		t.Errorf("spans dropped = %d", tr.SpansDropped())
	}
}

// TestJournalWrapRoundTrip serializes a journal whose ring has wrapped
// and parses it back: the retained window must survive the JSONL
// round-trip event-for-event — sequence numbers, types, and attrs —
// because a shipped journal is exactly this dump.
func TestJournalWrapRoundTrip(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(Event{Type: EvClockRead, Stage: "clock.now",
			Attrs: Attrs{Int("i", i), Float("f", float64(i)/3), Bool("b", i%2 == 0), String("s", fmt.Sprintf("v%d", i))}})
	}
	if j.Len() != 4 || j.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d, want 4/6", j.Len(), j.Dropped())
	}
	var b strings.Builder
	if err := j.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := j.Events()
	if len(got) != len(want) {
		t.Fatalf("round-trip returned %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Type != want[i].Type || got[i].Stage != want[i].Stage {
			t.Errorf("event %d: %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Seq != uint64(7+i) {
			t.Errorf("event %d seq %d, want %d (oldest retained is #7)", i, got[i].Seq, 7+i)
		}
		for _, a := range want[i].Attrs {
			v, ok := got[i].Attrs.Get(a.Key)
			if !ok {
				t.Errorf("event %d lost attr %q", i, a.Key)
				continue
			}
			switch wv := a.Value.(type) {
			case int:
				if n, ok := got[i].Attrs.Int(a.Key); !ok || n != int64(wv) {
					t.Errorf("event %d attr %q = %v, want %d", i, a.Key, v, wv)
				}
			case float64:
				// Integral floats decode as int64 (the documented JSONL
				// normalization); compare numerically.
				gf, gok := v.(float64)
				if gi, ok := v.(int64); ok {
					gf, gok = float64(gi), true
				}
				if !gok || gf != wv {
					t.Errorf("event %d attr %q = %v (%T), want %v", i, a.Key, v, v, wv)
				}
			default:
				if v != a.Value {
					t.Errorf("event %d attr %q = %v (%T), want %v (%T)", i, a.Key, v, v, a.Value, a.Value)
				}
			}
		}
	}
	// Parsing tolerates blank lines and reports the bad line on error.
	if _, err := ReadJSONL(strings.NewReader("\n" + b.String() + "\n")); err != nil {
		t.Errorf("blank lines rejected: %v", err)
	}
	if _, err := ReadJSONL(strings.NewReader("{\"seq\":1}\nnot-json\n")); err == nil {
		t.Error("corrupt line accepted")
	}
}
