package trace

import (
	"sort"
	"sync"
	"time"
)

// Options configures a tracer.
type Options struct {
	// JournalCap bounds the event journal (DefaultJournalCap if 0).
	JournalCap int
	// MaxSpans bounds how many spans the tracer retains for tree dumps
	// (DefaultMaxSpans if 0). Spans past the cap still function — they
	// time themselves and journal their start/end — but are not retained.
	MaxSpans int
}

// DefaultMaxSpans bounds span retention when Options.MaxSpans is unset.
const DefaultMaxSpans = 8192

// Tracer hands out spans and owns the journal. Safe for concurrent use;
// a nil *Tracer is a valid no-op sink.
type Tracer struct {
	journal *Journal

	mu           sync.Mutex
	nextID       uint64
	spans        []*Span
	maxSpans     int
	spansDropped uint64
}

// New returns a tracer with a fresh journal.
func New(o Options) *Tracer {
	if o.MaxSpans <= 0 {
		o.MaxSpans = DefaultMaxSpans
	}
	return &Tracer{journal: NewJournal(o.JournalCap), maxSpans: o.MaxSpans}
}

// Journal returns the tracer's event journal (nil on a nil tracer).
func (t *Tracer) Journal() *Journal {
	if t == nil {
		return nil
	}
	return t.journal
}

// Emit appends an event to the journal, assigning its sequence number.
func (t *Tracer) Emit(e Event) Event {
	if t == nil {
		return e
	}
	return t.journal.Append(e)
}

// Span is one timed operation in the tree. Identity fields (ID, Name,
// parent) are immutable after Start; the rest is guarded by mu.
type Span struct {
	tracer *Tracer
	parent *Span
	ID     uint64
	Name   string

	mu       sync.Mutex
	service  string
	round    int
	attrs    Attrs
	start    time.Time
	startSeq uint64
	end      time.Time
	endSeq   uint64
	ended    bool
	err      error
}

// Start opens a span under parent (nil parent makes a root span). The
// span inherits the parent's service and round and journals an
// EvSpanStart. Start on a nil tracer returns nil, and every method on a
// nil span is a no-op, so call sites never need to guard.
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, parent: parent, Name: name, attrs: attrs, start: time.Now()}
	if parent != nil {
		s.service, s.round = parent.Identity()
	}
	t.mu.Lock()
	t.nextID++
	s.ID = t.nextID
	if len(t.spans) < t.maxSpans {
		t.spans = append(t.spans, s)
	} else {
		t.spansDropped++
	}
	t.mu.Unlock()
	e := t.Emit(Event{Type: EvSpanStart, Service: s.service, Round: s.round, Stage: name, Span: s.ID})
	s.mu.Lock()
	s.startSeq = e.Seq
	s.mu.Unlock()
	return s
}

// SpansDropped reports how many spans were started past the retention
// cap.
func (t *Tracer) SpansDropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spansDropped
}

// Identity returns the span's service and round.
func (s *Span) Identity() (service string, round int) {
	if s == nil {
		return "", 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.service, s.round
}

// SetService names the service the span (and its future children)
// belongs to; used on root spans, which have no parent to inherit from.
func (s *Span) SetService(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.service = name
	s.mu.Unlock()
}

// SetRound tags the span with an optimization-round number.
func (s *Span) SetRound(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.round = n
	s.mu.Unlock()
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End closes the span with its error status and journals an EvSpanEnd
// carrying the duration. Idempotent: only the first End takes effect.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	s.err = err
	service, round, name, id := s.service, s.round, s.Name, s.ID
	dur := s.end.Sub(s.start).Seconds()
	s.mu.Unlock()

	e := Event{Type: EvSpanEnd, Service: service, Round: round, Stage: name, Span: id,
		Attrs: Attrs{Float("seconds", dur)}}
	if err != nil {
		e.Err = err.Error()
	}
	stored := s.tracer.Emit(e)
	s.mu.Lock()
	s.endSeq = stored.Seq
	s.mu.Unlock()
}

// Ended reports whether End was called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Err returns the error the span ended with (nil while open).
func (s *Span) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Duration returns the span's wall time (time since start while open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Event journals a typed event attributed to this span (service, round,
// and stage come from the span).
func (s *Span) Event(typ EventType, attrs ...Attr) {
	s.EventErr(typ, nil, attrs...)
}

// EventErr journals a typed event with an error status.
func (s *Span) EventErr(typ EventType, err error, attrs ...Attr) {
	if s == nil {
		return
	}
	service, round := s.Identity()
	e := Event{Type: typ, Service: service, Round: round, Stage: s.Name, Span: s.ID, Attrs: attrs}
	if err != nil {
		e.Err = err.Error()
	}
	s.tracer.Emit(e)
}

// SpanNode is the exported form of one span for tree dumps (the
// /trace endpoint's payload).
type SpanNode struct {
	ID       uint64      `json:"id"`
	Parent   uint64      `json:"parent,omitempty"`
	Name     string      `json:"name"`
	Service  string      `json:"service,omitempty"`
	Round    int         `json:"round,omitempty"`
	StartSeq uint64      `json:"start_seq"`
	EndSeq   uint64      `json:"end_seq,omitempty"`
	Seconds  float64     `json:"seconds"`
	Open     bool        `json:"open,omitempty"`
	Err      string      `json:"err,omitempty"`
	Attrs    Attrs       `json:"attrs,omitempty"`
	Children []*SpanNode `json:"children,omitempty"`
}

// node snapshots one span (without children).
func (s *Span) node() *SpanNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := &SpanNode{
		ID:       s.ID,
		Name:     s.Name,
		Service:  s.service,
		Round:    s.round,
		StartSeq: s.startSeq,
		EndSeq:   s.endSeq,
		Open:     !s.ended,
		Attrs:    append(Attrs(nil), s.attrs...),
	}
	if s.parent != nil {
		n.Parent = s.parent.ID
	}
	if s.ended {
		n.Seconds = s.end.Sub(s.start).Seconds()
		if s.err != nil {
			n.Err = s.err.Error()
		}
	} else {
		n.Seconds = time.Since(s.start).Seconds()
	}
	return n
}

// Tree returns the retained span forest for one service ("" = every
// service), children ordered by start sequence. A span whose parent was
// not retained (or belongs to another service) surfaces as a root.
func (t *Tracer) Tree(service string) []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()

	nodes := make(map[uint64]*SpanNode, len(spans))
	var ordered []*SpanNode
	for _, s := range spans {
		svc, _ := s.Identity()
		if service != "" && svc != service {
			continue
		}
		n := s.node()
		nodes[n.ID] = n
		ordered = append(ordered, n)
	}
	var roots []*SpanNode
	for _, n := range ordered {
		if p, ok := nodes[n.Parent]; ok {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range ordered {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].StartSeq < ns[j].StartSeq })
}
