package profile

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/perf"
	"repro/internal/replay"
	"repro/internal/trace"
)

func ingestAt(s *Store, at float64, edges ...cpu.BranchRecord) {
	s.Ingest(perf.Sample{Records: edges}, at)
}

func TestStoreWindowTrailing(t *testing.T) {
	s := NewStore(StoreOptions{Service: "svc"})
	for i := 1; i <= 10; i++ {
		ingestAt(s, float64(i)*0.001, edge(uint64(i), uint64(i)+1))
	}
	if now := s.Now(); now != 0.010 {
		t.Fatalf("Now = %v, want 0.010", now)
	}
	raw := s.Window(0.0045)
	// Trailing 4.5 ms from t=10 ms reaches back to 5.5 ms: samples 6..10.
	if len(raw.Samples) != 5 {
		t.Fatalf("window holds %d samples, want 5", len(raw.Samples))
	}
	if raw.Samples[0].Records[0].From != 6 {
		t.Errorf("window starts at sample %d, want 6", raw.Samples[0].Records[0].From)
	}
	if raw.Seconds <= 0 {
		t.Error("window Seconds not set")
	}
	// A window wider than the stream returns everything.
	if all := s.Window(1); len(all.Samples) != 10 {
		t.Errorf("wide window holds %d samples, want 10", len(all.Samples))
	}
}

func TestStoreEpochFloorsWindow(t *testing.T) {
	s := NewStore(StoreOptions{Service: "svc"})
	ingestAt(s, 0.001, edge(1, 2))
	ingestAt(s, 0.002, edge(3, 4))
	s.Epoch() // code replaced: pre-epoch samples profile dead addresses
	if raw := s.Window(1); len(raw.Samples) != 1 {
		// The epoch equals the last sample's stamp, so only that sample
		// (equal-time, same layout boundary) may serve.
		t.Fatalf("post-epoch window holds %d samples", len(raw.Samples))
	}
	ingestAt(s, 0.003, edge(5, 6))
	raw := s.Window(1)
	var seen []uint64
	for _, sm := range raw.Samples {
		seen = append(seen, sm.Records[0].From)
	}
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 5 {
		t.Errorf("post-epoch window = %v, want [3 5]", seen)
	}
}

func TestStoreCapacityEviction(t *testing.T) {
	s := NewStore(StoreOptions{Service: "svc", Capacity: 4})
	for i := 0; i < 6; i++ {
		ingestAt(s, float64(i)*0.001, edge(uint64(i), 1))
	}
	st := s.Stats()
	if st.Samples != 4 || st.Dropped != 2 || st.Records != 6 {
		t.Fatalf("stats = %+v, want 4 held / 2 dropped / 6 total", st)
	}
	if raw := s.Window(1); raw.Samples[0].Records[0].From != 2 {
		t.Errorf("oldest surviving sample is %d, want 2", raw.Samples[0].Records[0].From)
	}
}

func TestDecayedSummaryFavorsRecent(t *testing.T) {
	s := NewStore(StoreOptions{Service: "svc", HalfLife: 0.001})
	old, recent := edge(1, 2), edge(3, 4)
	// Equal raw volume, but the old edge is 10 half-lives stale: its
	// decayed weight should be ~2^-10 of the recent one.
	for i := 0; i < 8; i++ {
		ingestAt(s, 0.000, old)
	}
	for i := 0; i < 8; i++ {
		ingestAt(s, 0.010, recent)
	}
	sum := s.DecayedSummary()
	if sum.Total != 16 {
		t.Fatalf("Total = %d, want 16", sum.Total)
	}
	wOld, wNew := sum.Edges[old], sum.Edges[recent]
	if wNew < 0.99 || wOld > 0.01 {
		t.Errorf("weights old=%v new=%v: decay not applied", wOld, wNew)
	}
	ratio := wOld / wNew
	if math.Abs(ratio-math.Exp2(-10)) > 1e-6 {
		t.Errorf("old/new ratio %v, want 2^-10", ratio)
	}
}

func TestDecayRebaseKeepsWeights(t *testing.T) {
	// Jumping far past the rebase threshold (512 half-lives) must re-zero
	// the inflation basis without disturbing relative weights.
	s := NewStore(StoreOptions{Service: "svc", HalfLife: 0.001})
	ingestAt(s, 0.0, edge(1, 2))
	ingestAt(s, 1.0, edge(3, 4)) // 1000 half-lives later
	ingestAt(s, 1.0, edge(3, 4))
	sum := s.DecayedSummary()
	if w := sum.Edges[edge(3, 4)]; math.Abs(w-1) > 1e-9 {
		t.Errorf("recent weight %v, want ~1 (stale edge fully decayed)", w)
	}
	if _, alive := sum.Edges[edge(1, 2)]; alive {
		t.Error("fully decayed edge still in the summary")
	}
}

func TestIngestBatchJournalsAndReplays(t *testing.T) {
	batch := []TimedSample{
		{At: 0.001, Records: []cpu.BranchRecord{edge(1, 2)}},
		{At: 0.002, Records: []cpu.BranchRecord{edge(3, 4), edge(5, 6)}},
		{At: 0.003}, // empty snapshot: skipped, not journaled
	}
	rec := replay.NewRecorder(0)
	s := NewStore(StoreOptions{Service: "svc", Replay: rec})
	if err := s.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Samples != 2 || st.Records != 3 {
		t.Fatalf("stats after batch = %+v, want 2 samples / 3 records", st)
	}
	events := rec.Journal().Events()
	if len(events) != 1 || events[0].Type != trace.EvProfileIngest {
		t.Fatalf("journal = %+v, want one EvProfileIngest", events)
	}

	// Replaying the identical batch verifies against the journal; a
	// different batch is a divergence, refused before touching the store.
	rp, err := replay.NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(StoreOptions{Service: "svc", Replay: rp})
	if err := s2.IngestBatch(batch); err != nil {
		t.Fatalf("identical batch diverged: %v", err)
	}
	rp2, err := replay.NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	s3 := NewStore(StoreOptions{Service: "svc", Replay: rp2})
	tampered := []TimedSample{{At: 0.001, Records: []cpu.BranchRecord{edge(9, 9)}}}
	if err := s3.IngestBatch(tampered); err == nil {
		t.Fatal("tampered batch replayed without divergence")
	}
	if st := s3.Stats(); st.Samples != 0 {
		t.Error("diverged batch still landed in the store")
	}
}

func TestStoreWithoutSessionIngests(t *testing.T) {
	s := NewStore(StoreOptions{Service: "svc"}) // nil replay session
	if err := s.IngestBatch([]TimedSample{{At: 0.001, Records: []cpu.BranchRecord{edge(1, 2)}}}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Samples != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
