package profile

import (
	"math"
	"sync"

	"repro/internal/replay"
)

// ReoptPolicy is the drift detector's hysteresis: every guard that has
// to pass before a Steady service is sent back around the optimization
// loop. The zero value takes all defaults.
type ReoptPolicy struct {
	// MinDivergence is the total-variation score (Divergence, in [0,1])
	// the live window must reach against the layout's build profile
	// before a re-optimization can fire (default 0.35). Uniform sampling
	// noise on a stationary workload scores far below it; a hot-set swap
	// scores far above.
	MinDivergence float64
	// MinDwell is the minimum simulated time a service must sit Steady
	// before drift may re-trigger it (default 0.002 s): a layout gets to
	// serve at least one settle period before being judged stale.
	MinDwell float64
	// Cooldown is the minimum simulated time between drift-triggered
	// re-optimizations of one service (default 0.004 s), so an oscillating
	// workload cannot thrash the fleet with stop-the-world pauses.
	Cooldown float64
	// ShardBudget caps how many drift-triggered services one shard may
	// re-optimize per wave (default 4; <0 = unlimited). Keeps a
	// fleet-wide phase turn from turning into a fleet-wide pause storm.
	ShardBudget int
	// Window is the trailing sample window scored against the baseline;
	// 0 means the fleet's profiling duration.
	Window float64
}

// WithDefaults fills unset policy fields.
func (p ReoptPolicy) WithDefaults() ReoptPolicy {
	if p.MinDivergence == 0 {
		p.MinDivergence = 0.35
	}
	if p.MinDwell == 0 {
		p.MinDwell = 0.002
	}
	if p.Cooldown == 0 {
		p.Cooldown = 0.004
	}
	if p.ShardBudget == 0 {
		p.ShardBudget = 4
	}
	return p
}

// Decision is one drift verdict for one service.
type Decision struct {
	// Score is the total-variation divergence of the live window against
	// the layout's build profile.
	Score float64 `json:"score"`
	// Trigger reports that re-optimization should fire.
	Trigger bool `json:"trigger"`
	// Reason explains the verdict: "drift" on trigger, else which guard
	// held it back ("no_baseline", "no_samples", "fingerprint_match",
	// "below_threshold", "dwell", "cooldown"; the wave may later add
	// "budget").
	Reason string `json:"reason"`
}

// Reason values for Decision and the drift journal events.
const (
	ReasonDrift       = "drift"
	ReasonNoBaseline  = "no_baseline"
	ReasonNoSamples   = "no_samples"
	ReasonFingerprint = "fingerprint_match"
	ReasonBelow       = "below_threshold"
	ReasonDwell       = "dwell"
	ReasonCooldown    = "cooldown"
	ReasonBudget      = "budget"
)

// Tracker is one service's drift state: the summary of the profile its
// current layout was built from, when it last went Steady, and when it
// last re-optimized. The fleet manager rebases it every time a new
// layout lands and consults Check on every drift scan.
type Tracker struct {
	mu        sync.Mutex
	baseline  Summary
	hasBase   bool
	steadyAt  float64
	lastReopt float64
	lastScore float64
}

// NewTracker returns an empty tracker (no baseline: drift never fires
// until a layout lands and Rebase is called).
func NewTracker() *Tracker { return &Tracker{} }

// Rebase installs the build profile of the layout that just landed as
// the drift baseline.
func (t *Tracker) Rebase(base Summary, now float64) {
	t.mu.Lock()
	t.baseline = base
	t.hasBase = base.Total > 0
	t.steadyAt = now
	t.mu.Unlock()
}

// Clear drops the baseline (the service reverted to C0: there is no
// built layout left to go stale).
func (t *Tracker) Clear() {
	t.mu.Lock()
	t.baseline = Summary{}
	t.hasBase = false
	t.mu.Unlock()
}

// MarkSteady records the instant the service (re-)entered Steady; the
// dwell guard counts from here.
func (t *Tracker) MarkSteady(now float64) {
	t.mu.Lock()
	t.steadyAt = now
	t.mu.Unlock()
}

// MarkReopt records the instant a drift-triggered re-optimization
// started; the cooldown guard counts from here.
func (t *Tracker) MarkReopt(now float64) {
	t.mu.Lock()
	t.lastReopt = now
	t.mu.Unlock()
}

// LastScore returns the most recent divergence score Check computed.
func (t *Tracker) LastScore() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastScore
}

// Check scores the live windowed summary against the baseline and runs
// the hysteresis guards in a fixed order (score first, so every verdict
// carries it; then fingerprint, threshold, dwell, cooldown). The
// fingerprint guard is what makes the ±40%-noise band structurally
// quiet: if the quantized fingerprints still collide, the layout cache
// would serve the identical layout back, so re-optimizing cannot help
// whatever the raw weights say.
func (t *Tracker) Check(live Summary, now float64, p ReoptPolicy) Decision {
	p = p.WithDefaults()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.hasBase {
		return Decision{Reason: ReasonNoBaseline}
	}
	if live.Total == 0 {
		return Decision{Reason: ReasonNoSamples}
	}
	d := Decision{Score: Divergence(live, t.baseline)}
	t.lastScore = d.Score
	switch {
	case live.FP == t.baseline.FP:
		d.Reason = ReasonFingerprint
	case d.Score < p.MinDivergence:
		d.Reason = ReasonBelow
	case now-t.steadyAt < p.MinDwell:
		d.Reason = ReasonDwell
	case t.lastReopt > 0 && now-t.lastReopt < p.Cooldown:
		d.Reason = ReasonCooldown
	default:
		d.Trigger = true
		d.Reason = ReasonDrift
	}
	return d
}

// Journal writes the decision to the replay session as an
// EvDriftDecision with the score bit-exact, so a replayed drift scan
// must recompute the identical verdict.
func (d Decision) Journal(sess *replay.Session, service string) error {
	return sess.DriftEvent(service, math.Float64bits(d.Score), d.Trigger, d.Reason)
}
