package profile

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/perf"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/workloads/wl"
)

// basePolicy keeps the hysteresis explicit in every test.
var basePolicy = ReoptPolicy{MinDivergence: 0.35, MinDwell: 0.002, Cooldown: 0.004}

// syntheticSummary builds a deterministic 20-edge profile whose weights
// span two orders of magnitude (a realistic hot/warm/cold mix).
func syntheticSummary(scale func(i int) float64) Summary {
	edges := map[cpu.BranchRecord]int{}
	for i := 0; i < 20; i++ {
		w := 1000.0 / float64(i+1) // Zipf-ish
		if scale != nil {
			w *= scale(i)
		}
		edges[edge(uint64(0x1000+i*16), uint64(0x2000+i*16))] = int(w) + 1
	}
	return Summarize(rawFrom(edges))
}

func TestTrackerReasonPaths(t *testing.T) {
	tr := NewTracker()
	live := syntheticSummary(nil)

	// No baseline yet: never fires.
	if d := tr.Check(live, 1.0, basePolicy); d.Trigger || d.Reason != ReasonNoBaseline {
		t.Fatalf("no-baseline check = %+v", d)
	}

	tr.Rebase(syntheticSummary(nil), 0)
	// Empty live window: nothing to judge.
	if d := tr.Check(Summary{}, 1.0, basePolicy); d.Trigger || d.Reason != ReasonNoSamples {
		t.Fatalf("no-samples check = %+v", d)
	}
	// Identical profile: the fingerprints collide, structurally quiet.
	if d := tr.Check(live, 1.0, basePolicy); d.Trigger || d.Reason != ReasonFingerprint {
		t.Fatalf("identical-profile check = %+v", d)
	}

	// A mild reshuffle: fingerprint moves but TV stays under the bar.
	mild := syntheticSummary(func(i int) float64 {
		if i < 2 {
			return 1.6 // boost the two hottest edges
		}
		return 1
	})
	d := tr.Check(mild, 1.0, basePolicy)
	if d.Trigger || d.Score >= basePolicy.MinDivergence {
		t.Fatalf("mild reshuffle fired: %+v", d)
	}
	if d.Reason != ReasonBelow && d.Reason != ReasonFingerprint {
		t.Fatalf("mild reshuffle reason %q", d.Reason)
	}
	if tr.LastScore() != d.Score {
		t.Errorf("LastScore %v != decision score %v", tr.LastScore(), d.Score)
	}

	// A disjoint hot set before the dwell has passed: held by dwell.
	swapped := Summarize(rawFrom(map[cpu.BranchRecord]int{
		edge(0x9000, 0x9100): 5, edge(0x9200, 0x9300): 5,
	}))
	if d := tr.Check(swapped, 0.001, basePolicy); d.Trigger || d.Reason != ReasonDwell {
		t.Fatalf("pre-dwell swap = %+v", d)
	}
	// After the dwell: fires.
	if d := tr.Check(swapped, 0.01, basePolicy); !d.Trigger || d.Reason != ReasonDrift {
		t.Fatalf("post-dwell swap = %+v", d)
	}
	if d := tr.Check(swapped, 0.01, basePolicy); math.Abs(d.Score-1) > 1e-9 || tr.LastScore() != d.Score {
		t.Fatalf("disjoint swap score %v (last %v), want ~1", d.Score, tr.LastScore())
	}

	// Cooldown: a re-optimization just fired; the next swap must wait.
	tr.MarkReopt(0.01)
	if d := tr.Check(swapped, 0.012, basePolicy); d.Trigger || d.Reason != ReasonCooldown {
		t.Fatalf("in-cooldown swap = %+v", d)
	}
	if d := tr.Check(swapped, 0.02, basePolicy); !d.Trigger {
		t.Fatalf("post-cooldown swap = %+v", d)
	}

	// Clear drops the baseline (service reverted to C0).
	tr.Clear()
	if d := tr.Check(swapped, 1.0, basePolicy); d.Reason != ReasonNoBaseline {
		t.Fatalf("post-clear check = %+v", d)
	}
}

// TestStationaryNoiseNeverTriggers is the hysteresis guarantee the drift
// detector is built around: per-edge sampling noise up to ±40% on a
// stationary workload must never fire a re-optimization, whatever the
// noise seed — either the quantized fingerprints still collide or the
// total-variation score stays under the threshold.
func TestStationaryNoiseNeverTriggers(t *testing.T) {
	baseline := syntheticSummary(nil)
	for _, tc := range []struct {
		name string
		seed uint64
	}{
		{"seed1", 0x9E3779B97F4A7C15},
		{"seed2", 0xBF58476D1CE4E5B9},
		{"seed3", 0x94D049BB133111EB},
		{"seed4", 0x2545F4914F6CDD1D},
		{"seed5", 0xD6E8FEB86659FD93},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTracker()
			tr.Rebase(baseline, 0)
			noisy := syntheticSummary(func(i int) float64 {
				r := wl.SplitMix64(tc.seed ^ uint64(i))
				return 0.6 + 0.8*float64(r%1000)/1000 // uniform in [0.6, 1.4)
			})
			// Far past dwell and cooldown: only score/fingerprint guard.
			d := tr.Check(noisy, 10.0, basePolicy)
			if d.Trigger {
				t.Fatalf("stationary ±40%% noise fired: %+v", d)
			}
		})
	}
}

// TestHotSwapAlwaysTriggers is the complementary guarantee: a real
// hot-set swap fires as soon as the dwell bound passes, for any tenant
// pairing.
func TestHotSwapAlwaysTriggers(t *testing.T) {
	for shift := 1; shift <= 5; shift++ {
		tr := NewTracker()
		tr.Rebase(syntheticSummary(nil), 0)
		swapped := Summarize(rawFrom(map[cpu.BranchRecord]int{
			edge(uint64(0x10000*shift), uint64(0x10000*shift+64)):      7,
			edge(uint64(0x10000*shift+128), uint64(0x10000*shift+192)): 3,
		}))
		// Still dwelling: held, not fired.
		if d := tr.Check(swapped, basePolicy.MinDwell/2, basePolicy); d.Trigger {
			t.Fatalf("shift %d fired before dwell: %+v", shift, d)
		}
		// First check past the dwell bound: must fire.
		d := tr.Check(swapped, basePolicy.MinDwell, basePolicy)
		if !d.Trigger || d.Reason != ReasonDrift {
			t.Fatalf("shift %d did not fire at dwell bound: %+v", shift, d)
		}
		if d.Score < basePolicy.MinDivergence {
			t.Fatalf("shift %d swap scored %v", shift, d.Score)
		}
	}
}

func TestDecisionJournalRoundTrip(t *testing.T) {
	rec := replay.NewRecorder(0)
	d := Decision{Score: 0.875, Trigger: true, Reason: ReasonDrift}
	if err := d.Journal(rec, "svc"); err != nil {
		t.Fatal(err)
	}
	events := rec.Journal().Events()
	if len(events) != 1 || events[0].Type != trace.EvDriftDecision {
		t.Fatalf("journal = %+v", events)
	}
	rp, err := replay.NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Journal(rp, "svc"); err != nil {
		t.Fatalf("identical decision diverged: %v", err)
	}
	rp2, _ := replay.NewReplayer(events)
	other := Decision{Score: 0.874, Trigger: true, Reason: ReasonDrift}
	if err := other.Journal(rp2, "svc"); err == nil {
		t.Fatal("bit-different score replayed without divergence")
	}
}

// The policy window falls back to sensible defaults.
func TestPolicyDefaults(t *testing.T) {
	p := ReoptPolicy{}.WithDefaults()
	if p.MinDivergence != 0.35 || p.MinDwell != 0.002 || p.Cooldown != 0.004 || p.ShardBudget != 4 {
		t.Errorf("defaults = %+v", p)
	}
	keep := ReoptPolicy{MinDivergence: 0.5, MinDwell: 1, Cooldown: 2, ShardBudget: -1}.WithDefaults()
	if keep.MinDivergence != 0.5 || keep.ShardBudget != -1 {
		t.Errorf("explicit values overwritten: %+v", keep)
	}
}

// Guard against the divergence metric silently changing what the store
// serves: a summary of a store window equals summarizing the window.
func TestSummaryOfStoreWindow(t *testing.T) {
	s := NewStore(StoreOptions{Service: "svc"})
	s.Ingest(perf.Sample{Records: []cpu.BranchRecord{edge(1, 2), edge(1, 2), edge(3, 4)}}, 0.001)
	sum := Summarize(s.Window(1))
	if sum.Total != 3 || math.Abs(sum.Edges[edge(1, 2)]-2.0/3) > 1e-12 {
		t.Errorf("windowed summary = %+v", sum)
	}
}
