package profile

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cpu"
	"repro/internal/perf"
	"repro/internal/replay"
)

// StoreOptions configures one service's sample store.
type StoreOptions struct {
	// Service names the store's owner in journal events and stats.
	Service string
	// Capacity bounds the sample ring (default 8192 snapshots). When the
	// ring is full the oldest snapshot is dropped and counted.
	Capacity int
	// HalfLife is the decay half-life (simulated seconds) of the rolling
	// edge-weight accumulator behind Stats and DecayedSummary (default
	// 0.01 s — a few profiling windows at this repo's time scale). The
	// windowed snapshots that feed optimization rounds are not decayed;
	// the accumulator is the long-horizon view reporting surfaces read.
	HalfLife float64
	// Replay journals external batch ingests (EvProfileIngest). The
	// in-process streaming path needs no journaling: sample arrival is a
	// deterministic function of the simulated execution.
	Replay *replay.Session
}

func (o *StoreOptions) defaults() {
	if o.Capacity == 0 {
		o.Capacity = 8192
	}
	if o.HalfLife == 0 {
		o.HalfLife = 0.01
	}
}

// Store is a per-service bounded ring of timestamped LBR snapshots plus
// a time-decayed edge-weight accumulator. It is the fleet-side half of
// the streaming ingest API: perf.Streamer (in-process) and the control
// plane's POST /profile (external) both land here, optimization rounds
// read trailing windows back out through the Source interface, and the
// drift tracker compares those windows against the layout's build
// profile. All methods are safe for concurrent use.
type Store struct {
	opts StoreOptions

	mu      sync.Mutex
	ring    []TimedSample // oldest first; bounded by opts.Capacity
	now     float64       // max sample timestamp seen
	epoch   float64       // Window floor: set at each code replacement
	dropped uint64        // snapshots evicted by the capacity bound
	total   uint64        // records ever ingested

	// Decayed edge accumulator. Weights are stored inflated by
	// 2^((at-decayT0)/HalfLife) at ingest time, so decay is O(1) per
	// ingest (pure accumulation) and the true weight is recovered by one
	// global deflation at read time; the basis is re-zeroed when the
	// inflation factor approaches the float64 exponent range.
	decay   map[cpu.BranchRecord]float64
	decayT0 float64
}

// NewStore builds an empty store.
func NewStore(opts StoreOptions) *Store {
	opts.defaults()
	return &Store{opts: opts, decay: make(map[cpu.BranchRecord]float64)}
}

// Ingest absorbs one in-process LBR snapshot taken at the given
// simulated time. It is perf.Streamer's sink.
func (s *Store) Ingest(sample perf.Sample, at float64) {
	s.mu.Lock()
	s.ingestLocked(TimedSample{At: at, Records: sample.Records})
	s.mu.Unlock()
}

// IngestBatch absorbs one externally pushed batch (POST /profile). The
// batch is journaled through the replay session: external pushes are
// environment input, so a recorded session that contains them only
// replays against a harness re-supplying identical batches.
func (s *Store) IngestBatch(batch []TimedSample) error {
	samples, branches := 0, 0
	for _, ts := range batch {
		if len(ts.Records) == 0 {
			continue
		}
		samples++
		branches += len(ts.Records)
	}
	if err := s.opts.Replay.ProfileIngest(s.opts.Service, samples, branches, BatchDigest(batch)); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ts := range batch {
		if len(ts.Records) == 0 {
			continue
		}
		s.ingestLocked(ts)
	}
	return nil
}

func (s *Store) ingestLocked(ts TimedSample) {
	if ts.At > s.now {
		s.now = ts.At
	}
	if len(s.ring) >= s.opts.Capacity {
		n := len(s.ring) - s.opts.Capacity + 1
		s.ring = append(s.ring[:0], s.ring[n:]...)
		s.dropped += uint64(n)
	}
	s.ring = append(s.ring, ts)
	s.total += uint64(len(ts.Records))

	// Accumulate into the decayed view, re-zeroing the inflation basis
	// before the factor can overflow float64's exponent.
	if ts.At-s.decayT0 > 512*s.opts.HalfLife {
		s.rebaseDecayLocked(ts.At)
	}
	inflate := math.Exp2((ts.At - s.decayT0) / s.opts.HalfLife)
	for _, r := range ts.Records {
		s.decay[r] += inflate
	}
}

// rebaseDecayLocked moves the decay basis to newT0, deflating every
// stored weight so read-time values are unchanged. Weights that have
// decayed to nothing are dropped, bounding the map at the edge set that
// is still warm.
func (s *Store) rebaseDecayLocked(newT0 float64) {
	deflate := math.Exp2((s.decayT0 - newT0) / s.opts.HalfLife)
	for rec, w := range s.decay {
		w *= deflate
		if w < 1e-12 {
			delete(s.decay, rec)
			continue
		}
		s.decay[rec] = w
	}
	s.decayT0 = newT0
}

// Now returns the stream clock: the latest sample timestamp ingested.
func (s *Store) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Epoch marks a code-replacement boundary: samples older than this
// instant profiled the outgoing layout (their addresses may not even
// exist in the new one), so Window never reaches back past it.
func (s *Store) Epoch() {
	s.mu.Lock()
	s.epoch = s.now
	s.mu.Unlock()
}

// Window returns the snapshots from the trailing window of the given
// simulated duration, floored at the last Epoch mark. The returned
// profile's Seconds is the span actually covered.
func (s *Store) Window(seconds float64) *perf.RawProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	from := s.now - seconds
	if s.epoch > from {
		from = s.epoch
	}
	// The ring is sorted by arrival; timestamps are monotone per source
	// and near-monotone across sources, so binary search on At is exact
	// enough — equal-time samples are kept, earlier stragglers skipped.
	i := sort.Search(len(s.ring), func(i int) bool { return s.ring[i].At >= from })
	raw := &perf.RawProfile{}
	for _, ts := range s.ring[i:] {
		raw.Samples = append(raw.Samples, perf.Sample{Records: ts.Records})
	}
	if len(s.ring) > i {
		raw.Seconds = s.now - s.ring[i].At
	}
	if raw.Seconds == 0 && len(raw.Samples) > 0 {
		raw.Seconds = seconds
	}
	return raw
}

// DecayedSummary reduces the decayed edge accumulator to a normalized
// Summary — the long-horizon "what has been hot lately" view (no
// fingerprint: it never corresponds to one raw profile).
func (s *Store) DecayedSummary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Sum in sorted edge order: float addition is not associative, and
	// the rendered weights (and any TopEdges tie-break they feed) should
	// not wobble in the last ulp with map iteration order.
	edges := make([]cpu.BranchRecord, 0, len(s.decay))
	for rec := range s.decay {
		edges = append(edges, rec)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	var total float64
	for _, rec := range edges {
		total += s.decay[rec]
	}
	sum := Summary{Edges: make(map[cpu.BranchRecord]float64, len(s.decay))}
	if total == 0 {
		return sum
	}
	for _, rec := range edges {
		sum.Edges[rec] = s.decay[rec] / total
	}
	sum.Total = s.total
	return sum
}

// StoreStats is the observable state of one store (GET /profile).
type StoreStats struct {
	Service string  `json:"service"`
	Samples int     `json:"samples"`
	Records uint64  `json:"records_total"`
	Dropped uint64  `json:"samples_dropped"`
	Now     float64 `json:"now"`
	Epoch   float64 `json:"epoch"`
}

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Service: s.opts.Service,
		Samples: len(s.ring),
		Records: s.total,
		Dropped: s.dropped,
		Now:     s.now,
		Epoch:   s.epoch,
	}
}

// String aids debugging.
func (s *Store) String() string {
	st := s.Stats()
	return fmt.Sprintf("profile.Store{%s: %d samples, %d records, now=%.4f}",
		st.Service, st.Samples, st.Records, st.Now)
}
