package profile

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/perf"
)

// rawFrom builds a one-sample raw profile with count copies of each edge.
func rawFrom(edges map[cpu.BranchRecord]int) *perf.RawProfile {
	var recs []cpu.BranchRecord
	for rec, n := range edges {
		for i := 0; i < n; i++ {
			recs = append(recs, rec)
		}
	}
	return &perf.RawProfile{Samples: []perf.Sample{{Records: recs}}, Seconds: 0.001}
}

func edge(from, to uint64) cpu.BranchRecord { return cpu.BranchRecord{From: from, To: to} }

func TestSummarizeNormalizes(t *testing.T) {
	raw := rawFrom(map[cpu.BranchRecord]int{
		edge(0x100, 0x200): 3,
		edge(0x300, 0x400): 1,
	})
	s := Summarize(raw)
	if s.Total != 4 {
		t.Fatalf("Total = %d, want 4", s.Total)
	}
	if w := s.Edges[edge(0x100, 0x200)]; math.Abs(w-0.75) > 1e-12 {
		t.Errorf("hot edge weight %v, want 0.75", w)
	}
	var sum float64
	for _, w := range s.Edges {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	if s.FP == "" {
		t.Error("no fingerprint")
	}
	empty := Summarize(&perf.RawProfile{})
	if empty.Total != 0 || len(empty.Edges) != 0 {
		t.Errorf("empty profile summarized to %+v", empty)
	}
}

func TestDivergenceBounds(t *testing.T) {
	a := Summarize(rawFrom(map[cpu.BranchRecord]int{edge(1, 2): 2, edge(3, 4): 2}))
	if d := Divergence(a, a); d != 0 {
		t.Errorf("self divergence %v, want 0", d)
	}
	// Same shape at 10x the volume: total variation ignores volume.
	thick := Summarize(rawFrom(map[cpu.BranchRecord]int{edge(1, 2): 20, edge(3, 4): 20}))
	if d := Divergence(a, thick); d != 0 {
		t.Errorf("volume-only divergence %v, want 0", d)
	}
	// Disjoint edge sets: a full hot-set swap.
	b := Summarize(rawFrom(map[cpu.BranchRecord]int{edge(5, 6): 4}))
	if d := Divergence(a, b); math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint divergence %v, want 1", d)
	}
	if d1, d2 := Divergence(a, b), Divergence(b, a); d1 != d2 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
	// Half the mass moved: TV is exactly the moved share.
	c := Summarize(rawFrom(map[cpu.BranchRecord]int{edge(1, 2): 2, edge(5, 6): 2}))
	if d := Divergence(a, c); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("half-swap divergence %v, want 0.5", d)
	}
}

func TestTopEdges(t *testing.T) {
	s := Summarize(rawFrom(map[cpu.BranchRecord]int{
		edge(0x30, 0x40): 1,
		edge(0x10, 0x20): 6,
		edge(0x50, 0x60): 1, // ties with 0x30: lower From wins
		edge(0x70, 0x80): 2,
	}))
	top := TopEdges(s, 3)
	if len(top) != 3 {
		t.Fatalf("got %d edges, want 3", len(top))
	}
	if top[0].From != 0x10 || top[1].From != 0x70 || top[2].From != 0x30 {
		t.Errorf("order %#x %#x %#x, want 0x10 0x70 0x30", top[0].From, top[1].From, top[2].From)
	}
	if got := TopEdges(s, 100); len(got) != 4 {
		t.Errorf("unbounded n returned %d edges, want all 4", len(got))
	}
}

func TestBatchDigestIdentity(t *testing.T) {
	batch := []TimedSample{
		{At: 0.001, Records: []cpu.BranchRecord{edge(1, 2), edge(3, 4)}},
		{At: 0.002, Records: []cpu.BranchRecord{edge(5, 6)}},
	}
	same := []TimedSample{
		{At: 0.001, Records: []cpu.BranchRecord{edge(1, 2), edge(3, 4)}},
		{At: 0.002, Records: []cpu.BranchRecord{edge(5, 6)}},
	}
	if BatchDigest(batch) != BatchDigest(same) {
		t.Error("identical batches digest differently")
	}
	reordered := []TimedSample{same[1], same[0]}
	if BatchDigest(batch) == BatchDigest(reordered) {
		t.Error("order not part of the digest")
	}
	shifted := []TimedSample{
		{At: 0.009, Records: []cpu.BranchRecord{edge(1, 2), edge(3, 4)}},
		{At: 0.002, Records: []cpu.BranchRecord{edge(5, 6)}},
	}
	if BatchDigest(batch) == BatchDigest(shifted) {
		t.Error("timestamps not part of the digest")
	}
}
