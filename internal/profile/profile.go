// Package profile is the streaming profile-ingestion subsystem: the
// collector side of a production PGO pipeline (Google-Wide Profiling,
// §V's "fleet-wide profiling infrastructure"). Instead of the fleet
// pulling a fixed LBR window from each service when it decides to
// optimize, services stream samples continuously — in-process through a
// perf.Streamer, or externally through the control plane's
// POST /profile — into a per-service bounded Store. Optimization rounds
// then serve their profile from the store's recent window, and a drift
// Tracker compares the live windowed profile against the profile the
// current layout was built from, firing re-optimization through the
// fleet lifecycle when the workload's hot set has genuinely moved.
//
// Divergence is scored as total-variation distance over normalized edge
// weights, on the same per-edge histogram layout.ProfileFingerprint
// quantizes (layout.EdgeCounts), so "the cache would have missed" and
// "the drift detector sees movement" are judgments about the same
// object. The fingerprint's quantization is deliberately coarse —
// uniform sampling noise collides — and the Tracker inherits that: a
// stationary-but-noisy profile never re-triggers, a hot-set swap does.
package profile

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"repro/internal/cpu"
	"repro/internal/layout"
	"repro/internal/perf"
)

// Source serves profiling windows from a stream of samples. It is what
// Controller.AttachProfileSource consumes: Window replaces the one-shot
// perf.Record pull, and Now is the stream's own notion of time (the
// maximum sample timestamp seen), which the drift tracker's dwell and
// cooldown arithmetic runs on.
type Source interface {
	// Window returns the samples observed in the trailing window of the
	// given simulated duration (bounded below by the last Epoch mark).
	Window(seconds float64) *perf.RawProfile
	// Now is the stream clock: the latest sample timestamp ingested.
	Now() float64
}

// Summary is the drift detector's view of one profile: the normalized
// per-edge weight distribution, the total record volume, and the
// quantized layout fingerprint of the raw profile it came from.
type Summary struct {
	// Edges maps each branch edge to its share of the total record
	// volume (weights sum to 1 when Total > 0).
	Edges map[cpu.BranchRecord]float64
	// Total is the raw record volume the weights were normalized from.
	Total uint64
	// FP is layout.ProfileFingerprint of the raw profile: equal
	// fingerprints mean the layout cache would serve the same layout, so
	// re-optimizing is pointless however the raw weights wiggle.
	FP string
}

// Summarize reduces a raw profile to its drift summary.
func Summarize(raw *perf.RawProfile) Summary {
	counts, total := layout.EdgeCounts(raw)
	s := Summary{
		Edges: make(map[cpu.BranchRecord]float64, len(counts)),
		Total: total,
		FP:    layout.ProfileFingerprint(raw),
	}
	if total == 0 {
		return s
	}
	for rec, c := range counts {
		s.Edges[rec] = float64(c) / float64(total)
	}
	return s
}

// Divergence is the total-variation distance between two summaries'
// edge-weight distributions: ½·Σ|p(e) − q(e)| over the union of edges,
// in [0, 1]. 0 means identical shape; 1 means disjoint hot sets (a full
// tenant swap). It is symmetric and insensitive to total volume, so a
// thinner-but-identically-shaped profile scores 0.
func Divergence(a, b Summary) float64 {
	// The sum runs in sorted edge order, not map order: float addition
	// is not associative, and the score is journaled bit-exactly — a
	// replayed scan must reproduce the identical last ulp.
	edges := make([]cpu.BranchRecord, 0, len(a.Edges)+len(b.Edges))
	for rec := range a.Edges {
		edges = append(edges, rec)
	}
	for rec := range b.Edges {
		if _, seen := a.Edges[rec]; !seen {
			edges = append(edges, rec)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	var d float64
	for _, rec := range edges {
		d += math.Abs(a.Edges[rec] - b.Edges[rec])
	}
	return d / 2
}

// TimedSample is one LBR snapshot with its stream timestamp (simulated
// seconds) — the wire unit of both the in-process streamer and the
// control plane's POST /profile batches.
type TimedSample struct {
	At      float64            `json:"at"`
	Records []cpu.BranchRecord `json:"records"`
}

// BatchDigest content-addresses a batch of timed samples. It is the
// identity attribute of the EvProfileIngest journal event: a replayed
// session must see byte-identical external batches in the same order.
func BatchDigest(batch []TimedSample) string {
	h := sha256.New()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	u64(uint64(len(batch)))
	for _, ts := range batch {
		u64(math.Float64bits(ts.At))
		u64(uint64(len(ts.Records)))
		for _, r := range ts.Records {
			u64(r.From)
			u64(r.To)
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// EdgeWeight is one normalized edge in a stats document, sorted hottest
// first (ties broken by address so documents are deterministic).
type EdgeWeight struct {
	From   uint64  `json:"from"`
	To     uint64  `json:"to"`
	Weight float64 `json:"weight"`
}

// TopEdges renders a summary's hottest n edges for reporting surfaces
// (GET /profile, experiment CSVs).
func TopEdges(s Summary, n int) []EdgeWeight {
	out := make([]EdgeWeight, 0, len(s.Edges))
	for rec, w := range s.Edges {
		out = append(out, EdgeWeight{From: rec.From, To: rec.To, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
