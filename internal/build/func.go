package build

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// bblock is a basic block under construction. fall names an explicit
// fall-through target; when empty and the block does not end in a
// terminator, control falls to the next block in emission order.
type bblock struct {
	label string
	insts []asm.AInst
	fall  string
	term  bool
}

// FuncBuilder emits one function. Plain instruction methods append to the
// current basic block; the structured constructs (If, While, Switch) and
// the label/branch primitives split blocks the way a compiler back-end
// would.
type FuncBuilder struct {
	p      *ProgramBuilder
	name   string
	blocks []*bblock
	cur    *bblock
	nlab   int
	jts    []asm.SrcJT
}

// Name returns the function's name.
func (f *FuncBuilder) Name() string { return f.name }

// autoLabel mints a fresh compiler-internal label. User labels never
// start with a dot, so the namespaces cannot collide.
func (f *FuncBuilder) autoLabel(kind string) string {
	f.nlab++
	return fmt.Sprintf(".%s%d", kind, f.nlab)
}

// emit appends one instruction, opening a fresh anonymous block if the
// previous one ended with a terminator.
func (f *FuncBuilder) emit(ai asm.AInst) {
	if f.cur == nil {
		f.cur = &bblock{label: f.autoLabel("b")}
	}
	f.cur.insts = append(f.cur.insts, ai)
}

// close ends the current block. term marks a terminator ending; fall
// names an explicit fall-through target ("" = sequential).
func (f *FuncBuilder) close(term bool, fall string) {
	if f.cur == nil {
		return
	}
	f.cur.term = term
	f.cur.fall = fall
	f.blocks = append(f.blocks, f.cur)
	f.cur = nil
}

// startBlock begins a new block with the given label, falling into it
// from the current block.
func (f *FuncBuilder) startBlock(label string) {
	f.close(false, "")
	f.cur = &bblock{label: label}
}

// finish lowers the builder state into an asm.Func. Idempotent: it does
// not consume the builder.
func (f *FuncBuilder) finish() (*asm.Func, error) {
	blocks := f.blocks
	if f.cur != nil {
		blocks = append(append([]*bblock(nil), blocks...), f.cur)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("build: function %s is empty", f.name)
	}
	fn := &asm.Func{Name: f.name, JumpTables: f.jts}
	for i, b := range blocks {
		ab := &asm.Block{Label: b.label, Insts: b.insts}
		switch {
		case b.term:
			// no fall-through
		case b.fall != "":
			ab.Fall = b.fall
		case i+1 < len(blocks):
			ab.Fall = blocks[i+1].label
		default:
			return nil, fmt.Errorf("build: function %s falls off the end (missing Ret/Halt/Goto)", f.name)
		}
		fn.Blocks = append(fn.Blocks, ab)
	}
	return fn, nil
}

// inst is shorthand for a plain instruction with no symbolic operands.
func inst(op isa.Op, rd, rs1, rs2 uint8, imm int64) asm.AInst {
	return asm.AInst{Inst: isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}}
}

// --- Plain instructions -------------------------------------------------

// Nop emits a single NOP.
func (f *FuncBuilder) Nop() { f.emit(inst(isa.NOP, 0, 0, 0, 0)) }

// PadCode emits n NOPs — inline cold padding, the raw material the
// optimizer's peephole pass deletes from relocated code.
func (f *FuncBuilder) PadCode(n int) {
	for i := 0; i < n; i++ {
		f.Nop()
	}
}

// MovI sets rd to an immediate.
func (f *FuncBuilder) MovI(rd uint8, imm int64) { f.emit(inst(isa.MOVI, rd, 0, 0, imm)) }

// Mov copies rs into rd.
func (f *FuncBuilder) Mov(rd, rs uint8) { f.emit(inst(isa.MOV, rd, rs, 0, 0)) }

// Register-register ALU ops.
func (f *FuncBuilder) Add(rd, rs1, rs2 uint8) { f.emit(inst(isa.ADD, rd, rs1, rs2, 0)) }
func (f *FuncBuilder) Sub(rd, rs1, rs2 uint8) { f.emit(inst(isa.SUB, rd, rs1, rs2, 0)) }
func (f *FuncBuilder) Mul(rd, rs1, rs2 uint8) { f.emit(inst(isa.MUL, rd, rs1, rs2, 0)) }
func (f *FuncBuilder) Div(rd, rs1, rs2 uint8) { f.emit(inst(isa.DIV, rd, rs1, rs2, 0)) }
func (f *FuncBuilder) Mod(rd, rs1, rs2 uint8) { f.emit(inst(isa.MOD, rd, rs1, rs2, 0)) }
func (f *FuncBuilder) And(rd, rs1, rs2 uint8) { f.emit(inst(isa.AND, rd, rs1, rs2, 0)) }
func (f *FuncBuilder) Or(rd, rs1, rs2 uint8)  { f.emit(inst(isa.OR, rd, rs1, rs2, 0)) }
func (f *FuncBuilder) Xor(rd, rs1, rs2 uint8) { f.emit(inst(isa.XOR, rd, rs1, rs2, 0)) }
func (f *FuncBuilder) Shl(rd, rs1, rs2 uint8) { f.emit(inst(isa.SHL, rd, rs1, rs2, 0)) }
func (f *FuncBuilder) Shr(rd, rs1, rs2 uint8) { f.emit(inst(isa.SHR, rd, rs1, rs2, 0)) }

// Register-immediate ALU ops.
func (f *FuncBuilder) AddI(rd, rs uint8, imm int64) { f.emit(inst(isa.ADDI, rd, rs, 0, imm)) }
func (f *FuncBuilder) MulI(rd, rs uint8, imm int64) { f.emit(inst(isa.MULI, rd, rs, 0, imm)) }
func (f *FuncBuilder) AndI(rd, rs uint8, imm int64) { f.emit(inst(isa.ANDI, rd, rs, 0, imm)) }
func (f *FuncBuilder) OrI(rd, rs uint8, imm int64)  { f.emit(inst(isa.ORI, rd, rs, 0, imm)) }
func (f *FuncBuilder) XorI(rd, rs uint8, imm int64) { f.emit(inst(isa.XORI, rd, rs, 0, imm)) }
func (f *FuncBuilder) ShlI(rd, rs uint8, imm int64) { f.emit(inst(isa.SHLI, rd, rs, 0, imm)) }
func (f *FuncBuilder) ShrI(rd, rs uint8, imm int64) { f.emit(inst(isa.SHRI, rd, rs, 0, imm)) }

// Ld loads the word at [base+off] into rd.
func (f *FuncBuilder) Ld(rd, base uint8, off int64) { f.emit(inst(isa.LD, rd, base, 0, off)) }

// St stores src at [base+off].
func (f *FuncBuilder) St(base uint8, off int64, src uint8) { f.emit(inst(isa.ST, 0, base, src, off)) }

// LdB loads the zero-extended byte at [base+off] into rd.
func (f *FuncBuilder) LdB(rd, base uint8, off int64) { f.emit(inst(isa.LDB, rd, base, 0, off)) }

// StB stores the low byte of src at [base+off].
func (f *FuncBuilder) StB(base uint8, off int64, src uint8) { f.emit(inst(isa.STB, 0, base, src, off)) }

// Cmp records rs1-rs2 in the flags for a following conditional.
func (f *FuncBuilder) Cmp(rs1, rs2 uint8) { f.emit(inst(isa.CMP, 0, rs1, rs2, 0)) }

// CmpI records rs1-imm in the flags for a following conditional.
func (f *FuncBuilder) CmpI(rs1 uint8, imm int64) { f.emit(inst(isa.CMPI, 0, rs1, 0, imm)) }

// Push pushes rs on the stack; Pop pops into rd.
func (f *FuncBuilder) Push(rs uint8) { f.emit(inst(isa.PUSH, 0, rs, 0, 0)) }
func (f *FuncBuilder) Pop(rd uint8)  { f.emit(inst(isa.POP, rd, 0, 0, 0)) }

// Sys invokes the process syscall handler with the given call number.
func (f *FuncBuilder) Sys(num int64) { f.emit(inst(isa.SYS, 0, 0, 0, num)) }

// Prologue establishes a frame with the given local size — the ENTER the
// unwindability ABI demands as the first instruction of every function
// the OCOLOS controller may need to crawl past.
func (f *FuncBuilder) Prologue(frame int64) { f.emit(inst(isa.ENTER, 0, 0, 0, frame)) }

// EpilogueRet tears the frame down and returns.
func (f *FuncBuilder) EpilogueRet() {
	f.emit(inst(isa.LEAVE, 0, 0, 0, 0))
	f.Ret()
}

// Ret returns (no frame teardown — for frameless leaves).
func (f *FuncBuilder) Ret() {
	f.emit(inst(isa.RET, 0, 0, 0, 0))
	f.close(true, "")
}

// Halt stops the current thread.
func (f *FuncBuilder) Halt() {
	f.emit(inst(isa.HALT, 0, 0, 0, 0))
	f.close(true, "")
}

// --- Symbolic operands --------------------------------------------------

// Call emits a direct call to the named function.
func (f *FuncBuilder) Call(name string) {
	f.emit(asm.AInst{Inst: isa.Inst{Op: isa.CALL}, Callee: name})
}

// CallR calls through the code address in rs (virtual dispatch and
// function pointers both end here).
func (f *FuncBuilder) CallR(rs uint8) { f.emit(inst(isa.CALLR, 0, rs, 0, 0)) }

// FuncPtr materializes the named function's address into rd — the single
// function-pointer creation site the OCOLOS hook instruments (§IV-C2).
func (f *FuncBuilder) FuncPtr(rd uint8, name string) {
	f.emit(asm.AInst{Inst: isa.Inst{Op: isa.FPTR, Rd: rd}, Callee: name})
}

// LoadGlobalAddr materializes the address of a global or v-table into rd.
func (f *FuncBuilder) LoadGlobalAddr(rd uint8, sym string) {
	f.emit(asm.AInst{Inst: isa.Inst{Op: isa.MOVI, Rd: rd}, DataSym: sym})
}

// VCall performs a virtual call: obj points at an object whose first word
// is the v-table address; slot selects the method. scratch is clobbered.
func (f *FuncBuilder) VCall(obj, scratch uint8, slot int64) {
	f.Ld(scratch, obj, 0)
	f.Ld(scratch, scratch, slot*8)
	f.CallR(scratch)
}

// --- Labels and branches ------------------------------------------------

// Label starts a new basic block here under the given name and returns
// the name, for Goto/BranchIf from either direction.
func (f *FuncBuilder) Label(name string) string {
	f.startBlock(name)
	return name
}

// LabelNamed is Label for pre-chosen (forward-referenced) names.
func (f *FuncBuilder) LabelNamed(name string) { f.startBlock(name) }

// Goto jumps unconditionally to a label.
func (f *FuncBuilder) Goto(label string) {
	f.emit(asm.AInst{Inst: isa.Inst{Op: isa.JMP}, TargetLabel: label})
	f.close(true, "")
}

// BranchIf branches to the label when the condition holds for the last
// Cmp/CmpI; otherwise control falls through. It ends the current block,
// as a conditional branch does in any compiler's CFG.
func (f *FuncBuilder) BranchIf(c isa.Cond, label string) {
	f.emit(asm.AInst{Inst: isa.Inst{Op: isa.JCC, Cond: c}, TargetLabel: label})
	f.close(false, "")
}

// --- Structured control flow --------------------------------------------

// If runs then when the condition holds for the preceding Cmp/CmpI, els
// (which may be nil) otherwise. Lowered the way -O2 lays it out: branch
// over the then-block on the negated condition, so the then-path is the
// fall-through.
func (f *FuncBuilder) If(c isa.Cond, then, els func()) {
	join := f.autoLabel("join")
	if els == nil {
		f.BranchIf(c.Negate(), join)
		then()
		f.startBlock(join)
		return
	}
	elseLbl := f.autoLabel("else")
	f.BranchIf(c.Negate(), elseLbl)
	then()
	f.close(false, join) // skip the else-block (JMP inserted at link)
	f.cur = &bblock{label: elseLbl}
	els()
	f.startBlock(join)
}

// While emits a loop: cond() must emit a Cmp/CmpI; the loop body runs
// while c holds for it.
func (f *FuncBuilder) While(cond func(), c isa.Cond, body func()) {
	head := f.autoLabel("loop")
	exit := f.autoLabel("endloop")
	f.startBlock(head)
	cond()
	f.BranchIf(c.Negate(), exit)
	body()
	f.Goto(head)
	f.cur = &bblock{label: exit}
}

// Switch dispatches on idx: cases[idx] runs for 0 ≤ idx < len(cases), def
// otherwise (def may be nil). With jump tables allowed it lowers to a
// bounds check plus a JTBL through a .rodata table — the construct that
// forces the -fno-jump-tables analog; under SetNoJumpTables(true) it
// lowers to the compare chain -fno-jump-tables produces.
func (f *FuncBuilder) Switch(idx uint8, cases []func(), def func()) {
	join := f.autoLabel("sjoin")
	defLbl := f.autoLabel("sdef")
	caseLbls := make([]string, len(cases))
	for i := range cases {
		caseLbls[i] = f.autoLabel("case")
	}
	if !f.p.noJT {
		jtName := fmt.Sprintf("%s.jt%d", f.name, len(f.jts))
		f.CmpI(idx, 0)
		f.BranchIf(isa.LT, defLbl)
		f.CmpI(idx, int64(len(cases)))
		f.BranchIf(isa.GE, defLbl)
		f.emit(asm.AInst{Inst: isa.Inst{Op: isa.JTBL, Rs1: idx}, JTName: jtName})
		f.close(true, "")
		f.jts = append(f.jts, asm.SrcJT{Name: jtName, Labels: caseLbls})
	} else {
		for i := range cases {
			f.CmpI(idx, int64(i))
			f.BranchIf(isa.EQ, caseLbls[i])
		}
		f.Goto(defLbl)
	}
	for i, body := range cases {
		f.close(false, "")
		f.cur = &bblock{label: caseLbls[i]}
		body()
		f.close(false, join)
	}
	f.cur = &bblock{label: defLbl}
	if def != nil {
		def()
	}
	f.startBlock(join)
}
