package build_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/proc"
)

// procMachine adapts proc.Process to build.Machine for the run helpers.
type procMachine struct{ p *proc.Process }

func (m procMachine) RunUntilHalt(maxInst uint64) uint64 { return m.p.RunUntilHalt(maxInst) }
func (m procMachine) RunFor(seconds float64)             { m.p.RunFor(seconds) }
func (m procMachine) Seconds() float64                   { return m.p.Seconds() }
func (m procMachine) Fault() error                       { return m.p.Fault() }
func (m procMachine) ReadWord(addr uint64) uint64        { return m.p.Mem.ReadWord(addr) }

func run(t *testing.T, r *build.Result) *build.Result {
	t.Helper()
	p, err := proc.Load(r.Binary, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.Attach(procMachine{p})
	r.RunUntilHalt(0)
	if err := r.Fault(); err != nil {
		t.Fatalf("%s faulted: %v", r.Binary.Name, err)
	}
	return r
}

func TestStructuredControlFlow(t *testing.T) {
	p := build.NewProgram("cf")
	p.Global("out", 8)
	p.Global("flags", 8)

	m := p.Func("main")
	m.Prologue(16)
	// while: sum 0..9 = 45
	m.MovI(isa.R7, 0)
	m.MovI(isa.R8, 0)
	m.While(func() { m.CmpI(isa.R7, 10) }, isa.LT, func() {
		m.Add(isa.R8, isa.R8, isa.R7)
		m.AddI(isa.R7, isa.R7, 1)
	})
	// if/else both directions: +100 (then), then +1000 (else)
	m.CmpI(isa.R8, 45)
	m.If(isa.EQ, func() { m.AddI(isa.R8, isa.R8, 100) },
		func() { m.AddI(isa.R8, isa.R8, 500) })
	m.CmpI(isa.R8, 0)
	m.If(isa.LT, func() { m.AddI(isa.R8, isa.R8, 7777) },
		func() { m.AddI(isa.R8, isa.R8, 1000) })
	// if without else, not taken
	m.CmpI(isa.R8, 0)
	m.If(isa.EQ, func() { m.MovI(isa.R8, 9) }, nil)
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R8)
	m.Halt()
	p.SetEntry("main")

	r, err := p.Build(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run(t, r)
	if got := r.Mem("out"); got != 45+100+1000 {
		t.Errorf("out = %d, want %d", got, 45+100+1000)
	}
}

// switchProgram stores 11*idx (case) or 999 (default) to "out".
func switchProgram(name string, jt bool, idx int64) *build.ProgramBuilder {
	p := build.NewProgram(name)
	p.SetNoJumpTables(!jt)
	p.Global("out", 8)
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R1, idx)
	cases := make([]func(), 4)
	for i := range cases {
		i := i
		cases[i] = func() { m.MovI(isa.R2, int64(11*i)) }
	}
	m.Switch(isa.R1, cases, func() { m.MovI(isa.R2, 999) })
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R2)
	m.Halt()
	p.SetEntry("main")
	return p
}

func TestSwitchBothLowerings(t *testing.T) {
	for _, jt := range []bool{true, false} {
		name := "chain"
		if jt {
			name = "jtbl"
		}
		t.Run(name, func(t *testing.T) {
			// In-range cases, the default, and the negative-index guard.
			for _, c := range []struct{ idx, want int64 }{
				{0, 0}, {2, 22}, {3, 33}, {9, 999}, {-1, 999},
			} {
				p := switchProgram("sw", jt, c.idx)
				r, err := p.Build(asm.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if jt && len(r.Binary.JumpTables) != 1 {
					t.Fatalf("jump-table mode emitted %d tables, want 1", len(r.Binary.JumpTables))
				}
				if !jt && len(r.Binary.JumpTables) != 0 {
					t.Fatalf("no-jump-table mode emitted %d tables, want 0", len(r.Binary.JumpTables))
				}
				if !jt != r.Binary.NoJumpTables {
					t.Fatal("binary jump-table flag does not match builder policy")
				}
				run(t, r)
				if got := r.Mem("out"); got != uint64(c.want) {
					t.Errorf("idx %d: out = %d, want %d", c.idx, got, c.want)
				}
			}
		})
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		prog func() *build.ProgramBuilder
		want string
	}{
		{"duplicate function", func() *build.ProgramBuilder {
			p := build.NewProgram("e")
			f := p.Func("f")
			f.Halt()
			g := p.Func("f")
			g.Halt()
			p.SetEntry("f")
			return p
		}, "duplicate function"},
		{"duplicate global", func() *build.ProgramBuilder {
			p := build.NewProgram("e")
			p.Global("g", 8)
			p.Global("g", 8)
			f := p.Func("main")
			f.Halt()
			p.SetEntry("main")
			return p
		}, "duplicate global"},
		{"no entry", func() *build.ProgramBuilder {
			p := build.NewProgram("e")
			f := p.Func("main")
			f.Halt()
			return p
		}, "no entry"},
		{"undefined entry", func() *build.ProgramBuilder {
			p := build.NewProgram("e")
			f := p.Func("main")
			f.Halt()
			p.SetEntry("other")
			return p
		}, "not defined"},
		{"falls off the end", func() *build.ProgramBuilder {
			p := build.NewProgram("e")
			f := p.Func("main")
			f.MovI(isa.R0, 1)
			p.SetEntry("main")
			return p
		}, "falls off the end"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.prog().Program()
			if err == nil {
				t.Fatal("expected error, got none")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	img := func() []byte {
		r, err := switchProgram("det", true, 1).Build(asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, s := range r.Binary.Sections {
			buf.WriteString(s.Name)
			buf.Write(s.Data)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(img(), img()) {
		t.Fatal("two builds of the same program differ")
	}
}

func TestVTableAndSyms(t *testing.T) {
	p := build.NewProgram("vt")
	p.SetNoJumpTables(true)
	p.Global("out", 8)
	a := p.Func("fa")
	a.MovI(isa.R0, 1111)
	a.Ret()
	b := p.Func("fb")
	b.MovI(isa.R0, 2222)
	b.Ret()
	p.VTable("vt0", "fa", "fb")
	p.Global("objp", 8)
	m := p.Func("main")
	m.Prologue(16)
	m.LoadGlobalAddr(isa.R6, "vt0")
	m.LoadGlobalAddr(isa.R7, "objp")
	m.St(isa.R7, 0, isa.R6)
	m.VCall(isa.R7, isa.R5, 1)
	m.LoadGlobalAddr(isa.R3, "out")
	m.St(isa.R3, 0, isa.R0)
	m.Halt()
	p.SetEntry("main")

	r, err := p.Build(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Addr("vt0") == 0 || r.Addr("out") == 0 || r.Addr("nosuch") != 0 {
		t.Fatalf("symbol table wrong: vt0=%#x out=%#x", r.Addr("vt0"), r.Addr("out"))
	}
	var vt *obj.VTable
	for _, v := range r.Binary.VTables {
		if v.Name == "vt0" {
			vt = v
		}
	}
	if vt == nil || len(vt.Slots) != 2 {
		t.Fatal("v-table missing from binary")
	}
	run(t, r)
	if got := r.Mem("out"); got != 2222 {
		t.Errorf("virtual call through slot 1 returned %d, want 2222", got)
	}
}

func TestMemPanics(t *testing.T) {
	r, err := switchProgram("p", false, 0).Build(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("unattached machine", func() { r.RunUntilHalt(0) })
	run(t, r)
	expectPanic("unknown symbol", func() { r.Mem("nosuch") })
}
