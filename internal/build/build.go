// Package build is the program-construction DSL the workloads and tests
// use: a thin structured-programming layer (functions, labels, if/while/
// switch, calls, v-tables) over the asm package's block-level IR. A
// ProgramBuilder accumulates functions, globals and v-tables; Program()
// lowers the structured bodies into asm basic blocks with explicit
// fall-throughs, and Assemble() links the result into an obj.Binary with
// the compiler-default (source-order) layout that every profile-guided
// layout is compared against.
//
// The builder deliberately mirrors what -O2 compiler output looks like on
// the synthetic ISA: every structured construct lowers to the obvious
// branch shape (conditional branch over the then-block, loop header with
// a guarding exit branch, bounds-checked jump table or compare chain for
// switches), so the bolt package has realistic control flow to rediscover
// and reorder.
package build

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/obj"
)

// ProgramBuilder accumulates a whole program. Errors encountered while
// building (duplicate functions, jump tables in a no-jump-table program)
// are recorded and reported by Program().
type ProgramBuilder struct {
	name    string
	entry   string
	noJT    bool
	funcs   []*FuncBuilder
	globals []asm.Global
	vtables []asm.VTable
	gseen   map[string]bool
	fseen   map[string]bool
	err     error
}

// NewProgram starts an empty program.
func NewProgram(name string) *ProgramBuilder {
	return &ProgramBuilder{
		name:  name,
		gseen: make(map[string]bool),
		fseen: make(map[string]bool),
	}
}

// failf records the first build error.
func (p *ProgramBuilder) failf(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("build: "+format, args...)
	}
}

// Func starts a new function body. Instructions appended to the returned
// FuncBuilder become the function's entry block onward.
func (p *ProgramBuilder) Func(name string) *FuncBuilder {
	if p.fseen[name] {
		p.failf("duplicate function %q", name)
	}
	p.fseen[name] = true
	f := &FuncBuilder{p: p, name: name}
	f.cur = &bblock{label: "entry"}
	p.funcs = append(p.funcs, f)
	return f
}

// Global declares a named .data chunk and returns its name (convenient
// for threading the symbol through emit helpers).
func (p *ProgramBuilder) Global(name string, size uint64, init ...[]byte) string {
	if p.gseen[name] {
		p.failf("duplicate global %q", name)
	}
	p.gseen[name] = true
	g := asm.Global{Name: name, Size: size}
	if len(init) > 0 {
		g.Init = init[0]
	}
	p.globals = append(p.globals, g)
	return name
}

// VTable declares a v-table whose slots are the named functions, in
// order, and returns its name.
func (p *ProgramBuilder) VTable(name string, slots ...string) string {
	p.vtables = append(p.vtables, asm.VTable{Name: name, Slots: slots})
	return name
}

// SetEntry names the entry function.
func (p *ProgramBuilder) SetEntry(name string) { p.entry = name }

// SetNoJumpTables toggles the -fno-jump-tables analog (§IV-D): when set,
// Switch lowers to a compare chain instead of a JTBL, and the assembled
// binary is marked jump-table-free so the OCOLOS controller accepts it.
func (p *ProgramBuilder) SetNoJumpTables(v bool) { p.noJT = v }

// NoJumpTables reports the current jump-table policy.
func (p *ProgramBuilder) NoJumpTables() bool { return p.noJT }

// Program lowers every function into the asm IR. It may be called more
// than once; the builder is not consumed.
func (p *ProgramBuilder) Program() (*asm.Program, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.entry == "" {
		return nil, fmt.Errorf("build: program %s has no entry (call SetEntry)", p.name)
	}
	if !p.fseen[p.entry] {
		return nil, fmt.Errorf("build: entry function %q not defined", p.entry)
	}
	prog := &asm.Program{
		Name:         p.name,
		Entry:        p.entry,
		NoJumpTables: p.noJT,
	}
	for i := range p.globals {
		prog.Globals = append(prog.Globals, &p.globals[i])
	}
	for i := range p.vtables {
		prog.VTables = append(prog.VTables, &p.vtables[i])
	}
	for _, f := range p.funcs {
		fn, err := f.finish()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	return prog, nil
}

// Assemble lowers and links the program with the compiler-default layout.
func (p *ProgramBuilder) Assemble(opts asm.Options) (*obj.Binary, error) {
	prog, err := p.Program()
	if err != nil {
		return nil, err
	}
	return asm.Assemble(prog, opts)
}

// Build assembles the program and packages it with its symbol table as a
// Result, ready to attach to a machine (see Result).
func (p *ProgramBuilder) Build(opts asm.Options) (*Result, error) {
	prog, err := p.Program()
	if err != nil {
		return nil, err
	}
	bin, err := asm.Assemble(prog, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Prog:   prog,
		Binary: bin,
		Syms:   asm.DataSymbols(prog, opts),
	}, nil
}
