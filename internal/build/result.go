package build

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/obj"
)

// Machine is the execution substrate a built program runs on. The proc
// package's Process satisfies it through the small adapter in
// internal/diffcheck (build cannot import proc directly: proc's own
// tests build programs with this package).
type Machine interface {
	// RunUntilHalt runs until every thread halts, a fault, or maxInst
	// retired instructions (0 = no limit); returns instructions executed.
	RunUntilHalt(maxInst uint64) uint64
	// RunFor advances the machine by the given simulated seconds.
	RunFor(seconds float64)
	// Seconds returns elapsed simulated time.
	Seconds() float64
	// Fault returns the first execution fault, if any.
	Fault() error
	// ReadWord reads the 8-byte word at an absolute address.
	ReadWord(addr uint64) uint64
}

// Result is a built program: the lowered IR, the linked binary, and the
// data-symbol table, optionally attached to a running machine so tests
// can drive it and observe its memory by symbol name.
type Result struct {
	Prog   *asm.Program
	Binary *obj.Binary
	Syms   map[string]uint64

	m Machine
}

// Attach binds a machine (a loaded process) to the result and returns
// the result for chaining.
func (r *Result) Attach(m Machine) *Result {
	r.m = m
	return r
}

// Machine returns the attached machine (nil before Attach).
func (r *Result) Machine() Machine { return r.m }

// Addr returns the address of a global or v-table, 0 if unknown.
func (r *Result) Addr(sym string) uint64 { return r.Syms[sym] }

func (r *Result) machine() Machine {
	if r.m == nil {
		panic(fmt.Sprintf("build: result %s not attached to a machine", r.Binary.Name))
	}
	return r.m
}

// RunUntilHalt drives the attached machine to completion (or the
// instruction budget) and returns instructions executed.
func (r *Result) RunUntilHalt(maxInst uint64) uint64 { return r.machine().RunUntilHalt(maxInst) }

// RunFor advances the attached machine by simulated seconds.
func (r *Result) RunFor(seconds float64) { r.machine().RunFor(seconds) }

// Seconds returns the attached machine's elapsed simulated time.
func (r *Result) Seconds() float64 { return r.machine().Seconds() }

// Fault returns the attached machine's first fault, if any.
func (r *Result) Fault() error { return r.machine().Fault() }

// Mem reads the word at the named global (or at Addr(sym)+off words for
// the variadic offset), by far the most common test observation.
func (r *Result) Mem(sym string, wordOff ...uint64) uint64 {
	addr, ok := r.Syms[sym]
	if !ok {
		panic(fmt.Sprintf("build: unknown data symbol %q in %s", sym, r.Binary.Name))
	}
	if len(wordOff) > 0 {
		addr += wordOff[0] * 8
	}
	return r.machine().ReadWord(addr)
}
