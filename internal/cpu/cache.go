package cpu

// cache is a set-associative cache model: tags only, true-LRU via access
// stamps. Lookups return hit/miss and insert on miss (allocate-on-miss,
// no writeback modeling — timing only).
type cache struct {
	sets     int
	ways     int
	shift    uint // log2(line or page size)
	setMask  uint64
	tags     []uint64 // sets*ways, 0 = invalid (tag stored +1)
	stamps   []uint64
	clock    uint64
	accesses uint64
	misses   uint64
	// epoch counts tag mutations: it bumps whenever any tags[] slot
	// changes (move-to-front swap or miss fill), and never on an MRU
	// way-0 hit. A verified tag predicate (FetchRunFast's plan check)
	// therefore stays true as long as epoch is unchanged.
	epoch uint64
}

// newCache builds a cache of capacity bytes with the given associativity
// and granularity (line size for caches, page size for TLBs).
func newCache(capacityBytes, ways, granuleBytes int) *cache {
	lines := capacityBytes / granuleBytes
	if lines < ways {
		ways = lines
	}
	sets := lines / ways
	if sets == 0 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < granuleBytes {
		shift++
	}
	return &cache{
		sets:    sets,
		ways:    ways,
		shift:   shift,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*ways),
		stamps:  make([]uint64, sets*ways),
	}
}

// newCacheEntries builds a cache with a fixed entry count (for TLBs/BTBs
// sized in entries rather than bytes).
func newCacheEntries(entries, ways, granuleBytes int) *cache {
	return newCache(entries*granuleBytes, ways, granuleBytes)
}

// access looks addr up, inserting on miss. Returns true on hit. This is
// the single hottest function of the whole simulator, so the common case
// is kept to a handful of instructions: a set's ways are an *unordered*
// tag→stamp map (eviction picks the minimum stamp wherever it sits), so
// hits are swapped into way 0 — move-to-front — making "hit in way 0"
// one compare and one stamp write, with zero observable difference in
// hit/miss behavior or eviction decisions.
func (c *cache) access(addr uint64) bool {
	c.clock++
	c.accesses++
	key := addr >> c.shift
	set := int(key&c.setMask) * c.ways
	tag := key + 1
	tags := c.tags[set : set+c.ways]
	stamps := c.stamps[set : set+c.ways : set+c.ways]
	if tags[0] == tag { // MRU fast path
		stamps[0] = c.clock
		return true
	}
	for w := 1; w < len(tags); w++ {
		if tags[w] == tag {
			tags[w], tags[0] = tags[0], tag
			stamps[w] = stamps[0]
			stamps[0] = c.clock
			c.epoch++
			return true
		}
	}
	c.misses++
	c.epoch++
	lruIdx := 0
	lruStamp := stamps[0]
	for w := 1; w < len(stamps); w++ {
		if s := stamps[w]; s < lruStamp {
			lruStamp = s
			lruIdx = w
		}
	}
	tags[lruIdx] = tag
	stamps[lruIdx] = c.clock
	return false
}

// probe reports whether addr is present without updating LRU or inserting.
func (c *cache) probe(addr uint64) bool {
	key := addr >> c.shift
	set := int(key&c.setMask) * c.ways
	tag := key + 1
	tags := c.tags[set : set+c.ways]
	if tags[0] == tag { // MRU fast path (see access)
		return true
	}
	for w := 1; w < len(tags); w++ {
		if tags[w] == tag {
			return true
		}
	}
	return false
}

// btb is a branch target buffer: like cache but each entry also stores the
// last observed target, enabling indirect-branch target prediction.
type btb struct {
	sets    int
	ways    int
	setMask uint64
	tags    []uint64
	targets []uint64
	stamps  []uint64
	clock   uint64
}

func newBTB(entries, ways int) *btb {
	if entries < ways {
		ways = entries
	}
	sets := entries / ways
	if sets == 0 {
		sets = 1
	}
	return &btb{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*ways),
		targets: make([]uint64, sets*ways),
		stamps:  make([]uint64, sets*ways),
	}
}

// lookup returns (predicted target, present). Branch PCs are distinct per
// 16-byte instruction, so the PC itself is the key.
func (b *btb) lookup(pc uint64) (uint64, bool) {
	key := pc >> 4
	set := int(key&b.setMask) * b.ways
	tag := key + 1
	for w := 0; w < b.ways; w++ {
		i := set + w
		if b.tags[i] == tag {
			b.clock++
			b.stamps[i] = b.clock
			return b.targets[i], true
		}
	}
	return 0, false
}

// predictUpdate is lookup followed by update fused into one scan: it
// returns the prediction that was stored for pc and records the actual
// target, refreshing recency once. Only the relative order of stamp
// assignments is observable (eviction compares stamps within a set), and
// that order is identical to the two-call sequence; like the caches,
// hits move to way 0 so repeated branches resolve on the first compare.
func (b *btb) predictUpdate(pc, target uint64) (uint64, bool) {
	b.clock++
	key := pc >> 4
	set := int(key&b.setMask) * b.ways
	tag := key + 1
	tags := b.tags[set : set+b.ways]
	targets := b.targets[set : set+b.ways : set+b.ways]
	stamps := b.stamps[set : set+b.ways : set+b.ways]
	if tags[0] == tag { // MRU fast path
		pred := targets[0]
		targets[0] = target
		stamps[0] = b.clock
		return pred, true
	}
	for w := 1; w < len(tags); w++ {
		if tags[w] == tag {
			pred := targets[w]
			tags[w], tags[0] = tags[0], tag
			targets[w], targets[0] = targets[0], target
			stamps[w] = stamps[0]
			stamps[0] = b.clock
			return pred, true
		}
	}
	lruIdx := 0
	lruStamp := stamps[0]
	for w := 1; w < len(stamps); w++ {
		if s := stamps[w]; s < lruStamp {
			lruStamp = s
			lruIdx = w
		}
	}
	tags[lruIdx] = tag
	targets[lruIdx] = target
	stamps[lruIdx] = b.clock
	return 0, false
}

// update records the actual target for pc, inserting if absent.
func (b *btb) update(pc, target uint64) {
	b.clock++
	key := pc >> 4
	set := int(key&b.setMask) * b.ways
	tag := key + 1
	var lruIdx int
	var lruStamp uint64 = ^uint64(0)
	for w := 0; w < b.ways; w++ {
		i := set + w
		if b.tags[i] == tag {
			b.targets[i] = target
			b.stamps[i] = b.clock
			return
		}
		if b.stamps[i] < lruStamp {
			lruStamp = b.stamps[i]
			lruIdx = i
		}
	}
	b.tags[lruIdx] = tag
	b.targets[lruIdx] = target
	b.stamps[lruIdx] = b.clock
}
