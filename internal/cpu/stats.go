package cpu

import "fmt"

// Bucket is a TopDown pipeline-slot category (Yasin, ISPASS 2014), the
// methodology §VI-B and Figure 9 of the paper use.
type Bucket uint8

const (
	BucketRetiring Bucket = iota
	BucketFrontEnd
	BucketBadSpec
	BucketBackEnd
)

// Stats are the hardware counters of one core.
type Stats struct {
	Instructions uint64
	Cycles       float64

	L1iMisses   uint64
	ITLBMisses  uint64
	L2TLBMisses uint64
	L1dMisses   uint64
	MemAccesses uint64 // DRAM-level accesses

	CondBranches  uint64
	TakenBranches uint64
	Mispredicts   uint64
	BTBMisses     uint64

	// Cycle attribution (TopDown buckets).
	RetireCycles  float64
	FEStallCycles float64
	BadSpecCycles float64
	BEStallCycles float64
}

// Sub returns s - base, for measuring an interval between two snapshots.
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Instructions:  s.Instructions - base.Instructions,
		Cycles:        s.Cycles - base.Cycles,
		L1iMisses:     s.L1iMisses - base.L1iMisses,
		ITLBMisses:    s.ITLBMisses - base.ITLBMisses,
		L2TLBMisses:   s.L2TLBMisses - base.L2TLBMisses,
		L1dMisses:     s.L1dMisses - base.L1dMisses,
		MemAccesses:   s.MemAccesses - base.MemAccesses,
		CondBranches:  s.CondBranches - base.CondBranches,
		TakenBranches: s.TakenBranches - base.TakenBranches,
		Mispredicts:   s.Mispredicts - base.Mispredicts,
		BTBMisses:     s.BTBMisses - base.BTBMisses,
		RetireCycles:  s.RetireCycles - base.RetireCycles,
		FEStallCycles: s.FEStallCycles - base.FEStallCycles,
		BadSpecCycles: s.BadSpecCycles - base.BadSpecCycles,
		BEStallCycles: s.BEStallCycles - base.BEStallCycles,
	}
}

// Add accumulates o into s (for aggregating across cores).
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.Cycles += o.Cycles
	s.L1iMisses += o.L1iMisses
	s.ITLBMisses += o.ITLBMisses
	s.L2TLBMisses += o.L2TLBMisses
	s.L1dMisses += o.L1dMisses
	s.MemAccesses += o.MemAccesses
	s.CondBranches += o.CondBranches
	s.TakenBranches += o.TakenBranches
	s.Mispredicts += o.Mispredicts
	s.BTBMisses += o.BTBMisses
	s.RetireCycles += o.RetireCycles
	s.FEStallCycles += o.FEStallCycles
	s.BadSpecCycles += o.BadSpecCycles
	s.BEStallCycles += o.BEStallCycles
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / s.Cycles
}

func (s Stats) perKI(n uint64) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(n) * 1000 / float64(s.Instructions)
}

// L1iMPKI returns L1 instruction-cache misses per kilo-instruction.
func (s Stats) L1iMPKI() float64 { return s.perKI(s.L1iMisses) }

// ITLBMPKI returns iTLB misses per kilo-instruction.
func (s Stats) ITLBMPKI() float64 { return s.perKI(s.ITLBMisses) }

// TakenPKI returns taken branches per kilo-instruction.
func (s Stats) TakenPKI() float64 { return s.perKI(s.TakenBranches) }

// MispredictPKI returns branch mispredictions per kilo-instruction.
func (s Stats) MispredictPKI() float64 { return s.perKI(s.Mispredicts) }

// TopDown is the four-way slot breakdown, each in [0,1].
type TopDown struct {
	Retiring float64
	FrontEnd float64
	BadSpec  float64
	BackEnd  float64
}

// TopDown computes the slot breakdown from the cycle attribution.
func (s Stats) TopDown() TopDown {
	total := s.RetireCycles + s.FEStallCycles + s.BadSpecCycles + s.BEStallCycles
	if total == 0 {
		return TopDown{}
	}
	return TopDown{
		Retiring: s.RetireCycles / total,
		FrontEnd: s.FEStallCycles / total,
		BadSpec:  s.BadSpecCycles / total,
		BackEnd:  s.BEStallCycles / total,
	}
}

// String implements fmt.Stringer.
func (td TopDown) String() string {
	return fmt.Sprintf("retiring %.1f%%, front-end %.1f%%, bad-spec %.1f%%, back-end %.1f%%",
		td.Retiring*100, td.FrontEnd*100, td.BadSpec*100, td.BackEnd*100)
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%d insts, %.0f cycles (IPC %.2f), L1i MPKI %.2f, iTLB MPKI %.2f, taken/KI %.1f, misp/KI %.2f",
		s.Instructions, s.Cycles, s.IPC(), s.L1iMPKI(), s.ITLBMPKI(), s.TakenPKI(), s.MispredictPKI())
}
