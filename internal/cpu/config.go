// Package cpu models the timing-relevant microarchitecture of one core:
// the front-end (L1i, iTLB hierarchy, branch direction predictor, BTB,
// return address stack) plus a simple back-end (L1d, unified L2, shared
// L3, a bandwidth-sensitive DRAM model) and Intel-TopDown-style cycle
// accounting.
//
// The package is pure timing: it never executes instructions. The process
// runtime (internal/proc) performs architectural execution and calls into
// a Core with fetch/branch/memory events; the Core answers with cycle
// costs and maintains the hardware counters (including the LBR ring that
// internal/perf samples).
//
// Default parameters follow the paper's evaluation machine, a Broadwell
// Xeon E5-2620v4 (§VI-A): 32 KiB 8-way L1i and L1d, 64-entry iTLB backed
// by a 1536-entry L2 TLB, 256 KiB L2, 20 MiB shared L3, 2.1 GHz.
package cpu

// Config holds the microarchitectural parameters shared by all cores.
type Config struct {
	ClockHz float64 // simulated core frequency

	LineBytes int // cache line size

	L1iKiB  int
	L1iWays int
	L1dKiB  int
	L1dWays int
	L2KiB   int
	L2Ways  int
	L3KiB   int // shared
	L3Ways  int

	ITLBEntries  int // fully associative, per core
	L2TLBEntries int
	PageBytes    int

	BTBEntries int // total entries
	BTBWays    int
	GshareBits int // direction predictor history/index bits
	RASDepth   int
	LBREntries int // last branch record ring size

	IssueWidth float64 // retire slots per cycle

	// Latencies/penalties in cycles.
	L2Lat             float64 // L1 miss, L2 hit
	L3Lat             float64 // L2 miss, L3 hit
	MemLat            float64 // L3 miss, unloaded DRAM
	L2TLBLat          float64 // iTLB miss, L2 TLB hit
	PageWalkLat       float64 // L2 TLB miss
	MispredictPenalty float64 // direction or indirect-target mispredict
	BTBMissPenalty    float64 // taken branch absent from BTB: fetch bubble
	TakenBubble       float64 // predicted-taken redirect bubble
	DivLat            float64 // extra latency of DIV/MOD

	// DRAM bandwidth model: see dram.go.
	MemPeakPerCycle float64 // sustainable memory accesses per cycle per core
	MemEMAAlpha     float64 // smoothing for the utilization estimate
}

// DefaultConfig returns the Broadwell-like configuration used throughout
// the evaluation.
func DefaultConfig() *Config {
	return &Config{
		ClockHz:   2.1e9,
		LineBytes: 64,

		L1iKiB: 32, L1iWays: 8,
		L1dKiB: 32, L1dWays: 8,
		L2KiB: 256, L2Ways: 8,
		L3KiB: 20 * 1024, L3Ways: 16,

		ITLBEntries:  64,
		L2TLBEntries: 1536,
		PageBytes:    4096,

		BTBEntries: 4096,
		BTBWays:    4,
		GshareBits: 13,
		RASDepth:   16,
		LBREntries: 32,

		IssueWidth: 4,

		L2Lat:             12,
		L3Lat:             40,
		MemLat:            180,
		L2TLBLat:          9,
		PageWalkLat:       60,
		MispredictPenalty: 16,
		BTBMissPenalty:    9,
		TakenBubble:       1,
		DivLat:            20,

		MemPeakPerCycle: 0.02,
		MemEMAAlpha:     1.0 / 4096,
	}
}

// SecondsPerCycle converts cycles to simulated seconds.
func (c *Config) SecondsPerCycle() float64 { return 1 / c.ClockHz }
