package cpu

// Block-level cycle accounting.
//
// The superblock engine (internal/proc) pre-aggregates each straight-line
// run of event-free instructions at decode time and charges the Core for
// the whole run at once instead of per instruction. That is only exact
// because of how the Core represents cycles (see Core.Cycles): the
// retire-slot cost and divider latency are folded lazily from integer
// counters, so a bulk charge of n instructions is bit-identical to n
// individual Retire calls no matter how the run is split. Everything
// that depends on dynamic microarchitectural state (cache, TLB,
// predictors, DRAM queue) still goes through the per-event paths.
//
// The front end is the one piece of fetch state a decoded run depends
// on: whether the first instruction sits on the line the core last
// fetched. FetchFP captures that state as a compact fingerprint so the
// engine can prove a segment-head Fetch is a no-op (fingerprint match)
// and skip the call, falling back to the full per-event Fetch on
// mismatch.

// FetchFP is a compact fingerprint of the core front-end fetch state:
// the +1-encoded index of the cache line last fetched (0 after a taken
// branch redirected fetch). Fetching an instruction whose line
// fingerprint equals the core's current fingerprint is free and leaves
// every model structure untouched.
type FetchFP uint64

// FetchFP returns the core's current front-end fingerprint.
func (c *Core) FetchFP() FetchFP { return FetchFP(c.lastFetchLine) }

// PCFetchFP returns the fingerprint the front end will have immediately
// after fetching pc — equivalently, the fingerprint the core must
// already hold for Fetch(pc) to be a guaranteed no-op.
func (c *Core) PCFetchFP(pc uint64) FetchFP { return FetchFP(pc>>c.lineShift + 1) }

// SameFetchLine reports whether a and b share an instruction cache line,
// i.e. whether a fetch of b immediately after a is free. The superblock
// builder uses it to precompute which ops in a trace are fetch points.
func (c *Core) SameFetchLine(a, b uint64) bool {
	return a>>c.lineShift == b>>c.lineShift
}

// FetchPlan is a precomputed warm-path descriptor for one planned fetch
// point: the L1i way-0 slots and tag encodings FetchFast compares so the
// all-hits common case is charged inline, with no calls. Plans are pure
// geometry (functions of pc alone), built once per fetch point at trace
// formation and valid for the program's lifetime.
type FetchPlan struct {
	line uint64 // +1-encoded line of pc — also its L1i tag (the L1i granule is the line)
	page uint64 // +1-encoded page of pc (lastFetchPage encoding)
	set  int32  // way-0 slot of pc's line in the L1i
	nset int32  // way-0 slot of the prefetch-next line
}

// PlanFetch precomputes the FetchPlan for fetches of pc.
func (c *Core) PlanFetch(pc uint64) FetchPlan {
	l1i := c.l1i
	key := pc >> l1i.shift
	return FetchPlan{
		line: pc>>c.lineShift + 1,
		page: pc>>c.pageShift + 1,
		set:  int32(key&l1i.setMask) * int32(l1i.ways),
		nset: int32((key+1)&l1i.setMask) * int32(l1i.ways),
	}
}

// FetchFast performs Fetch(pc) for a planned fetch point when the warm
// preconditions hold: the line is already live (Fetch is a no-op), or
// the fetch stays on the current page and both the demand line and its
// prefetch-next line sit in their L1i sets' way 0 — the MRU slot
// move-to-front maintains (see cache.access). Under those conditions
// the full path charges no stall and changes nothing but the demand
// line's recency stamp, replicated here inline. Returns false, having
// changed nothing, when the caller must take the full Fetch path.
func (c *Core) FetchFast(pl *FetchPlan) bool {
	if pl.line == c.lastFetchLine {
		return true
	}
	if pl.page != c.lastFetchPage ||
		c.l1iTags[pl.set] != pl.line || c.l1iTags[pl.nset] != pl.line+1 {
		return false
	}
	c.lastFetchLine = pl.line
	l1i := c.l1i
	l1i.clock++
	l1i.accesses++
	c.l1iStamps[pl.set] = l1i.clock
	return true
}

// FetchRunPlan pre-aggregates the front-end events of one pure run of a
// superblock: the way-0 slots and tags of every line the run fetches
// (its fetch points are sequential line crossings on one page) plus the
// prefetch tail line. When every line is warm, FetchRunFast collapses
// the run's whole front-end traffic to K stamp refreshes in one call —
// O(1) model interactions per run — with per-event fallback whenever
// any precondition fails.
type FetchRunPlan struct {
	page  uint64   // required lastFetchPage (all fetched lines share it)
	first uint64   // +1-encoded first fetched line; live ⇒ fallback (the fetch would be a no-op)
	last  uint64   // lastFetchLine after the run
	sets  []int32  // way-0 slots: the K fetched lines, then the prefetch tail
	tags  []uint64 // their +1-encoded tags

	// Verification memo: the L1i tag epoch (and the core it belongs to
	// — plans can be shared across threads' cores) at the last
	// successful tag check. While the epoch is unchanged no tags[] slot
	// has mutated, so the check's outcome is unchanged and the scan is
	// skipped. The epoch is stored +1 so the zero value never matches.
	epoch     uint64
	epochCore *Core
}

// PlanFetchRun builds the aggregate plan for a run whose fetch points
// sit at pcs (in trace order). Returns nil when the run cannot be
// pre-aggregated: its crossings are not sequential same-page lines
// (e.g. the run straddles a page boundary). An empty pcs yields a plan
// that always succeeds doing nothing — a run that never leaves its
// entry line has no front-end traffic at all.
func (c *Core) PlanFetchRun(pcs []uint64) *FetchRunPlan {
	g := &FetchRunPlan{}
	if len(pcs) == 0 {
		return g
	}
	l1i := c.l1i
	first := pcs[0] >> c.lineShift
	g.page = pcs[0]>>c.pageShift + 1
	g.first = first + 1
	g.last = first + uint64(len(pcs))
	for k, pc := range pcs {
		if pc>>c.lineShift != first+uint64(k) || pc>>c.pageShift+1 != g.page {
			return nil
		}
	}
	for k := 0; k <= len(pcs); k++ {
		key := first + uint64(k)
		g.sets = append(g.sets, int32(key&l1i.setMask)*int32(l1i.ways))
		g.tags = append(g.tags, key+1)
	}
	return g
}

// FetchRunFast performs every fetch of a pure run at once when the warm
// preconditions hold: the first fetched line is not already live (its
// fetch really happens; the later ones then follow by adjacency), the
// run stays on the current page, and all K fetched lines plus the
// prefetch tail sit in their sets' way 0. The per-event path would then
// charge no stalls and touch nothing but the K recency stamps and the
// clock, replicated here in fetch order. Returns false, having changed
// nothing, when the caller must take the per-op path.
func (c *Core) FetchRunFast(g *FetchRunPlan) bool {
	last := len(g.sets) - 1 // index of the prefetch tail; K = last
	if last < 0 {
		return true // no fetch points: nothing to verify or charge
	}
	if g.first == c.lastFetchLine || g.page != c.lastFetchPage {
		return false
	}
	l1i := c.l1i
	if g.epoch != l1i.epoch+1 || g.epochCore != c {
		tags := c.l1iTags
		for k, s := range g.sets {
			if tags[s] != g.tags[k] {
				return false
			}
		}
		g.epoch = l1i.epoch + 1
		g.epochCore = c
	}
	stamps := c.l1iStamps
	clock := l1i.clock
	for _, s := range g.sets[:last] {
		clock++
		stamps[s] = clock
	}
	l1i.clock = clock
	l1i.accesses += uint64(last)
	c.lastFetchLine = g.last
	return true
}

// MemFast performs Mem(addr, store) when addr hits the L1d's way 0 —
// the only Mem case that charges no stall, making the store/load
// distinction moot. Returns false, having changed nothing, when the
// caller must take the full Mem path. Call-free so it inlines into the
// engines' hot loops.
func (c *Core) MemFast(addr uint64) bool {
	l1d := c.l1d
	key := addr >> l1d.shift
	set := int(key&l1d.setMask) * l1d.ways
	if c.l1dTags[set] != key+1 {
		return false
	}
	l1d.clock++
	l1d.accesses++
	c.l1dStamps[set] = l1d.clock
	return true
}

// The Branch*Fast family below are inline warm paths for the branch
// kinds a superblock executes on its planned path. Each replicates
// Branch's exact effects for one kind under preconditions that make the
// outcome fixed (BTB way-0 hit with an unchanged target, RAS top
// agreeing with the actual return target), returns false having changed
// nothing otherwise, and bails to the full path whenever the LBR is
// recording (taken branches would need a ring append).

// BranchJumpFast is Branch(pc, target, true, BrJump, 0) for a BTB way-0
// hit whose stored target already matches: a correctly predicted taken
// jump costing only the redirect bubble.
func (c *Core) BranchJumpFast(pc, target uint64) bool {
	b := c.btb
	key := pc >> 4
	set := int(key&b.setMask) * b.ways
	if c.LBREnabled || b.tags[set] != key+1 || b.targets[set] != target {
		return false
	}
	b.clock++
	b.stamps[set] = b.clock
	c.Stats.TakenBranches++
	c.lastFetchLine = 0
	c.stallFE += c.cfg.TakenBubble
	return true
}

// BranchCallFast is Branch(pc, target, true, BrCall, retAddr) under the
// same BTB preconditions as BranchJumpFast, plus the RAS push.
func (c *Core) BranchCallFast(pc, target, retAddr uint64) bool {
	b := c.btb
	key := pc >> 4
	set := int(key&b.setMask) * b.ways
	if c.LBREnabled || b.tags[set] != key+1 || b.targets[set] != target {
		return false
	}
	b.clock++
	b.stamps[set] = b.clock
	r := c.ras
	r.stack[r.pos] = retAddr
	r.pos++
	if r.pos == len(r.stack) {
		r.pos = 0
	}
	if r.top < len(r.stack) {
		r.top++
	}
	c.Stats.TakenBranches++
	c.lastFetchLine = 0
	c.stallFE += c.cfg.TakenBubble
	return true
}

// BranchRetFast is Branch(pc, target, true, BrRet, 0) when the RAS top
// predicts the actual target: pop, bubble, no mispredict.
func (c *Core) BranchRetFast(pc, target uint64) bool {
	r := c.ras
	if c.LBREnabled || r.top == 0 {
		return false
	}
	pos := r.pos - 1
	if pos < 0 {
		pos = len(r.stack) - 1
	}
	if r.stack[pos] != target {
		return false // underflow-free mispredict: full path
	}
	r.pos = pos
	r.top--
	c.Stats.TakenBranches++
	c.lastFetchLine = 0
	c.stallFE += c.cfg.TakenBubble
	return true
}

// BranchCondNotTakenFast is Branch(pc, target, false, BrCond, 0) in
// full: a not-taken conditional only touches the direction predictor
// (and the mispredict accounting), so there are no preconditions and no
// fallback — it always completes.
func (c *Core) BranchCondNotTakenFast(pc uint64) {
	g := c.dir
	idx := ((pc >> 4) ^ g.history) & g.mask
	cnt := g.table[idx]
	if cnt > 0 {
		g.table[idx] = cnt - 1
	}
	g.history = (g.history << 1) & g.mask
	c.Stats.CondBranches++
	if cnt >= 2 {
		c.Stats.Mispredicts++
		c.stallBS += c.cfg.MispredictPenalty
	}
}

// RetireBulk charges the retirement of n instructions, divs of which
// are divider ops, in O(1). Exactly equivalent to n Retire calls by
// construction: both paths only bump the integer counters that Cycles()
// folds lazily.
func (c *Core) RetireBulk(n, divs uint64) {
	c.Stats.Instructions += n
	c.divOps += divs
}
