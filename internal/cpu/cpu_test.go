package cpu

import (
	"math"
	"testing"
)

func newTestCore() *Core {
	cfg := DefaultConfig()
	return NewCore(0, cfg, NewShared(cfg))
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := newCache(32*1024, 8, 64)
	if c.access(0x400000) {
		t.Error("cold access should miss")
	}
	if !c.access(0x400000) || !c.access(0x400030) {
		t.Error("same line should hit")
	}
	if c.access(0x400040) {
		t.Error("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Tiny cache: 2 sets x 2 ways, 64B lines = 256 bytes.
	c := newCache(256, 2, 64)
	// All these map to set 0 (line addr multiples of 2*64).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.access(a)
	c.access(b)
	c.access(a) // a most recent
	c.access(d) // evicts b
	if !c.probe(a) {
		t.Error("a should survive (MRU)")
	}
	if c.probe(b) {
		t.Error("b should be evicted (LRU)")
	}
	if !c.probe(d) {
		t.Error("d should be present")
	}
}

func TestCacheCapacityThrash(t *testing.T) {
	c := newCache(32*1024, 8, 64)
	// Touch 64 KiB of lines twice: second pass still misses everywhere
	// because the working set is 2x capacity (LRU thrash).
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 64*1024; addr += 64 {
			c.access(addr)
		}
	}
	if c.misses < c.accesses*9/10 {
		t.Errorf("thrash should miss nearly always: %d/%d", c.misses, c.accesses)
	}
	// A working set half the capacity hits on the second pass.
	c2 := newCache(32*1024, 8, 64)
	for addr := uint64(0); addr < 16*1024; addr += 64 {
		c2.access(addr)
	}
	m1 := c2.misses
	for addr := uint64(0); addr < 16*1024; addr += 64 {
		c2.access(addr)
	}
	if c2.misses != m1 {
		t.Errorf("fitting working set should fully hit on pass 2 (%d new misses)", c2.misses-m1)
	}
}

func TestGshareLearnsBias(t *testing.T) {
	g := newGshare(12)
	pc := uint64(0x400040)
	for i := 0; i < 100; i++ {
		g.update(pc, true)
	}
	if !g.predict(pc) {
		t.Error("always-taken branch should predict taken")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	g := newGshare(12)
	pc := uint64(0x400080)
	// Alternating T/N/T/N is history-predictable.
	for i := 0; i < 4096; i++ {
		g.update(pc, i%2 == 0)
	}
	correct := 0
	for i := 0; i < 1000; i++ {
		if g.predict(pc) == (i%2 == 0) {
			correct++
		}
		g.update(pc, i%2 == 0)
	}
	if correct < 950 {
		t.Errorf("alternating pattern predicted %d/1000", correct)
	}
}

func TestRAS(t *testing.T) {
	r := newRAS(4)
	r.push(1)
	r.push(2)
	if v, ok := r.pop(); !ok || v != 2 {
		t.Errorf("pop = %d,%v", v, ok)
	}
	if v, ok := r.pop(); !ok || v != 1 {
		t.Errorf("pop = %d,%v", v, ok)
	}
	if _, ok := r.pop(); ok {
		t.Error("underflow should report not-ok")
	}
	// Overflow wraps: deepest entries lost.
	for i := 1; i <= 6; i++ {
		r.push(uint64(i))
	}
	for want := 6; want >= 3; want-- {
		if v, ok := r.pop(); !ok || v != uint64(want) {
			t.Errorf("pop = %d,%v want %d", v, ok, want)
		}
	}
	if _, ok := r.pop(); ok {
		t.Error("entries beyond depth should be lost")
	}
}

func TestBTB(t *testing.T) {
	b := newBTB(16, 4)
	if _, hit := b.lookup(0x400000); hit {
		t.Error("cold BTB should miss")
	}
	b.update(0x400000, 0x500000)
	if tgt, hit := b.lookup(0x400000); !hit || tgt != 0x500000 {
		t.Errorf("lookup = %#x,%v", tgt, hit)
	}
	b.update(0x400000, 0x600000) // retarget
	if tgt, _ := b.lookup(0x400000); tgt != 0x600000 {
		t.Error("update should retarget")
	}
}

func TestLBRRing(t *testing.T) {
	l := newLBR(4)
	for i := 1; i <= 6; i++ {
		l.record(uint64(i), uint64(i*10))
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	// Oldest-first: 3,4,5,6.
	for i, want := range []uint64{3, 4, 5, 6} {
		if snap[i].From != want {
			t.Errorf("snap[%d].From = %d, want %d", i, snap[i].From, want)
		}
	}
}

func TestFetchSequentialIsCheap(t *testing.T) {
	c := newTestCore()
	c.Fetch(0x400000)
	after := c.Cycles()
	c.Fetch(0x400010) // same 64B line
	c.Fetch(0x400020)
	if c.Cycles() != after {
		t.Error("same-line fetches should be free")
	}
	// The cold next line was prefetched into the L2 only (a single
	// next-line prefetcher cannot outrun DRAM latency), so fetching it
	// costs an L2 hit — cheaper than the cold miss but not free.
	c.Fetch(0x400040)
	l2Cost := c.Cycles() - after
	if l2Cost <= 0 || l2Cost > c.Config().L2Lat {
		t.Errorf("prefetched-to-L2 next line cost %.1f, want (0,%v]", l2Cost, c.Config().L2Lat)
	}
	// Once the stream is L2-resident, the prefetcher hides it fully.
	c.lastFetchLine = 0
	c.Fetch(0x400040) // L1i hit now
	c.Fetch(0x400080) // was streamed into L1i from L2
	if c.Cycles() != after+l2Cost {
		t.Error("L2-resident sequential stream should fetch for free")
	}
	c.Fetch(0x402000) // far line: genuine cold miss
	if c.Cycles() <= after+l2Cost+c.Config().L2Lat {
		t.Error("non-sequential cold fetch should cost more than an L2 hit")
	}
}

func TestFetchHotLoopNoStalls(t *testing.T) {
	c := newTestCore()
	// Warm a small loop, then re-fetch: no front-end stalls.
	for pass := 0; pass < 2; pass++ {
		for pc := uint64(0x400000); pc < 0x400400; pc += 16 {
			c.Fetch(pc)
		}
		c.lastFetchLine, c.lastFetchPage = 0, 0
	}
	before := c.StatsSnapshot().FEStallCycles
	c.lastFetchLine, c.lastFetchPage = 0, 0
	for pc := uint64(0x400000); pc < 0x400400; pc += 16 {
		c.Fetch(pc)
	}
	if c.StatsSnapshot().FEStallCycles != before {
		t.Error("warm loop fetch should not stall")
	}
}

func TestFetchGeometryDerivedFromConfig(t *testing.T) {
	// 128 B lines: the second fetch lands in the same (wider) line and must
	// coalesce. With a hardcoded 64 B shift the line path re-runs there and
	// its next-line prefetch streams 0x400080 into the L1i early, hiding the
	// demand miss the real geometry pays.
	cfg := DefaultConfig()
	cfg.LineBytes = 128
	c := NewCore(0, cfg, NewShared(cfg))
	c.Fetch(0x400000)
	c.Fetch(0x400040) // same 128 B line: must coalesce
	c.Fetch(0x400080) // new line: demand miss, filled from the L2 prefetch
	if got := c.Stats.L1iMisses; got != 2 {
		t.Errorf("L1iMisses = %d, want 2 (line shift not derived from LineBytes?)", got)
	}

	// 2 KiB pages: the second fetch is on a new page and must pay an iTLB
	// lookup; a hardcoded 4 KiB shift would coalesce it away.
	cfg2 := DefaultConfig()
	cfg2.PageBytes = 2048
	c2 := NewCore(0, cfg2, NewShared(cfg2))
	c2.Fetch(0x400000)
	c2.Fetch(0x400800) // next 2 KiB page
	if got := c2.Stats.ITLBMisses; got != 2 {
		t.Errorf("ITLBMisses = %d, want 2 (page shift not derived from PageBytes?)", got)
	}
}

func TestBranchMispredictCharged(t *testing.T) {
	c := newTestCore()
	pc, tgt := uint64(0x400040), uint64(0x400400)
	// Train taken (long enough for the global history to saturate so the
	// same table index is reinforced).
	for i := 0; i < 50; i++ {
		c.Branch(pc, tgt, true, BrCond, 0)
	}
	base := c.Stats.Mispredicts
	c.Branch(pc, pc+16, false, BrCond, 0) // surprise not-taken
	if c.Stats.Mispredicts != base+1 {
		t.Error("surprise direction should mispredict")
	}
}

func TestCallRetRASPredicted(t *testing.T) {
	c := newTestCore()
	callPC, fn := uint64(0x400040), uint64(0x410000)
	ret := callPC + 16
	// Warm the BTB for the call.
	c.Branch(callPC, fn, true, BrCall, ret)
	c.Branch(fn+32, ret, true, BrRet, 0)
	m := c.Stats.Mispredicts
	c.Branch(callPC, fn, true, BrCall, ret)
	c.Branch(fn+32, ret, true, BrRet, 0)
	if c.Stats.Mispredicts != m {
		t.Error("matched call/ret pair should not mispredict")
	}
	// A return with an empty RAS mispredicts.
	c2 := newTestCore()
	c2.Branch(fn, ret, true, BrRet, 0)
	if c2.Stats.Mispredicts != 1 {
		t.Error("RAS underflow should mispredict")
	}
}

func TestIndirectTargetPrediction(t *testing.T) {
	c := newTestCore()
	pc := uint64(0x400040)
	c.Branch(pc, 0x500000, true, BrCallInd, pc+16) // cold: mispredict
	if c.Stats.Mispredicts != 1 {
		t.Fatal("cold indirect should mispredict")
	}
	c.Branch(pc, 0x500000, true, BrCallInd, pc+16) // same target: hit
	if c.Stats.Mispredicts != 1 {
		t.Error("repeated indirect target should predict")
	}
	c.Branch(pc, 0x600000, true, BrCallInd, pc+16) // new target
	if c.Stats.Mispredicts != 2 {
		t.Error("changed indirect target should mispredict")
	}
}

func TestLBROnlyWhenEnabled(t *testing.T) {
	c := newTestCore()
	c.Branch(0x400000, 0x400100, true, BrJump, 0)
	if len(c.LBRSnapshot()) != 0 {
		t.Error("LBR recorded while disabled")
	}
	c.LBREnabled = true
	c.Branch(0x400100, 0x400200, true, BrJump, 0)
	c.Branch(0x400200, 0x400210, false, BrCond, 0) // not taken: not recorded
	snap := c.LBRSnapshot()
	if len(snap) != 1 || snap[0].From != 0x400100 {
		t.Errorf("LBR snapshot = %v", snap)
	}
}

func TestMemHierarchyCosts(t *testing.T) {
	c := newTestCore()
	c.Mem(0x10000000, false) // cold: DRAM
	cold := c.StatsSnapshot().BEStallCycles
	if cold < c.Config().MemLat {
		t.Errorf("cold load cost %.0f < DRAM latency", cold)
	}
	c.Mem(0x10000000, false) // L1 hit: free
	if c.StatsSnapshot().BEStallCycles != cold {
		t.Error("L1 hit should be free")
	}
}

func TestDRAMContention(t *testing.T) {
	cfg := DefaultConfig()
	d := newDRAM(cfg)
	// Sparse accesses: near base latency.
	lat1 := d.latency(cfg.MemLat, 1e6)
	if lat1 > cfg.MemLat*1.2 {
		t.Errorf("idle DRAM latency %.0f", lat1)
	}
	// Hammer: one access per cycle >> peak → latency inflates.
	d2 := newDRAM(cfg)
	var last float64
	for i := 0; i < 200000; i++ {
		last = d2.latency(cfg.MemLat, float64(i))
	}
	if last < cfg.MemLat*2 {
		t.Errorf("saturated DRAM latency %.0f should inflate well above base %.0f", last, cfg.MemLat)
	}
}

func TestDRAMIdleGapDecaysCleanly(t *testing.T) {
	// Regression: the time-scaled EMA update used alpha*dt unclamped, so a
	// gap longer than the EMA horizon (dt > 1/alpha) overshot past the
	// instantaneous rate to a negative estimate that got floored to 0.
	// With the coefficient clamped at 1, a long-idle access must land the
	// estimate exactly on the instantaneous rate 1/dt — small but nonzero
	// — and latency must stay monotone under a resumed hammer.
	cfg := DefaultConfig()
	d := newDRAM(cfg)
	// Saturate: one access per cycle far above peakPerCycle.
	for i := 0; i < 100000; i++ {
		d.latency(cfg.MemLat, float64(i))
	}
	if d.Utilization() < 0.5 {
		t.Fatalf("hammer did not saturate: util %.3f", d.Utilization())
	}
	// One access after an idle gap much longer than the EMA horizon.
	gap := 10 / cfg.MemEMAAlpha // dt with alpha*dt = 10 >> 1
	now := 99999 + gap          // last hammer access was at cycle 99999
	lat := d.latency(cfg.MemLat, now)
	want := 1 / gap
	if math.Abs(d.rateEMA-want) > want*1e-6 {
		t.Errorf("post-gap rateEMA = %g, want instantaneous rate %g", d.rateEMA, want)
	}
	if lat > cfg.MemLat*1.2 {
		t.Errorf("post-gap latency %.1f should be near base %.1f", lat, cfg.MemLat)
	}
	// Resume hammering: the estimate must rise from its small positive
	// value, never having been zeroed or gone negative.
	prevUtil := d.Utilization()
	if prevUtil <= 0 {
		t.Errorf("post-gap utilization %.6f should be positive", prevUtil)
	}
	for i := 0; i < 1000; i++ {
		d.latency(cfg.MemLat, now+float64(i)+1)
		if d.rateEMA < 0 {
			t.Fatalf("rateEMA went negative: %g", d.rateEMA)
		}
	}
	if d.Utilization() <= prevUtil {
		t.Errorf("resumed hammer should raise utilization (%.6f -> %.6f)", prevUtil, d.Utilization())
	}
}

func TestTopDownBucketsSum(t *testing.T) {
	c := newTestCore()
	for i := 0; i < 100; i++ {
		c.Fetch(uint64(0x400000 + i*16))
		c.Retire(false)
	}
	c.Branch(0x400000, 0x500000, true, BrJump, 0)
	c.Mem(0x20000000, false)
	td := c.StatsSnapshot().TopDown()
	sum := td.Retiring + td.FrontEnd + td.BadSpec + td.BackEnd
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("TopDown buckets sum to %f", sum)
	}
	s := c.StatsSnapshot()
	total := s.RetireCycles + s.FEStallCycles + s.BadSpecCycles + s.BEStallCycles
	if math.Abs(total-s.Cycles) > 1e-6 {
		t.Errorf("attributed cycles %.2f != total %.2f", total, s.Cycles)
	}
}

func TestStatsSubAdd(t *testing.T) {
	c := newTestCore()
	c.Fetch(0x400000)
	c.Retire(false)
	snap := c.StatsSnapshot()
	c.Fetch(0x400040)
	c.Retire(true)
	cur := c.StatsSnapshot()
	delta := cur.Sub(snap)
	if delta.Instructions != 1 {
		t.Errorf("delta instructions = %d", delta.Instructions)
	}
	var agg Stats
	agg.Add(snap)
	agg.Add(delta)
	if agg.Instructions != cur.Instructions || math.Abs(agg.Cycles-cur.Cycles) > 1e-9 {
		t.Error("Add(Sub) does not reconstruct totals")
	}
}

func TestMPKIHelpers(t *testing.T) {
	s := Stats{Instructions: 2000, L1iMisses: 10, ITLBMisses: 4, TakenBranches: 300, Mispredicts: 6}
	if s.L1iMPKI() != 5 || s.ITLBMPKI() != 2 || s.TakenPKI() != 150 || s.MispredictPKI() != 3 {
		t.Errorf("MPKI helpers wrong: %v %v %v %v", s.L1iMPKI(), s.ITLBMPKI(), s.TakenPKI(), s.MispredictPKI())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.L1iMPKI() != 0 {
		t.Error("zero stats should not divide by zero")
	}
}
