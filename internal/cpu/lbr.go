package cpu

// BranchRecord is one entry of the Last Branch Record facility: the
// address of a taken branch and its target, exactly what Intel LBR
// captures (§II-A).
type BranchRecord struct {
	From uint64
	To   uint64
}

// lbrRing is the fixed-size LBR ring buffer (32 entries on Skylake+).
type lbrRing struct {
	buf []BranchRecord
	pos int
	n   int
}

func newLBR(entries int) *lbrRing {
	return &lbrRing{buf: make([]BranchRecord, entries)}
}

func (l *lbrRing) record(from, to uint64) {
	l.buf[l.pos] = BranchRecord{From: from, To: to}
	l.pos = (l.pos + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// drain returns the ring contents oldest-first and clears the ring, so
// consecutive reads never see the same record twice.
func (l *lbrRing) drain() []BranchRecord {
	out := l.Snapshot()
	l.n = 0
	return out
}

// Snapshot returns the ring contents oldest-first, as perf reads them.
func (l *lbrRing) Snapshot() []BranchRecord {
	out := make([]BranchRecord, 0, l.n)
	start := (l.pos - l.n + len(l.buf)) % len(l.buf)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}
