package cpu

// gshare is a global-history branch direction predictor: a table of 2-bit
// saturating counters indexed by PC xor branch history.
type gshare struct {
	table   []uint8
	mask    uint64
	history uint64
}

func newGshare(bits int) *gshare {
	return &gshare{
		table: make([]uint8, 1<<bits),
		mask:  (1 << bits) - 1,
	}
}

// predict returns the predicted direction for the branch at pc.
func (g *gshare) predict(pc uint64) bool {
	idx := ((pc >> 4) ^ g.history) & g.mask
	return g.table[idx] >= 2
}

// update trains the predictor with the actual outcome and shifts history.
func (g *gshare) update(pc uint64, taken bool) {
	idx := ((pc >> 4) ^ g.history) & g.mask
	c := g.table[idx]
	if taken {
		if c < 3 {
			g.table[idx] = c + 1
		}
	} else if c > 0 {
		g.table[idx] = c - 1
	}
	g.history = (g.history << 1) & g.mask
	if taken {
		g.history |= 1
	}
}

// ras is the return address stack. Overflow wraps (oldest entries lost),
// underflow mispredicts — both as in hardware.
type ras struct {
	stack []uint64
	top   int // number of live entries, capped at len(stack)
	pos   int // circular write position
}

func newRAS(depth int) *ras {
	return &ras{stack: make([]uint64, depth)}
}

func (r *ras) push(addr uint64) {
	r.stack[r.pos] = addr
	r.pos++
	if r.pos == len(r.stack) {
		r.pos = 0
	}
	if r.top < len(r.stack) {
		r.top++
	}
}

// pop returns the predicted return address; ok is false on underflow.
func (r *ras) pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	r.pos--
	if r.pos < 0 {
		r.pos = len(r.stack) - 1
	}
	return r.stack[r.pos], true
}
