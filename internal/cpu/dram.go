package cpu

// dramModel approximates memory-controller contention: the effective DRAM
// latency grows convexly with the core's recent memory-access rate
// (an M/D/1-style 1/(1-utilization) queue). When a workload is bandwidth
// saturated, making its front-end faster does not make memory faster —
// the mechanism behind the MongoDB scan95 anomaly in §VI-B, where
// BOLT-optimized code shifted the bottleneck to DRAM.
type dramModel struct {
	peakPerCycle float64 // service rate: accesses per cycle at saturation
	alpha        float64 // EMA smoothing of the arrival-rate estimate
	rateEMA      float64
	lastCycle    float64
}

func newDRAM(cfg *Config) *dramModel {
	return &dramModel{peakPerCycle: cfg.MemPeakPerCycle, alpha: cfg.MemEMAAlpha}
}

// latency returns the effective latency multiplier-adjusted DRAM latency
// for an access at time nowCycles, and updates the rate estimate.
func (d *dramModel) latency(base float64, nowCycles float64) float64 {
	dt := nowCycles - d.lastCycle
	if dt < 1 {
		dt = 1
	}
	d.lastCycle = nowCycles
	inst := 1 / dt // accesses per cycle, instantaneous
	// Time-scaled EMA: the effective coefficient alpha*dt must be clamped
	// at 1. Past 1 the update overshoots the instantaneous rate — after a
	// long idle gap it would swing negative and get floored to 0, turning
	// "the queue drained" into "the queue estimate is garbage". At k == 1
	// the estimate lands exactly on the instantaneous rate, which is the
	// correct limit for a gap much longer than the EMA horizon.
	k := d.alpha * dt
	if k > 1 {
		k = 1
	}
	d.rateEMA += k * (inst - d.rateEMA)
	if d.rateEMA < 0 {
		d.rateEMA = 0
	}
	util := d.rateEMA / d.peakPerCycle
	if util > 0.95 {
		util = 0.95
	}
	return base / (1 - util)
}

// Utilization returns the current estimated DRAM utilization in [0,1).
func (d *dramModel) Utilization() float64 {
	u := d.rateEMA / d.peakPerCycle
	if u > 0.95 {
		u = 0.95
	}
	return u
}
