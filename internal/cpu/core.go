package cpu

// BranchKind classifies control transfers for prediction modeling.
type BranchKind uint8

const (
	BrCond      BranchKind = iota // conditional branch (JCC)
	BrJump                        // unconditional direct jump (JMP)
	BrCall                        // direct call
	BrCallInd                     // indirect call (CALLR)
	BrRet                         // return
	BrJumpTable                   // indirect jump through a table (JTBL)
)

// Shared holds structures shared by all cores of the simulated socket.
type Shared struct {
	l3 *cache
}

// NewShared builds the shared level of the hierarchy.
func NewShared(cfg *Config) *Shared {
	return &Shared{l3: newCache(cfg.L3KiB*1024, cfg.L3Ways, cfg.LineBytes)}
}

// Core models the timing of one hardware core. The process scheduler
// creates one Core per simulated hardware context and reports
// architectural events to it; the Core answers with cycle costs.
type Core struct {
	ID  int
	cfg *Config

	l1i   *cache
	l1d   *cache
	l2    *cache
	itlb  *cache
	l2tlb *cache
	sh    *Shared
	btb   *btb
	dir   *gshare
	ras   *ras
	dram  *dramModel

	// LBR facility. Recording is off until perf enables it.
	lbr        *lbrRing
	LBREnabled bool

	// Stats holds the hardware counters. The float cycle fields
	// (Cycles, RetireCycles, FEStallCycles, BadSpecCycles,
	// BEStallCycles) are derived lazily at read points, not per event —
	// read them through StatsSnapshot (or use Cycles()) instead of the
	// raw fields.
	Stats Stats

	// Cycle accounting keeps integer event counts separate from float
	// stall accumulators so that a straight-line run of event-free
	// instructions can be charged in O(1) (RetireBulk): total cycles are
	// derived as Instructions*retireCost + divOps*DivLat + the four
	// stall sums, with a fixed summation order so the derived value is
	// bit-identical however retirements were grouped.
	divOps        uint64
	stallRet      float64 // extra cycles charged to the Retiring bucket
	stallFE       float64 // front-end stalls (fetch misses, taken-branch bubbles)
	stallBS       float64 // bad speculation (mispredict penalties)
	stallBE       float64 // back-end stalls (data-cache misses, syscalls), excluding DivLat
	lastFetchLine uint64  // +1 encoding; 0 = none
	lastFetchPage uint64

	// Precomputed per-event constants: line/page index shifts derived
	// from the configured geometry, the per-slot retire cost, and a
	// table mapping TopDown buckets to their accumulator fields.
	lineShift  uint
	pageShift  uint
	retireCost float64
	bucketAcc  [4]*float64

	// l1iTags/l1iStamps (and the l1d pair) alias the caches' arrays so
	// the inline warm paths (FetchFast, MemFast) reach them with one
	// indirection fewer.
	l1iTags   []uint64
	l1iStamps []uint64
	l1dTags   []uint64
	l1dStamps []uint64
}

// NewCore builds a core attached to the shared hierarchy.
func NewCore(id int, cfg *Config, sh *Shared) *Core {
	c := &Core{
		ID:    id,
		cfg:   cfg,
		l1i:   newCache(cfg.L1iKiB*1024, cfg.L1iWays, cfg.LineBytes),
		l1d:   newCache(cfg.L1dKiB*1024, cfg.L1dWays, cfg.LineBytes),
		l2:    newCache(cfg.L2KiB*1024, cfg.L2Ways, cfg.LineBytes),
		itlb:  newCacheEntries(cfg.ITLBEntries, cfg.ITLBEntries, cfg.PageBytes),
		l2tlb: newCacheEntries(cfg.L2TLBEntries, 8, cfg.PageBytes),
		sh:    sh,
		btb:   newBTB(cfg.BTBEntries, cfg.BTBWays),
		dir:   newGshare(cfg.GshareBits),
		ras:   newRAS(cfg.RASDepth),
		dram:  newDRAM(cfg),
		lbr:   newLBR(cfg.LBREntries),

		lineShift:  log2up(cfg.LineBytes),
		pageShift:  log2up(cfg.PageBytes),
		retireCost: 1 / cfg.IssueWidth,
	}
	c.bucketAcc = [4]*float64{
		BucketRetiring: &c.stallRet,
		BucketFrontEnd: &c.stallFE,
		BucketBadSpec:  &c.stallBS,
		BucketBackEnd:  &c.stallBE,
	}
	c.l1iTags, c.l1iStamps = c.l1i.tags, c.l1i.stamps
	c.l1dTags, c.l1dStamps = c.l1d.tags, c.l1d.stamps
	return c
}

// log2up returns the smallest s with 1<<s >= n (the same granule rounding
// the cache models use).
func log2up(n int) uint {
	s := uint(0)
	for 1<<s < n {
		s++
	}
	return s
}

// Config returns the core's configuration.
func (c *Core) Config() *Config { return c.cfg }

// Cycles returns the core's elapsed cycle count, derived from the
// integer event counters and the stall accumulators. The summation order
// is fixed (and mirrored by StatsSnapshot) so the result does not depend
// on how retirements were grouped into bulk charges.
func (c *Core) Cycles() float64 {
	return (float64(c.Stats.Instructions)*c.retireCost + c.stallRet) +
		c.stallFE + c.stallBS +
		(float64(c.divOps)*c.cfg.DivLat + c.stallBE)
}

// Seconds returns the core's elapsed simulated time.
func (c *Core) Seconds() float64 { return c.Cycles() / c.cfg.ClockHz }

// LBRSnapshot returns the LBR ring oldest-first (what a perf PMI reads).
func (c *Core) LBRSnapshot() []BranchRecord { return c.lbr.Snapshot() }

// LBRDrain returns the ring contents oldest-first and clears the ring, the
// way a PMI handler consumes it: the next drain only sees branches retired
// after this one.
func (c *Core) LBRDrain() []BranchRecord { return c.lbr.drain() }

// StatsSnapshot returns the counters with the lazily-derived float cycle
// fields synced. The per-event paths (Fetch/Retire/Branch/Mem/AddStall)
// deliberately do not rewrite the Stats cycle fields on every event; the
// derivation here uses the same summation order as Cycles() so the two
// agree bit-for-bit.
func (c *Core) StatsSnapshot() Stats {
	s := c.Stats
	s.RetireCycles = float64(s.Instructions)*c.retireCost + c.stallRet
	s.FEStallCycles = c.stallFE
	s.BadSpecCycles = c.stallBS
	s.BEStallCycles = float64(c.divOps)*c.cfg.DivLat + c.stallBE
	s.Cycles = s.RetireCycles + s.FEStallCycles + s.BadSpecCycles + s.BEStallCycles
	return s
}

// AddStall charges extra cycles to the given TopDown bucket; the process
// layer uses it for perf sampling overhead and syscall costs.
func (c *Core) AddStall(cycles float64, bucket Bucket) {
	if int(bucket) < len(c.bucketAcc) {
		*c.bucketAcc[bucket] += cycles
	} else {
		c.stallBE += cycles
	}
}

// Fetch charges the front-end cost of fetching the instruction at pc.
// Sequential fetches within one cache line are free after the first; a new
// line pays an L1i lookup and, on a new page, an iTLB lookup. The same-line
// fast path is kept small enough to inline into the interpreter loop.
func (c *Core) Fetch(pc uint64) {
	line := pc>>c.lineShift + 1
	if line == c.lastFetchLine {
		return
	}
	c.fetchLine(pc, line)
}

// fetchLine is the new-line slow path of Fetch.
func (c *Core) fetchLine(pc, line uint64) {
	c.lastFetchLine = line

	// Warm-stream fast path: same page as the last fetch, and both the
	// demand line and its prefetch-next line sit in their sets' way 0
	// (the MRU position move-to-front maintains). Then the full path
	// below would charge nothing and change nothing except the demand
	// line's recency stamp — replicate exactly that and return. Any
	// condition that fails falls through to the full model.
	l1i := c.l1i
	key := pc >> l1i.shift
	set := int(key&l1i.setMask) * l1i.ways
	nset := int((key+1)&l1i.setMask) * l1i.ways
	if pc>>c.pageShift+1 == c.lastFetchPage &&
		l1i.tags[set] == key+1 && l1i.tags[nset] == key+2 {
		l1i.clock++
		l1i.accesses++
		l1i.stamps[set] = l1i.clock
		return
	}

	var stall float64
	page := pc>>c.pageShift + 1
	if page != c.lastFetchPage {
		c.lastFetchPage = page
		if !c.itlb.access(pc) {
			c.Stats.ITLBMisses++
			if c.l2tlb.access(pc) {
				stall += c.cfg.L2TLBLat
			} else {
				c.Stats.L2TLBMisses++
				stall += c.cfg.PageWalkLat
			}
		}
	}
	if !c.l1i.access(pc) {
		c.Stats.L1iMisses++
		if c.l2.access(pc) {
			stall += c.cfg.L2Lat
		} else if c.sh.l3.access(pc) {
			stall += c.cfg.L3Lat
		} else {
			stall += c.dram.latency(c.cfg.MemLat, c.Cycles())
			c.Stats.MemAccesses++
		}
	}
	// Next-line instruction prefetch: sequential fetch streams hide the
	// next line's miss, so compact code layouts fetch nearly for free
	// while scattered hot chunks (whose next line is cold padding) waste
	// the prefetch — the effect profile-guided layout exploits. The
	// prefetcher is not magic: it can fully hide an L2-resident stream,
	// but a longer-latency fill only gets as far as the L2 by the time
	// the demand fetch arrives (a single next-line prefetcher cannot keep
	// up with L3/DRAM latency at fetch bandwidth).
	next := pc + uint64(c.cfg.LineBytes)
	if !c.l1i.probe(next) {
		if c.l2.probe(next) {
			c.l1i.access(next) // stream from L2: fully hidden
		} else {
			c.l2.access(next) // long fill lands in L2, not L1i
		}
	}
	if stall > 0 {
		c.stallFE += stall
	}
}

// Retire charges the base retirement cost of one instruction. Both the
// retire-slot cost and the divider latency are folded lazily from the
// integer counters (see Cycles), so retiring is two integer adds.
func (c *Core) Retire(isDiv bool) {
	c.Stats.Instructions++
	if isDiv {
		c.divOps++
	}
}

// Branch models a control transfer: pc is the branch instruction, target
// the actual destination, taken whether the transfer redirects fetch
// (conditional fall-through is not taken). Calls also pass the return
// address for RAS modeling.
func (c *Core) Branch(pc, target uint64, taken bool, kind BranchKind, retAddr uint64) {
	var stall float64
	var misp bool

	switch kind {
	case BrCond:
		c.Stats.CondBranches++
		pred := c.dir.predict(pc)
		c.dir.update(pc, taken)
		if pred != taken {
			misp = true
		}
		if taken {
			stall += c.btbCost(pc, target)
		}
	case BrJump, BrCall:
		// Static target: direction always known; BTB still needed to
		// redirect fetch without a bubble.
		stall += c.btbCost(pc, target)
		if kind == BrCall {
			c.ras.push(retAddr)
		}
	case BrCallInd, BrJumpTable:
		predTarget, hit := c.btb.predictUpdate(pc, target)
		if !hit {
			c.Stats.BTBMisses++
			misp = true
		} else if predTarget != target {
			misp = true
		} else {
			stall += c.cfg.TakenBubble
		}
		if kind == BrCallInd {
			c.ras.push(retAddr)
		}
	case BrRet:
		pred, ok := c.ras.pop()
		if !ok || pred != target {
			misp = true
		} else {
			stall += c.cfg.TakenBubble
		}
	}

	if misp {
		c.Stats.Mispredicts++
		c.stallBS += c.cfg.MispredictPenalty
	}
	if taken {
		c.Stats.TakenBranches++
		c.lastFetchLine = 0 // fetch redirected: next fetch pays a lookup
		if c.LBREnabled {
			c.lbr.record(pc, target)
		}
	}
	if stall > 0 {
		c.stallFE += stall
	}
}

// btbCost returns the front-end bubble for a taken branch with a static
// target: a small redirect bubble on BTB hit, a bigger one on miss.
func (c *Core) btbCost(pc, target uint64) float64 {
	predTarget, hit := c.btb.predictUpdate(pc, target)
	if hit && predTarget == target {
		return c.cfg.TakenBubble
	}
	c.Stats.BTBMisses++
	return c.cfg.BTBMissPenalty
}

// Mem charges the back-end cost of a data access at addr.
func (c *Core) Mem(addr uint64, store bool) {
	if c.l1d.access(addr) {
		return
	}
	c.Stats.L1dMisses++
	var stall float64
	if c.l2.access(addr) {
		stall = c.cfg.L2Lat
	} else if c.sh.l3.access(addr) {
		stall = c.cfg.L3Lat
	} else {
		stall = c.dram.latency(c.cfg.MemLat, c.Cycles())
		c.Stats.MemAccesses++
	}
	// Stores retire without waiting; charge a fraction for store-buffer
	// pressure. Loads stall the pipeline (no OoO hiding modeled beyond the
	// issue width).
	if store {
		stall *= 0.3
	}
	c.stallBE += stall
}

// DRAMUtilization exposes the bandwidth model state (for diagnostics).
func (c *Core) DRAMUtilization() float64 { return c.dram.Utilization() }
