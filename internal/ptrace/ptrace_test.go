package ptrace

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/proc"
)

func spinProcess(t *testing.T) *proc.Process {
	t.Helper()
	p := build.NewProgram("spin")
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(10000)
	return pr
}

func TestAttachStopsTarget(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	if !tr.Attached() || !pr.Paused() {
		t.Fatal("attach did not stop the target")
	}
	if n := pr.RunUntilHalt(0); n != 0 {
		t.Errorf("stopped target executed %d instructions", n)
	}
	tr.Detach()
	if pr.Paused() {
		t.Error("detach did not resume")
	}
	if n := pr.RunUntilHalt(1000); n == 0 {
		t.Error("target did not run after detach")
	}
	// Double detach is harmless.
	tr.Detach()
}

func TestPeekPokeAndBulk(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()

	// Scratch space must be mapped first (the agent's mmap): the hardened
	// tracee refuses to conjure pages at arbitrary addresses.
	if err := tr.Map(0x9000_0000, 1<<24); err != nil {
		t.Fatal(err)
	}
	if err := tr.PokeData(0x9000_0000, 0xABCD); err != nil {
		t.Fatal(err)
	}
	if v, err := tr.PeekData(0x9000_0000); err != nil || v != 0xABCD {
		t.Errorf("peek = %#x, %v", v, err)
	}

	src := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if err := tr.AgentWrite(0x9010_0000, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := tr.ReadMem(0x9010_0000, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Error("bulk round trip mismatch")
	}

	// Accounting distinguishes the slow and fast paths.
	if tr.PokeCount != 1 || tr.PokeBytes != 8 {
		t.Errorf("poke accounting %d/%d", tr.PokeCount, tr.PokeBytes)
	}
	if tr.AgentBytes != uint64(len(src)) {
		t.Errorf("agent accounting %d", tr.AgentBytes)
	}
}

func TestUnmappedAddressesFailDescriptively(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()

	const bad = uint64(0x9000_0000)
	checks := []struct {
		name string
		call func() error
	}{
		{"poke", func() error { return tr.PokeData(bad, 1) }},
		{"peek", func() error { _, err := tr.PeekData(bad); return err }},
		{"write", func() error { return tr.AgentWrite(bad, []byte{1}) }},
		{"read", func() error { return tr.ReadMem(bad, make([]byte, 8)) }},
	}
	for _, c := range checks {
		err := c.call()
		if err == nil {
			t.Fatalf("%s at unmapped %#x succeeded", c.name, bad)
		}
		if !strings.Contains(err.Error(), "not mapped") || !strings.Contains(err.Error(), "0x90000000") {
			t.Errorf("%s error not descriptive: %v", c.name, err)
		}
	}
	if tr.PokeCount != 0 || tr.PokeBytes != 0 || tr.AgentBytes != 0 {
		t.Error("failed operations were charged to traffic accounting")
	}

	// A range straddling the end of a mapped region fails even though it
	// starts mapped.
	if err := tr.Map(0xA000_0000, 16); err != nil {
		t.Fatal(err)
	}
	if err := tr.AgentWrite(0xA000_0000, make([]byte, 32)); err == nil {
		t.Error("write straddling end of mapped region succeeded")
	}
	// Image, heap, and stack addresses remain valid.
	if _, err := tr.PeekData(pr.Bin.Entry); err != nil {
		t.Errorf("peek at binary entry: %v", err)
	}
	sp := pr.Threads[0].StackHi - 8
	if _, err := tr.PeekData(sp); err != nil {
		t.Errorf("peek in thread stack: %v", err)
	}
	// Unmap makes the window invalid again.
	if err := tr.Unmap(0xA000_0000, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.PeekData(0xA000_0000); err == nil {
		t.Error("peek after unmap succeeded")
	}
}

func TestFaultHookInjectsFailures(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()
	if err := tr.Map(0x9000_0000, 1<<20); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	var ops []string
	failAt := -1
	tr.FaultHook = func(op string, n int) error {
		ops = append(ops, op)
		if n == failAt {
			return boom
		}
		return nil
	}

	if err := tr.PokeData(0x9000_0000, 7); err != nil {
		t.Fatal(err)
	}
	failAt = tr.OpCount()
	err := tr.PokeData(0x9000_0008, 8)
	if !errors.Is(err, boom) {
		t.Fatalf("injected fault not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "poke") {
		t.Errorf("fault error does not name the op: %v", err)
	}
	// The failed poke must not have touched memory.
	if v, _ := tr.PeekData(0x9000_0008); v != 0 {
		t.Errorf("failed poke wrote %#x", v)
	}
	want := []string{"poke", "poke", "peek"}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Errorf("hook saw ops %v, want %v", ops, want)
	}
}

func TestThreadsAndRegs(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()
	if tr.Threads() != 2 {
		t.Fatalf("threads = %d", tr.Threads())
	}
	r0, err := tr.GetRegs(0)
	if err != nil {
		t.Fatal(err)
	}
	if r0.PC%isa.InstBytes != 0 {
		t.Error("PC not at instruction boundary")
	}
	if r0.GPR[isa.SP] == 0 {
		t.Error("SP not initialized")
	}
	if _, err := tr.GetRegs(2); err == nil {
		t.Error("out-of-range tid accepted")
	}
	if err := tr.SetRegs(-1, r0); err == nil {
		t.Error("negative tid accepted")
	}
}

func TestDetachedOperationsAllFail(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	tr.Detach()
	if _, err := tr.PeekData(0x1000); err == nil {
		t.Error("PeekData after detach")
	}
	if err := tr.SetRegs(0, Regs{}); err == nil {
		t.Error("SetRegs after detach")
	}
	if err := tr.ReadMem(0x1000, make([]byte, 8)); err == nil {
		t.Error("ReadMem after detach")
	}
	if err := tr.AgentWrite(0x1000, []byte{1}); err == nil {
		t.Error("AgentWrite after detach")
	}
}

func TestProcessAccessor(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()
	if tr.Process() != pr {
		t.Error("Process() does not return the tracee's process")
	}
}
