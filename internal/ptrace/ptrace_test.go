package ptrace

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/proc"
)

func spinProcess(t *testing.T) *proc.Process {
	t.Helper()
	p := build.NewProgram("spin")
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(10000)
	return pr
}

func TestAttachStopsTarget(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	if !tr.Attached() || !pr.Paused() {
		t.Fatal("attach did not stop the target")
	}
	if n := pr.RunUntilHalt(0); n != 0 {
		t.Errorf("stopped target executed %d instructions", n)
	}
	tr.Detach()
	if pr.Paused() {
		t.Error("detach did not resume")
	}
	if n := pr.RunUntilHalt(1000); n == 0 {
		t.Error("target did not run after detach")
	}
	// Double detach is harmless.
	tr.Detach()
}

func TestPeekPokeAndBulk(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()

	if err := tr.PokeData(0x9000_0000, 0xABCD); err != nil {
		t.Fatal(err)
	}
	if v, err := tr.PeekData(0x9000_0000); err != nil || v != 0xABCD {
		t.Errorf("peek = %#x, %v", v, err)
	}

	src := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if err := tr.AgentWrite(0x9100_0000, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := tr.ReadMem(0x9100_0000, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Error("bulk round trip mismatch")
	}

	// Accounting distinguishes the slow and fast paths.
	if tr.PokeCount != 1 || tr.PokeBytes != 8 {
		t.Errorf("poke accounting %d/%d", tr.PokeCount, tr.PokeBytes)
	}
	if tr.AgentBytes != uint64(len(src)) {
		t.Errorf("agent accounting %d", tr.AgentBytes)
	}
}

func TestThreadsAndRegs(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()
	if tr.Threads() != 2 {
		t.Fatalf("threads = %d", tr.Threads())
	}
	r0, err := tr.GetRegs(0)
	if err != nil {
		t.Fatal(err)
	}
	if r0.PC%isa.InstBytes != 0 {
		t.Error("PC not at instruction boundary")
	}
	if r0.GPR[isa.SP] == 0 {
		t.Error("SP not initialized")
	}
	if _, err := tr.GetRegs(2); err == nil {
		t.Error("out-of-range tid accepted")
	}
	if err := tr.SetRegs(-1, r0); err == nil {
		t.Error("negative tid accepted")
	}
}

func TestDetachedOperationsAllFail(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	tr.Detach()
	if _, err := tr.PeekData(0x1000); err == nil {
		t.Error("PeekData after detach")
	}
	if err := tr.SetRegs(0, Regs{}); err == nil {
		t.Error("SetRegs after detach")
	}
	if err := tr.ReadMem(0x1000, make([]byte, 8)); err == nil {
		t.Error("ReadMem after detach")
	}
	if err := tr.AgentWrite(0x1000, []byte{1}); err == nil {
		t.Error("AgentWrite after detach")
	}
}

func TestProcessAccessor(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()
	if tr.Process() != pr {
		t.Error("Process() does not return the tracee's process")
	}
}
