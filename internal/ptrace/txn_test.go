package ptrace

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// fingerprint captures everything a rollback promises to restore: memory
// contents of every resident range, page residency itself, register files,
// and the agent-region registry.
type fingerprint struct {
	ranges   [][2]uint64
	contents map[uint64][]byte
	regs     []Regs
	regions  string
	resident uint64
}

func snapshotTarget(t *testing.T, tr *Tracee) fingerprint {
	t.Helper()
	p := tr.Process()
	fp := fingerprint{
		ranges:   p.Mem.MappedRanges(),
		contents: make(map[uint64][]byte),
		resident: p.Mem.ResidentBytes(),
	}
	for _, r := range fp.ranges {
		b := make([]byte, r[1]-r[0])
		p.Mem.Read(r[0], b)
		fp.contents[r[0]] = b
	}
	for tid := 0; tid < tr.Threads(); tid++ {
		r, err := tr.rawGetRegs(tid)
		if err != nil {
			t.Fatal(err)
		}
		fp.regs = append(fp.regs, r)
	}
	for _, r := range p.Regions() {
		fp.regions += string(rune(r.Addr)) + string(rune(r.Size))
	}
	return fp
}

func requireSame(t *testing.T, want, got fingerprint) {
	t.Helper()
	if len(want.ranges) != len(got.ranges) {
		t.Fatalf("mapped ranges: %d != %d\nwant %x\ngot  %x", len(want.ranges), len(got.ranges), want.ranges, got.ranges)
	}
	for i := range want.ranges {
		if want.ranges[i] != got.ranges[i] {
			t.Fatalf("range %d: %x != %x", i, want.ranges[i], got.ranges[i])
		}
	}
	for base, wb := range want.contents {
		gb := got.contents[base]
		for i := range wb {
			if wb[i] != gb[i] {
				t.Fatalf("byte at %#x differs: %#x != %#x", base+uint64(i), wb[i], gb[i])
			}
		}
	}
	if want.resident != got.resident {
		t.Fatalf("resident bytes: %d != %d", want.resident, got.resident)
	}
	for tid := range want.regs {
		if want.regs[tid] != got.regs[tid] {
			t.Fatalf("thread %d regs differ", tid)
		}
	}
	if want.regions != got.regions {
		t.Fatal("agent regions differ")
	}
}

func TestTxnRollbackRestoresEverything(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()
	// A pre-existing scratch region outside the transaction, with one
	// resident page.
	if err := tr.Map(0xB000_0000, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := tr.PokeData(0xB000_0000, 0x1122); err != nil {
		t.Fatal(err)
	}

	before := snapshotTarget(t, tr)
	x := Begin(tr)

	// Overwrite existing code bytes and the resident scratch word.
	if err := x.PokeData(pr.Bin.Entry, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if err := x.PokeData(0xB000_0000, 0x3344); err != nil {
		t.Fatal(err)
	}
	// Write into a never-touched page of the scratch region: the page is
	// allocated by the write and must be released by the undo.
	if err := x.AgentWrite(0xB000_9000, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	// Map a new region and dirty it.
	if err := x.Map(0xC000_0000, 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := x.AgentWrite(0xC000_0000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Unmap the pre-existing region entirely (resident page included).
	if err := x.Unmap(0xB000_0000, 1<<20); err != nil {
		t.Fatal(err)
	}
	// Registers.
	r0, err := x.GetRegs(0)
	if err != nil {
		t.Fatal(err)
	}
	r0.PC = pr.Bin.Entry
	r0.GPR[isa.R5] = 0xF00D
	if err := x.SetRegs(0, r0); err != nil {
		t.Fatal(err)
	}

	if x.Writes() != 7 {
		t.Errorf("journal holds %d records, want 7", x.Writes())
	}
	if err := x.Rollback(); err != nil {
		t.Fatal(err)
	}
	requireSame(t, before, snapshotTarget(t, tr))

	// Rollback is idempotent once closed.
	if err := x.Rollback(); err != nil {
		t.Fatal(err)
	}
	requireSame(t, before, snapshotTarget(t, tr))
}

func TestTxnCommitKeepsEffects(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()
	x := Begin(tr)
	if err := x.Map(0x9000_0000, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := x.PokeData(0x9000_0000, 77); err != nil {
		t.Fatal(err)
	}
	x.Commit()
	if err := x.Rollback(); err != nil { // no-op after commit
		t.Fatal(err)
	}
	if v, err := tr.PeekData(0x9000_0000); err != nil || v != 77 {
		t.Errorf("committed write lost: %v %v", v, err)
	}
}

func TestTxnFaultMidStreamRollsBackCleanly(t *testing.T) {
	pr := spinProcess(t)
	tr := Attach(pr)
	defer tr.Detach()
	before := snapshotTarget(t, tr)

	boom := errors.New("boom")
	x := Begin(tr)
	if err := x.Map(0x9000_0000, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := x.AgentWrite(0x9000_0000, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Fail the next op through the hook: the op must not be journaled and
	// the rollback must still restore the pre-transaction state exactly —
	// including bypassing the hook itself.
	tr.FaultHook = func(op string, n int) error { return boom }
	if err := x.PokeData(pr.Bin.Entry, 1); !errors.Is(err, boom) {
		t.Fatalf("hook did not fail the poke: %v", err)
	}
	if x.Writes() != 2 {
		t.Errorf("failed op was journaled: %d records", x.Writes())
	}
	if err := x.Rollback(); err != nil {
		t.Fatal(err)
	}
	tr.FaultHook = nil
	requireSame(t, before, snapshotTarget(t, tr))
}
