// Package ptrace is the debugger API over a simulated process, mirroring
// the subset of Linux ptrace that OCOLOS uses (§IV): attach/stop the
// target, peek/poke its memory, and read/adjust per-thread register state.
//
// Two memory-write paths are provided, matching the paper's
// "Efficient Code Copying" discussion (§V): PokeData writes one word per
// call (the real PTRACE_POKEDATA, a syscall plus context switches per
// 8 bytes — prohibitively slow for MiBs of code), while AgentWrite models
// the LD_PRELOAD agent doing a bulk memcpy from inside the target.
//
// The tracee is a hard error boundary: every operation validates its
// target address against the process's mapped image (binary sections,
// heap, thread stacks, agent-mapped regions) and fails descriptively
// instead of silently reading zeros or conjuring pages, and every
// operation first consults FaultHook so tests can inject a failure at any
// exact point of a replacement. The Txn layer (txn.go) builds an undo
// journal on top of these guarantees.
package ptrace

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/proc"
)

// Tracee is an attached process.
type Tracee struct {
	p        *proc.Process
	attached bool

	// FaultHook, when non-nil, runs before every tracee operation with the
	// operation name ("peek", "poke", "read", "write", "getregs",
	// "setregs", "map", "unmap") and its index on this tracee. A non-nil
	// return fails the operation before it touches the target — the fault
	// injection surface the transactional-replacement sweep drives.
	FaultHook func(op string, n int) error
	opCount   int

	// PokeCount and PokeBytes record traffic through the slow word-by-word
	// path; AgentBytes through the in-process agent path. The OCOLOS
	// controller reports these in its replacement cost breakdown.
	PokeCount  uint64
	PokeBytes  uint64
	AgentBytes uint64
}

// Attach stops the target process (all threads halt at instruction
// boundaries) and returns a Tracee handle.
func Attach(p *proc.Process) *Tracee {
	p.Pause()
	return &Tracee{p: p, attached: true}
}

// Detach resumes the target.
func (t *Tracee) Detach() {
	if t.attached {
		t.p.Resume()
		t.attached = false
	}
}

// Attached reports whether the tracee is still stopped.
func (t *Tracee) Attached() bool { return t.attached }

// OpCount returns how many operations this tracee has begun (including
// ones failed by the hook or an unmapped address).
func (t *Tracee) OpCount() int { return t.opCount }

// begin runs the per-operation preamble: the attachment check, then the
// fault hook. Every public operation calls it exactly once.
func (t *Tracee) begin(op string) error {
	if !t.attached {
		return fmt.Errorf("ptrace: %s: not attached", op)
	}
	n := t.opCount
	t.opCount++
	if t.FaultHook != nil {
		if err := t.FaultHook(op, n); err != nil {
			return fmt.Errorf("ptrace: %s (op %d): %w", op, n, err)
		}
	}
	return nil
}

// checkMapped validates a target address range.
func (t *Tracee) checkMapped(op string, addr, n uint64) error {
	if !t.p.RangeMapped(addr, n) {
		return fmt.Errorf("ptrace: %s at %#x (+%d): address not mapped in target (image, heap, stacks, or agent regions)", op, addr, n)
	}
	return nil
}

// Regs is the register file of one thread, as GETREGS returns it.
type Regs struct {
	PC  uint64
	GPR [isa.NumRegs]uint64
	Cmp int64
}

// GetRegs reads thread tid's registers.
func (t *Tracee) GetRegs(tid int) (Regs, error) {
	if err := t.begin("getregs"); err != nil {
		return Regs{}, err
	}
	return t.rawGetRegs(tid)
}

// rawGetRegs reads registers without the hook preamble (rollback path).
func (t *Tracee) rawGetRegs(tid int) (Regs, error) {
	if tid < 0 || tid >= len(t.p.Threads) {
		return Regs{}, fmt.Errorf("ptrace: no thread %d", tid)
	}
	th := t.p.Threads[tid]
	return Regs{PC: th.PC, GPR: th.Regs, Cmp: th.CmpVal}, nil
}

// SetRegs writes thread tid's registers.
func (t *Tracee) SetRegs(tid int, r Regs) error {
	if err := t.begin("setregs"); err != nil {
		return err
	}
	return t.rawSetRegs(tid, r)
}

// rawSetRegs writes registers without the hook preamble (rollback path).
func (t *Tracee) rawSetRegs(tid int, r Regs) error {
	if tid < 0 || tid >= len(t.p.Threads) {
		return fmt.Errorf("ptrace: no thread %d", tid)
	}
	th := t.p.Threads[tid]
	th.PC = r.PC
	th.Regs = r.GPR
	th.CmpVal = r.Cmp
	return nil
}

// Threads returns the number of threads in the tracee.
func (t *Tracee) Threads() int { return len(t.p.Threads) }

// PeekData reads one word at addr.
func (t *Tracee) PeekData(addr uint64) (uint64, error) {
	if err := t.begin("peek"); err != nil {
		return 0, err
	}
	if err := t.checkMapped("peek", addr, 8); err != nil {
		return 0, err
	}
	return t.p.Mem.ReadWord(addr), nil
}

// PokeData writes one word at addr — the slow per-word path.
func (t *Tracee) PokeData(addr uint64, v uint64) error {
	if err := t.begin("poke"); err != nil {
		return err
	}
	if err := t.checkMapped("poke", addr, 8); err != nil {
		return err
	}
	t.p.Mem.WriteWord(addr, v)
	t.PokeCount++
	t.PokeBytes += 8
	return nil
}

// ReadMem bulk-reads target memory (process_vm_readv analog).
func (t *Tracee) ReadMem(addr uint64, b []byte) error {
	if err := t.begin("read"); err != nil {
		return err
	}
	if err := t.checkMapped("read", addr, uint64(len(b))); err != nil {
		return err
	}
	t.p.Mem.Read(addr, b)
	return nil
}

// AgentWrite bulk-writes target memory through the in-process agent (the
// LD_PRELOAD library's memcpy), the fast path OCOLOS uses for code
// injection.
func (t *Tracee) AgentWrite(addr uint64, b []byte) error {
	if err := t.begin("write"); err != nil {
		return err
	}
	if err := t.checkMapped("write", addr, uint64(len(b))); err != nil {
		return err
	}
	t.p.Mem.Write(addr, b)
	t.AgentBytes += uint64(len(b))
	return nil
}

// Map registers [addr, addr+size) as a valid target window — the agent
// calling mmap to create a code version's home. Pages stay lazy; only the
// validity map changes.
func (t *Tracee) Map(addr, size uint64) error {
	if err := t.begin("map"); err != nil {
		return err
	}
	t.p.MapRegion(addr, size)
	return nil
}

// Unmap releases [addr, addr+size): agent-mapped regions fully inside the
// range are unregistered and the backing pages are returned to the system
// (the continuous-optimization GC's munmap, §IV-C).
func (t *Tracee) Unmap(addr, size uint64) error {
	if err := t.begin("unmap"); err != nil {
		return err
	}
	t.p.UnmapRegion(addr, size)
	t.p.Mem.Unmap(addr, size)
	return nil
}

// Process exposes the underlying process for facilities that are part of
// the agent rather than the debugger proper (installing the
// function-pointer hook, unmapping dead code).
func (t *Tracee) Process() *proc.Process { return t.p }
