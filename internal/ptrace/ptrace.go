// Package ptrace is the debugger API over a simulated process, mirroring
// the subset of Linux ptrace that OCOLOS uses (§IV): attach/stop the
// target, peek/poke its memory, and read/adjust per-thread register state.
//
// Two memory-write paths are provided, matching the paper's
// "Efficient Code Copying" discussion (§V): PokeData writes one word per
// call (the real PTRACE_POKEDATA, a syscall plus context switches per
// 8 bytes — prohibitively slow for MiBs of code), while AgentWrite models
// the LD_PRELOAD agent doing a bulk memcpy from inside the target.
package ptrace

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/proc"
)

// Tracee is an attached process.
type Tracee struct {
	p        *proc.Process
	attached bool

	// PokeCount and PokeBytes record traffic through the slow word-by-word
	// path; AgentBytes through the in-process agent path. The OCOLOS
	// controller reports these in its replacement cost breakdown.
	PokeCount  uint64
	PokeBytes  uint64
	AgentBytes uint64
}

// Attach stops the target process (all threads halt at instruction
// boundaries) and returns a Tracee handle.
func Attach(p *proc.Process) *Tracee {
	p.Pause()
	return &Tracee{p: p, attached: true}
}

// Detach resumes the target.
func (t *Tracee) Detach() {
	if t.attached {
		t.p.Resume()
		t.attached = false
	}
}

// Attached reports whether the tracee is still stopped.
func (t *Tracee) Attached() bool { return t.attached }

func (t *Tracee) check() error {
	if !t.attached {
		return fmt.Errorf("ptrace: not attached")
	}
	return nil
}

// Regs is the register file of one thread, as GETREGS returns it.
type Regs struct {
	PC  uint64
	GPR [isa.NumRegs]uint64
	Cmp int64
}

// GetRegs reads thread tid's registers.
func (t *Tracee) GetRegs(tid int) (Regs, error) {
	if err := t.check(); err != nil {
		return Regs{}, err
	}
	if tid < 0 || tid >= len(t.p.Threads) {
		return Regs{}, fmt.Errorf("ptrace: no thread %d", tid)
	}
	th := t.p.Threads[tid]
	return Regs{PC: th.PC, GPR: th.Regs, Cmp: th.CmpVal}, nil
}

// SetRegs writes thread tid's registers.
func (t *Tracee) SetRegs(tid int, r Regs) error {
	if err := t.check(); err != nil {
		return err
	}
	if tid < 0 || tid >= len(t.p.Threads) {
		return fmt.Errorf("ptrace: no thread %d", tid)
	}
	th := t.p.Threads[tid]
	th.PC = r.PC
	th.Regs = r.GPR
	th.CmpVal = r.Cmp
	return nil
}

// Threads returns the number of threads in the tracee.
func (t *Tracee) Threads() int { return len(t.p.Threads) }

// PeekData reads one word at addr.
func (t *Tracee) PeekData(addr uint64) (uint64, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	return t.p.Mem.ReadWord(addr), nil
}

// PokeData writes one word at addr — the slow per-word path.
func (t *Tracee) PokeData(addr uint64, v uint64) error {
	if err := t.check(); err != nil {
		return err
	}
	t.p.Mem.WriteWord(addr, v)
	t.PokeCount++
	t.PokeBytes += 8
	return nil
}

// ReadMem bulk-reads target memory (process_vm_readv analog).
func (t *Tracee) ReadMem(addr uint64, b []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	t.p.Mem.Read(addr, b)
	return nil
}

// AgentWrite bulk-writes target memory through the in-process agent (the
// LD_PRELOAD library's memcpy), the fast path OCOLOS uses for code
// injection.
func (t *Tracee) AgentWrite(addr uint64, b []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	t.p.Mem.Write(addr, b)
	t.AgentBytes += uint64(len(b))
	return nil
}

// Process exposes the underlying process for facilities that are part of
// the agent rather than the debugger proper (installing the
// function-pointer hook, unmapping dead code).
func (t *Tracee) Process() *proc.Process { return t.p }
