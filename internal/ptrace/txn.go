// Txn is the write journal that makes a replacement round transactional
// (the torn-state hazard OSR literature treats as the central correctness
// problem of live code-version transfer): every mutation of the target —
// memory writes, register writes, region map/unmap — records enough of
// the old state to be undone, and Rollback replays the undos in reverse
// while the target is still paused, leaving its memory (contents *and*
// page residency) and registers bit-identical to the pre-transaction
// state. Either Commit or Rollback must be called before Detach.
package ptrace

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/proc"
)

// undoKind discriminates journal entries.
type undoKind int

const (
	undoWrite undoKind = iota // restore old bytes, release fresh pages
	undoRegs                  // restore a thread's register file
	undoMap                   // unregister a region mapped by the txn
	undoUnmap                 // re-register regions and restore page contents
)

// savedSpan is one contiguous run of pre-unmap page contents.
type savedSpan struct {
	addr uint64
	data []byte
}

type undoRec struct {
	kind undoKind

	addr  uint64
	old   []byte   // pre-write bytes (undoWrite) — nil for undoMap
	fresh []uint64 // page indexes this write allocated, released on undo

	tid  int
	regs Regs

	size    uint64        // region size (undoMap)
	regions []proc.Region // regions removed by the unmap (undoUnmap)
	spans   []savedSpan   // resident contents released by the unmap
}

// Txn journals every mutation issued through it against one Tracee.
type Txn struct {
	tr     *Tracee
	undos  []undoRec
	closed bool
}

// Begin opens a transaction over an attached tracee.
func Begin(tr *Tracee) *Txn {
	return &Txn{tr: tr}
}

// Writes returns the number of journaled mutations.
func (x *Txn) Writes() int { return len(x.undos) }

// ---- read-only passthroughs -------------------------------------------

// GetRegs reads thread tid's registers.
func (x *Txn) GetRegs(tid int) (Regs, error) { return x.tr.GetRegs(tid) }

// PeekData reads one word at addr.
func (x *Txn) PeekData(addr uint64) (uint64, error) { return x.tr.PeekData(addr) }

// ReadMem bulk-reads target memory.
func (x *Txn) ReadMem(addr uint64, b []byte) error { return x.tr.ReadMem(addr, b) }

// Threads returns the tracee's thread count.
func (x *Txn) Threads() int { return x.tr.Threads() }

// Process exposes the underlying process.
func (x *Txn) Process() *proc.Process { return x.tr.Process() }

// Tracee returns the wrapped tracee.
func (x *Txn) Tracee() *Tracee { return x.tr }

// ---- journaled mutations ----------------------------------------------

// snapshotRange captures the bytes and page residency of [addr, addr+n)
// before a write, so the undo can restore contents and release any pages
// the write allocated.
func (x *Txn) snapshotRange(addr uint64, n uint64) undoRec {
	rec := undoRec{kind: undoWrite, addr: addr, old: make([]byte, n)}
	m := x.tr.p.Mem
	m.Read(addr, rec.old)
	for pg := addr / mem.PageSize; pg <= (addr+n-1)/mem.PageSize; pg++ {
		if !m.Resident(pg * mem.PageSize) {
			rec.fresh = append(rec.fresh, pg)
		}
	}
	return rec
}

// PokeData journals and performs a one-word write.
func (x *Txn) PokeData(addr uint64, v uint64) error {
	rec := x.snapshotRange(addr, 8)
	if err := x.tr.PokeData(addr, v); err != nil {
		return err
	}
	x.undos = append(x.undos, rec)
	return nil
}

// AgentWrite journals and performs a bulk write.
func (x *Txn) AgentWrite(addr uint64, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	rec := x.snapshotRange(addr, uint64(len(b)))
	if err := x.tr.AgentWrite(addr, b); err != nil {
		return err
	}
	x.undos = append(x.undos, rec)
	return nil
}

// SetRegs journals and performs a register write.
func (x *Txn) SetRegs(tid int, r Regs) error {
	old, err := x.tr.rawGetRegs(tid)
	if err != nil {
		return err
	}
	if err := x.tr.SetRegs(tid, r); err != nil {
		return err
	}
	x.undos = append(x.undos, undoRec{kind: undoRegs, tid: tid, regs: old})
	return nil
}

// Map journals and performs a region registration.
func (x *Txn) Map(addr, size uint64) error {
	if err := x.tr.Map(addr, size); err != nil {
		return err
	}
	x.undos = append(x.undos, undoRec{kind: undoMap, addr: addr, size: size})
	return nil
}

// Unmap journals and performs a region release. The resident contents of
// the range are saved first (dead code regions are sparse — only pages
// that actually exist are copied), so rollback can resurrect the region
// exactly.
func (x *Txn) Unmap(addr, size uint64) error {
	p := x.tr.p
	rec := undoRec{kind: undoUnmap, addr: addr, size: size}
	end := addr + size
	for _, r := range p.Mem.MappedRanges() {
		lo, hi := r[0], r[1]
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		if lo >= hi {
			continue
		}
		data := make([]byte, hi-lo)
		p.Mem.Read(lo, data)
		rec.spans = append(rec.spans, savedSpan{addr: lo, data: data})
	}
	// Peek at which regions the unmap will drop without mutating yet: the
	// tracee op below may be failed by the fault hook.
	for _, r := range p.Regions() {
		if r.Addr >= addr && r.End() <= end {
			rec.regions = append(rec.regions, r)
		}
	}
	if err := x.tr.Unmap(addr, size); err != nil {
		return err
	}
	x.undos = append(x.undos, rec)
	return nil
}

// ---- resolution --------------------------------------------------------

// Commit discards the journal; the transaction's effects stand.
func (x *Txn) Commit() {
	x.undos = nil
	x.closed = true
}

// Rollback replays the journal in reverse, restoring target memory,
// page residency, registers, and region registrations to their
// pre-transaction state. It bypasses the fault hook — undo must not fail
// — and is idempotent once the transaction is closed.
func (x *Txn) Rollback() error {
	if x.closed {
		return nil
	}
	p := x.tr.p
	for i := len(x.undos) - 1; i >= 0; i-- {
		rec := x.undos[i]
		switch rec.kind {
		case undoWrite:
			p.Mem.Write(rec.addr, rec.old)
			for _, pg := range rec.fresh {
				p.Mem.Unmap(pg*mem.PageSize, mem.PageSize)
			}
		case undoRegs:
			if err := x.tr.rawSetRegs(rec.tid, rec.regs); err != nil {
				return fmt.Errorf("ptrace: rollback: %w", err)
			}
		case undoMap:
			p.UnmapRegion(rec.addr, rec.size)
		case undoUnmap:
			for _, r := range rec.regions {
				p.MapRegion(r.Addr, r.Size)
			}
			for _, s := range rec.spans {
				p.Mem.Write(s.addr, s.data)
			}
		}
	}
	x.undos = nil
	x.closed = true
	return nil
}
