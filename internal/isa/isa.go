// Package isa defines the synthetic instruction set executed by the
// simulated machine.
//
// The ISA is a small fixed-width RISC-style instruction set designed to
// expose every flavour of code pointer that OCOLOS (MICRO 2022, §III-B)
// must handle when it replaces code in a running process:
//
//   - PC-relative direct calls (CALL) and branches (JMP, JCC)
//   - indirect calls through registers (CALLR), fed by v-table loads or
//     programmer-created function pointers
//   - function-pointer creation sites (FPTR), the hook point for the
//     wrapFuncPtrCreation instrumentation of §IV-C2
//   - jump tables (JTBL) whose targets are compile-time constants, the
//     construct that forces -fno-jump-tables in §IV-D
//   - return addresses pushed on a real, in-memory stack (CALL/RET), so a
//     debugger can unwind frames the way libunwind does
//
// Every instruction is exactly 16 bytes (InstBytes) so that code occupies
// real space in the simulated address space, streams through the modeled
// L1i/iTLB, and can be copied byte-for-byte during code replacement.
package isa

import (
	"encoding/binary"
	"fmt"
)

// InstBytes is the size of every encoded instruction in bytes.
const InstBytes = 16

// Op identifies an instruction opcode.
type Op uint8

// Opcodes. The zero value is deliberately invalid so that executing
// zero-filled memory faults immediately.
const (
	BAD Op = iota
	NOP
	HALT // stop the current thread

	// Data movement and arithmetic. Rd <- Rs1 op Rs2 (register forms) or
	// Rd <- Rs1 op Imm (immediate forms).
	MOVI // Rd <- Imm
	MOV  // Rd <- Rs1
	ADD
	SUB
	MUL
	DIV // divide; DIV by zero faults
	MOD
	AND
	OR
	XOR
	SHL
	SHR
	ADDI
	MULI
	ANDI
	ORI
	XORI
	SHLI
	SHRI

	// Memory. Addresses are Rs1+Imm. LD/ST move 8-byte words; LDB/STB
	// single bytes.
	LD  // Rd <- mem[Rs1+Imm]
	ST  // mem[Rs1+Imm] <- Rs2
	LDB // Rd <- zeroext(mem8[Rs1+Imm])
	STB // mem8[Rs1+Imm] <- low8(Rs2)

	// Compare: records Rs1-Rs2 (or Rs1-Imm) in the thread's flag state for
	// a subsequent JCC.
	CMP
	CMPI

	// Control flow. All relative offsets are byte offsets from the address
	// of the *next* instruction (PC+16), as with x86 rel32.
	JMP  // PC-relative unconditional jump
	JCC  // PC-relative conditional jump; condition in Cond field
	CALL // PC-relative direct call: push return address, jump
	// CALLR calls through a register holding an absolute code address:
	// virtual dispatch and programmer function pointers both end here.
	CALLR
	RET // pop return address into PC

	// JTBL implements a jump table: the table lives at absolute address
	// Imm (a compile-time constant, as emitted for dense switches) and
	// holds absolute 8-byte code addresses; Rs1 is the index.
	JTBL

	// FPTR materializes a function's absolute address into Rd. This is the
	// single place where programs create function pointers, and thus the
	// site OCOLOS's compiler pass instruments (§IV-C2): the process may
	// install a translation hook that rewrites the produced value.
	FPTR

	// Stack frames. ENTER pushes FP, sets FP=SP, then subtracts Imm from
	// SP; LEAVE undoes it. Making frame setup a single instruction keeps
	// the FP chain unwindable at every instruction boundary.
	ENTER
	LEAVE
	PUSH // push Rs1
	POP  // pop into Rd

	// SYS invokes the process's syscall handler. The call number is Imm;
	// arguments and results use the normal argument registers.
	SYS

	opCount // sentinel
)

var opNames = [...]string{
	BAD: "bad", NOP: "nop", HALT: "halt",
	MOVI: "movi", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	ADDI: "addi", MULI: "muli", ANDI: "andi", ORI: "ori", XORI: "xori",
	SHLI: "shli", SHRI: "shri",
	LD: "ld", ST: "st", LDB: "ldb", STB: "stb",
	CMP: "cmp", CMPI: "cmpi",
	JMP: "jmp", JCC: "jcc", CALL: "call", CALLR: "callr", RET: "ret",
	JTBL: "jtbl", FPTR: "fptr",
	ENTER: "enter", LEAVE: "leave", PUSH: "push", POP: "pop",
	SYS: "sys",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o > BAD && o < opCount }

// Cond is a branch condition evaluated against the flags set by CMP/CMPI.
type Cond uint8

// Conditions compare the recorded (Rs1 - Rs2) value with zero, signed.
const (
	EQ Cond = iota
	NE
	LT
	LE
	GT
	GE
	condCount
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String implements fmt.Stringer.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Negate returns the logically opposite condition.
func (c Cond) Negate() Cond {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return c
}

// Holds reports whether the condition is satisfied for a CMP result d
// (the difference Rs1-Rs2, clamped into an int64).
func (c Cond) Holds(d int64) bool {
	switch c {
	case EQ:
		return d == 0
	case NE:
		return d != 0
	case LT:
		return d < 0
	case LE:
		return d <= 0
	case GT:
		return d > 0
	case GE:
		return d >= 0
	}
	return false
}

// Register indices. The machine has 16 general-purpose registers.
const (
	R0 = iota // argument/return 0
	R1
	R2
	R3
	R4
	R5 // arguments r0..r5
	R6 // caller-saved temporaries r6..r12
	R7
	R8
	R9
	R10
	R11
	R12
	FP // r13: frame pointer
	SP // r14: stack pointer
	RZ // r15: always reads zero; writes discarded

	NumRegs = 16
)

// Inst is a decoded instruction.
type Inst struct {
	Op   Op
	Rd   uint8
	Rs1  uint8
	Rs2  uint8
	Cond Cond  // only meaningful for JCC
	Imm  int64 // immediate / displacement / PC-relative offset
}

// IsCtrl reports whether the instruction can change the PC.
func (in Inst) IsCtrl() bool {
	switch in.Op {
	case JMP, JCC, CALL, CALLR, RET, JTBL, HALT:
		return true
	}
	return false
}

// IsCall reports whether the instruction is any call flavour.
func (in Inst) IsCall() bool { return in.Op == CALL || in.Op == CALLR }

// Terminates reports whether control never falls through to the next
// instruction (used by CFG reconstruction).
func (in Inst) Terminates() bool {
	switch in.Op {
	case JMP, RET, JTBL, HALT:
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (in Inst) String() string {
	switch in.Op {
	case NOP, HALT, RET, LEAVE:
		return in.Op.String()
	case MOVI, FPTR:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case MOV:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case ADDI, MULI, ANDI, ORI, XORI, SHLI, SHRI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case LD, LDB:
		return fmt.Sprintf("%s r%d, [r%d%+d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case ST, STB:
		return fmt.Sprintf("%s [r%d%+d], r%d", in.Op, in.Rs1, in.Imm, in.Rs2)
	case CMP:
		return fmt.Sprintf("cmp r%d, r%d", in.Rs1, in.Rs2)
	case CMPI:
		return fmt.Sprintf("cmpi r%d, %d", in.Rs1, in.Imm)
	case JMP, CALL:
		return fmt.Sprintf("%s %+d", in.Op, in.Imm)
	case JCC:
		return fmt.Sprintf("j%s %+d", in.Cond, in.Imm)
	case CALLR:
		return fmt.Sprintf("callr r%d", in.Rs1)
	case JTBL:
		return fmt.Sprintf("jtbl r%d, [%#x]", in.Rs1, uint64(in.Imm))
	case ENTER:
		return fmt.Sprintf("enter %d", in.Imm)
	case PUSH:
		return fmt.Sprintf("push r%d", in.Rs1)
	case POP:
		return fmt.Sprintf("pop r%d", in.Rd)
	case SYS:
		return fmt.Sprintf("sys %d", in.Imm)
	}
	return fmt.Sprintf("%s rd=%d rs1=%d rs2=%d imm=%d", in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm)
}

// Encode writes the instruction into dst, which must be at least InstBytes
// long. Layout: [op u8][rd u8][rs1 u8][rs2 u8][cond u8][pad 3][imm i64 LE].
func (in Inst) Encode(dst []byte) {
	_ = dst[InstBytes-1]
	dst[0] = byte(in.Op)
	dst[1] = in.Rd
	dst[2] = in.Rs1
	dst[3] = in.Rs2
	dst[4] = byte(in.Cond)
	dst[5], dst[6], dst[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(dst[8:], uint64(in.Imm))
}

// Decode reads an instruction from src, which must be at least InstBytes
// long. It returns an error for undefined opcodes, register indices, or
// conditions so that executing data or zeroed memory faults.
func Decode(src []byte) (Inst, error) {
	_ = src[InstBytes-1]
	in := Inst{
		Op:   Op(src[0]),
		Rd:   src[1],
		Rs1:  src[2],
		Rs2:  src[3],
		Cond: Cond(src[4]),
		Imm:  int64(binary.LittleEndian.Uint64(src[8:])),
	}
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d", src[0])
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return Inst{}, fmt.Errorf("isa: %s: register index out of range", in.Op)
	}
	if in.Op == JCC && in.Cond >= condCount {
		return Inst{}, fmt.Errorf("isa: jcc: invalid condition %d", src[4])
	}
	return in, nil
}

// EncodeAll encodes a sequence of instructions into a fresh byte slice.
func EncodeAll(insts []Inst) []byte {
	out := make([]byte, len(insts)*InstBytes)
	for i, in := range insts {
		in.Encode(out[i*InstBytes:])
	}
	return out
}

// DecodeAll decodes len(b)/InstBytes instructions.
func DecodeAll(b []byte) ([]Inst, error) {
	n := len(b) / InstBytes
	out := make([]Inst, 0, n)
	for i := 0; i < n; i++ {
		in, err := Decode(b[i*InstBytes:])
		if err != nil {
			return nil, fmt.Errorf("at offset %d: %w", i*InstBytes, err)
		}
		out = append(out, in)
	}
	return out, nil
}
