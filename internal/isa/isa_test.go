package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: NOP},
		{Op: HALT},
		{Op: MOVI, Rd: R3, Imm: -42},
		{Op: ADD, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: LD, Rd: R6, Rs1: SP, Imm: 8},
		{Op: ST, Rs1: FP, Rs2: R0, Imm: -16},
		{Op: JCC, Cond: GE, Imm: -320},
		{Op: CALL, Imm: 1 << 30},
		{Op: CALLR, Rs1: R7},
		{Op: JTBL, Rs1: R2, Imm: 0x10000000},
		{Op: FPTR, Rd: R4, Imm: 0x400000},
		{Op: ENTER, Imm: 64},
		{Op: LEAVE},
		{Op: SYS, Imm: 3},
		{Op: MOVI, Rd: R0, Imm: math.MaxInt64},
		{Op: MOVI, Rd: R0, Imm: math.MinInt64},
	}
	for _, want := range cases {
		var buf [InstBytes]byte
		want.Encode(buf[:])
		got, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("Decode(%v): %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %v, want %v", got, want)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	var zero [InstBytes]byte
	if _, err := Decode(zero[:]); err == nil {
		t.Error("Decode of zeroed memory should fail (opcode 0)")
	}
	bad := Inst{Op: ADD, Rd: R0, Rs1: R1, Rs2: R2}
	var buf [InstBytes]byte
	bad.Encode(buf[:])
	buf[0] = byte(opCount) // undefined opcode
	if _, err := Decode(buf[:]); err == nil {
		t.Error("Decode of undefined opcode should fail")
	}
	bad.Encode(buf[:])
	buf[2] = NumRegs // register out of range
	if _, err := Decode(buf[:]); err == nil {
		t.Error("Decode with register index 16 should fail")
	}
	jcc := Inst{Op: JCC, Imm: 16}
	jcc.Encode(buf[:])
	buf[4] = byte(condCount)
	if _, err := Decode(buf[:]); err == nil {
		t.Error("Decode of JCC with invalid condition should fail")
	}
}

// TestEncodeDecodeQuick property-tests the codec over random valid
// instructions: decode(encode(x)) == x.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, cond uint8, imm int64) bool {
		in := Inst{
			Op:  Op(op%uint8(opCount-1)) + 1, // valid non-BAD opcode
			Rd:  rd % NumRegs,
			Rs1: rs1 % NumRegs,
			Rs2: rs2 % NumRegs,
			Imm: imm,
		}
		if in.Op == JCC {
			in.Cond = Cond(cond % uint8(condCount))
		}
		var buf [InstBytes]byte
		in.Encode(buf[:])
		out, err := Decode(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConds(t *testing.T) {
	cases := []struct {
		c    Cond
		d    int64
		want bool
	}{
		{EQ, 0, true}, {EQ, 1, false},
		{NE, 0, false}, {NE, -1, true},
		{LT, -1, true}, {LT, 0, false},
		{LE, 0, true}, {LE, 1, false},
		{GT, 1, true}, {GT, 0, false},
		{GE, 0, true}, {GE, -1, false},
	}
	for _, c := range cases {
		if got := c.c.Holds(c.d); got != c.want {
			t.Errorf("%v.Holds(%d) = %v, want %v", c.c, c.d, got, c.want)
		}
	}
}

func TestClassifiers(t *testing.T) {
	if !(Inst{Op: CALL}).IsCall() || !(Inst{Op: CALLR}).IsCall() {
		t.Error("CALL/CALLR should be calls")
	}
	if (Inst{Op: JMP}).IsCall() {
		t.Error("JMP is not a call")
	}
	for _, op := range []Op{JMP, RET, JTBL, HALT} {
		if !(Inst{Op: op}).Terminates() {
			t.Errorf("%v should terminate a block", op)
		}
	}
	for _, op := range []Op{JCC, CALL, ADD, SYS} {
		if (Inst{Op: op}).Terminates() {
			t.Errorf("%v should fall through", op)
		}
	}
	for _, op := range []Op{JMP, JCC, CALL, CALLR, RET, JTBL, HALT} {
		if !(Inst{Op: op}).IsCtrl() {
			t.Errorf("%v should be control flow", op)
		}
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	prog := []Inst{
		{Op: ENTER, Imm: 32},
		{Op: MOVI, Rd: R0, Imm: 7},
		{Op: ADDI, Rd: R0, Rs1: R0, Imm: 1},
		{Op: LEAVE},
		{Op: RET},
	}
	b := EncodeAll(prog)
	if len(b) != len(prog)*InstBytes {
		t.Fatalf("EncodeAll length = %d, want %d", len(b), len(prog)*InstBytes)
	}
	out, err := DecodeAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(prog) {
		t.Fatalf("DecodeAll count = %d, want %d", len(out), len(prog))
	}
	for i := range prog {
		if out[i] != prog[i] {
			t.Errorf("inst %d: got %v, want %v", i, out[i], prog[i])
		}
	}
}

func TestStrings(t *testing.T) {
	// Smoke-test String() renders every opcode without panicking.
	for op := BAD + 1; op < opCount; op++ {
		in := Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Imm: 4}
		if in.String() == "" {
			t.Errorf("empty String for %v", op)
		}
	}
	if BAD.String() != "bad" || Op(200).String() == "" {
		t.Error("Op.String misbehaves on edge values")
	}
}

func TestNegate(t *testing.T) {
	pairs := [][2]Cond{{EQ, NE}, {LT, GE}, {LE, GT}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("Negate(%v) != %v", p[0], p[1])
		}
	}
	// Property: for every condition and every sign of difference, exactly
	// one of (c, !c) holds.
	for c := EQ; c < condCount; c++ {
		for _, d := range []int64{-5, 0, 7} {
			if c.Holds(d) == c.Negate().Holds(d) {
				t.Errorf("%v and its negation agree on %d", c, d)
			}
		}
	}
}
