package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter, one gauge, and one
// histogram from many goroutines; totals must be exact (run under
// -race in CI).
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("rounds_total")
			g := r.Gauge("inflight")
			h := r.Histogram("latency")
			for j := 0; j < perWorker; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(id))
			}
		}(i)
	}
	wg.Wait()

	if got := r.Counter("rounds_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := r.Histogram("latency").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %v, want %d", got, workers*perWorker)
	}
}

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-10) // ignored
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..100 observed in a scrambled order.
	for i := 0; i < 100; i++ {
		h.Observe(float64((i*37)%100 + 1))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Sum(); got != 5050 {
		t.Errorf("sum = %v, want 5050", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {0.5, 50}, {0.95, 95}, {1, 100},
	} {
		if got := h.Quantile(tc.p); got != tc.want {
			t.Errorf("q(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Out-of-range p clamps instead of panicking.
	if got := h.Quantile(2); got != 100 {
		t.Errorf("q(2) = %v, want 100", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram must read as zeros")
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_total"); got != "x_total" {
		t.Errorf("bare name mangled: %q", got)
	}
	got := Label("x_total", "service", "db", "stage", "replace")
	if got != "x_total{service=db,stage=replace}" {
		t.Errorf("labeled name = %q", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as a gauge should panic")
		}
	}()
	r.Gauge("m")
}

func TestNilRegistryIsASink(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	if pts := r.Snapshot(); pts != nil {
		t.Errorf("nil registry snapshot = %v, want nil", pts)
	}
}

func TestSnapshotAndReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(7)
	r.Histogram("c_hist").Observe(1)
	r.Histogram("c_hist").Observe(3)

	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("snapshot has %d points", len(pts))
	}
	// Sorted by name.
	if pts[0].Name != "a_gauge" || pts[1].Name != "b_total" || pts[2].Name != "c_hist" {
		t.Errorf("snapshot order: %v %v %v", pts[0].Name, pts[1].Name, pts[2].Name)
	}
	if pts[2].Count != 2 || pts[2].Mean != 2 || pts[2].Max != 3 {
		t.Errorf("histogram point: %+v", pts[2])
	}

	var b strings.Builder
	r.WriteReport(&b)
	out := b.String()
	for _, want := range []string{"a_gauge", "b_total", "c_hist", "count=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
