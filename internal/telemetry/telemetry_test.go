package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter, one gauge, and one
// histogram from many goroutines; totals must be exact (run under
// -race in CI).
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("rounds_total")
			g := r.Gauge("inflight")
			h := r.Histogram("latency")
			for j := 0; j < perWorker; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(id))
			}
		}(i)
	}
	wg.Wait()

	if got := r.Counter("rounds_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := r.Histogram("latency").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %v, want %d", got, workers*perWorker)
	}
}

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-10) // ignored
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..100 observed in a scrambled order.
	for i := 0; i < 100; i++ {
		h.Observe(float64((i*37)%100 + 1))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Sum(); got != 5050 {
		t.Errorf("sum = %v, want 5050", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	// Ceil nearest-rank: index ⌈p·(n-1)⌉ of the sorted samples.
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {0.5, 51}, {0.95, 96}, {1, 100},
	} {
		if got := h.Quantile(tc.p); got != tc.want {
			t.Errorf("q(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Out-of-range p clamps instead of panicking.
	if got := h.Quantile(2); got != 100 {
		t.Errorf("q(2) = %v, want 100", got)
	}
	if got := h.Quantile(-1); got != 1 {
		t.Errorf("q(-1) = %v, want 1", got)
	}
}

// TestQuantileCeilNearestRank pins the ceil semantics on small sample
// sets — the truncation bug returned 1 for the median of [1,2].
func TestQuantileCeilNearestRank(t *testing.T) {
	for _, tc := range []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{"median-of-two", []float64{1, 2}, 0.5, 2},
		{"median-of-two-reversed-insert", []float64{2, 1}, 0.5, 2},
		{"median-of-three", []float64{3, 1, 2}, 0.5, 2},
		{"median-of-four", []float64{4, 1, 3, 2}, 0.5, 3},
		{"p25-of-four", []float64{10, 20, 30, 40}, 0.25, 20},
		{"p75-of-four", []float64{10, 20, 30, 40}, 0.75, 40},
		{"p95-of-two", []float64{1, 2}, 0.95, 2},
		{"p0-of-two", []float64{1, 2}, 0, 1},
		{"single", []float64{7}, 0.5, 7},
		{"single-max", []float64{7}, 1, 7},
		{"exact-rank", []float64{1, 2, 3, 4, 5}, 0.5, 3},
	} {
		var h Histogram
		for _, v := range tc.samples {
			h.Observe(v)
		}
		if got := h.Quantile(tc.p); got != tc.want {
			t.Errorf("%s: q(%v) over %v = %v, want %v", tc.name, tc.p, tc.samples, got, tc.want)
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram must read as zeros")
	}
}

// TestSeriesRendering pins Point.Series, the one place series names are
// rendered with inlined labels now that the deprecated Label helper is
// gone. The format is load-bearing: the human-readable report keys on
// it.
func TestSeriesRendering(t *testing.T) {
	if got := (Point{Name: "x_total"}).Series(); got != "x_total" {
		t.Errorf("bare name mangled: %q", got)
	}
	p := Point{Name: "x_total", Labels: []LabelPair{
		{Key: "service", Value: "db"}, {Key: "stage", Value: "replace"},
	}}
	if got := p.Series(); got != "x_total{service=db,stage=replace}" {
		t.Errorf("labeled name = %q", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("stage_errors_total", "stage")
	v.With("profile").Inc()
	v.With("replace").Add(2)
	v.With("profile").Inc()

	if got := v.With("profile").Value(); got != 2 {
		t.Errorf("profile series = %v, want 2", got)
	}
	// Same name returns the same family; children are shared.
	if got := r.CounterVec("stage_errors_total", "stage").With("replace").Value(); got != 2 {
		t.Errorf("replace series = %v, want 2", got)
	}

	pts := r.Snapshot()
	if len(pts) != 2 {
		t.Fatalf("snapshot has %d points, want 2", len(pts))
	}
	// Children sorted by label value; Series() renders the flat name the
	// deprecated Label convention produced.
	if pts[0].Series() != "stage_errors_total{stage=profile}" ||
		pts[1].Series() != "stage_errors_total{stage=replace}" {
		t.Errorf("series = %q, %q", pts[0].Series(), pts[1].Series())
	}
	if pts[0].Labels[0] != (LabelPair{"stage", "profile"}) {
		t.Errorf("labels = %+v", pts[0].Labels)
	}
}

func TestGaugeAndHistogramVec(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("inflight", "service").With("db").Set(3)
	hv := r.HistogramVec("stage_seconds", "service", "stage")
	hv.With("db", "replace").Observe(1)
	hv.With("db", "replace").Observe(3)

	pts := r.Snapshot()
	if len(pts) != 2 {
		t.Fatalf("snapshot has %d points", len(pts))
	}
	if pts[0].Kind != KindGauge || pts[0].Value != 3 {
		t.Errorf("gauge point: %+v", pts[0])
	}
	h := pts[1]
	if h.Kind != KindHistogram || h.Count != 2 || h.Value != 4 || h.Max != 3 {
		t.Errorf("histogram point: %+v", h)
	}
	if h.Series() != "stage_seconds{service=db,stage=replace}" {
		t.Errorf("series = %q", h.Series())
	}
}

func TestVecMisuse(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("v_total", "a", "b")
	// Wrong arity.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong With arity should panic")
			}
		}()
		r.CounterVec("v_total", "a", "b").With("only-one")
	}()
	// Same name, different keys.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("key-set mismatch should panic")
			}
		}()
		r.CounterVec("v_total", "a")
	}()
	// Same name, different vector type.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type mismatch should panic")
			}
		}()
		r.GaugeVec("v_total", "a", "b")
	}()
}

func TestNilRegistryVecsAreSinks(t *testing.T) {
	var r *Registry
	r.CounterVec("a", "k").With("v").Inc()
	r.GaugeVec("b", "k").With("v").Set(1)
	r.HistogramVec("c", "k").With("v").Observe(1)
	if pts := r.Snapshot(); pts != nil {
		t.Errorf("nil registry snapshot = %v", pts)
	}
}

func TestConcurrentVecs(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stage := "even"
			if id%2 == 1 {
				stage = "odd"
			}
			for j := 0; j < perWorker; j++ {
				r.CounterVec("vec_total", "stage").With(stage).Inc()
				r.HistogramVec("vec_seconds", "stage").With(stage).Observe(1)
			}
		}(i)
	}
	wg.Wait()
	v := r.CounterVec("vec_total", "stage")
	if got := v.With("even").Value() + v.With("odd").Value(); got != workers*perWorker {
		t.Errorf("vec total = %v, want %d", got, workers*perWorker)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as a gauge should panic")
		}
	}()
	r.Gauge("m")
}

func TestNilRegistryIsASink(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	if pts := r.Snapshot(); pts != nil {
		t.Errorf("nil registry snapshot = %v, want nil", pts)
	}
}

func TestSnapshotAndReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(7)
	r.Histogram("c_hist").Observe(1)
	r.Histogram("c_hist").Observe(3)

	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("snapshot has %d points", len(pts))
	}
	// Sorted by name.
	if pts[0].Name != "a_gauge" || pts[1].Name != "b_total" || pts[2].Name != "c_hist" {
		t.Errorf("snapshot order: %v %v %v", pts[0].Name, pts[1].Name, pts[2].Name)
	}
	if pts[2].Count != 2 || pts[2].Mean != 2 || pts[2].Max != 3 {
		t.Errorf("histogram point: %+v", pts[2])
	}

	var b strings.Builder
	r.WriteReport(&b)
	out := b.String()
	for _, want := range []string{"a_gauge", "b_total", "c_hist", "count=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
