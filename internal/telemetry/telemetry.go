// Package telemetry is the metrics registry the orchestration layer
// publishes into: the data-center systems §V of the paper positions
// OCOLOS behind (Google-Wide Profiling, DMon) are driven by fleet-wide
// metrics pipelines, and a continuous optimizer that cannot report its
// rounds, pauses, speedups, and reverts cannot be operated. The registry
// is deliberately small — counters, gauges, and histograms keyed by a
// flat metric name — and safe for concurrent use by every controller and
// fleet worker in the process.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates the metric types a registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter; negative deltas are ignored so the counter
// stays monotonic.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can move in both directions.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge by delta (either sign).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram records a distribution of observations. All samples are
// retained (the fleet's cardinality is small — rounds, pauses, stage
// latencies), which makes quantiles exact rather than bucketed.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Quantile returns the p-th quantile (0 ≤ p ≤ 1) by nearest rank over
// the exact sample set (0 when empty).
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	tmp := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if len(tmp) == 0 {
		return 0
	}
	sort.Float64s(tmp)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	idx := int(p * float64(len(tmp)-1))
	return tmp[idx]
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid sink: every lookup returns a
// working metric that simply is not registered anywhere, so callers can
// publish unconditionally.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// Label renders a metric name with label pairs, e.g.
// Label("fleet_rounds_total", "service", "sqldb") →
// "fleet_rounds_total{service=sqldb}". Pairs are rendered in the order
// given; pass them consistently to hit the same series.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the metric under name, creating it with mk on first
// use. Reusing a name with a different type panics: that is a
// programming error, not an operational condition.
func lookup[T any](r *Registry, name string, mk func() *T) *T {
	if r == nil {
		return mk()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(*T)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q reused as a different type (have %T)", name, m))
		}
		return t
	}
	t := mk()
	r.metrics[name] = t
	r.order = append(r.order, name)
	return t
}

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns (creating if needed) the histogram with the given
// name.
func (r *Registry) Histogram(name string) *Histogram {
	return lookup(r, name, func() *Histogram { return &Histogram{} })
}

// Point is one metric's snapshot. Value carries the counter/gauge value;
// the distribution fields are populated for histograms only.
type Point struct {
	Name  string
	Kind  Kind
	Value float64 // counter/gauge value; histogram sum

	Count               int
	Mean, P50, P95, Max float64
}

// Snapshot returns every metric's current state, sorted by name.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()
	sort.Sort(&pointSorter{names, metrics})

	out := make([]Point, 0, len(names))
	for i, name := range names {
		switch m := metrics[i].(type) {
		case *Counter:
			out = append(out, Point{Name: name, Kind: KindCounter, Value: m.Value()})
		case *Gauge:
			out = append(out, Point{Name: name, Kind: KindGauge, Value: m.Value()})
		case *Histogram:
			out = append(out, Point{
				Name:  name,
				Kind:  KindHistogram,
				Value: m.Sum(),
				Count: m.Count(),
				Mean:  m.Mean(),
				P50:   m.Quantile(0.50),
				P95:   m.Quantile(0.95),
				Max:   m.Quantile(1),
			})
		}
	}
	return out
}

type pointSorter struct {
	names   []string
	metrics []any
}

func (s *pointSorter) Len() int           { return len(s.names) }
func (s *pointSorter) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *pointSorter) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.metrics[i], s.metrics[j] = s.metrics[j], s.metrics[i]
}

// WriteReport renders a human-readable dump of every metric, one line
// each, sorted by name — the format cmd/fleetd emits.
func (r *Registry) WriteReport(w io.Writer) {
	for _, p := range r.Snapshot() {
		switch p.Kind {
		case KindHistogram:
			fmt.Fprintf(w, "%-52s count=%-5d mean=%-12.6g p50=%-12.6g p95=%-12.6g max=%.6g\n",
				p.Name, p.Count, p.Mean, p.P50, p.P95, p.Max)
		default:
			fmt.Fprintf(w, "%-52s %.6g\n", p.Name, p.Value)
		}
	}
}
