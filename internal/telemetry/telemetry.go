// Package telemetry is the metrics registry the orchestration layer
// publishes into: the data-center systems §V of the paper positions
// OCOLOS behind (Google-Wide Profiling, DMon) are driven by fleet-wide
// metrics pipelines, and a continuous optimizer that cannot report its
// rounds, pauses, speedups, and reverts cannot be operated. The registry
// is deliberately small — counters, gauges, and histograms keyed by a
// flat metric name — and safe for concurrent use by every controller and
// fleet worker in the process.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates the metric types a registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter; negative deltas are ignored so the counter
// stays monotonic.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can move in both directions.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge by delta (either sign).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram records a distribution of observations. All samples are
// retained (the fleet's cardinality is small — rounds, pauses, stage
// latencies), which makes quantiles exact rather than bucketed.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Quantile returns the p-th quantile (0 ≤ p ≤ 1) by ceil nearest rank
// over the exact sample set (0 when empty): the sorted sample at index
// ⌈p·(n-1)⌉, i.e. the smallest retained observation at or above the
// requested rank. Truncating instead of ceiling here underreported every
// quantile that fell between ranks (p=0.5 over [1,2] came back 1).
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	tmp := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if len(tmp) == 0 {
		return 0
	}
	sort.Float64s(tmp)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	idx := int(math.Ceil(p * float64(len(tmp)-1)))
	if idx > len(tmp)-1 {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid sink: every lookup returns a
// working metric that simply is not registered anywhere, so callers can
// publish unconditionally.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// lookup returns the metric under name, creating it with mk on first
// use. Reusing a name with a different type panics: that is a
// programming error, not an operational condition.
func lookup[T any](r *Registry, name string, mk func() *T) *T {
	if r == nil {
		return mk()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(*T)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q reused as a different type (have %T)", name, m))
		}
		return t
	}
	t := mk()
	r.metrics[name] = t
	r.order = append(r.order, name)
	return t
}

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns (creating if needed) the histogram with the given
// name.
func (r *Registry) Histogram(name string) *Histogram {
	return lookup(r, name, func() *Histogram { return &Histogram{} })
}

// ---- structured metric vectors ----------------------------------------

// LabelPair is one label key/value on a metric series.
type LabelPair struct {
	Key, Value string
}

// vec is the shared machinery behind the typed vectors: one metric
// family (a base name plus a fixed, ordered label-key set) fanning out to
// child metrics per label-value tuple.
type vec[M any] struct {
	name string
	keys []string

	mu       sync.Mutex
	children map[string]*M
	values   map[string][]string
}

// childKey joins a value tuple into a map key. 0x1f (unit separator)
// cannot appear in sane label values and keeps distinct tuples distinct.
func childKey(values []string) string { return strings.Join(values, "\x1f") }

// with returns (creating if needed) the child metric for the given label
// values, which must match the vector's key count.
func (v *vec[M]) with(mk func() *M, values []string) *M {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("telemetry: metric %q has label keys %v; got %d value(s) %v",
			v.name, v.keys, len(values), values))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.children == nil {
		v.children = make(map[string]*M)
		v.values = make(map[string][]string)
	}
	k := childKey(values)
	if m, ok := v.children[k]; ok {
		return m
	}
	m := mk()
	v.children[k] = m
	v.values[k] = append([]string(nil), values...)
	return m
}

// series returns every child with its label pairs, sorted by value tuple
// so snapshots and exposition are stable.
func (v *vec[M]) series() []struct {
	labels []LabelPair
	m      *M
} {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		labels []LabelPair
		m      *M
	}, 0, len(keys))
	for _, k := range keys {
		vals := v.values[k]
		labels := make([]LabelPair, len(v.keys))
		for i, lk := range v.keys {
			labels[i] = LabelPair{Key: lk, Value: vals[i]}
		}
		out = append(out, struct {
			labels []LabelPair
			m      *M
		}{labels, v.children[k]})
	}
	v.mu.Unlock()
	return out
}

// CounterVec is a counter family keyed by a fixed set of labels.
type CounterVec struct{ v vec[Counter] }

// With returns the counter for the given label values (in key order).
func (c *CounterVec) With(values ...string) *Counter {
	return c.v.with(func() *Counter { return &Counter{} }, values)
}

// GaugeVec is a gauge family keyed by a fixed set of labels.
type GaugeVec struct{ v vec[Gauge] }

// With returns the gauge for the given label values (in key order).
func (g *GaugeVec) With(values ...string) *Gauge {
	return g.v.with(func() *Gauge { return &Gauge{} }, values)
}

// HistogramVec is a histogram family keyed by a fixed set of labels.
type HistogramVec struct{ v vec[Histogram] }

// With returns the histogram for the given label values (in key order).
func (h *HistogramVec) With(values ...string) *Histogram {
	return h.v.with(func() *Histogram { return &Histogram{} }, values)
}

// checkKeys panics when a vector name is reused with a different label
// schema — the vector analog of lookup's type check.
func checkKeys(name string, have, want []string) {
	if len(have) == len(want) {
		same := true
		for i := range have {
			if have[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	panic(fmt.Sprintf("telemetry: metric %q reused with label keys %v (have %v)", name, want, have))
}

// CounterVec returns (creating if needed) the counter vector with the
// given name and label keys. Label ordering is fixed at first use.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	v := lookup(r, name, func() *CounterVec { return &CounterVec{v: vec[Counter]{name: name, keys: keys}} })
	checkKeys(name, v.v.keys, keys)
	return v
}

// GaugeVec returns (creating if needed) the gauge vector with the given
// name and label keys.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	v := lookup(r, name, func() *GaugeVec { return &GaugeVec{v: vec[Gauge]{name: name, keys: keys}} })
	checkKeys(name, v.v.keys, keys)
	return v
}

// HistogramVec returns (creating if needed) the histogram vector with
// the given name and label keys.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	v := lookup(r, name, func() *HistogramVec { return &HistogramVec{v: vec[Histogram]{name: name, keys: keys}} })
	checkKeys(name, v.v.keys, keys)
	return v
}

// ---- snapshots ---------------------------------------------------------

// Point is one series' snapshot. Name is the base metric name; Labels
// carries the label pairs for vector children (nil for plain metrics).
// Value holds the counter/gauge value; the distribution fields are
// populated for histograms only.
type Point struct {
	Name   string
	Labels []LabelPair
	Kind   Kind
	Value  float64 // counter/gauge value; histogram sum

	Count               int
	Mean, P50, P95, Max float64
}

// Series renders the full series name with labels inlined, e.g.
// "fleet_rounds_total{service=sqldb,stage=replace}". Labels render in
// the vector's declared key order. (This rendering was once a
// standalone Label helper that call sites used to smash labels into
// flat metric names; the structured vectors replaced it and the
// rendering now exists only here, for report output.)
func (p Point) Series() string {
	if len(p.Labels) == 0 {
		return p.Name
	}
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteByte('{')
	for i, l := range p.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// point builds one Point from a scalar metric.
func point(name string, labels []LabelPair, m any) Point {
	switch m := m.(type) {
	case *Counter:
		return Point{Name: name, Labels: labels, Kind: KindCounter, Value: m.Value()}
	case *Gauge:
		return Point{Name: name, Labels: labels, Kind: KindGauge, Value: m.Value()}
	case *Histogram:
		return Point{
			Name:   name,
			Labels: labels,
			Kind:   KindHistogram,
			Value:  m.Sum(),
			Count:  m.Count(),
			Mean:   m.Mean(),
			P50:    m.Quantile(0.50),
			P95:    m.Quantile(0.95),
			Max:    m.Quantile(1),
		}
	}
	panic(fmt.Sprintf("telemetry: unknown metric type %T", m))
}

// Snapshot returns every series' current state, sorted by base name and
// then by label values — a stable order for reports, exposition, and
// golden tests. Vector families expand to one Point per child series.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()
	sort.Sort(&pointSorter{names, metrics})

	out := make([]Point, 0, len(names))
	for i, name := range names {
		switch m := metrics[i].(type) {
		case *CounterVec:
			for _, s := range m.v.series() {
				out = append(out, point(name, s.labels, s.m))
			}
		case *GaugeVec:
			for _, s := range m.v.series() {
				out = append(out, point(name, s.labels, s.m))
			}
		case *HistogramVec:
			for _, s := range m.v.series() {
				out = append(out, point(name, s.labels, s.m))
			}
		default:
			out = append(out, point(name, nil, m))
		}
	}
	return out
}

type pointSorter struct {
	names   []string
	metrics []any
}

func (s *pointSorter) Len() int           { return len(s.names) }
func (s *pointSorter) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *pointSorter) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.metrics[i], s.metrics[j] = s.metrics[j], s.metrics[i]
}

// WriteReport renders a human-readable dump of every series, one line
// each, sorted by name — the format cmd/fleetd emits.
func (r *Registry) WriteReport(w io.Writer) {
	for _, p := range r.Snapshot() {
		switch p.Kind {
		case KindHistogram:
			fmt.Fprintf(w, "%-52s count=%-5d mean=%-12.6g p50=%-12.6g p95=%-12.6g max=%.6g\n",
				p.Series(), p.Count, p.Mean, p.P50, p.P95, p.Max)
		default:
			fmt.Fprintf(w, "%-52s %.6g\n", p.Series(), p.Value)
		}
	}
}
