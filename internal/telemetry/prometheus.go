package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): a `# TYPE` line per metric family, then one
// sample line per series. Counters and gauges map directly; histograms —
// which retain exact samples — are exposed as summaries: per-series
// p50/p95 quantile gauges plus the standard `_sum` and `_count` samples.
// Output order matches Snapshot (base name, then label values), so a
// fixed registry produces byte-identical exposition — the golden test
// pins it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	points := r.Snapshot()
	var lastName string
	for _, p := range points {
		if p.Name != lastName {
			typ := "counter"
			switch p.Kind {
			case KindGauge:
				typ = "gauge"
			case KindHistogram:
				typ = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, typ); err != nil {
				return err
			}
			lastName = p.Name
		}
		var err error
		switch p.Kind {
		case KindHistogram:
			err = writeSummary(w, p)
		default:
			_, err = fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels, "", ""), promFloat(p.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeSummary emits one histogram series as quantile samples plus
// _sum/_count.
func writeSummary(w io.Writer, p Point) error {
	for _, q := range []struct {
		q string
		v float64
	}{{"0.5", p.P50}, {"0.95", p.P95}, {"1", p.Max}} {
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			p.Name, promLabels(p.Labels, "quantile", q.q), promFloat(q.v)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, promLabels(p.Labels, "", ""), promFloat(p.Value)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels, "", ""), p.Count)
	return err
}

// promLabels renders a label set (plus an optional extra pair, used for
// the summary quantile label) as `{k="v",...}`, or "" when empty.
func promLabels(labels []LabelPair, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(promEscape(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promFloat formats a sample value the way Prometheus clients do.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
