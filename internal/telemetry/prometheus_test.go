package telemetry

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition of a fixed
// registry: TYPE lines per family, label rendering, summary quantiles,
// _sum/_count, and the snapshot's stable ordering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("core_rounds_total").Add(3)
	r.Gauge("fleet_services").Set(5)
	h := r.Histogram("fleet_pause_seconds")
	h.Observe(0.25)
	h.Observe(0.75)
	v := r.CounterVec("fleet_stage_errors_total", "stage")
	v.With("Replacing").Add(2)
	v.With("Profiling").Inc()
	hv := r.HistogramVec("core_stage_seconds", "stage")
	hv.With("bolt").Observe(2)
	r.GaugeVec("fleet_state", "service").With(`q"u\o`).Set(1)

	want := strings.Join([]string{
		`# TYPE core_rounds_total counter`,
		`core_rounds_total 3`,
		`# TYPE core_stage_seconds summary`,
		`core_stage_seconds{stage="bolt",quantile="0.5"} 2`,
		`core_stage_seconds{stage="bolt",quantile="0.95"} 2`,
		`core_stage_seconds{stage="bolt",quantile="1"} 2`,
		`core_stage_seconds_sum{stage="bolt"} 2`,
		`core_stage_seconds_count{stage="bolt"} 1`,
		`# TYPE fleet_pause_seconds summary`,
		`fleet_pause_seconds{quantile="0.5"} 0.75`,
		`fleet_pause_seconds{quantile="0.95"} 0.75`,
		`fleet_pause_seconds{quantile="1"} 0.75`,
		`fleet_pause_seconds_sum 1`,
		`fleet_pause_seconds_count 2`,
		`# TYPE fleet_services gauge`,
		`fleet_services 5`,
		`# TYPE fleet_stage_errors_total counter`,
		`fleet_stage_errors_total{stage="Profiling"} 1`,
		`fleet_stage_errors_total{stage="Replacing"} 2`,
		`# TYPE fleet_state gauge`,
		`fleet_state{service="q\"u\\o"} 1`,
	}, "\n") + "\n"

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty registry exposition = %q", b.String())
	}
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry exposition err=%v out=%q", err, b.String())
	}
}
