package layout

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"repro/internal/bolt"
	"repro/internal/cpu"
	"repro/internal/obj"
	"repro/internal/perf"
)

// fpWriter accumulates length-prefixed fields into a sha256, so two
// different field sequences can never collide by concatenation.
type fpWriter struct {
	h       hash.Hash
	scratch [8]byte
}

func newFP() *fpWriter { return &fpWriter{h: sha256.New()} }

func (w *fpWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:], v)
	w.h.Write(w.scratch[:])
}

func (w *fpWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *fpWriter) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.h.Write(b)
}

func (w *fpWriter) bool(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

// sum renders the digest in its short printable form. 96 bits is far
// beyond what a fleet's worth of distinct images/profiles can collide.
func (w *fpWriter) sum() string {
	return hex.EncodeToString(w.h.Sum(nil)[:12])
}

// BinaryFingerprint content-addresses an obj image: every section's
// bytes plus the symbol metadata the optimizer reads (function table,
// block spans, v-tables, jump tables, entry, flags). Two binaries with
// equal fingerprints produce identical optimizer inputs, so a layout
// computed for one is byte-for-byte valid for the other — the
// "identical binaries across the fleet" premise of optimize-once.
func BinaryFingerprint(b *obj.Binary) string {
	w := newFP()
	w.u64(b.Entry)
	w.bool(b.Bolted)
	w.bool(b.NoJumpTables)
	secs := append([]*obj.Section(nil), b.Sections...)
	sort.Slice(secs, func(i, j int) bool {
		if secs[i].Name != secs[j].Name {
			return secs[i].Name < secs[j].Name
		}
		return secs[i].Addr < secs[j].Addr
	})
	for _, s := range secs {
		w.str(s.Name)
		w.u64(s.Addr)
		w.bytes(s.Data)
	}
	w.u64(uint64(len(b.Funcs)))
	for _, f := range b.Funcs { // sorted by Addr per obj contract
		w.str(f.Name)
		w.u64(f.Addr)
		w.u64(f.Size)
		w.u64(f.ColdAddr)
		w.u64(f.ColdSize)
		w.u64(uint64(len(f.Blocks)))
		for _, blk := range f.Blocks {
			w.u64(uint64(blk.Off))
			w.u64(uint64(blk.Size))
		}
	}
	w.u64(uint64(len(b.VTables)))
	for _, vt := range b.VTables {
		w.str(vt.Name)
		w.u64(vt.Addr)
		for _, slot := range vt.Slots {
			w.u64(slot)
		}
	}
	w.u64(uint64(len(b.JumpTables)))
	for _, jt := range b.JumpTables {
		w.str(jt.Name)
		w.u64(jt.Addr)
		for _, t := range jt.Targets {
			w.u64(t)
		}
	}
	return w.sum()
}

// Profile quantization constants: edges are normalized against the
// hottest edge and bucketed on a log2 scale, so counts within ~√2 of
// each other land in the same bucket; edges colder than the hottest by
// more than dropBelowBucket doublings are dropped from the summary
// entirely. Together these make the fingerprint a function of the
// profile's hot *shape*, not its sampling noise.
const dropBelowBucket = -8

// EdgeCounts aggregates a raw LBR profile into per-edge record counts
// plus the total record volume — the histogram both the fingerprint
// below and the drift detector's divergence score (internal/profile)
// are computed from, so the two always agree on what "the profile's
// edges" are.
func EdgeCounts(raw *perf.RawProfile) (counts map[cpu.BranchRecord]uint64, total uint64) {
	counts = make(map[cpu.BranchRecord]uint64)
	for _, s := range raw.Samples {
		for _, r := range s.Records {
			counts[r]++
			total++
		}
	}
	return counts, total
}

// ProfileFingerprint summarizes a raw LBR profile as a quantized,
// normalized hot-branch histogram and hashes it. Two profiles of the
// same code whose per-edge frequencies differ only by sampling jitter
// (different sample phases, slightly different window alignment)
// quantize to the same fingerprint and hit the same cache entry;
// profiles with genuinely different hot paths (another input mix,
// another phase of the workload) diverge.
func ProfileFingerprint(raw *perf.RawProfile) string {
	counts, total := EdgeCounts(raw)
	w := newFP()
	if total == 0 {
		w.u64(0)
		return w.sum()
	}
	var max uint64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	type edge struct {
		rec    cpu.BranchRecord
		bucket int64
	}
	edges := make([]edge, 0, len(counts))
	for rec, c := range counts {
		b := int64(math.Round(math.Log2(float64(c) / float64(max))))
		if b < dropBelowBucket {
			continue
		}
		edges = append(edges, edge{rec: rec, bucket: b})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].rec.From != edges[j].rec.From {
			return edges[i].rec.From < edges[j].rec.From
		}
		return edges[i].rec.To < edges[j].rec.To
	})
	// Order-of-magnitude of the total volume: the optimizer's absolute
	// hotness threshold (MinRecords) means a 10× thinner profile can
	// legitimately choose a different hot set even at identical shape.
	w.u64(uint64(math.Round(math.Log2(float64(total)))))
	w.u64(uint64(len(edges)))
	for _, e := range edges {
		w.u64(e.rec.From)
		w.u64(e.rec.To)
		w.u64(uint64(e.bucket))
	}
	return w.sum()
}

// OptionsFingerprint hashes every optimizer knob that changes the
// emitted layout or its link addresses, including the pin map. Two
// optimization requests with equal binary, profile, and options
// fingerprints are interchangeable.
func OptionsFingerprint(o bolt.Options) string {
	w := newFP()
	w.u64(o.TextBase)
	w.u64(o.ROBase)
	w.str(string(o.FuncOrder))
	w.u64(o.MinRecords)
	w.bool(o.NoReorderBlocks)
	w.bool(o.NoSplit)
	w.bool(o.NoPeephole)
	w.bool(o.AllowReBolt)
	names := make([]string, 0, len(o.PinBase))
	for n := range o.PinBase {
		names = append(names, n)
	}
	sort.Strings(names)
	w.u64(uint64(len(names)))
	for _, n := range names {
		w.str(n)
		w.u64(o.PinBase[n])
	}
	return w.sum()
}

// KeyFor derives the full content-addressed cache key for one
// optimization request.
func KeyFor(bin *obj.Binary, raw *perf.RawProfile, opts bolt.Options) Key {
	return Key{
		Binary:  BinaryFingerprint(bin),
		Profile: ProfileFingerprint(raw),
		Opts:    OptionsFingerprint(opts),
	}
}
