// Package layout is the fleet-wide, content-addressed cache of BOLT
// layout decisions — the "optimize once, deploy everywhere" piece of the
// data-center story (§V; the BOLT paper's deployment pitch). Identical
// binaries running statistically identical workloads should not each pay
// the profile→perf2bolt→BOLT pipeline: the first service to miss
// computes the layout, every other replica reuses it.
//
// Entries are keyed by content, not identity: a binary fingerprint over
// the obj image's code bytes and symbol tables, a *quantized* profile
// fingerprint over the normalized hot-branch histogram (so two replicas
// whose sample timing differs slightly still hit the same entry), and an
// options fingerprint over every optimizer knob that changes the output.
// Re-optimization needs no explicit invalidation: C_{i+1}'s input binary
// hashes to a new key, and superseded entries age out of the bounded
// cache FIFO-style.
//
// The Memory implementation is concurrency-safe with single-flight
// semantics: concurrent misses on one key run the compute function once
// while the other callers block and share the result (the coalesced
// outcome), so a 1,000-service homogeneous wave performs ~1 BOLT run per
// round instead of ~1,000.
package layout

import (
	"fmt"
	"sync"

	"repro/internal/bolt"
	"repro/internal/telemetry"
)

// Key content-addresses one layout decision. Two lookups collide exactly
// when reusing the layout is sound: same code image, equivalent hot-path
// profile, same optimizer configuration.
type Key struct {
	// Binary fingerprints the input obj image (code bytes, function
	// table, v-tables, jump tables); see BinaryFingerprint.
	Binary string
	// Profile fingerprints the quantized, normalized hot-branch summary
	// of the raw LBR profile; see ProfileFingerprint.
	Profile string
	// Opts fingerprints the optimizer options that affect the emitted
	// layout; see OptionsFingerprint.
	Opts string
}

// String renders the key in its journal/metrics form.
func (k Key) String() string {
	return fmt.Sprintf("bin:%s/prof:%s/opt:%s", k.Binary, k.Profile, k.Opts)
}

// Entry is one cached optimization result: the layout decisions plus the
// emitted binary embodying them. Entries are immutable once stored —
// consumers that inject the binary into a live process must work on
// Result.Binary.Clone(), never the cached image itself.
type Entry struct {
	Result *bolt.Result
}

// Outcome classifies one cache lookup.
type Outcome string

const (
	// Hit: the entry was already cached.
	Hit Outcome = "hit"
	// Miss: this caller computed (and stored) the entry.
	Miss Outcome = "miss"
	// Coalesced: another caller was already computing this key; this one
	// blocked and shares the result without running compute (the
	// single-flight path).
	Coalesced Outcome = "coalesced"
)

// Stats is a point-in-time counter snapshot of a cache.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// Requests is the total number of lookups the stats cover.
func (s Stats) Requests() uint64 { return s.Hits + s.Misses + s.Coalesced }

// HitRate is the fraction of lookups served without running the
// optimizer (hits + coalesced waiters), 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(s.Requests())
}

// Cache is the minimal surface consumers depend on. Real deployments use
// Memory; tests inject recording fakes (see core.Options.LayoutCache)
// without reaching into fleet internals.
type Cache interface {
	Get(k Key) (*Entry, bool)
	Put(k Key, e *Entry)
	Stats() Stats
}

// singleFlighter is the optional fast path a Cache may implement; Memory
// does. Do uses it when present so concurrent misses coalesce.
type singleFlighter interface {
	Do(k Key, compute func() (*Entry, error)) (*Entry, Outcome, error)
}

// Do looks k up in c, running compute on a miss and storing the result.
// If c implements single-flight (Memory does), concurrent misses on one
// key run compute exactly once; plain Get/Put fakes degrade to
// check-compute-store.
func Do(c Cache, k Key, compute func() (*Entry, error)) (*Entry, Outcome, error) {
	if sf, ok := c.(singleFlighter); ok {
		return sf.Do(k, compute)
	}
	if e, ok := c.Get(k); ok {
		return e, Hit, nil
	}
	e, err := compute()
	if err != nil {
		return nil, Miss, err
	}
	c.Put(k, e)
	return e, Miss, nil
}

// flight is one in-progress computation other callers can wait on.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Memory is the concurrency-safe in-memory Cache with single-flight
// semantics and bounded capacity (oldest entries evicted first). The
// zero value is not usable; call NewMemory.
type Memory struct {
	mu       sync.Mutex
	entries  map[Key]*Entry
	order    []Key // insertion order, for capacity eviction; order[head:] are live
	head     int   // first live slot in order; compacted when it passes half
	inflight map[Key]*flight
	cap      int
	stats    Stats

	requests *telemetry.CounterVec // outcome ∈ {hit, miss, coalesced}
	gauge    *telemetry.Gauge
}

// DefaultCap bounds a Memory cache when NewMemory is given cap 0. Keys
// are per (binary, profile, options) tuple, so even a many-workload,
// multi-round fleet stays far below this.
const DefaultCap = 1024

// NewMemory returns an empty cache holding at most cap entries (0 =
// DefaultCap). When reg is non-nil, every lookup outcome is published to
// the layout_cache_requests_total{outcome} vector and the entry count to
// the layout_cache_entries gauge.
func NewMemory(cap int, reg *telemetry.Registry) *Memory {
	if cap <= 0 {
		cap = DefaultCap
	}
	m := &Memory{
		entries:  make(map[Key]*Entry),
		inflight: make(map[Key]*flight),
		cap:      cap,
	}
	if reg != nil {
		m.requests = reg.CounterVec("layout_cache_requests_total", "outcome")
		// Touch every outcome so a scrape before the first wave still
		// exposes the full vector.
		for _, o := range []Outcome{Hit, Miss, Coalesced} {
			m.requests.With(string(o))
		}
		m.gauge = reg.Gauge("layout_cache_entries")
	}
	return m
}

// count publishes one lookup outcome. Callers must not hold m.mu: the
// registry has its own locks and the flusher may be draining into it.
func (m *Memory) count(o Outcome) {
	if m.requests != nil {
		m.requests.With(string(o)).Inc()
	}
}

// Get returns the cached entry for k, if present.
func (m *Memory) Get(k Key) (*Entry, bool) {
	m.mu.Lock()
	e, ok := m.entries[k]
	if ok {
		m.stats.Hits++
	} else {
		m.stats.Misses++
	}
	m.mu.Unlock()
	if ok {
		m.count(Hit)
		return e, true
	}
	m.count(Miss)
	return nil, false
}

// Put stores e under k, evicting the oldest entry when full. Storing
// counts toward neither hits nor misses.
func (m *Memory) Put(k Key, e *Entry) {
	m.mu.Lock()
	m.put(k, e)
	n := len(m.entries)
	m.mu.Unlock()
	if m.gauge != nil {
		m.gauge.Set(float64(n))
	}
}

// put stores under m.mu. Eviction advances head instead of re-slicing
// order (order = order[1:] would keep every evicted key pinned in the
// backing array for the cache's lifetime); evicted slots are zeroed so
// their key strings are released immediately, and the queue is compacted
// in place once the dead prefix passes half its length, bounding the
// backing array at ~2× cap under any churn pattern.
func (m *Memory) put(k Key, e *Entry) {
	if _, exists := m.entries[k]; !exists {
		for len(m.entries) >= m.cap && m.head < len(m.order) {
			victim := m.order[m.head]
			m.order[m.head] = Key{}
			m.head++
			if _, ok := m.entries[victim]; ok {
				delete(m.entries, victim)
				m.stats.Evictions++
			}
		}
		if m.head > len(m.order)/2 {
			n := copy(m.order, m.order[m.head:])
			tail := m.order[n:]
			for i := range tail {
				tail[i] = Key{}
			}
			m.order = m.order[:n]
			m.head = 0
		}
		m.order = append(m.order, k)
	}
	m.entries[k] = e
}

// Do implements single-flight lookup: a hit returns immediately, the
// first miss on a key runs compute and stores the result, and concurrent
// misses on the same key block until that computation finishes, sharing
// its result (or its error) without recomputing.
func (m *Memory) Do(k Key, compute func() (*Entry, error)) (*Entry, Outcome, error) {
	m.mu.Lock()
	if e, ok := m.entries[k]; ok {
		m.stats.Hits++
		m.mu.Unlock()
		m.count(Hit)
		return e, Hit, nil
	}
	if f, ok := m.inflight[k]; ok {
		m.stats.Coalesced++
		m.mu.Unlock()
		m.count(Coalesced)
		<-f.done
		return f.entry, Coalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	m.inflight[k] = f
	m.stats.Misses++
	m.mu.Unlock()
	m.count(Miss)

	e, err := compute()
	f.entry, f.err = e, err

	m.mu.Lock()
	delete(m.inflight, k)
	if err == nil {
		m.put(k, e)
	}
	n := len(m.entries)
	m.mu.Unlock()
	close(f.done)
	if m.gauge != nil {
		m.gauge.Set(float64(n))
	}
	return e, Miss, err
}

// Stats snapshots the cache counters.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Entries = len(m.entries)
	return s
}
