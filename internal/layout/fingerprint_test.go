package layout

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bolt"
	"repro/internal/cpu"
	"repro/internal/perf"
	"repro/internal/progtest"
)

// profileOf builds a raw profile with the given per-edge branch counts.
func profileOf(edges map[cpu.BranchRecord]uint64) *perf.RawProfile {
	raw := &perf.RawProfile{Seconds: 0.001}
	for rec, n := range edges {
		recs := make([]cpu.BranchRecord, n)
		for i := range recs {
			recs[i] = rec
		}
		raw.Samples = append(raw.Samples, perf.Sample{Records: recs})
	}
	return raw
}

var (
	edgeA = cpu.BranchRecord{From: 0x100, To: 0x200}
	edgeB = cpu.BranchRecord{From: 0x300, To: 0x400}
	edgeC = cpu.BranchRecord{From: 0x500, To: 0x600}
)

// TestProfileFingerprintQuantization is the cache's reuse premise:
// profiles that differ only by sampling jitter fingerprint identically,
// profiles with genuinely different hot paths do not.
func TestProfileFingerprintQuantization(t *testing.T) {
	base := ProfileFingerprint(profileOf(map[cpu.BranchRecord]uint64{
		edgeA: 1000, edgeB: 500, edgeC: 100,
	}))

	// ±5% per-edge jitter: every edge stays in its log2 bucket.
	perturbed := ProfileFingerprint(profileOf(map[cpu.BranchRecord]uint64{
		edgeA: 1040, edgeB: 480, edgeC: 104,
	}))
	if perturbed != base {
		t.Errorf("perturbed profile fingerprint diverged: %s vs %s", perturbed, base)
	}

	// An edge ~2^10 colder than the hottest is below the drop threshold
	// and must not change the summary.
	withNoise := ProfileFingerprint(profileOf(map[cpu.BranchRecord]uint64{
		edgeA: 1000, edgeB: 500, edgeC: 100,
		{From: 0x700, To: 0x800}: 1,
	}))
	if withNoise != base {
		t.Errorf("sub-threshold edge changed the fingerprint: %s vs %s", withNoise, base)
	}

	// Swapped hot set: same edges, different shape — must miss.
	divergent := ProfileFingerprint(profileOf(map[cpu.BranchRecord]uint64{
		edgeA: 100, edgeB: 500, edgeC: 1000,
	}))
	if divergent == base {
		t.Error("divergent hot shape collided with the base fingerprint")
	}

	// 16× thinner profile at identical shape: the total-volume term must
	// separate it (MinRecords is an absolute threshold).
	thin := ProfileFingerprint(profileOf(map[cpu.BranchRecord]uint64{
		edgeA: 62, edgeB: 31, edgeC: 6,
	}))
	if thin == base {
		t.Error("an order-of-magnitude thinner profile collided with the base")
	}

	if empty := ProfileFingerprint(&perf.RawProfile{}); empty == base {
		t.Error("empty profile collided with the base")
	}
}

// TestBinaryFingerprintContentAddressed: identical images (built twice
// from the same seed) share a fingerprint; a different program does not.
func TestBinaryFingerprintContentAddressed(t *testing.T) {
	gen := func(seed int64) string {
		prog, _, err := progtest.Generate(progtest.Options{Funcs: 8, MainIters: 100, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		bin, err := asm.Assemble(prog, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return BinaryFingerprint(bin)
	}
	if gen(7) != gen(7) {
		t.Error("same program built twice fingerprinted differently")
	}
	if gen(7) == gen(8) {
		t.Error("different programs collided")
	}
}

// TestOptionsFingerprint: layout-affecting knobs separate keys; map
// iteration order of the pin table does not.
func TestOptionsFingerprint(t *testing.T) {
	base := bolt.Options{TextBase: 0x2000_0000, MinRecords: 8,
		PinBase: map[string]uint64{"a": 1, "b": 2, "c": 3}}
	same := bolt.Options{TextBase: 0x2000_0000, MinRecords: 8,
		PinBase: map[string]uint64{"c": 3, "b": 2, "a": 1}}
	if OptionsFingerprint(base) != OptionsFingerprint(same) {
		t.Error("equal options fingerprinted differently")
	}
	diff := base
	diff.MinRecords = 16
	if OptionsFingerprint(base) == OptionsFingerprint(diff) {
		t.Error("MinRecords change did not separate the keys")
	}
	diff = base
	diff.TextBase = 0x3000_0000
	if OptionsFingerprint(base) == OptionsFingerprint(diff) {
		t.Error("TextBase change did not separate the keys")
	}
}
