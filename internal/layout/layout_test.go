package layout

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bolt"
	"repro/internal/telemetry"
)

func key(i int) Key {
	return Key{Binary: fmt.Sprintf("bin%d", i), Profile: "prof", Opts: "opt"}
}

// TestSingleFlightCoalesces is the cache's core concurrency contract,
// meant for -race: many concurrent misses on one key run the compute
// function exactly once; everyone shares the one entry.
func TestSingleFlightCoalesces(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMemory(0, reg)
	k := key(1)
	want := &Entry{Result: &bolt.Result{FuncsReordered: 7}}

	const callers = 16
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*Entry, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := m.Do(k, func() (*Entry, error) {
				computes.Add(1)
				<-release // hold the flight open until all callers launched
				return want, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = e
		}(i)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	for i, e := range results {
		if e != want {
			t.Errorf("caller %d got entry %+v, want the shared one", i, e)
		}
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != callers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hit/coalesced", st, callers-1)
	}
	if st.Requests() != callers {
		t.Errorf("requests = %d, want %d", st.Requests(), callers)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	// A later lookup is a plain hit and the hit rate reflects the wave.
	if e, _, err := m.Do(k, func() (*Entry, error) {
		t.Error("compute ran on a cached key")
		return nil, nil
	}); err != nil || e != want {
		t.Fatalf("Do on cached key = %v, %v", e, err)
	}
	if hr := m.Stats().HitRate(); hr < float64(callers-1)/float64(callers) {
		t.Errorf("hit rate = %v, want ≥ %v", hr, float64(callers-1)/float64(callers))
	}
}

// TestSingleFlightErrorNotCached: a failed compute propagates its error
// to every coalesced waiter and leaves nothing in the cache.
func TestSingleFlightErrorNotCached(t *testing.T) {
	m := NewMemory(0, nil)
	boom := errors.New("boom")
	if _, _, err := m.Do(key(1), func() (*Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := m.Stats(); st.Entries != 0 {
		t.Fatalf("failed compute was cached: %+v", st)
	}
	// The key is retryable: the next Do is a fresh miss.
	e, out, err := m.Do(key(1), func() (*Entry, error) { return &Entry{}, nil })
	if err != nil || e == nil || out != Miss {
		t.Fatalf("retry after error = %v, %v, %v", e, out, err)
	}
}

// TestMemoryEviction: the cache is bounded and evicts oldest-first.
func TestMemoryEviction(t *testing.T) {
	m := NewMemory(2, nil)
	for i := 1; i <= 3; i++ {
		m.Put(key(i), &Entry{})
	}
	if _, ok := m.Get(key(1)); ok {
		t.Error("oldest entry survived past capacity")
	}
	for i := 2; i <= 3; i++ {
		if _, ok := m.Get(key(i)); !ok {
			t.Errorf("entry %d evicted prematurely", i)
		}
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction and 2 entries", st)
	}
}

// TestMemoryEvictionChurn: sustained churn far past capacity keeps the
// eviction queue bounded (the dead prefix is compacted, not re-sliced,
// so evicted keys are not pinned in the backing array) while FIFO
// semantics stay correct throughout.
func TestMemoryEvictionChurn(t *testing.T) {
	const capEntries = 8
	const rounds = 10_000
	m := NewMemory(capEntries, nil)
	for i := 1; i <= rounds; i++ {
		m.Put(key(i), &Entry{})
		if got := len(m.entries); got > capEntries {
			t.Fatalf("round %d: %d entries, cap %d", i, got, capEntries)
		}
		// The live window is always the most recent capEntries keys.
		if _, ok := m.Get(key(i)); !ok {
			t.Fatalf("round %d: just-inserted key missing", i)
		}
		if i > capEntries {
			if _, ok := m.Get(key(i - capEntries)); ok {
				t.Fatalf("round %d: key %d should have been evicted", i, i-capEntries)
			}
		}
	}
	// Bounded queue: compaction keeps order near cap (≤ 2×cap+1 by the
	// half-dead compaction rule), instead of growing with total churn.
	m.mu.Lock()
	qlen, qcap, head := len(m.order), cap(m.order), m.head
	m.mu.Unlock()
	if qlen-head != capEntries {
		t.Errorf("live queue window = %d, want %d", qlen-head, capEntries)
	}
	if qcap > 4*capEntries {
		t.Errorf("order backing array grew to %d after %d churns (cap %d); evicted keys are being pinned", qcap, rounds, capEntries)
	}
	st := m.Stats()
	if want := uint64(rounds - capEntries); st.Evictions != want {
		t.Errorf("evictions = %d, want %d", st.Evictions, want)
	}
	// Re-inserting a live key must not duplicate it in the queue or
	// evict anything.
	before := st.Evictions
	m.Put(key(rounds), &Entry{})
	if got := m.Stats().Evictions; got != before {
		t.Errorf("re-insert of live key evicted %d entries", got-before)
	}
}

// plainCache is the injectable fake shape: Get/Put/Stats only, no
// single-flight. Do must degrade to check-compute-store against it.
type plainCache struct {
	mu      sync.Mutex
	entries map[Key]*Entry
	puts    int
}

func (p *plainCache) Get(k Key) (*Entry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[k]
	return e, ok
}

func (p *plainCache) Put(k Key, e *Entry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.entries == nil {
		p.entries = make(map[Key]*Entry)
	}
	p.entries[k] = e
	p.puts++
}

func (p *plainCache) Stats() Stats { return Stats{} }

func TestDoDegradesToGetPut(t *testing.T) {
	p := &plainCache{}
	e1, out, err := Do(p, key(1), func() (*Entry, error) { return &Entry{}, nil })
	if err != nil || out != Miss || e1 == nil {
		t.Fatalf("first Do = %v, %v, %v", e1, out, err)
	}
	e2, out, err := Do(p, key(1), func() (*Entry, error) {
		t.Error("compute ran on cached key")
		return nil, nil
	})
	if err != nil || out != Hit || e2 != e1 {
		t.Fatalf("second Do = %v, %v, %v", e2, out, err)
	}
	if p.puts != 1 {
		t.Errorf("puts = %d, want 1", p.puts)
	}
}

// TestMemoryTelemetry: lookup outcomes land in the registry vector.
func TestMemoryTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMemory(0, reg)
	m.Do(key(1), func() (*Entry, error) { return &Entry{}, nil })
	m.Do(key(1), func() (*Entry, error) { return nil, errors.New("unreachable") })
	v := reg.CounterVec("layout_cache_requests_total", "outcome")
	if got := v.With(string(Miss)).Value(); got != 1 {
		t.Errorf("miss counter = %v, want 1", got)
	}
	if got := v.With(string(Hit)).Value(); got != 1 {
		t.Errorf("hit counter = %v, want 1", got)
	}
	if got := v.With(string(Coalesced)).Value(); got != 0 {
		t.Errorf("coalesced counter = %v, want 0", got)
	}
}
