package perf

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// magic identifies serialized profiles on disk (the perf.data analog).
const magic = "OCOLOSPERF1\n"

// Encode serializes the raw profile to w.
func (r *RawProfile) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(r); err != nil {
		return fmt.Errorf("perf: encode: %w", err)
	}
	return zw.Close()
}

// DecodeProfile reads a profile written by Encode.
func DecodeProfile(r io.Reader) (*RawProfile, error) {
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("perf: reading header: %w", err)
	}
	if !bytes.Equal(hdr, []byte(magic)) {
		return nil, fmt.Errorf("perf: bad magic %q", hdr)
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	var raw RawProfile
	if err := gob.NewDecoder(zr).Decode(&raw); err != nil {
		return nil, fmt.Errorf("perf: decode: %w", err)
	}
	return &raw, nil
}

// WriteFile saves the profile to path.
func (r *RawProfile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a profile from path.
func ReadFile(path string) (*RawProfile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeProfile(f)
}
