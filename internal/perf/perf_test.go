package perf

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/proc"
)

// loopProcess runs a branchy endless loop.
func loopProcess(t *testing.T) *proc.Process {
	t.Helper()
	p := build.NewProgram("loop")
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		m.AndI(isa.R2, isa.R1, 7)
		m.CmpI(isa.R2, 3)
		m.If(isa.EQ, func() { m.AddI(isa.R3, isa.R3, 1) }, nil)
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestRecordCollectsSamples(t *testing.T) {
	pr := loopProcess(t)
	raw := Record(pr, 0.001, RecorderOptions{PeriodCycles: 10_000})
	if len(raw.Samples) == 0 || raw.Branches() == 0 {
		t.Fatal("no samples")
	}
	if raw.Seconds <= 0 {
		t.Error("duration not recorded")
	}
	// Each sample holds at most the LBR depth.
	for _, s := range raw.Samples {
		if len(s.Records) == 0 || len(s.Records) > 32 {
			t.Fatalf("sample with %d records", len(s.Records))
		}
	}
	// Records point into the text section.
	for _, r := range raw.Samples[0].Records {
		if r.From < 0x400000 || r.From > 0x500000 {
			t.Fatalf("branch record outside text: %#x", r.From)
		}
	}
}

func TestRecorderDetachesCleanly(t *testing.T) {
	pr := loopProcess(t)
	rec := Attach(pr, RecorderOptions{})
	pr.RunFor(0.0005)
	raw := rec.Stop()
	if len(raw.Samples) == 0 {
		t.Fatal("no samples before stop")
	}
	// After Stop, LBR recording is off and the hook removed.
	for _, th := range pr.Threads {
		if th.Core.LBREnabled {
			t.Error("LBR still enabled after Stop")
		}
	}
	if pr.SampleHook != nil {
		t.Error("sample hook still installed after Stop")
	}
}

func TestNestedHooksCompose(t *testing.T) {
	pr := loopProcess(t)
	outerCalls := 0
	pr.SampleHook = func(*proc.Thread) { outerCalls++ }
	rec := Attach(pr, RecorderOptions{})
	pr.RunFor(0.0003)
	rec.Stop()
	if outerCalls == 0 {
		t.Error("pre-existing sample hook was not chained")
	}
	if pr.SampleHook == nil {
		t.Error("original hook not restored")
	}
}

func TestOverheadScalesWithPeriod(t *testing.T) {
	run := func(period float64) float64 {
		pr := loopProcess(t)
		pr.RunFor(0.0005)
		before := pr.Stats()
		Record(pr, 0.001, RecorderOptions{PeriodCycles: period})
		d := pr.Stats().Sub(before)
		return d.IPC()
	}
	fast := run(5_000)   // heavy sampling
	slow := run(100_000) // light sampling
	if fast >= slow {
		t.Errorf("heavier sampling should cost IPC: %f vs %f", fast, slow)
	}
}

func TestMeasureTopDown(t *testing.T) {
	pr := loopProcess(t)
	pr.RunFor(0.0005)
	st := MeasureTopDown(pr, 0.0005)
	if st.Instructions == 0 {
		t.Fatal("no instructions measured")
	}
	td := st.TopDown()
	sum := td.Retiring + td.FrontEnd + td.BadSpec + td.BackEnd
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("TopDown sums to %f", sum)
	}
}

func TestProfileSerialization(t *testing.T) {
	pr := loopProcess(t)
	raw := Record(pr, 0.0005, RecorderOptions{})
	var buf bytes.Buffer
	if err := raw.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Branches() != raw.Branches() || len(got.Samples) != len(raw.Samples) {
		t.Error("round trip lost samples")
	}
	if _, err := DecodeProfile(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
}

var _ = cpu.BranchRecord{}

func TestProfileFileRoundTrip(t *testing.T) {
	pr := loopProcess(t)
	raw := Record(pr, 0.0003, RecorderOptions{})
	path := t.TempDir() + "/p.perf"
	if err := raw.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Branches() != raw.Branches() {
		t.Error("file round trip lost records")
	}
	if _, err := ReadFile(t.TempDir() + "/missing.perf"); err == nil {
		t.Error("missing file accepted")
	}
}
