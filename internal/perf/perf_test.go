package perf

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/proc"
)

// loopProcess runs a branchy endless loop.
func loopProcess(t *testing.T) *proc.Process {
	t.Helper()
	p := build.NewProgram("loop")
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		m.AndI(isa.R2, isa.R1, 7)
		m.CmpI(isa.R2, 3)
		m.If(isa.EQ, func() { m.AddI(isa.R3, isa.R3, 1) }, nil)
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestRecordCollectsSamples(t *testing.T) {
	pr := loopProcess(t)
	raw := Record(pr, 0.001, RecorderOptions{PeriodCycles: 10_000})
	if len(raw.Samples) == 0 || raw.Branches() == 0 {
		t.Fatal("no samples")
	}
	if raw.Seconds <= 0 {
		t.Error("duration not recorded")
	}
	// Each sample holds at most the LBR depth.
	for _, s := range raw.Samples {
		if len(s.Records) == 0 || len(s.Records) > 32 {
			t.Fatalf("sample with %d records", len(s.Records))
		}
	}
	// Records point into the text section.
	for _, r := range raw.Samples[0].Records {
		if r.From < 0x400000 || r.From > 0x500000 {
			t.Fatalf("branch record outside text: %#x", r.From)
		}
	}
}

func TestRecorderDetachesCleanly(t *testing.T) {
	pr := loopProcess(t)
	rec := Attach(pr, RecorderOptions{})
	pr.RunFor(0.0005)
	raw := rec.Stop()
	if len(raw.Samples) == 0 {
		t.Fatal("no samples before stop")
	}
	// After Stop, LBR recording is off and the hook removed.
	for _, th := range pr.Threads {
		if th.Core.LBREnabled {
			t.Error("LBR still enabled after Stop")
		}
	}
	if pr.SampleHook != nil {
		t.Error("sample hook still installed after Stop")
	}
}

func TestNestedHooksCompose(t *testing.T) {
	pr := loopProcess(t)
	outerCalls := 0
	pr.SampleHook = func(*proc.Thread) { outerCalls++ }
	rec := Attach(pr, RecorderOptions{})
	pr.RunFor(0.0003)
	rec.Stop()
	if outerCalls == 0 {
		t.Error("pre-existing sample hook was not chained")
	}
	if pr.SampleHook == nil {
		t.Error("original hook not restored")
	}
}

func TestNoDuplicateRecordsAcrossSamples(t *testing.T) {
	// A loop with a long straight-line body retires far fewer than 32
	// branches per short period, so the LBR ring never wraps between PMIs:
	// if the recorder read the ring without draining it, consecutive
	// samples would repeat the same records and the profile would hold
	// more branch records than branches the program retired.
	p := build.NewProgram("slowloop")
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		for i := 0; i < 200; i++ {
			m.AddI(isa.R2, isa.R2, 1)
		}
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := pr.Stats()
	rec := Attach(pr, RecorderOptions{PeriodCycles: 1_000})
	pr.RunFor(0.0005)
	raw := rec.Stop()
	taken := pr.Stats().Sub(before).TakenBranches
	if len(raw.Samples) < 2 {
		t.Fatalf("want back-to-back samples, got %d", len(raw.Samples))
	}
	if uint64(raw.Branches()) > taken {
		t.Errorf("profile holds %d records but only %d branches retired (ring not drained?)",
			raw.Branches(), taken)
	}
}

func TestAttachChainStop(t *testing.T) {
	// attach → chain another hook → stop: the recorder must remove only
	// its own registration, not clobber the hook chained after it.
	pr := loopProcess(t)
	fieldCalls, lateCalls := 0, 0
	pr.SampleHook = func(*proc.Thread) { fieldCalls++ }
	rec := Attach(pr, RecorderOptions{})
	removeLate := pr.AddSampleHook(func(*proc.Thread) { lateCalls++ })
	pr.RunFor(0.0003)
	rec.Stop()
	if fieldCalls == 0 || lateCalls == 0 {
		t.Fatalf("hooks not called before stop: field=%d late=%d", fieldCalls, lateCalls)
	}
	f0, l0 := fieldCalls, lateCalls
	pr.RunFor(0.0001)
	if fieldCalls == f0 {
		t.Error("field hook clobbered by recorder Stop")
	}
	if lateCalls == l0 {
		t.Error("hook chained after attach clobbered by recorder Stop")
	}
	removeLate()
}

func TestThreadStartedAfterAttach(t *testing.T) {
	pr := loopProcess(t)
	rec := Attach(pr, RecorderOptions{PeriodCycles: 5_000})
	pr.RunFor(0.0002)
	// A thread created mid-session must be armed lazily, not panic on a
	// slice sized at Attach time.
	pr.StartThread(pr.Bin.Entry)
	pr.RunFor(0.0003)
	raw := rec.Stop()
	if len(raw.Samples) == 0 {
		t.Fatal("no samples")
	}
	for _, th := range pr.Threads {
		if th.Core.LBREnabled {
			t.Error("LBR still enabled after Stop")
		}
	}
}

func TestOverheadScalesWithPeriod(t *testing.T) {
	run := func(period float64) float64 {
		pr := loopProcess(t)
		pr.RunFor(0.0005)
		before := pr.Stats()
		Record(pr, 0.001, RecorderOptions{PeriodCycles: period})
		d := pr.Stats().Sub(before)
		return d.IPC()
	}
	fast := run(5_000)   // heavy sampling
	slow := run(100_000) // light sampling
	if fast >= slow {
		t.Errorf("heavier sampling should cost IPC: %f vs %f", fast, slow)
	}
}

func TestMeasureTopDown(t *testing.T) {
	pr := loopProcess(t)
	pr.RunFor(0.0005)
	st := MeasureTopDown(pr, 0.0005)
	if st.Instructions == 0 {
		t.Fatal("no instructions measured")
	}
	td := st.TopDown()
	sum := td.Retiring + td.FrontEnd + td.BadSpec + td.BackEnd
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("TopDown sums to %f", sum)
	}
}

func TestProfileSerialization(t *testing.T) {
	pr := loopProcess(t)
	raw := Record(pr, 0.0005, RecorderOptions{})
	var buf bytes.Buffer
	if err := raw.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Branches() != raw.Branches() || len(got.Samples) != len(raw.Samples) {
		t.Error("round trip lost samples")
	}
	if _, err := DecodeProfile(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
}

var _ = cpu.BranchRecord{}

func TestProfileFileRoundTrip(t *testing.T) {
	pr := loopProcess(t)
	raw := Record(pr, 0.0003, RecorderOptions{})
	path := t.TempDir() + "/p.perf"
	if err := raw.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Branches() != raw.Branches() {
		t.Error("file round trip lost records")
	}
	if _, err := ReadFile(t.TempDir() + "/missing.perf"); err == nil {
		t.Error("missing file accepted")
	}
}
