package perf

import (
	"testing"
)

func TestStreamerForwardsTimestampedSamples(t *testing.T) {
	pr := loopProcess(t)
	var n int
	var stamps []float64
	st := Stream(pr, RecorderOptions{PeriodCycles: 10_000}, func(s Sample, at float64) {
		if len(s.Records) == 0 {
			t.Error("empty sample forwarded")
		}
		n++
		stamps = append(stamps, at)
	})
	pr.RunFor(0.001)
	if n == 0 {
		t.Fatal("no samples streamed")
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatalf("timestamps regressed: %v then %v", stamps[i-1], stamps[i])
		}
	}
	if last := stamps[len(stamps)-1]; last <= 0 || last > 0.0011 {
		t.Errorf("stamp %v outside the run window", last)
	}
	st.Stop()
	before := n
	pr.RunFor(0.0005)
	if n != before {
		t.Error("samples still arriving after Stop")
	}
	for _, th := range pr.Threads {
		if th.Core.LBREnabled {
			t.Error("LBR still enabled after Stop")
		}
	}
}

// A one-shot Recorder pull (the fleet's window-empty fallback) attaches
// and stops while a streamer is live; its Stop disables LBR capture, and
// the streamer must re-assert it instead of going silently deaf.
func TestStreamerSurvivesOneShotRecorder(t *testing.T) {
	pr := loopProcess(t)
	var n int
	Stream(pr, RecorderOptions{PeriodCycles: 10_000}, func(s Sample, at float64) { n++ })
	pr.RunFor(0.0005)
	if n == 0 {
		t.Fatal("no samples before the one-shot pull")
	}
	Record(pr, 0.0005, RecorderOptions{PeriodCycles: 10_000}) // attaches, runs, stops
	before := n
	pr.RunFor(0.0005)
	if n <= before {
		t.Fatalf("streamer dead after a one-shot Recorder detached (%d samples, had %d)", n, before)
	}
}

// Streaming overhead is charged to the target like Recorder's: the same
// run takes more cycles with a streamer attached.
func TestStreamerChargesOverhead(t *testing.T) {
	plain := loopProcess(t)
	plain.RunFor(0.001)
	base := plain.Threads[0].Core.Cycles()

	streamed := loopProcess(t)
	Stream(streamed, RecorderOptions{PeriodCycles: 10_000, OverheadCycles: 2_000}, func(Sample, float64) {})
	streamed.RunFor(0.001)
	taxed := streamed.Threads[0].Core.Cycles()
	// 2k overhead per 10k-cycle period is a 20% tax; both runs last the
	// same simulated time, so the taxed run retires through fewer useful
	// cycles — Cycles() counts total, which stays equal. Instead compare
	// progress: the loop counter register advanced less under tax.
	if taxed <= 0 || base <= 0 {
		t.Fatal("no cycles")
	}
	if plainR1, taxedR1 := plain.Threads[0].Regs[1], streamed.Threads[0].Regs[1]; taxedR1 >= plainR1 {
		t.Errorf("sampling tax not charged: taxed progress %d >= plain %d", taxedR1, plainR1)
	}
}
