package perf

import (
	"repro/internal/cpu"
	"repro/internal/proc"
)

// Streamer is the continuous, GWP-style counterpart of Recorder: it
// stays attached for the life of the service and forwards every drained
// LBR snapshot to a sink (the fleet's per-service profile.Store) with
// its simulated timestamp, instead of accumulating a one-shot
// RawProfile. Sampling overhead is charged to the target exactly like
// Recorder's — always-on profiling is a real tax (§VI's Figure 7 dip,
// paid continuously at a lower rate), and charging it keeps drift and
// no-drift measurement arms honest.
//
// Deadlines flow through the same RecorderOptions.NextDeadline seam, so
// an active replay session journals streamed sample timing the same way
// it journals one-shot profiling windows.
type Streamer struct {
	p        *proc.Process
	opts     RecorderOptions
	deadline func(tid int, cycles float64) float64
	next     map[int]float64
	sink     func(s Sample, at float64)
	remove   func()
}

// Stream attaches a continuous sampler to the process, forwarding each
// snapshot to sink with the process's simulated time of capture. Stop
// detaches it.
func Stream(p *proc.Process, opts RecorderOptions, sink func(s Sample, at float64)) *Streamer {
	opts.defaults()
	st := &Streamer{
		p:        p,
		opts:     opts,
		deadline: opts.DeadlineFunc(),
		next:     make(map[int]float64),
		sink:     sink,
	}
	for _, t := range p.Threads {
		st.arm(t)
	}
	st.remove = p.AddSampleHook(st.onQuantum)
	return st
}

func (st *Streamer) arm(t *proc.Thread) {
	t.Core.LBREnabled = true
	st.next[t.ID] = st.deadline(t.ID, t.Core.Cycles())
}

func (st *Streamer) onQuantum(t *proc.Thread) {
	c := t.Core
	deadline, armed := st.next[t.ID]
	if !armed {
		st.arm(t)
		return
	}
	// Re-assert capture: a one-shot Recorder that attached and stopped
	// meanwhile (the window-empty fallback pull) disables LBR on its way
	// out; a live streamer must keep the ring filling.
	c.LBREnabled = true
	if c.Cycles() < deadline {
		return
	}
	// Drain, not read: see Recorder.onQuantum.
	recs := c.LBRDrain()
	if len(recs) > 0 {
		st.sink(Sample{Records: recs}, st.p.Seconds())
	}
	c.AddStall(st.opts.OverheadCycles, cpu.BucketBackEnd)
	st.next[t.ID] = st.deadline(t.ID, c.Cycles())
}

// Stop detaches the streamer. LBR capture stays enabled only if another
// sampler re-enables it; the hook removal leaves chained hooks intact,
// matching Recorder.Stop.
func (st *Streamer) Stop() {
	for _, t := range st.p.Threads {
		t.Core.LBREnabled = false
	}
	st.remove()
}
