// Package perf is the profiling substrate: the Linux-perf analog that
// samples the simulated cores' LBR rings while a process runs (§II-A, §V
// "Profiling") and measures TopDown cycle breakdowns (§VI-C4).
//
// A Recorder attaches to a running process like `perf record -b -p PID`:
// it enables LBR capture on every core and, on a configurable cycle
// period, snapshots the 32-entry ring. Each snapshot costs the target some
// cycles (the PMI plus perf's own CPU use), which is why profiling shows
// up as a throughput dip in the paper's Figure 7 region 2.
package perf

import (
	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/trace"
)

// Sample is one LBR snapshot: up to 32 consecutive taken branches.
type Sample struct {
	Records []cpu.BranchRecord
}

// RawProfile is what a recording session produces: the perf.data analog.
type RawProfile struct {
	Samples []Sample
	// Seconds is the simulated duration of the recording.
	Seconds float64
}

// Branches returns the total number of branch records across samples.
func (r *RawProfile) Branches() int {
	n := 0
	for _, s := range r.Samples {
		n += len(s.Records)
	}
	return n
}

// TraceAttrs summarizes the recording as span attributes: the profile
// span on every optimization round carries the sample and branch counts
// so a thin profile (the Figure 7 "not enough samples yet" failure mode)
// is visible in the trace, not just in the final speedup.
func (r *RawProfile) TraceAttrs() []trace.Attr {
	return []trace.Attr{
		trace.Int("samples", len(r.Samples)),
		trace.Int("branches", r.Branches()),
		trace.Float("profile_seconds", r.Seconds),
	}
}

// RecorderOptions tunes the sampling session.
type RecorderOptions struct {
	// PeriodCycles is the sampling period per core (default 50k cycles
	// ≈ 42k samples per second per core at 2.1 GHz).
	PeriodCycles float64
	// OverheadCycles is charged to the sampled core per PMI, modeling the
	// interrupt, ring copy, and perf's share of the machine.
	OverheadCycles float64
	// NextDeadline, when set, overrides the periodic sampling policy: it
	// returns the cycle count at which thread tid's next LBR snapshot
	// fires, given the core's current cycle count. The record/replay
	// layer injects a journaling source here so sample timing — the
	// profile's nondeterminism — replays bit-identically.
	NextDeadline func(tid int, cycles float64) float64
}

func (o *RecorderOptions) defaults() {
	if o.PeriodCycles == 0 {
		o.PeriodCycles = 50_000
	}
	if o.OverheadCycles == 0 {
		o.OverheadCycles = 4_000
	}
}

// DeadlineFunc returns the effective sampling-deadline source:
// NextDeadline when set, else the periodic default.
func (o RecorderOptions) DeadlineFunc() func(tid int, cycles float64) float64 {
	if o.NextDeadline != nil {
		return o.NextDeadline
	}
	o.defaults()
	period := o.PeriodCycles
	return func(_ int, cycles float64) float64 { return cycles + period }
}

// Recorder is an attached LBR sampling session. Re-arm deadlines are kept
// per thread ID in a map so threads started after Attach are picked up and
// armed lazily at their first quantum instead of panicking on a
// fixed-size slice.
type Recorder struct {
	p        *proc.Process
	opts     RecorderOptions
	deadline func(tid int, cycles float64) float64
	next     map[int]float64
	start    float64
	raw      *RawProfile
	remove   func()
}

// Attach starts LBR recording on a (possibly already running) process,
// like `perf record` attaching to a live PID. The recorder registers
// through proc.AddSampleHook, so hooks installed before or after it
// survive Stop untouched.
func Attach(p *proc.Process, opts RecorderOptions) *Recorder {
	opts.defaults()
	r := &Recorder{
		p:        p,
		opts:     opts,
		deadline: opts.DeadlineFunc(),
		next:     make(map[int]float64),
		start:    p.Seconds(),
		raw:      &RawProfile{},
	}
	for _, t := range p.Threads {
		r.arm(t)
	}
	r.remove = p.AddSampleHook(r.onQuantum)
	return r
}

func (r *Recorder) arm(t *proc.Thread) {
	t.Core.LBREnabled = true
	r.next[t.ID] = r.deadline(t.ID, t.Core.Cycles())
}

func (r *Recorder) onQuantum(t *proc.Thread) {
	c := t.Core
	deadline, armed := r.next[t.ID]
	if !armed {
		// A thread started after Attach: begin sampling it from here.
		r.arm(t)
		return
	}
	if c.Cycles() < deadline {
		return
	}
	// Drain, not just read: when fewer branches retire per period than the
	// ring holds, a plain snapshot would hand back the same records sample
	// after sample, inflating the profile's edge weights.
	recs := c.LBRDrain()
	if len(recs) > 0 {
		r.raw.Samples = append(r.raw.Samples, Sample{Records: recs})
	}
	c.AddStall(r.opts.OverheadCycles, cpu.BucketBackEnd)
	// Re-arm after charging the PMI cost so the overhead itself cannot
	// immediately trigger the next sample.
	r.next[t.ID] = r.deadline(t.ID, c.Cycles())
}

// Stop ends the session and returns the collected profile. Only the
// recorder's own hook registration is removed; any hooks chained around
// it stay installed.
func (r *Recorder) Stop() *RawProfile {
	for _, t := range r.p.Threads {
		t.Core.LBREnabled = false
	}
	r.remove()
	r.raw.Seconds = r.p.Seconds() - r.start
	return r.raw
}

// Record profiles the process for the given simulated duration and
// returns the raw profile — the one-shot `perf record -- sleep N` shape.
func Record(p *proc.Process, seconds float64, opts RecorderOptions) *RawProfile {
	r := Attach(p, opts)
	p.RunFor(seconds)
	return r.Stop()
}

// MeasureTopDown runs the process for the given duration and returns the
// interval's counter deltas — the first-stage bottleneck analysis OCOLOS
// performs before deciding to optimize (§V, DMon-style).
func MeasureTopDown(p *proc.Process, seconds float64) cpu.Stats {
	before := p.Stats()
	p.RunFor(seconds)
	return p.Stats().Sub(before)
}
