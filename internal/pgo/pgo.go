// Package pgo models the compiler's built-in profile-guided optimization
// pass — the "Clang PGO" baseline of Figure 5.
//
// The paper observes (§VI-B, §VI-C) that compiler PGO with an oracle
// profile still trails BOLT, "likely due to problems mapping low-level PCs
// back to source code and LLVM IR" [36]. We model exactly that mechanism:
// the machine-level profile is degraded by a deterministic mapping loss
// before being fed to the same layout machinery BOLT uses — a fraction of
// functions lose their block-level detail (their PCs could not be mapped
// back to IR), a further fraction lose their profile entirely — and
// hot/cold splitting is disabled (compilers split far less aggressively
// than a post-link optimizer).
package pgo

import (
	"hash/fnv"

	"repro/internal/bolt"
	"repro/internal/obj"
)

// Options tunes the modeled mapping loss.
type Options struct {
	// DropDetailPct is the percentage of functions whose block/edge detail
	// fails to map back to IR (they are still placed by function order).
	DropDetailPct int
	// DropFuncPct is the percentage of functions whose profile is lost
	// entirely (they stay in original order).
	DropFuncPct int
	// TextBase is the layout base for reordered functions.
	TextBase uint64
}

func (o *Options) defaults() {
	if o.DropDetailPct == 0 {
		o.DropDetailPct = 35
	}
	if o.DropFuncPct == 0 {
		o.DropFuncPct = 15
	}
}

// Optimize produces a PGO-compiled binary from the original binary and a
// machine-level profile.
func Optimize(bin *obj.Binary, prof *bolt.Profile, opts Options) (*obj.Binary, error) {
	opts.defaults()
	degraded := degrade(prof, bin, opts)
	res, err := bolt.Optimize(bin, degraded, bolt.Options{
		TextBase:  opts.TextBase,
		FuncOrder: bolt.OrderC3,
		NoSplit:   true,
	})
	if err != nil {
		return nil, err
	}
	out := res.Binary
	out.Name = bin.Name + ".pgo"
	// The result is an ordinary compiled binary, not a post-link-optimized
	// one: BOLT would happily process it.
	out.Bolted = false
	return out, nil
}

// nameRoll hashes a function name into [0,100) to decide its mapping fate
// deterministically.
func nameRoll(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % 100)
}

// degrade applies the mapping loss: deterministic per function name so
// runs are reproducible.
func degrade(prof *bolt.Profile, bin *obj.Binary, opts Options) *bolt.Profile {
	out := &bolt.Profile{
		Funcs:         make(map[uint64]*bolt.FuncProfile, len(prof.Funcs)),
		TotalBranches: prof.TotalBranches,
	}
	for entry, fp := range prof.Funcs {
		fn := bin.FuncAt(entry)
		name := ""
		if fn != nil {
			name = fn.Name
		}
		roll := nameRoll(name)
		switch {
		case roll < opts.DropFuncPct:
			// Entire profile unmapped: function stays where it was.
			continue
		case roll < opts.DropFuncPct+opts.DropDetailPct:
			// Block detail unmapped: keep call graph + heat only, so the
			// function is moved but its blocks keep source order.
			nf := &bolt.FuncProfile{
				Entry:      entry,
				BlockCount: map[int]uint64{0: fp.Weight()},
				Edge:       map[[2]int]uint64{},
				Calls:      fp.Calls,
				Records:    fp.Records,
			}
			out.Funcs[entry] = nf
		default:
			out.Funcs[entry] = fp
		}
	}
	return out
}
