package pgo

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bolt"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/progtest"
)

func setup(t *testing.T, seed int64) (*obj.Binary, uint64, *bolt.Profile) {
	t.Helper()
	prog, outAddr, err := progtest.Generate(progtest.Options{Funcs: 12, MainIters: 5000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := perf.Record(pr, 0.002, perf.RecorderOptions{PeriodCycles: 4000})
	prof, err := bolt.ConvertProfile(raw, bin)
	if err != nil {
		t.Fatal(err)
	}
	return bin, outAddr, prof
}

func run(t *testing.T, bin *obj.Binary, outAddr uint64) uint64 {
	t.Helper()
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if err := pr.Fault(); err != nil {
		t.Fatalf("%s: %v", bin.Name, err)
	}
	return pr.Mem.ReadWord(outAddr)
}

func TestPGOPreservesSemantics(t *testing.T) {
	bin, outAddr, prof := setup(t, 3)
	want := run(t, bin, outAddr)
	out, err := Optimize(bin, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := run(t, out, outAddr); got != want {
		t.Errorf("pgo output %d != original %d", got, want)
	}
	if out.Bolted {
		t.Error("PGO output should not be marked bolted")
	}
	if out.Section(obj.SecColdText) != nil {
		t.Error("compiler PGO should not hot/cold split")
	}
}

func TestPGODegradationIsLossy(t *testing.T) {
	bin, _, prof := setup(t, 4)
	opts := Options{DropDetailPct: 35, DropFuncPct: 15}
	deg := degrade(prof, bin, opts)

	// Every profiled function's fate must match its deterministic roll.
	for entry, orig := range prof.Funcs {
		fn := bin.FuncAt(entry)
		name := ""
		if fn != nil {
			name = fn.Name
		}
		roll := nameRoll(name)
		got, kept := deg.Funcs[entry]
		switch {
		case roll < opts.DropFuncPct:
			if kept {
				t.Errorf("%s (roll %d): profile should be dropped entirely", name, roll)
			}
		case roll < opts.DropFuncPct+opts.DropDetailPct:
			if !kept {
				t.Errorf("%s (roll %d): function weight should survive", name, roll)
			} else if len(got.Edge) != 0 {
				t.Errorf("%s (roll %d): block detail should be lost", name, roll)
			}
		default:
			if !kept || len(got.Edge) != len(orig.Edge) {
				t.Errorf("%s (roll %d): profile should be intact", name, roll)
			}
		}
	}

	// Determinism.
	deg2 := degrade(prof, bin, opts)
	if len(deg2.Funcs) != len(deg.Funcs) {
		t.Error("degradation is not deterministic")
	}
}

func TestPGOOutputAcceptedByBOLT(t *testing.T) {
	// A compiler-PGO binary is an ordinary binary; BOLT must accept it.
	bin, outAddr, prof := setup(t, 5)
	want := run(t, bin, outAddr)
	pgoBin, err := Optimize(bin, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(pgoBin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := perf.Record(pr, 0.002, perf.RecorderOptions{PeriodCycles: 4000})
	prof2, err := bolt.ConvertProfile(raw, pgoBin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bolt.Optimize(pgoBin, prof2, bolt.Options{TextBase: 0x3000_0000})
	if err != nil {
		t.Fatal(err)
	}
	if got := run(t, res.Binary, outAddr); got != want {
		t.Errorf("bolt(pgo) output %d != original %d", got, want)
	}
}
