package debug

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/proc"
)

func nested(t *testing.T) (*proc.Process, *obj.Binary) {
	t.Helper()
	p := build.NewProgram("bt")
	inner := p.Func("inner")
	inner.Prologue(16)
	spin := inner.Label("spin")
	inner.CmpI(isa.RZ, 1)
	inner.If(isa.NE, func() { inner.Goto(spin) }, nil)
	inner.EpilogueRet()
	outer := p.Func("outer")
	outer.Prologue(16)
	outer.Call("inner")
	outer.EpilogueRet()
	m := p.Func("main")
	m.Prologue(16)
	m.Call("outer")
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(5000) // park in inner's spin
	return pr, bin
}

func TestBacktraceSymbolizes(t *testing.T) {
	pr, bin := nested(t)
	bt, err := Backtrace(pr, 0, bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt) != 3 {
		t.Fatalf("got %d frames: %v", len(bt), bt)
	}
	for i, want := range []string{"inner", "outer", "main"} {
		if !strings.Contains(bt[i], want) {
			t.Errorf("frame %d = %q, want to contain %q", i, bt[i], want)
		}
	}
	// The process resumes after the backtrace (we were not paused before).
	if pr.Paused() {
		t.Error("Backtrace left the process paused")
	}
}

func TestSymbolizeFallbacks(t *testing.T) {
	_, bin := nested(t)
	if s := Symbolize(0xDEAD0000, bin); s != "0xdead0000" {
		t.Errorf("unknown address symbolized as %q", s)
	}
	bin.OrgRanges = []obj.OrgRange{{Lo: 0x700000, Hi: 0x700100, Name: "moved", Entry: 0x700000}}
	if s := Symbolize(0x700010, bin); !strings.Contains(s, "moved") || !strings.Contains(s, "old home") {
		t.Errorf("org range symbolized as %q", s)
	}
	if s := Symbolize(0x400000); s != "0x400000" {
		t.Errorf("no-binaries symbolization = %q", s)
	}
}

func TestFaultReport(t *testing.T) {
	p := build.NewProgram("crash")
	f := p.Func("boom")
	f.Prologue(16)
	f.MovI(isa.R1, 0)
	f.Div(isa.R0, isa.R0, isa.R1) // divide by zero
	f.EpilogueRet()
	m := p.Func("main")
	m.Prologue(16)
	m.Call("boom")
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proc.Load(bin, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr.RunUntilHalt(0)
	if pr.Fault() == nil {
		t.Fatal("expected a fault")
	}
	report := FaultReport(pr, bin)
	for _, want := range []string{"divide by zero", "boom", "thread 0"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}
