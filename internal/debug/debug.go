// Package debug provides post-mortem tooling for the simulated machine:
// symbolized backtraces and fault reports. It resolves addresses against
// any number of binaries (the original C0 binary plus the optimized
// versions OCOLOS injected), which is exactly what debugging a process
// under online code replacement requires.
package debug

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/obj"
	"repro/internal/proc"
	"repro/internal/ptrace"
	"repro/internal/unwind"
)

// Symbolize resolves addr against the given binaries, returning
// "name+0xoff [binary]" or a raw hex address when unknown.
func Symbolize(addr uint64, bins ...*obj.Binary) string {
	for _, b := range bins {
		if b == nil {
			continue
		}
		if f, off, cold := b.Lookup(addr); f != nil {
			suffix := ""
			if cold {
				suffix = ".cold"
			}
			return fmt.Sprintf("%s%s+%#x [%s]", f.Name, suffix, off, b.Name)
		}
		if r, ok := b.OrgLookup(addr); ok {
			return fmt.Sprintf("%s+%#x [%s, old home]", r.Name, addr-r.Lo, b.Name)
		}
	}
	return fmt.Sprintf("%#x", addr)
}

// Backtrace returns the symbolized stack of one thread of a stopped
// process, innermost frame first.
func Backtrace(p *proc.Process, tid int, bins ...*obj.Binary) ([]string, error) {
	wasPaused := p.Paused()
	tr := ptrace.Attach(p)
	defer func() {
		if !wasPaused {
			tr.Detach()
		}
	}()
	frames, err := unwind.Stack(tr, tid)
	if err != nil && !errors.Is(err, unwind.ErrTruncated) && !errors.Is(err, unwind.ErrCorrupt) {
		return nil, err
	}
	out := make([]string, 0, len(frames)+1)
	for i, fr := range frames {
		out = append(out, fmt.Sprintf("#%d %s", i, Symbolize(fr.PC, bins...)))
	}
	if err != nil {
		// A truncated or corrupt chain still yields the frames up to the
		// problem — for a post-mortem view that partial stack is the
		// interesting part, so annotate rather than fail.
		out = append(out, fmt.Sprintf("#%d <%v>", len(frames), err))
	}
	return out, nil
}

// FaultReport formats a human-readable report of a faulted (or merely
// stopped) process: the fault error, each thread's registers summary and
// symbolized backtrace.
func FaultReport(p *proc.Process, bins ...*obj.Binary) string {
	var sb strings.Builder
	if err := p.Fault(); err != nil {
		fmt.Fprintf(&sb, "fault: %v\n", err)
	} else {
		sb.WriteString("no fault recorded\n")
	}
	for tid, th := range p.Threads {
		fmt.Fprintf(&sb, "thread %d: PC=%s halted=%v\n",
			tid, Symbolize(th.PC, bins...), th.Halted)
		bt, err := Backtrace(p, tid, bins...)
		if err != nil {
			fmt.Fprintf(&sb, "  <unwind failed: %v>\n", err)
			continue
		}
		for _, line := range bt {
			fmt.Fprintf(&sb, "  %s\n", line)
		}
	}
	return sb.String()
}
