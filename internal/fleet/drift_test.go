package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/perf"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads/kvcache"
)

// driftConfig is the micro-simulation fleet config the drift tests run
// at: one worker, streaming ingestion on, and a hysteresis policy scaled
// to the millisecond windows (the same shape the phase experiment uses).
func driftConfig(reg *telemetry.Registry, sess *replay.Session) Config {
	return Config{
		Workers:  1,
		SkipGate: true, // the small cache sits below the TopDown gate
		Timing:   TimingConfig{ProfileDur: 0.0012, Warm: 0.0004, Window: 0.0006},
		Drift: DriftConfig{
			Enabled: true,
			Policy:  profile.ReoptPolicy{MinDivergence: 0.35, MinDwell: 0.0005, Cooldown: 0.001},
			Stream:  perf.RecorderOptions{PeriodCycles: 8_000, OverheadCycles: 400},
		},
		Metrics: reg,
		Replay:  sess,
	}
}

// addTenantService adds a warmed multi-tenant cache serving "hot0".
func addTenantService(t *testing.T, m *Manager, name string, tenants int) *Service {
	t.Helper()
	w, err := kvcache.Build(kvcache.MultiTenant(tenants))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.AddService(ServicePlan{
		Name: name, Workload: w, Input: "hot0", Threads: 2,
		Core: core.Options{NoChargePause: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.0004)
	return s
}

// turnPhase swaps the service's hot tenant and serves the new phase long
// enough for the continuous sampler to see it and the dwell to pass.
func turnPhase(t *testing.T, s *Service, hot, tenants int) {
	t.Helper()
	gen, err := kvcache.TenantGenerator(fmt.Sprintf("hot%d", hot), tenants)
	if err != nil {
		t.Fatal(err)
	}
	s.Driver.SetGenerator(gen)
	s.Proc.RunFor(0.004)
}

// TestDriftReoptimizationEndToEnd is the tentpole's happy path: a
// service optimized for one hot tenant has its traffic swap to another;
// the drift scan scores the live streamed window against the layout's
// build baseline, fires, and the re-optimization wave sends the Steady
// service back around the lifecycle to a new layout.
func TestDriftReoptimizationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full drift wave in -short mode")
	}
	const tenants = 3
	m, err := NewManager(driftConfig(telemetry.NewRegistry(), nil))
	if err != nil {
		t.Fatal(err)
	}
	s := addTenantService(t, m, "mt-kv", tenants)

	// A drift scan before the service is Steady has nothing to judge.
	if pre := m.Scan(ScanOptions{Drift: true}); len(pre) != 0 {
		t.Fatalf("drift scan of an Idle service returned %d results", len(pre))
	}

	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s.State(); st != Steady {
		t.Fatalf("initial wave ended %s (err: %v)", st, s.Err())
	}
	v0 := s.Ctl.Version()
	if v0 < 1 {
		t.Fatalf("initial wave did not advance the layout (version %d)", v0)
	}
	if s.Reopts() != 0 {
		t.Fatalf("fresh service already counts %d reopts", s.Reopts())
	}

	turnPhase(t, s, 1, tenants)
	scan := m.Scan(ScanOptions{Drift: true})
	if len(scan) != 1 {
		t.Fatalf("drift scan returned %d results, want 1", len(scan))
	}
	r := scan[0]
	if !r.Drift || !r.Optimize || r.DriftReason != profile.ReasonDrift {
		t.Fatalf("phase turn did not trigger: %+v", r)
	}
	if r.DriftScore < m.Config().Drift.Policy.MinDivergence {
		t.Fatalf("trigger score %.3f below the threshold", r.DriftScore)
	}

	m.Optimize(scan, WaveOptions{})
	if st := s.State(); st != Steady {
		t.Fatalf("re-optimization wave ended %s (err: %v)", st, s.Err())
	}
	if s.Reopts() != 1 {
		t.Errorf("Reopts = %d, want 1", s.Reopts())
	}
	if v := s.Ctl.Version(); v <= v0 {
		t.Errorf("re-optimization did not advance the layout: version %d (was %d)", v, v0)
	}
	if st := s.Status(); st.Reopts != 1 {
		t.Errorf("status reports %d reopts, want 1", st.Reopts)
	}

	// Immediately after the wave the detector must not fire again: the
	// baseline was rebased to the new layout's own live window and the
	// cooldown clock just started.
	if again := m.Scan(ScanOptions{Drift: true}); len(again) == 1 && again[0].Optimize {
		t.Errorf("detector re-fired immediately after re-optimizing: %+v", again[0])
	}
}

// TestDriftScanStationaryNoTrigger is the fleet-level half of the
// hysteresis guarantee: a Steady service whose traffic mix does not
// change keeps sampling run after run without ever being selected.
func TestDriftScanStationaryNoTrigger(t *testing.T) {
	if testing.Short() {
		t.Skip("full drift wave in -short mode")
	}
	const tenants = 3
	m, err := NewManager(driftConfig(telemetry.NewRegistry(), nil))
	if err != nil {
		t.Fatal(err)
	}
	s := addTenantService(t, m, "mt-kv", tenants)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s.State(); st != Steady {
		t.Fatalf("initial wave ended %s (err: %v)", st, s.Err())
	}
	v0 := s.Ctl.Version()

	for i := 0; i < 3; i++ {
		s.Proc.RunFor(0.004) // same mix, fresh samples, dwell long past
		scan := m.Scan(ScanOptions{Drift: true})
		if len(scan) != 1 {
			t.Fatalf("pass %d: drift scan returned %d results", i, len(scan))
		}
		r := scan[0]
		if r.Optimize {
			t.Fatalf("pass %d: stationary service selected (score %.3f, %s)",
				i, r.DriftScore, r.DriftReason)
		}
		if r.DriftReason != profile.ReasonFingerprint && r.DriftReason != profile.ReasonBelow {
			t.Errorf("pass %d: unexpected hold reason %q", i, r.DriftReason)
		}
		m.Optimize(scan, WaveOptions{})
	}
	if s.Reopts() != 0 || s.Ctl.Version() != v0 {
		t.Errorf("stationary service moved: %d reopts, version %d (was %d)",
			s.Reopts(), s.Ctl.Version(), v0)
	}
}

func driftMeta(service string) []trace.Attr {
	return []trace.Attr{
		trace.String("kind", "fleet-drift"),
		trace.String("service", service),
	}
}

// runDriftWave drives one full drift scenario — initial wave, phase
// turn, drift scan, re-optimization — under the session and returns the
// service and the triggering scan verdict.
func runDriftWave(t *testing.T, sess *replay.Session) (*Service, ScanResult) {
	t.Helper()
	const tenants = 3
	m, err := NewManager(driftConfig(telemetry.NewRegistry(), sess))
	if err != nil {
		t.Fatal(err)
	}
	s := addTenantService(t, m, "mt-kv", tenants)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s.State(); st != Steady {
		t.Fatalf("initial wave ended %s (err: %v)", st, s.Err())
	}
	turnPhase(t, s, 1, tenants)
	scan := m.Scan(ScanOptions{Drift: true})
	if len(scan) != 1 || !scan[0].Optimize {
		t.Fatalf("drift scan did not trigger: %+v", scan)
	}
	m.Optimize(scan, WaveOptions{})
	if st := s.State(); st != Steady {
		t.Fatalf("re-optimization ended %s (err: %v)", st, s.Err())
	}
	return s, scan[0]
}

// TestDriftWaveReplayRoundTrip records a complete drift-triggered
// re-optimization — streaming deadlines, clock reads, the journaled
// drift verdict, the second trip around the lifecycle — then re-executes
// it from the serialized journal. The replayed wave must reach the same
// version and re-opt count, reproduce the drift score bit-exactly, and
// re-record a byte-identical journal.
func TestDriftWaveReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two full drift waves in -short mode")
	}
	rec := replay.NewRecorder(0)
	if err := rec.Meta(driftMeta("mt-kv")...); err != nil {
		t.Fatal(err)
	}
	s, verdict := runDriftWave(t, rec)
	if err := rec.Finish(); err != nil {
		t.Fatalf("recording incomplete: %v", err)
	}
	var recorded bytes.Buffer
	if err := rec.WriteJSONL(&recorded); err != nil {
		t.Fatal(err)
	}

	events, err := replay.Load(bytes.NewReader(recorded.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := replay.NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Meta(driftMeta("mt-kv")...); err != nil {
		t.Fatal(err)
	}
	s2, verdict2 := runDriftWave(t, sess)
	if err := sess.Finish(); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}

	if verdict2.DriftScore != verdict.DriftScore {
		t.Errorf("replayed drift score %v, recorded %v (must be bit-exact)",
			verdict2.DriftScore, verdict.DriftScore)
	}
	if s2.Ctl.Version() != s.Ctl.Version() {
		t.Errorf("replayed version %d, recorded %d", s2.Ctl.Version(), s.Ctl.Version())
	}
	if s2.Reopts() != s.Reopts() {
		t.Errorf("replayed reopts %d, recorded %d", s2.Reopts(), s.Reopts())
	}
	var rerecorded bytes.Buffer
	if err := sess.WriteJSONL(&rerecorded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recorded.Bytes(), rerecorded.Bytes()) {
		t.Errorf("re-recorded journal is not byte-identical (%d vs %d bytes)",
			recorded.Len(), rerecorded.Len())
	}
}

// TestDriftShardBudget: when more services trigger than the per-shard
// re-opt budget allows, the overflow is demoted — it stays Steady on its
// current layout — and only the highest-scoring services run.
func TestDriftShardBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("two-service drift wave in -short mode")
	}
	const tenants = 2
	cfg := driftConfig(telemetry.NewRegistry(), nil)
	cfg.Shards = 1 // both services share the one budget domain
	cfg.Drift.Policy.ShardBudget = 1
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := addTenantService(t, m, "kv-a", tenants)
	b := addTenantService(t, m, "kv-b", tenants)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Service{a, b} {
		if st := s.State(); st != Steady {
			t.Fatalf("%s ended the initial wave in %s (err: %v)", s.Name, st, s.Err())
		}
	}
	va, vb := a.Ctl.Version(), b.Ctl.Version()

	turnPhase(t, a, 1, tenants)
	turnPhase(t, b, 1, tenants)
	scan := m.Scan(ScanOptions{Drift: true})
	if len(scan) != 2 || !scan[0].Optimize || !scan[1].Optimize {
		t.Fatalf("both services should trigger: %+v", scan)
	}

	m.Optimize(scan, WaveOptions{})
	ran, demoted := scan[0].Service, scan[1].Service
	if ran.Reopts() != 1 {
		t.Errorf("budgeted service %s ran %d reopts, want 1", ran.Name, ran.Reopts())
	}
	if demoted.Reopts() != 0 {
		t.Errorf("over-budget service %s ran %d reopts, want 0", demoted.Name, demoted.Reopts())
	}
	if st := demoted.State(); st != Steady {
		t.Errorf("demoted service left Steady: %s", st)
	}
	oldVersion := map[string]uint64{"kv-a": uint64(va), "kv-b": uint64(vb)}[demoted.Name]
	if v := uint64(demoted.Ctl.Version()); v != oldVersion {
		t.Errorf("demoted service's layout moved: version %d, want %d", v, oldVersion)
	}
}

// TestProfileIngestionSentinels pins the API contract the control plane
// maps to HTTP statuses: unknown service vs known-but-driftless service.
func TestProfileIngestionSentinels(t *testing.T) {
	m, err := NewManager(driftConfig(telemetry.NewRegistry(), nil))
	if err != nil {
		t.Fatal(err)
	}
	addSQLService(t, m, "db", nil)

	if err := m.IngestProfile("ghost", nil); !errors.Is(err, ErrUnknownService) {
		t.Errorf("IngestProfile(ghost) = %v, want ErrUnknownService", err)
	}
	if _, err := m.ProfileStatus("ghost", 0); !errors.Is(err, ErrUnknownService) {
		t.Errorf("ProfileStatus(ghost) = %v, want ErrUnknownService", err)
	}

	batch := []profile.TimedSample{
		{At: 0.010, Records: []cpu.BranchRecord{{From: 0x100, To: 0x200}}},
		{At: 0.011, Records: []cpu.BranchRecord{{From: 0x100, To: 0x200}, {From: 0x300, To: 0x400}}},
	}
	if err := m.IngestProfile("db", batch); err != nil {
		t.Fatalf("IngestProfile(db) = %v", err)
	}
	st, err := m.ProfileStatus("db", 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples < 2 || st.Records < 3 {
		t.Errorf("ingested batch not reflected: %+v", st.StoreStats)
	}
	if len(st.TopEdges) == 0 {
		t.Error("no top edges after ingestion")
	}
	if all := m.ProfileStatuses(5); len(all) != 1 || all[0].Service != "db" {
		t.Errorf("ProfileStatuses = %+v, want one entry for db", all)
	}

	// A fleet without drift has no stores: 409-shaped errors, empty list.
	flat, err := NewManager(Config{
		SkipGate: true,
		Timing:   TimingConfig{ProfileDur: 0.0004, Warm: 0.00015, Window: 0.0002},
	})
	if err != nil {
		t.Fatal(err)
	}
	addSQLService(t, flat, "db", nil)
	if err := flat.IngestProfile("db", batch); !errors.Is(err, ErrNoProfileStore) {
		t.Errorf("driftless IngestProfile = %v, want ErrNoProfileStore", err)
	}
	if _, err := flat.ProfileStatus("db", 0); !errors.Is(err, ErrNoProfileStore) {
		t.Errorf("driftless ProfileStatus = %v, want ErrNoProfileStore", err)
	}
	if all := flat.ProfileStatuses(0); len(all) != 0 {
		t.Errorf("driftless ProfileStatuses = %+v, want empty", all)
	}
}
