package fleet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/workloads/sqldb"
)

func TestTransitionTable(t *testing.T) {
	all := []State{Idle, Profiling, Building, Replacing, Measuring, Steady, Reverted, Failed, Quarantined}
	type edge struct{ from, to State }
	legal := map[edge]bool{
		{Idle, Profiling}:        true,
		{Idle, Steady}:           true,
		{Profiling, Building}:    true,
		{Profiling, Reverted}:    true,
		{Profiling, Failed}:      true,
		{Building, Replacing}:    true,
		{Building, Reverted}:     true,
		{Building, Failed}:       true,
		{Replacing, Measuring}:   true,
		{Replacing, Reverted}:    true,
		{Replacing, Failed}:      true,
		{Replacing, Quarantined}: true, // replace-rollback circuit breaker
		{Measuring, Profiling}:   true, // next optimization round
		{Measuring, Steady}:      true,
		{Measuring, Reverted}:    true,
		{Measuring, Failed}:      true,
		{Steady, Profiling}:      true, // drift-triggered re-optimization
	}
	for _, from := range all {
		for _, to := range all {
			want := legal[edge{from, to}]
			if got := CanTransition(from, to); got != want {
				t.Errorf("CanTransition(%s, %s) = %v, want %v", from, to, got, want)
			}
		}
	}
	for _, s := range all {
		term := s == Steady || s == Reverted || s == Failed || s == Quarantined
		if s.Terminal() != term {
			t.Errorf("%s.Terminal() = %v, want %v", s, s.Terminal(), term)
		}
		if s.String() == "" {
			t.Errorf("state %d has no name", int(s))
		}
	}
	if CanTransition(State(99), Idle) {
		t.Error("unknown state should have no edges")
	}
}

func TestIllegalTransitionRecorded(t *testing.T) {
	s := &Service{Name: "x", state: Idle}
	if err := s.transition(Building); err == nil {
		t.Fatal("Idle → Building accepted")
	}
	if s.State() != Idle {
		t.Errorf("illegal transition moved the state to %s", s.State())
	}
	if s.Err() == nil {
		t.Error("illegal transition not recorded on the service")
	}
	// Steady is terminal for the wave but re-enterable by drift; the other
	// terminal states stay closed.
	s2 := &Service{Name: "y", state: Failed}
	if err := s2.transition(Profiling); err == nil {
		t.Error("terminal state accepted an exit edge")
	}
	s3 := &Service{Name: "z", state: Steady}
	if err := s3.transition(Profiling); err != nil {
		t.Errorf("Steady → Profiling (drift re-entry) rejected: %v", err)
	}
}

// faultFleet stands up a one-service manager over a small sqldb with the
// given fault hook and drives a full wave, returning the service and the
// metrics registry for assertions.
func faultFleet(t *testing.T, maxRounds int, hook func(s *Service, stage State) error) (*Service, *telemetry.Registry) {
	t.Helper()
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{
		Workers: 1,
		Robustness: RobustnessConfig{
			MaxRounds:    maxRounds,
			ConvergeGain: -1, // always run to the round cap
			MaxRetries:   1,
			RetryBackoff: time.Microsecond,
		},
		Sleep:     func(time.Duration) {},
		SkipGate:  true,
		Timing:    TimingConfig{ProfileDur: 0.0004, Warm: 0.00015, Window: 0.0002},
		Metrics:   reg,
		FaultHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.AddService(ServicePlan{
		Name: "svc", Workload: db, Input: "read_only", Threads: 1,
		Core: core.Options{NoChargePause: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.0002)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return s, reg
}

func TestInjectedFaults(t *testing.T) {
	boom := errors.New("injected fault")
	cases := []struct {
		name string
		// fail reports whether the hook should fault this attempt.
		fail func(s *Service, stage State) bool
		want State
		// wantRounds is the number of completed rounds recorded.
		wantRounds int
	}{
		// Faults before any replacement leave nothing to undo: Failed.
		{"profiling", func(s *Service, st State) bool { return st == Profiling }, Failed, 0},
		{"building", func(s *Service, st State) bool { return st == Building }, Failed, 0},
		{"replacing", func(s *Service, st State) bool { return st == Replacing }, Failed, 0},
		// A fault after the replacement landed rolls back to C0.
		{"measuring", func(s *Service, st State) bool { return st == Measuring }, Reverted, 0},
		// ... unless the revert itself keeps faulting.
		{"revert", func(s *Service, st State) bool { return st == Measuring || st == Reverted }, Failed, 0},
		// A fault in a later round reverts the earlier rounds' work.
		{"second-round-profiling",
			func(s *Service, st State) bool { return st == Profiling && s.Ctl.Version() >= 1 },
			Reverted, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, reg := faultFleet(t, 2, func(s *Service, stage State) error {
				if tc.fail(s, stage) {
					return boom
				}
				return nil
			})
			if got := s.State(); got != tc.want {
				t.Fatalf("ended %s, want %s", got, tc.want)
			}
			if !s.State().Terminal() {
				t.Error("service wedged in a non-terminal state")
			}
			if s.Err() == nil {
				t.Error("fault not recorded on the service")
			}
			if got := len(s.Rounds()); got != tc.wantRounds {
				t.Errorf("recorded %d rounds, want %d", got, tc.wantRounds)
			}
			wantCounter := "fleet_failures_total"
			if tc.want == Reverted {
				wantCounter = "fleet_reverts_total"
			}
			if v := reg.Counter(wantCounter).Value(); v != 1 {
				t.Errorf("%s = %v, want 1", wantCounter, v)
			}
		})
	}
}

func TestRetryBackoffRecovers(t *testing.T) {
	boom := errors.New("transient build fault")
	var sleeps []time.Duration
	attempts := 0
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{
		Workers: 1,
		Robustness: RobustnessConfig{
			MaxRounds:    1,
			MaxRetries:   2,
			RetryBackoff: 4 * time.Millisecond,
		},
		Sleep:    func(d time.Duration) { sleeps = append(sleeps, d) },
		Jitter:   func() float64 { return 0 }, // pin: assert the pure doubling base
		SkipGate: true,
		Timing:   TimingConfig{ProfileDur: 0.0004, Warm: 0.00015, Window: 0.0002},
		FaultHook: func(s *Service, stage State) error {
			if stage != Building {
				return nil
			}
			attempts++
			if attempts <= 2 {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.AddService(ServicePlan{
		Name: "svc", Workload: db, Input: "read_only", Threads: 1,
		Core: core.Options{NoChargePause: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.0002)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != Steady {
		t.Fatalf("ended %s, want Steady after retries: %v", got, s.Err())
	}
	if len(s.Rounds()) != 1 {
		t.Errorf("recorded %d rounds, want 1", len(s.Rounds()))
	}
	rep := m.Report().Services[0]
	if rep.Retries != 2 {
		t.Errorf("report retries = %d, want 2", rep.Retries)
	}
	// Backoff doubles per attempt.
	if len(sleeps) != 2 || sleeps[0] != 4*time.Millisecond || sleeps[1] != 8*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want [4ms 8ms]", sleeps)
	}
}
