package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/workloads/docdb"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/sqldb"
	"repro/internal/workloads/wl"
)

// fleetBenchDoc is the BENCH_fleet.json schema: one sharded mixed
// wave's wall time and how much BOLT work the layout cache saved.
type fleetBenchDoc struct {
	Services        int     `json:"services"`
	Workloads       int     `json:"workloads"`
	Workers         int     `json:"workers"`
	Shards          int     `json:"shards"`
	WaveSeconds     float64 `json:"wave_seconds"`
	BoltInvocations float64 `json:"bolt_invocations"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheCoalesced  uint64  `json:"cache_coalesced"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Terminal        int     `json:"terminal_services"`
	PeakPauses      int     `json:"peak_pauses"`
}

func benchEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		n, err := strconv.Atoi(v)
		if err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestFleetWaveBench is the fleet-scale benchmark behind
// scripts/bench.sh: a mixed-workload wave (replicas of three distinct
// images, so the cache sees both reuse and genuine misses) through the
// sharded manager, meant to run under -race. Gated behind
// FLEET_BENCH_OUT because a thousand services is a benchmark, not a
// unit test; FLEET_BENCH_SERVICES scales it down for the CI smoke.
func TestFleetWaveBench(t *testing.T) {
	out := os.Getenv("FLEET_BENCH_OUT")
	if out == "" {
		t.Skip("set FLEET_BENCH_OUT=path to run the fleet wave benchmark")
	}
	services := benchEnvInt("FLEET_BENCH_SERVICES", 1000)
	workers := benchEnvInt("FLEET_BENCH_WORKERS", 8)
	shards := benchEnvInt("FLEET_BENCH_SHARDS", 8)
	// FLEET_BENCH_WORKLOADS=1 makes the fleet homogeneous (the CI
	// cache-hit smoke); the default mixes three distinct images so the
	// cache sees both reuse and genuine misses.
	nWorkloads := benchEnvInt("FLEET_BENCH_WORKLOADS", 3)

	sql, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := docdb.Build(docdb.Small())
	if err != nil {
		t.Fatal(err)
	}
	kv, err := kvcache.Build(kvcache.Small())
	if err != nil {
		t.Fatal(err)
	}
	mix := []struct {
		w     *wl.Workload
		input string
	}{
		{sql, "read_only"},
		{doc, "read_update"},
		{kv, "set10_get90"},
	}
	if nWorkloads < len(mix) {
		mix = mix[:nWorkloads]
	}

	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{
		Workers:  workers,
		Shards:   shards,
		SkipGate: true,
		// Micro simulation windows: the benchmark measures orchestration
		// and cache behavior, not simulated guest time.
		Timing: TimingConfig{ProfileDur: 0.0003, Warm: 0.0001, Window: 0.00015},
		Robustness: RobustnessConfig{
			MaxRounds:    1,
			RetryBackoff: time.Microsecond,
		},
		Sleep:   func(time.Duration) {},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < services; i++ {
		wk := mix[i%len(mix)]
		_, err := m.AddService(ServicePlan{
			Name:     fmt.Sprintf("%s/replica-%04d", wk.w.Name, i),
			Workload: wk.w, Input: wk.input, Threads: 1,
			Core: core.Options{NoChargePause: true},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range m.Services() {
		s.Proc.RunFor(0.0001)
	}

	scan := m.Scan(ScanOptions{})
	t0 := time.Now()
	m.Optimize(scan, WaveOptions{})
	wave := time.Since(t0).Seconds()

	terminal := 0
	for _, st := range m.Snapshot() {
		if st.State.Terminal() && st.State != Failed {
			terminal++
		}
	}
	if terminal != services {
		t.Errorf("only %d/%d services reached a clean terminal state", terminal, services)
	}
	stats, ok := m.CacheStats()
	if !ok {
		t.Fatal("layout cache disabled")
	}
	bolts := reg.Counter("core_bolt_invocations_total").Value()
	if bolts >= float64(services)/2 {
		t.Errorf("bolt invocations = %v for %d services: cache not amortizing", bolts, services)
	}
	if stats.HitRate() < 0.9 {
		t.Errorf("cache hit rate = %.3f, want > 0.9 for a replica fleet", stats.HitRate())
	}

	doc2 := fleetBenchDoc{
		Services:        services,
		Workloads:       len(mix),
		Workers:         workers,
		Shards:          shards,
		WaveSeconds:     wave,
		BoltInvocations: bolts,
		CacheHits:       stats.Hits,
		CacheMisses:     stats.Misses,
		CacheCoalesced:  stats.Coalesced,
		CacheHitRate:    stats.HitRate(),
		Terminal:        terminal,
		PeakPauses:      m.PeakPauses(),
	}
	b, err := json.MarshalIndent(doc2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("fleet wave: %d services in %.2fs, %v BOLT runs, hit rate %.3f",
		services, wave, bolts, stats.HitRate())
}
